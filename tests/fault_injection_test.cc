// Robustness suite for the hardened persistence layer: deterministic fault
// injection against every filesystem touch of a cube-store save, bit-flip
// and truncation sweeps over the checksummed v2 containers, and
// compatibility with the seed's unchecksummed v1 files.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/io.h"
#include "opmap/common/serde.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset_io.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

Dataset SmallDataset(int64_t bump = 0) {
  Schema schema = MakeSchema(
      {{"a", {"x", "y"}}, {"b", {"p", "q", "r"}}, {"c", {"ok", "bad"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 0, 0}, 5 + bump);
  AppendRows(&d, {1, 1, 1}, 4);
  AppendRows(&d, {0, 2, 1}, 3);
  return d;
}

CubeStore SmallStore(int64_t bump = 0) {
  auto store = CubeBuilder::FromDataset(SmallDataset(bump));
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return store.MoveValue();
}

std::string SerializeStore(const CubeStore& store) {
  std::ostringstream buf;
  auto st = store.Save(&buf);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return buf.str();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// CRC32C and container primitives
// ---------------------------------------------------------------------------

TEST(Crc32c, KnownAnswer) {
  // The standard CRC-32C check value for the ASCII digits "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string data = "opportunity map rule cubes";
  const uint32_t one_shot = Crc32c(data.data(), data.size());
  const uint32_t first = Crc32c(data.data(), 10);
  EXPECT_EQ(Crc32c(data.data() + 10, data.size() - 10, first), one_shot);
}

TEST(Container, RoundTrip) {
  const char magic[4] = {'T', 'E', 'S', 'T'};
  std::vector<Section> sections;
  sections.push_back(Section{"alpha", 3, "payload-one"});
  sections.push_back(Section{"beta", 0, ""});
  sections.push_back(Section{"gamma", 42, std::string(1000, '\7')});
  const std::string bytes = SerializeContainer(magic, 2, sections);

  ASSERT_OK_AND_ASSIGN(std::vector<Section> parsed,
                       ParseContainer(bytes, magic, 2));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[0].name, "alpha");
  EXPECT_EQ(parsed[0].record_count, 3u);
  EXPECT_EQ(parsed[0].payload, "payload-one");
  EXPECT_EQ(parsed[1].payload, "");
  EXPECT_EQ(parsed[2].payload, std::string(1000, '\7'));

  ASSERT_OK_AND_ASSIGN(const Section* gamma, FindSection(parsed, "gamma"));
  EXPECT_EQ(gamma->record_count, 42u);
  EXPECT_FALSE(FindSection(parsed, "missing").ok());
}

TEST(Container, CorruptPayloadNamesTheSection) {
  const char magic[4] = {'T', 'E', 'S', 'T'};
  std::vector<Section> sections;
  sections.push_back(Section{"first", 0, std::string(64, 'A')});
  sections.push_back(Section{"second", 0, std::string(64, 'B')});
  std::string bytes = SerializeContainer(magic, 1, sections);

  // Payloads are laid out back to back at the tail; flip one byte in each.
  std::string corrupt_second = bytes;
  corrupt_second[bytes.size() - 1] ^= 0x10;
  Result<std::vector<Section>> r2 = ParseContainer(corrupt_second, magic, 1);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("'second'"), std::string::npos)
      << r2.status().ToString();

  std::string corrupt_first = bytes;
  corrupt_first[bytes.size() - 65] ^= 0x10;
  Result<std::vector<Section>> r1 = ParseContainer(corrupt_first, magic, 1);
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("'first'"), std::string::npos)
      << r1.status().ToString();
}

TEST(Container, CorruptHeaderIsCaught) {
  const char magic[4] = {'T', 'E', 'S', 'T'};
  std::string bytes =
      SerializeContainer(magic, 1, {Section{"only", 7, "data"}});
  // Byte 12 onward is the section table (magic, version, count, crc first).
  std::string corrupt = bytes;
  corrupt[16] ^= 0x01;
  EXPECT_FALSE(ParseContainer(corrupt, magic, 1).ok());
}

TEST(Container, TrailingBytesRejected) {
  const char magic[4] = {'T', 'E', 'S', 'T'};
  std::string bytes =
      SerializeContainer(magic, 1, {Section{"only", 0, "data"}});
  bytes += "junk";
  EXPECT_FALSE(ParseContainer(bytes, magic, 1).ok());
}

// ---------------------------------------------------------------------------
// Fault injection: no failure point may leave a corrupt file visible
// ---------------------------------------------------------------------------

// Every failure point during a save over an existing snapshot must leave
// the previous snapshot readable (acceptance criterion a).
TEST(FaultInjection, SaveOverExistingFileNeverCorruptsIt) {
  const std::string path = TempPath("fault_existing.opmc");
  const CubeStore previous = SmallStore(0);
  ASSERT_OK(previous.SaveToFile(path));

  // Dry run through a counting env to learn how many ops one save costs.
  FaultInjectingEnv counter;
  const CubeStore next = SmallStore(10);
  ASSERT_OK(next.SaveToFile(path, &counter));
  ASSERT_OK(previous.SaveToFile(path));  // restore the "previous" snapshot

  const FaultOp kWriteSideOps[] = {FaultOp::kOpenWrite, FaultOp::kWrite,
                                   FaultOp::kSync, FaultOp::kRename};
  int failure_points = 0;
  for (FaultOp op : kWriteSideOps) {
    FaultInjectingEnv probe;
    // Ops per save of this kind (counted fresh per op so indices line up).
    ASSERT_OK(next.SaveToFile(TempPath("fault_probe.opmc"), &probe));
    const int64_t per_save = probe.OpCount(op);
    for (int64_t nth = 1; nth <= per_save; ++nth) {
      FaultInjectingEnv env;
      env.FailAt(op, nth, /*fail_forever=*/true);
      Status st = next.SaveToFile(path, &env);
      ASSERT_FALSE(st.ok())
          << "op " << static_cast<int>(op) << " #" << nth;
      ++failure_points;
      // The file visible at the target path must still be the previous,
      // fully valid snapshot.
      ASSERT_OK_AND_ASSIGN(CubeStore loaded, CubeStore::LoadFromFile(path));
      EXPECT_EQ(loaded.num_records(), previous.num_records())
          << "corrupt or wrong snapshot after failing op "
          << static_cast<int>(op) << " #" << nth;
    }
  }
  EXPECT_GE(failure_points, 3) << "sweep exercised too few failure points";
  std::remove(path.c_str());
}

// Saving to a fresh path that fails mid-way must not leave any file there.
TEST(FaultInjection, FailedSaveToFreshPathLeavesNoTargetFile) {
  const CubeStore store = SmallStore();

  FaultInjectingEnv counter;
  ASSERT_OK(store.SaveToFile(TempPath("fault_count.opmc"), &counter));
  const int64_t writes = counter.OpCount(FaultOp::kWrite);
  ASSERT_GE(writes, 1);

  for (int64_t nth = 1; nth <= writes; ++nth) {
    const std::string path =
        TempPath("fault_fresh_" + std::to_string(nth) + ".opmc");
    FaultInjectingEnv env;
    env.FailAt(FaultOp::kWrite, nth, /*fail_forever=*/true);
    ASSERT_FALSE(store.SaveToFile(path, &env).ok());
    EXPECT_FALSE(Env::Default()->FileExists(path))
        << "failed save published a file at the target path";
  }
}

// A transient failure (exactly one injected error) is absorbed by the
// retry-with-backoff policy and the save still lands intact.
TEST(FaultInjection, RetryAbsorbsTransientWriteFailure) {
  const std::string path = TempPath("fault_retry.opmc");
  const CubeStore store = SmallStore();

  FaultInjectingEnv env;
  env.FailAt(FaultOp::kWrite, 1, /*fail_forever=*/false);
  ASSERT_OK(store.SaveToFile(path, &env));
  EXPECT_EQ(env.InjectedFailures(), 1);

  ASSERT_OK_AND_ASSIGN(CubeStore loaded, CubeStore::LoadFromFile(path));
  EXPECT_EQ(loaded.num_records(), store.num_records());
  std::remove(path.c_str());
}

// A persistently failing disk exhausts the retries and surfaces the error.
TEST(FaultInjection, PersistentFailureExhaustsRetries) {
  const CubeStore store = SmallStore();
  FaultInjectingEnv env;
  env.FailAt(FaultOp::kSync, 1, /*fail_forever=*/true);
  Status st = store.SaveToFile(TempPath("fault_persistent.opmc"), &env);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_GE(env.InjectedFailures(), 2) << "retry did not re-attempt";
}

// Read-side faults surface as errors, never as partially loaded stores.
TEST(FaultInjection, ReadFailuresSurfaceAsErrors) {
  const std::string path = TempPath("fault_read.opmc");
  const CubeStore store = SmallStore();
  ASSERT_OK(store.SaveToFile(path));

  FaultInjectingEnv counter;
  ASSERT_OK_AND_ASSIGN(CubeStore ok_load,
                       CubeStore::LoadFromFile(path, &counter));
  EXPECT_EQ(ok_load.num_records(), store.num_records());
  const int64_t reads = counter.OpCount(FaultOp::kRead);
  ASSERT_GE(reads, 1);

  for (int64_t nth = 1; nth <= reads; ++nth) {
    FaultInjectingEnv env;
    env.FailAt(FaultOp::kRead, nth, /*fail_forever=*/true);
    EXPECT_FALSE(CubeStore::LoadFromFile(path, &env).ok())
        << "read failure #" << nth << " was swallowed";
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Corruption sweeps (acceptance criterion b)
// ---------------------------------------------------------------------------

// Every single-bit flip anywhere in a v2 cube snapshot must be caught.
TEST(CorruptionSweep, EveryBitFlipInCubeFileIsCaught) {
  const CubeStore store = SmallStore();
  const std::string bytes = SerializeStore(store);
  ASSERT_GT(bytes.size(), 100u);

  bool saw_section_error = false;
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      Result<CubeStore> r = CubeStore::LoadFromBytes(flipped);
      ASSERT_FALSE(r.ok())
          << "bit " << bit << " of byte " << i << " flipped silently";
      if (r.status().message().find("section '") != std::string::npos) {
        saw_section_error = true;
      }
    }
  }
  EXPECT_TRUE(saw_section_error)
      << "no corruption was attributed to a named section";
}

// Same sweep for dataset snapshots.
TEST(CorruptionSweep, EveryBitFlipInDatasetFileIsCaught) {
  const Dataset d = SmallDataset();
  std::ostringstream buf;
  ASSERT_OK(SaveDataset(d, &buf));
  const std::string bytes = buf.str();

  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_FALSE(LoadDatasetFromBytes(flipped).ok())
          << "bit " << bit << " of byte " << i << " flipped silently";
    }
  }
}

// Every truncation of a v2 cube snapshot must be caught.
TEST(CorruptionSweep, EveryTruncationIsCaught) {
  const CubeStore store = SmallStore();
  const std::string bytes = SerializeStore(store);
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(CubeStore::LoadFromBytes(bytes.substr(0, len)).ok())
        << "truncation to " << len << " bytes loaded silently";
  }
}

// Random multi-byte corruption, fixed seed: a fuzz loop over save/corrupt/
// load that must never produce a wrong-valued cube (silent success with
// altered counts would be the catastrophic outcome).
TEST(CorruptionSweep, RandomCorruptionFuzzNeverYieldsWrongCounts) {
  const CubeStore store = SmallStore();
  const std::string bytes = SerializeStore(store);
  ASSERT_OK_AND_ASSIGN(const RuleCube* reference, store.AttrCube(0));

  uint64_t rng = 0x9E3779B97F4A7C15ull;  // fixed seed, splitmix64 steps
  auto next = [&rng]() {
    rng += 0x9E3779B97F4A7C15ull;
    uint64_t z = rng;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };

  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupt = bytes;
    const int edits = 1 + static_cast<int>(next() % 4);
    for (int e = 0; e < edits; ++e) {
      corrupt[next() % corrupt.size()] ^= static_cast<char>(next() % 255 + 1);
    }
    Result<CubeStore> r = CubeStore::LoadFromBytes(corrupt);
    if (!r.ok()) continue;  // caught: good
    // Only acceptable OK outcome: the edits cancelled out to the original
    // bytes (xor with 0 is excluded, so this cannot happen) — if a load
    // succeeds the counts must still be byte-identical to the original.
    ASSERT_OK_AND_ASSIGN(const RuleCube* cube, r->AttrCube(0));
    for (int64_t i = 0; i < reference->num_cells(); ++i) {
      ASSERT_EQ(cube->raw_counts()[i], reference->raw_counts()[i])
          << "corruption trial " << trial << " loaded with wrong counts";
    }
  }
}

// ---------------------------------------------------------------------------
// v1 compatibility (acceptance criterion c)
// ---------------------------------------------------------------------------

// Replicates the seed's v1 writer byte for byte, independent of the
// library's current save path, and proves the new loader still accepts it.
std::string WriteV1CubeFile(const CubeStore& store) {
  std::ostringstream out;
  out.write("OPMC", 4);
  BinaryWriter w(&out);
  w.WriteU32(1);  // version
  WriteSchema(store.schema(), &out);
  w.WriteU64(store.attributes().size());
  for (int a : store.attributes()) w.WriteI32(a);
  w.WriteU8(1);  // has pair cubes (FromDataset builds them by default)
  w.WriteI64(store.num_records());
  w.WriteI64Vector(store.class_counts());
  auto write_cube = [&w](const RuleCube& cube) {
    w.WriteU64(static_cast<uint64_t>(cube.num_cells()));
    for (int64_t i = 0; i < cube.num_cells(); ++i) {
      w.WriteI64(cube.raw_counts()[i]);
    }
  };
  for (int a : store.attributes()) {
    auto cube = store.AttrCube(a);
    EXPECT_TRUE(cube.ok());
    write_cube(**cube);
  }
  const auto& attrs = store.attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      auto cube = store.PairCube(attrs[i], attrs[j]);
      EXPECT_TRUE(cube.ok());
      write_cube(**cube);
    }
  }
  return out.str();
}

TEST(V1Compat, SeedCubeFilesStillLoad) {
  const CubeStore store = SmallStore();
  const std::string v1 = WriteV1CubeFile(store);

  ASSERT_OK_AND_ASSIGN(CubeStore loaded, CubeStore::LoadFromBytes(v1));
  EXPECT_EQ(loaded.num_records(), store.num_records());
  EXPECT_EQ(loaded.NumCubes(), store.NumCubes());
  EXPECT_EQ(loaded.class_counts(), store.class_counts());
  for (int a : store.attributes()) {
    ASSERT_OK_AND_ASSIGN(const RuleCube* oc, store.AttrCube(a));
    ASSERT_OK_AND_ASSIGN(const RuleCube* lc, loaded.AttrCube(a));
    ASSERT_EQ(oc->num_cells(), lc->num_cells());
    for (int64_t i = 0; i < oc->num_cells(); ++i) {
      EXPECT_EQ(oc->raw_counts()[i], lc->raw_counts()[i]);
    }
  }
}

TEST(V1Compat, SeedDatasetFilesStillLoad) {
  const Dataset d = SmallDataset();
  std::ostringstream out;
  out.write("OPMD", 4);
  BinaryWriter w(&out);
  w.WriteU32(1);  // version
  WriteSchema(d.schema(), &out);
  w.WriteU64(static_cast<uint64_t>(d.num_rows()));
  for (int i = 0; i < d.num_attributes(); ++i) {
    if (d.schema().attribute(i).is_categorical()) {
      w.WriteI32Vector(d.categorical_column(i));
    } else {
      w.WriteDoubleVector(d.numeric_column(i));
    }
  }

  ASSERT_OK_AND_ASSIGN(Dataset loaded, LoadDatasetFromBytes(out.str()));
  ASSERT_EQ(loaded.num_rows(), d.num_rows());
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    for (int c = 0; c < d.num_attributes(); ++c) {
      EXPECT_EQ(loaded.code(r, c), d.code(r, c));
    }
  }
}

// Corrupting a v1 file is still detected by the structural checks (no CRC
// exists in that format, but truncation and framing damage must fail).
TEST(V1Compat, TruncatedV1FileIsRejected) {
  const CubeStore store = SmallStore();
  const std::string v1 = WriteV1CubeFile(store);
  for (size_t len = 0; len < v1.size(); len += 7) {
    EXPECT_FALSE(CubeStore::LoadFromBytes(v1.substr(0, len)).ok())
        << "v1 truncation to " << len << " bytes loaded silently";
  }
}

// ---------------------------------------------------------------------------
// Env plumbing
// ---------------------------------------------------------------------------

TEST(EnvTest, ReadFileToStringEnforcesBound) {
  const std::string path = TempPath("bounded_read.bin");
  ASSERT_OK(AtomicWriteFile(nullptr, path, std::string(4096, 'x')));
  std::string content;
  ASSERT_OK(ReadFileToString(nullptr, path, &content));
  EXPECT_EQ(content.size(), 4096u);
  Status st = ReadFileToString(nullptr, path, &content, /*max_bytes=*/100);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(EnvTest, AtomicWriteFileReplacesAtomically) {
  const std::string path = TempPath("atomic_replace.bin");
  ASSERT_OK(AtomicWriteFile(nullptr, path, "first"));
  ASSERT_OK(AtomicWriteFile(nullptr, path, "second"));
  std::string content;
  ASSERT_OK(ReadFileToString(nullptr, path, &content));
  EXPECT_EQ(content, "second");
  EXPECT_FALSE(Env::Default()->FileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(EnvTest, RetryWithBackoffStopsOnNonTransientCodes) {
  int calls = 0;
  Status st = RetryWithBackoff(nullptr, RetryPolicy{},
                               [&calls]() -> Status {
                                 ++calls;
                                 return Status::InvalidArgument("permanent");
                               });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1) << "non-transient errors must not be retried";
}

// ---------------------------------------------------------------------------
// v3 aligned container: corruption sweeps over the eager and mapped paths
// ---------------------------------------------------------------------------

std::string SerializeStoreV3(const CubeStore& store) {
  const std::string path = TempPath("serialize_v3_tmp.opmc");
  auto st = store.SaveToFile(path);  // SaveToFile defaults to kV3Aligned
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::string bytes;
  auto read = ReadFileToString(nullptr, path, &bytes);
  EXPECT_TRUE(read.ok()) << read.ToString();
  std::remove(path.c_str());
  return bytes;
}

// Plain unsynced write: the sweeps below exercise the *read* path against
// pre-made corrupt images, so AtomicWriteFile's fsync dance is pure cost.
void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Flattens every materialized attr and pair cube of `store` into one count
// vector; on a mapped store this forces lazy verification of each payload.
Result<std::vector<int64_t>> DumpAllCounts(const CubeStore& store) {
  std::vector<int64_t> out;
  const int num_attrs = store.schema().num_attributes();
  for (int a = 0; a < num_attrs; ++a) {
    if (store.schema().is_class(a)) continue;
    OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(a));
    out.insert(out.end(), cube->raw_counts(),
               cube->raw_counts() + cube->num_cells());
  }
  for (int a = 0; a < num_attrs; ++a) {
    if (store.schema().is_class(a)) continue;
    for (int b = a + 1; b < num_attrs; ++b) {
      if (store.schema().is_class(b)) continue;
      OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.PairCube(a, b));
      out.insert(out.end(), cube->raw_counts(),
                 cube->raw_counts() + cube->num_cells());
    }
  }
  return out;
}

// The eager loader verifies every byte of a v3 image up front (section
// CRCs, per-cube payload CRCs, zeroed alignment padding), so no single-bit
// corruption anywhere in the file may load (acceptance criterion b, v3).
TEST(V3CorruptionSweep, EveryBitFlipFailsEagerLoad) {
  const std::string bytes = SerializeStoreV3(SmallStore());
  ASSERT_OK(CubeStore::LoadFromBytes(bytes).status());

  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] ^= static_cast<char>(1 << bit);
      ASSERT_FALSE(CubeStore::LoadFromBytes(flipped).ok())
          << "flip of byte " << i << " bit " << bit
          << " produced a loadable store";
    }
  }
}

TEST(V3CorruptionSweep, EveryTruncationFailsEagerLoad) {
  const std::string bytes = SerializeStoreV3(SmallStore());
  for (size_t len = 0; len < bytes.size(); ++len) {
    ASSERT_FALSE(CubeStore::LoadFromBytes(bytes.substr(0, len)).ok())
        << "truncation to " << len << " bytes produced a loadable store";
  }
}

// The mapped loader defers payload verification to first cube access, so a
// corrupt image may *load* — but it must never serve wrong counts: every
// flip and truncation either fails the load, fails the first access to a
// damaged cube, or (flips in lazily-skipped padding) leaves every count
// byte-identical to the clean baseline.
TEST(V3CorruptionSweep, MappedLoadNeverServesWrongCounts) {
  const CubeStore original = SmallStore();
  const std::string bytes = SerializeStoreV3(original);
  ASSERT_OK_AND_ASSIGN(std::vector<int64_t> baseline,
                       DumpAllCounts(original));
  const std::string path = TempPath("v3_mapped_sweep.opmc");

  WriteRaw(path, bytes);
  {
    ASSERT_OK_AND_ASSIGN(CubeStore mapped, CubeStore::LoadFromFile(path));
    ASSERT_OK_AND_ASSIGN(std::vector<int64_t> counts, DumpAllCounts(mapped));
    ASSERT_EQ(counts, baseline) << "clean mapped load disagrees with source";
  }

  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= static_cast<char>(1 << (i % 8));
    WriteRaw(path, flipped);
    Result<CubeStore> mapped = CubeStore::LoadFromFile(path);
    if (!mapped.ok()) continue;  // rejected at load time: fine
    Result<std::vector<int64_t>> counts = DumpAllCounts(*mapped);
    if (!counts.ok()) continue;  // rejected at first cube access: fine
    EXPECT_EQ(*counts, baseline)
        << "flip of byte " << i << " served corrupt counts";
  }

  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteRaw(path, bytes.substr(0, len));
    Result<CubeStore> mapped = CubeStore::LoadFromFile(path);
    if (!mapped.ok()) continue;
    Result<std::vector<int64_t>> counts = DumpAllCounts(*mapped);
    if (!counts.ok()) continue;
    EXPECT_EQ(*counts, baseline)
        << "truncation to " << len << " served corrupt counts";
  }
  std::remove(path.c_str());
}

// Acceptance: a corrupt payload in a cube the query never touches must not
// block the mapped load or poison the cubes that *are* queried; only the
// damaged cube's own accessor fails, and it fails on every retry.
TEST(V3Acceptance, CorruptUnqueriedCubePayloadStillServesOthers) {
  Schema schema = MakeSchema({{"a", {"x", "y"}},
                              {"b", {"p", "q", "r"}},
                              {"c", {"u", "v"}},
                              {"outcome", {"ok", "bad"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 0, 0, 0}, 6);
  AppendRows(&d, {1, 1, 1, 1}, 5);
  AppendRows(&d, {0, 2, 1, 1}, 4);
  AppendRows(&d, {1, 0, 0, 1}, 3);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));

  // The v3 writer pads *before* each cube payload, so the file's last byte
  // is the final count byte of the last pair cube (b,c): corrupt just it.
  std::string bytes = SerializeStoreV3(store);
  bytes[bytes.size() - 1] ^= 0x01;
  const std::string path = TempPath("v3_corrupt_tail.opmc");
  WriteRaw(path, bytes);

  CubeLoadOptions eager;
  eager.use_mmap = false;
  EXPECT_FALSE(CubeStore::LoadFromFile(path, nullptr, eager).ok())
      << "the eager load verifies every payload and must reject the file";

  ASSERT_OK_AND_ASSIGN(CubeStore mapped, CubeStore::LoadFromFile(path));
  const MappingStats at_load = mapped.GetMappingStats();
  EXPECT_TRUE(at_load.mapped);
  EXPECT_EQ(at_load.cubes_verified, 0)
      << "the mapped load must not have touched any payload";

  auto expect_same = [](const RuleCube* want, const RuleCube* got) {
    ASSERT_EQ(got->num_cells(), want->num_cells());
    EXPECT_EQ(std::memcmp(got->raw_counts(), want->raw_counts(),
                          static_cast<size_t>(want->num_cells()) *
                              sizeof(int64_t)),
              0);
  };
  for (int a = 0; a < 3; ++a) {
    ASSERT_OK_AND_ASSIGN(const RuleCube* want, store.AttrCube(a));
    ASSERT_OK_AND_ASSIGN(const RuleCube* got, mapped.AttrCube(a));
    expect_same(want, got);
  }
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) {
      if (a == 1 && b == 2) continue;  // the deliberately damaged cube
      ASSERT_OK_AND_ASSIGN(const RuleCube* want, store.PairCube(a, b));
      ASSERT_OK_AND_ASSIGN(const RuleCube* got, mapped.PairCube(a, b));
      expect_same(want, got);
    }
  }

  // The damaged cube fails its lazy CRC check, and the failure is sticky.
  EXPECT_FALSE(mapped.PairCube(1, 2).ok());
  EXPECT_FALSE(mapped.PairCube(1, 2).ok());

  const MappingStats after = mapped.GetMappingStats();
  EXPECT_EQ(after.cubes_verified, after.cubes_total - 1)
      << "every cube but the damaged one should have verified";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opmap
