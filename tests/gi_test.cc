#include "gtest/gtest.h"
#include "opmap/common/random.h"
#include "opmap/cube/cube_store.h"
#include "opmap/gi/exceptions.h"
#include "opmap/gi/impressions.h"
#include "opmap/gi/influence.h"
#include "opmap/gi/trend.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;

Schema TrendSchema() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Categorical(
      "Hour", {"h0", "h1", "h2", "h3"}, /*ordered=*/true));
  attrs.push_back(Attribute::Categorical("Noise", {"x", "y"}));
  attrs.push_back(Attribute::Categorical("Class", {"ok", "drop"}));
  auto s = Schema::Make(std::move(attrs), 2);
  EXPECT_TRUE(s.ok());
  return s.MoveValue();
}

// Adds calls at `hour` with the given drop count out of `total`.
void AddHour(Dataset* d, ValueCode hour, int64_t total, int64_t drops) {
  AppendRows(d, {hour, 0, 1}, drops / 2);
  AppendRows(d, {hour, 1, 1}, drops - drops / 2);
  AppendRows(d, {hour, 0, 0}, (total - drops) / 2);
  AppendRows(d, {hour, 1, 0}, (total - drops) - (total - drops) / 2);
}

TEST(Trend, DetectsIncreasing) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 4000, 40);
  AddHour(&d, 1, 4000, 120);
  AddHour(&d, 2, 4000, 280);
  AddHour(&d, 3, 4000, 500);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(Trend t, DetectTrend(store, 0, 1, TrendOptions{}));
  EXPECT_EQ(t.direction, TrendDirection::kIncreasing);
  EXPECT_GT(t.agreement, 0.8);
  ASSERT_EQ(t.confidences.size(), 4u);
  EXPECT_LT(t.confidences[0], t.confidences[3]);
}

TEST(Trend, DetectsDecreasingOnComplementClass) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 4000, 40);
  AddHour(&d, 1, 4000, 120);
  AddHour(&d, 2, 4000, 280);
  AddHour(&d, 3, 4000, 500);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(Trend t, DetectTrend(store, 0, 0, TrendOptions{}));
  EXPECT_EQ(t.direction, TrendDirection::kDecreasing);
}

TEST(Trend, DetectsStable) {
  Dataset d(TrendSchema());
  for (ValueCode h = 0; h < 4; ++h) AddHour(&d, h, 4000, 100);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(Trend t, DetectTrend(store, 0, 1, TrendOptions{}));
  EXPECT_EQ(t.direction, TrendDirection::kStable);
}

TEST(Trend, NoiseIsNotATrend) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 4000, 100);
  AddHour(&d, 1, 4000, 400);
  AddHour(&d, 2, 4000, 60);
  AddHour(&d, 3, 4000, 300);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(Trend t, DetectTrend(store, 0, 1, TrendOptions{}));
  EXPECT_EQ(t.direction, TrendDirection::kNone);
}

TEST(Trend, MineTrendsFiltersUnordered) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 4000, 40);
  AddHour(&d, 1, 4000, 120);
  AddHour(&d, 2, 4000, 280);
  AddHour(&d, 3, 4000, 500);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(auto trends, MineTrends(store, TrendOptions{}));
  for (const Trend& t : trends) {
    EXPECT_EQ(t.attribute, 0);  // only the ordered Hour attribute
  }
  EXPECT_GE(trends.size(), 2u);  // drop increasing + ok decreasing
  TrendOptions all;
  all.ordered_attributes_only = false;
  ASSERT_OK_AND_ASSIGN(auto more, MineTrends(store, all));
  EXPECT_GE(more.size(), trends.size());
}

TEST(Exceptions, FlagsDeviantValue) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 5000, 50);
  AddHour(&d, 1, 5000, 50);
  AddHour(&d, 2, 5000, 50);
  AddHour(&d, 3, 5000, 400);  // 8% vs 1% baseline
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions opts;
  opts.min_significance = 2.0;
  ASSERT_OK_AND_ASSIGN(auto cells, MineAttributeExceptions(store, opts));
  ASSERT_FALSE(cells.empty());
  // The strongest exception must be h3's drop rate.
  EXPECT_EQ(cells[0].attribute, 0);
  EXPECT_EQ(cells[0].value, 3);
  EXPECT_EQ(cells[0].class_value, 1);
  EXPECT_GT(cells[0].deviation, 0.0);
}

TEST(Exceptions, MinBodyCountFilters) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 10, 8);  // wild rate but tiny population
  AddHour(&d, 1, 5000, 50);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions opts;
  opts.min_body_count = 100;
  ASSERT_OK_AND_ASSIGN(auto cells, MineAttributeExceptions(store, opts));
  for (const auto& c : cells) {
    EXPECT_GE(c.body_count, 100);
  }
}

TEST(Exceptions, PairExceptionsFindSuppressedInteraction) {
  // All (hour, noise) cells drop at 10% except (h1, y), which drops at
  // 0.5% — a protective interaction the multiplicative expectation model
  // cannot explain away (a single *hot* cell, by contrast, is perfectly
  // consistent with two independent odds factors).
  Dataset d(TrendSchema());
  auto add_cell = [&](ValueCode h, ValueCode n, int64_t drops) {
    AppendRows(&d, {h, n, 1}, drops);
    AppendRows(&d, {h, n, 0}, 2500 - drops);
  };
  add_cell(0, 0, 250);
  add_cell(0, 1, 250);
  add_cell(1, 0, 250);
  add_cell(1, 1, 12);  // suppressed cell
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions opts;
  opts.min_significance = 2.0;
  ASSERT_OK_AND_ASSIGN(auto cells, MinePairExceptions(store, 0, 1, opts));
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells[0].value, 1);        // Hour = h1
  EXPECT_EQ(cells[0].value2, 1);       // Noise = y
  EXPECT_EQ(cells[0].class_value, 1);  // drop
  EXPECT_LT(cells[0].deviation, 0.0);  // far below expectation
}

TEST(Exceptions, PairExceptionsQuietOnIndependentData) {
  // Class odds factorize exactly over the two attributes: no exceptions.
  Dataset d(TrendSchema());
  auto add_cell = [&](ValueCode h, ValueCode n, int64_t drops) {
    AppendRows(&d, {h, n, 1}, drops);
    AppendRows(&d, {h, n, 0}, 10000 - drops);
  };
  // Hour h1 doubles the rate, noise y triples it: cell rates 1/2/3/6 %.
  add_cell(0, 0, 100);
  add_cell(1, 0, 200);
  add_cell(0, 1, 300);
  add_cell(1, 1, 600);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions opts;
  opts.min_significance = 3.0;
  ASSERT_OK_AND_ASSIGN(auto cells, MinePairExceptions(store, 0, 1, opts));
  EXPECT_TRUE(cells.empty());
}

TEST(Influence, RanksCorrelatedAttributeFirst) {
  // Hour strongly determines the class; Noise is independent.
  Dataset d(TrendSchema());
  AddHour(&d, 0, 3000, 30);
  AddHour(&d, 3, 3000, 900);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(auto ranking, RankInfluentialAttributes(store));
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].attribute, 0);
  EXPECT_GT(ranking[0].cramers_v, ranking[1].cramers_v);
  EXPECT_LT(ranking[0].p_value, 0.01);
  EXPECT_GT(ranking[0].information_gain_bits,
            ranking[1].information_gain_bits);
}

TEST(Exceptions, FdrControlIsStricterThanRawThreshold) {
  // Many attribute values near the baseline plus one genuine deviation:
  // the raw 1-margin threshold fires on noise; BH keeps the real one.
  Dataset d(TrendSchema());
  Rng rng(77);
  // Baseline 2% drops over many random-ish cells.
  for (ValueCode h = 0; h < 4; ++h) {
    const int64_t drops = 78 + static_cast<int64_t>(rng.NextBounded(8));
    AddHour(&d, h, 4000, drops);
  }
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));

  ExceptionOptions raw;
  raw.min_significance = 0.2;  // permissive raw threshold
  ASSERT_OK_AND_ASSIGN(auto raw_cells, MineAttributeExceptions(store, raw));

  ExceptionOptions fdr;
  fdr.fdr = 0.05;
  ASSERT_OK_AND_ASSIGN(auto fdr_cells, MineAttributeExceptions(store, fdr));
  // FDR control reports no more than the permissive raw threshold.
  EXPECT_LE(fdr_cells.size(), raw_cells.size());
  // And every FDR-selected cell is strongly significant.
  for (const auto& c : fdr_cells) {
    EXPECT_GT(c.significance, 1.0);
  }
}

TEST(Exceptions, FdrKeepsGenuineDeviation) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 5000, 50);
  AddHour(&d, 1, 5000, 50);
  AddHour(&d, 2, 5000, 50);
  AddHour(&d, 3, 5000, 400);  // genuine exception
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions fdr;
  fdr.fdr = 0.01;
  ASSERT_OK_AND_ASSIGN(auto cells, MineAttributeExceptions(store, fdr));
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells[0].attribute, 0);
  EXPECT_EQ(cells[0].value, 3);
}

TEST(Impressions, CombinedPassAndReport) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 4000, 40);
  AddHour(&d, 1, 4000, 120);
  AddHour(&d, 2, 4000, 280);
  AddHour(&d, 3, 4000, 500);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  GiOptions options;
  options.exceptions.min_significance = 2.0;
  options.mine_interactions = true;
  ASSERT_OK_AND_ASSIGN(GeneralImpressions gi,
                       MineGeneralImpressions(store, options));
  EXPECT_EQ(gi.influence.size(), 2u);
  EXPECT_FALSE(gi.trends.empty());
  EXPECT_FALSE(gi.exceptions.empty());
  const std::string report = FormatGeneralImpressions(gi, store.schema());
  EXPECT_NE(report.find("Influential attributes"), std::string::npos);
  EXPECT_NE(report.find("Trends"), std::string::npos);
  EXPECT_NE(report.find("Exceptions"), std::string::npos);
  EXPECT_NE(report.find("Hour"), std::string::npos);
}

TEST(Impressions, TopInfluenceCapRespected) {
  Dataset d(TrendSchema());
  AddHour(&d, 0, 2000, 20);
  AddHour(&d, 3, 2000, 200);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  GiOptions options;
  options.top_influence = 1;
  ASSERT_OK_AND_ASSIGN(GeneralImpressions gi,
                       MineGeneralImpressions(store, options));
  EXPECT_EQ(gi.influence.size(), 1u);
  EXPECT_TRUE(gi.interactions.empty());  // off by default
}

TEST(Impressions, InteractionsFindCrossAttributeCell) {
  // Same suppressed-cell construction as the pair-exception test, found
  // through the all-pairs sweep.
  Dataset d(TrendSchema());
  auto add_cell = [&](ValueCode h, ValueCode n, int64_t drops) {
    AppendRows(&d, {h, n, 1}, drops);
    AppendRows(&d, {h, n, 0}, 2500 - drops);
  };
  add_cell(0, 0, 250);
  add_cell(0, 1, 250);
  add_cell(1, 0, 250);
  add_cell(1, 1, 12);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ExceptionOptions opts;
  opts.min_significance = 2.0;
  ASSERT_OK_AND_ASSIGN(auto cells, MineInteractions(store, opts, 5));
  ASSERT_FALSE(cells.empty());
  EXPECT_LE(cells.size(), 5u);
  EXPECT_EQ(cells[0].attribute, 0);
  EXPECT_EQ(cells[0].attribute2, 1);
}

TEST(TrendDirectionName, Names) {
  EXPECT_STREQ(TrendDirectionName(TrendDirection::kIncreasing), "increasing");
  EXPECT_STREQ(TrendDirectionName(TrendDirection::kDecreasing), "decreasing");
  EXPECT_STREQ(TrendDirectionName(TrendDirection::kStable), "stable");
  EXPECT_STREQ(TrendDirectionName(TrendDirection::kNone), "none");
}

}  // namespace
}  // namespace opmap
