// Tests of the cache-blocked and SIMD counting kernels: value-code
// packing, tile-size resolution, kernel-name parsing, and the golden
// guarantee that the blocked and SIMD kernels are bit-identical to the
// seed reference loop — for cube builds and CAR mining, across thread
// counts, tile sizes, and adversarial shapes (empty inputs, all-null
// columns, domain-width and bit-sliced boundaries, row counts that do
// not divide the tile, the vector width, or the SIMD sub-tile).

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/car/miner.h"
#include "opmap/common/simd.h"
#include "opmap/cube/count_kernels.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

ParallelOptions Threads(int n) {
  ParallelOptions options;
  options.num_threads = n;
  return options;
}

std::string SerializeStore(const CubeStore& store) {
  std::ostringstream out;
  EXPECT_OK(store.Save(&out));
  return out.str();
}

// ---------------------------------------------------------------------------
// ParseBlockRows / ResolveBlockRows
// ---------------------------------------------------------------------------

TEST(ParseBlockRows, AcceptsInRangeIntegers) {
  ASSERT_OK_AND_ASSIGN(int64_t one, ParseBlockRows("1"));
  EXPECT_EQ(one, 1);
  ASSERT_OK_AND_ASSIGN(int64_t dflt, ParseBlockRows("4096"));
  EXPECT_EQ(dflt, 4096);
  ASSERT_OK_AND_ASSIGN(int64_t max, ParseBlockRows("1048576"));
  EXPECT_EQ(max, 1048576);
}

TEST(ParseBlockRows, RejectsGarbage) {
  EXPECT_FALSE(ParseBlockRows("").ok());
  EXPECT_FALSE(ParseBlockRows("0").ok());
  EXPECT_FALSE(ParseBlockRows("-1").ok());
  EXPECT_FALSE(ParseBlockRows("abc").ok());
  EXPECT_FALSE(ParseBlockRows("4x").ok());
  EXPECT_FALSE(ParseBlockRows(" 4").ok());
  EXPECT_FALSE(ParseBlockRows("1048577").ok());
  EXPECT_FALSE(ParseBlockRows("99999999999999999999").ok());
  EXPECT_EQ(ParseBlockRows("0").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ResolveBlockRows, PerCallValueWinsOverEverything) {
  setenv("OPMAP_BLOCK_ROWS", "123", 1);
  EXPECT_EQ(ResolveBlockRows(64), 64);
  // Oversized per-call values clamp to the parse maximum.
  EXPECT_EQ(ResolveBlockRows(int64_t{1} << 30), 1048576);
  unsetenv("OPMAP_BLOCK_ROWS");
}

TEST(ResolveBlockRows, EnvVarThenDefault) {
  setenv("OPMAP_BLOCK_ROWS", "123", 1);
  EXPECT_EQ(ResolveBlockRows(0), 123);
  // Invalid environment values are ignored, like OPMAP_THREADS.
  setenv("OPMAP_BLOCK_ROWS", "abc", 1);
  EXPECT_EQ(ResolveBlockRows(0), kDefaultBlockRows);
  setenv("OPMAP_BLOCK_ROWS", "0", 1);
  EXPECT_EQ(ResolveBlockRows(0), kDefaultBlockRows);
  unsetenv("OPMAP_BLOCK_ROWS");
  EXPECT_EQ(ResolveBlockRows(0), kDefaultBlockRows);
}

// ---------------------------------------------------------------------------
// ParseCountKernel / ResolveCountKernel
// ---------------------------------------------------------------------------

TEST(ParseCountKernel, AcceptsTheThreeTierNames) {
  ASSERT_OK_AND_ASSIGN(CountKernel ref, ParseCountKernel("reference"));
  EXPECT_EQ(ref, CountKernel::kReference);
  ASSERT_OK_AND_ASSIGN(CountKernel blocked, ParseCountKernel("blocked"));
  EXPECT_EQ(blocked, CountKernel::kBlocked);
  ASSERT_OK_AND_ASSIGN(CountKernel simd, ParseCountKernel("simd"));
  EXPECT_EQ(simd, CountKernel::kSimd);
}

TEST(ParseCountKernel, RejectsEverythingElseNamingTheValue) {
  for (const char* bad : {"", "fast", "auto", "SIMD", " simd", "simd "}) {
    const Result<CountKernel> r = ParseCountKernel(bad);
    ASSERT_FALSE(r.ok()) << "'" << bad << "'";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
  // The message names the offending value so CLI errors are actionable.
  EXPECT_NE(ParseCountKernel("fast").status().ToString().find("'fast'"),
            std::string::npos);
}

TEST(ResolveCountKernel, ExplicitChoiceWinsOverTheEnvironment) {
  setenv("OPMAP_KERNEL", "reference", 1);
  EXPECT_EQ(ResolveCountKernel(CountKernel::kBlocked), CountKernel::kBlocked);
  EXPECT_EQ(ResolveCountKernel(CountKernel::kSimd), CountKernel::kSimd);
  EXPECT_EQ(ResolveCountKernel(CountKernel::kReference),
            CountKernel::kReference);
  unsetenv("OPMAP_KERNEL");
}

TEST(ResolveCountKernel, AutoTakesEnvVarThenHardwareDefault) {
  setenv("OPMAP_KERNEL", "reference", 1);
  EXPECT_EQ(ResolveCountKernel(CountKernel::kAuto), CountKernel::kReference);
  setenv("OPMAP_KERNEL", "blocked", 1);
  EXPECT_EQ(ResolveCountKernel(CountKernel::kAuto), CountKernel::kBlocked);
  // Invalid environment values are ignored, like OPMAP_THREADS.
  setenv("OPMAP_KERNEL", "warp9", 1);
  const CountKernel hardware_default = ResolveCountKernel(CountKernel::kAuto);
  unsetenv("OPMAP_KERNEL");
  EXPECT_EQ(ResolveCountKernel(CountKernel::kAuto), hardware_default);
  EXPECT_EQ(hardware_default, SimdAvailable() ? CountKernel::kSimd
                                              : CountKernel::kBlocked);
}

TEST(CountKernelName, RoundTripsEveryParsableTier) {
  for (const char* name : {"reference", "blocked", "simd"}) {
    ASSERT_OK_AND_ASSIGN(CountKernel kernel, ParseCountKernel(name));
    EXPECT_STREQ(CountKernelName(kernel), name);
  }
}

// ---------------------------------------------------------------------------
// PackedColumn / PackedColumnSet
// ---------------------------------------------------------------------------

TEST(PackedColumn, WidthFollowsDomainPlusSentinel) {
  const std::vector<ValueCode> codes = {0, kNullCode, 0};
  // domain + 1 codes must fit: 255 stays in one byte, 256 needs two
  // (sentinel == 256), 65535 stays in two, 65536 needs four.
  EXPECT_EQ(PackedColumn::Pack(codes.data(), 3, 1).width(), 1);
  EXPECT_EQ(PackedColumn::Pack(codes.data(), 3, 255).width(), 1);
  EXPECT_EQ(PackedColumn::Pack(codes.data(), 3, 256).width(), 2);
  EXPECT_EQ(PackedColumn::Pack(codes.data(), 3, 65535).width(), 2);
  EXPECT_EQ(PackedColumn::Pack(codes.data(), 3, 65536).width(), 4);
}

TEST(PackedColumn, NullsBecomeTheSentinel) {
  const std::vector<ValueCode> codes = {2, kNullCode, 0, 1, kNullCode};
  for (int domain : {3, 300, 70000}) {
    const PackedColumn col =
        PackedColumn::Pack(codes.data(), static_cast<int64_t>(codes.size()),
                           domain);
    ASSERT_EQ(col.num_rows(), 5);
    EXPECT_EQ(col.sentinel(), static_cast<uint32_t>(domain));
    EXPECT_EQ(col.Get(0), 2u);
    EXPECT_EQ(col.Get(1), col.sentinel());
    EXPECT_EQ(col.Get(2), 0u);
    EXPECT_EQ(col.Get(3), 1u);
    EXPECT_EQ(col.Get(4), col.sentinel());
  }
}

TEST(PackedColumn, GatherPacksTheRowSubsetInOrder) {
  const std::vector<ValueCode> codes = {5, 6, 7, kNullCode, 9};
  const std::vector<int64_t> rows = {4, 0, 3};
  const PackedColumn col = PackedColumn::PackGather(
      codes.data(), rows.data(), static_cast<int64_t>(rows.size()), 10);
  ASSERT_EQ(col.num_rows(), 3);
  EXPECT_EQ(col.Get(0), 9u);
  EXPECT_EQ(col.Get(1), 5u);
  EXPECT_EQ(col.Get(2), col.sentinel());
}

TEST(PackedColumnSet, ProjectedBytesCoversTheBuiltSet) {
  Dataset d(MakeSchema({{"A", {"a0", "a1", "a2"}},
                        {"B", {"b0", "b1"}},
                        {"Y", {"y0", "y1"}}}));
  AppendRows(&d, {0, 1, 0}, 100);
  const std::vector<int> attrs = {0, 1};
  const PackedColumnSet set = PackedColumnSet::Build(d, attrs);
  EXPECT_EQ(set.num_columns(), 2);
  EXPECT_EQ(set.num_rows(), 100);
  const int64_t projected =
      PackedColumnSet::ProjectedBytes(d.schema(), attrs, d.num_rows());
  EXPECT_GT(projected, 0);
  EXPECT_GE(set.MemoryUsageBytes(), projected);
}

TEST(BlockedKernelSupportedTest, RejectsFusedIndexOverflow) {
  std::vector<std::string> big;
  for (int i = 0; i < 65536; ++i) big.push_back("v" + std::to_string(i));
  std::vector<std::string> classes;
  for (int i = 0; i < 40000; ++i) classes.push_back("y" + std::to_string(i));
  // 65536 * 40000 overflows int32: the fused-index kernels must refuse
  // and callers fall back to the reference loop.
  const Schema schema = MakeSchema({{"Big", big}, {"Y", classes}});
  EXPECT_FALSE(BlockedKernelSupported(schema, {0}));
  const Schema small = MakeSchema({{"Big", big}, {"Y", {"y0", "y1"}}});
  EXPECT_TRUE(BlockedKernelSupported(small, {0}));
}

// ---------------------------------------------------------------------------
// Golden equality: blocked kernel vs the seed reference loop
// ---------------------------------------------------------------------------

Schema EqualitySchema() {
  return MakeSchema({{"A", {"a0", "a1", "a2", "a3"}},
                     {"B", {"b0", "b1", "b2"}},
                     {"C", {"c0", "c1", "c2", "c3", "c4"}},
                     {"D", {"d0", "d1"}},
                     {"E", {"e0", "e1", "e2"}},
                     {"Y", {"y0", "y1", "y2"}}});
}

// Deterministic pseudo-random dataset with a sprinkling of nulls in both
// attribute and class columns.
Dataset PseudoRandomDataset(int64_t rows) {
  Dataset d(EqualitySchema());
  const int domains[] = {4, 3, 5, 2, 3, 3};
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<ValueCode> codes;
    for (int domain : domains) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t draw = x >> 33;
      codes.push_back(draw % 23 == 0 ? kNullCode
                                     : static_cast<ValueCode>(
                                           draw % static_cast<uint64_t>(
                                                      domain)));
    }
    AppendRows(&d, codes, 1);
  }
  return d;
}

// Builds the store with the seed reference kernel serially, then expects
// byte-identical serialized stores from the blocked AND SIMD kernels
// across thread counts and tile sizes (including tiles that do not
// divide the row count). On machines without vector units the kSimd
// sweep exercises the automatic scalar fallback, which must be just as
// bit-identical.
void ExpectBlockedCubesMatchReference(const Dataset& data) {
  CubeStoreOptions ref;
  ref.kernel = CountKernel::kReference;
  ref.parallel = Threads(1);
  ASSERT_OK_AND_ASSIGN(CubeStore reference,
                       CubeBuilder::FromDataset(data, ref));
  const std::string reference_bytes = SerializeStore(reference);
  for (CountKernel kernel : {CountKernel::kBlocked, CountKernel::kSimd}) {
    for (int threads : {1, 2, 3, 8}) {
      for (int64_t block_rows : {int64_t{0}, int64_t{1}, int64_t{7}}) {
        CubeStoreOptions options;
        options.kernel = kernel;
        options.parallel = Threads(threads);
        options.block_rows = block_rows;
        ASSERT_OK_AND_ASSIGN(CubeStore store,
                             CubeBuilder::FromDataset(data, options));
        EXPECT_EQ(SerializeStore(store), reference_bytes)
            << "kernel=" << CountKernelName(kernel) << " threads=" << threads
            << " block_rows=" << block_rows;
      }
    }
  }
}

TEST(KernelEquality, CubeBuildMatchesReferenceOnRandomData) {
  // 6000 rows: not a multiple of any tested tile size, large enough that
  // the sharded path engages.
  ExpectBlockedCubesMatchReference(PseudoRandomDataset(6000));
}

TEST(KernelEquality, CubeBuildMatchesReferenceOnTinyInputs) {
  for (int64_t rows : {0, 1, 3, 7}) {
    ExpectBlockedCubesMatchReference(PseudoRandomDataset(rows));
  }
}

TEST(KernelEquality, CubeBuildMatchesReferenceWithAllNullColumn) {
  Dataset d(MakeSchema({{"A", {"a0", "a1"}},
                        {"B", {"b0", "b1", "b2"}},
                        {"Y", {"y0", "y1"}}}));
  for (int64_t r = 0; r < 100; ++r) {
    AppendRows(&d,
               {kNullCode, static_cast<ValueCode>(r % 3),
                r % 5 == 0 ? kNullCode : static_cast<ValueCode>(r % 2)},
               1);
  }
  ExpectBlockedCubesMatchReference(d);
}

TEST(KernelEquality, CubeBuildMatchesReferenceOnSingletonDomain) {
  Dataset d(MakeSchema(
      {{"One", {"only"}}, {"B", {"b0", "b1"}}, {"Y", {"y0", "y1"}}}));
  for (int64_t r = 0; r < 50; ++r) {
    AppendRows(&d, {0, static_cast<ValueCode>(r % 2),
                    static_cast<ValueCode>((r / 2) % 2)},
               1);
  }
  ExpectBlockedCubesMatchReference(d);
}

// One schema per packed width: domain 255 packs to one byte, 256 to two
// (the sentinel no longer fits a byte), 65536 to four.
Dataset WideDomainDataset(int domain, int64_t rows) {
  std::vector<std::string> labels;
  labels.reserve(static_cast<size_t>(domain));
  for (int i = 0; i < domain; ++i) labels.push_back("v" + std::to_string(i));
  Dataset d(MakeSchema(
      {{"Wide", labels}, {"B", {"b0", "b1"}}, {"Y", {"y0", "y1"}}}));
  uint64_t x = 0x2545F4914F6CDD1DULL;
  for (int64_t r = 0; r < rows; ++r) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Hit both ends of the dictionary so top codes exercise the width.
    const ValueCode v =
        r % 7 == 0 ? static_cast<ValueCode>(domain - 1)
                   : static_cast<ValueCode>((x >> 33) %
                                            static_cast<uint64_t>(domain));
    AppendRows(&d,
               {r % 11 == 0 ? kNullCode : v, static_cast<ValueCode>(r % 2),
                static_cast<ValueCode>((x >> 13) % 2)},
               1);
  }
  return d;
}

TEST(KernelEquality, CubeBuildMatchesReferenceAcrossPackedWidths) {
  // 15 and 16 straddle the bit-sliced small-domain kernel's cutoff
  // (domain <= 16); 255/256 straddle the one-vs-two-byte packing; 65536
  // packs to four bytes, which the vector tier cannot widen — inside a
  // kSimd build that column takes the per-column scalar fallback.
  for (int domain : {15, 16, 255, 256, 65536}) {
    SCOPED_TRACE(domain);
    ExpectBlockedCubesMatchReference(WideDomainDataset(domain, 1000));
  }
}

TEST(KernelEquality, CubeBuildMatchesReferenceAcrossSimdSubTileSeams) {
  // 2051 rows: crosses the 2048-row SIMD sub-tile once with a 3-row
  // scalar tail that is also not a vector-width multiple; 31 and 33
  // bracket a whole number of 8-lane (and 4-lane) vectors.
  for (int64_t rows : {31, 33, 2051}) {
    SCOPED_TRACE(rows);
    ExpectBlockedCubesMatchReference(PseudoRandomDataset(rows));
  }
}

TEST(KernelEquality, TightMemoryBudgetFallsBackWithoutChangingResults) {
  const Dataset data = PseudoRandomDataset(6000);
  CubeStoreOptions ref;
  ref.kernel = CountKernel::kReference;
  ref.parallel = Threads(1);
  ASSERT_OK_AND_ASSIGN(CubeStore reference,
                       CubeBuilder::FromDataset(data, ref));
  // No headroom for the packed scratch: AddDataset must drop back to the
  // reference kernel (and serial counting) rather than overshoot.
  CubeStoreOptions tight;
  tight.kernel = CountKernel::kBlocked;
  tight.parallel = Threads(8);
  tight.max_memory_bytes = reference.MemoryUsageBytes();
  ASSERT_OK_AND_ASSIGN(CubeStore clamped,
                       CubeBuilder::FromDataset(data, tight));
  EXPECT_EQ(SerializeStore(clamped), SerializeStore(reference));
}

// ---------------------------------------------------------------------------
// Golden equality: CAR mining
// ---------------------------------------------------------------------------

void ExpectSameRules(const RuleSet& a, const RuleSet& b) {
  ASSERT_EQ(a.rules().size(), b.rules().size());
  for (size_t i = 0; i < a.rules().size(); ++i) {
    const ClassRule& x = a.rules()[i];
    const ClassRule& y = b.rules()[i];
    ASSERT_EQ(x.conditions.size(), y.conditions.size()) << "rule " << i;
    for (size_t c = 0; c < x.conditions.size(); ++c) {
      EXPECT_EQ(x.conditions[c].attribute, y.conditions[c].attribute);
      EXPECT_EQ(x.conditions[c].value, y.conditions[c].value);
    }
    EXPECT_EQ(x.class_value, y.class_value);
    EXPECT_EQ(x.support_count, y.support_count);
    EXPECT_EQ(x.body_count, y.body_count);
  }
}

void ExpectBlockedRulesMatchReference(const Dataset& data,
                                      CarMinerOptions base) {
  base.kernel = CountKernel::kReference;
  base.parallel = Threads(1);
  ASSERT_OK_AND_ASSIGN(RuleSet reference,
                       MineClassAssociationRules(data, base));
  for (CountKernel kernel : {CountKernel::kBlocked, CountKernel::kSimd}) {
    for (int threads : {1, 3, 8}) {
      SCOPED_TRACE(std::string("kernel=") + CountKernelName(kernel) +
                   " threads=" + std::to_string(threads));
      CarMinerOptions options = base;
      options.kernel = kernel;
      options.parallel = Threads(threads);
      ASSERT_OK_AND_ASSIGN(RuleSet rules,
                           MineClassAssociationRules(data, options));
      ExpectSameRules(reference, rules);
    }
  }
}

TEST(KernelEquality, SingleClassMatchesReference) {
  // num_classes == 1: every fused index equals the value code and the
  // class column packs to a single non-sentinel value.
  Dataset d(MakeSchema({{"A", {"a0", "a1", "a2"}},
                        {"B", {"b0", "b1"}},
                        {"Y", {"only"}}}));
  for (int64_t r = 0; r < 100; ++r) {
    AppendRows(&d,
               {static_cast<ValueCode>(r % 3),
                r % 9 == 0 ? kNullCode : static_cast<ValueCode>(r % 2), 0},
               1);
  }
  ExpectBlockedCubesMatchReference(d);
  CarMinerOptions base;
  base.min_support = 0.0;
  ExpectBlockedRulesMatchReference(d, base);
}

TEST(KernelEquality, CarMiningMatchesReference) {
  const Dataset data = PseudoRandomDataset(6000);
  for (double min_support : {0.0, 0.01}) {
    SCOPED_TRACE(min_support);
    CarMinerOptions base;
    base.min_support = min_support;
    base.max_conditions = 2;
    ExpectBlockedRulesMatchReference(data, base);
  }
}

TEST(KernelEquality, CarMiningMatchesReferenceBeyondLevelTwo) {
  // max_conditions = 3: the blocked level-2 pass feeds the reference
  // level-3 combination loop; the handoff must preserve every count.
  const Dataset data = PseudoRandomDataset(3000);
  CarMinerOptions base;
  base.min_support = 0.01;
  base.max_conditions = 3;
  ExpectBlockedRulesMatchReference(data, base);
}

TEST(KernelEquality, RestrictedCarMiningMatchesReference) {
  // Fixed conditions exercise the gather form of the packing: only the
  // matching row subset is packed.
  const Dataset data = PseudoRandomDataset(6000);
  CarMinerOptions base;
  base.min_support = 0.005;
  base.max_conditions = 3;
  base.fixed_conditions = {Condition{3, 1}};
  ExpectBlockedRulesMatchReference(data, base);
}

TEST(KernelEquality, CarMiningMatchesReferenceOnTinyAndNullInputs) {
  for (int64_t rows : {0, 1, 3, 7}) {
    SCOPED_TRACE(rows);
    CarMinerOptions base;
    base.min_support = 0.0;
    ExpectBlockedRulesMatchReference(PseudoRandomDataset(rows), base);
  }
  Dataset nulls(MakeSchema({{"A", {"a0", "a1"}},
                            {"B", {"b0", "b1", "b2"}},
                            {"Y", {"y0", "y1"}}}));
  for (int64_t r = 0; r < 64; ++r) {
    AppendRows(&nulls,
               {kNullCode, static_cast<ValueCode>(r % 3),
                r % 3 == 0 ? kNullCode : static_cast<ValueCode>(r % 2)},
               1);
  }
  CarMinerOptions base;
  base.min_support = 0.0;
  ExpectBlockedRulesMatchReference(nulls, base);
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

TEST(MemoryAccounting, DatasetCountsColumnStorage) {
  Dataset d(EqualitySchema());
  const int64_t empty_bytes = d.MemoryUsageBytes();
  EXPECT_GT(empty_bytes, 0);  // column headers are not free
  AppendRows(&d, {0, 0, 0, 0, 0, 0}, 1000);
  // Six categorical columns of 1000 codes.
  EXPECT_GE(d.MemoryUsageBytes() - empty_bytes,
            static_cast<int64_t>(6 * 1000 * sizeof(ValueCode)));
}

TEST(MemoryAccounting, StoreUsageGrowsWithThePackedScratch) {
  const Dataset data = PseudoRandomDataset(4000);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(data, {}));
  // The budget check in AddDataset reserves ProjectedBytes on top of the
  // store's own usage; both must be positive and the projection must
  // scale with rows.
  std::vector<int> attrs;
  for (int a = 0; a < data.num_attributes(); ++a) {
    if (!data.schema().is_class(a)) attrs.push_back(a);
  }
  const int64_t p1 =
      PackedColumnSet::ProjectedBytes(data.schema(), attrs, 1000);
  const int64_t p4 =
      PackedColumnSet::ProjectedBytes(data.schema(), attrs, 4000);
  EXPECT_GT(p1, 0);
  EXPECT_EQ(p4, 4 * p1);
  EXPECT_GT(store.MemoryUsageBytes(), 0);
}

}  // namespace
}  // namespace opmap
