#include <map>

#include "gtest/gtest.h"
#include "opmap/car/miner.h"
#include "opmap/car/rule.h"
#include "opmap/car/rule_query.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

Schema SmallSchema() {
  return MakeSchema({{"A", {"a0", "a1"}},
                     {"B", {"b0", "b1", "b2"}},
                     {"C", {"yes", "no"}}});
}

Dataset SmallDataset() {
  Dataset d(SmallSchema());
  // 40 rows with a planted pattern: A=a1,B=b0 is mostly "yes".
  AppendRows(&d, {1, 0, 0}, 12);
  AppendRows(&d, {1, 0, 1}, 2);
  AppendRows(&d, {0, 1, 1}, 10);
  AppendRows(&d, {0, 2, 0}, 6);
  AppendRows(&d, {1, 2, 1}, 6);
  AppendRows(&d, {0, 0, 0}, 4);
  return d;
}

// Brute-force support/confidence for a rule, used as ground truth.
void BruteForce(const Dataset& d, const std::vector<Condition>& conds,
                ValueCode cls, int64_t* sup, int64_t* body) {
  *sup = 0;
  *body = 0;
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    bool match = true;
    for (const Condition& c : conds) {
      if (d.code(r, c.attribute) != c.value) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++*body;
    if (d.class_code(r) == cls) ++*sup;
  }
}

TEST(CarMiner, CountsMatchBruteForce) {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.0;
  opts.min_confidence = 0.0;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  ASSERT_FALSE(rules.empty());
  for (const ClassRule& r : rules.rules()) {
    int64_t sup, body;
    BruteForce(d, r.conditions, r.class_value, &sup, &body);
    EXPECT_EQ(r.support_count, sup) << r.ToString(d.schema(), d.num_rows());
    EXPECT_EQ(r.body_count, body) << r.ToString(d.schema(), d.num_rows());
  }
}

TEST(CarMiner, ZeroThresholdCoversCompleteSpace) {
  // With min-sup = min-conf = 0 every possible 1- and 2-condition rule is
  // materialized (paper Section III.B: no holes in the knowledge space).
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.0;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  const int64_t expected = CountPossibleRules(d.schema(), 1) +
                           CountPossibleRules(d.schema(), 2);
  EXPECT_EQ(static_cast<int64_t>(rules.size()), expected);
}

TEST(CarMiner, CountPossibleRulesFormula) {
  const Schema schema = SmallSchema();
  // 1-cond: (2 + 3) values * 2 classes = 10.
  EXPECT_EQ(CountPossibleRules(schema, 1), 10);
  // 2-cond: 2*3 value pairs * 2 classes = 12.
  EXPECT_EQ(CountPossibleRules(schema, 2), 12);
  EXPECT_EQ(CountPossibleRules(schema, 3), 0);  // only two attributes
}

TEST(CarMiner, MinSupportPrunes) {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.25;  // 10 of 40 rows
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.support_count, 10);
  }
  // The planted A=a1,B=b0 -> yes rule (12 rows) must be found.
  bool found = false;
  for (const ClassRule& r : rules.rules()) {
    if (r.conditions.size() == 2 && r.class_value == 0 &&
        r.support_count == 12) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CarMiner, MinConfidencePrunes) {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.8;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.Confidence(), 0.8);
  }
}

TEST(CarMiner, RestrictedMiningPrependsFixedConditions) {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.0;
  opts.max_conditions = 2;
  opts.fixed_conditions = {Condition{0, 1}};  // A = a1
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  for (const ClassRule& r : rules.rules()) {
    ASSERT_FALSE(r.conditions.empty());
    EXPECT_EQ(r.conditions[0].attribute, 0);
    EXPECT_EQ(r.conditions[0].value, 1);
    int64_t sup, body;
    BruteForce(d, r.conditions, r.class_value, &sup, &body);
    EXPECT_EQ(r.support_count, sup);
    EXPECT_EQ(r.body_count, body);
  }
}

TEST(CarMiner, ThreeConditionRules) {
  Schema schema = MakeSchema({{"A", {"a0", "a1"}},
                              {"B", {"b0", "b1"}},
                              {"C", {"c0", "c1"}},
                              {"Y", {"y", "n"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 0, 0, 0}, 20);
  AppendRows(&d, {0, 0, 1, 1}, 20);
  AppendRows(&d, {1, 1, 0, 0}, 20);
  AppendRows(&d, {1, 1, 1, 1}, 20);
  CarMinerOptions opts;
  opts.min_support = 0.1;
  opts.max_conditions = 3;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  bool found3 = false;
  for (const ClassRule& r : rules.rules()) {
    if (r.conditions.size() == 3) {
      found3 = true;
      int64_t sup, body;
      BruteForce(d, r.conditions, r.class_value, &sup, &body);
      EXPECT_EQ(r.support_count, sup);
      EXPECT_EQ(r.body_count, body);
    }
  }
  EXPECT_TRUE(found3);
}

TEST(CarMiner, RejectsBadOptions) {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 1.5;
  EXPECT_FALSE(MineClassAssociationRules(d, opts).ok());
  opts = {};
  opts.max_conditions = 0;
  EXPECT_FALSE(MineClassAssociationRules(d, opts).ok());
  opts = {};
  opts.fixed_conditions = {Condition{2, 0}};  // class attribute
  EXPECT_FALSE(MineClassAssociationRules(d, opts).ok());
  opts = {};
  opts.fixed_conditions = {Condition{0, 9}};  // value out of domain
  EXPECT_FALSE(MineClassAssociationRules(d, opts).ok());
}

TEST(ClassRule, SupportConfidenceToString) {
  ClassRule r;
  r.conditions = {Condition{0, 1}};
  r.class_value = 0;
  r.support_count = 12;
  r.body_count = 14;
  EXPECT_NEAR(r.Support(40), 0.3, 1e-12);
  EXPECT_NEAR(r.Confidence(), 12.0 / 14.0, 1e-12);
  const std::string s = r.ToString(SmallSchema(), 40);
  EXPECT_NE(s.find("A=a1"), std::string::npos);
  EXPECT_NE(s.find("C=yes"), std::string::npos);
}

RuleSet MinedSmall() {
  Dataset d = SmallDataset();
  CarMinerOptions opts;
  opts.min_support = 0.0;
  opts.max_conditions = 2;
  auto rules = MineClassAssociationRules(d, opts);
  EXPECT_TRUE(rules.ok());
  return rules.MoveValue();
}

TEST(RuleQuery, FilterByClassAndBounds) {
  RuleSet rules = MinedSmall();
  RuleFilter filter;
  filter.class_value = 0;  // "yes"
  filter.min_support = 0.1;
  RuleSet selected = SelectRules(rules, filter);
  ASSERT_FALSE(selected.empty());
  for (const ClassRule& r : selected.rules()) {
    EXPECT_EQ(r.class_value, 0);
    EXPECT_GE(r.Support(rules.num_rows()), 0.1);
  }
  // Tight confidence window.
  RuleFilter conf;
  conf.min_confidence = 0.99;
  const RuleSet confident = SelectRules(rules, conf);
  for (const ClassRule& r : confident.rules()) {
    EXPECT_GE(r.Confidence(), 0.99);
  }
}

TEST(RuleQuery, FilterByAttributeAndCondition) {
  RuleSet rules = MinedSmall();
  RuleFilter mentions;
  mentions.mentions_attribute = 1;  // B
  RuleSet selected = SelectRules(rules, mentions);
  ASSERT_FALSE(selected.empty());
  for (const ClassRule& r : selected.rules()) {
    bool found = false;
    for (const Condition& c : r.conditions) {
      if (c.attribute == 1) found = true;
    }
    EXPECT_TRUE(found);
  }
  RuleFilter exact;
  exact.contains_condition = Condition{0, 1};  // A = a1
  const RuleSet exact_rules = SelectRules(rules, exact);
  for (const ClassRule& r : exact_rules.rules()) {
    bool found = false;
    for (const Condition& c : r.conditions) {
      if (c == Condition{0, 1}) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(RuleQuery, FilterByLength) {
  RuleSet rules = MinedSmall();
  RuleFilter one;
  one.max_conditions = 1;
  const RuleSet short_rules = SelectRules(rules, one);
  for (const ClassRule& r : short_rules.rules()) {
    EXPECT_LE(r.conditions.size(), 1u);
  }
  RuleFilter two;
  two.min_conditions = 2;
  const RuleSet long_rules = SelectRules(rules, two);
  for (const ClassRule& r : long_rules.rules()) {
    EXPECT_GE(r.conditions.size(), 2u);
  }
}

TEST(RuleQuery, GroupByAttributesMatchesCubes) {
  RuleSet rules = MinedSmall();
  const auto groups = GroupRulesByAttributes(rules);
  // With two non-class attributes A, B: groups {A}, {B}, {A,B}.
  EXPECT_EQ(groups.size(), 3u);
  ASSERT_TRUE(groups.count({0, 1}) > 0);
  // The {A,B} group has one rule per (value pair, class) = the pair cube.
  EXPECT_EQ(groups.at({0, 1}).size(), 2u * 3u * 2u);
}

TEST(RuleQuery, Summary) {
  RuleSet rules = MinedSmall();
  const RuleSetSummary s = SummarizeRules(rules);
  EXPECT_EQ(s.total, static_cast<int64_t>(rules.size()));
  int64_t per_class_total = 0;
  for (const auto& [cls, count] : s.per_class) per_class_total += count;
  EXPECT_EQ(per_class_total, s.total);
  EXPECT_LE(s.min_support, s.max_support);
  EXPECT_LE(s.min_confidence, s.max_confidence);
  const std::string text = s.ToString(SmallSchema());
  EXPECT_NE(text.find("rules"), std::string::npos);
  EXPECT_NE(text.find("yes="), std::string::npos);
  // Empty set summary.
  EXPECT_EQ(SummarizeRules(RuleSet(0)).total, 0);
}

TEST(RuleSet, SortAndFilter) {
  RuleSet rules(100);
  ClassRule high;
  high.class_value = 0;
  high.support_count = 10;
  high.body_count = 10;  // conf 1.0
  ClassRule low;
  low.class_value = 1;
  low.support_count = 5;
  low.body_count = 20;  // conf 0.25
  rules.Add(low);
  rules.Add(high);
  rules.SortByConfidence();
  EXPECT_DOUBLE_EQ(rules.rule(0).Confidence(), 1.0);
  EXPECT_EQ(rules.FilterByClass(1).size(), 1u);
  ClassRule long_rule = high;
  long_rule.conditions = {Condition{0, 0}, Condition{1, 0}};
  rules.Add(long_rule);
  EXPECT_EQ(rules.FilterByLength(1).size(), 2u);
}

}  // namespace
}  // namespace opmap
