// Serving-path equivalence suite: the same queries must produce
// byte-identical output whether the store was loaded from a v1, v2 or v3
// file, eagerly or through the lazy v3 mapping, at any thread count, with
// the shared result cache on or off (acceptance criterion of the zero-copy
// serving change). Each configuration runs every query twice so the cached
// second pass is compared against the baseline too.

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/serde.h"
#include "opmap/compare/comparator.h"
#include "opmap/compare/report.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "opmap/data/dataset_io.h"
#include "test_util.h"

namespace opmap {
namespace {

Dataset ServingDataset() {
  CallLogConfig config;
  config.num_records = 4000;
  config.num_attributes = 6;
  config.values_per_attribute = 4;
  config.num_phone_models = 5;
  config.seed = 7;
  auto generator = CallLogGenerator::Make(config);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  return generator->Generate();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The seed's v1 format, written independently of the library's save path
// (same replica as in fault_injection_test.cc).
std::string WriteV1CubeBytes(const CubeStore& store) {
  std::ostringstream out;
  out.write("OPMC", 4);
  BinaryWriter w(&out);
  w.WriteU32(1);  // version
  WriteSchema(store.schema(), &out);
  w.WriteU64(store.attributes().size());
  for (int a : store.attributes()) w.WriteI32(a);
  w.WriteU8(1);  // has pair cubes
  w.WriteI64(store.num_records());
  w.WriteI64Vector(store.class_counts());
  auto write_cube = [&w](const RuleCube& cube) {
    w.WriteU64(static_cast<uint64_t>(cube.num_cells()));
    for (int64_t i = 0; i < cube.num_cells(); ++i) {
      w.WriteI64(cube.raw_counts()[i]);
    }
  };
  for (int a : store.attributes()) {
    auto cube = store.AttrCube(a);
    EXPECT_TRUE(cube.ok());
    write_cube(**cube);
  }
  const auto& attrs = store.attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      auto cube = store.PairCube(attrs[i], attrs[j]);
      EXPECT_TRUE(cube.ok());
      write_cube(**cube);
    }
  }
  return out.str();
}

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

TEST(ServingEquivalence, ByteIdenticalAcrossFormatsThreadsAndCache) {
  const Dataset data = ServingDataset();
  ASSERT_OK_AND_ASSIGN(CubeStore built, CubeBuilder::FromDataset(data));
  const Schema& schema = built.schema();
  const std::string attr0 = schema.attribute(0).name();
  const std::string attr1 = schema.attribute(1).name();

  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = 1;

  // Baseline answers from the freshly built store: serial, uncached.
  Comparator baseline(&built);
  ASSERT_OK_AND_ASSIGN(ComparisonResult base_result, baseline.Compare(spec));
  const std::string base_report = FormatComparisonReport(base_result, schema);
  ASSERT_OK_AND_ASSIGN(std::vector<PairSummary> base_pairs,
                       baseline.CompareAllPairs(0, spec.target_class));
  const std::string base_table = FormatPairSummaries(base_pairs, schema, 0);
  ExplorationSession base_session(&built);
  ASSERT_OK(base_session.OpenAttribute(attr0));
  ASSERT_OK(base_session.DrillDown(attr1));
  ASSERT_OK_AND_ASSIGN(std::string base_view, base_session.Render());

  const std::string v1_path = TempPath("serving_v1.opmc");
  const std::string v2_path = TempPath("serving_v2.opmc");
  const std::string v3_path = TempPath("serving_v3.opmc");
  WriteRaw(v1_path, WriteV1CubeBytes(built));
  ASSERT_OK(built.SaveToFile(v2_path, nullptr, CubeStore::SaveFormat::kV2));
  ASSERT_OK(built.SaveToFile(v3_path));  // defaults to kV3Aligned

  CubeLoadOptions eager;
  eager.use_mmap = false;
  std::vector<std::pair<std::string, CubeStore>> variants;
  {
    ASSERT_OK_AND_ASSIGN(CubeStore s, CubeStore::LoadFromFile(v1_path));
    variants.emplace_back("v1", std::move(s));
  }
  {
    ASSERT_OK_AND_ASSIGN(CubeStore s, CubeStore::LoadFromFile(v2_path));
    variants.emplace_back("v2", std::move(s));
  }
  {
    ASSERT_OK_AND_ASSIGN(CubeStore s,
                         CubeStore::LoadFromFile(v3_path, nullptr, eager));
    variants.emplace_back("v3-eager", std::move(s));
  }
  {
    ASSERT_OK_AND_ASSIGN(CubeStore s, CubeStore::LoadFromFile(v3_path));
    ASSERT_TRUE(s.GetMappingStats().mapped);
    variants.emplace_back("v3-mmap", std::move(s));
  }

  for (const auto& [name, store] : variants) {
    for (int threads : {1, 2, 8}) {
      for (int64_t cache_bytes : {int64_t{0}, int64_t{8} << 20}) {
        SCOPED_TRACE(name + " threads=" + std::to_string(threads) +
                     " cache_bytes=" + std::to_string(cache_bytes));
        ParallelOptions parallel;
        parallel.num_threads = threads;
        QueryEngine engine(&store, cache_bytes, parallel);

        // Twice: the second pass is a cache hit when the cache is on, and
        // must still be byte-identical.
        for (int rep = 0; rep < 2; ++rep) {
          ASSERT_OK_AND_ASSIGN(auto result, engine.Compare(spec));
          EXPECT_EQ(FormatComparisonReport(*result, schema), base_report);
        }
        ASSERT_OK_AND_ASSIGN(std::vector<PairSummary> pairs,
                             engine.CompareAllPairs(0, spec.target_class));
        EXPECT_EQ(FormatPairSummaries(pairs, schema, 0), base_table);

        QueryCache view_cache(cache_bytes);
        ExplorationSession session(&store);
        if (cache_bytes > 0) session.set_cache(&view_cache);
        ASSERT_OK(session.OpenAttribute(attr0));
        ASSERT_OK(session.DrillDown(attr1));
        for (int rep = 0; rep < 2; ++rep) {
          ASSERT_OK_AND_ASSIGN(std::string view, session.Render());
          EXPECT_EQ(view, base_view);
        }
      }
    }
  }

  // The mapped variant answered every query above, so its lazy
  // verification must have covered the cubes the queries touched.
  EXPECT_GT(variants.back().second.GetMappingStats().cubes_verified, 0);

  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(v3_path.c_str());
}

}  // namespace
}  // namespace opmap
