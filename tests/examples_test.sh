#!/usr/bin/env bash
# Smoke test for the example binaries: each must run at a reduced scale and
# print the markers that indicate its scenario worked. Arguments: the four
# example binary paths (quickstart, call_log_analysis,
# manufacturing_defects, explorer).
set -euo pipefail

QUICKSTART="$1"
CALL_LOG="$2"
MANUFACTURING="$3"
EXPLORER="$4"

fail() { echo "FAIL: $1" >&2; exit 1; }

out="$("$QUICKSTART")"
echo "$out" | grep -q "Ranked distinguishing attributes" \
    || fail "quickstart report"
echo "$out" | grep -q "TimeOfCall" || fail "quickstart finds TimeOfCall"
echo "$out" | grep -q "morning" || fail "quickstart morning breakdown"

out="$("$CALL_LOG" --records=30000 --attributes=12)"
echo "$out" | grep -q "Overall visualization" || fail "call_log overview"
echo "$out" | grep -q "Most influential attributes" || fail "call_log GI"
echo "$out" | grep -q "Restricted mining under" || fail "call_log drilldown"
echo "$out" | grep -q "#1  TimeOfCall" || fail "call_log planted cause"

out="$("$MANUFACTURING" --rows=20000)"
echo "$out" | grep -q "OvenTempC" || fail "manufacturing cause"
echo "$out" | grep -q "PROPERTY ATTRIBUTE\|property" \
    || fail "manufacturing property attribute"

out="$(printf 'open PhoneModel\ndrill TimeOfCall\nslice PhoneModel ph03\nback\ncompare PhoneModel ph01 ph03 dropped-while-in-progress\nview TimeOfCall\nbogus\nquit\n' \
    | "$EXPLORER" --records=20000 --attributes=10)"
echo "$out" | grep -q "view: PhoneModel > drill TimeOfCall" \
    || fail "explorer olap path"
echo "$out" | grep -q "Ranked distinguishing attributes" \
    || fail "explorer compare"
echo "$out" | grep -q "unknown command 'bogus'" || fail "explorer errors"

echo "PASS"
