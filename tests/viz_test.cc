#include "gtest/gtest.h"
#include <fstream>
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "opmap/viz/bars.h"
#include "opmap/viz/color.h"
#include "opmap/viz/export.h"
#include "opmap/viz/html_report.h"
#include "opmap/viz/views.h"
#include "test_util.h"

namespace opmap {
namespace {

TEST(Bars, HorizontalBar) {
  EXPECT_EQ(HorizontalBar(0.0, 4), "....");
  EXPECT_EQ(HorizontalBar(0.5, 4), "##..");
  EXPECT_EQ(HorizontalBar(1.0, 4), "####");
  EXPECT_EQ(HorizontalBar(2.0, 4), "####");   // clamped
  EXPECT_EQ(HorizontalBar(-1.0, 4), "....");  // clamped
}

TEST(Bars, BarWithWhisker) {
  const std::string b = BarWithWhisker(0.5, 0.75, 8);
  EXPECT_EQ(b, "####~~..");
  EXPECT_EQ(BarWithWhisker(0.5, 0.25, 8), "####....");  // upper >= fraction
}

TEST(Bars, Sparkline) {
  const std::string s = Sparkline({0.0, 0.5, 1.0}, 1.0);
  // Zero maps to a blank, max maps to a full block.
  EXPECT_EQ(s.substr(0, 1), " ");
  EXPECT_NE(s.find("█"), std::string::npos);
  EXPECT_EQ(Sparkline({}, 1.0), "");
  // Autoscaling: largest value gets the full block.
  EXPECT_NE(Sparkline({1.0, 3.0}).find("█"), std::string::npos);
}

TEST(Color, ColorizeWrapsOnlyWhenEnabled) {
  EXPECT_EQ(Colorize("x", AnsiColor::kRed, ColorMode::kNever), "x");
  EXPECT_EQ(Colorize("x", AnsiColor::kRed, ColorMode::kAlways),
            "\x1b[31mx\x1b[0m");
  EXPECT_EQ(Colorize("x", AnsiColor::kDefault, ColorMode::kAlways), "x");
  EXPECT_EQ(Colorize("x", AnsiColor::kGreen, ColorMode::kAlways),
            "\x1b[32mx\x1b[0m");
  EXPECT_EQ(Colorize("x", AnsiColor::kGray, ColorMode::kAlways),
            "\x1b[90mx\x1b[0m");
}

TEST(Bars, TrendArrowAndPad) {
  EXPECT_EQ(TrendArrow(TrendDirection::kIncreasing), "↑");
  EXPECT_EQ(TrendArrow(TrendDirection::kDecreasing), "↓");
  EXPECT_EQ(TrendArrow(TrendDirection::kStable), "→");
  EXPECT_EQ(TrendArrow(TrendDirection::kNone), " ");
  EXPECT_EQ(PadTo("ab", 4), "ab  ");
  EXPECT_EQ(PadTo("abcdef", 4), "abcd");
}

class ViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CallLogConfig config;
    config.num_records = 20000;
    config.num_attributes = 8;
    config.num_phone_models = 4;
    config.phone_drop_multiplier = {1.0, 3.0};
    config.effects.push_back(PlantedEffect{
        "TimeOfCall", "morning", 1, kDroppedWhileInProgress, 5.0});
    auto gen = CallLogGenerator::Make(config);
    ASSERT_TRUE(gen.ok());
    dataset_ = std::make_unique<Dataset>(gen->Generate());
    auto store = CubeBuilder::FromDataset(*dataset_);
    ASSERT_TRUE(store.ok());
    store_ = std::make_unique<CubeStore>(std::move(store).MoveValue());
  }

  std::unique_ptr<Dataset> dataset_;
  std::unique_ptr<CubeStore> store_;
};

TEST_F(ViewsTest, OverviewContainsAllAttributesAndClasses) {
  ASSERT_OK_AND_ASSIGN(std::string view, RenderOverview(*store_));
  EXPECT_NE(view.find("PhoneModel"), std::string::npos);
  EXPECT_NE(view.find("TimeOfCall"), std::string::npos);
  EXPECT_NE(view.find("ended-successfully"), std::string::npos);
  EXPECT_NE(view.find("dropped-while-in-progress"), std::string::npos);
  EXPECT_NE(view.find("class distribution"), std::string::npos);
}

TEST_F(ViewsTest, OverviewFlagsWideAttributes) {
  OverviewOptions opts;
  opts.grid_width = 3;  // narrower than every domain
  ASSERT_OK_AND_ASSIGN(std::string view, RenderOverview(*store_, opts));
  EXPECT_NE(view.find("PhoneModel*"), std::string::npos);
}

TEST_F(ViewsTest, DetailShowsCountsAndPercentages) {
  ASSERT_OK_AND_ASSIGN(std::string view, RenderDetail(*store_, 0));
  EXPECT_NE(view.find("Detailed visualization: PhoneModel"),
            std::string::npos);
  EXPECT_NE(view.find("ph01"), std::string::npos);
  EXPECT_NE(view.find("sup="), std::string::npos);
  EXPECT_NE(view.find("%"), std::string::npos);
}

TEST_F(ViewsTest, ComparisonViewShowsBarsAndWhiskers) {
  Comparator comparator(store_.get());
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
  ASSERT_OK_AND_ASSIGN(
      std::string view,
      RenderComparisonView(result, store_->schema(), 1 /*TimeOfCall*/));
  EXPECT_NE(view.find("Comparison view: TimeOfCall"), std::string::npos);
  EXPECT_NE(view.find("morning"), std::string::npos);
  EXPECT_NE(view.find("ph01"), std::string::npos);
  EXPECT_NE(view.find("ph02"), std::string::npos);
  EXPECT_NE(view.find("±"), std::string::npos);
  // Property view variant (Fig 8).
  ASSERT_OK_AND_ASSIGN(int hw, store_->schema().IndexOf("HardwareVersion1"));
  ASSERT_OK_AND_ASSIGN(std::string prop_view,
                       RenderComparisonView(result, store_->schema(), hw));
  EXPECT_NE(prop_view.find("PROPERTY ATTRIBUTE"), std::string::npos);
  // Unknown attribute errors.
  EXPECT_FALSE(
      RenderComparisonView(result, store_->schema(), 0).ok());
}

TEST_F(ViewsTest, ColorModeEmitsAnsiOnlyWhenEnabled) {
  DetailOptions plain;
  ASSERT_OK_AND_ASSIGN(std::string no_color, RenderDetail(*store_, 0, plain));
  EXPECT_EQ(no_color.find("\x1b["), std::string::npos);
  DetailOptions colored;
  colored.color = ColorMode::kAlways;
  ASSERT_OK_AND_ASSIGN(std::string with_color,
                       RenderDetail(*store_, 0, colored));
  EXPECT_NE(with_color.find("\x1b["), std::string::npos);

  Comparator comparator(store_.get());
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
  CompareViewOptions view;
  view.color = ColorMode::kAlways;
  ASSERT_OK_AND_ASSIGN(
      std::string cmp_view,
      RenderComparisonView(result, store_->schema(), 1, view));
  EXPECT_NE(cmp_view.find("\x1b[32m"), std::string::npos);  // green good bar
  EXPECT_NE(cmp_view.find("\x1b[31m"), std::string::npos);  // red bad bar
}

TEST_F(ViewsTest, CubeExports) {
  ASSERT_OK_AND_ASSIGN(const RuleCube* cube, store_->AttrCube(0));
  const std::string csv = CubeToCsv(*cube, 1);
  EXPECT_NE(csv.find("PhoneModel,CallDisposition,count,support,confidence"),
            std::string::npos);
  EXPECT_NE(csv.find("ph01"), std::string::npos);
  const std::string json = CubeToJson(*cube);
  EXPECT_NE(json.find("\"dims\""), std::string::npos);
  EXPECT_NE(json.find("\"cells\""), std::string::npos);
}

TEST_F(ViewsTest, HtmlReportIsSelfContained) {
  Comparator comparator(store_.get());
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));

  HtmlReportOptions options;
  options.title = "Test <report> & more";
  const std::string html =
      RenderHtmlReport(result, store_->schema(), options);
  // Structure.
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Ranked distinguishing attributes"),
            std::string::npos);
  EXPECT_NE(html.find("TimeOfCall"), std::string::npos);
  // Title is escaped.
  EXPECT_NE(html.find("Test &lt;report&gt; &amp; more"), std::string::npos);
  EXPECT_EQ(html.find("<report>"), std::string::npos);
  // Property section present.
  EXPECT_NE(html.find("property attribute"), std::string::npos);
  // No external references.
  EXPECT_EQ(html.find("http://"), std::string::npos);
  EXPECT_EQ(html.find("<script"), std::string::npos);
}

TEST_F(ViewsTest, HtmlReportWithImpressionsAndFile) {
  Comparator comparator(store_.get());
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
  ASSERT_OK_AND_ASSIGN(GeneralImpressions gi,
                       MineGeneralImpressions(*store_, {}));
  HtmlReportOptions options;
  options.impressions = &gi;
  const std::string path = ::testing::TempDir() + "/opmap_report.html";
  ASSERT_OK(WriteHtmlReport(result, store_->schema(), path, options));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("General impressions"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ViewsTest, ComparisonJsonExport) {
  Comparator comparator(store_.get());
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
  const std::string json = ComparisonToJson(result, store_->schema());
  EXPECT_NE(json.find("\"ranked\""), std::string::npos);
  EXPECT_NE(json.find("\"properties\""), std::string::npos);
  EXPECT_NE(json.find("TimeOfCall"), std::string::npos);
  EXPECT_NE(json.find("\"cf1\""), std::string::npos);
}

}  // namespace
}  // namespace opmap
