#include <cmath>

#include "gtest/gtest.h"
#include "opmap/discretize/discretizer.h"
#include "opmap/discretize/methods.h"
#include "test_util.h"

namespace opmap {
namespace {

TEST(IntervalOf, MapsValuesToIntervals) {
  const std::vector<double> cuts = {1.0, 5.0};
  EXPECT_EQ(IntervalOf(0.0, cuts), 0);
  EXPECT_EQ(IntervalOf(1.0, cuts), 0);   // boundary belongs to the left
  EXPECT_EQ(IntervalOf(1.001, cuts), 1);
  EXPECT_EQ(IntervalOf(5.0, cuts), 1);
  EXPECT_EQ(IntervalOf(9.0, cuts), 2);
  EXPECT_EQ(IntervalOf(3.0, {}), 0);
}

TEST(IntervalLabels, HumanReadable) {
  const auto labels = IntervalLabels({1.5, 3.0});
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "(-inf,1.500000]");
  EXPECT_EQ(labels[1], "(1.500000,3.000000]");
  EXPECT_EQ(labels[2], "(3.000000,+inf)");
  EXPECT_EQ(IntervalLabels({}).size(), 1u);
}

TEST(EqualWidth, SplitsRange) {
  EqualWidthDiscretizer d(4);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts({0, 1, 2, 3, 4, 5, 6, 7, 8},
                                                {}, 0));
  ASSERT_EQ(cuts.size(), 3u);
  EXPECT_DOUBLE_EQ(cuts[0], 2.0);
  EXPECT_DOUBLE_EQ(cuts[1], 4.0);
  EXPECT_DOUBLE_EQ(cuts[2], 6.0);
}

TEST(EqualWidth, DegenerateColumn) {
  EqualWidthDiscretizer d(4);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts({3, 3, 3}, {}, 0));
  EXPECT_TRUE(cuts.empty());
  ASSERT_OK_AND_ASSIGN(cuts, d.ComputeCuts({}, {}, 0));
  EXPECT_TRUE(cuts.empty());
  EXPECT_FALSE(EqualWidthDiscretizer(0).ComputeCuts({1, 2}, {}, 0).ok());
}

TEST(EqualFrequency, BalancedBins) {
  EqualFrequencyDiscretizer d(3);
  std::vector<double> values;
  for (int i = 0; i < 90; ++i) values.push_back(i);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, {}, 0));
  ASSERT_EQ(cuts.size(), 2u);
  // Each interval should hold ~30 values.
  int counts[3] = {0, 0, 0};
  for (double v : values) ++counts[IntervalOf(v, cuts)];
  EXPECT_EQ(counts[0], 30);
  EXPECT_EQ(counts[1], 30);
  EXPECT_EQ(counts[2], 30);
}

TEST(EqualFrequency, TiesDoNotStraddle) {
  EqualFrequencyDiscretizer d(2);
  // 10 copies of 1 followed by one 2: the cut must not split the ties.
  std::vector<double> values(10, 1.0);
  values.push_back(2.0);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, {}, 0));
  for (double c : cuts) {
    EXPECT_GT(c, 1.0);
    EXPECT_LT(c, 2.0);
  }
}

TEST(EntropyMdl, FindsClassBoundary) {
  // Class flips exactly at 50: a single cut near 49.5 is expected.
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 100; ++i) {
    values.push_back(i);
    classes.push_back(i < 50 ? 0 : 1);
  }
  EntropyMdlDiscretizer d;
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, classes, 2));
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_NEAR(cuts[0], 49.5, 0.01);
}

TEST(EntropyMdl, NoCutOnNoise) {
  // Class independent of value: MDL should refuse to cut.
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 200; ++i) {
    values.push_back(i);
    classes.push_back(i % 2);
  }
  EntropyMdlDiscretizer d;
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, classes, 2));
  EXPECT_TRUE(cuts.empty());
}

TEST(EntropyMdl, RespectsMaxCuts) {
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 300; ++i) {
    values.push_back(i);
    classes.push_back((i / 100) % 3);  // three clean segments
  }
  EntropyMdlDiscretizer unlimited;
  ASSERT_OK_AND_ASSIGN(auto cuts, unlimited.ComputeCuts(values, classes, 3));
  EXPECT_EQ(cuts.size(), 2u);
  EntropyMdlDiscretizer capped(1);
  ASSERT_OK_AND_ASSIGN(cuts, capped.ComputeCuts(values, classes, 3));
  EXPECT_EQ(cuts.size(), 1u);
}

TEST(EntropyMdl, RequiresAlignedClasses) {
  EntropyMdlDiscretizer d;
  EXPECT_FALSE(d.ComputeCuts({1, 2, 3}, {0, 1}, 2).ok());
}

Dataset MixedDataset() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("rssi"));
  attrs.push_back(Attribute::Categorical("phone", {"ph1", "ph2"}));
  attrs.push_back(Attribute::Categorical("c", {"ok", "drop"}));
  auto schema = Schema::Make(std::move(attrs), 2);
  EXPECT_TRUE(schema.ok());
  Dataset d(schema.MoveValue());
  // Strong rssi/class relationship: rssi < 0 -> drop.
  for (int i = 0; i < 200; ++i) {
    const double rssi = i - 100;
    const ValueCode cls = rssi < 0 ? 1 : 0;
    auto st = d.AppendRow({Cell::Numeric(rssi),
                           Cell::Categorical(static_cast<ValueCode>(i % 2)),
                           Cell::Categorical(cls)});
    EXPECT_TRUE(st.ok());
  }
  return d;
}

TEST(DiscretizeDataset, ReplacesContinuousColumns) {
  Dataset d = MixedDataset();
  EntropyMdlDiscretizer method;
  ASSERT_OK_AND_ASSIGN(Dataset out, DiscretizeDataset(d, method));
  EXPECT_TRUE(out.schema().AllCategorical());
  EXPECT_EQ(out.num_rows(), d.num_rows());
  const Attribute& rssi = out.schema().attribute(0);
  EXPECT_TRUE(rssi.ordered());
  EXPECT_GE(rssi.domain(), 2);
  // Categorical columns pass through untouched.
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(out.code(r, 1), d.code(r, 1));
    EXPECT_EQ(out.code(r, 2), d.code(r, 2));
  }
}

TEST(DiscretizeDataset, RejectsNaN) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  auto schema = Schema::Make(std::move(attrs), 1);
  ASSERT_TRUE(schema.ok());
  Dataset d(schema.MoveValue());
  ASSERT_OK(d.AppendRow({Cell::Numeric(std::nan("")), Cell::Categorical(0)}));
  EqualWidthDiscretizer method(2);
  EXPECT_FALSE(DiscretizeDataset(d, method).ok());
}

TEST(DiscretizeDataset, ManualOverrides) {
  Dataset d = MixedDataset();
  ASSERT_OK_AND_ASSIGN(
      Dataset out,
      DiscretizeDatasetWithOverrides(d, {{"rssi", {-50.0, 0.0, 50.0}}},
                                     nullptr));
  EXPECT_EQ(out.schema().attribute(0).domain(), 4);
  // Unlisted continuous attribute with no fallback fails.
  EXPECT_FALSE(DiscretizeDatasetWithOverrides(d, {}, nullptr).ok());
}

TEST(ChiMerge, FindsClassBoundary) {
  // Class flips at 50: one strong boundary should survive merging.
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 200; ++i) {
    values.push_back(i);
    classes.push_back(i < 100 ? 0 : 1);
  }
  ChiMergeDiscretizer d(/*significance_threshold=*/4.61);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, classes, 2));
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_NEAR(cuts[0], 99.0, 1.0);
}

TEST(ChiMerge, MergesEverythingOnNoise) {
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 300; ++i) {
    values.push_back(i);
    classes.push_back(i % 2);  // class independent of value
  }
  ChiMergeDiscretizer d(4.61);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, classes, 2));
  EXPECT_LE(cuts.size(), 2u);  // near-total merging
}

TEST(ChiMerge, RespectsIntervalBudget) {
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 400; ++i) {
    values.push_back(i);
    classes.push_back((i / 100) % 2);  // four clean segments
  }
  // Threshold 0 means "never merge for significance reasons"; the budget
  // alone drives merging down to exactly two intervals (one cut), and the
  // weakest boundaries are merged away first.
  ChiMergeDiscretizer d(/*significance_threshold=*/0.0, /*max_intervals=*/2);
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts(values, classes, 2));
  EXPECT_EQ(cuts.size(), 1u);
  // Without a budget, threshold 0 keeps every boundary candidate intact...
  ChiMergeDiscretizer keep(/*significance_threshold=*/0.0);
  ASSERT_OK_AND_ASSIGN(auto all, keep.ComputeCuts(values, classes, 2));
  EXPECT_GE(all.size(), 3u);
  // ...and a huge threshold merges everything into one interval.
  ChiMergeDiscretizer merge_all(/*significance_threshold=*/1e9);
  ASSERT_OK_AND_ASSIGN(auto none, merge_all.ComputeCuts(values, classes, 2));
  EXPECT_TRUE(none.empty());
}

TEST(ChiMerge, Validation) {
  ChiMergeDiscretizer d(4.61);
  EXPECT_FALSE(d.ComputeCuts({1, 2}, {0}, 2).ok());   // misaligned
  EXPECT_FALSE(d.ComputeCuts({1, 2}, {0, 1}, 1).ok()); // one class
  ChiMergeDiscretizer bad(-1.0);
  EXPECT_FALSE(bad.ComputeCuts({1, 2}, {0, 1}, 2).ok());
  // Empty after null filtering.
  ASSERT_OK_AND_ASSIGN(auto cuts,
                       d.ComputeCuts({1.0}, {kNullCode}, 2));
  EXPECT_TRUE(cuts.empty());
}

TEST(ManualDiscretizer, ReturnsFixedCuts) {
  ManualDiscretizer d({1.0, 2.0});
  ASSERT_OK_AND_ASSIGN(auto cuts, d.ComputeCuts({5, 6}, {}, 0));
  EXPECT_EQ(cuts, (std::vector<double>{1.0, 2.0}));
}

}  // namespace
}  // namespace opmap
