#include "gtest/gtest.h"
#include "opmap/car/miner.h"
#include "opmap/cube/cube_store.h"
#include "opmap/cube/rule_cube.h"
#include "opmap/data/call_log.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

// The paper's Fig 1 example: A1 in {a,b,c,d}, A2 in {e,f,g}, class {no,yes}
// with 1158 data points; rule A1=a,A2=e -> yes has count 100 and
// A1=a,A2=e -> no has count 50.
Schema Fig1Schema() {
  return MakeSchema({{"A1", {"a", "b", "c", "d"}},
                     {"A2", {"e", "f", "g"}},
                     {"C", {"no", "yes"}}});
}

RuleCube Fig1Cube() {
  auto cube = RuleCube::Make(Fig1Schema(), {0, 1, 2});
  EXPECT_TRUE(cube.ok());
  RuleCube c = cube.MoveValue();
  // Fill the (a, e, *) cells from the paper and distribute the rest.
  c.Add({0, 0, 1}, 100);  // A1=a, A2=e, C=yes
  c.Add({0, 0, 0}, 50);   // A1=a, A2=e, C=no
  c.Add({0, 1, 1}, 0);    // A1=a, A2=f, C=yes: support 0
  c.Add({0, 1, 0}, 80);
  c.Add({1, 0, 0}, 200);
  c.Add({1, 2, 1}, 150);
  c.Add({2, 1, 0}, 278);
  c.Add({3, 2, 1}, 300);
  return c;
}

TEST(RuleCube, Fig1ExampleSupportsAndConfidences) {
  RuleCube cube = Fig1Cube();
  EXPECT_EQ(cube.num_dims(), 3);
  EXPECT_EQ(cube.num_cells(), 4 * 3 * 2);
  EXPECT_EQ(cube.Total(), 1158);
  // Rule A1=a, A2=e -> yes: support 100/1158, confidence 100/150.
  EXPECT_EQ(cube.count({0, 0, 1}), 100);
  EXPECT_NEAR(cube.Support({0, 0, 1}), 100.0 / 1158.0, 1e-12);
  EXPECT_NEAR(cube.Confidence({0, 0, 1}, 2), 100.0 / 150.0, 1e-12);
  // Rule A1=a, A2=f -> yes: support 0 and confidence 0.
  EXPECT_EQ(cube.count({0, 1, 1}), 0);
  EXPECT_NEAR(cube.Confidence({0, 1, 1}, 2), 0.0, 1e-12);
}

TEST(RuleCube, MakeValidation) {
  const Schema schema = Fig1Schema();
  EXPECT_FALSE(RuleCube::Make(schema, {}).ok());
  EXPECT_FALSE(RuleCube::Make(schema, {0, 0}).ok());
  EXPECT_FALSE(RuleCube::Make(schema, {7}).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  auto s2 = Schema::Make(std::move(attrs), 1);
  ASSERT_TRUE(s2.ok());
  EXPECT_FALSE(RuleCube::Make(*s2, {0, 1}).ok());  // continuous dim
}

TEST(RuleCube, SlicePreservesCounts) {
  RuleCube cube = Fig1Cube();
  ASSERT_OK_AND_ASSIGN(RuleCube slice, cube.Slice(0, 0));  // A1 = a
  EXPECT_EQ(slice.num_dims(), 2);
  EXPECT_EQ(slice.dim_name(0), "A2");
  EXPECT_EQ(slice.count({0, 1}), 100);
  EXPECT_EQ(slice.count({0, 0}), 50);
  EXPECT_EQ(slice.count({1, 0}), 80);
  EXPECT_EQ(slice.Total(), 230);
  EXPECT_FALSE(cube.Slice(5, 0).ok());
  EXPECT_FALSE(cube.Slice(0, 9).ok());
}

TEST(RuleCube, MarginalizeConservesTotals) {
  RuleCube cube = Fig1Cube();
  ASSERT_OK_AND_ASSIGN(RuleCube rolled, cube.Marginalize(1));  // drop A2
  EXPECT_EQ(rolled.num_dims(), 2);
  EXPECT_EQ(rolled.Total(), cube.Total());
  // count(A1=a, C=yes) must equal the sum over A2.
  EXPECT_EQ(rolled.count({0, 1}), 100);
  EXPECT_EQ(rolled.count({0, 0}), 130);
  // Rolling up the remaining non-class dim gives the class distribution.
  ASSERT_OK_AND_ASSIGN(RuleCube classes, rolled.Marginalize(0));
  EXPECT_EQ(classes.count({1}), 550);  // total yes
  EXPECT_EQ(classes.count({0}), 608);  // total no
}

TEST(RuleCube, DiceRestrictsDomain) {
  RuleCube cube = Fig1Cube();
  ASSERT_OK_AND_ASSIGN(RuleCube diced, cube.Dice(0, {0, 3}));  // a and d
  EXPECT_EQ(diced.num_dims(), 3);
  EXPECT_EQ(diced.dim_size(0), 2);
  EXPECT_EQ(diced.label(0, 0), "a");
  EXPECT_EQ(diced.label(0, 1), "d");
  EXPECT_EQ(diced.count({0, 0, 1}), 100);
  EXPECT_EQ(diced.count({1, 2, 1}), 300);
  EXPECT_FALSE(cube.Dice(0, {}).ok());
  EXPECT_FALSE(cube.Dice(0, {9}).ok());
}

TEST(RuleCube, MarginCount) {
  RuleCube cube = Fig1Cube();
  // Body count of rule A1=a, A2=e (sum over classes) = 150.
  EXPECT_EQ(cube.MarginCount({0, 0, 0}, 2), 150);
}

TEST(RuleCube, FindDim) {
  RuleCube cube = Fig1Cube();
  EXPECT_EQ(cube.FindDim(0), 0);
  EXPECT_EQ(cube.FindDim(2), 2);
  EXPECT_EQ(cube.FindDim(9), -1);
}

// --- Cube store / builder ---

Dataset SmallDataset() {
  Dataset d(Fig1Schema());
  AppendRows(&d, {0, 0, 1}, 100);
  AppendRows(&d, {0, 0, 0}, 50);
  AppendRows(&d, {1, 2, 1}, 30);
  AppendRows(&d, {2, 1, 0}, 20);
  AppendRows(&d, {3, 2, 1}, 10);
  return d;
}

TEST(CubeStore, BuildsAllCubes) {
  Dataset d = SmallDataset();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  EXPECT_EQ(store.num_records(), d.num_rows());
  EXPECT_EQ(store.attributes().size(), 2u);
  EXPECT_EQ(store.NumCubes(), 2 + 1);  // two 2-D cubes + one pair cube
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(0, 1));
  EXPECT_EQ(pair->count({0, 0, 1}), 100);
  // Symmetric lookup returns the same cube.
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair2, store.PairCube(1, 0));
  EXPECT_EQ(pair, pair2);
  ASSERT_OK_AND_ASSIGN(const RuleCube* a1, store.AttrCube(0));
  EXPECT_EQ(a1->count({0, 1}), 100);
  EXPECT_EQ(a1->count({0, 0}), 50);
  EXPECT_EQ(store.class_counts()[1], 140);
  EXPECT_GT(store.MemoryUsageBytes(), 0);
}

TEST(CubeStore, AttrSubsetAndNoPairs) {
  Dataset d = SmallDataset();
  CubeStoreOptions opts;
  opts.attributes = {1};
  opts.build_pair_cubes = false;
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d, opts));
  EXPECT_FALSE(store.AttrCube(0).ok());
  EXPECT_TRUE(store.AttrCube(1).ok());
  EXPECT_FALSE(store.PairCube(0, 1).ok());
}

TEST(CubeStore, RejectsBadOptions) {
  Dataset d = SmallDataset();
  CubeStoreOptions opts;
  opts.attributes = {2};  // class attribute
  EXPECT_FALSE(CubeBuilder::FromDataset(d, opts).ok());
  opts.attributes = {9};
  EXPECT_FALSE(CubeBuilder::FromDataset(d, opts).ok());
  opts.attributes = {0, 0};
  EXPECT_FALSE(CubeBuilder::FromDataset(d, opts).ok());
}

TEST(CubeStore, MemoryBudgetRejectsOversizedMaterialization) {
  Dataset d = SmallDataset();
  CubeStoreOptions opts;
  opts.max_memory_bytes = 16;  // far below what any cube needs
  Result<CubeStore> r = CubeBuilder::FromDataset(d, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("memory budget"), std::string::npos);
}

TEST(CubeStore, MemoryBudgetAllowsReasonableMaterialization) {
  Dataset d = SmallDataset();
  CubeStoreOptions opts;
  opts.max_memory_bytes = 1 << 20;
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d, opts));
  EXPECT_EQ(store.num_records(), d.num_rows());
}

TEST(CubeStore, NullValuesSkipAffectedCubesOnly) {
  Dataset d(Fig1Schema());
  ASSERT_OK(d.AppendRow({Cell::Categorical(kNullCode), Cell::Categorical(0),
                         Cell::Categorical(1)}));
  ASSERT_OK(d.AppendRow({Cell::Categorical(0), Cell::Categorical(0),
                         Cell::Categorical(kNullCode)}));
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  // The null-class row is ignored entirely.
  EXPECT_EQ(store.num_records(), 1);
  ASSERT_OK_AND_ASSIGN(const RuleCube* a1, store.AttrCube(0));
  EXPECT_EQ(a1->Total(), 0);  // A1 was null on the only counted row
  ASSERT_OK_AND_ASSIGN(const RuleCube* a2, store.AttrCube(1));
  EXPECT_EQ(a2->Total(), 1);
}

TEST(CubeStore, StreamingAddRowMatchesDatasetPath) {
  CallLogConfig config;
  config.num_records = 5000;
  config.num_attributes = 8;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore from_dataset, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(CubeBuilder streaming,
                       CubeBuilder::Make(gen.schema(), {}));
  gen.VisitRows(config.num_records,
                [&](const ValueCode* row) { streaming.AddRow(row); });
  CubeStore from_stream = std::move(streaming).Finish();

  EXPECT_EQ(from_dataset.num_records(), from_stream.num_records());
  for (int a : from_dataset.attributes()) {
    ASSERT_OK_AND_ASSIGN(const RuleCube* ca, from_dataset.AttrCube(a));
    ASSERT_OK_AND_ASSIGN(const RuleCube* cb, from_stream.AttrCube(a));
    for (ValueCode v = 0; v < ca->dim_size(0); ++v) {
      for (ValueCode y = 0; y < ca->dim_size(1); ++y) {
        ASSERT_EQ(ca->count({v, y}), cb->count({v, y}));
      }
    }
  }
}

// Every cube cell equals the corresponding zero-threshold CAR's support
// count: the cube IS the complete 2-condition rule space.
TEST(CubeStore, CellsMatchMinedRules) {
  Dataset d = SmallDataset();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  CarMinerOptions opts;
  opts.min_support = 0.0;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  for (const ClassRule& r : rules.rules()) {
    if (r.conditions.size() == 1) {
      const Condition& c = r.conditions[0];
      ASSERT_OK_AND_ASSIGN(const RuleCube* cube, store.AttrCube(c.attribute));
      EXPECT_EQ(cube->count({c.value, r.class_value}), r.support_count);
    } else if (r.conditions.size() == 2) {
      const Condition& c0 = r.conditions[0];
      const Condition& c1 = r.conditions[1];
      ASSERT_OK_AND_ASSIGN(const RuleCube* cube,
                           store.PairCube(c0.attribute, c1.attribute));
      EXPECT_EQ(cube->count({c0.value, c1.value, r.class_value}),
                r.support_count);
    }
  }
}

TEST(CubeStore, DuplicatedDatasetScalesCounts) {
  // The paper's Fig 11 scale-up method: duplicating the data multiplies
  // every cube cell.
  Dataset d = SmallDataset();
  ASSERT_OK_AND_ASSIGN(CubeStore base, CubeBuilder::FromDataset(d));
  Dataset d4 = d.DuplicateTimes(4);
  ASSERT_OK_AND_ASSIGN(CubeStore scaled, CubeBuilder::FromDataset(d4));
  EXPECT_EQ(scaled.num_records(), 4 * base.num_records());
  ASSERT_OK_AND_ASSIGN(const RuleCube* b, base.PairCube(0, 1));
  ASSERT_OK_AND_ASSIGN(const RuleCube* s, scaled.PairCube(0, 1));
  EXPECT_EQ(s->count({0, 0, 1}), 4 * b->count({0, 0, 1}));
}

}  // namespace
}  // namespace opmap
