#!/usr/bin/env bash
# End-to-end smoke test of the `opmap` CLI: generate -> cubes -> every
# interactive command. Run by ctest with the binary path as $1.
set -euo pipefail

OPMAP="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

"$OPMAP" >/dev/null 2>&1 && fail "no-arg invocation should exit non-zero"

"$OPMAP" generate --records=20000 --attributes=12 --out="$DIR/d.opmd" \
    | grep -q "wrote 20000 records" || fail "generate"

"$OPMAP" info --data="$DIR/d.opmd" | grep -q "PhoneModel" || fail "info data"

"$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/d.opmc" \
    | grep -q "built" || fail "cubes"

"$OPMAP" info --cubes="$DIR/d.opmc" | grep -q "cube store" || fail "info cubes"

# Blocked-kernel tile size: any --block-rows value must yield a
# byte-identical store; invalid values exit 4 like --threads.
"$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/d7.opmc" --block-rows=7 \
    >/dev/null || fail "cubes --block-rows"
cmp -s "$DIR/d.opmc" "$DIR/d7.opmc" || fail "--block-rows=7 store differs"
rc=0; "$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/x.opmc" \
    --block-rows=0 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "--block-rows=0 should exit 4 (got $rc)"
rc=0; "$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/x.opmc" \
    --block-rows=abc >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "--block-rows=abc should exit 4 (got $rc)"

"$OPMAP" overview --cubes="$DIR/d.opmc" | grep -q "Overall visualization" \
    || fail "overview"

"$OPMAP" detail --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    | grep -q "ph01" || fail "detail"

"$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress \
    | grep -q "TimeOfCall" || fail "compare"

"$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress --json \
    | grep -q '"ranked"' || fail "compare --json"

"$OPMAP" vsrest --cubes="$DIR/d.opmc" --attribute=TimeOfCall \
    --value=morning --class=dropped-while-in-progress \
    | grep -q "not(morning)" || fail "vsrest"

"$OPMAP" pairs --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --class=dropped-while-in-progress | grep -q "good vs bad" || fail "pairs"

"$OPMAP" gi --cubes="$DIR/d.opmc" | grep -q "Influential attributes" \
    || fail "gi"

# CSV ingestion path.
cat > "$DIR/t.csv" <<EOF
phone,rssi,result
a,-70,ok
a,-95,bad
b,-72,ok
b,-96,bad
a,-71,ok
b,-80,ok
a,-97,bad
b,-73,ok
EOF
"$OPMAP" csv2data --in="$DIR/t.csv" --class=result --out="$DIR/t.opmd" \
    | grep -q "discretized" || fail "csv2data"
"$OPMAP" cubes --data="$DIR/t.opmd" --out="$DIR/t.opmc" >/dev/null \
    || fail "cubes from csv data"

# Error paths exit non-zero with a message.
"$OPMAP" detail --cubes="$DIR/d.opmc" --attribute=NoSuch >/dev/null 2>&1 \
    && fail "bad attribute should fail"
"$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel --good=ph01 \
    >/dev/null 2>&1 && fail "missing flags should fail"
"$OPMAP" overview --cubes="$DIR/does-not-exist" >/dev/null 2>&1 \
    && fail "missing file should fail"

echo "PASS"

# HTML report generation (appended check; runs after the main PASS line is
# printed only if everything above succeeded).
"$OPMAP" report --cubes="$DIR/d.opmc" --attribute=PhoneModel --good=ph01 \
    --bad=ph03 --class=dropped-while-in-progress --out="$DIR/r.html" --gi \
    >/dev/null || fail "report"
grep -q "<svg" "$DIR/r.html" || fail "report svg content"
grep -q "General impressions" "$DIR/r.html" || fail "report gi section"

# report can also build the store in memory from --data, where
# --block-rows applies.
"$OPMAP" report --data="$DIR/d.opmd" --attribute=PhoneModel --good=ph01 \
    --bad=ph03 --class=dropped-while-in-progress --out="$DIR/r2.html" \
    --block-rows=512 >/dev/null || fail "report --data"
grep -q "<svg" "$DIR/r2.html" || fail "report --data svg content"
echo "PASS report"

# ---- zero-copy serving, query cache, mine ----

# Unknown flags exit 4 and name the offending flag, on every command.
rc=0; out=$("$OPMAP" overview --cubes="$DIR/d.opmc" --bogus=1 2>&1) || rc=$?
[ "$rc" -eq 4 ] || fail "unknown flag should exit 4 (got $rc)"
echo "$out" | grep -q -- "--bogus" || fail "unknown-flag error should name it"
rc=0; "$OPMAP" generate --records=10 --out="$DIR/x.opmd" --nope=1 \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "generate unknown flag should exit 4 (got $rc)"
# --kernel: every tier builds a byte-identical store; invalid values exit
# 4 and name the flag. The default (no flag) resolves to the SIMD tier on
# machines that have it, so equality against the pinned tiers is also a
# live check of the runtime dispatch.
"$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/kref.opmc" \
    --kernel=reference >/dev/null || fail "cubes --kernel=reference"
"$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/kblk.opmc" \
    --kernel=blocked >/dev/null || fail "cubes --kernel=blocked"
"$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/ksimd.opmc" \
    --kernel=simd >/dev/null || fail "cubes --kernel=simd"
cmp -s "$DIR/d.opmc" "$DIR/kref.opmc" || fail "--kernel=reference store differs"
cmp -s "$DIR/d.opmc" "$DIR/kblk.opmc" || fail "--kernel=blocked store differs"
cmp -s "$DIR/d.opmc" "$DIR/ksimd.opmc" || fail "--kernel=simd store differs"
# OPMAP_KERNEL env fallback: honored when no flag is passed, still
# byte-identical.
OPMAP_KERNEL=reference "$OPMAP" cubes --data="$DIR/d.opmd" \
    --out="$DIR/kenv.opmc" >/dev/null || fail "cubes OPMAP_KERNEL"
cmp -s "$DIR/d.opmc" "$DIR/kenv.opmc" || fail "OPMAP_KERNEL store differs"
rc=0; out=$("$OPMAP" mine --data="$DIR/d.opmd" --kernel=fast 2>&1) || rc=$?
[ "$rc" -eq 4 ] || fail "mine bad --kernel value should exit 4 (got $rc)"
echo "$out" | grep -q "fast" || fail "bad-kernel error should name the value"
rc=0; "$OPMAP" cubes --data="$DIR/d.opmd" --out="$DIR/x.opmc" \
    --kernel=warp9 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "cubes bad --kernel value should exit 4 (got $rc)"
"$OPMAP" mine --data="$DIR/d.opmd" --kernel=simd --top=3 \
    | grep -q "rules" || fail "mine --kernel=simd"

# --mmap=off (eager load) must serve byte-identical answers; bad values
# exit 4.
a=$("$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress)
b=$("$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress --mmap=off)
[ "$a" = "$b" ] || fail "--mmap=off changed the comparison output"
rc=0; "$OPMAP" overview --cubes="$DIR/d.opmc" --mmap=sideways \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "--mmap=sideways should exit 4 (got $rc)"

# --verbose emits mapping and cache stats on stderr.
"$OPMAP" pairs --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --class=dropped-while-in-progress --cache-mb=8 --verbose \
    >/dev/null 2>"$DIR/stats.txt" || fail "pairs --cache-mb --verbose"
grep -q "serving: mapped=" "$DIR/stats.txt" || fail "verbose serving stats"
grep -q "cache: hits=" "$DIR/stats.txt" || fail "verbose cache stats"

# ---- observability: --stats and --trace-out ----

# --stats prints the metrics table on stderr; stdout stays the normal
# report. The compare path must surface its per-query latency histogram.
"$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress --stats \
    >"$DIR/cmp.out" 2>"$DIR/cmp.stats" || fail "compare --stats"
grep -q "TimeOfCall" "$DIR/cmp.out" || fail "compare --stats stdout"
grep -q -- "-- histograms" "$DIR/cmp.stats" || fail "stats histogram section"
grep -q "query.compare_us" "$DIR/cmp.stats" || fail "stats compare histogram"
grep -q "cache.hits\|cache.misses" "$DIR/cmp.stats" \
    || fail "stats cache counters"

# OPMAP_STATS env var is the flag-free fallback; OPMAP_STATS=0 stays off.
OPMAP_STATS=1 "$OPMAP" mine --data="$DIR/d.opmd" --min-support=0.001 --top=0 \
    >/dev/null 2>"$DIR/mine.stats" || fail "mine OPMAP_STATS"
grep -q "query.mine_us" "$DIR/mine.stats" || fail "stats mine histogram"
grep -q "car.rules_emitted" "$DIR/mine.stats" || fail "stats miner counters"
OPMAP_STATS=0 "$OPMAP" mine --data="$DIR/d.opmd" --min-support=0.001 --top=0 \
    >/dev/null 2>"$DIR/mine0.stats" || fail "mine OPMAP_STATS=0"
grep -q "query.mine_us" "$DIR/mine0.stats" && fail "OPMAP_STATS=0 printed"

# --trace-out writes a Chrome trace_event JSON with spans from the
# instrumented layers; parse it when python3 is available.
"$OPMAP" compare --cubes="$DIR/d.opmc" --attribute=PhoneModel \
    --good=ph01 --bad=ph03 --class=dropped-while-in-progress \
    --trace-out="$DIR/cmp.trace" >/dev/null || fail "compare --trace-out"
grep -q '"traceEvents"' "$DIR/cmp.trace" || fail "trace JSON header"
grep -q '"compare.query"' "$DIR/cmp.trace" || fail "trace compare span"
grep -q '"cache.lookup"' "$DIR/cmp.trace" || fail "trace cache span"
grep -q '"io.\|"cube.' "$DIR/cmp.trace" || fail "trace io/cube spans"
"$OPMAP" mine --data="$DIR/d.opmd" --min-support=0.001 --top=0 \
    --trace-out="$DIR/mine.trace" >/dev/null || fail "mine --trace-out"
grep -q '"car.mine"' "$DIR/mine.trace" || fail "trace mine span"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; t=json.load(open(sys.argv[1])); \
assert t['traceEvents'], 'empty trace'; \
assert all(e['dur'] >= 0 and e['ts'] >= 0 for e in t['traceEvents'])" \
      "$DIR/cmp.trace" || fail "compare trace does not parse"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" \
      "$DIR/mine.trace" || fail "mine trace does not parse"
fi
echo "PASS observability"

# mine: the CAR miner from the CLI; any --block-rows tile size yields the
# identical rule list.
m0=$("$OPMAP" mine --data="$DIR/d.opmd" --min-support=0.001 --top=5) \
    || fail "mine"
echo "$m0" | grep -q "mined " || fail "mine summary line"
m7=$("$OPMAP" mine --data="$DIR/d.opmd" --min-support=0.001 --top=5 \
    --block-rows=7) || fail "mine --block-rows"
[ "$m0" = "$m7" ] || fail "mine --block-rows=7 changed the rules"
echo "PASS serving"

# ---- streaming ingestion ----

# Fresh directory: the CSV schema (forced all-categorical) becomes the
# store schema; appends go WAL-first with auto-compaction.
out=$("$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" --class=result \
    --batch-rows=3 --compact-every=2 --verbose 2>"$DIR/ing.stats") \
    || fail "ingest fresh"
echo "$out" | grep -q "ingested 8 rows in 3 batches" || fail "ingest summary"
[ -f "$DIR/ing/MANIFEST" ] || fail "ingest manifest missing"
grep -q "wal: next_seq=" "$DIR/ing.stats" || fail "ingest verbose wal line"
grep -q "compaction: generation=" "$DIR/ing.stats" \
    || fail "ingest verbose compaction line"
grep -q "torn_tail=clean" "$DIR/ing.stats" || fail "ingest clean tail"

# Existing directory: --class comes from the stored schema, and the CSV is
# re-encoded against the stored dictionaries; the WAL tail is replayed.
out=$("$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" --verbose \
    2>"$DIR/ing2.stats") || fail "ingest reopen"
echo "$out" | grep -q "seq 4..4" || fail "ingest reopen continues sequence"
grep -q "replayed_records=1" "$DIR/ing2.stats" || fail "ingest replay count"

# Flag validation: unknown flags and bad values exit 4 naming the problem.
rc=0; out=$("$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" \
    --bogus=1 2>&1) || rc=$?
[ "$rc" -eq 4 ] || fail "ingest unknown flag should exit 4 (got $rc)"
echo "$out" | grep -q -- "--bogus" || fail "ingest unknown-flag should name it"
rc=0; out=$("$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" \
    --fsync=sometimes 2>&1) || rc=$?
[ "$rc" -eq 4 ] || fail "ingest --fsync=sometimes should exit 4 (got $rc)"
echo "$out" | grep -q "sometimes" || fail "ingest bad fsync should name value"
rc=0; "$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" --batch-rows=0 \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "ingest --batch-rows=0 should exit 4 (got $rc)"
echo "PASS ingest"

# ---- serving daemon ----

# Start opmapd on a unix socket, replay a short mixed workload over
# concurrent connections, then drain with SIGTERM. The loadgen summary,
# the BENCH_server JSON and the daemon's drain behavior are all asserted.
"$OPMAP" serve --cubes="$DIR/d.opmc" --listen="unix:$DIR/opmapd.sock" \
    --verbose >"$DIR/serve.out" 2>"$DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 100); do
  grep -q "opmapd listening" "$DIR/serve.out" 2>/dev/null && break
  sleep 0.1
done
grep -q "opmapd listening on unix:$DIR/opmapd.sock" "$DIR/serve.out" \
    || { cat "$DIR/serve.err" >&2; fail "serve did not come up"; }

# --warmup-ms=0: a 200-request run finishes inside the default warm-up
# window, which would leave the per-op table empty by design.
out=$("$OPMAP" loadgen --connect="unix:$DIR/opmapd.sock" --clients=2 \
    --requests=200 --duration=30 --warmup-ms=0 --cubes="$DIR/d.opmc" \
    --json="$DIR/BENCH_server.json") || fail "loadgen"
echo "$out" | grep -qE "loadgen: [0-9]+ ok, [0-9]+ error, [0-9]+ shed" \
    || fail "loadgen summary line"
echo "$out" | grep -qE "^compare +[0-9]+ +[0-9]+" \
    || fail "loadgen per-op latency table"
echo "$out" | grep -q "local compare baseline p50" \
    || fail "loadgen in-process baseline line"
[ -f "$DIR/BENCH_server.json" ] || fail "loadgen wrote no bench JSON"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; recs=json.load(open(sys.argv[1])); \
ops={r['op'] for r in recs}; \
assert 'server/qps' in ops and 'server/compare_p50' in ops, ops" \
      "$DIR/BENCH_server.json" || fail "bench JSON missing server ops"
fi

# Graceful drain: SIGTERM answers in-flight work, flushes and exits 0.
kill -TERM "$SERVE_PID"
rc=0; wait "$SERVE_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "serve should drain and exit 0 on SIGTERM (got $rc)"
grep -q "drained" "$DIR/serve.err" || fail "serve verbose drain line"
[ -S "$DIR/opmapd.sock" ] && fail "serve left its unix socket behind"

# Flag validation matches the other subcommands.
rc=0; "$OPMAP" serve --cubes="$DIR/d.opmc" --bogus=1 >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 4 ] || fail "serve unknown flag should exit 4 (got $rc)"
rc=0; "$OPMAP" loadgen --connect="unix:$DIR/nope.sock" --duration=0.2 \
    >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "loadgen against a dead socket should fail"
echo "PASS serve"

# ---- multi-loop daemon + open-loop sweep ----

# Sharded event loops on TCP (port 0 = OS-assigned), driven by a 2-point
# open-loop sweep writing server/sweep/* records.
"$OPMAP" serve --cubes="$DIR/d.opmc" --listen=127.0.0.1:0 --loops=2 \
    --verbose >"$DIR/serve2.out" 2>"$DIR/serve2.err" &
SERVE2_PID=$!
for _ in $(seq 100); do
  grep -q "opmapd listening" "$DIR/serve2.out" 2>/dev/null && break
  sleep 0.1
done
ADDR=$(awk '/opmapd listening on/ {print $4}' "$DIR/serve2.out")
[ -n "$ADDR" ] || { cat "$DIR/serve2.err" >&2; fail "loops=2 serve up"; }
grep -q "2 loops" "$DIR/serve2.err" || fail "serve2 verbose loop count"

out=$("$OPMAP" loadgen --connect="$ADDR" --clients=2 --duration=0.8 \
    --warmup-ms=100 --mix=ping:1 --sweep=50,100 \
    --json="$DIR/BENCH_sweep.json") || fail "loadgen sweep"
echo "$out" | grep -q -- "-- sweep 50 qps --" || fail "sweep banner"
echo "$out" | grep -q "open-loop: offered 100.0 qps" \
    || fail "sweep open-loop summary"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; recs=json.load(open(sys.argv[1])); \
ops={r['op'] for r in recs}; \
need={'server/sweep/50_p50','server/sweep/50_p99','server/sweep/50_p999', \
'server/sweep/50_achieved_qps','server/sweep/50_retry_later', \
'server/sweep/100_p50','server/sweep/100_achieved_qps'}; \
assert need <= ops, ops; \
assert 'server/qps' not in ops, 'sweep must not write server/qps'" \
      "$DIR/BENCH_sweep.json" || fail "sweep bench records"
fi

kill -TERM "$SERVE2_PID"
rc=0; wait "$SERVE2_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "loops=2 serve should drain and exit 0 (got $rc)"
echo "PASS multi-loop sweep"

# ---- ingest -> live daemon reload drill ----

# Serve the streaming directory's current container, ingest more rows
# with --notify, and assert the daemon reloaded the freshly compacted
# generation without restarting.
ING_CUBE=$(ls "$DIR/ing"/cubes-*.opmc | sort | tail -1)
"$OPMAP" serve --cubes="$ING_CUBE" --listen="unix:$DIR/opmapd2.sock" \
    --verbose >"$DIR/serve3.out" 2>"$DIR/serve3.err" &
SERVE3_PID=$!
for _ in $(seq 100); do
  grep -q "opmapd listening" "$DIR/serve3.out" 2>/dev/null && break
  sleep 0.1
done
grep -q "opmapd listening" "$DIR/serve3.out" \
    || { cat "$DIR/serve3.err" >&2; fail "ingest-drill serve up"; }

out=$("$OPMAP" ingest --dir="$DIR/ing" --csv="$DIR/t.csv" \
    --notify="unix:$DIR/opmapd2.sock") || fail "ingest --notify"
echo "$out" | grep -q "notified unix:$DIR/opmapd2.sock" \
    || fail "ingest --notify confirmation line"
grep -q "opmapd: reloaded $DIR/ing/cubes-" "$DIR/serve3.err" \
    || fail "daemon did not log the notified reload"

kill -TERM "$SERVE3_PID"
rc=0; wait "$SERVE3_PID" || rc=$?
[ "$rc" -eq 0 ] || fail "ingest-drill serve should exit 0 (got $rc)"
echo "PASS ingest notify"

# ---- unix peer-credential auth ----

# Our own uid on the allow list: requests flow.
"$OPMAP" serve --cubes="$DIR/d.opmc" --listen="unix:$DIR/auth.sock" \
    --allow-uid="$(id -u)" >"$DIR/serve4.out" 2>"$DIR/serve4.err" &
SERVE4_PID=$!
for _ in $(seq 100); do
  grep -q "opmapd listening" "$DIR/serve4.out" 2>/dev/null && break
  sleep 0.1
done
"$OPMAP" loadgen --connect="unix:$DIR/auth.sock" --clients=1 \
    --requests=5 --duration=5 --warmup-ms=0 --mix=ping:1 >/dev/null \
    || fail "allowed uid should be served"
kill -TERM "$SERVE4_PID"; wait "$SERVE4_PID" || fail "auth serve exit"

# A different uid: the connection is answered with a status frame and
# closed, so the client fails instead of hanging.
"$OPMAP" serve --cubes="$DIR/d.opmc" --listen="unix:$DIR/auth.sock" \
    --allow-uid=4294967294 >"$DIR/serve5.out" 2>"$DIR/serve5.err" &
SERVE5_PID=$!
for _ in $(seq 100); do
  grep -q "opmapd listening" "$DIR/serve5.out" 2>/dev/null && break
  sleep 0.1
done
rc=0; "$OPMAP" loadgen --connect="unix:$DIR/auth.sock" --clients=1 \
    --requests=5 --duration=5 --mix=ping:1 >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "disallowed uid should be rejected"
kill -TERM "$SERVE5_PID"; wait "$SERVE5_PID" || fail "auth-reject serve exit"

# --allow-uid needs peer credentials, which TCP does not carry.
rc=0; "$OPMAP" serve --cubes="$DIR/d.opmc" --listen=127.0.0.1:0 \
    --allow-uid=0 >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "serve --allow-uid over TCP should fail"
echo "PASS peer auth"
