#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>

#include "gtest/gtest.h"
#include "opmap/common/io.h"
#include "opmap/common/serde.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "opmap/data/dataset_io.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

TEST(Serde, ScalarRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(1ULL << 40);
  w.WriteI32(-42);
  w.WriteI64(-(1LL << 40));
  w.WriteDouble(3.14159);
  w.WriteString("hello");
  ASSERT_TRUE(w.ok());

  BinaryReader r(&buf);
  ASSERT_OK_AND_ASSIGN(uint8_t u8, r.ReadU8());
  EXPECT_EQ(u8, 7);
  ASSERT_OK_AND_ASSIGN(uint32_t u32, r.ReadU32());
  EXPECT_EQ(u32, 123456u);
  ASSERT_OK_AND_ASSIGN(uint64_t u64, r.ReadU64());
  EXPECT_EQ(u64, 1ULL << 40);
  ASSERT_OK_AND_ASSIGN(int32_t i32, r.ReadI32());
  EXPECT_EQ(i32, -42);
  ASSERT_OK_AND_ASSIGN(int64_t i64, r.ReadI64());
  EXPECT_EQ(i64, -(1LL << 40));
  ASSERT_OK_AND_ASSIGN(double d, r.ReadDouble());
  EXPECT_DOUBLE_EQ(d, 3.14159);
  ASSERT_OK_AND_ASSIGN(std::string s, r.ReadString());
  EXPECT_EQ(s, "hello");
}

TEST(Serde, VectorRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  const std::vector<int32_t> i32 = {1, -2, kNullCode};
  const std::vector<int64_t> i64 = {10, -20};
  const std::vector<double> dbl = {0.5, -1.5};
  w.WriteI32Vector(i32);
  w.WriteI64Vector(i64);
  w.WriteDoubleVector(dbl);
  BinaryReader r(&buf);
  ASSERT_OK_AND_ASSIGN(auto ri32, r.ReadI32Vector());
  EXPECT_EQ(ri32, i32);
  ASSERT_OK_AND_ASSIGN(auto ri64, r.ReadI64Vector());
  EXPECT_EQ(ri64, i64);
  ASSERT_OK_AND_ASSIGN(auto rdbl, r.ReadDoubleVector());
  EXPECT_EQ(rdbl, dbl);
}

TEST(Serde, TruncationIsAnError) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU64(99);  // claims a 99-byte string follows
  BinaryReader r(&buf);
  EXPECT_FALSE(r.ReadString().ok());

  std::stringstream empty;
  BinaryReader r2(&empty);
  EXPECT_FALSE(r2.ReadU32().ok());
}

TEST(Serde, LengthLimitDefendsAgainstCorruptSizes) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU64(1ULL << 50);
  BinaryReader r(&buf, /*limit=*/1 << 20);
  EXPECT_FALSE(r.ReadI64Vector().ok());
}

TEST(Serde, MagicMismatch) {
  std::stringstream buf;
  buf.write("XXXX", 4);
  BinaryReader r(&buf);
  EXPECT_FALSE(r.ExpectMagic("OPMD").ok());
}

Dataset MixedDataset() {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Categorical("phone", {"ph1", "ph2"}));
  attrs.push_back(Attribute::Continuous("rssi"));
  attrs.push_back(
      Attribute::Categorical("hour", {"h0", "h1", "h2"}, /*ordered=*/true));
  attrs.push_back(Attribute::Categorical("c", {"ok", "drop"}));
  auto schema = Schema::Make(std::move(attrs), 3);
  EXPECT_TRUE(schema.ok());
  Dataset d(schema.MoveValue());
  for (int i = 0; i < 100; ++i) {
    auto st = d.AppendRow(
        {Cell::Categorical(static_cast<ValueCode>(i % 2)),
         Cell::Numeric(-80.0 - i * 0.25),
         Cell::Categorical(i % 7 == 0 ? kNullCode
                                      : static_cast<ValueCode>(i % 3)),
         Cell::Categorical(static_cast<ValueCode>(i % 10 == 0 ? 1 : 0))});
    EXPECT_TRUE(st.ok());
  }
  return d;
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  Dataset original = MixedDataset();
  std::stringstream buf;
  ASSERT_OK(SaveDataset(original, &buf));
  ASSERT_OK_AND_ASSIGN(Dataset loaded, LoadDataset(&buf));

  ASSERT_EQ(loaded.num_rows(), original.num_rows());
  ASSERT_EQ(loaded.num_attributes(), original.num_attributes());
  EXPECT_EQ(loaded.schema().class_index(), original.schema().class_index());
  for (int a = 0; a < original.num_attributes(); ++a) {
    const Attribute& oa = original.schema().attribute(a);
    const Attribute& la = loaded.schema().attribute(a);
    EXPECT_EQ(la.name(), oa.name());
    EXPECT_EQ(la.is_categorical(), oa.is_categorical());
    EXPECT_EQ(la.ordered(), oa.ordered());
    EXPECT_EQ(la.labels(), oa.labels());
  }
  for (int64_t r = 0; r < original.num_rows(); ++r) {
    EXPECT_EQ(loaded.code(r, 0), original.code(r, 0));
    EXPECT_DOUBLE_EQ(loaded.number(r, 1), original.number(r, 1));
    EXPECT_EQ(loaded.code(r, 2), original.code(r, 2));
    EXPECT_EQ(loaded.code(r, 3), original.code(r, 3));
  }
}

TEST(DatasetIo, FileRoundTrip) {
  Dataset original = MixedDataset();
  const std::string path = ::testing::TempDir() + "/opmap_io_test.opmd";
  ASSERT_OK(SaveDatasetToFile(original, path));
  ASSERT_OK_AND_ASSIGN(Dataset loaded, LoadDatasetFromFile(path));
  EXPECT_EQ(loaded.num_rows(), original.num_rows());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatasetFromFile(path).ok());
}

TEST(DatasetIo, RejectsCorruptInput) {
  Dataset original = MixedDataset();
  std::stringstream buf;
  ASSERT_OK(SaveDataset(original, &buf));
  std::string bytes = buf.str();
  // Corrupt the magic.
  bytes[0] = 'X';
  std::stringstream bad(bytes);
  EXPECT_FALSE(LoadDataset(&bad).ok());
  // Truncate.
  std::stringstream truncated(buf.str().substr(0, buf.str().size() / 2));
  EXPECT_FALSE(LoadDataset(&truncated).ok());
}

TEST(DatasetIo, VersionCheck) {
  std::stringstream buf;
  buf.write("OPMD", 4);
  BinaryWriter w(&buf);
  w.WriteU32(999);  // future version
  EXPECT_FALSE(LoadDataset(&buf).ok());
}

TEST(SetColumnData, Validation) {
  Schema schema = MakeSchema({{"a", {"x", "y"}}, {"c", {"p", "q"}}});
  Dataset d(schema);
  // Wrong column count.
  EXPECT_FALSE(d.SetColumnData({{0, 1}}, {{}}).ok());
  // Ragged columns.
  EXPECT_FALSE(d.SetColumnData({{0, 1}, {0}}, {{}, {}}).ok());
  // Out-of-domain code.
  EXPECT_FALSE(d.SetColumnData({{0, 9}, {0, 0}}, {{}, {}}).ok());
  // Numeric data for a categorical column.
  EXPECT_FALSE(d.SetColumnData({{0}, {0}}, {{1.0}, {}}).ok());
  // Valid.
  ASSERT_OK(d.SetColumnData({{0, 1, kNullCode}, {0, 1, 0}}, {{}, {}}));
  EXPECT_EQ(d.num_rows(), 3);
  EXPECT_EQ(d.code(2, 0), kNullCode);
}

TEST(CubeIo, RoundTripPreservesCountsAndComparisons) {
  CallLogConfig config;
  config.num_records = 15000;
  config.num_attributes = 10;
  config.phone_drop_multiplier = {1.0, 2.5};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", 1, kDroppedWhileInProgress, 5.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore original, CubeBuilder::FromDataset(d));

  std::stringstream buf;
  ASSERT_OK(original.Save(&buf));
  ASSERT_OK_AND_ASSIGN(CubeStore loaded, CubeStore::Load(&buf));

  EXPECT_EQ(loaded.num_records(), original.num_records());
  EXPECT_EQ(loaded.NumCubes(), original.NumCubes());
  EXPECT_EQ(loaded.class_counts(), original.class_counts());

  // Every cell of every cube must match.
  for (int a : original.attributes()) {
    ASSERT_OK_AND_ASSIGN(const RuleCube* oc, original.AttrCube(a));
    ASSERT_OK_AND_ASSIGN(const RuleCube* lc, loaded.AttrCube(a));
    ASSERT_EQ(oc->num_cells(), lc->num_cells());
    for (int64_t i = 0; i < oc->num_cells(); ++i) {
      ASSERT_EQ(oc->raw_counts()[i], lc->raw_counts()[i]);
    }
  }

  // The interactive path on the loaded store reproduces the comparison
  // bit-for-bit (the deployed system's save-overnight/load-in-the-morning
  // cycle).
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  Comparator co(&original);
  Comparator cl(&loaded);
  ASSERT_OK_AND_ASSIGN(ComparisonResult ro, co.Compare(spec));
  ASSERT_OK_AND_ASSIGN(ComparisonResult rl, cl.Compare(spec));
  ASSERT_EQ(ro.ranked.size(), rl.ranked.size());
  for (size_t i = 0; i < ro.ranked.size(); ++i) {
    EXPECT_EQ(ro.ranked[i].attribute, rl.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(ro.ranked[i].interestingness,
                     rl.ranked[i].interestingness);
  }
}

TEST(CubeIo, RejectsCorruptInput) {
  Schema schema = MakeSchema({{"a", {"x", "y"}}, {"c", {"p", "q"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 0}, 5);
  AppendRows(&d, {1, 1}, 5);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  std::stringstream buf;
  ASSERT_OK(store.Save(&buf));
  std::string bytes = buf.str();
  bytes[1] = 'Z';
  std::stringstream bad(bytes);
  EXPECT_FALSE(CubeStore::Load(&bad).ok());
  std::stringstream truncated(buf.str().substr(0, 20));
  EXPECT_FALSE(CubeStore::Load(&truncated).ok());
}

TEST(CubeIo, FileRoundTrip) {
  Schema schema = MakeSchema({{"a", {"x", "y"}}, {"c", {"p", "q"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 1}, 7);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  const std::string path = ::testing::TempDir() + "/opmap_io_test.opmc";
  ASSERT_OK(store.SaveToFile(path));
  ASSERT_OK_AND_ASSIGN(CubeStore loaded, CubeStore::LoadFromFile(path));
  ASSERT_OK_AND_ASSIGN(const RuleCube* cube, loaded.AttrCube(0));
  EXPECT_EQ(cube->count({0, 1}), 7);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Env::MapFile / MappedRegion
// ---------------------------------------------------------------------------

TEST(MapFile, ServesFileBytesAligned) {
  const std::string path = ::testing::TempDir() + "/opmap_map_test.bin";
  const std::string payload = "mapped bytes: hello opportunity map";
  ASSERT_OK(AtomicWriteFile(nullptr, path, payload));

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MappedRegion> region,
                       Env::Default()->MapFile(path));
  ASSERT_EQ(region->size(), payload.size());
  EXPECT_EQ(std::string(region->data(), region->size()), payload);
  // Both the mmap path (page-aligned) and the heap fallback guarantee
  // 64-byte alignment, so in-place int64 reads are always safe.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(region->data()) %
                kAlignedPayloadAlignment,
            0u);
  // ResidentBytes is [0, size] or -1 (platform cannot tell) — never junk.
  const int64_t resident = region->ResidentBytes();
  EXPECT_GE(resident, -1);
  EXPECT_LE(resident, static_cast<int64_t>(region->size()));

  // The region is independent of the file: deleting the file does not
  // invalidate the bytes already mapped (POSIX keeps the inode alive).
  std::remove(path.c_str());
  EXPECT_EQ(std::string(region->data(), region->size()), payload);
}

TEST(MapFile, EmptyFileYieldsEmptyRegion) {
  // mmap rejects zero-length mappings; the Env must serve an empty heap
  // region instead of failing or crashing.
  const std::string path = ::testing::TempDir() + "/opmap_map_empty.bin";
  ASSERT_OK(AtomicWriteFile(nullptr, path, ""));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MappedRegion> region,
                       Env::Default()->MapFile(path));
  EXPECT_EQ(region->size(), 0u);
  EXPECT_FALSE(region->is_mmap());
  EXPECT_EQ(region->ResidentBytes(), 0);
  std::remove(path.c_str());
}

TEST(MapFile, MissingFileFails) {
  EXPECT_FALSE(
      Env::Default()->MapFile(::testing::TempDir() + "/no_such_file").ok());
}

TEST(MapFile, HeapFallbackMatchesPosixMapping) {
  // The base-class fallback (read into an aligned buffer) must serve the
  // exact same bytes as the real mapping — it is the portability seam the
  // fault-injecting env routes through.
  const std::string path = ::testing::TempDir() + "/opmap_map_fb.bin";
  std::string payload(8192, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  ASSERT_OK(AtomicWriteFile(nullptr, path, payload));

  FaultInjectingEnv env;  // unarmed: maps through the heap fallback
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MappedRegion> heap, env.MapFile(path));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<MappedRegion> posix,
                       Env::Default()->MapFile(path));
  ASSERT_EQ(heap->size(), posix->size());
  EXPECT_EQ(std::memcmp(heap->data(), posix->data(), heap->size()), 0);
  EXPECT_FALSE(heap->is_mmap());
  EXPECT_EQ(env.OpCount(FaultOp::kMap), 1);
  std::remove(path.c_str());
}

TEST(MapFile, MapAndReadFaultsSurface) {
  const std::string path = ::testing::TempDir() + "/opmap_map_fault.bin";
  ASSERT_OK(AtomicWriteFile(nullptr, path, std::string(1024, 'm')));

  {
    FaultInjectingEnv env;
    env.FailAt(FaultOp::kMap, 1);
    EXPECT_FALSE(env.MapFile(path).ok());
    EXPECT_OK(env.MapFile(path).status());  // one-shot fault: next succeeds
  }
  {
    // The fallback reads through the env's own sequential reader, so armed
    // read-path faults reach the mapping too.
    FaultInjectingEnv env;
    env.FailAt(FaultOp::kOpenRead, 1);
    EXPECT_FALSE(env.MapFile(path).ok());
  }
  {
    FaultInjectingEnv env;
    env.FailAt(FaultOp::kRead, 1);
    EXPECT_FALSE(env.MapFile(path).ok());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace opmap
