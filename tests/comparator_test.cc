#include "opmap/compare/comparator.h"

#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "opmap/compare/report.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

// Schema used by most tests: PhoneModel x TimeOfCall x a filler attribute
// x class {ok, drop}.
Schema PhoneSchema() {
  return MakeSchema({{"PhoneModel", {"ph1", "ph2"}},
                     {"TimeOfCall", {"morning", "afternoon", "evening"}},
                     {"Filler", {"x", "y"}},
                     {"Class", {"ok", "drop"}}});
}

constexpr ValueCode kPh1 = 0;
constexpr ValueCode kPh2 = 1;
constexpr ValueCode kMorning = 0;
constexpr ValueCode kAfternoon = 1;
constexpr ValueCode kEvening = 2;
constexpr ValueCode kOk = 0;
constexpr ValueCode kDrop = 1;

// Adds `total` calls for (phone, time) of which `drops` dropped; filler
// alternates to stay uninformative.
void AddCalls(Dataset* d, ValueCode phone, ValueCode time, int64_t total,
              int64_t drops) {
  AppendRows(d, {phone, time, 0, kDrop}, drops / 2);
  AppendRows(d, {phone, time, 1, kDrop}, drops - drops / 2);
  const int64_t oks = total - drops;
  AppendRows(d, {phone, time, 0, kOk}, oks / 2);
  AppendRows(d, {phone, time, 1, kOk}, oks - oks / 2);
}

ComparisonSpec PhoneSpec(bool use_ci) {
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = kPh1;
  spec.value_b = kPh2;
  spec.target_class = kDrop;
  spec.use_confidence_intervals = use_ci;
  spec.min_population = 0;
  return spec;
}

// --- Fig 4(A): the fully expected situation has interestingness 0. ---
TEST(Comparator, BoundaryMinimumIsZero) {
  Dataset d(PhoneSchema());
  // ph1 drops 2%, ph2 drops 4%, uniformly across all times: the ratio
  // cf2k/cf1k equals cf2/cf1 = 2 for every value.
  for (ValueCode t : {kMorning, kAfternoon, kEvening}) {
    AddCalls(&d, kPh1, t, 1000, 20);
    AddCalls(&d, kPh2, t, 1000, 40);
  }
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       CompareFromDataset(d, PhoneSpec(false)));
  ASSERT_FALSE(r.swapped);
  EXPECT_DOUBLE_EQ(r.cf1, 0.02);
  EXPECT_DOUBLE_EQ(r.cf2, 0.04);
  const int rank = r.RankOf(1);  // TimeOfCall
  ASSERT_GE(rank, 0);
  EXPECT_NEAR(r.ranked[static_cast<size_t>(rank)].interestingness, 0.0, 1e-9);
  EXPECT_NEAR(r.ranked[static_cast<size_t>(rank)].normalized, 0.0, 1e-9);
}

// --- Fig 4(B): maximal concentration attains normalized interestingness
// close to its theoretical maximum. ---
TEST(Comparator, BoundaryMaximumConcentration) {
  Dataset d(PhoneSchema());
  // ph1: drops spread, evening has the lowest (zero) drop rate.
  AddCalls(&d, kPh1, kMorning, 1000, 30);
  AddCalls(&d, kPh1, kAfternoon, 1000, 30);
  AddCalls(&d, kPh1, kEvening, 1000, 0);
  // ph2: all drops in the evening, and every evening call drops.
  AddCalls(&d, kPh2, kMorning, 1000, 0);
  AddCalls(&d, kPh2, kAfternoon, 1000, 0);
  AddCalls(&d, kPh2, kEvening, 120, 120);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       CompareFromDataset(d, PhoneSpec(false)));
  const int rank = r.RankOf(1);
  ASSERT_EQ(rank, 0);  // TimeOfCall must rank first
  const AttributeComparison& cmp = r.ranked[0];
  // N2k = cf2 * |D2| for the evening value and rcf2k = 1, rcf1k = 0, so
  // M = (1 - 0) * cf2 * |D2| -> normalized = 1.
  EXPECT_NEAR(cmp.normalized, 1.0, 1e-9);
}

// --- Fig 2(B): the distinguishing attribute outranks a filler. ---
TEST(Comparator, InterestingAttributeOutranksFiller) {
  Dataset d(PhoneSchema());
  AddCalls(&d, kPh1, kMorning, 2000, 40);
  AddCalls(&d, kPh1, kAfternoon, 2000, 40);
  AddCalls(&d, kPh1, kEvening, 2000, 40);
  // ph2 is fine in the afternoon/evening but terrible in the morning.
  AddCalls(&d, kPh2, kMorning, 2000, 200);
  AddCalls(&d, kPh2, kAfternoon, 2000, 40);
  AddCalls(&d, kPh2, kEvening, 2000, 40);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       CompareFromDataset(d, PhoneSpec(true)));
  ASSERT_EQ(r.ranked.size(), 2u);
  EXPECT_EQ(r.ranked[0].attribute, 1);  // TimeOfCall first
  EXPECT_GT(r.ranked[0].interestingness, r.ranked[1].interestingness);
  // The morning value carries the contribution.
  const ValueComparison& morning = r.ranked[0].values[kMorning];
  EXPECT_GT(morning.w, 0.0);
  EXPECT_GT(morning.f, 0.0);
}

// --- Orientation: swapping the two rules yields the same ranking. ---
TEST(Comparator, AutoOrientationSwaps) {
  Dataset d(PhoneSchema());
  AddCalls(&d, kPh1, kMorning, 1000, 10);
  AddCalls(&d, kPh1, kAfternoon, 1000, 10);
  AddCalls(&d, kPh1, kEvening, 1000, 10);
  AddCalls(&d, kPh2, kMorning, 1000, 80);
  AddCalls(&d, kPh2, kAfternoon, 1000, 20);
  AddCalls(&d, kPh2, kEvening, 1000, 20);

  ComparisonSpec forward = PhoneSpec(true);
  ComparisonSpec backward = forward;
  std::swap(backward.value_a, backward.value_b);

  ASSERT_OK_AND_ASSIGN(ComparisonResult rf, CompareFromDataset(d, forward));
  ASSERT_OK_AND_ASSIGN(ComparisonResult rb, CompareFromDataset(d, backward));
  EXPECT_FALSE(rf.swapped);
  EXPECT_TRUE(rb.swapped);
  EXPECT_EQ(rb.spec.value_a, forward.value_a);
  EXPECT_EQ(rb.spec.value_b, forward.value_b);
  ASSERT_EQ(rf.ranked.size(), rb.ranked.size());
  for (size_t i = 0; i < rf.ranked.size(); ++i) {
    EXPECT_EQ(rf.ranked[i].attribute, rb.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(rf.ranked[i].interestingness,
                     rb.ranked[i].interestingness);
  }
}

// --- Property attributes are segregated (Section IV.C). ---
TEST(Comparator, PropertyAttributeSegregated) {
  Schema schema = MakeSchema({{"PhoneModel", {"ph1", "ph2"}},
                              {"HardwareVersion", {"v1", "v2"}},
                              {"TimeOfCall", {"m", "a", "e"}},
                              {"Class", {"ok", "drop"}}});
  Dataset d(schema);
  // Hardware version is keyed to the phone: ph1 only v1, ph2 only v2.
  for (ValueCode t : {0, 1, 2}) {
    AppendRows(&d, {kPh1, 0, t, kDrop}, 5);
    AppendRows(&d, {kPh1, 0, t, kOk}, 495);
    AppendRows(&d, {kPh2, 1, t, kDrop}, 20);
    AppendRows(&d, {kPh2, 1, t, kOk}, 480);
  }
  ComparisonSpec spec = PhoneSpec(false);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, CompareFromDataset(d, spec));
  ASSERT_EQ(r.properties.size(), 1u);
  EXPECT_EQ(r.properties[0].attribute, 1);
  EXPECT_DOUBLE_EQ(r.properties[0].property_ratio, 1.0);
  // Without detection it lands in the ranking (ablation behaviour), at the
  // top because cf1k = 0 for its v2 value.
  spec.detect_property_attributes = false;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r2, CompareFromDataset(d, spec));
  EXPECT_TRUE(r2.properties.empty());
  EXPECT_EQ(r2.ranked[0].attribute, 1);
}

// --- The cube-based comparator agrees exactly with the dataset scan. ---
TEST(Comparator, CubePathMatchesDatasetPath) {
  CallLogConfig config;
  config.num_records = 20000;
  config.num_attributes = 12;
  config.num_phone_models = 6;
  config.phone_drop_multiplier = {1.0, 2.5};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", /*phone_model=*/1, kDroppedWhileInProgress,
      5.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen,
                       CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));

  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  spec.min_population = 0;

  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(ComparisonResult from_cubes, comparator.Compare(spec));
  ASSERT_OK_AND_ASSIGN(ComparisonResult from_data,
                       CompareFromDataset(d, spec));

  ASSERT_EQ(from_cubes.ranked.size(), from_data.ranked.size());
  ASSERT_EQ(from_cubes.properties.size(), from_data.properties.size());
  EXPECT_DOUBLE_EQ(from_cubes.cf1, from_data.cf1);
  EXPECT_DOUBLE_EQ(from_cubes.cf2, from_data.cf2);
  for (size_t i = 0; i < from_cubes.ranked.size(); ++i) {
    EXPECT_EQ(from_cubes.ranked[i].attribute, from_data.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(from_cubes.ranked[i].interestingness,
                     from_data.ranked[i].interestingness);
    for (size_t k = 0; k < from_cubes.ranked[i].values.size(); ++k) {
      const ValueComparison& a = from_cubes.ranked[i].values[k];
      const ValueComparison& b = from_data.ranked[i].values[k];
      EXPECT_EQ(a.n1, b.n1);
      EXPECT_EQ(a.n2, b.n2);
      EXPECT_EQ(a.n1_target, b.n1_target);
      EXPECT_EQ(a.n2_target, b.n2_target);
      EXPECT_DOUBLE_EQ(a.w, b.w);
    }
  }
}

// --- The planted cause is recovered at rank 1 on generated data. ---
TEST(Comparator, RecoversPlantedCause) {
  CallLogConfig config;
  config.num_records = 60000;
  config.num_attributes = 20;
  config.num_phone_models = 8;
  config.num_property_attributes = 1;
  config.phone_drop_multiplier = {1.0, 1.0, 2.0};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", /*phone_model=*/2, kDroppedWhileInProgress,
      8.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen,
                       CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);

  ComparisonSpec spec;
  spec.attribute = 0;       // PhoneModel
  spec.value_a = 0;         // ph1 (good)
  spec.value_b = 2;         // ph3 (bad: multiplier + planted morning effect)
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.Compare(spec));
  EXPECT_EQ(r.ranked[0].attribute, gen.GroundTruthAttribute());
  // The hardware-version attribute must be segregated as a property.
  ASSERT_EQ(r.properties.size(), 1u);
  ASSERT_OK_AND_ASSIGN(int hw, store.schema().IndexOf("HardwareVersion1"));
  EXPECT_EQ(r.properties[0].attribute, hw);
}

// --- Error handling. ---
TEST(Comparator, RejectsInvalidSpecs) {
  Dataset d(PhoneSchema());
  AddCalls(&d, kPh1, kMorning, 100, 2);
  AddCalls(&d, kPh2, kMorning, 100, 4);

  ComparisonSpec spec = PhoneSpec(true);
  spec.value_b = spec.value_a;
  EXPECT_FALSE(CompareFromDataset(d, spec).ok());

  spec = PhoneSpec(true);
  spec.attribute = 3;  // the class attribute
  EXPECT_FALSE(CompareFromDataset(d, spec).ok());

  spec = PhoneSpec(true);
  spec.target_class = 9;
  EXPECT_FALSE(CompareFromDataset(d, spec).ok());

  // Zero confidence on the good side: cf2/cf1 undefined.
  Dataset zero(PhoneSchema());
  AddCalls(&zero, kPh1, kMorning, 100, 0);
  AddCalls(&zero, kPh2, kMorning, 100, 4);
  EXPECT_FALSE(CompareFromDataset(zero, PhoneSpec(true)).ok());
}

TEST(Comparator, WarnsOnSmallPopulations) {
  Dataset d(PhoneSchema());
  AddCalls(&d, kPh1, kMorning, 10, 1);
  AddCalls(&d, kPh2, kMorning, 10, 2);
  ComparisonSpec spec = PhoneSpec(true);
  spec.min_population = 30;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, CompareFromDataset(d, spec));
  EXPECT_FALSE(r.warnings.empty());
}

TEST(Comparator, CompareByNameResolvesLabels) {
  CallLogConfig config;
  config.num_records = 5000;
  config.num_attributes = 6;
  config.num_phone_models = 4;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen,
                       CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  auto result = comparator.CompareByName("PhoneModel", "ph01", "ph02",
                                         "dropped-while-in-progress");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->ranked.empty());
  EXPECT_FALSE(
      comparator.CompareByName("NoSuchAttr", "a", "b", "drop").ok());
}

// --- CI adjustment shrinks small-sample contributions (Section IV.B). ---
TEST(Comparator, ConfidenceIntervalsAreConservative) {
  Dataset d(PhoneSchema());
  // Small counts: 3/30 vs 1/30 in the morning looks dramatic but is noise.
  AddCalls(&d, kPh1, kMorning, 30, 1);
  AddCalls(&d, kPh1, kAfternoon, 3000, 60);
  AddCalls(&d, kPh1, kEvening, 3000, 60);
  AddCalls(&d, kPh2, kMorning, 30, 3);
  AddCalls(&d, kPh2, kAfternoon, 3000, 120);
  AddCalls(&d, kPh2, kEvening, 3000, 120);

  ASSERT_OK_AND_ASSIGN(ComparisonResult with_ci,
                       CompareFromDataset(d, PhoneSpec(true)));
  ASSERT_OK_AND_ASSIGN(ComparisonResult without_ci,
                       CompareFromDataset(d, PhoneSpec(false)));
  const int idx_with = with_ci.RankOf(1);
  const int idx_without = without_ci.RankOf(1);
  ASSERT_GE(idx_with, 0);
  ASSERT_GE(idx_without, 0);
  EXPECT_LE(
      with_ci.ranked[static_cast<size_t>(idx_with)].interestingness,
      without_ci.ranked[static_cast<size_t>(idx_without)].interestingness);
}

// --- Report rendering smoke checks. ---
TEST(ComparatorReport, FormatsReportAndCsv) {
  Dataset d(PhoneSchema());
  AddCalls(&d, kPh1, kMorning, 1000, 10);
  AddCalls(&d, kPh1, kAfternoon, 1000, 10);
  AddCalls(&d, kPh1, kEvening, 1000, 10);
  AddCalls(&d, kPh2, kMorning, 1000, 80);
  AddCalls(&d, kPh2, kAfternoon, 1000, 20);
  AddCalls(&d, kPh2, kEvening, 1000, 20);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       CompareFromDataset(d, PhoneSpec(true)));
  const std::string report = FormatComparisonReport(r, d.schema());
  EXPECT_NE(report.find("TimeOfCall"), std::string::npos);
  EXPECT_NE(report.find("Ranked distinguishing attributes"),
            std::string::npos);
  const std::string csv = ComparisonToCsv(r, d.schema());
  EXPECT_NE(csv.find("rank,attribute"), std::string::npos);
  EXPECT_NE(csv.find("TimeOfCall"), std::string::npos);
}

}  // namespace
}  // namespace opmap
