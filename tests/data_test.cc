#include <sstream>

#include "gtest/gtest.h"
#include "opmap/common/random.h"
#include "opmap/data/attribute.h"
#include "opmap/data/call_log.h"
#include "opmap/data/csv.h"
#include "opmap/data/dataset.h"
#include "opmap/data/manufacturing.h"
#include "opmap/data/sampling.h"
#include "opmap/data/schema.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

TEST(Attribute, CategoricalDictionary) {
  Attribute a = Attribute::Categorical("color", {"red", "green"});
  EXPECT_TRUE(a.is_categorical());
  EXPECT_EQ(a.domain(), 2);
  EXPECT_EQ(a.label(0), "red");
  ASSERT_OK_AND_ASSIGN(ValueCode c, a.CodeOf("green"));
  EXPECT_EQ(c, 1);
  EXPECT_FALSE(a.CodeOf("blue").ok());
  EXPECT_EQ(a.CodeOfOrAdd("blue"), 2);
  EXPECT_EQ(a.domain(), 3);
  EXPECT_EQ(a.CodeOfOrAdd("blue"), 2);  // idempotent
}

TEST(Attribute, ContinuousHasNoDomain) {
  Attribute a = Attribute::Continuous("rssi");
  EXPECT_FALSE(a.is_categorical());
  EXPECT_EQ(a.domain(), 0);
}

TEST(Schema, ValidatesConstruction) {
  EXPECT_FALSE(Schema::Make({}, 0).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  EXPECT_FALSE(Schema::Make(attrs, 0).ok());  // continuous class
  EXPECT_FALSE(Schema::Make(attrs, 5).ok());  // out of range
  ASSERT_OK_AND_ASSIGN(Schema s, Schema::Make(attrs, 1));
  EXPECT_EQ(s.class_index(), 1);
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_FALSE(s.AllCategorical());
}

TEST(Schema, RejectsDuplicateNames) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Categorical("x", {"a"}));
  attrs.push_back(Attribute::Categorical("x", {"b"}));
  EXPECT_FALSE(Schema::Make(attrs, 1).ok());
}

TEST(Schema, IndexOf) {
  Schema s = MakeSchema({{"p", {"1", "2"}}, {"c", {"y", "n"}}});
  ASSERT_OK_AND_ASSIGN(int i, s.IndexOf("p"));
  EXPECT_EQ(i, 0);
  EXPECT_FALSE(s.IndexOf("zz").ok());
}

TEST(Dataset, AppendValidatesCells) {
  Schema s = MakeSchema({{"p", {"1", "2"}}, {"c", {"y", "n"}}});
  Dataset d(s);
  EXPECT_OK(d.AppendRow({Cell::Categorical(1), Cell::Categorical(0)}));
  EXPECT_FALSE(d.AppendRow({Cell::Categorical(5), Cell::Categorical(0)}).ok());
  EXPECT_FALSE(d.AppendRow({Cell::Categorical(0)}).ok());  // wrong arity
  EXPECT_OK(d.AppendRow({Cell::Categorical(kNullCode), Cell::Categorical(1)}));
  EXPECT_EQ(d.num_rows(), 2);
  EXPECT_EQ(d.code(0, 0), 1);
  EXPECT_EQ(d.code(1, 0), kNullCode);
}

TEST(Dataset, TakeRowsAndDuplicate) {
  Schema s = MakeSchema({{"p", {"1", "2", "3"}}, {"c", {"y", "n"}}});
  Dataset d(s);
  AppendRows(&d, {0, 0}, 1);
  AppendRows(&d, {1, 1}, 1);
  AppendRows(&d, {2, 0}, 1);
  Dataset taken = d.TakeRows({2, 0});
  ASSERT_EQ(taken.num_rows(), 2);
  EXPECT_EQ(taken.code(0, 0), 2);
  EXPECT_EQ(taken.code(1, 0), 0);
  Dataset dup = d.DuplicateTimes(3);
  EXPECT_EQ(dup.num_rows(), 9);
  EXPECT_EQ(dup.code(3, 0), d.code(0, 0));
  EXPECT_EQ(dup.ClassCounts()[0], 6);
}

TEST(Dataset, ClassCountsSkipNull) {
  Schema s = MakeSchema({{"p", {"1"}}, {"c", {"y", "n"}}});
  Dataset d(s);
  AppendRows(&d, {0, 0}, 3);
  AppendRows(&d, {0, 1}, 2);
  ASSERT_OK(
      d.AppendRow({Cell::Categorical(0), Cell::Categorical(kNullCode)}));
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
}

TEST(Csv, RoundTripAndInference) {
  const std::string csv =
      "phone,rssi,disposition\n"
      "ph1,-80.5,ok\n"
      "ph2,-92.1,drop\n"
      "ph1,-85.0,ok\n";
  std::istringstream in(csv);
  CsvReadOptions opts;
  opts.class_column = "disposition";
  ASSERT_OK_AND_ASSIGN(Dataset d, ReadCsvStream(in, opts));
  EXPECT_EQ(d.num_rows(), 3);
  EXPECT_TRUE(d.schema().attribute(0).is_categorical());
  EXPECT_FALSE(d.schema().attribute(1).is_categorical());
  EXPECT_EQ(d.schema().class_index(), 2);
  EXPECT_DOUBLE_EQ(d.number(1, 1), -92.1);
  EXPECT_EQ(d.schema().attribute(0).label(d.code(1, 0)), "ph2");

  std::ostringstream out;
  ASSERT_OK(WriteCsvStream(d, out));
  EXPECT_NE(out.str().find("phone,rssi,disposition"), std::string::npos);
  EXPECT_NE(out.str().find("ph2"), std::string::npos);
}

TEST(Csv, ForcedCategoricalAndNulls) {
  const std::string csv =
      "code,c\n"
      "1,y\n"
      "?,n\n"
      "2,y\n";
  std::istringstream in(csv);
  CsvReadOptions opts;
  opts.class_column = "c";
  opts.categorical_columns = {"code"};
  ASSERT_OK_AND_ASSIGN(Dataset d, ReadCsvStream(in, opts));
  EXPECT_TRUE(d.schema().attribute(0).is_categorical());
  EXPECT_EQ(d.code(1, 0), kNullCode);
  EXPECT_EQ(d.schema().attribute(0).domain(), 2);
}

TEST(Csv, Errors) {
  CsvReadOptions opts;
  opts.class_column = "missing";
  {
    std::istringstream in("a,b\n1,2\n");
    EXPECT_FALSE(ReadCsvStream(in, opts).ok());
  }
  opts.class_column = "b";
  {
    std::istringstream in("a,b\n1\n");  // ragged row
    EXPECT_FALSE(ReadCsvStream(in, opts).ok());
  }
  {
    std::istringstream in("");
    EXPECT_FALSE(ReadCsvStream(in, opts).ok());
  }
}

TEST(Csv, RecoveryModeSkipsAndCountsMalformedRows) {
  const std::string csv =
      "phone,rssi,disposition\n"
      "ph1,-80.5,ok\n"
      "ph2,-92.1\n"            // ragged: skipped
      "ph1,-85.0,ok\n"
      "ph2,-90.0,drop,extra\n"  // too many fields: skipped
      "ph2,-88.0,drop\n";
  std::istringstream in(csv);
  CsvReadOptions opts;
  opts.class_column = "disposition";
  opts.recover = true;
  IngestReport report;
  ASSERT_OK_AND_ASSIGN(Dataset d, ReadCsvStream(in, opts, &report));
  EXPECT_EQ(d.num_rows(), 3);
  EXPECT_EQ(report.rows_read, 3);
  EXPECT_EQ(report.rows_skipped, 2);
  ASSERT_EQ(report.sample_errors.size(), 2u);
  EXPECT_NE(report.sample_errors[0].find("line 3"), std::string::npos);
  EXPECT_NE(report.sample_errors[1].find("line 5"), std::string::npos);
  EXPECT_NE(report.Summary().find("2 skipped"), std::string::npos);
}

TEST(Csv, StrictModeStillFailsFastAndFillsReport) {
  const std::string csv = "a,c\n1,y\n1\n";
  std::istringstream in(csv);
  CsvReadOptions opts;
  opts.class_column = "c";
  IngestReport report;
  EXPECT_FALSE(ReadCsvStream(in, opts, &report).ok());
  EXPECT_EQ(report.rows_skipped, 0);
}

TEST(Csv, FieldLengthGuard) {
  CsvReadOptions opts;
  opts.class_column = "c";
  opts.max_field_length = 8;
  const std::string csv =
      "a,c\nshort,y\naveryveryverylongfield,n\nok,y\n";
  {
    std::istringstream in(csv);
    EXPECT_FALSE(ReadCsvStream(in, opts).ok());
  }
  {
    std::istringstream in(csv);
    opts.recover = true;
    IngestReport report;
    ASSERT_OK_AND_ASSIGN(Dataset d, ReadCsvStream(in, opts, &report));
    EXPECT_EQ(d.num_rows(), 2);
    EXPECT_EQ(report.rows_skipped, 1);
  }
}

TEST(Csv, ColumnCountGuard) {
  CsvReadOptions opts;
  opts.class_column = "c";
  opts.max_columns = 3;
  std::istringstream in("a,b,x,y,c\n1,2,3,4,y\n");
  Result<Dataset> r = ReadCsvStream(in, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(Sampling, UniformSampleSizeAndOrder) {
  Schema s = MakeSchema({{"p", {"1"}}, {"c", {"y", "n"}}});
  Dataset d(s);
  for (int i = 0; i < 100; ++i) {
    AppendRows(&d, {0, static_cast<ValueCode>(i % 2)}, 1);
  }
  Rng rng(3);
  Dataset sampled = UniformSample(d, 10, rng);
  EXPECT_EQ(sampled.num_rows(), 10);
  Dataset all = UniformSample(d, 1000, rng);
  EXPECT_EQ(all.num_rows(), 100);
}

TEST(Sampling, UnbalancedCapsMajority) {
  Schema s = MakeSchema({{"p", {"1"}}, {"c", {"ok", "drop"}}});
  Dataset d(s);
  AppendRows(&d, {0, 0}, 9600);
  AppendRows(&d, {0, 1}, 400);
  Rng rng(5);
  ASSERT_OK_AND_ASSIGN(Dataset sampled, UnbalancedSample(d, 4.0, rng));
  const auto counts = sampled.ClassCounts();
  EXPECT_EQ(counts[1], 400);  // minority kept in full
  EXPECT_NEAR(static_cast<double>(counts[0]), 1600.0, 150.0);
  EXPECT_FALSE(UnbalancedSample(d, 0.5, rng).ok());
}

TEST(CallLog, SchemaLayout) {
  CallLogConfig config;
  config.num_attributes = 10;
  config.num_property_attributes = 2;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  const Schema& s = gen.schema();
  EXPECT_EQ(s.num_attributes(), 11);  // 10 + class
  EXPECT_EQ(s.attribute(0).name(), "PhoneModel");
  EXPECT_EQ(s.attribute(1).name(), "TimeOfCall");
  EXPECT_TRUE(s.attribute(1).ordered());
  EXPECT_EQ(s.attribute(8).name(), "HardwareVersion1");
  EXPECT_EQ(s.attribute(9).name(), "HardwareVersion2");
  EXPECT_EQ(s.class_attribute().name(), "CallDisposition");
  EXPECT_EQ(s.num_classes(), 3);
}

TEST(CallLog, DeterministicForSeed) {
  CallLogConfig config;
  config.num_records = 500;
  config.num_attributes = 8;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator g1, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(CallLogGenerator g2, CallLogGenerator::Make(config));
  Dataset a = g1.Generate();
  Dataset b = g2.Generate();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_attributes(); ++c) {
      ASSERT_EQ(a.code(r, c), b.code(r, c));
    }
  }
}

TEST(CallLog, ClassesAreSkewed) {
  CallLogConfig config;
  config.num_records = 50000;
  config.num_attributes = 8;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  const auto counts = d.ClassCounts();
  EXPECT_GT(counts[kEndedSuccessfully], 20 * counts[kDroppedWhileInProgress]);
  EXPECT_GT(counts[kDroppedWhileInProgress], 0);
  EXPECT_GT(counts[kFailedDuringSetup], 0);
}

TEST(CallLog, PropertyAttributeKeyedToPhone) {
  CallLogConfig config;
  config.num_records = 2000;
  config.num_attributes = 8;
  config.num_property_attributes = 1;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(int hw, d.schema().IndexOf("HardwareVersion1"));
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    EXPECT_EQ(d.code(r, hw), d.code(r, 0));  // same code as phone model
  }
}

TEST(CallLog, PlantedEffectRaisesRate) {
  CallLogConfig config;
  config.num_records = 80000;
  config.num_attributes = 8;
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", /*phone_model=*/-1,
      kDroppedWhileInProgress, 6.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(ValueCode morning,
                       d.schema().attribute(1).CodeOf("morning"));
  int64_t m_total = 0, m_drop = 0, o_total = 0, o_drop = 0;
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    const bool is_morning = d.code(r, 1) == morning;
    const bool dropped = d.class_code(r) == kDroppedWhileInProgress;
    (is_morning ? m_total : o_total) += 1;
    if (dropped) (is_morning ? m_drop : o_drop) += 1;
  }
  const double m_rate = static_cast<double>(m_drop) / m_total;
  const double o_rate = static_cast<double>(o_drop) / o_total;
  EXPECT_GT(m_rate, 3.0 * o_rate);
}

TEST(CallLog, UsageSkewShiftsDistributionNotRates) {
  CallLogConfig config;
  config.num_records = 60000;
  config.num_attributes = 8;
  config.value_zipf_s = 0.0;  // uniform global usage
  config.usage_skews.push_back(UsageSkew{"Attr003", 1, 3.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(int attr, d.schema().IndexOf("Attr003"));
  // For phone 1 the first value dominates; for phone 0 it is ~uniform.
  int64_t ph0_total = 0, ph0_v0 = 0, ph1_total = 0, ph1_v0 = 0;
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    if (d.code(r, 0) == 0) {
      ++ph0_total;
      if (d.code(r, attr) == 0) ++ph0_v0;
    } else if (d.code(r, 0) == 1) {
      ++ph1_total;
      if (d.code(r, attr) == 0) ++ph1_v0;
    }
  }
  const double ph0_frac = static_cast<double>(ph0_v0) / ph0_total;
  const double ph1_frac = static_cast<double>(ph1_v0) / ph1_total;
  EXPECT_NEAR(ph0_frac, 1.0 / 8.0, 0.02);
  EXPECT_GT(ph1_frac, 0.5);
}

TEST(CallLog, UsageSkewValidation) {
  CallLogConfig config;
  config.usage_skews.push_back(UsageSkew{"NoSuch", 0, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.usage_skews.push_back(UsageSkew{"PhoneModel", 0, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.usage_skews.push_back(UsageSkew{"HardwareVersion1", 0, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.usage_skews.push_back(UsageSkew{"TimeOfCall", 99, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
}

TEST(CallLog, StreamingMatchesGenerate) {
  CallLogConfig config;
  config.num_records = 300;
  config.num_attributes = 6;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  int64_t row = 0;
  gen.VisitRows(config.num_records, [&](const ValueCode* codes) {
    for (int a = 0; a < d.num_attributes(); ++a) {
      ASSERT_EQ(codes[a], d.code(row, a));
    }
    ++row;
  });
  EXPECT_EQ(row, d.num_rows());
}

TEST(Manufacturing, GeneratesMixedSchemaWithPlantedCause) {
  ManufacturingConfig config;
  config.num_rows = 40000;
  ASSERT_OK_AND_ASSIGN(ManufacturingGenerator gen,
                       ManufacturingGenerator::Make(config));
  Dataset d = gen.Generate();
  EXPECT_EQ(d.num_rows(), 40000);
  EXPECT_FALSE(d.schema().AllCategorical());  // sensor columns continuous
  ASSERT_OK_AND_ASSIGN(int temp, d.schema().IndexOf("OvenTempC"));
  ASSERT_OK_AND_ASSIGN(int line, d.schema().IndexOf("Line"));
  ASSERT_OK_AND_ASSIGN(int fixture, d.schema().IndexOf("FixtureId"));

  // The planted cause: line B defects concentrate above the threshold.
  int64_t hot_b = 0, hot_b_defects = 0, cool_b = 0, cool_b_defects = 0;
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    if (d.code(r, line) != 1) continue;
    const bool hot = d.number(r, temp) > config.temp_threshold_c;
    const bool defect = d.class_code(r) == 1;
    (hot ? hot_b : cool_b) += 1;
    if (defect) (hot ? hot_b_defects : cool_b_defects) += 1;
    // Fixture is keyed to the line: B only uses FX-B*.
    EXPECT_GE(d.code(r, fixture), 3);
  }
  ASSERT_GT(hot_b, 0);
  const double hot_rate = static_cast<double>(hot_b_defects) / hot_b;
  const double cool_rate = static_cast<double>(cool_b_defects) / cool_b;
  EXPECT_GT(hot_rate, 4.0 * cool_rate);
}

TEST(Manufacturing, DeterministicAndValidated) {
  ManufacturingConfig config;
  config.num_rows = 500;
  ASSERT_OK_AND_ASSIGN(ManufacturingGenerator g1,
                       ManufacturingGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(ManufacturingGenerator g2,
                       ManufacturingGenerator::Make(config));
  Dataset a = g1.Generate();
  Dataset b = g2.Generate();
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.code(r, 0), b.code(r, 0));
    ASSERT_DOUBLE_EQ(a.number(r, 3), b.number(r, 3));
  }
  config.base_defect_rate = 1.5;
  EXPECT_FALSE(ManufacturingGenerator::Make(config).ok());
  config = {};
  config.num_rows = -1;
  EXPECT_FALSE(ManufacturingGenerator::Make(config).ok());
}

TEST(CallLog, RejectsBadConfigs) {
  CallLogConfig config;
  config.num_phone_models = 1;
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.num_attributes = 1;
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.effects.push_back(PlantedEffect{"NoSuch", "v", -1, 1, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());
  config = {};
  config.effects.push_back(
      PlantedEffect{"TimeOfCall", "morning", -1, kEndedSuccessfully, 2.0});
  EXPECT_FALSE(CallLogGenerator::Make(config).ok());  // non-failure class
}

}  // namespace
}  // namespace opmap
