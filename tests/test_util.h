#ifndef OPMAP_TESTS_TEST_UTIL_H_
#define OPMAP_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/status.h"
#include "opmap/data/dataset.h"

// Asserts that a Status-returning expression is OK.
#define ASSERT_OK(expr)                                  \
  do {                                                   \
    const ::opmap::Status _st = (expr);                  \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    const ::opmap::Status _st = (expr);                  \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

// Asserts a Result is OK and moves its value into `lhs`.
#define ASSERT_OK_AND_ASSIGN(lhs, expr)                       \
  auto OPMAP_CONCAT_(_test_res_, __LINE__) = (expr);          \
  ASSERT_TRUE(OPMAP_CONCAT_(_test_res_, __LINE__).ok())       \
      << OPMAP_CONCAT_(_test_res_, __LINE__).status().ToString(); \
  lhs = std::move(OPMAP_CONCAT_(_test_res_, __LINE__)).MoveValue()

namespace opmap::test {

/// Builds a small all-categorical schema: attributes given as
/// (name, labels) pairs; the last attribute is the class.
inline Schema MakeSchema(
    const std::vector<std::pair<std::string, std::vector<std::string>>>&
        attrs) {
  std::vector<Attribute> list;
  for (const auto& [name, labels] : attrs) {
    list.push_back(Attribute::Categorical(name, labels));
  }
  auto result =
      Schema::Make(std::move(list), static_cast<int>(attrs.size()) - 1);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.MoveValue();
}

/// Appends `count` identical rows of categorical codes.
inline void AppendRows(Dataset* dataset, const std::vector<ValueCode>& codes,
                       int64_t count) {
  std::vector<Cell> cells;
  for (ValueCode c : codes) cells.push_back(Cell::Categorical(c));
  for (int64_t i = 0; i < count; ++i) {
    auto st = dataset->AppendRow(cells);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
}

}  // namespace opmap::test

#endif  // OPMAP_TESTS_TEST_UTIL_H_
