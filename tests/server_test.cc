// opmapd suite: wire-protocol framing, the serving daemon's event loop
// (admission control, per-connection ordering, hot reload, graceful
// drain), and the two acceptance properties of the serving change —
// protocol robustness (malformed bytes never crash the daemon or disturb
// other connections) and concurrent-session correctness (responses are
// byte-identical to direct QueryEngine calls, for any client count,
// --mmap=on|off, cache on or off).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/io.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "opmap/ingest/ingester.h"
#include "opmap/server/client.h"
#include "opmap/server/protocol.h"
#include "opmap/server/server.h"
#include "test_util.h"

namespace opmap {
namespace {

using server::AllPairsRequest;
using server::Client;
using server::CompareRequest;
using server::DecodeFrame;
using server::EncodeFrame;
using server::EncodeRequest;
using server::FrameDecode;
using server::GiRequest;
using server::Op;
using server::ReloadRequest;
using server::RenderRequest;
using server::Reply;
using server::RespStatus;
using server::SessionRequest;
using server::SessionVerb;

// Deterministic fuzz bytes (xorshift64*), seeded per test.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

std::string WriteCubes(const std::string& name, int64_t records = 3000) {
  CallLogConfig config;
  config.num_records = records;
  config.num_attributes = 6;
  config.values_per_attribute = 4;
  config.num_phone_models = 5;
  config.seed = 11;
  auto generator = CallLogGenerator::Make(config);
  EXPECT_TRUE(generator.ok()) << generator.status().ToString();
  const Dataset data = generator->Generate();
  auto built = CubeBuilder::FromDataset(data);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_OK(built->SaveToFile(path));
  return path;
}

std::string SocketAddr(const std::string& name) {
  return "unix:" + ::testing::TempDir() + "/" + name;
}

// Runs Serve() on a background thread; Stop() drains and asserts the
// loop exited cleanly.
class TestServer {
 public:
  static std::unique_ptr<TestServer> Start(server::ServerOptions options) {
    auto started = server::Server::Start(options);
    if (!started.ok()) {
      ADD_FAILURE() << started.status().ToString();
      return nullptr;
    }
    std::unique_ptr<TestServer> ts(new TestServer());
    ts->server_ = std::move(started).MoveValue();
    ts->thread_ = std::thread(
        [ts_ptr = ts.get()] { ts_ptr->serve_status_ = ts_ptr->server_->Serve(); });
    return ts;
  }

  ~TestServer() { Stop(); }

  void Stop() {
    if (server_ != nullptr && thread_.joinable()) {
      server_->Shutdown();
      thread_.join();
      EXPECT_OK(serve_status_);
    }
  }

  const std::string& address() const { return server_->address(); }
  server::ServerStats stats() const { return server_->stats(); }
  server::Server* server() const { return server_.get(); }

 private:
  TestServer() = default;
  std::unique_ptr<server::Server> server_;
  std::thread thread_;
  Status serve_status_;
};

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Protocol, FrameRoundTripAndIncrementalDecode) {
  const std::string payload = "hello frames";
  const std::string frame = EncodeFrame(42, payload);
  ASSERT_EQ(frame.size(), server::kFrameHeaderBytes + payload.size());

  uint64_t id = 0;
  std::string decoded;
  size_t consumed = 0;
  std::string error;
  // Every strict prefix is kNeedMore, never an error.
  for (size_t n = 0; n < frame.size(); ++n) {
    EXPECT_EQ(DecodeFrame(frame.data(), n, 1 << 20, &id, &decoded, &consumed,
                          &error),
              FrameDecode::kNeedMore)
        << "prefix length " << n;
  }
  ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), 1 << 20, &id, &decoded,
                        &consumed, &error),
            FrameDecode::kFrame);
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(decoded, payload);
  EXPECT_EQ(consumed, frame.size());
}

TEST(Protocol, BitFlipsAndOversizeLengthsAreCorrupt) {
  const std::string frame = EncodeFrame(7, "payload bytes");
  uint64_t id = 0;
  std::string payload;
  size_t consumed = 0;
  std::string error;
  // Any single-bit flip anywhere in the frame must be rejected.
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    std::string bad = frame;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    const FrameDecode rc = DecodeFrame(bad.data(), bad.size(), 1 << 20, &id,
                                       &payload, &consumed, &error);
    // A flip in the length field may also turn the frame into a plausible
    // longer one (kNeedMore) — but never into a *valid* frame.
    EXPECT_NE(rc, FrameDecode::kFrame) << "flipped byte " << byte;
  }
  // Declared length beyond the cap is corruption even before the bytes
  // arrive (anti-allocation guard).
  const std::string big = EncodeFrame(9, std::string(2048, 'x'));
  EXPECT_EQ(DecodeFrame(big.data(), big.size(), 1024, &id, &payload,
                        &consumed, &error),
            FrameDecode::kCorrupt);
  EXPECT_EQ(id, 9u);  // best-effort id echo for the error response
}

TEST(Protocol, RequestBodiesRoundTrip) {
  CompareRequest cmp;
  cmp.attribute = 3;
  cmp.value_a = 0;
  cmp.value_b = 2;
  cmp.target_class = 1;
  cmp.min_population = 5;
  ASSERT_OK_AND_ASSIGN(CompareRequest cmp2, server::DecodeCompareRequest(
                                                server::EncodeCompareRequest(cmp)));
  EXPECT_EQ(cmp2.attribute, 3);
  EXPECT_EQ(cmp2.value_b, 2);
  EXPECT_EQ(cmp2.min_population, 5);

  SessionRequest ses;
  ses.verb = SessionVerb::kDice;
  ses.attribute = "PhoneModel";
  ses.values = {"ph1", "ph2"};
  ASSERT_OK_AND_ASSIGN(SessionRequest ses2, server::DecodeSessionRequest(
                                                server::EncodeSessionRequest(ses)));
  EXPECT_EQ(ses2.verb, SessionVerb::kDice);
  EXPECT_EQ(ses2.attribute, "PhoneModel");
  ASSERT_EQ(ses2.values.size(), 2u);
  EXPECT_EQ(ses2.values[1], "ph2");

  // Trailing junk after a well-formed body is rejected, not ignored.
  EXPECT_FALSE(
      server::DecodeGiRequest(server::EncodeGiRequest(GiRequest{}) + "x").ok());
}

// ---------------------------------------------------------------------------
// Serving basics over both transports
// ---------------------------------------------------------------------------

TEST(Server, ServesPingSchemaAndCompareOverUnixSocket) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_basic.opmc");
  options.listen = SocketAddr("srv_basic.sock");
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply ping, client->Ping());
  EXPECT_TRUE(ping.ok());

  ASSERT_OK_AND_ASSIGN(Reply schema_reply, client->Call(Op::kSchema));
  ASSERT_TRUE(schema_reply.ok()) << schema_reply.ErrorText();
  ASSERT_OK_AND_ASSIGN(server::SchemaInfo schema,
                       server::DecodeSchemaInfo(schema_reply.body));
  EXPECT_EQ(schema.num_records, 3000);
  EXPECT_EQ(schema.store_generation, 1u);
  EXPECT_GT(schema.attributes.size(), 1u);

  CompareRequest cmp;
  cmp.attribute = 0;
  cmp.value_a = 0;
  cmp.value_b = 1;
  cmp.target_class = 0;
  ASSERT_OK_AND_ASSIGN(Reply compare, client->Compare(cmp));
  ASSERT_TRUE(compare.ok()) << compare.ErrorText();
  EXPECT_FALSE(compare.body.empty());

  // Bad arguments come back as kBadRequest with the engine's message,
  // and the connection stays usable.
  CompareRequest bad = cmp;
  bad.attribute = 99;
  ASSERT_OK_AND_ASSIGN(Reply rejected, client->Compare(bad));
  EXPECT_EQ(rejected.status, RespStatus::kBadRequest);
  ASSERT_OK_AND_ASSIGN(Reply ping2, client->Ping());
  EXPECT_TRUE(ping2.ok());
}

TEST(Server, ServesOverTcpLoopbackWithOsAssignedPort) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_tcp.opmc");
  options.listen = "127.0.0.1:0";
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);
  // Port 0 resolved to a real port in address().
  EXPECT_EQ(ts->address().rfind("127.0.0.1:", 0), 0u);
  EXPECT_NE(ts->address(), "127.0.0.1:0");

  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply ping, client->Ping());
  EXPECT_TRUE(ping.ok());
  ASSERT_OK_AND_ASSIGN(Reply stats, client->Stats());
  EXPECT_TRUE(stats.ok());
  EXPECT_NE(stats.body.find("server.requests"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent-session correctness (acceptance criterion)
// ---------------------------------------------------------------------------

TEST(ServerEquivalence, ConcurrentClientsByteIdenticalToDirectEngine) {
  const std::string cubes = WriteCubes("srv_equiv.opmc");

  // Expected bytes from a direct, uncached, eager QueryEngine — the
  // reference the daemon must reproduce exactly.
  CubeLoadOptions eager;
  eager.use_mmap = false;
  ASSERT_OK_AND_ASSIGN(CubeStore store,
                       CubeStore::LoadFromFile(cubes, nullptr, eager));
  QueryEngine engine(&store, /*cache_bytes=*/0);
  const std::string attr0 = store.schema().attribute(0).name();

  std::vector<CompareRequest> compare_reqs;
  for (int attr = 0; attr < 3; ++attr) {
    CompareRequest cmp;
    cmp.attribute = attr;
    cmp.value_a = 0;
    cmp.value_b = 1;
    cmp.target_class = 0;
    compare_reqs.push_back(cmp);
  }
  std::vector<std::string> compare_expected;
  for (const CompareRequest& req : compare_reqs) {
    ComparisonSpec spec;
    spec.attribute = req.attribute;
    spec.value_a = req.value_a;
    spec.value_b = req.value_b;
    spec.target_class = req.target_class;
    spec.min_population = req.min_population;
    ASSERT_OK_AND_ASSIGN(auto result, engine.Compare(spec));
    compare_expected.push_back(server::EncodeComparisonResult(*result));
  }
  ASSERT_OK_AND_ASSIGN(auto pairs, engine.CompareAllPairs(0, 0, 30));
  const std::string pairs_expected = server::EncodePairSummaries(pairs);
  GiOptions gi_options;
  gi_options.top_influence = 5;
  ASSERT_OK_AND_ASSIGN(auto gi, engine.Gi(gi_options));
  const std::string gi_expected = server::EncodeGeneralImpressions(*gi);
  ExplorationSession ref_session(&store);
  ASSERT_OK(ref_session.OpenAttribute(attr0));
  const std::string path_expected = ref_session.PathString();
  ASSERT_OK_AND_ASSIGN(std::string render_expected,
                       ref_session.Render(SessionRenderOptions{}));

  int config = 0;
  for (const bool use_mmap : {true, false}) {
    for (const bool cached : {true, false}) {
      server::ServerOptions options;
      options.cubes_path = cubes;
      options.listen =
          SocketAddr("srv_equiv_" + std::to_string(config++) + ".sock");
      options.use_mmap = use_mmap;
      options.cache_bytes = cached ? QueryCache::kDefaultMaxBytes : 0;
      options.workers = 2;
      auto ts = TestServer::Start(options);
      ASSERT_NE(ts, nullptr);

      constexpr int kClients = 3;
      std::vector<std::string> failures(kClients);
      std::vector<std::thread> threads;
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          auto fail = [&](const std::string& what) {
            if (failures[c].empty()) failures[c] = what;
          };
          auto client_or = Client::Connect(ts->address());
          if (!client_or.ok()) return fail(client_or.status().ToString());
          std::unique_ptr<Client> client = std::move(client_or).MoveValue();
          // Two passes: the second hits the daemon's warm cache (when
          // enabled) and must still be byte-identical.
          for (int pass = 0; pass < 2; ++pass) {
            for (size_t i = 0; i < compare_reqs.size(); ++i) {
              auto reply = client->Compare(compare_reqs[i]);
              if (!reply.ok()) return fail(reply.status().ToString());
              if (!reply->ok()) return fail(reply->ErrorText());
              if (reply->body != compare_expected[i]) {
                return fail("compare bytes diverged");
              }
            }
            auto pairs_reply = client->AllPairs(AllPairsRequest{0, 0, 30});
            if (!pairs_reply.ok()) {
              return fail(pairs_reply.status().ToString());
            }
            if (pairs_reply->body != pairs_expected) {
              return fail("all-pairs bytes diverged");
            }
            GiRequest gi_req;
            gi_req.top_influence = 5;
            auto gi_reply = client->Gi(gi_req);
            if (!gi_reply.ok()) return fail(gi_reply.status().ToString());
            if (gi_reply->body != gi_expected) {
              return fail("gi bytes diverged");
            }
            SessionRequest open;
            open.verb = SessionVerb::kOpen;
            open.attribute = attr0;
            auto open_reply = client->Session(open);
            if (!open_reply.ok()) {
              return fail(open_reply.status().ToString());
            }
            if (open_reply->body != path_expected) {
              return fail("session path diverged");
            }
            auto render_reply = client->Render(RenderRequest{});
            if (!render_reply.ok()) {
              return fail(render_reply.status().ToString());
            }
            if (render_reply->body != render_expected) {
              return fail("render bytes diverged");
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], "")
            << "client " << c << " (mmap=" << use_mmap
            << " cache=" << cached << ")";
      }
      ts->Stop();
      EXPECT_EQ(ts->stats().protocol_errors, 0);
      EXPECT_EQ(ts->stats().responses_error, 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Protocol robustness against a live daemon (acceptance criterion)
// ---------------------------------------------------------------------------

TEST(ServerRobustness, MalformedFramesGetErrorsOrCloseNeverCrash) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_robust.opmc");
  options.listen = SocketAddr("srv_robust.sock");
  options.max_request_bytes = 4096;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  // A long-lived healthy connection that must stay unaffected throughout.
  ASSERT_OK_AND_ASSIGN(auto healthy, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply ok0, healthy->Ping());
  EXPECT_TRUE(ok0.ok());

  // Bit-flipped payload: CRC mismatch => kBadRequest, then the server
  // closes (the stream cannot be resynced).
  {
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address(), 5000));
    std::string frame = EncodeFrame(1, EncodeRequest(Op::kPing, ""));
    frame.back() = static_cast<char>(frame.back() ^ 0x01);
    ASSERT_OK(client->SendRaw(frame));
    ASSERT_OK_AND_ASSIGN(Reply reply, client->ReadReply());
    EXPECT_EQ(reply.status, RespStatus::kBadRequest);
    EXPECT_FALSE(client->ReadReply().ok());  // closed after the error
  }

  // Oversized declared length: rejected from the header alone.
  {
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address(), 5000));
    ASSERT_OK(client->SendRaw(EncodeFrame(2, std::string(8192, 'x'))));
    ASSERT_OK_AND_ASSIGN(Reply reply, client->ReadReply());
    EXPECT_EQ(reply.status, RespStatus::kBadRequest);
    EXPECT_EQ(reply.request_id, 2u);  // id echoed from the readable header
    EXPECT_FALSE(client->ReadReply().ok());
  }

  // Truncated frame then disconnect: the server just sweeps the
  // connection; nothing to answer.
  {
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address(), 5000));
    const std::string frame = EncodeFrame(3, EncodeRequest(Op::kPing, ""));
    ASSERT_OK(client->SendRaw(frame.substr(0, frame.size() - 3)));
  }

  // Valid frame, unknown op byte / empty payload: clean kBadRequest, the
  // connection survives (framing was intact).
  {
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address(), 5000));
    ASSERT_OK(client->SendRaw(EncodeFrame(4, std::string(1, '\xee'))));
    ASSERT_OK_AND_ASSIGN(Reply unknown_op, client->ReadReply());
    EXPECT_EQ(unknown_op.status, RespStatus::kBadRequest);
    ASSERT_OK(client->SendRaw(EncodeFrame(5, "")));
    ASSERT_OK_AND_ASSIGN(Reply empty, client->ReadReply());
    EXPECT_EQ(empty.status, RespStatus::kBadRequest);
    // Well-formed frame with a corrupt body: error, connection survives.
    ASSERT_OK(client->SendRaw(
        EncodeFrame(6, EncodeRequest(Op::kCompare, "short"))));
    ASSERT_OK_AND_ASSIGN(Reply bad_body, client->ReadReply());
    EXPECT_EQ(bad_body.status, RespStatus::kBadRequest);
    ASSERT_OK(client->SendRaw(EncodeFrame(7, EncodeRequest(Op::kPing, ""))));
    ASSERT_OK_AND_ASSIGN(Reply still_alive, client->ReadReply());
    EXPECT_TRUE(still_alive.ok());
  }

  // Deterministic garbage fuzzing: every outcome must be an error reply,
  // a clean close, or a read timeout (plausible frame prefix) — and the
  // healthy connection keeps working after every round.
  Rng rng(0xf00dcafe);
  for (int round = 0; round < 30; ++round) {
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address(), 200));
    const size_t len = 1 + rng.Next() % 64;
    std::string garbage(len, '\0');
    for (char& ch : garbage) ch = static_cast<char>(rng.Next());
    ASSERT_OK(client->SendRaw(garbage));
    (void)client->ReadReply();  // error reply, close, or timeout — all fine
    ASSERT_OK_AND_ASSIGN(Reply alive, healthy->Ping());
    ASSERT_TRUE(alive.ok()) << "healthy connection broken in round " << round;
  }

  ASSERT_OK_AND_ASSIGN(Reply final_ping, healthy->Ping());
  EXPECT_TRUE(final_ping.ok());
  ts->Stop();
  EXPECT_GT(ts->stats().protocol_errors, 0);
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServerAdmission, PipelineBeyondPendingCapShedsWithRetryLater) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_shed.opmc");
  options.listen = SocketAddr("srv_shed.sock");
  options.max_pending_per_connection = 1;
  options.workers = 1;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  // Fire 20 pipelined GI requests in one burst without reading replies:
  // one executes, one queues, the overflow is shed with RETRY_LATER —
  // never silently dropped, never unboundedly queued.
  constexpr int kBurst = 20;
  GiRequest gi;
  gi.top_influence = 5;
  std::string burst;
  for (int i = 1; i <= kBurst; ++i) {
    burst += EncodeFrame(static_cast<uint64_t>(i),
                         EncodeRequest(Op::kGi, server::EncodeGiRequest(gi)));
  }
  ASSERT_OK(client->SendRaw(burst));

  std::map<uint64_t, RespStatus> replies;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_OK_AND_ASSIGN(Reply reply, client->ReadReply());
    EXPECT_TRUE(replies.emplace(reply.request_id, reply.status).second)
        << "duplicate response id " << reply.request_id;
  }
  int ok = 0;
  int shed = 0;
  for (const auto& [id, status] : replies) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, static_cast<uint64_t>(kBurst));
    if (status == RespStatus::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(status, RespStatus::kRetryLater);
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(ok, 2);    // the executing and queued requests completed
  EXPECT_GE(shed, 1);  // the burst overflowed the 1-deep pipeline

  // The connection is fully usable after shedding.
  ASSERT_OK_AND_ASSIGN(Reply after, client->Ping());
  EXPECT_TRUE(after.ok());
  ts->Stop();
  EXPECT_EQ(ts->stats().shed_retry_later, shed);
}

// ---------------------------------------------------------------------------
// Hot reload
// ---------------------------------------------------------------------------

TEST(ServerReload, SwapsStoreResetsSessionsAndSurvivesBadPaths) {
  const std::string cubes = WriteCubes("srv_reload.opmc");
  server::ServerOptions options;
  options.cubes_path = cubes;
  options.listen = SocketAddr("srv_reload.sock");
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply schema_before, client->Call(Op::kSchema));
  ASSERT_OK_AND_ASSIGN(server::SchemaInfo info_before,
                       server::DecodeSchemaInfo(schema_before.body));
  EXPECT_EQ(info_before.store_generation, 1u);

  SessionRequest open;
  open.verb = SessionVerb::kOpen;
  open.attribute = info_before.attributes[0].name;
  ASSERT_OK_AND_ASSIGN(Reply opened, client->Session(open));
  ASSERT_TRUE(opened.ok()) << opened.ErrorText();
  ASSERT_OK_AND_ASSIGN(Reply rendered, client->Render(RenderRequest{}));
  ASSERT_TRUE(rendered.ok()) << rendered.ErrorText();

  CompareRequest cmp;
  cmp.attribute = 0;
  cmp.value_a = 0;
  cmp.value_b = 1;
  cmp.target_class = 0;
  ASSERT_OK_AND_ASSIGN(Reply compare_before, client->Compare(cmp));
  ASSERT_TRUE(compare_before.ok());

  // Reload the same file: new generation, sessions dropped, results
  // unchanged (same data).
  ASSERT_OK_AND_ASSIGN(Reply reloaded, client->Reload(ReloadRequest{}));
  ASSERT_TRUE(reloaded.ok()) << reloaded.ErrorText();
  ASSERT_OK_AND_ASSIGN(server::ReloadInfo reload_info,
                       server::DecodeReloadInfo(reloaded.body));
  EXPECT_EQ(reload_info.store_generation, 2u);
  EXPECT_EQ(reload_info.num_records, 3000);

  ASSERT_OK_AND_ASSIGN(Reply render_after, client->Render(RenderRequest{}));
  EXPECT_EQ(render_after.status, RespStatus::kBadRequest)
      << "session must not survive a reload";
  ASSERT_OK_AND_ASSIGN(Reply compare_after, client->Compare(cmp));
  ASSERT_TRUE(compare_after.ok());
  EXPECT_EQ(compare_after.body, compare_before.body);

  // A reload pointing at a missing file fails loudly and changes nothing.
  ReloadRequest bad;
  bad.path = ::testing::TempDir() + "/no_such_file.opmc";
  ASSERT_OK_AND_ASSIGN(Reply failed, client->Reload(bad));
  EXPECT_FALSE(failed.ok());
  ASSERT_OK_AND_ASSIGN(Reply schema_after, client->Call(Op::kSchema));
  ASSERT_OK_AND_ASSIGN(server::SchemaInfo info_after,
                       server::DecodeSchemaInfo(schema_after.body));
  EXPECT_EQ(info_after.store_generation, 2u);
  EXPECT_EQ(info_after.num_records, 3000);

  ts->Stop();
  EXPECT_EQ(ts->stats().reloads, 1);
  EXPECT_EQ(ts->stats().reload_failures, 1);
}

// ---------------------------------------------------------------------------
// Lifecycle: mid-request disconnect and graceful drain
// ---------------------------------------------------------------------------

TEST(ServerLifecycle, DisconnectDuringExecutionAndDrainAreClean) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_life.opmc");
  options.listen = SocketAddr("srv_life.sock");
  options.workers = 1;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  // Fire a request and vanish without reading the reply: the worker's
  // result has no peer to go to; the daemon must shrug it off.
  for (int i = 0; i < 5; ++i) {
    ASSERT_OK_AND_ASSIGN(auto ghost, Client::Connect(ts->address()));
    GiRequest gi;
    gi.top_influence = 5;
    ASSERT_OK(ghost->SendRaw(EncodeFrame(
        1, EncodeRequest(Op::kGi, server::EncodeGiRequest(gi)))));
    // ghost goes out of scope: fd closed with the request in flight
  }

  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply ping, client->Ping());
  EXPECT_TRUE(ping.ok());

  // Stop() drains: Serve() must return OK (asserted in the helper) with
  // every in-flight request finished.
  ts->Stop();
  EXPECT_GE(ts->stats().requests, 6);
}

// ---------------------------------------------------------------------------
// Multi-loop sharding (acceptance criterion: byte-identical for any
// --loops, over both transports)
// ---------------------------------------------------------------------------

TEST(ServerMultiLoop, ByteIdenticalAcrossLoopCountsAndTransports) {
  const std::string cubes = WriteCubes("srv_loops.opmc");

  CubeLoadOptions eager;
  eager.use_mmap = false;
  ASSERT_OK_AND_ASSIGN(CubeStore store,
                       CubeStore::LoadFromFile(cubes, nullptr, eager));
  QueryEngine engine(&store, /*cache_bytes=*/0);
  std::vector<CompareRequest> compare_reqs;
  std::vector<std::string> compare_expected;
  for (int attr = 0; attr < 3; ++attr) {
    CompareRequest cmp;
    cmp.attribute = attr;
    cmp.value_a = 0;
    cmp.value_b = 1;
    cmp.target_class = 0;
    compare_reqs.push_back(cmp);
    ComparisonSpec spec;
    spec.attribute = cmp.attribute;
    spec.value_a = cmp.value_a;
    spec.value_b = cmp.value_b;
    spec.target_class = cmp.target_class;
    spec.min_population = cmp.min_population;
    ASSERT_OK_AND_ASSIGN(auto result, engine.Compare(spec));
    compare_expected.push_back(server::EncodeComparisonResult(*result));
  }
  GiOptions gi_options;
  gi_options.top_influence = 5;
  ASSERT_OK_AND_ASSIGN(auto gi, engine.Gi(gi_options));
  const std::string gi_expected = server::EncodeGeneralImpressions(*gi);

  int config = 0;
  for (const int loops : {2, 3}) {
    for (const bool tcp : {false, true}) {
      server::ServerOptions options;
      options.cubes_path = cubes;
      options.listen =
          tcp ? std::string("127.0.0.1:0")
              : SocketAddr("srv_loops_" + std::to_string(config) + ".sock");
      ++config;
      options.loops = loops;
      options.workers = 2;
      auto ts = TestServer::Start(options);
      ASSERT_NE(ts, nullptr);
      EXPECT_EQ(ts->server()->loops(), loops);
      // TCP shards the listener per loop via SO_REUSEPORT (this suite
      // runs on Linux); unix sockets accept on loop 0 and hand off.
      EXPECT_EQ(ts->server()->sharded_listeners(), tcp);

      // More clients than loops, so in hand-off mode every loop serves
      // at least one connection.
      constexpr int kClients = 4;
      std::vector<std::string> failures(kClients);
      std::vector<std::thread> threads;
      for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
          auto fail = [&](const std::string& what) {
            if (failures[c].empty()) failures[c] = what;
          };
          auto client_or = Client::Connect(ts->address());
          if (!client_or.ok()) return fail(client_or.status().ToString());
          std::unique_ptr<Client> client = std::move(client_or).MoveValue();
          for (int pass = 0; pass < 2; ++pass) {
            for (size_t i = 0; i < compare_reqs.size(); ++i) {
              auto reply = client->Compare(compare_reqs[i]);
              if (!reply.ok()) return fail(reply.status().ToString());
              if (!reply->ok()) return fail(reply->ErrorText());
              if (reply->body != compare_expected[i]) {
                return fail("compare bytes diverged");
              }
            }
            GiRequest gi_req;
            gi_req.top_influence = 5;
            auto gi_reply = client->Gi(gi_req);
            if (!gi_reply.ok()) return fail(gi_reply.status().ToString());
            if (gi_reply->body != gi_expected) {
              return fail("gi bytes diverged");
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_EQ(failures[c], "")
            << "client " << c << " (loops=" << loops << " tcp=" << tcp << ")";
      }
      ts->Stop();
      const server::ServerStats stats = ts->stats();
      EXPECT_EQ(stats.protocol_errors, 0);
      EXPECT_EQ(stats.responses_error, 0);
      EXPECT_GE(stats.connections_accepted, kClients);
    }
  }
}

// ---------------------------------------------------------------------------
// Pipelined execution: responses in request order under fuzzed op mixes
// ---------------------------------------------------------------------------

TEST(ServerPipeline, FuzzedStatelessBurstsReplyInExactRequestOrder) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_pipe.opmc");
  options.listen = SocketAddr("srv_pipe.sock");
  options.loops = 2;
  options.workers = 4;
  options.max_pending_per_connection = 16;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  // Reference bodies, fetched once over a plain blocking connection;
  // every op here is deterministic (schema embeds the fixed generation).
  CompareRequest cmp;
  cmp.attribute = 0;
  cmp.value_a = 0;
  cmp.value_b = 1;
  cmp.target_class = 0;
  GiRequest gi;
  gi.top_influence = 5;
  std::map<uint8_t, std::string> payloads;
  payloads[static_cast<uint8_t>(Op::kPing)] = EncodeRequest(Op::kPing, "");
  payloads[static_cast<uint8_t>(Op::kSchema)] = EncodeRequest(Op::kSchema, "");
  payloads[static_cast<uint8_t>(Op::kCompare)] =
      EncodeRequest(Op::kCompare, server::EncodeCompareRequest(cmp));
  payloads[static_cast<uint8_t>(Op::kGi)] =
      EncodeRequest(Op::kGi, server::EncodeGiRequest(gi));
  std::map<uint8_t, std::string> expected;
  {
    ASSERT_OK_AND_ASSIGN(auto probe, Client::Connect(ts->address()));
    for (const auto& [op, payload] : payloads) {
      ASSERT_OK(probe->SendRaw(EncodeFrame(1000 + op, payload)));
      ASSERT_OK_AND_ASSIGN(Reply reply, probe->ReadReply());
      ASSERT_TRUE(reply.ok()) << reply.ErrorText();
      expected[op] = reply.body;
    }
  }

  // Fuzzed bursts: 12 pipelined frames of a random op mix, fired without
  // reading. With workers=4 the stateless ops execute concurrently and
  // finish out of order; the wire must still deliver request order with
  // the exact blocking-mode bytes.
  const std::vector<uint8_t> ops = {
      static_cast<uint8_t>(Op::kPing), static_cast<uint8_t>(Op::kSchema),
      static_cast<uint8_t>(Op::kCompare), static_cast<uint8_t>(Op::kGi)};
  Rng rng(0x9199e11fe5eedull);
  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  for (int round = 0; round < 8; ++round) {
    constexpr int kBurst = 12;
    std::string burst;
    std::vector<uint64_t> sent_ids;
    std::vector<uint8_t> sent_ops;
    for (int i = 0; i < kBurst; ++i) {
      const uint8_t op = ops[rng.Next() % ops.size()];
      const uint64_t id = static_cast<uint64_t>(round) * 100 + i + 1;
      burst += EncodeFrame(id, payloads[op]);
      sent_ids.push_back(id);
      sent_ops.push_back(op);
    }
    ASSERT_OK(client->SendRaw(burst));
    for (int i = 0; i < kBurst; ++i) {
      ASSERT_OK_AND_ASSIGN(Reply reply, client->ReadReply());
      ASSERT_EQ(reply.request_id, sent_ids[static_cast<size_t>(i)])
          << "round " << round << ": response " << i
          << " out of request order";
      ASSERT_TRUE(reply.ok()) << reply.ErrorText();
      EXPECT_EQ(reply.body, expected[sent_ops[static_cast<size_t>(i)]])
          << "round " << round << ": body diverged at position " << i;
    }
  }
  ts->Stop();
  EXPECT_EQ(ts->stats().shed_retry_later, 0);
  EXPECT_EQ(ts->stats().responses_error, 0);
}

// ---------------------------------------------------------------------------
// Reload racing queries across loops
// ---------------------------------------------------------------------------

TEST(ServerReloadRace, ConcurrentReloadsAndComparesStayConsistent) {
  const std::string cubes = WriteCubes("srv_reload_race.opmc");
  server::ServerOptions options;
  options.cubes_path = cubes;
  options.listen = SocketAddr("srv_reload_race.sock");
  options.loops = 3;
  options.workers = 4;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  CompareRequest cmp;
  cmp.attribute = 0;
  cmp.value_a = 0;
  cmp.value_b = 1;
  cmp.target_class = 0;
  std::string compare_expected;
  {
    ASSERT_OK_AND_ASSIGN(auto probe, Client::Connect(ts->address()));
    ASSERT_OK_AND_ASSIGN(Reply reply, probe->Compare(cmp));
    ASSERT_TRUE(reply.ok()) << reply.ErrorText();
    compare_expected = reply.body;
  }

  // Blocking compare hammers never pipeline past depth 1, so the reload
  // barrier may park them but must never shed them — every compare comes
  // back OK with the same bytes (reloads re-read the same file).
  std::atomic<int> successful_reloads{0};
  constexpr int kComparers = 3;
  constexpr int kReloaders = 2;
  std::vector<std::string> failures(kComparers + kReloaders);
  std::vector<std::thread> threads;
  for (int c = 0; c < kComparers; ++c) {
    threads.emplace_back([&, c] {
      auto fail = [&](const std::string& what) {
        if (failures[c].empty()) failures[c] = what;
      };
      auto client_or = Client::Connect(ts->address());
      if (!client_or.ok()) return fail(client_or.status().ToString());
      std::unique_ptr<Client> client = std::move(client_or).MoveValue();
      for (int i = 0; i < 40; ++i) {
        auto reply = client->Compare(cmp);
        if (!reply.ok()) return fail(reply.status().ToString());
        if (!reply->ok()) return fail(reply->ErrorText());
        if (reply->body != compare_expected) {
          return fail("compare bytes diverged during reload race");
        }
      }
    });
  }
  for (int r = 0; r < kReloaders; ++r) {
    threads.emplace_back([&, r] {
      auto fail = [&](const std::string& what) {
        if (failures[kComparers + r].empty()) {
          failures[kComparers + r] = what;
        }
      };
      auto client_or = Client::Connect(ts->address());
      if (!client_or.ok()) return fail(client_or.status().ToString());
      std::unique_ptr<Client> client = std::move(client_or).MoveValue();
      for (int i = 0; i < 5; ++i) {
        auto reply = client->Reload(ReloadRequest{});
        if (!reply.ok()) return fail(reply.status().ToString());
        if (reply->ok()) {
          successful_reloads.fetch_add(1);
        } else if (reply->status != RespStatus::kRetryLater) {
          // Losing the claim race sheds with RETRY_LATER; anything else
          // is a real failure.
          return fail(reply->ErrorText());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 0; i < failures.size(); ++i) {
    EXPECT_EQ(failures[i], "") << "thread " << i;
  }

  EXPECT_GE(successful_reloads.load(), 1);
  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  ASSERT_OK_AND_ASSIGN(Reply schema_reply, client->Call(Op::kSchema));
  ASSERT_TRUE(schema_reply.ok()) << schema_reply.ErrorText();
  ASSERT_OK_AND_ASSIGN(server::SchemaInfo schema,
                       server::DecodeSchemaInfo(schema_reply.body));
  EXPECT_EQ(schema.store_generation,
            1u + static_cast<uint64_t>(successful_reloads.load()));
  ts->Stop();
  EXPECT_EQ(ts->stats().reloads, successful_reloads.load());
  EXPECT_EQ(ts->stats().reload_failures, 0);
}

// ---------------------------------------------------------------------------
// Drain racing live traffic across loops
// ---------------------------------------------------------------------------

TEST(ServerDrainRace, ShutdownWithTrafficOnEveryLoopDrainsCleanly) {
  server::ServerOptions options;
  options.cubes_path = WriteCubes("srv_drain_race.opmc");
  options.listen = SocketAddr("srv_drain_race.sock");
  options.loops = 3;
  options.workers = 2;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);

  // Ping spammers on every loop. Each call must end as OK, a coded
  // SHUTTING_DOWN/RETRY_LATER response, or a clean connection error once
  // the drain closed the socket — never a hang or a garbled frame.
  constexpr int kClients = 4;
  std::vector<std::string> failures(kClients);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client_or = Client::Connect(ts->address());
      if (!client_or.ok()) return;  // raced the drain before connecting
      std::unique_ptr<Client> client = std::move(client_or).MoveValue();
      while (!stop.load()) {
        auto reply = client->Ping();
        if (!reply.ok()) return;  // drain closed the connection
        if (reply->ok() || reply->status == RespStatus::kShuttingDown ||
            reply->status == RespStatus::kRetryLater) {
          continue;
        }
        if (failures[c].empty()) failures[c] = reply->ErrorText();
        return;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Stop() asserts Serve() returned OK — the drain must terminate with
  // requests still arriving on all three loops.
  ts->Stop();
  stop.store(true);
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], "") << "client " << c;
  }
  EXPECT_GE(ts->stats().requests, 1);
}

// ---------------------------------------------------------------------------
// Unix peer-credential auth
// ---------------------------------------------------------------------------

TEST(ServerAuth, PeerCredentialAllowListAdmitsAndRejects) {
  const std::string cubes = WriteCubes("srv_auth.opmc");

  // Our own uid on the allow list: everything works.
  {
    server::ServerOptions options;
    options.cubes_path = cubes;
    options.listen = SocketAddr("srv_auth_ok.sock");
    options.allow_uids = {static_cast<uint32_t>(::geteuid())};
    auto ts = TestServer::Start(options);
    ASSERT_NE(ts, nullptr);
    ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
    ASSERT_OK_AND_ASSIGN(Reply ping, client->Ping());
    EXPECT_TRUE(ping.ok());
    ts->Stop();
    EXPECT_EQ(ts->stats().auth_rejected, 0);
  }

  // An allow list without our uid: the daemon answers one status-coded
  // reject frame (request id 0 — no request was read) and closes.
  {
    server::ServerOptions options;
    options.cubes_path = cubes;
    options.listen = SocketAddr("srv_auth_no.sock");
    options.allow_uids = {static_cast<uint32_t>(::geteuid()) + 1};
    options.loops = 2;
    auto ts = TestServer::Start(options);
    ASSERT_NE(ts, nullptr);
    ASSERT_OK_AND_ASSIGN(auto denied, Client::Connect(ts->address(), 5000));
    auto rejected = denied->ReadReply();
    if (rejected.ok()) {
      EXPECT_EQ(rejected->status, RespStatus::kBadRequest);
      EXPECT_EQ(rejected->request_id, 0u);
    }
    // Either way the connection is dead: no request ever succeeds.
    auto ping = denied->Ping();
    EXPECT_TRUE(!ping.ok() || !ping->ok());
    ts->Stop();
    EXPECT_GE(ts->stats().auth_rejected, 1);
    EXPECT_EQ(ts->stats().requests, 0);
  }

  // TCP carries no peer credentials; the combination is a startup error,
  // not a silently unenforced option.
  {
    server::ServerOptions options;
    options.cubes_path = cubes;
    options.listen = "127.0.0.1:0";
    options.allow_uids = {static_cast<uint32_t>(::geteuid())};
    auto started = server::Server::Start(options);
    EXPECT_FALSE(started.ok());
  }
}

// ---------------------------------------------------------------------------
// Ingest -> live daemon reload drill (publish hook sends RELOAD)
// ---------------------------------------------------------------------------

TEST(ServerIngestNotify, PublishHookReloadsLiveDaemonAfterCompaction) {
  const Schema schema = test::MakeSchema({{"region", {"north", "south"}},
                                          {"tier", {"basic", "plus"}},
                                          {"outcome", {"neg", "pos"}}});
  const std::string dir = ::testing::TempDir() + "/srv_ingest_notify";
  // Make the directory reusable across test reruns (Create refuses an
  // existing MANIFEST).
  (void)Env::Default()->DeleteFile(dir + "/MANIFEST");
  for (uint64_t id = 1; id < 8; ++id) {
    (void)Env::Default()->DeleteFile(dir + "/" + WalSegmentFileName(id));
    (void)Env::Default()->DeleteFile(dir + "/" + WalOpenFileName(id));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "cubes-%06llu.opmc",
                  static_cast<unsigned long long>(id));
    (void)Env::Default()->DeleteFile(dir + "/" + buf);
  }
  IngestOptions ingest_options;
  ingest_options.wal.sync_every_append = true;
  ASSERT_OK_AND_ASSIGN(
      auto ing, Ingester::Create(Env::Default(), dir, schema, ingest_options));

  // Serve the generation-1 (empty) container the ingester just wrote.
  server::ServerOptions options;
  options.cubes_path = dir + "/cubes-000001.opmc";
  options.listen = SocketAddr("srv_ingest_notify.sock");
  options.loops = 2;
  auto ts = TestServer::Start(options);
  ASSERT_NE(ts, nullptr);
  ASSERT_OK_AND_ASSIGN(auto client, Client::Connect(ts->address()));
  {
    ASSERT_OK_AND_ASSIGN(Reply schema_reply, client->Call(Op::kSchema));
    ASSERT_TRUE(schema_reply.ok()) << schema_reply.ErrorText();
    ASSERT_OK_AND_ASSIGN(server::SchemaInfo info,
                         server::DecodeSchemaInfo(schema_reply.body));
    EXPECT_EQ(info.num_records, 0);
    EXPECT_EQ(info.store_generation, 1u);
  }

  // The drill: publishing a compaction pushes a RELOAD naming the fresh
  // container into the running daemon.
  const std::string daemon_addr = ts->address();
  ing->set_publish_hook(
      [&daemon_addr](const CubeStore*, const std::string& cube_path) {
        OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<Client> notify,
                               Client::Connect(daemon_addr, 10000));
        server::ReloadRequest req;
        req.path = cube_path;
        OPMAP_ASSIGN_OR_RETURN(Reply reply, notify->Reload(req));
        return reply.ToStatus();
      });

  Dataset batch(schema);
  ValueCode codes[3];
  for (uint64_t r = 0; r < 5; ++r) {
    codes[0] = static_cast<ValueCode>(r % 2);
    codes[1] = static_cast<ValueCode>((r / 2) % 2);
    codes[2] = static_cast<ValueCode>(r % 2);
    batch.AppendRowUnchecked(codes);
  }
  ASSERT_OK_AND_ASSIGN(const uint64_t seq, ing->AppendBatch(batch));
  EXPECT_EQ(seq, 1u);
  ASSERT_OK(ing->Compact());
  EXPECT_EQ(ing->GetStats().publish_failures, 0)
      << ing->GetStats().last_publish_error;

  // The daemon now serves the compacted data without having restarted.
  ASSERT_OK_AND_ASSIGN(Reply schema_reply, client->Call(Op::kSchema));
  ASSERT_TRUE(schema_reply.ok()) << schema_reply.ErrorText();
  ASSERT_OK_AND_ASSIGN(server::SchemaInfo info,
                       server::DecodeSchemaInfo(schema_reply.body));
  EXPECT_EQ(info.num_records, 5);
  EXPECT_EQ(info.store_generation, 2u);
  ASSERT_OK(ing->Close());
  ts->Stop();
  EXPECT_EQ(ts->stats().reloads, 1);
}

}  // namespace
}  // namespace opmap
