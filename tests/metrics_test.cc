#include "opmap/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace opmap {
namespace {

TEST(CounterTest, ExactTotalsUnderConcurrentIncrements) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), int64_t{kThreads} * kIncrements);
}

TEST(CounterTest, DeltaIncrements) {
  Counter counter;
  counter.Increment(5);
  counter.Increment(37);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, SetMaxIsHighWaterMark) {
  Gauge gauge;
  gauge.SetMax(4);
  gauge.SetMax(2);
  EXPECT_EQ(gauge.Value(), 4);
  gauge.SetMax(9);
  EXPECT_EQ(gauge.Value(), 9);
  gauge.Set(1);
  EXPECT_EQ(gauge.Value(), 1);
}

TEST(HistogramTest, ExactCountAndSumUnderConcurrentRecords) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kRecords = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kRecords; ++i) {
        histogram.Record(t * kRecords + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const int64_t n = int64_t{kThreads} * kRecords;
  EXPECT_EQ(histogram.Count(), n);
  EXPECT_EQ(histogram.Sum(), n * (n - 1) / 2);
  EXPECT_EQ(histogram.Max(), n - 1);
}

// The log2-bucket estimate must land in the same bucket as the true
// nearest-rank value, bounding the relative error by 2x. Cross-check
// against a sorted-vector oracle on a deterministic skewed sample.
TEST(HistogramTest, PercentilesTrackSortedVectorOracle) {
  Histogram histogram;
  std::vector<int64_t> values;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // Skewed latency-like distribution: mostly small, a heavy tail.
    const int64_t v = static_cast<int64_t>((state >> 33) % 1000) +
                      ((i % 97 == 0) ? 100000 : 0);
    values.push_back(v);
    histogram.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = static_cast<size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(values.size()))));
    const int64_t truth = values[rank - 1];
    const double estimate = histogram.Percentile(p);
    if (truth == 0) {
      EXPECT_EQ(estimate, 0.0) << "p" << p;
    } else {
      EXPECT_GE(estimate, static_cast<double>(truth) / 2) << "p" << p;
      EXPECT_LE(estimate, static_cast<double>(truth) * 2) << "p" << p;
    }
  }
}

TEST(HistogramTest, EmptyAndEdgeValues) {
  Histogram histogram;
  EXPECT_EQ(histogram.Percentile(50), 0.0);
  histogram.Record(-17);  // clamps to 0
  histogram.Record(0);
  EXPECT_EQ(histogram.Count(), 2);
  EXPECT_EQ(histogram.Percentile(99), 0.0);
}

TEST(HistogramTest, EmptyPercentileIsZeroAtEveryP) {
  // Regression lock: a histogram that never recorded must report 0 for
  // every percentile — not the first bucket bound — so latency tables for
  // idle paths read as silent, not as "1us p99".
  Histogram histogram;
  for (const double p : {0.0, 1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(histogram.Percentile(p), 0.0) << "p=" << p;
  }
  EXPECT_EQ(histogram.Count(), 0);
}

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("test.counter");
  Counter* b = registry.counter("test.counter");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->Value(), 3);
  EXPECT_NE(static_cast<void*>(registry.gauge("test.counter")),
            static_cast<void*>(a));  // separate namespace per type
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndBumpingIsExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Every thread resolves the same names; get-or-create must never
      // hand out distinct objects for one name.
      Counter* c = registry.counter("test.shared");
      Histogram* h = registry.histogram("test.latency");
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("test.shared"),
            int64_t{kThreads} * kIncrements);
  EXPECT_EQ(snapshot.histograms.at("test.latency").count,
            int64_t{kThreads} * kIncrements);
}

TEST(MetricsRegistryTest, GlobalPreRegistersQueryHistograms) {
  const MetricsSnapshot snapshot = MetricsRegistry::Global()->Snapshot();
  for (const char* name :
       {"query.compare_us", "query.gi_us", "query.render_us",
        "query.mine_us"}) {
    EXPECT_TRUE(snapshot.histograms.count(name) > 0) << name;
  }
}

TEST(MetricsFormatTest, TableElidesZeroCountersAndPrintsHistograms) {
  MetricsRegistry registry;
  registry.counter("test.zero");
  registry.counter("test.hot")->Increment(7);
  registry.histogram("test.lat_us")->Record(100);
  const std::string table = FormatMetricsTable(registry.Snapshot());
  EXPECT_EQ(table.find("test.zero"), std::string::npos);
  EXPECT_NE(table.find("test.hot"), std::string::npos);
  EXPECT_NE(table.find("test.lat_us"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
}

TEST(MetricsFormatTest, JsonIsFlatAndBalanced) {
  MetricsRegistry registry;
  registry.counter("test.count")->Increment(3);
  registry.gauge("test.level")->Set(5);
  registry.histogram("test.lat_us")->Record(256);
  const std::string json = FormatMetricsJson(registry.Snapshot());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"test.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.level\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.lat_us.count\": 1"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MetricsFormatTest, SkipZeroHistogramsElidesPreRegisteredEmpties) {
  MetricsRegistry registry;
  registry.histogram("test.idle_us");  // pre-registered, never recorded
  registry.histogram("test.busy_us")->Record(512);
  registry.counter("test.hot")->Increment(1);

  // Default: every registered histogram appears, even with count 0.
  const std::string full_json = FormatMetricsJson(registry.Snapshot());
  EXPECT_NE(full_json.find("test.idle_us.count"), std::string::npos);

  MetricsFormatOptions slim;
  slim.skip_zero_histograms = true;
  const std::string json = FormatMetricsJson(registry.Snapshot(), slim);
  EXPECT_EQ(json.find("test.idle_us"), std::string::npos);
  EXPECT_NE(json.find("\"test.busy_us.count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"test.hot\": 1"), std::string::npos);

  const std::string table = FormatMetricsTable(registry.Snapshot(), slim);
  EXPECT_EQ(table.find("test.idle_us"), std::string::npos);
  EXPECT_NE(table.find("test.busy_us"), std::string::npos);
}

}  // namespace
}  // namespace opmap
