#include "gtest/gtest.h"
#include "opmap/baselines/cba.h"
#include "opmap/baselines/cube_exceptions.h"
#include "opmap/baselines/decision_tree.h"
#include "opmap/baselines/evaluation.h"
#include "opmap/baselines/naive_bayes.h"
#include "opmap/baselines/rule_induction.h"
#include "opmap/baselines/rule_ranking.h"
#include "opmap/car/miner.h"
#include "opmap/data/call_log.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

Schema XorSchema() {
  return MakeSchema({{"A", {"a0", "a1"}},
                     {"B", {"b0", "b1"}},
                     {"Noise", {"n0", "n1", "n2"}},
                     {"Y", {"neg", "pos"}}});
}

// Class = A XOR B, noise independent: needs depth-2 splits.
Dataset XorDataset() {
  Dataset d(XorSchema());
  for (ValueCode a = 0; a < 2; ++a) {
    for (ValueCode b = 0; b < 2; ++b) {
      for (ValueCode n = 0; n < 3; ++n) {
        const ValueCode y = a ^ b;
        AppendRows(&d, {a, b, n, y}, 50);
      }
    }
  }
  return d;
}

// Class = A AND B: a greedy tree needs two levels (A has positive gain
// because a1 is 50% positive while a0 is pure negative).
Dataset AndDataset() {
  Dataset d(XorSchema());
  for (ValueCode a = 0; a < 2; ++a) {
    for (ValueCode b = 0; b < 2; ++b) {
      for (ValueCode n = 0; n < 3; ++n) {
        const ValueCode y = (a == 1 && b == 1) ? 1 : 0;
        AppendRows(&d, {a, b, n, y}, 50);
      }
    }
  }
  return d;
}

TEST(DecisionTree, LearnsNestedPattern) {
  Dataset d = AndDataset();
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::Train(d));
  ASSERT_OK_AND_ASSIGN(double acc, tree.Evaluate(d));
  EXPECT_DOUBLE_EQ(acc, 1.0);
  EXPECT_EQ(tree.depth(), 2);
  EXPECT_EQ(tree.Predict({1, 1, 0, kNullCode}), 1);
  EXPECT_EQ(tree.Predict({0, 1, 2, kNullCode}), 0);
  EXPECT_EQ(tree.Predict({1, 0, 2, kNullCode}), 0);
}

TEST(DecisionTree, DepthLimitForcesMajorityLeaf) {
  Dataset d = AndDataset();
  DecisionTreeOptions opts;
  opts.max_depth = 0;  // majority class only
  ASSERT_OK_AND_ASSIGN(DecisionTree stump, DecisionTree::Train(d, opts));
  ASSERT_OK_AND_ASSIGN(double acc, stump.Evaluate(d));
  EXPECT_DOUBLE_EQ(acc, 0.75);  // 3 of 4 cells are negative
  EXPECT_EQ(stump.num_leaves(), 1);
}

TEST(DecisionTree, GreedyGainCannotSeeXor) {
  // Both attributes have zero marginal information gain under XOR, so the
  // greedy tree refuses to split — the classic myopia of classifiers the
  // complete rule space does not suffer from.
  Dataset d = XorDataset();
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::Train(d));
  EXPECT_EQ(tree.depth(), 0);
  ASSERT_OK_AND_ASSIGN(double acc, tree.Evaluate(d));
  EXPECT_NEAR(acc, 0.5, 1e-9);
}

// The completeness problem (paper Section III.A): the tree's rule count is
// a tiny fraction of the complete rule space stored in rule cubes.
TEST(DecisionTree, CompletenessProblem) {
  CallLogConfig config;
  config.num_records = 20000;
  config.num_attributes = 12;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  DecisionTreeOptions opts;
  opts.max_depth = 6;
  opts.min_leaf_size = 50;  // standard pruning: no one-off leaves
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::Train(d, opts));
  RuleSet tree_rules = tree.ExtractRules();
  const int64_t complete = CountPossibleRules(d.schema(), 1) +
                           CountPossibleRules(d.schema(), 2);
  EXPECT_LT(static_cast<int64_t>(tree_rules.size()), complete / 10);
}

TEST(DecisionTree, ExtractedRulesHaveConsistentCounts) {
  Dataset d = XorDataset();
  ASSERT_OK_AND_ASSIGN(DecisionTree tree, DecisionTree::Train(d));
  RuleSet rules = tree.ExtractRules();
  ASSERT_FALSE(rules.empty());
  int64_t covered = 0;
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.body_count, r.support_count);
    EXPECT_GT(r.body_count, 0);
    covered += r.body_count;
  }
  // Leaves partition the training data.
  EXPECT_EQ(covered, d.num_rows());
}

TEST(DecisionTree, RejectsContinuousData) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  auto schema = Schema::Make(std::move(attrs), 1);
  ASSERT_TRUE(schema.ok());
  Dataset d(schema.MoveValue());
  EXPECT_FALSE(DecisionTree::Train(d).ok());
}

TEST(RuleInduction, FindsPreciseRule) {
  Dataset d(XorSchema());
  // A=a1 is 95% positive; everything else is negative.
  AppendRows(&d, {1, 0, 0, 1}, 190);
  AppendRows(&d, {1, 0, 1, 0}, 10);
  AppendRows(&d, {0, 1, 0, 0}, 300);
  ASSERT_OK_AND_ASSIGN(RuleSet rules, InduceRules(d));
  bool found = false;
  for (const ClassRule& r : rules.rules()) {
    if (r.class_value == 1 && r.Confidence() >= 0.9) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RuleInduction, CoverageShrinksRuleList) {
  Dataset d = XorDataset();
  RuleInductionOptions opts;
  opts.min_precision = 0.9;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, InduceRules(d, opts));
  // Four XOR cells => at most a handful of rules per class, far below the
  // complete space.
  EXPECT_LE(rules.size(), 10u);
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.Confidence(), 0.9);
  }
}

TEST(RuleInduction, RejectsBadOptions) {
  Dataset d = XorDataset();
  RuleInductionOptions opts;
  opts.max_conditions = 0;
  EXPECT_FALSE(InduceRules(d, opts).ok());
}

TEST(RuleRanking, OrdersByMeasure) {
  Dataset d = XorDataset();
  CarMinerOptions mopts;
  mopts.min_support = 0.01;
  mopts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, mopts));
  ASSERT_OK_AND_ASSIGN(
      auto ranked,
      RankRules(rules, RuleMeasure::kChiSquare, d.ClassCounts(), 10));
  ASSERT_EQ(ranked.size(), 10u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
  }
  // XOR: the top chi-square rules must be the 2-condition cells.
  EXPECT_EQ(ranked[0].rule.conditions.size(), 2u);
}

TEST(RuleRanking, LowSupportFraction) {
  std::vector<RankedRule> ranked(4);
  ranked[0].rule.body_count = 5;
  ranked[1].rule.body_count = 500;
  ranked[2].rule.body_count = 3;
  ranked[3].rule.body_count = 800;
  EXPECT_DOUBLE_EQ(LowSupportFraction(ranked, 1000, 0.01, 4), 0.5);
  EXPECT_DOUBLE_EQ(LowSupportFraction(ranked, 1000, 0.01, 2), 0.5);
  EXPECT_DOUBLE_EQ(LowSupportFraction({}, 1000, 0.01, 4), 0.0);
}

// Top-ranked rules on skewed noisy data are low-support artifacts — the
// paper's argument against plain rule ranking (Section II).
TEST(RuleRanking, TopRulesAreArtifactsOnNoisyData) {
  CallLogConfig config;
  config.num_records = 30000;
  config.num_attributes = 10;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  CarMinerOptions mopts;
  mopts.min_support = 0.0001;
  mopts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, mopts));
  ASSERT_OK_AND_ASSIGN(
      auto ranked,
      RankRules(rules, RuleMeasure::kConfidence, d.ClassCounts(), 20));
  const double low = LowSupportFraction(ranked, d.num_rows(), 0.01, 20);
  EXPECT_GT(low, 0.5);
}

TEST(CrossValidation, StratifiedFoldsAndHonestAccuracy) {
  // A learnable pattern: class = A, with 10% label noise.
  Dataset d(XorSchema());
  Rng noise(3);
  for (int i = 0; i < 1200; ++i) {
    const ValueCode a = static_cast<ValueCode>(i % 2);
    const ValueCode y =
        noise.NextBernoulli(0.1) ? static_cast<ValueCode>(1 - a) : a;
    AppendRows(&d, {a, static_cast<ValueCode>(i % 2),
                    static_cast<ValueCode>(i % 3), y},
               1);
  }
  ClassifierTrainer trainer = [](const Dataset& train) -> Result<Classifier> {
    OPMAP_ASSIGN_OR_RETURN(DecisionTree tree, DecisionTree::Train(train));
    auto shared = std::make_shared<DecisionTree>(std::move(tree));
    return Classifier([shared](const std::vector<ValueCode>& row) {
      return shared->Predict(row);
    });
  };
  Rng rng(9);
  ASSERT_OK_AND_ASSIGN(CrossValidationResult cv,
                       CrossValidate(d, trainer, 5, rng));
  ASSERT_EQ(cv.fold_accuracies.size(), 5u);
  // ~90% achievable; every fold should be near it and above majority.
  EXPECT_GT(cv.mean_accuracy, 0.85);
  EXPECT_LT(cv.mean_accuracy, 0.96);
  EXPECT_GT(cv.mean_accuracy, cv.majority_baseline);
  EXPECT_LT(cv.stddev_accuracy, 0.05);
}

TEST(CrossValidation, Validation) {
  Dataset d = AndDataset();
  ClassifierTrainer trainer = [](const Dataset&) -> Result<Classifier> {
    return Classifier(
        [](const std::vector<ValueCode>&) { return ValueCode{0}; });
  };
  Rng rng(1);
  EXPECT_FALSE(CrossValidate(d, trainer, 1, rng).ok());
  ASSERT_OK_AND_ASSIGN(CrossValidationResult cv,
                       CrossValidate(d, trainer, 4, rng));
  // Constant classifier scores the majority baseline (up to rounding from
  // slightly unequal fold sizes).
  EXPECT_NEAR(cv.mean_accuracy, cv.majority_baseline, 1e-3);
}

TEST(CubeExceptions, FindsPlantedHotCell) {
  Schema schema = XorSchema();
  ASSERT_OK_AND_ASSIGN(RuleCube cube, RuleCube::Make(schema, {0, 1, 3}));
  // Near-independent background plus one hot cell.
  for (ValueCode a = 0; a < 2; ++a) {
    for (ValueCode b = 0; b < 2; ++b) {
      cube.Add({a, b, 0}, 500);
      cube.Add({a, b, 1}, 20);
    }
  }
  cube.Add({1, 1, 1}, 300);
  CountExceptionOptions opts;
  opts.z_threshold = 4.0;
  ASSERT_OK_AND_ASSIGN(auto exceptions, MineCountExceptions(cube, opts));
  ASSERT_FALSE(exceptions.empty());
  EXPECT_EQ(exceptions[0].cell, (std::vector<ValueCode>{1, 1, 1}));
  EXPECT_GT(exceptions[0].residual_z, 4.0);
}

TEST(Cba, LearnsXorThroughTwoConditionRules) {
  // CBA succeeds exactly where the greedy tree fails: the complete
  // 2-condition rule space contains the XOR cells as confident rules.
  Dataset d = XorDataset();
  CbaOptions opts;
  opts.min_support = 0.05;
  opts.min_confidence = 0.6;
  ASSERT_OK_AND_ASSIGN(CbaClassifier cba, CbaClassifier::Train(d, opts));
  ASSERT_OK_AND_ASSIGN(double acc, cba.Evaluate(d));
  EXPECT_DOUBLE_EQ(acc, 1.0);
  EXPECT_EQ(cba.Predict({0, 1, 0, kNullCode}), 1);
  EXPECT_EQ(cba.Predict({1, 1, 2, kNullCode}), 0);
  // The classifier keeps only a handful of covering rules out of the full
  // candidate set — the completeness problem in one number.
  EXPECT_LE(cba.selected_rules().size(), 8u);
  EXPECT_GT(cba.num_candidate_rules(),
            static_cast<int64_t>(cba.selected_rules().size()));
}

TEST(Cba, SelectedRulesFollowTotalOrder) {
  Dataset d = AndDataset();
  ASSERT_OK_AND_ASSIGN(CbaClassifier cba,
                       CbaClassifier::Train(d, CbaOptions{0.05, 0.5, 2}));
  const auto& rules = cba.selected_rules();
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].Confidence(), rules[i].Confidence() - 1e-12);
  }
}

TEST(Cba, DefaultClassCoversUnmatchedRows) {
  Dataset d = AndDataset();
  CbaOptions opts;
  opts.min_support = 0.9;  // nothing qualifies
  opts.min_confidence = 0.99;
  ASSERT_OK_AND_ASSIGN(CbaClassifier cba, CbaClassifier::Train(d, opts));
  EXPECT_TRUE(cba.selected_rules().empty());
  EXPECT_EQ(cba.default_class(), 0);  // majority (75% negative)
  ASSERT_OK_AND_ASSIGN(double acc, cba.Evaluate(d));
  EXPECT_DOUBLE_EQ(acc, 0.75);
}

TEST(Cba, RejectsContinuousData) {
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  auto schema = Schema::Make(std::move(attrs), 1);
  ASSERT_TRUE(schema.ok());
  Dataset d(schema.MoveValue());
  EXPECT_FALSE(CbaClassifier::Train(d).ok());
}

TEST(NaiveBayes, LearnsConditionallyIndependentPattern) {
  Dataset d(XorSchema());
  // Class mostly determined by A, a bit by B; NB handles this well.
  AppendRows(&d, {1, 0, 0, 1}, 180);
  AppendRows(&d, {1, 0, 0, 0}, 20);
  AppendRows(&d, {1, 1, 1, 1}, 190);
  AppendRows(&d, {1, 1, 1, 0}, 10);
  AppendRows(&d, {0, 0, 2, 0}, 190);
  AppendRows(&d, {0, 0, 2, 1}, 10);
  AppendRows(&d, {0, 1, 0, 0}, 180);
  AppendRows(&d, {0, 1, 0, 1}, 20);
  ASSERT_OK_AND_ASSIGN(NaiveBayes nb, NaiveBayes::Train(d));
  ASSERT_OK_AND_ASSIGN(double acc, nb.Evaluate(d));
  EXPECT_GT(acc, 0.9);
  EXPECT_EQ(nb.Predict({1, 0, 0, kNullCode}), 1);
  EXPECT_EQ(nb.Predict({0, 1, 2, kNullCode}), 0);
}

TEST(NaiveBayes, PosteriorSumsToOne) {
  Dataset d = AndDataset();
  ASSERT_OK_AND_ASSIGN(NaiveBayes nb, NaiveBayes::Train(d));
  const auto post = nb.Posterior({1, 1, 0, kNullCode});
  double sum = 0;
  for (double p : post) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NaiveBayes, PriorsAndConditionalsAreSmoothed) {
  Dataset d = AndDataset();
  ASSERT_OK_AND_ASSIGN(NaiveBayes nb, NaiveBayes::Train(d));
  EXPECT_NEAR(nb.Prior(0) + nb.Prior(1), 1.0, 1e-9);
  // A value never seen with a class still has non-zero probability.
  EXPECT_GT(nb.ConditionalProb(0, 0, 1), 0.0);
  double sum = 0;
  for (ValueCode v = 0; v < 2; ++v) sum += nb.ConditionalProb(0, v, 1);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(NaiveBayes, CannotExpressSubPopulationInteraction) {
  // XOR: marginals are uninformative, so NB is at chance — like the tree,
  // predictive baselines miss interactions the comparator isolates.
  Dataset d = XorDataset();
  ASSERT_OK_AND_ASSIGN(NaiveBayes nb, NaiveBayes::Train(d));
  ASSERT_OK_AND_ASSIGN(double acc, nb.Evaluate(d));
  EXPECT_NEAR(acc, 0.5, 0.05);
}

TEST(NaiveBayes, RejectsBadInput) {
  Dataset d = AndDataset();
  NaiveBayesOptions opts;
  opts.alpha = 0.0;
  EXPECT_FALSE(NaiveBayes::Train(d, opts).ok());
  std::vector<Attribute> attrs;
  attrs.push_back(Attribute::Continuous("x"));
  attrs.push_back(Attribute::Categorical("c", {"a", "b"}));
  auto schema = Schema::Make(std::move(attrs), 1);
  ASSERT_TRUE(schema.ok());
  Dataset continuous(schema.MoveValue());
  EXPECT_FALSE(NaiveBayes::Train(continuous).ok());
}

TEST(CubeExceptions, EmptyAndUniformCubes) {
  Schema schema = XorSchema();
  ASSERT_OK_AND_ASSIGN(RuleCube cube, RuleCube::Make(schema, {0, 1, 3}));
  ASSERT_OK_AND_ASSIGN(auto empty, MineCountExceptions(cube, {}));
  EXPECT_TRUE(empty.empty());
  for (ValueCode a = 0; a < 2; ++a) {
    for (ValueCode b = 0; b < 2; ++b) {
      for (ValueCode y = 0; y < 2; ++y) cube.Add({a, b, y}, 100);
    }
  }
  ASSERT_OK_AND_ASSIGN(auto uniform, MineCountExceptions(cube, {}));
  EXPECT_TRUE(uniform.empty());
}

}  // namespace
}  // namespace opmap
