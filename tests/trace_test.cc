#include "opmap/common/trace.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/parallel.h"

namespace opmap {
namespace {

// The tracer is process-global; every test starts from a clean slate.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global()->Disable();
    Tracer::Global()->Clear();
  }
  void TearDown() override {
    Tracer::Global()->Disable();
    Tracer::Global()->Clear();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  { OPMAP_TRACE_SPAN("test.ignored"); }
  EXPECT_TRUE(Tracer::Global()->SnapshotEvents().empty());
}

TEST_F(TraceTest, RecordsCompletedSpansWithNesting) {
  Tracer::Global()->Enable();
  {
    OPMAP_TRACE_SPAN("test.outer");
    { OPMAP_TRACE_SPAN("test.inner"); }
  }
  Tracer::Global()->Disable();
  const std::vector<TraceEvent> events = Tracer::Global()->SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  // Per-thread append order is completion order: inner first.
  EXPECT_STREQ(events[0].name, "test.inner");
  EXPECT_STREQ(events[1].name, "test.outer");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[0].tid, events[1].tid);
  // The child interval is contained in the parent interval (same clock).
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
  }
}

// Balanced, properly nested spans when tasks trace under a nested
// ParallelFor (the inner loop runs inline inside pool tasks).
TEST_F(TraceTest, NestedParallelForSpansAreBalancedPerThread) {
  Tracer::Global()->Enable();
  constexpr int64_t kOuter = 16;
  constexpr int64_t kInner = 4;
  ParallelOptions parallel;
  parallel.num_threads = 4;
  {
    OPMAP_TRACE_SPAN("test.root");
    ParallelFor(
        0, kOuter, /*grain=*/1,
        [&](int64_t) {
          OPMAP_TRACE_SPAN("test.outer_task");
          ParallelFor(
              0, kInner, /*grain=*/1,
              [&](int64_t) { OPMAP_TRACE_SPAN("test.inner_task"); },
              parallel);
        },
        parallel);
  }
  Tracer::Global()->Disable();
  const std::vector<TraceEvent> events = Tracer::Global()->SnapshotEvents();
  EXPECT_EQ(Tracer::Global()->DroppedEvents(), 0);

  std::map<std::string, int64_t> count_by_name;
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.ts_us, 0);
    EXPECT_GE(e.dur_us, 0);
    EXPECT_GE(e.depth, 1);
    count_by_name[e.name] += 1;
  }
  EXPECT_EQ(count_by_name["test.root"], 1);
  EXPECT_EQ(count_by_name["test.outer_task"], kOuter);
  EXPECT_EQ(count_by_name["test.inner_task"], kOuter * kInner);

  // Within each thread every span must nest properly: replaying the
  // per-thread completion order with a stack, a span of depth d closes
  // only after every deeper span it contains has closed, and its
  // interval contains theirs.
  std::map<int, std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(e);
  for (const auto& [tid, thread_events] : by_tid) {
    std::vector<TraceEvent> open;  // children completed before parents
    for (const TraceEvent& e : thread_events) {
      while (!open.empty() && open.back().depth > e.depth) {
        const TraceEvent& child = open.back();
        EXPECT_GE(child.ts_us, e.ts_us) << "tid " << tid;
        EXPECT_LE(child.ts_us + child.dur_us, e.ts_us + e.dur_us)
            << "tid " << tid;
        open.pop_back();
      }
      open.push_back(e);
    }
  }
}

TEST_F(TraceTest, ToJsonIsWellFormedTraceEventFormat) {
  Tracer::Global()->Enable();
  {
    OPMAP_TRACE_SPAN("test.span_a");
    { OPMAP_TRACE_SPAN("test.span_b"); }
  }
  Tracer::Global()->Disable();
  const std::string json = Tracer::Global()->ToJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\"}"), std::string::npos);
  EXPECT_NE(json.find("\"test.span_a\""), std::string::npos);
  EXPECT_NE(json.find("\"test.span_b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, WriteJsonRoundTripsThroughAFile) {
  Tracer::Global()->Enable();
  { OPMAP_TRACE_SPAN("test.file_span"); }
  Tracer::Global()->Disable();
  const std::string path = ::testing::TempDir() + "/opmap_trace_test.json";
  ASSERT_TRUE(Tracer::Global()->WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents(1 << 16, '\0');
  contents.resize(std::fread(contents.data(), 1, contents.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, Tracer::Global()->ToJson());
  EXPECT_FALSE(
      Tracer::Global()->WriteJson("/nonexistent-dir/trace.json").ok());
}

TEST_F(TraceTest, ClearDropsCollectedSpans) {
  Tracer::Global()->Enable();
  { OPMAP_TRACE_SPAN("test.cleared"); }
  EXPECT_FALSE(Tracer::Global()->SnapshotEvents().empty());
  Tracer::Global()->Clear();
  EXPECT_TRUE(Tracer::Global()->SnapshotEvents().empty());
}

TEST_F(TraceTest, MonotonicClockNeverGoesBackwards) {
  int64_t last = MonotonicMicros();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = MonotonicMicros();
    EXPECT_GE(now, last);
    last = now;
  }
  EXPECT_GE(MonotonicSeconds(), 0.0);
}

}  // namespace
}  // namespace opmap
