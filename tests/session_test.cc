#include "opmap/core/session.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/cube/cube_store.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

Schema SessionSchema() {
  return MakeSchema({{"PhoneModel", {"ph1", "ph2"}},
                     {"TimeOfCall", {"morning", "evening"}},
                     {"Class", {"ok", "drop"}}});
}

CubeStore MakeStore() {
  Dataset d(SessionSchema());
  AppendRows(&d, {0, 0, 0}, 90);
  AppendRows(&d, {0, 0, 1}, 10);
  AppendRows(&d, {0, 1, 0}, 95);
  AppendRows(&d, {0, 1, 1}, 5);
  AppendRows(&d, {1, 0, 0}, 60);
  AppendRows(&d, {1, 0, 1}, 40);
  AppendRows(&d, {1, 1, 0}, 95);
  AppendRows(&d, {1, 1, 1}, 5);
  auto store = CubeBuilder::FromDataset(d);
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(ExplorationSession, RequiresOpenView) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  EXPECT_FALSE(session.has_view());
  EXPECT_FALSE(session.DrillDown("TimeOfCall").ok());
  EXPECT_FALSE(session.Slice("PhoneModel", "ph1").ok());
  EXPECT_FALSE(session.Render().ok());
  EXPECT_FALSE(session.Back().ok());
}

TEST(ExplorationSession, OpenShowsTwoDimensionalCube) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_TRUE(session.has_view());
  EXPECT_EQ(session.current().num_dims(), 2);
  EXPECT_EQ(session.PathString(), "PhoneModel");
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render());
  EXPECT_NE(view.find("ph1"), std::string::npos);
  EXPECT_NE(view.find("Class=drop"), std::string::npos);
  EXPECT_FALSE(session.OpenAttribute("NoSuch").ok());
}

TEST(ExplorationSession, DrillSliceRollFlow) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  EXPECT_EQ(session.current().num_dims(), 3);
  // The 3-D cell counts come straight from the pair cube.
  EXPECT_EQ(session.current().count({1, 0, 1}), 40);

  ASSERT_OK(session.Slice("PhoneModel", "ph2"));
  EXPECT_EQ(session.current().num_dims(), 2);
  EXPECT_EQ(session.current().count({0, 1}), 40);  // morning drops of ph2
  EXPECT_EQ(session.PathString(),
            "PhoneModel > drill TimeOfCall > slice PhoneModel=ph2");

  ASSERT_OK(session.RollUp("TimeOfCall"));
  EXPECT_EQ(session.current().num_dims(), 1);
  EXPECT_EQ(session.current().count({1}), 45);  // all drops of ph2

  // Back undoes one step at a time.
  ASSERT_OK(session.Back());
  EXPECT_EQ(session.current().num_dims(), 2);
  ASSERT_OK(session.Back());
  ASSERT_OK(session.Back());
  EXPECT_EQ(session.PathString(), "PhoneModel");
  EXPECT_FALSE(session.Back().ok());
}

TEST(ExplorationSession, DiceRestrictsValues) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("TimeOfCall"));
  ASSERT_OK(session.Dice("TimeOfCall", {"morning"}));
  EXPECT_EQ(session.current().dim_size(0), 1);
  EXPECT_EQ(session.current().Total(), 200);  // all morning calls
  EXPECT_FALSE(session.Dice("TimeOfCall", {"no-such-value"}).ok());
}

TEST(ExplorationSession, DrillDownValidation) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  EXPECT_FALSE(session.DrillDown("PhoneModel").ok());  // same attribute
  EXPECT_FALSE(session.DrillDown("Class").ok());       // class attribute
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  EXPECT_FALSE(session.DrillDown("TimeOfCall").ok());  // already 3-D
}

TEST(ExplorationSession, RenderAfterClassRemoved) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.Slice("Class", "drop"));
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render());
  EXPECT_NE(view.find("class dimension removed"), std::string::npos);
  EXPECT_NE(view.find("ph2"), std::string::npos);
  // Counts view shows the drop counts per phone.
  EXPECT_NE(view.find("45"), std::string::npos);
}

TEST(ExplorationSession, ResetClearsEverything) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  session.Reset();
  EXPECT_FALSE(session.has_view());
  EXPECT_EQ(session.PathString(), "");
}

TEST(ExplorationSession, RowCapTruncatesRender) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  SessionRenderOptions options;
  options.max_rows = 1;
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render(options));
  EXPECT_NE(view.find("..."), std::string::npos);
}

// ---------------------------------------------------------------------------
// QueryCache
// ---------------------------------------------------------------------------

TEST(QueryCache, CountsHitsMissesAndEvictions) {
  QueryCache cache(/*max_bytes=*/100);
  EXPECT_EQ(cache.LookupAny("view|a"), nullptr);  // miss
  cache.InsertAny("view|a", std::make_shared<const int>(1), 60);
  EXPECT_NE(cache.LookupAny("view|a"), nullptr);  // hit
  cache.InsertAny("view|b", std::make_shared<const int>(2), 60);  // evicts a
  EXPECT_EQ(cache.LookupAny("view|a"), nullptr);  // miss
  EXPECT_NE(cache.LookupAny("view|b"), nullptr);  // hit

  const QueryCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, 60);
  EXPECT_EQ(stats.max_bytes, 100);
}

TEST(QueryCache, EvictsLeastRecentlyUsedFirst) {
  QueryCache cache(100);
  cache.InsertAny("a", std::make_shared<const int>(1), 40);
  cache.InsertAny("b", std::make_shared<const int>(2), 40);
  EXPECT_NE(cache.LookupAny("a"), nullptr);  // a becomes MRU
  cache.InsertAny("c", std::make_shared<const int>(3), 40);
  EXPECT_EQ(cache.LookupAny("b"), nullptr) << "b was LRU and must go first";
  EXPECT_NE(cache.LookupAny("a"), nullptr);
  EXPECT_NE(cache.LookupAny("c"), nullptr);
}

TEST(QueryCache, ZeroBytesDisablesAndOversizedValuesAreSkipped) {
  QueryCache off(0);
  off.InsertAny("k", std::make_shared<const int>(1), 8);
  EXPECT_EQ(off.LookupAny("k"), nullptr);
  EXPECT_EQ(off.GetStats().entries, 0);

  QueryCache tiny(16);
  tiny.InsertAny("big", std::make_shared<const int>(1), 64);
  EXPECT_EQ(tiny.GetStats().entries, 0)
      << "a value larger than the whole cache must not be admitted";
}

TEST(QueryCache, BumpEpochDropsEntriesButKeepsOutstandingHandles) {
  QueryCache cache(int64_t{1} << 20);
  cache.InsertAny("k", std::make_shared<const std::string>("payload"), 64);
  auto handle =
      std::static_pointer_cast<const std::string>(cache.LookupAny("k"));
  ASSERT_NE(handle, nullptr);

  const uint64_t before = cache.GetStats().epoch;
  cache.BumpEpoch();
  EXPECT_EQ(cache.GetStats().epoch, before + 1);
  EXPECT_EQ(cache.GetStats().entries, 0);
  EXPECT_EQ(cache.LookupAny("k"), nullptr);
  EXPECT_EQ(*handle, "payload") << "earlier lookups outlive invalidation";
}

TEST(QueryCache, ConcurrentBumpEpochNeverServesAStaleEpochHit) {
  // A compaction bumps the epoch while queries race lookups. Each cached
  // value is tagged with the epoch it was inserted under; any hit a
  // reader gets must be from an epoch at least as new as the one it
  // observed before the lookup — a tag older than that would mean
  // BumpEpoch let a pre-invalidation entry survive.
  QueryCache cache(int64_t{1} << 20);
  std::atomic<bool> done{false};

  std::thread bumper([&]() {
    for (int round = 0; round < 500; ++round) {
      cache.BumpEpoch();
      const uint64_t epoch = cache.GetStats().epoch;
      cache.InsertAny("k", std::make_shared<const uint64_t>(epoch), 16);
    }
    done = true;
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      uint64_t last_epoch = 0;
      while (!done) {
        const uint64_t seen = cache.GetStats().epoch;
        EXPECT_GE(seen, last_epoch) << "epoch went backwards";
        last_epoch = seen;
        auto hit =
            std::static_pointer_cast<const uint64_t>(cache.LookupAny("k"));
        if (hit != nullptr) {
          EXPECT_GE(*hit, seen) << "stale-epoch cache hit after BumpEpoch";
        }
      }
    });
  }
  bumper.join();
  for (std::thread& t : readers) t.join();
  EXPECT_GE(cache.GetStats().epoch, 500u);
}

// ---------------------------------------------------------------------------
// QueryEngine
// ---------------------------------------------------------------------------

ComparisonSpec PhoneSpec() {
  ComparisonSpec spec;
  spec.attribute = 0;     // PhoneModel
  spec.value_a = 0;       // ph1
  spec.value_b = 1;       // ph2
  spec.target_class = 1;  // drop
  return spec;
}

TEST(QueryEngine, SecondCompareIsServedFromTheCache) {
  CubeStore store = MakeStore();
  QueryEngine engine(&store);
  ASSERT_OK_AND_ASSIGN(auto first, engine.Compare(PhoneSpec()));
  ASSERT_OK_AND_ASSIGN(auto second, engine.Compare(PhoneSpec()));
  EXPECT_EQ(first.get(), second.get())
      << "the repeat query must return the cached result object";
  const QueryCacheStats stats = engine.GetCacheStats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

TEST(QueryEngine, SetStoreInvalidatesCachedResults) {
  CubeStore store = MakeStore();
  QueryEngine engine(&store);
  ASSERT_OK_AND_ASSIGN(auto first, engine.Compare(PhoneSpec()));
  const uint64_t epoch = engine.GetCacheStats().epoch;

  CubeStore replacement = MakeStore();
  engine.SetStore(&replacement);
  EXPECT_EQ(engine.GetCacheStats().epoch, epoch + 1);
  EXPECT_EQ(engine.GetCacheStats().entries, 0);
  ASSERT_OK_AND_ASSIGN(auto recomputed, engine.Compare(PhoneSpec()));
  EXPECT_NE(first.get(), recomputed.get())
      << "a swapped store must not serve results computed on the old one";
}

TEST(QueryEngine, GiIsCachedPerOptionSet) {
  CubeStore store = MakeStore();
  QueryEngine engine(&store);
  ASSERT_OK_AND_ASSIGN(auto first, engine.Gi());
  ASSERT_OK_AND_ASSIGN(auto second, engine.Gi());
  EXPECT_EQ(first.get(), second.get());

  GiOptions narrower;
  narrower.top_influence = 1;
  ASSERT_OK_AND_ASSIGN(auto other, engine.Gi(narrower));
  EXPECT_NE(first.get(), other.get())
      << "different options are a different cache descriptor";
}

TEST(QueryEngine, AllPairsFanOutMatchesUncachedAndThenHits) {
  CubeStore store = MakeStore();
  ParallelOptions parallel;
  parallel.num_threads = 4;
  QueryEngine cached(&store, QueryCache::kDefaultMaxBytes, parallel);
  QueryEngine uncached(&store, 0, parallel);

  ASSERT_OK_AND_ASSIGN(auto with, cached.CompareAllPairs(0, 1));
  ASSERT_OK_AND_ASSIGN(auto without, uncached.CompareAllPairs(0, 1));
  const Schema& schema = store.schema();
  EXPECT_EQ(FormatPairSummaries(with, schema, 0),
            FormatPairSummaries(without, schema, 0));

  const QueryCacheStats before = cached.GetCacheStats();
  ASSERT_OK_AND_ASSIGN(auto again, cached.CompareAllPairs(0, 1));
  const QueryCacheStats after = cached.GetCacheStats();
  EXPECT_GT(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses)
      << "the repeat sweep must be served entirely from the cache";
  EXPECT_EQ(FormatPairSummaries(again, schema, 0),
            FormatPairSummaries(with, schema, 0));
}

// The concurrency shape TSan runs against: many threads issuing the same
// query through one shared cache.
TEST(QueryEngine, ConcurrentComparesThroughOneCacheAreSafe) {
  CubeStore store = MakeStore();
  QueryEngine engine(&store);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &failures] {
      for (int i = 0; i < 50; ++i) {
        auto result = engine.Compare(PhoneSpec());
        if (!result.ok() || (*result)->ranked.empty()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const QueryCacheStats stats = engine.GetCacheStats();
  EXPECT_EQ(stats.hits + stats.misses, 200)
      << "every call does exactly one lookup";
}

// ---------------------------------------------------------------------------
// Cached rendering
// ---------------------------------------------------------------------------

TEST(ExplorationSession, RenderServedFromCacheUntilThePathChanges) {
  CubeStore store = MakeStore();
  QueryCache cache(int64_t{1} << 20);
  ExplorationSession session(&store);
  session.set_cache(&cache);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));

  ASSERT_OK_AND_ASSIGN(std::string first, session.Render());
  EXPECT_EQ(cache.GetStats().misses, 1);
  ASSERT_OK_AND_ASSIGN(std::string second, session.Render());
  EXPECT_EQ(second, first);
  EXPECT_EQ(cache.GetStats().hits, 1);

  // Different render options are a different descriptor.
  SessionRenderOptions capped;
  capped.max_rows = 1;
  ASSERT_OK_AND_ASSIGN(std::string narrow, session.Render(capped));
  EXPECT_EQ(cache.GetStats().misses, 2);

  // Navigating changes the path, so the next render recomputes.
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  ASSERT_OK_AND_ASSIGN(std::string drilled, session.Render());
  EXPECT_NE(drilled, first);
  EXPECT_EQ(cache.GetStats().misses, 3);
}

}  // namespace
}  // namespace opmap
