#include "opmap/core/session.h"

#include "gtest/gtest.h"
#include "opmap/cube/cube_store.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

Schema SessionSchema() {
  return MakeSchema({{"PhoneModel", {"ph1", "ph2"}},
                     {"TimeOfCall", {"morning", "evening"}},
                     {"Class", {"ok", "drop"}}});
}

CubeStore MakeStore() {
  Dataset d(SessionSchema());
  AppendRows(&d, {0, 0, 0}, 90);
  AppendRows(&d, {0, 0, 1}, 10);
  AppendRows(&d, {0, 1, 0}, 95);
  AppendRows(&d, {0, 1, 1}, 5);
  AppendRows(&d, {1, 0, 0}, 60);
  AppendRows(&d, {1, 0, 1}, 40);
  AppendRows(&d, {1, 1, 0}, 95);
  AppendRows(&d, {1, 1, 1}, 5);
  auto store = CubeBuilder::FromDataset(d);
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(ExplorationSession, RequiresOpenView) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  EXPECT_FALSE(session.has_view());
  EXPECT_FALSE(session.DrillDown("TimeOfCall").ok());
  EXPECT_FALSE(session.Slice("PhoneModel", "ph1").ok());
  EXPECT_FALSE(session.Render().ok());
  EXPECT_FALSE(session.Back().ok());
}

TEST(ExplorationSession, OpenShowsTwoDimensionalCube) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_TRUE(session.has_view());
  EXPECT_EQ(session.current().num_dims(), 2);
  EXPECT_EQ(session.PathString(), "PhoneModel");
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render());
  EXPECT_NE(view.find("ph1"), std::string::npos);
  EXPECT_NE(view.find("Class=drop"), std::string::npos);
  EXPECT_FALSE(session.OpenAttribute("NoSuch").ok());
}

TEST(ExplorationSession, DrillSliceRollFlow) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  EXPECT_EQ(session.current().num_dims(), 3);
  // The 3-D cell counts come straight from the pair cube.
  EXPECT_EQ(session.current().count({1, 0, 1}), 40);

  ASSERT_OK(session.Slice("PhoneModel", "ph2"));
  EXPECT_EQ(session.current().num_dims(), 2);
  EXPECT_EQ(session.current().count({0, 1}), 40);  // morning drops of ph2
  EXPECT_EQ(session.PathString(),
            "PhoneModel > drill TimeOfCall > slice PhoneModel=ph2");

  ASSERT_OK(session.RollUp("TimeOfCall"));
  EXPECT_EQ(session.current().num_dims(), 1);
  EXPECT_EQ(session.current().count({1}), 45);  // all drops of ph2

  // Back undoes one step at a time.
  ASSERT_OK(session.Back());
  EXPECT_EQ(session.current().num_dims(), 2);
  ASSERT_OK(session.Back());
  ASSERT_OK(session.Back());
  EXPECT_EQ(session.PathString(), "PhoneModel");
  EXPECT_FALSE(session.Back().ok());
}

TEST(ExplorationSession, DiceRestrictsValues) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("TimeOfCall"));
  ASSERT_OK(session.Dice("TimeOfCall", {"morning"}));
  EXPECT_EQ(session.current().dim_size(0), 1);
  EXPECT_EQ(session.current().Total(), 200);  // all morning calls
  EXPECT_FALSE(session.Dice("TimeOfCall", {"no-such-value"}).ok());
}

TEST(ExplorationSession, DrillDownValidation) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  EXPECT_FALSE(session.DrillDown("PhoneModel").ok());  // same attribute
  EXPECT_FALSE(session.DrillDown("Class").ok());       // class attribute
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  EXPECT_FALSE(session.DrillDown("TimeOfCall").ok());  // already 3-D
}

TEST(ExplorationSession, RenderAfterClassRemoved) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.Slice("Class", "drop"));
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render());
  EXPECT_NE(view.find("class dimension removed"), std::string::npos);
  EXPECT_NE(view.find("ph2"), std::string::npos);
  // Counts view shows the drop counts per phone.
  EXPECT_NE(view.find("45"), std::string::npos);
}

TEST(ExplorationSession, ResetClearsEverything) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  session.Reset();
  EXPECT_FALSE(session.has_view());
  EXPECT_EQ(session.PathString(), "");
}

TEST(ExplorationSession, RowCapTruncatesRender) {
  CubeStore store = MakeStore();
  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute("PhoneModel"));
  ASSERT_OK(session.DrillDown("TimeOfCall"));
  SessionRenderOptions options;
  options.max_rows = 1;
  ASSERT_OK_AND_ASSIGN(std::string view, session.Render(options));
  EXPECT_NE(view.find("..."), std::string::npos);
}

}  // namespace
}  // namespace opmap
