#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "opmap/core/opportunity_map.h"
#include "opmap/data/call_log.h"
#include "test_util.h"

namespace opmap {
namespace {

// Writes a small mixed CSV for pipeline tests and returns its path.
std::string WriteTempCsv() {
  const std::string path = ::testing::TempDir() + "/opmap_core_test.csv";
  std::ofstream out(path);
  out << "phone,rssi,disposition\n";
  // Both phones drop at low rssi, ph2 much more often.
  for (int i = 0; i < 400; ++i) {
    const bool ph2 = i % 2 == 1;
    const double rssi = -60.0 - (i % 50);
    const bool low = rssi < -90;
    const bool drop = low && (ph2 ? i % 3 == 0 : i % 12 == 0);
    out << (ph2 ? "ph2" : "ph1") << "," << rssi << ","
        << (drop ? "drop" : "ok") << "\n";
  }
  return path;
}

TEST(OpportunityMap, PipelineFromCsv) {
  const std::string path = WriteTempCsv();
  CsvReadOptions csv;
  csv.class_column = "disposition";
  OpportunityMapOptions opts;
  opts.discretize_method = DiscretizeMethod::kEqualFrequency;
  opts.discretize_bins = 4;
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromCsv(path, csv, opts));
  EXPECT_TRUE(map.schema().AllCategorical());
  EXPECT_EQ(map.data().num_rows(), 400);
  EXPECT_GT(map.cubes().NumCubes(), 0);
  std::remove(path.c_str());
}

TEST(OpportunityMap, CompareByNameThroughFacade) {
  const std::string path = WriteTempCsv();
  CsvReadOptions csv;
  csv.class_column = "disposition";
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromCsv(path, csv, {}));
  ASSERT_OK_AND_ASSIGN(ComparisonResult result,
                       map.Compare("phone", "ph1", "ph2", "drop"));
  ASSERT_FALSE(result.ranked.empty());
  // rssi must be the top distinguishing attribute.
  ASSERT_OK_AND_ASSIGN(int rssi, map.schema().IndexOf("rssi"));
  EXPECT_EQ(result.ranked[0].attribute, rssi);
  std::remove(path.c_str());
}

TEST(OpportunityMap, ManualCutsRespected) {
  const std::string path = WriteTempCsv();
  CsvReadOptions csv;
  csv.class_column = "disposition";
  OpportunityMapOptions opts;
  opts.manual_cuts = {{"rssi", {-90.0, -75.0}}};
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromCsv(path, csv, opts));
  ASSERT_OK_AND_ASSIGN(int rssi, map.schema().IndexOf("rssi"));
  EXPECT_EQ(map.schema().attribute(rssi).domain(), 3);
  std::remove(path.c_str());
}

TEST(OpportunityMap, UnbalancedSamplingShrinksMajority) {
  CallLogConfig config;
  config.num_records = 40000;
  config.num_attributes = 8;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset full = gen.Generate();
  const auto full_counts = full.ClassCounts();

  OpportunityMapOptions opts;
  opts.unbalanced_sampling_ratio = 5.0;
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(std::move(full), opts));
  const auto counts = map.data().ClassCounts();
  // Minority classes kept; majority capped near 5x the smallest class.
  int64_t smallest = counts[0];
  for (int64_t c : counts) {
    if (c > 0) smallest = std::min(smallest, c);
  }
  EXPECT_LT(counts[kEndedSuccessfully],
            full_counts[kEndedSuccessfully]);
  EXPECT_LT(static_cast<double>(counts[kEndedSuccessfully]),
            5.6 * static_cast<double>(smallest));
}

TEST(OpportunityMap, GiAndViewsThroughFacade) {
  CallLogConfig config;
  config.num_records = 20000;
  config.num_attributes = 8;
  config.phone_drop_multiplier = {1.0, 3.0};
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(gen.Generate(), {}));

  ASSERT_OK_AND_ASSIGN(auto trends, map.MineTrends());
  (void)trends;  // may be empty; just must not fail
  ASSERT_OK_AND_ASSIGN(auto exceptions, map.MineExceptions());
  EXPECT_FALSE(exceptions.empty());  // the bad phone is an exception
  ASSERT_OK_AND_ASSIGN(auto influence, map.RankInfluence());
  EXPECT_EQ(influence.size(), map.cubes().attributes().size());

  ASSERT_OK_AND_ASSIGN(std::string overview, map.Overview());
  EXPECT_NE(overview.find("PhoneModel"), std::string::npos);
  ASSERT_OK_AND_ASSIGN(std::string detail, map.Detail("PhoneModel"));
  EXPECT_NE(detail.find("ph01"), std::string::npos);
  EXPECT_FALSE(map.Detail("NoSuch").ok());

  ASSERT_OK_AND_ASSIGN(
      ComparisonResult cmp,
      map.Compare("PhoneModel", "ph01", "ph02",
                  "dropped-while-in-progress"));
  ASSERT_OK_AND_ASSIGN(std::string view,
                       map.ComparisonView(cmp, "TimeOfCall"));
  EXPECT_NE(view.find("TimeOfCall"), std::string::npos);
}

TEST(OpportunityMap, GroupAndVsRestAndPairsThroughFacade) {
  CallLogConfig config;
  config.num_records = 30000;
  config.num_attributes = 10;
  config.phone_drop_multiplier = {1.0, 1.0, 2.5};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", 2, kDroppedWhileInProgress, 5.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(gen.Generate(), {}));

  ASSERT_OK_AND_ASSIGN(
      ComparisonResult vs_rest,
      map.CompareVsRest("PhoneModel", "ph03", "dropped-while-in-progress"));
  EXPECT_EQ(vs_rest.label_b, "ph03");
  EXPECT_EQ(vs_rest.ranked[0].attribute, gen.GroundTruthAttribute());

  ASSERT_OK_AND_ASSIGN(
      auto pairs,
      map.CompareAllPairs("PhoneModel", "dropped-while-in-progress"));
  EXPECT_FALSE(pairs.empty());

  GroupComparisonSpec gspec;
  ASSERT_OK_AND_ASSIGN(gspec.attribute, map.schema().IndexOf("PhoneModel"));
  gspec.group_a = ValueGroup{{0, 1}, false};
  gspec.group_b = ValueGroup::Of(2);
  ASSERT_OK_AND_ASSIGN(
      gspec.target_class,
      map.schema().class_attribute().CodeOf("dropped-while-in-progress"));
  ASSERT_OK_AND_ASSIGN(ComparisonResult groups, map.CompareGroups(gspec));
  EXPECT_EQ(groups.label_a, "ph01|ph02");

  ASSERT_OK_AND_ASSIGN(GeneralImpressions gi, map.Impressions());
  EXPECT_FALSE(gi.influence.empty());
}

TEST(OpportunityMap, CompareWithinContextThroughFacade) {
  CallLogConfig config;
  config.num_records = 40000;
  config.num_attributes = 10;
  config.phone_drop_multiplier = {1.0, 1.0, 1.8};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", 2, kDroppedWhileInProgress, 6.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(gen.Generate(), {}));
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult within,
      map.CompareWithin({{"TimeOfCall", "morning"}}, "PhoneModel", "ph01",
                        "ph03", "dropped-while-in-progress"));
  // Within the morning, ph03's rate is much higher than ph01's.
  EXPECT_GT(within.cf2, 3.0 * within.cf1);
  EXPECT_NE(within.label_b.find("TimeOfCall=morning"), std::string::npos);
  EXPECT_FALSE(
      map.CompareWithin({{"NoSuch", "x"}}, "PhoneModel", "ph01", "ph03",
                        "dropped-while-in-progress")
          .ok());
}

TEST(OpportunityMap, SaveAndRestoreCubes) {
  CallLogConfig config;
  config.num_records = 10000;
  config.num_attributes = 8;
  config.phone_drop_multiplier = {1.0, 2.0};
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(OpportunityMap original,
                       OpportunityMap::FromDataset(gen.Generate(), {}));
  const std::string path = ::testing::TempDir() + "/opmap_core_cubes.opmc";
  ASSERT_OK(original.SaveCubes(path));
  ASSERT_OK_AND_ASSIGN(OpportunityMap restored,
                       OpportunityMap::FromSavedCubes(path));
  // The interactive path works identically on the restored session.
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult a,
      original.Compare("PhoneModel", "ph01", "ph02",
                       "dropped-while-in-progress"));
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult b,
      restored.Compare("PhoneModel", "ph01", "ph02",
                       "dropped-while-in-progress"));
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].attribute, b.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(a.ranked[i].interestingness,
                     b.ranked[i].interestingness);
  }
  // Raw-data operations are unavailable and say so.
  auto mined = restored.MineRestrictedRules({Condition{0, 0}}, 0.01, 0.0, 3);
  EXPECT_FALSE(mined.ok());
  EXPECT_EQ(mined.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST(OpportunityMap, RestrictedMining) {
  CallLogConfig config;
  config.num_records = 10000;
  config.num_attributes = 6;
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(gen.Generate(), {}));
  // Fix PhoneModel = ph01 and mine 3-condition rules beneath it.
  ASSERT_OK_AND_ASSIGN(RuleSet rules,
                       map.MineRestrictedRules({Condition{0, 0}}, 0.001, 0.0,
                                               3));
  ASSERT_FALSE(rules.empty());
  for (const ClassRule& r : rules.rules()) {
    EXPECT_EQ(r.conditions[0].attribute, 0);
    EXPECT_EQ(r.conditions[0].value, 0);
    EXPECT_LE(r.conditions.size(), 3u);
  }
}

}  // namespace
}  // namespace opmap
