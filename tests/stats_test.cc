#include <cmath>

#include "gtest/gtest.h"
#include "opmap/stats/confidence_interval.h"
#include "opmap/stats/contingency.h"
#include "opmap/stats/measures.h"
#include "opmap/stats/multiple_testing.h"
#include "test_util.h"

namespace opmap {
namespace {

// --- Table I of the paper. ---
TEST(ConfidenceInterval, ZValueTable) {
  EXPECT_DOUBLE_EQ(ZValue(ConfidenceLevel::k90), 1.645);
  EXPECT_DOUBLE_EQ(ZValue(ConfidenceLevel::k95), 1.96);
  EXPECT_DOUBLE_EQ(ZValue(ConfidenceLevel::k99), 2.576);
}

TEST(ConfidenceInterval, ParseLevels) {
  ASSERT_OK_AND_ASSIGN(ConfidenceLevel l, ParseConfidenceLevel("0.95"));
  EXPECT_EQ(l, ConfidenceLevel::k95);
  ASSERT_OK_AND_ASSIGN(l, ParseConfidenceLevel("90"));
  EXPECT_EQ(l, ConfidenceLevel::k90);
  EXPECT_FALSE(ParseConfidenceLevel("0.80").ok());
}

TEST(ConfidenceInterval, WaldFormula) {
  // e = z * sqrt(p(1-p)/n): p=0.5, n=100, z=1.96 -> e = 0.098.
  const ProportionInterval ci = WaldInterval(50, 100, ConfidenceLevel::k95);
  EXPECT_DOUBLE_EQ(ci.proportion, 0.5);
  EXPECT_NEAR(ci.margin, 0.098, 1e-9);
  EXPECT_NEAR(ci.low, 0.402, 1e-9);
  EXPECT_NEAR(ci.high, 0.598, 1e-9);
}

TEST(ConfidenceInterval, WaldMarginShrinksWithN) {
  const double m10 = WaldInterval(3, 10, ConfidenceLevel::k95).margin;
  const double m1000 = WaldInterval(300, 1000, ConfidenceLevel::k95).margin;
  EXPECT_GT(m10, m1000);
}

TEST(ConfidenceInterval, WaldMarginGrowsWithLevel) {
  const double m90 = WaldInterval(30, 100, ConfidenceLevel::k90).margin;
  const double m95 = WaldInterval(30, 100, ConfidenceLevel::k95).margin;
  const double m99 = WaldInterval(30, 100, ConfidenceLevel::k99).margin;
  EXPECT_LT(m90, m95);
  EXPECT_LT(m95, m99);
}

TEST(ConfidenceInterval, WaldDegenerateCases) {
  // n = 0 and p in {0,1} give zero margins (paper behaviour: handled by the
  // property-attribute mechanism, not the interval).
  EXPECT_DOUBLE_EQ(WaldInterval(0, 0, ConfidenceLevel::k95).margin, 0.0);
  EXPECT_DOUBLE_EQ(WaldInterval(0, 50, ConfidenceLevel::k95).margin, 0.0);
  EXPECT_DOUBLE_EQ(WaldInterval(50, 50, ConfidenceLevel::k95).margin, 0.0);
  const ProportionInterval ci = WaldInterval(1, 2, ConfidenceLevel::k99);
  EXPECT_GE(ci.low, 0.0);
  EXPECT_LE(ci.high, 1.0);
}

TEST(ConfidenceInterval, WilsonIsBoundedAndNonDegenerate) {
  const ProportionInterval w = WilsonInterval(0, 20, ConfidenceLevel::k95);
  EXPECT_GT(w.high, 0.0);  // Wilson never collapses at p=0
  EXPECT_GE(w.low, 0.0);
  const ProportionInterval empty = WilsonInterval(0, 0, ConfidenceLevel::k95);
  EXPECT_DOUBLE_EQ(empty.low, 0.0);
  EXPECT_DOUBLE_EQ(empty.high, 1.0);
}

TEST(Contingency, TotalsAndAccess) {
  ContingencyTable t(2, 3);
  t.set(0, 0, 10);
  t.add(0, 1, 5);
  t.add(1, 2, 7);
  EXPECT_EQ(t.RowTotal(0), 15);
  EXPECT_EQ(t.ColTotal(2), 7);
  EXPECT_EQ(t.Total(), 22);
}

TEST(Contingency, ChiSquareZeroUnderIndependence) {
  // Perfectly proportional table -> statistic 0.
  ContingencyTable t(2, 2);
  t.set(0, 0, 40);
  t.set(0, 1, 60);
  t.set(1, 0, 20);
  t.set(1, 1, 30);
  EXPECT_NEAR(ChiSquareStatistic(t), 0.0, 1e-9);
  EXPECT_NEAR(CramersV(t), 0.0, 1e-6);
}

TEST(Contingency, ChiSquareKnownValue) {
  // Classic 2x2: ((a*d-b*c)^2 * n) / (row/col products).
  ContingencyTable t(2, 2);
  t.set(0, 0, 30);
  t.set(0, 1, 10);
  t.set(1, 0, 10);
  t.set(1, 1, 30);
  const double n = 80, expected = 11.25;  // (30*30-10*10)^2*80 / (40^4)
  (void)n;
  EXPECT_NEAR(ChiSquareStatistic(t), expected * 1.7777777778, 1e-6);
}

TEST(Contingency, PValueSanity) {
  EXPECT_NEAR(ChiSquarePValue(0.0, 1), 1.0, 1e-9);
  // chi2 = 3.841 with df=1 is the 95th percentile.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 0.002);
  EXPECT_LT(ChiSquarePValue(20.0, 1), 1e-4);
  EXPECT_DOUBLE_EQ(ChiSquarePValue(5.0, 0), 1.0);
}

TEST(Contingency, EntropyBits) {
  EXPECT_DOUBLE_EQ(EntropyBits({10, 10}), 1.0);
  EXPECT_DOUBLE_EQ(EntropyBits({10, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({}), 0.0);
  EXPECT_NEAR(EntropyBits({1, 1, 1, 1}), 2.0, 1e-12);
}

TEST(Contingency, InformationGain) {
  // Perfect split: rows fully determine the class.
  ContingencyTable t(2, 2);
  t.set(0, 0, 50);
  t.set(1, 1, 50);
  EXPECT_NEAR(InformationGainBits(t), 1.0, 1e-12);
  // Useless split.
  ContingencyTable u(2, 2);
  u.set(0, 0, 25);
  u.set(0, 1, 25);
  u.set(1, 0, 25);
  u.set(1, 1, 25);
  EXPECT_NEAR(InformationGainBits(u), 0.0, 1e-12);
}

TEST(Measures, NamesRoundTrip) {
  for (RuleMeasure m :
       {RuleMeasure::kConfidence, RuleMeasure::kSupport, RuleMeasure::kLift,
        RuleMeasure::kLeverage, RuleMeasure::kConviction,
        RuleMeasure::kChiSquare}) {
    ASSERT_OK_AND_ASSIGN(RuleMeasure parsed,
                         ParseRuleMeasure(RuleMeasureName(m)));
    EXPECT_EQ(parsed, m);
  }
  EXPECT_FALSE(ParseRuleMeasure("bogus").ok());
}

TEST(Measures, KnownValues) {
  // n=100, n_x=20, n_y=50, n_xy=15: conf=0.75, sup=0.15, lift=1.5.
  RuleCounts c{100, 20, 50, 15};
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kConfidence, c), 0.75);
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kSupport, c), 0.15);
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kLift, c), 1.5);
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kLeverage, c),
                   0.15 - 0.2 * 0.5);
  // conviction = P(x)P(!y)/P(x,!y) = 0.2*0.5/0.05 = 2.
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kConviction, c), 2.0);
  EXPECT_GT(EvaluateRuleMeasure(RuleMeasure::kChiSquare, c), 0.0);
}

TEST(Measures, DegenerateCases) {
  RuleCounts zero{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(EvaluateRuleMeasure(RuleMeasure::kLift, zero), 0.0);
  // Confidence-1 rule: conviction is +inf.
  RuleCounts perfect{100, 10, 50, 10};
  EXPECT_TRUE(std::isinf(
      EvaluateRuleMeasure(RuleMeasure::kConviction, perfect)));
}

TEST(MultipleTesting, PValueFromMarginMultiples) {
  // 1 margin multiple at z=1.96 is a 1.96-sigma deviation: p ~ 0.05.
  EXPECT_NEAR(PValueFromMarginMultiples(1.0, 1.96), 0.05, 0.002);
  EXPECT_NEAR(PValueFromMarginMultiples(0.0, 1.96), 1.0, 1e-12);
  EXPECT_LT(PValueFromMarginMultiples(3.0, 1.96), 1e-6);
  // Sign-invariant.
  EXPECT_DOUBLE_EQ(PValueFromMarginMultiples(-2.0, 1.96),
                   PValueFromMarginMultiples(2.0, 1.96));
}

TEST(MultipleTesting, Bonferroni) {
  const auto adj = BonferroniAdjust({0.01, 0.04, 0.5});
  EXPECT_DOUBLE_EQ(adj[0], 0.03);
  EXPECT_DOUBLE_EQ(adj[1], 0.12);
  EXPECT_DOUBLE_EQ(adj[2], 1.0);  // clamped
}

TEST(MultipleTesting, BenjaminiHochbergKnownExample) {
  // Classic example: p = {0.01, 0.02, 0.03, 0.04, 0.05} with m=5.
  // q_(i) = min_j>=i p_(j)*m/j -> {0.05, 0.05, 0.05, 0.05, 0.05}.
  const auto adj =
      BenjaminiHochbergAdjust({0.01, 0.02, 0.03, 0.04, 0.05});
  for (double q : adj) EXPECT_NEAR(q, 0.05, 1e-12);
  // Selection at FDR 0.05 keeps everything; at 0.04 keeps nothing.
  EXPECT_EQ(
      BenjaminiHochbergSelect({0.01, 0.02, 0.03, 0.04, 0.05}, 0.05).size(),
      5u);
  EXPECT_TRUE(
      BenjaminiHochbergSelect({0.01, 0.02, 0.03, 0.04, 0.05}, 0.04).empty());
}

TEST(MultipleTesting, BhIsMonotoneAndOrderInvariant) {
  const std::vector<double> p = {0.5, 0.001, 0.2, 0.03};
  const auto adj = BenjaminiHochbergAdjust(p);
  // Adjusted values are >= raw values and <= 1.
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(adj[i], p[i] - 1e-15);
    EXPECT_LE(adj[i], 1.0);
  }
  // A smaller raw p never gets a larger adjusted value.
  for (size_t i = 0; i < p.size(); ++i) {
    for (size_t j = 0; j < p.size(); ++j) {
      if (p[i] < p[j]) {
        EXPECT_LE(adj[i], adj[j] + 1e-15);
      }
    }
  }
  EXPECT_TRUE(BenjaminiHochbergAdjust({}).empty());
}

}  // namespace
}  // namespace opmap
