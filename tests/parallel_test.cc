// Tests of the parallel execution layer: the ParallelFor primitives, the
// thread-count plumbing, and the load-bearing guarantee that every
// parallel path (cube materialization, comparator fan-out, all-pairs
// sweep, CAR mining) is bit-identical to the serial path for any thread
// count.

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/car/miner.h"
#include "opmap/common/parallel.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

ParallelOptions Threads(int n) {
  ParallelOptions options;
  options.num_threads = n;
  return options;
}

// ---------------------------------------------------------------------------
// ParseThreadCount / EffectiveThreads
// ---------------------------------------------------------------------------

TEST(ParseThreadCount, AcceptsNonNegativeIntegers) {
  ASSERT_OK_AND_ASSIGN(int zero, ParseThreadCount("0"));
  EXPECT_EQ(zero, 0);
  ASSERT_OK_AND_ASSIGN(int one, ParseThreadCount("1"));
  EXPECT_EQ(one, 1);
  ASSERT_OK_AND_ASSIGN(int big, ParseThreadCount("1024"));
  EXPECT_EQ(big, 1024);
}

TEST(ParseThreadCount, RejectsGarbage) {
  EXPECT_FALSE(ParseThreadCount("").ok());
  EXPECT_FALSE(ParseThreadCount("-1").ok());
  EXPECT_FALSE(ParseThreadCount("abc").ok());
  EXPECT_FALSE(ParseThreadCount("4x").ok());
  EXPECT_FALSE(ParseThreadCount(" 4").ok());
  EXPECT_FALSE(ParseThreadCount("1025").ok());
  EXPECT_FALSE(ParseThreadCount("99999999999999999999").ok());
  EXPECT_EQ(ParseThreadCount("-1").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EffectiveThreads, ExplicitCountsAreClampedToTheCap) {
  EXPECT_EQ(EffectiveThreads(Threads(1)), 1);
  EXPECT_EQ(EffectiveThreads(Threads(5)), 5);
  EXPECT_EQ(EffectiveThreads(Threads(1000)), kMaxThreads);
  EXPECT_GE(EffectiveThreads(Threads(0)), 1);  // auto resolves to >= 1
}

// ---------------------------------------------------------------------------
// ParallelFor / ParallelForShards
// ---------------------------------------------------------------------------

TEST(ParallelFor, EmptyAndReversedRangesCallNothing) {
  std::atomic<int> calls{0};
  ParallelFor(5, 5, 1, [&](int64_t) { ++calls; }, Threads(4));
  ParallelFor(7, 3, 1, [&](int64_t) { ++calls; }, Threads(4));
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    for (int64_t n : {1, 2, 7, 100, 1000}) {
      for (int64_t grain : {0, 1, 3, 5000}) {
        std::vector<std::atomic<int>> visits(static_cast<size_t>(n));
        for (auto& v : visits) v.store(0);
        ParallelFor(
            0, n, grain,
            [&](int64_t i) { ++visits[static_cast<size_t>(i)]; },
            Threads(threads));
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(visits[static_cast<size_t>(i)].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelFor, OffsetRangeUsesAbsoluteIndices) {
  std::vector<std::atomic<int>> visits(10);
  for (auto& v : visits) v.store(0);
  ParallelFor(100, 110, 1,
              [&](int64_t i) {
                ASSERT_GE(i, 100);
                ASSERT_LT(i, 110);
                ++visits[static_cast<size_t>(i - 100)];
              },
              Threads(4));
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, SingleThreadRunsInOrder) {
  std::vector<int64_t> order;
  ParallelFor(0, 50, 1, [&](int64_t i) { order.push_back(i); }, Threads(1));
  ASSERT_EQ(order.size(), 50u);
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelFor, SerialPathStopsAtFirstException) {
  int calls = 0;
  EXPECT_THROW(ParallelFor(0, 100, 1,
                           [&](int64_t i) {
                             ++calls;
                             if (i == 37) throw std::runtime_error("boom");
                           },
                           Threads(1)),
               std::runtime_error);
  EXPECT_EQ(calls, 38);
}

TEST(ParallelFor, ParallelPathRethrowsLowestIndexException) {
  // Everything from 50 on throws its own index; the documented guarantee
  // (lowest task index wins, elements within a task run in order) makes
  // the first throwing element the one that is rethrown.
  try {
    ParallelFor(0, 100, 1,
                [&](int64_t i) {
                  if (i >= 50) {
                    throw std::runtime_error(std::to_string(i));
                  }
                },
                Threads(8));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "50");
  }
}

TEST(ParallelFor, NestedSectionsRunInlineWithoutDeadlock) {
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1,
              [&](int64_t) {
                ParallelFor(0, 100, 1, [&](int64_t) { ++total; },
                            Threads(4));
              },
              Threads(4));
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelForShards, PartitionsTheRangeExactly) {
  for (int shards : {1, 2, 3, 7, 16}) {
    for (int64_t n : {0, 1, 5, 100}) {
      std::vector<std::pair<int64_t, int64_t>> ranges(
          static_cast<size_t>(shards));
      ParallelForShards(10, 10 + n, shards,
                        [&](int shard, int64_t lo, int64_t hi) {
                          ranges[static_cast<size_t>(shard)] = {lo, hi};
                        });
      int64_t expected_lo = 10;
      int64_t covered = 0;
      for (const auto& [lo, hi] : ranges) {
        EXPECT_EQ(lo, expected_lo) << "shards=" << shards << " n=" << n;
        EXPECT_LE(lo, hi);
        covered += hi - lo;
        expected_lo = hi;
      }
      EXPECT_EQ(expected_lo, 10 + n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(ParallelForShards, BoundariesDependOnlyOnShardCount) {
  // The shard split is a pure function of (range, shard count); recompute
  // twice and expect identical boundaries.
  for (int run = 0; run < 2; ++run) {
    std::vector<int64_t> bounds;
    ParallelForShards(0, 1000, 7, [&](int shard, int64_t lo, int64_t hi) {
      (void)shard;
      (void)hi;
      bounds.push_back(lo);
    });
    std::sort(bounds.begin(), bounds.end());
    EXPECT_EQ(bounds.front(), 0);
    EXPECT_EQ(bounds.size(), 7u);
  }
}

// ---------------------------------------------------------------------------
// Serial-vs-parallel bit equality of the analysis paths
// ---------------------------------------------------------------------------

Schema EqualitySchema() {
  return MakeSchema({{"A", {"a0", "a1", "a2", "a3"}},
                     {"B", {"b0", "b1", "b2"}},
                     {"C", {"c0", "c1", "c2", "c3", "c4"}},
                     {"D", {"d0", "d1"}},
                     {"E", {"e0", "e1", "e2"}},
                     {"Y", {"y0", "y1", "y2"}}});
}

// Deterministic pseudo-random dataset, large enough that the sharded
// counting paths actually engage (they stay serial below ~2k rows).
Dataset PseudoRandomDataset(int64_t rows) {
  Dataset d(EqualitySchema());
  const int domains[] = {4, 3, 5, 2, 3, 3};
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<ValueCode> codes;
    for (int domain : domains) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      codes.push_back(static_cast<ValueCode>((x >> 33) %
                                             static_cast<uint64_t>(domain)));
    }
    AppendRows(&d, codes, 1);
  }
  return d;
}

std::string SerializeStore(const CubeStore& store) {
  std::ostringstream out;
  EXPECT_OK(store.Save(&out));
  return out.str();
}

TEST(ParallelEquality, CubeBuildIsBitIdenticalForAnyThreadCount) {
  const Dataset data = PseudoRandomDataset(6000);
  CubeStoreOptions serial;
  serial.parallel = Threads(1);
  ASSERT_OK_AND_ASSIGN(CubeStore reference,
                       CubeBuilder::FromDataset(data, serial));
  const std::string reference_bytes = SerializeStore(reference);
  for (int threads : {2, 3, 8}) {
    CubeStoreOptions options;
    options.parallel = Threads(threads);
    ASSERT_OK_AND_ASSIGN(CubeStore store,
                         CubeBuilder::FromDataset(data, options));
    EXPECT_EQ(store.num_records(), reference.num_records());
    EXPECT_EQ(SerializeStore(store), reference_bytes)
        << "threads=" << threads;
  }
}

TEST(ParallelEquality, CubeBuildHandlesAdversarialRowCounts) {
  // Fewer rows than threads, empty datasets, single rows: the parallel
  // configuration must degrade to the serial result, never crash.
  for (int64_t rows : {0, 1, 3, 7}) {
    const Dataset data = PseudoRandomDataset(rows);
    CubeStoreOptions serial;
    serial.parallel = Threads(1);
    ASSERT_OK_AND_ASSIGN(CubeStore reference,
                         CubeBuilder::FromDataset(data, serial));
    CubeStoreOptions parallel;
    parallel.parallel = Threads(8);
    ASSERT_OK_AND_ASSIGN(CubeStore store,
                         CubeBuilder::FromDataset(data, parallel));
    EXPECT_EQ(SerializeStore(store), SerializeStore(reference))
        << "rows=" << rows;
  }
}

TEST(ParallelEquality, StreamingAddRowMatchesShardedAddDataset) {
  const Dataset data = PseudoRandomDataset(4000);
  CubeStoreOptions options;
  options.parallel = Threads(4);
  ASSERT_OK_AND_ASSIGN(CubeBuilder sharded,
                       CubeBuilder::Make(data.schema(), options));
  ASSERT_OK(sharded.AddDataset(data));
  ASSERT_OK_AND_ASSIGN(CubeBuilder streamed,
                       CubeBuilder::Make(data.schema(), {}));
  std::vector<ValueCode> row(static_cast<size_t>(data.num_attributes()));
  for (int64_t r = 0; r < data.num_rows(); ++r) {
    for (int a = 0; a < data.num_attributes(); ++a) {
      row[static_cast<size_t>(a)] = data.code(r, a);
    }
    streamed.AddRow(row.data());
  }
  EXPECT_EQ(SerializeStore(std::move(sharded).Finish()),
            SerializeStore(std::move(streamed).Finish()));
}

TEST(ParallelEquality, MemoryBudgetClampsShardsWithoutChangingResults) {
  const Dataset data = PseudoRandomDataset(6000);
  CubeStoreOptions serial;
  serial.parallel = Threads(1);
  ASSERT_OK_AND_ASSIGN(CubeStore reference,
                       CubeBuilder::FromDataset(data, serial));
  // A budget with no headroom for shard copies forces the parallel build
  // back to serial counting; the result must not change.
  CubeStoreOptions tight;
  tight.parallel = Threads(8);
  tight.max_memory_bytes = reference.MemoryUsageBytes();
  ASSERT_OK_AND_ASSIGN(CubeStore clamped,
                       CubeBuilder::FromDataset(data, tight));
  EXPECT_EQ(SerializeStore(clamped), SerializeStore(reference));
  // Roomier budget: shards allowed, result still identical.
  CubeStoreOptions roomy;
  roomy.parallel = Threads(8);
  roomy.max_memory_bytes = reference.MemoryUsageBytes() * 4;
  ASSERT_OK_AND_ASSIGN(CubeStore sharded,
                       CubeBuilder::FromDataset(data, roomy));
  EXPECT_EQ(SerializeStore(sharded), SerializeStore(reference));
}

void ExpectSameComparison(const ComparisonResult& a,
                          const ComparisonResult& b) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  ASSERT_EQ(a.properties.size(), b.properties.size());
  for (size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].attribute, b.ranked[i].attribute) << "rank " << i;
    EXPECT_EQ(a.ranked[i].interestingness, b.ranked[i].interestingness);
    EXPECT_EQ(a.ranked[i].normalized, b.ranked[i].normalized);
  }
  for (size_t i = 0; i < a.properties.size(); ++i) {
    EXPECT_EQ(a.properties[i].attribute, b.properties[i].attribute);
    EXPECT_EQ(a.properties[i].interestingness,
              b.properties[i].interestingness);
  }
  EXPECT_EQ(a.rank_index, b.rank_index);
}

TEST(ParallelEquality, ComparatorRankingIsIdenticalForAnyThreadCount) {
  const Dataset data = PseudoRandomDataset(6000);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(data, {}));
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = 0;
  Comparator serial(&store, Threads(1));
  ASSERT_OK_AND_ASSIGN(ComparisonResult reference, serial.Compare(spec));
  for (int threads : {2, 8}) {
    Comparator comparator(&store, Threads(threads));
    ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
    ExpectSameComparison(reference, result);
  }
  // A spec-level override beats the comparator default.
  ComparisonSpec override_spec = spec;
  override_spec.parallel = Threads(8);
  ASSERT_OK_AND_ASSIGN(ComparisonResult overridden,
                       serial.Compare(override_spec));
  ExpectSameComparison(reference, overridden);
}

TEST(ParallelEquality, AllPairsSweepIsIdenticalForAnyThreadCount) {
  const Dataset data = PseudoRandomDataset(6000);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(data, {}));
  Comparator serial(&store, Threads(1));
  ASSERT_OK_AND_ASSIGN(std::vector<PairSummary> reference,
                       serial.CompareAllPairs(2, 0, /*min_population=*/1));
  ASSERT_FALSE(reference.empty());
  for (int threads : {2, 8}) {
    Comparator comparator(&store, Threads(threads));
    ASSERT_OK_AND_ASSIGN(std::vector<PairSummary> pairs,
                         comparator.CompareAllPairs(2, 0, 1));
    ASSERT_EQ(pairs.size(), reference.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      EXPECT_EQ(pairs[i].value_a, reference[i].value_a);
      EXPECT_EQ(pairs[i].value_b, reference[i].value_b);
      EXPECT_EQ(pairs[i].top_attribute, reference[i].top_attribute);
      EXPECT_EQ(pairs[i].top_interestingness,
                reference[i].top_interestingness);
      EXPECT_EQ(pairs[i].skipped, reference[i].skipped);
    }
  }
}

void ExpectSameRules(const RuleSet& a, const RuleSet& b) {
  ASSERT_EQ(a.rules().size(), b.rules().size());
  for (size_t i = 0; i < a.rules().size(); ++i) {
    const ClassRule& x = a.rules()[i];
    const ClassRule& y = b.rules()[i];
    ASSERT_EQ(x.conditions.size(), y.conditions.size()) << "rule " << i;
    for (size_t c = 0; c < x.conditions.size(); ++c) {
      EXPECT_EQ(x.conditions[c].attribute, y.conditions[c].attribute);
      EXPECT_EQ(x.conditions[c].value, y.conditions[c].value);
    }
    EXPECT_EQ(x.class_value, y.class_value);
    EXPECT_EQ(x.support_count, y.support_count);
    EXPECT_EQ(x.body_count, y.body_count);
  }
}

TEST(ParallelEquality, CarMiningIsIdenticalForAnyThreadCount) {
  const Dataset data = PseudoRandomDataset(6000);
  for (double min_support : {0.0, 0.01}) {
    CarMinerOptions serial;
    serial.min_support = min_support;
    serial.max_conditions = 2;
    serial.parallel = Threads(1);
    ASSERT_OK_AND_ASSIGN(RuleSet reference,
                         MineClassAssociationRules(data, serial));
    ASSERT_FALSE(reference.empty());
    for (int threads : {2, 3, 8}) {
      CarMinerOptions options = serial;
      options.parallel = Threads(threads);
      ASSERT_OK_AND_ASSIGN(RuleSet rules,
                           MineClassAssociationRules(data, options));
      ExpectSameRules(reference, rules);
    }
  }
}

TEST(ParallelEquality, CarMiningHandlesAdversarialRowCounts) {
  for (int64_t rows : {0, 1, 3, 7}) {
    const Dataset data = PseudoRandomDataset(rows);
    CarMinerOptions serial;
    serial.min_support = 0.0;
    serial.parallel = Threads(1);
    ASSERT_OK_AND_ASSIGN(RuleSet reference,
                         MineClassAssociationRules(data, serial));
    CarMinerOptions parallel = serial;
    parallel.parallel = Threads(8);
    ASSERT_OK_AND_ASSIGN(RuleSet rules,
                         MineClassAssociationRules(data, parallel));
    ExpectSameRules(reference, rules);
  }
}

// ---------------------------------------------------------------------------
// RankOf index
// ---------------------------------------------------------------------------

TEST(RankIndex, ComparatorResultsAnswerRankOfInConstantTime) {
  const Dataset data = PseudoRandomDataset(3000);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(data, {}));
  Comparator comparator(&store, Threads(1));
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult result, comparator.Compare(spec));
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_FALSE(result.rank_index.empty());
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    EXPECT_EQ(result.RankOf(result.ranked[i].attribute),
              static_cast<int>(i));
  }
  EXPECT_EQ(result.RankOf(spec.attribute), -1);  // base attr never ranked
  EXPECT_EQ(result.RankOf(-1), -1);
  EXPECT_EQ(result.RankOf(10000), -1);
}

TEST(RankIndex, HandAssembledResultsFallBackToLinearScan) {
  ComparisonResult result;
  AttributeComparison first;
  first.attribute = 7;
  AttributeComparison second;
  second.attribute = 2;
  result.ranked.push_back(first);
  result.ranked.push_back(second);
  // No rank_index: linear fallback.
  EXPECT_TRUE(result.rank_index.empty());
  EXPECT_EQ(result.RankOf(7), 0);
  EXPECT_EQ(result.RankOf(2), 1);
  EXPECT_EQ(result.RankOf(3), -1);
  // After rebuilding, the O(1) path answers identically.
  result.RebuildRankIndex();
  ASSERT_EQ(result.rank_index.size(), 8u);
  EXPECT_EQ(result.RankOf(7), 0);
  EXPECT_EQ(result.RankOf(2), 1);
  EXPECT_EQ(result.RankOf(3), -1);
  EXPECT_EQ(result.RankOf(100), -1);
}

}  // namespace
}  // namespace opmap
