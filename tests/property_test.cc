// Property-style parameterized tests: invariants that must hold across
// randomized workloads and configuration sweeps, exercised with
// TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include <sstream>

#include "gtest/gtest.h"
#include "opmap/car/miner.h"
#include "opmap/common/random.h"
#include "opmap/compare/comparator.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "opmap/data/csv.h"
#include "opmap/data/dataset_io.h"
#include "opmap/data/sampling.h"
#include "opmap/discretize/methods.h"
#include "opmap/stats/confidence_interval.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::MakeSchema;

// Random all-categorical dataset with the last attribute as class.
Dataset RandomDataset(uint64_t seed, int num_attrs, int domain,
                      int64_t records, double null_fraction = 0.0) {
  std::vector<std::pair<std::string, std::vector<std::string>>> spec;
  for (int a = 0; a < num_attrs; ++a) {
    std::vector<std::string> labels;
    for (int v = 0; v < domain; ++v) {
      labels.push_back("v" + std::to_string(v));
    }
    spec.emplace_back("A" + std::to_string(a), labels);
  }
  spec.emplace_back("Class", std::vector<std::string>{"c0", "c1", "c2"});
  Schema schema = MakeSchema(spec);

  Dataset d(schema);
  Rng rng(seed);
  std::vector<Cell> row(static_cast<size_t>(num_attrs) + 1);
  for (int64_t r = 0; r < records; ++r) {
    for (int a = 0; a < num_attrs; ++a) {
      if (null_fraction > 0 && rng.NextBernoulli(null_fraction)) {
        row[static_cast<size_t>(a)] = Cell::Categorical(kNullCode);
      } else {
        row[static_cast<size_t>(a)] = Cell::Categorical(
            static_cast<ValueCode>(rng.NextBounded(
                static_cast<uint64_t>(domain))));
      }
    }
    row[static_cast<size_t>(num_attrs)] = Cell::Categorical(
        static_cast<ValueCode>(rng.NextBounded(3)));
    auto st = d.AppendRow(row);
    EXPECT_TRUE(st.ok());
  }
  return d;
}

// ---------------------------------------------------------------------
// OLAP invariants over randomized cubes.
// ---------------------------------------------------------------------

class CubeOlapProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int, int>> {};

TEST_P(CubeOlapProperty, MarginalizeConservesTotal) {
  const auto [seed, domain, records] = GetParam();
  Dataset d = RandomDataset(seed, 3, domain, records);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(0, 1));
  for (int dim = 0; dim < pair->num_dims(); ++dim) {
    ASSERT_OK_AND_ASSIGN(RuleCube rolled, pair->Marginalize(dim));
    EXPECT_EQ(rolled.Total(), pair->Total());
  }
}

TEST_P(CubeOlapProperty, SlicesPartitionTheCube) {
  const auto [seed, domain, records] = GetParam();
  Dataset d = RandomDataset(seed, 3, domain, records);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(0, 2));
  // Summing slice totals over every value of a dimension gives the total.
  for (int dim = 0; dim < pair->num_dims(); ++dim) {
    int64_t sum = 0;
    for (ValueCode v = 0; v < pair->dim_size(dim); ++v) {
      ASSERT_OK_AND_ASSIGN(RuleCube slice, pair->Slice(dim, v));
      sum += slice.Total();
    }
    EXPECT_EQ(sum, pair->Total());
  }
}

TEST_P(CubeOlapProperty, DiceWithFullDomainIsIdentity) {
  const auto [seed, domain, records] = GetParam();
  Dataset d = RandomDataset(seed, 2, domain, records);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(0, 1));
  std::vector<ValueCode> all;
  for (ValueCode v = 0; v < pair->dim_size(0); ++v) all.push_back(v);
  ASSERT_OK_AND_ASSIGN(RuleCube diced, pair->Dice(0, all));
  ASSERT_EQ(diced.num_cells(), pair->num_cells());
  for (int64_t i = 0; i < diced.num_cells(); ++i) {
    EXPECT_EQ(diced.raw_counts()[i], pair->raw_counts()[i]);
  }
}

TEST_P(CubeOlapProperty, ConfidencesSumToOneOverClasses) {
  const auto [seed, domain, records] = GetParam();
  Dataset d = RandomDataset(seed, 2, domain, records);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(const RuleCube* cube, store.AttrCube(0));
  for (ValueCode v = 0; v < cube->dim_size(0); ++v) {
    const int64_t body = cube->MarginCount({v, 0}, 1);
    double sum = 0;
    for (ValueCode c = 0; c < cube->dim_size(1); ++c) {
      const double cf = cube->Confidence({v, c}, 1);
      EXPECT_GE(cf, 0.0);
      EXPECT_LE(cf, 1.0);
      sum += cf;
    }
    if (body > 0) {
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST_P(CubeOlapProperty, CubeCellsMatchBruteForceCounts) {
  const auto [seed, domain, records] = GetParam();
  Dataset d = RandomDataset(seed, 3, domain, records, /*null_fraction=*/0.05);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(1, 2));
  Rng rng(seed ^ 0xabc);
  for (int probe = 0; probe < 20; ++probe) {
    const ValueCode v1 =
        static_cast<ValueCode>(rng.NextBounded(static_cast<uint64_t>(domain)));
    const ValueCode v2 =
        static_cast<ValueCode>(rng.NextBounded(static_cast<uint64_t>(domain)));
    const ValueCode y = static_cast<ValueCode>(rng.NextBounded(3));
    int64_t expected = 0;
    for (int64_t r = 0; r < d.num_rows(); ++r) {
      if (d.code(r, 1) == v1 && d.code(r, 2) == v2 && d.class_code(r) == y) {
        ++expected;
      }
    }
    EXPECT_EQ(pair->count({v1, v2, y}), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeOlapProperty,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(2, 5, 9),
                       ::testing::Values(200, 2000)));

// ---------------------------------------------------------------------
// Comparator invariants across workloads and CI settings.
// ---------------------------------------------------------------------

struct ComparatorCase {
  uint64_t seed;
  int64_t records;
  int attrs;
  bool use_ci;
  ConfidenceLevel level;
};

class ComparatorProperty : public ::testing::TestWithParam<ComparatorCase> {
 protected:
  static Dataset MakeData(const ComparatorCase& c) {
    CallLogConfig config;
    config.num_records = c.records;
    config.num_attributes = c.attrs;
    config.num_phone_models = 5;
    config.seed = c.seed;
    config.phone_drop_multiplier = {1.0, 2.0};
    config.effects.push_back(PlantedEffect{
        "TimeOfCall", "morning", 1, kDroppedWhileInProgress, 4.0});
    auto gen = CallLogGenerator::Make(config);
    EXPECT_TRUE(gen.ok());
    return gen->Generate();
  }

  static ComparisonSpec MakeSpec(const ComparatorCase& c) {
    ComparisonSpec spec;
    spec.attribute = 0;
    spec.value_a = 0;
    spec.value_b = 1;
    spec.target_class = kDroppedWhileInProgress;
    spec.use_confidence_intervals = c.use_ci;
    spec.confidence_level = c.level;
    spec.min_population = 0;
    return spec;
  }
};

TEST_P(ComparatorProperty, ScoresAreWellFormed) {
  const ComparatorCase c = GetParam();
  Dataset d = MakeData(c);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.Compare(MakeSpec(c)));

  EXPECT_LE(r.cf1, r.cf2);
  EXPECT_GT(r.n_d1, 0);
  EXPECT_GT(r.n_d2, 0);
  double prev = std::numeric_limits<double>::infinity();
  for (const AttributeComparison& cmp : r.ranked) {
    // Ranking is by non-increasing interestingness.
    EXPECT_LE(cmp.interestingness, prev);
    prev = cmp.interestingness;
    EXPECT_GE(cmp.interestingness, 0.0);
    EXPECT_GE(cmp.normalized, 0.0);
    EXPECT_LE(cmp.normalized, 1.0 + 1e-9);
    double sum_w = 0;
    for (const ValueComparison& v : cmp.values) {
      EXPECT_GE(v.w, 0.0);
      EXPECT_GE(v.rcf1, 0.0);
      EXPECT_LE(v.rcf1, 1.0);
      EXPECT_GE(v.rcf2, 0.0);
      EXPECT_LE(v.rcf2, 1.0);
      EXPECT_EQ(v.n1 >= v.n1_target, true);
      EXPECT_EQ(v.n2 >= v.n2_target, true);
      sum_w += v.w;
    }
    // M is exactly the sum of value contributions (formula (3)).
    EXPECT_NEAR(cmp.interestingness, sum_w, 1e-9);
  }
}

TEST_P(ComparatorProperty, CubePathMatchesScanPath) {
  const ComparatorCase c = GetParam();
  Dataset d = MakeData(c);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(ComparisonResult from_cube,
                       comparator.Compare(MakeSpec(c)));
  ASSERT_OK_AND_ASSIGN(ComparisonResult from_scan,
                       CompareFromDataset(d, MakeSpec(c)));
  ASSERT_EQ(from_cube.ranked.size(), from_scan.ranked.size());
  for (size_t i = 0; i < from_cube.ranked.size(); ++i) {
    EXPECT_EQ(from_cube.ranked[i].attribute, from_scan.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(from_cube.ranked[i].interestingness,
                     from_scan.ranked[i].interestingness);
  }
}

TEST_P(ComparatorProperty, OrderOfRulesIsIrrelevant) {
  const ComparatorCase c = GetParam();
  Dataset d = MakeData(c);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ComparisonSpec forward = MakeSpec(c);
  ComparisonSpec backward = forward;
  std::swap(backward.value_a, backward.value_b);
  ASSERT_OK_AND_ASSIGN(ComparisonResult rf, comparator.Compare(forward));
  ASSERT_OK_AND_ASSIGN(ComparisonResult rb, comparator.Compare(backward));
  EXPECT_DOUBLE_EQ(rf.cf1, rb.cf1);
  EXPECT_DOUBLE_EQ(rf.cf2, rb.cf2);
  ASSERT_EQ(rf.ranked.size(), rb.ranked.size());
  for (size_t i = 0; i < rf.ranked.size(); ++i) {
    EXPECT_EQ(rf.ranked[i].attribute, rb.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(rf.ranked[i].interestingness,
                     rb.ranked[i].interestingness);
  }
}

TEST_P(ComparatorProperty, UnrelatedRowsDoNotChangeTheResult) {
  // Rows whose base-attribute value is neither compared value must not
  // influence the comparison (the sub-populations are fixed).
  const ComparatorCase c = GetParam();
  Dataset d = MakeData(c);
  ASSERT_OK_AND_ASSIGN(ComparisonResult before,
                       CompareFromDataset(d, MakeSpec(c)));
  // Append rows for phone model 3 only.
  Rng rng(c.seed ^ 0x5a5a);
  std::vector<Cell> row(static_cast<size_t>(d.num_attributes()));
  for (int extra = 0; extra < 500; ++extra) {
    for (int a = 0; a < d.num_attributes(); ++a) {
      const int domain = d.schema().attribute(a).domain();
      row[static_cast<size_t>(a)] = Cell::Categorical(
          static_cast<ValueCode>(rng.NextBounded(
              static_cast<uint64_t>(domain))));
    }
    row[0] = Cell::Categorical(3);
    ASSERT_OK(d.AppendRow(row));
  }
  ASSERT_OK_AND_ASSIGN(ComparisonResult after,
                       CompareFromDataset(d, MakeSpec(c)));
  EXPECT_DOUBLE_EQ(before.cf1, after.cf1);
  EXPECT_DOUBLE_EQ(before.cf2, after.cf2);
  ASSERT_EQ(before.ranked.size(), after.ranked.size());
  for (size_t i = 0; i < before.ranked.size(); ++i) {
    EXPECT_DOUBLE_EQ(before.ranked[i].interestingness,
                     after.ranked[i].interestingness);
  }
}

TEST_P(ComparatorProperty, CiShrinksOrKeepsScores) {
  // The revised confidences only shrink per-value contributions
  // (rcf2 <= cf2, rcf1 >= cf1), so M with CI <= M without CI.
  const ComparatorCase c = GetParam();
  Dataset d = MakeData(c);
  ComparisonSpec with_ci = MakeSpec(c);
  with_ci.use_confidence_intervals = true;
  ComparisonSpec without_ci = MakeSpec(c);
  without_ci.use_confidence_intervals = false;
  ASSERT_OK_AND_ASSIGN(ComparisonResult rc, CompareFromDataset(d, with_ci));
  ASSERT_OK_AND_ASSIGN(ComparisonResult rn,
                       CompareFromDataset(d, without_ci));
  for (const AttributeComparison& cmp : rc.ranked) {
    // Find the same attribute in the no-CI result (it may be ranked
    // elsewhere).
    for (const AttributeComparison& other : rn.ranked) {
      if (other.attribute == cmp.attribute) {
        EXPECT_LE(cmp.interestingness, other.interestingness + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ComparatorProperty,
    ::testing::Values(
        ComparatorCase{3, 5000, 8, true, ConfidenceLevel::k95},
        ComparatorCase{3, 5000, 8, false, ConfidenceLevel::k95},
        ComparatorCase{11, 20000, 12, true, ConfidenceLevel::k90},
        ComparatorCase{11, 20000, 12, true, ConfidenceLevel::k99},
        ComparatorCase{29, 2000, 6, true, ConfidenceLevel::k95},
        ComparatorCase{71, 40000, 16, false, ConfidenceLevel::k95}));

// ---------------------------------------------------------------------
// Discretizer invariants.
// ---------------------------------------------------------------------

class DiscretizerProperty
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(DiscretizerProperty, CutsAreSortedUniqueAndLabelsMatch) {
  const auto [method, bins, seed] = GetParam();
  Rng rng(seed);
  std::vector<double> values;
  std::vector<ValueCode> classes;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(rng.NextGaussian() * 10 + (i % 3) * 5);
    classes.push_back(static_cast<ValueCode>(
        rng.NextBernoulli(values.back() > 5 ? 0.6 : 0.1) ? 1 : 0));
  }
  EqualWidthDiscretizer ew(bins);
  EqualFrequencyDiscretizer ef(bins);
  EntropyMdlDiscretizer mdl;
  const Discretizer* d = method == 0
                             ? static_cast<const Discretizer*>(&ew)
                             : method == 1
                                   ? static_cast<const Discretizer*>(&ef)
                                   : static_cast<const Discretizer*>(&mdl);
  ASSERT_OK_AND_ASSIGN(auto cuts, d->ComputeCuts(values, classes, 2));
  for (size_t i = 1; i < cuts.size(); ++i) {
    EXPECT_LT(cuts[i - 1], cuts[i]);
  }
  const auto labels = IntervalLabels(cuts);
  EXPECT_EQ(labels.size(), cuts.size() + 1);
  // Every value maps into a valid interval.
  for (double v : values) {
    const ValueCode code = IntervalOf(v, cuts);
    EXPECT_GE(code, 0);
    EXPECT_LT(code, static_cast<ValueCode>(labels.size()));
  }
  // Boundary semantics: a cut value maps to the interval it closes.
  for (double cut : cuts) {
    const ValueCode at = IntervalOf(cut, cuts);
    const ValueCode above = IntervalOf(std::nextafter(cut, 1e30), cuts);
    EXPECT_EQ(above, at + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiscretizerProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(2, 4, 8),
                       ::testing::Values(13u, 17u)));

// ---------------------------------------------------------------------
// CAR miner invariants.
// ---------------------------------------------------------------------

class CarMinerProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(CarMinerProperty, RulesSatisfyThresholdsAndCounts) {
  const auto [seed, minsup] = GetParam();
  Dataset d = RandomDataset(seed, 4, 4, 500);
  CarMinerOptions opts;
  opts.min_support = minsup;
  opts.min_confidence = 0.2;
  opts.max_conditions = 2;
  ASSERT_OK_AND_ASSIGN(RuleSet rules, MineClassAssociationRules(d, opts));
  const int64_t minsup_count = static_cast<int64_t>(
      std::ceil(minsup * static_cast<double>(d.num_rows())));
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.support_count, minsup_count);
    EXPECT_GE(r.Confidence(), 0.2);
    // Conditions use distinct attributes, sorted.
    for (size_t i = 1; i < r.conditions.size(); ++i) {
      EXPECT_LT(r.conditions[i - 1].attribute, r.conditions[i].attribute);
    }
    // Counts match a dataset scan.
    int64_t sup = 0, body = 0;
    for (int64_t row = 0; row < d.num_rows(); ++row) {
      bool match = true;
      for (const Condition& cond : r.conditions) {
        if (d.code(row, cond.attribute) != cond.value) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      if (d.class_code(row) != kNullCode) ++body;
      if (d.class_code(row) == r.class_value) ++sup;
    }
    EXPECT_EQ(r.support_count, sup);
    EXPECT_EQ(r.body_count, body);
  }
}

TEST_P(CarMinerProperty, HigherSupportIsSubset) {
  const auto [seed, minsup] = GetParam();
  Dataset d = RandomDataset(seed, 4, 4, 500);
  CarMinerOptions low;
  low.min_support = minsup;
  low.max_conditions = 2;
  CarMinerOptions high = low;
  high.min_support = std::min(1.0, minsup * 2 + 0.05);
  ASSERT_OK_AND_ASSIGN(RuleSet low_rules, MineClassAssociationRules(d, low));
  ASSERT_OK_AND_ASSIGN(RuleSet high_rules,
                       MineClassAssociationRules(d, high));
  EXPECT_LE(high_rules.size(), low_rules.size());
  // Every high-threshold rule appears among the low-threshold rules.
  std::set<std::string> low_keys;
  for (const ClassRule& r : low_rules.rules()) {
    low_keys.insert(r.ToString(d.schema(), d.num_rows()));
  }
  for (const ClassRule& r : high_rules.rules()) {
    EXPECT_TRUE(low_keys.count(r.ToString(d.schema(), d.num_rows())) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CarMinerProperty,
    ::testing::Combine(::testing::Values(5u, 23u, 99u),
                       ::testing::Values(0.01, 0.05, 0.2)));

// ---------------------------------------------------------------------
// Confidence interval invariants.
// ---------------------------------------------------------------------

class CiProperty : public ::testing::TestWithParam<ConfidenceLevel> {};

TEST_P(CiProperty, IntervalsAreValidAndMonotone) {
  const ConfidenceLevel level = GetParam();
  Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    const int64_t n = static_cast<int64_t>(rng.NextBounded(10000)) + 1;
    const int64_t k = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(n + 1)));
    const ProportionInterval wald = WaldInterval(k, n, level);
    const ProportionInterval wilson = WilsonInterval(k, n, level);
    for (const auto& ci : {wald, wilson}) {
      EXPECT_GE(ci.low, 0.0);
      EXPECT_LE(ci.high, 1.0);
      EXPECT_LE(ci.low, ci.high);
      EXPECT_GE(ci.margin, 0.0);
    }
    // Larger samples with the same proportion shrink the Wald margin.
    if (n >= 2 && k % 2 == 0 && (n * 2) > 0) {
      const ProportionInterval bigger = WaldInterval(k * 2, n * 2, level);
      EXPECT_LE(bigger.margin, wald.margin + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CiProperty,
                         ::testing::Values(ConfidenceLevel::k90,
                                           ConfidenceLevel::k95,
                                           ConfidenceLevel::k99));

// ---------------------------------------------------------------------
// Sampling invariants.
// ---------------------------------------------------------------------

class SamplingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplingProperty, UnbalancedSamplingRespectsCapAndMinority) {
  const uint64_t seed = GetParam();
  CallLogConfig config;
  config.num_records = 30000;
  config.num_attributes = 6;
  config.seed = seed;
  auto gen = CallLogGenerator::Make(config);
  ASSERT_TRUE(gen.ok());
  Dataset d = gen->Generate();
  const auto before = d.ClassCounts();
  Rng rng(seed);
  ASSERT_OK_AND_ASSIGN(Dataset sampled, UnbalancedSample(d, 10.0, rng));
  const auto after = sampled.ClassCounts();
  int64_t smallest = std::numeric_limits<int64_t>::max();
  for (int64_t c : before) {
    if (c > 0) smallest = std::min(smallest, c);
  }
  for (size_t c = 0; c < after.size(); ++c) {
    // Minority classes are kept in full.
    if (before[c] <= smallest * 10) {
      EXPECT_EQ(after[c], before[c]);
    } else {
      // Majority capped near 10x the smallest class (binomial noise).
      EXPECT_LT(static_cast<double>(after[c]),
                11.5 * static_cast<double>(smallest));
    }
  }
}

TEST_P(SamplingProperty, UniformSampleIsExactSizeWithoutReplacement) {
  const uint64_t seed = GetParam();
  Schema schema = MakeSchema({{"id", [] {
                                 std::vector<std::string> v;
                                 for (int i = 0; i < 1000; ++i) {
                                   v.push_back(std::to_string(i));
                                 }
                                 return v;
                               }()},
                              {"c", {"x", "y"}}});
  Dataset d(schema);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_OK(d.AppendRow({Cell::Categorical(static_cast<ValueCode>(i)),
                           Cell::Categorical(static_cast<ValueCode>(i % 2))}));
  }
  Rng rng(seed);
  Dataset sampled = UniformSample(d, 100, rng);
  ASSERT_EQ(sampled.num_rows(), 100);
  std::set<ValueCode> seen;
  for (int64_t r = 0; r < sampled.num_rows(); ++r) {
    EXPECT_TRUE(seen.insert(sampled.code(r, 0)).second)
        << "duplicate row in without-replacement sample";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SamplingProperty,
                         ::testing::Values(1u, 12u, 123u, 1234u));

// ---------------------------------------------------------------------
// Serialization robustness: random datasets round-trip exactly, and any
// truncation of the byte stream fails cleanly instead of crashing or
// returning garbage.
// ---------------------------------------------------------------------

class SerdeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerdeProperty, DatasetRoundTripIsExact) {
  const uint64_t seed = GetParam();
  Dataset d = RandomDataset(seed, 4, 5, 300, /*null_fraction=*/0.1);
  std::stringstream buf;
  ASSERT_OK(SaveDataset(d, &buf));
  ASSERT_OK_AND_ASSIGN(Dataset loaded, LoadDataset(&buf));
  ASSERT_EQ(loaded.num_rows(), d.num_rows());
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    for (int a = 0; a < d.num_attributes(); ++a) {
      ASSERT_EQ(loaded.code(r, a), d.code(r, a));
    }
  }
}

TEST_P(SerdeProperty, TruncationAlwaysFailsCleanly) {
  const uint64_t seed = GetParam();
  Dataset d = RandomDataset(seed, 3, 4, 50);
  std::stringstream buf;
  ASSERT_OK(SaveDataset(d, &buf));
  const std::string bytes = buf.str();
  Rng rng(seed ^ 0xfeed);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t cut = static_cast<size_t>(
        rng.NextBounded(static_cast<uint64_t>(bytes.size())));
    std::stringstream truncated(bytes.substr(0, cut));
    auto result = LoadDataset(&truncated);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " succeeded";
  }
  // Cube stores: same property.
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  std::stringstream cube_buf;
  ASSERT_OK(store.Save(&cube_buf));
  const std::string cube_bytes = cube_buf.str();
  for (int trial = 0; trial < 40; ++trial) {
    const size_t cut = static_cast<size_t>(
        rng.NextBounded(static_cast<uint64_t>(cube_bytes.size())));
    std::stringstream truncated(cube_bytes.substr(0, cut));
    auto result = CubeStore::Load(&truncated);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " succeeded";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SerdeProperty,
                         ::testing::Values(2u, 31u, 444u));

// ---------------------------------------------------------------------
// Group comparison equivalence: the cube-based group path must agree with
// a brute-force scan over a dataset whose base attribute is recoded to
// {group A, group B, other} and compared with the plain single-value
// comparator.
// ---------------------------------------------------------------------

class GroupEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(GroupEquivalenceProperty, CubeGroupsMatchRecodedScan) {
  const uint64_t seed = GetParam();
  CallLogConfig config;
  config.num_records = 15000;
  config.num_attributes = 8;
  config.num_phone_models = 6;
  config.seed = seed;
  config.phone_drop_multiplier = {1.0, 2.0, 0.7, 1.5};
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));

  // Random disjoint groups over the phone models.
  Rng rng(seed ^ 0x9999);
  std::vector<ValueCode> group_a, group_b;
  for (ValueCode v = 0; v < 6; ++v) {
    const uint64_t pick = rng.NextBounded(3);
    if (pick == 0) group_a.push_back(v);
    if (pick == 1) group_b.push_back(v);
  }
  if (group_a.empty()) group_a.push_back(0);
  if (group_b.empty() || group_b == group_a) {
    group_b.clear();
    for (ValueCode v = 0; v < 6; ++v) {
      if (std::find(group_a.begin(), group_a.end(), v) == group_a.end()) {
        group_b.push_back(v);
        break;
      }
    }
  }
  ASSERT_FALSE(group_b.empty());

  GroupComparisonSpec gspec;
  gspec.attribute = 0;
  gspec.group_a = ValueGroup{group_a, false};
  gspec.group_b = ValueGroup{group_b, false};
  gspec.target_class = kDroppedWhileInProgress;
  gspec.min_population = 0;
  Comparator comparator(&store);
  auto from_cubes = comparator.CompareGroups(gspec);

  // Brute force: recode the phone attribute to {A=0, B=1, other=2} and run
  // the plain scan comparator.
  std::vector<Attribute> attrs;
  for (int a = 0; a < d.num_attributes(); ++a) {
    if (a == 0) {
      attrs.push_back(Attribute::Categorical("Grouped", {"A", "B", "other"}));
    } else {
      attrs.push_back(d.schema().attribute(a));
    }
  }
  ASSERT_OK_AND_ASSIGN(
      Schema recoded_schema,
      Schema::Make(std::move(attrs), d.schema().class_index()));
  Dataset recoded(recoded_schema);
  std::vector<Cell> row(static_cast<size_t>(d.num_attributes()));
  for (int64_t r = 0; r < d.num_rows(); ++r) {
    const ValueCode phone = d.code(r, 0);
    ValueCode g = 2;
    if (std::find(group_a.begin(), group_a.end(), phone) != group_a.end()) {
      g = 0;
    } else if (std::find(group_b.begin(), group_b.end(), phone) !=
               group_b.end()) {
      g = 1;
    }
    row[0] = Cell::Categorical(g);
    for (int a = 1; a < d.num_attributes(); ++a) {
      row[static_cast<size_t>(a)] = Cell::Categorical(d.code(r, a));
    }
    ASSERT_OK(recoded.AppendRow(row));
  }
  ComparisonSpec sspec;
  sspec.attribute = 0;
  sspec.value_a = 0;
  sspec.value_b = 1;
  sspec.target_class = kDroppedWhileInProgress;
  sspec.min_population = 0;
  auto from_scan = CompareFromDataset(recoded, sspec);

  ASSERT_EQ(from_cubes.ok(), from_scan.ok());
  if (!from_cubes.ok()) return;  // both undefined (zero confidence)
  EXPECT_DOUBLE_EQ(from_cubes->cf1, from_scan->cf1);
  EXPECT_DOUBLE_EQ(from_cubes->cf2, from_scan->cf2);
  EXPECT_EQ(from_cubes->n_d1, from_scan->n_d1);
  EXPECT_EQ(from_cubes->n_d2, from_scan->n_d2);
  ASSERT_EQ(from_cubes->ranked.size(), from_scan->ranked.size());
  for (size_t i = 0; i < from_cubes->ranked.size(); ++i) {
    EXPECT_EQ(from_cubes->ranked[i].attribute,
              from_scan->ranked[i].attribute);
    EXPECT_DOUBLE_EQ(from_cubes->ranked[i].interestingness,
                     from_scan->ranked[i].interestingness);
  }
  ASSERT_EQ(from_cubes->properties.size(), from_scan->properties.size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GroupEquivalenceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------
// CSV robustness: random byte mutations of a valid CSV must either parse
// (possibly into different values) or fail cleanly — never crash.
// ---------------------------------------------------------------------

class CsvFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzProperty, MutatedCsvNeverCrashes) {
  const uint64_t seed = GetParam();
  std::string csv = "phone,rssi,result\n";
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    csv += "ph" + std::to_string(rng.NextBounded(3)) + "," +
           std::to_string(-60.0 - static_cast<double>(rng.NextBounded(40))) +
           "," + (rng.NextBernoulli(0.1) ? "bad" : "ok") + "\n";
  }
  CsvReadOptions opts;
  opts.class_column = "result";
  const char kJunk[] = {',', '\n', '"', '\0', 'x', '-', '.', '?'};
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = csv;
    const int edits = 1 + static_cast<int>(rng.NextBounded(5));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = static_cast<size_t>(
          rng.NextBounded(static_cast<uint64_t>(mutated.size())));
      mutated[pos] = kJunk[rng.NextBounded(sizeof(kJunk))];
    }
    std::istringstream in(mutated);
    auto result = ReadCsvStream(in, opts);
    if (result.ok()) {
      // Whatever parsed must be internally consistent.
      EXPECT_GE(result->num_rows(), 0);
      EXPECT_EQ(result->schema().class_attribute().name(), "result");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CsvFuzzProperty,
                         ::testing::Values(5u, 55u, 555u));

// ---------------------------------------------------------------------
// OLAP session equivalence: a session's navigation must match the same
// operations applied directly to cubes.
// ---------------------------------------------------------------------

class SessionProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionProperty, RandomNavigationMatchesDirectOps) {
  const uint64_t seed = GetParam();
  Dataset d = RandomDataset(seed, 4, 4, 1500);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  const Schema& schema = store.schema();

  ExplorationSession session(&store);
  ASSERT_OK(session.OpenAttribute(schema.attribute(0).name()));
  ASSERT_OK(session.DrillDown(schema.attribute(1).name()));

  // Mirror: the direct pair cube.
  ASSERT_OK_AND_ASSIGN(const RuleCube* pair, store.PairCube(0, 1));
  RuleCube mirror = *pair;

  Rng rng(seed);
  for (int step = 0; step < 6; ++step) {
    const RuleCube& cur = session.current();
    if (cur.num_dims() <= 1) break;
    // Pick a random non-class dimension and randomly slice or roll up.
    std::vector<int> dims;
    for (int dim = 0; dim < cur.num_dims(); ++dim) {
      if (cur.dim_attribute(dim) != schema.class_index()) dims.push_back(dim);
    }
    if (dims.empty()) break;
    const int dim = dims[static_cast<size_t>(
        rng.NextBounded(dims.size()))];
    const std::string attr_name = cur.dim_name(dim);
    if (rng.NextBernoulli(0.5)) {
      const ValueCode v = static_cast<ValueCode>(
          rng.NextBounded(static_cast<uint64_t>(cur.dim_size(dim))));
      ASSERT_OK(session.Slice(attr_name, cur.label(dim, v)));
      ASSERT_OK_AND_ASSIGN(mirror, mirror.Slice(dim, v));
    } else {
      ASSERT_OK(session.RollUp(attr_name));
      ASSERT_OK_AND_ASSIGN(mirror, mirror.Marginalize(dim));
    }
    const RuleCube& after = session.current();
    ASSERT_EQ(after.num_cells(), mirror.num_cells());
    for (int64_t i = 0; i < after.num_cells(); ++i) {
      ASSERT_EQ(after.raw_counts()[i], mirror.raw_counts()[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SessionProperty,
                         ::testing::Values(3u, 17u, 99u, 256u));

}  // namespace
}  // namespace opmap
