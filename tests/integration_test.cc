// End-to-end reproduction of the paper's case study (Section V.B) on
// synthetic call logs with a known ground truth: generate -> pipeline ->
// explore -> compare -> verify the actionable knowledge is surfaced.

#include "gtest/gtest.h"
#include "opmap/baselines/decision_tree.h"
#include "opmap/baselines/rule_ranking.h"
#include "opmap/car/miner.h"
#include "opmap/core/opportunity_map.h"
#include "opmap/data/call_log.h"
#include "opmap/data/manufacturing.h"
#include "test_util.h"

namespace opmap {
namespace {

class CaseStudyTest : public ::testing::Test {
 protected:
  static constexpr int kBadPhone = 2;

  void SetUp() override {
    CallLogConfig config;
    config.num_records = 120000;
    config.num_attributes = 41;  // the case study data set has 41 attributes
    config.num_phone_models = 10;
    config.num_property_attributes = 1;
    // ph3 is the bad phone: slightly worse overall, much worse in the
    // morning (the planted root cause engineers should find).
    config.phone_drop_multiplier = {1.0, 1.0, 1.6};
    config.effects.push_back(PlantedEffect{
        "TimeOfCall", "morning", kBadPhone, kDroppedWhileInProgress, 6.0});
    ASSERT_OK_AND_ASSIGN(CallLogGenerator gen,
                         CallLogGenerator::Make(config));
    generator_ = std::make_unique<CallLogGenerator>(std::move(gen));
    ASSERT_OK_AND_ASSIGN(
        OpportunityMap map,
        OpportunityMap::FromDataset(generator_->Generate(), {}));
    map_ = std::make_unique<OpportunityMap>(std::move(map));
  }

  std::unique_ptr<CallLogGenerator> generator_;
  std::unique_ptr<OpportunityMap> map_;
};

TEST_F(CaseStudyTest, OverviewRendersAll41Attributes) {
  ASSERT_OK_AND_ASSIGN(std::string overview, map_->Overview());
  for (int a : map_->cubes().attributes()) {
    EXPECT_NE(overview.find(map_->schema().attribute(a).name()),
              std::string::npos);
  }
}

TEST_F(CaseStudyTest, DetailShowsPhoneDropRates) {
  ASSERT_OK_AND_ASSIGN(std::string detail, map_->Detail("PhoneModel"));
  EXPECT_NE(detail.find("ph03"), std::string::npos);
  EXPECT_NE(detail.find("dropped-while-in-progress"), std::string::npos);
}

TEST_F(CaseStudyTest, ComparisonFindsPlantedCauseAtRankOne) {
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult result,
      map_->Compare("PhoneModel", "ph01", "ph03",
                    "dropped-while-in-progress"));
  // The bad phone must have a higher drop rate overall.
  EXPECT_GT(result.cf2, result.cf1);
  // TimeOfCall (the planted cause) must rank first among ~40 attributes.
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_EQ(result.ranked[0].attribute, generator_->GroundTruthAttribute());
  // The morning value carries the dominant contribution.
  const AttributeComparison& top = result.ranked[0];
  ASSERT_OK_AND_ASSIGN(ValueCode morning,
                       map_->schema().attribute(top.attribute).CodeOf(
                           "morning"));
  double max_w = 0;
  ValueCode max_v = -1;
  for (const ValueComparison& v : top.values) {
    if (v.w > max_w) {
      max_w = v.w;
      max_v = v.value;
    }
  }
  EXPECT_EQ(max_v, morning);
}

TEST_F(CaseStudyTest, PropertyAttributeIsSegregatedNotRanked) {
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult result,
      map_->Compare("PhoneModel", "ph01", "ph03",
                    "dropped-while-in-progress"));
  ASSERT_OK_AND_ASSIGN(int hw, map_->schema().IndexOf("HardwareVersion1"));
  EXPECT_EQ(result.RankOf(hw), -1);
  ASSERT_EQ(result.properties.size(), 1u);
  EXPECT_EQ(result.properties[0].attribute, hw);
}

TEST_F(CaseStudyTest, ComparisonViewRendersFig7Equivalent) {
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult result,
      map_->Compare("PhoneModel", "ph01", "ph03",
                    "dropped-while-in-progress"));
  const std::string top_attr =
      map_->schema().attribute(result.ranked[0].attribute).name();
  ASSERT_OK_AND_ASSIGN(std::string view,
                       map_->ComparisonView(result, top_attr));
  EXPECT_NE(view.find("ph01"), std::string::npos);
  EXPECT_NE(view.find("ph03"), std::string::npos);
  EXPECT_NE(view.find("~"), std::string::npos);  // CI whisker present
}

TEST_F(CaseStudyTest, InfluenceRankingSeesPhoneModel) {
  ASSERT_OK_AND_ASSIGN(auto influence, map_->RankInfluence());
  // PhoneModel and TimeOfCall must be among the most influential
  // attributes (they drive the failure process).
  int phone_rank = -1;
  int time_rank = -1;
  for (size_t i = 0; i < influence.size(); ++i) {
    if (influence[i].attribute == 0) phone_rank = static_cast<int>(i);
    if (influence[i].attribute == 1) time_rank = static_cast<int>(i);
  }
  EXPECT_GE(phone_rank, 0);
  EXPECT_LT(phone_rank, 6);
  EXPECT_GE(time_rank, 0);
  EXPECT_LT(time_rank, 6);
}

// The classifier baseline misses the planted knowledge: its rule list does
// not contain the (PhoneModel=ph03, TimeOfCall=morning) combination the
// comparator surfaces — the completeness problem in action.
TEST_F(CaseStudyTest, DecisionTreeMissesActionableRule) {
  DecisionTreeOptions opts;
  opts.max_depth = 8;
  opts.min_leaf_size = 50;  // standard pruning
  ASSERT_OK_AND_ASSIGN(DecisionTree tree,
                       DecisionTree::Train(map_->data(), opts));
  RuleSet rules = tree.ExtractRules();
  ASSERT_OK_AND_ASSIGN(ValueCode morning,
                       map_->schema().attribute(1).CodeOf("morning"));
  bool found = false;
  for (const ClassRule& r : rules.rules()) {
    bool has_phone = false;
    bool has_morning = false;
    for (const Condition& c : r.conditions) {
      if (c.attribute == 0 && c.value == kBadPhone) has_phone = true;
      if (c.attribute == 1 && c.value == morning) has_morning = true;
    }
    if (has_phone && has_morning &&
        r.class_value == kDroppedWhileInProgress) {
      found = true;
    }
  }
  // With 96%+ majority class the tree predicts "ended-successfully"
  // everywhere and never materializes the failure rule.
  EXPECT_FALSE(found);
}

// Restricted mining drills below the comparison result: fixing the bad
// phone and the morning, longer rules are mined on demand.
TEST_F(CaseStudyTest, RestrictedMiningDrillsDown) {
  ASSERT_OK_AND_ASSIGN(ValueCode morning,
                       map_->schema().attribute(1).CodeOf("morning"));
  ASSERT_OK_AND_ASSIGN(
      RuleSet rules,
      map_->MineRestrictedRules(
          {Condition{0, kBadPhone}, Condition{1, morning}}, 0.00005, 0.0,
          3));
  ASSERT_FALSE(rules.empty());
  bool saw_drop_rule = false;
  for (const ClassRule& r : rules.rules()) {
    EXPECT_GE(r.conditions.size(), 2u);
    if (r.class_value == kDroppedWhileInProgress) saw_drop_rule = true;
  }
  EXPECT_TRUE(saw_drop_rule);
}

// --- Second domain end-to-end: manufacturing with continuous sensors. ---

TEST(ManufacturingCaseStudy, PipelineFindsHotOvenAndSegregatesFixtures) {
  ManufacturingConfig config;
  config.num_rows = 60000;
  ASSERT_OK_AND_ASSIGN(ManufacturingGenerator gen,
                       ManufacturingGenerator::Make(config));
  // Continuous sensor columns go through entropy-MDL discretization.
  OpportunityMapOptions options;
  options.discretize_method = DiscretizeMethod::kEntropyMdl;
  ASSERT_OK_AND_ASSIGN(OpportunityMap map,
                       OpportunityMap::FromDataset(gen.Generate(), options));
  EXPECT_TRUE(map.schema().AllCategorical());

  ASSERT_OK_AND_ASSIGN(ComparisonResult result,
                       map.Compare("Line", "A", "B", "defect"));
  ASSERT_OK_AND_ASSIGN(
      int temp,
      map.schema().IndexOf(ManufacturingGenerator::GroundTruthAttributeName()));
  EXPECT_EQ(result.ranked[0].attribute, temp);
  // The hottest interval carries the dominant contribution.
  const AttributeComparison& top = result.ranked[0];
  double max_w = 0;
  ValueCode max_v = -1;
  for (const ValueComparison& v : top.values) {
    if (v.w > max_w) {
      max_w = v.w;
      max_v = v.value;
    }
  }
  EXPECT_EQ(max_v, map.schema().attribute(temp).domain() - 1);
  // Fixture attribute segregated as a property.
  ASSERT_OK_AND_ASSIGN(int fixture, map.schema().IndexOf("FixtureId"));
  bool fixture_is_property = false;
  for (const AttributeComparison& cmp : result.properties) {
    if (cmp.attribute == fixture) fixture_is_property = true;
  }
  EXPECT_TRUE(fixture_is_property);
  // vs-rest from the other direction: what makes hot ovens bad? The line.
  const std::string temp_name =
      ManufacturingGenerator::GroundTruthAttributeName();
  const Attribute& temp_attr = map.schema().attribute(temp);
  ASSERT_OK_AND_ASSIGN(
      ComparisonResult vs_rest,
      map.CompareVsRest(temp_name, temp_attr.label(temp_attr.domain() - 1),
                        "defect"));
  ASSERT_OK_AND_ASSIGN(int line, map.schema().IndexOf("Line"));
  EXPECT_EQ(vs_rest.ranked[0].attribute, line);
}

}  // namespace
}  // namespace opmap
