// WAL frame and segment tests: round-trips, torn-tail truncation on the
// open segment, hard errors on sealed-segment damage, size-based rolling,
// and the FaultPlan repro string plus the power-cut / torn-write model of
// FaultInjectingEnv that the crash drills build on.

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/io.h"
#include "opmap/ingest/wal.h"
#include "test_util.h"

namespace opmap {
namespace {

std::string TempDirFor(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_OK(Env::Default()->CreateDir(dir));
  return dir;
}

void WipeSegments(const std::string& dir) {
  for (uint64_t id = 1; id < 32; ++id) {
    (void)Env::Default()->DeleteFile(dir + "/" + WalSegmentFileName(id));
    (void)Env::Default()->DeleteFile(dir + "/" + WalOpenFileName(id));
  }
}

std::vector<WalRecord> ReadAll(const std::string& path, bool tolerate,
                               WalSegmentStats* stats = nullptr,
                               Status* status_out = nullptr) {
  std::vector<WalRecord> records;
  Status st = ReadWalSegment(
      Env::Default(), path, tolerate,
      [&](const WalRecord& r) -> Status {
        records.push_back(r);
        return Status::OK();
      },
      stats);
  if (status_out != nullptr) {
    *status_out = st;
  } else {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return records;
}

TEST(WalNames, StableFormats) {
  EXPECT_EQ(WalSegmentFileName(7), "wal-000007.log");
  EXPECT_EQ(WalOpenFileName(123456), "wal-123456.open");
}

TEST(WalWriter, AppendAndReplayOpenSegment) {
  const std::string dir = TempDirFor("wal_roundtrip");
  WipeSegments(dir);
  ASSERT_OK_AND_ASSIGN(WalWriter writer,
                       WalWriter::Open(Env::Default(), dir, 1, WalOptions{}));
  ASSERT_OK(writer.Append(1, "first"));
  ASSERT_OK(writer.Append(2, std::string(1000, 'x')));
  ASSERT_OK(writer.Append(3, ""));  // empty payloads are legal frames
  ASSERT_OK(writer.Close());

  WalSegmentStats stats;
  const std::vector<WalRecord> records =
      ReadAll(dir + "/" + WalOpenFileName(1), /*tolerate=*/true, &stats);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[0].payload, "first");
  EXPECT_EQ(records[1].payload, std::string(1000, 'x'));
  EXPECT_EQ(records[2].seq, 3u);
  EXPECT_TRUE(records[2].payload.empty());
  EXPECT_EQ(stats.records, 3);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(WalWriter, RollSealsAndContinues) {
  const std::string dir = TempDirFor("wal_roll");
  WipeSegments(dir);
  WalOptions options;
  options.max_segment_bytes = 64;  // tiny: every append rolls
  ASSERT_OK_AND_ASSIGN(WalWriter writer,
                       WalWriter::Open(Env::Default(), dir, 1, options));
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_OK(writer.Append(seq, std::string(80, 'a' + char(seq))));
  }
  ASSERT_OK(writer.Close());
  EXPECT_EQ(writer.segments_sealed(), 3);
  EXPECT_EQ(writer.segment_id(), 4u);

  // Segments 1..3 are sealed .log files, segment 4 is the open tail.
  uint64_t next_seq = 1;
  for (uint64_t id = 1; id <= 3; ++id) {
    const std::vector<WalRecord> records =
        ReadAll(dir + "/" + WalSegmentFileName(id), /*tolerate=*/false);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].seq, next_seq++);
  }
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/" + WalSegmentFileName(4)));
  const std::vector<WalRecord> tail =
      ReadAll(dir + "/" + WalOpenFileName(4), /*tolerate=*/true);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 4u);
}

TEST(WalReplay, TornTailTruncatesAtLastValidFrame) {
  const std::string dir = TempDirFor("wal_torn");
  WipeSegments(dir);
  ASSERT_OK_AND_ASSIGN(WalWriter writer,
                       WalWriter::Open(Env::Default(), dir, 1, WalOptions{}));
  ASSERT_OK(writer.Append(1, "keep-one"));
  ASSERT_OK(writer.Append(2, "keep-two"));
  ASSERT_OK(writer.Close());
  const std::string path = dir + "/" + WalOpenFileName(1);

  std::string bytes;
  ASSERT_OK(ReadFileToString(Env::Default(), path, &bytes));
  // Chop mid-way through the second frame: header survives, payload torn.
  const std::string torn =
      bytes.substr(0, bytes.size() - 3) + std::string();
  {
    std::remove(path.c_str());
    ASSERT_OK_AND_ASSIGN(auto file, Env::Default()->NewWritableFile(path));
    ASSERT_OK(file->Append(torn));
    ASSERT_OK(file->Close());
  }

  WalSegmentStats stats;
  const std::vector<WalRecord> records =
      ReadAll(path, /*tolerate=*/true, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "keep-one");
  EXPECT_TRUE(stats.tail_truncated);
  EXPECT_GT(stats.truncated_bytes, 0);

  // The same damage in a sealed segment is a hard error naming the file.
  Status st;
  (void)ReadAll(path, /*tolerate=*/false, nullptr, &st);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find(path), std::string::npos);
}

TEST(WalReplay, BitFlipIsCaughtByFrameCrc) {
  const std::string dir = TempDirFor("wal_flip");
  WipeSegments(dir);
  ASSERT_OK_AND_ASSIGN(WalWriter writer,
                       WalWriter::Open(Env::Default(), dir, 1, WalOptions{}));
  ASSERT_OK(writer.Append(1, "intact"));
  ASSERT_OK(writer.Append(2, "flipped"));
  ASSERT_OK(writer.Close());
  const std::string path = dir + "/" + WalOpenFileName(1);

  std::string bytes;
  ASSERT_OK(ReadFileToString(Env::Default(), path, &bytes));
  bytes[bytes.size() - 2] ^= 0x10;  // inside the second frame's payload
  {
    std::remove(path.c_str());
    ASSERT_OK_AND_ASSIGN(auto file, Env::Default()->NewWritableFile(path));
    ASSERT_OK(file->Append(bytes));
    ASSERT_OK(file->Close());
  }

  WalSegmentStats stats;
  const std::vector<WalRecord> records =
      ReadAll(path, /*tolerate=*/true, &stats);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "intact");
  EXPECT_TRUE(stats.tail_truncated);
}

TEST(WalReplay, OversizedLengthFieldRejected) {
  const std::string dir = TempDirFor("wal_oversize");
  const std::string path = dir + "/" + WalOpenFileName(1);
  {
    std::remove(path.c_str());
    ASSERT_OK_AND_ASSIGN(auto file, Env::Default()->NewWritableFile(path));
    // length = 0xffffffff, then garbage: must not attempt a 4 GiB read.
    ASSERT_OK(file->Append(std::string(16, '\xff')));
    ASSERT_OK(file->Close());
  }
  Status st;
  (void)ReadAll(path, /*tolerate=*/false, nullptr, &st);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("exceeds the limit"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FaultPlan repro strings
// ---------------------------------------------------------------------------

TEST(FaultPlan, ToStringParseRoundTrip) {
  FaultPlan plan;
  plan.op = FaultOp::kRename;
  plan.nth = 7;
  plan.mode = CorruptionMode::kBitFlip;
  plan.seed = 12345;
  plan.power_cut = true;
  const std::string line = plan.ToString();
  EXPECT_EQ(line, "op=rename nth=7 mode=flip seed=12345 cut=1");
  ASSERT_OK_AND_ASSIGN(FaultPlan parsed, FaultPlan::Parse(line));
  EXPECT_EQ(parsed.op, plan.op);
  EXPECT_EQ(parsed.nth, plan.nth);
  EXPECT_EQ(parsed.mode, plan.mode);
  EXPECT_EQ(parsed.seed, plan.seed);
  EXPECT_EQ(parsed.power_cut, plan.power_cut);
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  EXPECT_FALSE(FaultPlan::Parse("").ok());
  EXPECT_FALSE(FaultPlan::Parse("nth=1").ok());            // missing op
  EXPECT_FALSE(FaultPlan::Parse("op=write").ok());         // missing nth
  EXPECT_FALSE(FaultPlan::Parse("op=write nth=0").ok());   // nth >= 1
  EXPECT_FALSE(FaultPlan::Parse("op=bogus nth=1").ok());
  EXPECT_FALSE(FaultPlan::Parse("op=write nth=1 mode=zalgo").ok());
}

TEST(FaultOpNames, RoundTripAllOps) {
  for (int i = 0; i < kNumFaultOps; ++i) {
    const FaultOp op = static_cast<FaultOp>(i);
    ASSERT_OK_AND_ASSIGN(FaultOp parsed, ParseFaultOp(FaultOpName(op)));
    EXPECT_EQ(parsed, op);
  }
  EXPECT_FALSE(ParseFaultOp("frobnicate").ok());
}

// ---------------------------------------------------------------------------
// Power-cut and torn-write model
// ---------------------------------------------------------------------------

TEST(PowerCut, EverythingFailsAfterTrigger) {
  FaultInjectingEnv env;
  FaultPlan plan;
  plan.op = FaultOp::kSync;
  plan.nth = 1;
  plan.power_cut = true;
  env.ArmPlan(plan);

  const std::string path = ::testing::TempDir() + "/wal_powercut.bin";
  ASSERT_OK_AND_ASSIGN(auto file, env.NewWritableFile(path));
  ASSERT_OK(file->Append(std::string("before")));
  EXPECT_FALSE(file->Sync().ok());  // the trigger
  EXPECT_TRUE(env.PowerLost());
  // The machine is off: every further operation fails, any op kind.
  EXPECT_FALSE(file->Append(std::string("after")).ok());
  EXPECT_FALSE(env.NewWritableFile(path).ok());
  EXPECT_FALSE(env.RenameFile(path, path + ".x").ok());
  EXPECT_FALSE(env.CreateDir(::testing::TempDir() + "/wal_pc_dir").ok());
  env.Reset();
  EXPECT_FALSE(env.PowerLost());
  ASSERT_OK_AND_ASSIGN(auto after, env.NewWritableFile(path));
  ASSERT_OK(after->Close());
}

TEST(TornWrite, LeavesSeedChosenPrefix) {
  const std::string path = ::testing::TempDir() + "/wal_torn_prefix.bin";
  const std::string payload = "0123456789abcdef";
  FaultInjectingEnv env;
  FaultPlan plan;
  plan.op = FaultOp::kWrite;
  plan.nth = 1;
  plan.mode = CorruptionMode::kTornWrite;
  plan.seed = 5;  // prefix length = 5 % 16 = 5
  plan.power_cut = false;
  env.ArmPlan(plan);

  std::remove(path.c_str());
  ASSERT_OK_AND_ASSIGN(auto file, env.NewWritableFile(path));
  Status st = file->Append(payload);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find(plan.ToString()), std::string::npos)
      << "injected error should embed the repro string: " << st.ToString();
  ASSERT_OK(file->Close());

  std::string on_disk;
  ASSERT_OK(ReadFileToString(Env::Default(), path, &on_disk));
  EXPECT_EQ(on_disk, "01234");
}

TEST(TornWrite, BitFlipCorruptsExactlyOneBit) {
  const std::string path = ::testing::TempDir() + "/wal_torn_flip.bin";
  const std::string payload(32, '\0');
  FaultInjectingEnv env;
  FaultPlan plan;
  plan.op = FaultOp::kWrite;
  plan.nth = 1;
  plan.mode = CorruptionMode::kBitFlip;
  plan.seed = 21;  // prefix = 21, flipped byte = 3, flipped bit = 5
  plan.power_cut = false;
  env.ArmPlan(plan);

  std::remove(path.c_str());
  ASSERT_OK_AND_ASSIGN(auto file, env.NewWritableFile(path));
  ASSERT_FALSE(file->Append(payload).ok());
  ASSERT_OK(file->Close());

  std::string on_disk;
  ASSERT_OK(ReadFileToString(Env::Default(), path, &on_disk));
  ASSERT_EQ(on_disk.size(), 21u);
  int flipped_bits = 0;
  for (char c : on_disk) {
    for (int b = 0; b < 8; ++b) flipped_bits += (c >> b) & 1;
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(TornWrite, WalAppendUnderPowerCutRecoversAcknowledgedPrefix) {
  // End-to-end: tear the 3rd WAL append mid-write with the power out;
  // replay must surface exactly the two acknowledged records.
  const std::string dir = TempDirFor("wal_e2e_cut");
  WipeSegments(dir);
  FaultInjectingEnv env;
  ASSERT_OK_AND_ASSIGN(WalWriter writer,
                       WalWriter::Open(&env, dir, 1, WalOptions{}));
  ASSERT_OK(writer.Append(1, "acked-one"));
  ASSERT_OK(writer.Append(2, "acked-two"));
  FaultPlan plan;
  plan.op = FaultOp::kWrite;
  plan.nth = env.OpCount(FaultOp::kWrite) + 1;
  plan.mode = CorruptionMode::kTornWrite;
  plan.seed = 11;
  plan.power_cut = true;
  env.ArmPlan(plan);
  EXPECT_FALSE(writer.Append(3, "lost").ok());
  EXPECT_TRUE(env.PowerLost());

  WalSegmentStats stats;
  const std::vector<WalRecord> records =
      ReadAll(dir + "/" + WalOpenFileName(1), /*tolerate=*/true, &stats);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].payload, "acked-one");
  EXPECT_EQ(records[1].payload, "acked-two");
  EXPECT_TRUE(stats.tail_truncated);
}

}  // namespace
}  // namespace opmap
