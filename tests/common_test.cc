#include <cmath>
#include <set>

#include "gtest/gtest.h"
#include "opmap/common/random.h"
#include "opmap/common/status.h"
#include "opmap/common/string_util.h"
#include "test_util.h"

namespace opmap {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::InvalidArgument("").code(), Status::NotFound("").code(),
      Status::AlreadyExists("").code(),   Status::OutOfRange("").code(),
      Status::IOError("").code(),         Status::NotImplemented("").code(),
      Status::Internal("").code()};
  EXPECT_EQ(codes.size(), 7u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> Doubler(int x) {
  OPMAP_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v + 1;
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(10), 21);
  EXPECT_FALSE(Doubler(0).ok());
}

// Compile test: OPMAP_ASSIGN_OR_RETURN must work twice in one scope even
// when both expansions land on the same source line, as happens when
// another macro expands to several of them. The former __LINE__-based
// temporary redeclared the same name and failed to compile.
#define OPMAP_TEST_SUM_TWO(a, b)                     \
  OPMAP_ASSIGN_OR_RETURN(int va, ParsePositive(a)); \
  OPMAP_ASSIGN_OR_RETURN(int vb, ParsePositive(b)); \
  return va + vb

Result<int> SumViaNestedMacro(int a, int b) { OPMAP_TEST_SUM_TWO(a, b); }

TEST(Result, AssignOrReturnComposesInsideNestedMacros) {
  EXPECT_EQ(*SumViaNestedMacro(1, 2), 6);  // ParsePositive doubles inputs.
  EXPECT_FALSE(SumViaNestedMacro(-1, 2).ok());
  EXPECT_FALSE(SumViaNestedMacro(1, -2).ok());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliRespectsExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0;
  double sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, WeightedFollowsWeights) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(Zipf, UniformWhenSkewZero) {
  Rng rng(17);
  ZipfDistribution dist(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[dist.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(Zipf, SkewPrefersLowRanks) {
  Rng rng(17);
  ZipfDistribution dist(8, 1.2);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) ++counts[dist.Sample(rng)];
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \n "), "");
}

TEST(StringUtil, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringUtil, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPercent(0.1234, 1), "12.3%");
}

TEST(StringUtil, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtil, ParseInt64) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

}  // namespace
}  // namespace opmap
