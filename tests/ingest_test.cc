// Streaming-ingestion suite: WAL-backed appends, recovery-on-open,
// atomic compaction, delta/batch equivalence, and the crash drill — a
// sweep of power-cut injection points (mid-append, pre-seal during the
// segment seal, mid-compaction, during GC) × corruption modes (torn
// write, bit flip) × writer thread counts, asserting after every crash
// that recovery reproduces the clean batch build over the acknowledged
// prefix byte for byte.

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "opmap/common/io.h"
#include "opmap/core/session.h"
#include "opmap/ingest/ingester.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::MakeSchema;

Schema DrillSchema() {
  return MakeSchema({{"region", {"north", "south", "east"}},
                     {"tier", {"basic", "plus"}},
                     {"outcome", {"neg", "pos"}}});
}

// Deterministic 5-row batch keyed by id: every run of every drill builds
// the same rows for the same batch number.
Dataset DrillBatch(const Schema& schema, uint64_t id) {
  Dataset batch(schema);
  ValueCode codes[3];
  for (uint64_t r = 0; r < 5; ++r) {
    const uint64_t h = id * 131 + r * 17;
    codes[0] = static_cast<ValueCode>(h % 3);
    codes[1] = static_cast<ValueCode>((h / 3) % 2);
    codes[2] = static_cast<ValueCode>((h / 7) % 2);
    batch.AppendRowUnchecked(codes);
  }
  return batch;
}

// The ground truth: one clean one-shot build over the given batches.
std::string CleanBuildBytes(const Schema& schema,
                            const std::vector<uint64_t>& batch_ids,
                            const CubeStoreOptions& options) {
  Dataset all(schema);
  ValueCode codes[3];
  for (uint64_t id : batch_ids) {
    const Dataset batch = DrillBatch(schema, id);
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      for (int a = 0; a < 3; ++a) codes[a] = batch.code(r, a);
      all.AppendRowUnchecked(codes);
    }
  }
  auto store = CubeBuilder::FromDataset(all, options);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  std::ostringstream buf;
  EXPECT_OK(store->Save(&buf));
  return buf.str();
}

std::string StoreBytes(const CubeStore& store) {
  std::ostringstream buf;
  EXPECT_OK(store.Save(&buf));
  return buf.str();
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  if (Env::Default()->FileExists(dir + "/MANIFEST")) {
    (void)Env::Default()->DeleteFile(dir + "/MANIFEST");
  }
  for (uint64_t id = 1; id < 64; ++id) {
    (void)Env::Default()->DeleteFile(dir + "/" + WalSegmentFileName(id));
    (void)Env::Default()->DeleteFile(dir + "/" + WalOpenFileName(id));
    char buf[32];
    std::snprintf(buf, sizeof(buf), "cubes-%06llu.opmc",
                  static_cast<unsigned long long>(id));
    (void)Env::Default()->DeleteFile(dir + "/" + buf);
    (void)Env::Default()->DeleteFile(dir + "/" + buf + ".tmp");
  }
  return dir;
}

IngestOptions DrillOptions() {
  IngestOptions options;
  options.wal.sync_every_append = true;
  options.wal.max_segment_bytes = 256;  // a few batches per segment
  return options;
}

// ---------------------------------------------------------------------------
// Happy paths
// ---------------------------------------------------------------------------

TEST(Ingester, AppendSnapshotMatchesBatchBuild) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_basic");
  ASSERT_OK_AND_ASSIGN(
      auto ing,
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
  std::vector<uint64_t> ids;
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_OK_AND_ASSIGN(const uint64_t seq,
                         ing->AppendBatch(DrillBatch(schema, id)));
    EXPECT_EQ(seq, id);  // single writer: seqs are the batch numbers
    ids.push_back(id);
  }
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  EXPECT_EQ(StoreBytes(*snapshot),
            CleanBuildBytes(schema, ids, DrillOptions().cube));
  const IngestStats stats = ing->GetStats();
  EXPECT_EQ(stats.batches_appended, 5);
  EXPECT_EQ(stats.rows_appended, 25);
  EXPECT_EQ(stats.next_seq, 6u);
  ASSERT_OK(ing->Close());
}

TEST(Ingester, SnapshotIsCachedAndImmutable) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_snapshot");
  ASSERT_OK_AND_ASSIGN(
      auto ing,
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
  ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 1)).status());
  ASSERT_OK_AND_ASSIGN(auto snap1, ing->Snapshot());
  ASSERT_OK_AND_ASSIGN(auto snap1_again, ing->Snapshot());
  EXPECT_EQ(snap1.get(), snap1_again.get());  // unchanged → same store
  const std::string before = StoreBytes(*snap1);
  ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 2)).status());
  ASSERT_OK_AND_ASSIGN(auto snap2, ing->Snapshot());
  EXPECT_NE(snap1.get(), snap2.get());
  // The old snapshot still serves the old data after appends + compaction.
  ASSERT_OK(ing->Compact());
  EXPECT_EQ(StoreBytes(*snap1), before);
  ASSERT_OK(ing->Close());
}

TEST(Ingester, ReopenReplaysWal) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_reopen");
  {
    ASSERT_OK_AND_ASSIGN(
        auto ing,
        Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
    for (uint64_t id = 1; id <= 4; ++id) {
      ASSERT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
    }
    ASSERT_OK(ing->Close());
  }
  ASSERT_OK_AND_ASSIGN(
      auto ing, Ingester::Open(Env::Default(), dir, DrillOptions()));
  EXPECT_EQ(ing->GetStats().replayed_records, 4);
  EXPECT_EQ(ing->GetStats().replayed_rows, 20);
  EXPECT_FALSE(ing->GetStats().tail_truncated);
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  EXPECT_EQ(StoreBytes(*snapshot),
            CleanBuildBytes(schema, {1, 2, 3, 4}, DrillOptions().cube));
  // Appends continue with fresh sequence numbers.
  ASSERT_OK_AND_ASSIGN(const uint64_t seq,
                       ing->AppendBatch(DrillBatch(schema, 5)));
  EXPECT_EQ(seq, 5u);
  ASSERT_OK(ing->Close());
}

TEST(Ingester, RepeatedReopensReplayEveryOpenSegment) {
  // Recovery never appends to an existing `.open` segment, so each
  // crash/reopen cycle leaves another `.open` behind. Replay must walk
  // through ALL of them — stopping at the first one would silently drop
  // every later segment's acknowledged batches.
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_multi_open");
  {
    ASSERT_OK_AND_ASSIGN(
        auto ing,
        Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 1)).status());
    ASSERT_OK(ing->Close());  // close leaves wal-000001.open in place
  }
  {
    ASSERT_OK_AND_ASSIGN(
        auto ing, Ingester::Open(Env::Default(), dir, DrillOptions()));
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 2)).status());
    ASSERT_OK(ing->Close());  // batch 2 lives in wal-000002.open
  }
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/" + WalOpenFileName(1)));
  EXPECT_TRUE(Env::Default()->FileExists(dir + "/" + WalOpenFileName(2)));
  ASSERT_OK_AND_ASSIGN(
      auto ing, Ingester::Open(Env::Default(), dir, DrillOptions()));
  EXPECT_EQ(ing->GetStats().replayed_records, 2);
  EXPECT_EQ(ing->GetStats().next_seq, 3u);
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  EXPECT_EQ(StoreBytes(*snapshot),
            CleanBuildBytes(schema, {1, 2}, DrillOptions().cube));
  ASSERT_OK(ing->Close());
}

TEST(Ingester, CompactFoldsGarbageCollectsAndStaysEquivalent) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_compact");
  ASSERT_OK_AND_ASSIGN(
      auto ing,
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
  for (uint64_t id = 1; id <= 3; ++id) {
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
  }
  ASSERT_OK(ing->Compact());
  IngestStats stats = ing->GetStats();
  EXPECT_EQ(stats.cube_generation, 2u);
  EXPECT_EQ(stats.last_applied_seq, 3u);
  EXPECT_EQ(stats.compactions, 1);
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/cubes-000001.opmc"));
  EXPECT_FALSE(Env::Default()->FileExists(dir + "/" + WalSegmentFileName(1)));

  // Post-compaction appends land in the delta on top of the new base.
  for (uint64_t id = 4; id <= 6; ++id) {
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
  }
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  EXPECT_EQ(StoreBytes(*snapshot),
            CleanBuildBytes(schema, {1, 2, 3, 4, 5, 6}, DrillOptions().cube));
  ASSERT_OK(ing->Close());

  // Recovery after a compaction replays only the unfolded tail.
  ASSERT_OK_AND_ASSIGN(
      auto reopened, Ingester::Open(Env::Default(), dir, DrillOptions()));
  EXPECT_EQ(reopened->GetStats().replayed_records, 3);
  ASSERT_OK_AND_ASSIGN(auto recovered, reopened->Snapshot());
  EXPECT_EQ(StoreBytes(*recovered),
            CleanBuildBytes(schema, {1, 2, 3, 4, 5, 6}, DrillOptions().cube));
  ASSERT_OK(reopened->Close());
}

TEST(Ingester, OpenOrCreateAndSchemaChecks) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_ooc");
  {
    ASSERT_OK_AND_ASSIGN(auto ing,
                         Ingester::OpenOrCreate(Env::Default(), dir, schema,
                                                DrillOptions()));
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 1)).status());
    ASSERT_OK(ing->Close());
  }
  ASSERT_OK_AND_ASSIGN(auto ing,
                       Ingester::OpenOrCreate(Env::Default(), dir, schema,
                                              DrillOptions()));
  EXPECT_EQ(ing->GetStats().replayed_records, 1);
  // Create on an initialized directory is refused.
  EXPECT_FALSE(
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()).ok());
  // Mismatched batches are rejected before touching the WAL.
  const Schema other = MakeSchema({{"x", {"a", "b"}}, {"y", {"n", "p"}}});
  Dataset bad(other);
  const ValueCode row[2] = {0, 1};
  bad.AppendRowUnchecked(row);
  const Status st = ing->AppendBatch(bad).status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  ASSERT_OK(ing->Close());
}

TEST(Ingester, AutoCompactionEveryNBatches) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_autocompact");
  IngestOptions options = DrillOptions();
  options.compact_every_batches = 2;
  ASSERT_OK_AND_ASSIGN(
      auto ing, Ingester::Create(Env::Default(), dir, schema, options));
  std::vector<uint64_t> ids;
  for (uint64_t id = 1; id <= 7; ++id) {
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
    ids.push_back(id);
  }
  EXPECT_EQ(ing->GetStats().compactions, 3);
  EXPECT_EQ(ing->GetStats().last_applied_seq, 6u);
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  EXPECT_EQ(StoreBytes(*snapshot),
            CleanBuildBytes(schema, ids, options.cube));
  ASSERT_OK(ing->Close());
}

// ---------------------------------------------------------------------------
// Re-encoding external rows against the stored schema
// ---------------------------------------------------------------------------

TEST(ReencodeForSchema, MapsLabelsAndIgnoresExtraColumns) {
  const Schema stored = DrillSchema();
  // Same semantic columns, different order/codes, plus an extra column.
  const Schema incoming = MakeSchema({{"extra", {"zzz"}},
                                      {"tier", {"plus", "basic"}},
                                      {"region", {"south", "north"}},
                                      {"outcome", {"pos", "neg"}}});
  Dataset src(incoming);
  const ValueCode row[4] = {0, 0, 0, 0};  // zzz, plus, south, pos
  src.AppendRowUnchecked(row);
  ASSERT_OK_AND_ASSIGN(Dataset out, ReencodeForSchema(src, stored));
  ASSERT_EQ(out.num_rows(), 1);
  EXPECT_EQ(out.code(0, 0), 1);  // region=south
  EXPECT_EQ(out.code(0, 1), 1);  // tier=plus
  EXPECT_EQ(out.code(0, 2), 1);  // outcome=pos
}

TEST(ReencodeForSchema, NamesTheProblemColumn) {
  const Schema stored = DrillSchema();
  const Schema missing = MakeSchema({{"region", {"north"}}, {"outcome", {"neg"}}});
  Dataset no_tier(missing);
  const Status st = ReencodeForSchema(no_tier, stored).status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("tier"), std::string::npos);

  const Schema unknown = MakeSchema({{"region", {"north", "mars"}},
                                     {"tier", {"basic"}},
                                     {"outcome", {"neg"}}});
  Dataset bad_label(unknown);
  const ValueCode row[3] = {1, 0, 0};  // region=mars: not in the dictionary
  bad_label.AppendRowUnchecked(row);
  const Status st2 = ReencodeForSchema(bad_label, stored).status();
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.message().find("mars"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live compaction vs. concurrent serving
// ---------------------------------------------------------------------------

TEST(Ingester, CompactionBumpsCacheEpochAndPreservesQueryResults) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_serving");
  ASSERT_OK_AND_ASSIGN(
      auto ing,
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
  for (uint64_t id = 1; id <= 6; ++id) {
    ASSERT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
  }
  ASSERT_OK_AND_ASSIGN(auto snapshot, ing->Snapshot());
  QueryEngine engine(snapshot.get());
  ing->set_cache(engine.cache());
  ing->set_publish_hook(
      [&engine](const CubeStore* store, const std::string& cube_path) {
        EXPECT_FALSE(cube_path.empty());
        engine.SetStore(store);
        return Status::OK();
      });

  ASSERT_OK_AND_ASSIGN(auto before, engine.CompareAllPairs(0, 1, 1));
  const uint64_t epoch_before = engine.GetCacheStats().epoch;

  // Compacting publishes the same data under a new generation: the cache
  // epoch moves, the engine serves the new base, and the query mix is
  // identical before and after.
  ASSERT_OK(ing->Compact());
  EXPECT_GT(engine.GetCacheStats().epoch, epoch_before);
  ASSERT_OK_AND_ASSIGN(auto after, engine.CompareAllPairs(0, 1, 1));
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].value_a, after[i].value_a);
    EXPECT_EQ(before[i].value_b, after[i].value_b);
    EXPECT_EQ(before[i].cf_a, after[i].cf_a);
    EXPECT_EQ(before[i].cf_b, after[i].cf_b);
    EXPECT_EQ(before[i].top_interestingness, after[i].top_interestingness);
  }
  (void)snapshot;  // the pre-compaction snapshot outlives the swap
  ASSERT_OK(ing->Close());
}

TEST(Ingester, PublishHookFailureIsCountedNotFatal) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_publish_fail");
  ASSERT_OK_AND_ASSIGN(
      auto ing,
      Ingester::Create(Env::Default(), dir, schema, DrillOptions()));
  ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 1)).status());
  int calls = 0;
  ing->set_publish_hook(
      [&calls](const CubeStore* store, const std::string& /*cube_path*/) {
        ++calls;
        EXPECT_NE(store, nullptr);
        return Status::Internal("subscriber rejected the store");
      });

  // The hook fails but the compaction itself commits: data stays served,
  // the failure lands in the stats instead of the return value.
  ASSERT_OK(ing->Compact());
  EXPECT_EQ(calls, 1);
  const IngestStats stats = ing->GetStats();
  EXPECT_EQ(stats.publish_failures, 1);
  EXPECT_NE(stats.last_publish_error.find("subscriber rejected"),
            std::string::npos);
  ASSERT_OK(ing->Compact());
  EXPECT_EQ(ing->GetStats().publish_failures, 2);
  ASSERT_OK(ing->Close());
}

// ---------------------------------------------------------------------------
// Crash drill
// ---------------------------------------------------------------------------

struct DrillOutcome {
  std::map<uint64_t, uint64_t> acked;  // seq -> batch id
  std::optional<uint64_t> inflight;    // the one batch that saw an I/O error
  bool power_lost = false;
};

constexpr uint64_t kDrillBatches = 9;

// Runs the append workload (9 deterministic batches, auto-compaction
// every 3) against `env` with `threads` writers. Thread-safe bookkeeping
// of which batches were acknowledged with which sequence numbers.
DrillOutcome RunDrillWorkload(FaultInjectingEnv* env, const std::string& dir,
                              const Schema& schema, int threads) {
  IngestOptions options = DrillOptions();
  options.compact_every_batches = 3;
  auto created = Ingester::Create(env, dir, schema, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Ingester> ing = created.MoveValue();

  DrillOutcome outcome;
  std::mutex mu;
  std::atomic<uint64_t> next_id{1};
  auto writer = [&]() {
    for (;;) {
      const uint64_t id = next_id.fetch_add(1);
      if (id > kDrillBatches) return;
      auto appended = ing->AppendBatch(DrillBatch(schema, id));
      std::lock_guard<std::mutex> lock(mu);
      if (appended.ok()) {
        outcome.acked[appended.value()] = id;
        continue;
      }
      // Exactly one append observes the injected I/O error (the latched
      // ingester serializes appends); it alone may have reached the WAL.
      if (appended.status().code() == StatusCode::kIOError) {
        EXPECT_FALSE(outcome.inflight.has_value())
            << "two batches saw I/O errors: " << *outcome.inflight << " and "
            << id;
        outcome.inflight = id;
      } else {
        EXPECT_EQ(appended.status().code(), StatusCode::kFailedPrecondition)
            << appended.status().ToString();
      }
      return;
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) pool.emplace_back(writer);
  for (std::thread& t : pool) t.join();
  outcome.power_lost = env->PowerLost();
  if (!outcome.power_lost) {
    const Status st = ing->Close();
    EXPECT_TRUE(st.ok() || !st.ok());  // close errors are legal post-fault
  }
  return outcome;
}

// Recovery invariant checked at every injection point: reopening with a
// healthy filesystem yields exactly the acknowledged batches — plus at
// most the single in-flight one — and the recovered cube store is byte
// identical to a clean one-shot build over those batches.
void VerifyRecovery(const std::string& dir, const Schema& schema,
                    const DrillOutcome& outcome) {
  IngestOptions options = DrillOptions();
  auto reopened = Ingester::Open(Env::Default(), dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<Ingester> ing = reopened.MoveValue();

  const IngestStats stats = ing->GetStats();
  const uint64_t recovered = stats.next_seq - 1;
  const uint64_t acked = outcome.acked.size();
  ASSERT_GE(recovered, acked) << "an acknowledged batch was lost";
  ASSERT_LE(recovered, acked + 1) << "an unacknowledged batch was invented";

  std::vector<uint64_t> expected_ids;
  for (const auto& [seq, id] : outcome.acked) expected_ids.push_back(id);
  if (recovered == acked + 1) {
    ASSERT_TRUE(outcome.inflight.has_value())
        << "recovered one extra batch but no append saw an I/O error";
    expected_ids.push_back(*outcome.inflight);
  }
  auto snapshot = ing->Snapshot();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(StoreBytes(**snapshot),
            CleanBuildBytes(schema, expected_ids, options.cube))
      << "recovered counts diverge from the clean batch build";
  ASSERT_OK(ing->Close());
}

// Ops ticked during the append phase of a fault-free golden run; the
// sweep arms one injection at every occurrence of every interesting op.
struct GoldenCounts {
  int64_t before[kNumFaultOps] = {};
  int64_t after[kNumFaultOps] = {};
};

GoldenCounts GoldenRun(const std::string& dir, const Schema& schema) {
  GoldenCounts golden;
  FaultInjectingEnv env;  // unarmed: pure pass-through with counters
  IngestOptions options = DrillOptions();
  options.compact_every_batches = 3;
  auto created = Ingester::Create(&env, dir, schema, options);
  EXPECT_TRUE(created.ok()) << created.status().ToString();
  for (int i = 0; i < kNumFaultOps; ++i) {
    golden.before[i] = env.OpCount(static_cast<FaultOp>(i));
  }
  std::unique_ptr<Ingester> ing = created.MoveValue();
  for (uint64_t id = 1; id <= kDrillBatches; ++id) {
    EXPECT_OK(ing->AppendBatch(DrillBatch(schema, id)).status());
  }
  EXPECT_OK(ing->Close());
  for (int i = 0; i < kNumFaultOps; ++i) {
    golden.after[i] = env.OpCount(static_cast<FaultOp>(i));
  }
  return golden;
}

void RunDrillCase(const FaultPlan& plan, int threads, const Schema& schema) {
  SCOPED_TRACE("repro: " + plan.ToString() + " threads=" +
               std::to_string(threads));
  const std::string dir = FreshDir("ingest_drill");
  FaultInjectingEnv env;
  env.ArmPlan(plan);
  const DrillOutcome outcome = RunDrillWorkload(&env, dir, schema, threads);
  VerifyRecovery(dir, schema, outcome);
}

TEST(CrashDrill, EveryInjectionPointRecoversSingleThread) {
  const Schema schema = DrillSchema();
  const GoldenCounts golden = GoldenRun(FreshDir("ingest_golden"), schema);

  // writes tear (mid-append / mid-compaction); sync and rename faults hit
  // the durability points (pre-seal, manifest commit); delete faults hit
  // the post-commit GC.
  const FaultOp kOps[] = {FaultOp::kWrite, FaultOp::kSync, FaultOp::kRename,
                          FaultOp::kDelete};
  const CorruptionMode kModes[] = {CorruptionMode::kTornWrite,
                                   CorruptionMode::kBitFlip};
  int cases = 0;
  for (const FaultOp op : kOps) {
    const int i = static_cast<int>(op);
    const int64_t span = golden.after[i] - golden.before[i];
    ASSERT_GT(span, 0) << FaultOpName(op)
                       << " never happens during the append phase";
    for (const CorruptionMode mode : kModes) {
      for (int64_t k = 1; k <= span; ++k) {
        FaultPlan plan;
        plan.op = op;
        plan.nth = golden.before[i] + k;
        plan.mode = mode;
        plan.seed = 1009 * static_cast<uint64_t>(k) + 17 * i;
        plan.power_cut = true;
        RunDrillCase(plan, /*threads=*/1, schema);
        ++cases;
      }
    }
  }
  EXPECT_GT(cases, 50);  // the sweep really covered the op space
}

TEST(CrashDrill, InjectionPointsRecoverUnderConcurrentWriters) {
  const Schema schema = DrillSchema();
  const GoldenCounts golden = GoldenRun(FreshDir("ingest_golden_mt"), schema);
  const FaultOp kOps[] = {FaultOp::kWrite, FaultOp::kSync, FaultOp::kRename};
  for (const int threads : {2, 8}) {
    for (const FaultOp op : kOps) {
      const int i = static_cast<int>(op);
      const int64_t span = golden.after[i] - golden.before[i];
      ASSERT_GT(span, 0);
      // Strided sweep: concurrency changes nothing about the op sequence
      // (appends are serialized), so spot checks across the span suffice.
      const int64_t stride = span / 4 > 0 ? span / 4 : 1;
      int64_t k = 1;
      for (int step = 0; step < 4 && k <= span; ++step, k += stride) {
        FaultPlan plan;
        plan.op = op;
        plan.nth = golden.before[i] + k;
        plan.mode = (step % 2 == 0) ? CorruptionMode::kTornWrite
                                    : CorruptionMode::kBitFlip;
        plan.seed = 7919 * static_cast<uint64_t>(k) + i;
        plan.power_cut = true;
        RunDrillCase(plan, threads, schema);
      }
    }
  }
}

TEST(CrashDrill, LatchedIngesterRefusesFurtherAppends) {
  const Schema schema = DrillSchema();
  const std::string dir = FreshDir("ingest_latch");
  FaultInjectingEnv env;
  IngestOptions options = DrillOptions();
  auto created = Ingester::Create(&env, dir, schema, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<Ingester> ing = created.MoveValue();
  ASSERT_OK(ing->AppendBatch(DrillBatch(schema, 1)).status());

  FaultPlan plan;
  plan.op = FaultOp::kWrite;
  plan.nth = env.OpCount(FaultOp::kWrite) + 1;
  plan.mode = CorruptionMode::kTornWrite;
  plan.seed = 3;
  plan.power_cut = false;  // disk heals, but the ingester must stay down
  env.ArmPlan(plan);
  EXPECT_EQ(ing->AppendBatch(DrillBatch(schema, 2)).status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(ing->AppendBatch(DrillBatch(schema, 3)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ing->Compact().code(), StatusCode::kFailedPrecondition);

  // Reopen is the documented way back: batch 1 must be there.
  VerifyRecovery(dir, schema,
                 DrillOutcome{{{1, 1}}, std::optional<uint64_t>(2), false});
}

}  // namespace
}  // namespace opmap
