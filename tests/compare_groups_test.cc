// Tests for the group / vs-rest / all-pairs extensions of the comparator.

#include "gtest/gtest.h"
#include "opmap/compare/alternatives.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/call_log.h"
#include "test_util.h"

namespace opmap {
namespace {

using test::AppendRows;
using test::MakeSchema;

Schema PhoneSchema() {
  return MakeSchema({{"PhoneModel", {"ph1", "ph2", "ph3", "ph4"}},
                     {"TimeOfCall", {"morning", "afternoon", "evening"}},
                     {"Class", {"ok", "drop"}}});
}

void AddCalls(Dataset* d, ValueCode phone, ValueCode time, int64_t total,
              int64_t drops) {
  AppendRows(d, {phone, time, 1}, drops);
  AppendRows(d, {phone, time, 0}, total - drops);
}

// ph1/ph2 form the good family; ph3/ph4 the bad one, whose extra drops
// concentrate in the morning.
CubeStore FamilyStore() {
  Dataset d(PhoneSchema());
  for (ValueCode phone : {0, 1}) {
    for (ValueCode t : {0, 1, 2}) AddCalls(&d, phone, t, 1000, 20);
  }
  for (ValueCode phone : {2, 3}) {
    AddCalls(&d, phone, 0, 1000, 150);
    AddCalls(&d, phone, 1, 1000, 20);
    AddCalls(&d, phone, 2, 1000, 20);
  }
  auto store = CubeBuilder::FromDataset(d);
  EXPECT_TRUE(store.ok());
  return store.MoveValue();
}

TEST(ValueGroup, Labels) {
  const Attribute attr = Attribute::Categorical("p", {"a", "b", "c"});
  EXPECT_EQ(ValueGroup::Of(1).Label(attr), "b");
  EXPECT_EQ(ValueGroup::AllBut(1).Label(attr), "not(b)");
  EXPECT_EQ((ValueGroup{{0, 2}, false}).Label(attr), "a|c");
  EXPECT_EQ((ValueGroup{{0, 2}, true}).Label(attr), "not(a|c)");
}

TEST(CompareGroups, FamilyVsFamilyFindsCause) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  GroupComparisonSpec spec;
  spec.attribute = 0;
  spec.group_a = ValueGroup{{0, 1}, false};  // good family
  spec.group_b = ValueGroup{{2, 3}, false};  // bad family
  spec.target_class = 1;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.CompareGroups(spec));
  EXPECT_EQ(r.label_a, "ph1|ph2");
  EXPECT_EQ(r.label_b, "ph3|ph4");
  EXPECT_FALSE(r.swapped);
  EXPECT_EQ(r.n_d1, 6000);
  EXPECT_EQ(r.n_d2, 6000);
  ASSERT_EQ(r.ranked.size(), 1u);  // only TimeOfCall is a candidate
  EXPECT_EQ(r.ranked[0].attribute, 1);
  // The morning value carries the contribution.
  double max_w = 0;
  ValueCode max_v = -1;
  for (const ValueComparison& v : r.ranked[0].values) {
    if (v.w > max_w) {
      max_w = v.w;
      max_v = v.value;
    }
  }
  EXPECT_EQ(max_v, 0);
}

TEST(CompareGroups, MatchesSingleValueCompare) {
  // Group {v} vs {w} must equal the classic single-value comparison.
  CubeStore store = FamilyStore();
  Comparator comparator(&store);

  ComparisonSpec single;
  single.attribute = 0;
  single.value_a = 0;
  single.value_b = 2;
  single.target_class = 1;
  single.min_population = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult rs, comparator.Compare(single));

  GroupComparisonSpec group;
  group.attribute = 0;
  group.group_a = ValueGroup::Of(0);
  group.group_b = ValueGroup::Of(2);
  group.target_class = 1;
  group.min_population = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult rg, comparator.CompareGroups(group));

  EXPECT_DOUBLE_EQ(rs.cf1, rg.cf1);
  EXPECT_DOUBLE_EQ(rs.cf2, rg.cf2);
  ASSERT_EQ(rs.ranked.size(), rg.ranked.size());
  for (size_t i = 0; i < rs.ranked.size(); ++i) {
    EXPECT_EQ(rs.ranked[i].attribute, rg.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(rs.ranked[i].interestingness,
                     rg.ranked[i].interestingness);
    for (size_t k = 0; k < rs.ranked[i].values.size(); ++k) {
      EXPECT_EQ(rs.ranked[i].values[k].n1, rg.ranked[i].values[k].n1);
      EXPECT_EQ(rs.ranked[i].values[k].n2, rg.ranked[i].values[k].n2);
    }
  }
}

TEST(CompareGroups, SwapsWhenGroupAIsWorse) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  GroupComparisonSpec spec;
  spec.attribute = 0;
  spec.group_a = ValueGroup{{2, 3}, false};  // bad family given first
  spec.group_b = ValueGroup{{0, 1}, false};
  spec.target_class = 1;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.CompareGroups(spec));
  EXPECT_TRUE(r.swapped);
  EXPECT_EQ(r.label_a, "ph1|ph2");
  EXPECT_EQ(r.label_b, "ph3|ph4");
  EXPECT_LT(r.cf1, r.cf2);
}

TEST(CompareGroups, RejectsOverlapAndEmptyGroups) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  GroupComparisonSpec spec;
  spec.attribute = 0;
  spec.target_class = 1;
  spec.group_a = ValueGroup{{0, 1}, false};
  spec.group_b = ValueGroup{{1, 2}, false};  // overlaps on ph2
  EXPECT_FALSE(comparator.CompareGroups(spec).ok());

  spec.group_a = ValueGroup{{}, false};  // empty
  spec.group_b = ValueGroup::Of(0);
  EXPECT_FALSE(comparator.CompareGroups(spec).ok());

  spec.group_a = ValueGroup::Of(0);
  spec.group_b = ValueGroup{{9}, false};  // out of domain
  EXPECT_FALSE(comparator.CompareGroups(spec).ok());

  // Complement overlap: {0} vs not(1) overlap on 0.
  spec.group_a = ValueGroup::Of(0);
  spec.group_b = ValueGroup::AllBut(1);
  EXPECT_FALSE(comparator.CompareGroups(spec).ok());
}

TEST(CompareVsRest, EquivalentToComplementGroups) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       comparator.CompareVsRest(0, 2, 1));
  // ph3 vs everything else: ph3 is the bad side.
  EXPECT_EQ(r.label_b, "ph3");
  EXPECT_EQ(r.label_a, "not(ph3)");
  EXPECT_EQ(r.n_d1 + r.n_d2, store.num_records());
  EXPECT_EQ(r.ranked[0].attribute, 1);
}

TEST(CompareVsRest, TimeDimensionFindsPhone) {
  // The symmetric query: what makes mornings bad? Answer: the bad family.
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(ComparisonResult r,
                       comparator.CompareVsRest(1, 0, 1));
  EXPECT_EQ(r.label_b, "morning");
  ASSERT_EQ(r.ranked.size(), 1u);
  EXPECT_EQ(r.ranked[0].attribute, 0);  // PhoneModel explains the mornings
  // ph3 and ph4 both carry contributions.
  EXPECT_GT(r.ranked[0].values[2].w, 0.0);
  EXPECT_GT(r.ranked[0].values[3].w, 0.0);
}

TEST(CompareAllPairs, RanksPairsByContrast) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(auto pairs, comparator.CompareAllPairs(0, 1, 10));
  ASSERT_EQ(pairs.size(), 6u);  // C(4,2)
  // Top pairs must cross the family boundary (good phone vs bad phone).
  const PairSummary& top = pairs[0];
  EXPECT_FALSE(top.skipped);
  EXPECT_LT(top.value_a, 2);
  EXPECT_GE(top.value_b, 2);
  EXPECT_EQ(top.top_attribute, 1);
  EXPECT_LE(top.cf_a, top.cf_b);
  // Within-family pairs have near-zero contrast and sort last among the
  // non-skipped ones.
  const PairSummary& last = pairs.back();
  EXPECT_LT(last.top_interestingness, top.top_interestingness);
  // Formatting smoke test.
  const std::string table =
      FormatPairSummaries(pairs, store.schema(), 0, 3);
  EXPECT_NE(table.find("good vs bad"), std::string::npos);
  EXPECT_NE(table.find("more pairs"), std::string::npos);
}

TEST(CompareAllPairs, RespectsMinPopulation) {
  Dataset d(PhoneSchema());
  AddCalls(&d, 0, 0, 1000, 10);
  AddCalls(&d, 1, 0, 1000, 30);
  AddCalls(&d, 2, 0, 5, 1);  // tiny population, must be excluded
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(auto pairs, comparator.CompareAllPairs(0, 1, 100));
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].value_a, 0);
  EXPECT_EQ(pairs[0].value_b, 1);
}

TEST(CompareAllPairs, MarksUncomparablePairsSkipped) {
  Dataset d(PhoneSchema());
  AddCalls(&d, 0, 0, 1000, 5);
  AddCalls(&d, 1, 0, 1000, 0);  // perfect phone: cf = 0, ratio undefined
  AddCalls(&d, 2, 0, 1000, 50);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(auto pairs, comparator.CompareAllPairs(0, 1, 100));
  ASSERT_EQ(pairs.size(), 3u);
  // Every pair involving the zero-confidence phone on the good side is
  // uncomparable (the expected-confidence ratio cf2/cf1 is undefined).
  int skipped = 0;
  for (const auto& p : pairs) skipped += p.skipped ? 1 : 0;
  EXPECT_EQ(skipped, 2);
  EXPECT_FALSE(pairs[0].skipped);  // ph1 vs ph3 is comparable
  EXPECT_EQ(pairs[0].value_a, 0);
  EXPECT_EQ(pairs[0].value_b, 2);
  EXPECT_TRUE(pairs.back().skipped);  // skipped pairs sort last
}

// --- All-classes sweep. ---

TEST(CompareAllClasses, OneResultPerFailureClass) {
  CallLogConfig config;
  config.num_records = 40000;
  config.num_attributes = 10;
  config.phone_drop_multiplier = {1.0, 1.0, 2.0};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", 2, kDroppedWhileInProgress, 5.0});
  config.effects.push_back(PlantedEffect{
      "Attr004", "v0", 2, kFailedDuringSetup, 6.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ASSERT_OK_AND_ASSIGN(auto per_class, comparator.CompareAllClasses(0, 0, 2));
  // All three classes comparable here (success class included).
  ASSERT_EQ(per_class.size(), 3u);
  // Each failure class points at its own planted cause.
  ASSERT_OK_AND_ASSIGN(int attr004, store.schema().IndexOf("Attr004"));
  for (const auto& [cls, result] : per_class) {
    if (cls == kDroppedWhileInProgress) {
      EXPECT_EQ(result.ranked[0].attribute, 1);  // TimeOfCall
    } else if (cls == kFailedDuringSetup) {
      EXPECT_EQ(result.ranked[0].attribute, attr004);
    }
    EXPECT_EQ(result.spec.target_class, cls);
  }
  // Spec errors propagate.
  EXPECT_FALSE(comparator.CompareAllClasses(0, 0, 0).ok());
  EXPECT_FALSE(comparator.CompareAllClasses(99, 0, 1).ok());
}

// --- Degenerate domains. ---

TEST(Comparator, SingleValueAttributeScoresZeroWithoutCi) {
  // A candidate attribute with one value carries no information: its only
  // value's ratio equals the overall ratio exactly, so F = 0 and M = 0.
  Schema schema = MakeSchema({{"PhoneModel", {"ph1", "ph2"}},
                              {"Constant", {"only"}},
                              {"Class", {"ok", "drop"}}});
  Dataset d(schema);
  AppendRows(&d, {0, 0, 1}, 20);
  AppendRows(&d, {0, 0, 0}, 980);
  AppendRows(&d, {1, 0, 1}, 40);
  AppendRows(&d, {1, 0, 0}, 960);
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = 1;
  spec.use_confidence_intervals = false;
  spec.min_population = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.Compare(spec));
  ASSERT_EQ(r.ranked.size(), 1u);
  EXPECT_DOUBLE_EQ(r.ranked[0].interestingness, 0.0);
}

// --- Contextual comparison (drill-down follow-up query). ---

TEST(CompareWithinContext, RestrictsToContextRows) {
  // Outside the morning the phones are identical; the planted second
  // factor (Weather=rain hurts ph3 only in the morning) is invisible to a
  // global comparison but dominant within the morning context.
  Schema schema = MakeSchema({{"PhoneModel", {"ph1", "ph3"}},
                              {"TimeOfCall", {"morning", "evening"}},
                              {"Weather", {"clear", "rain"}},
                              {"Class", {"ok", "drop"}}});
  Dataset d(schema);
  auto add = [&](ValueCode phone, ValueCode time, ValueCode weather,
                 int64_t total, int64_t drops) {
    AppendRows(&d, {phone, time, weather, 1}, drops);
    AppendRows(&d, {phone, time, weather, 0}, total - drops);
  };
  for (ValueCode w : {0, 1}) {
    add(0, 1, w, 2000, 40);  // evening: both phones 2%
    add(1, 1, w, 2000, 40);
    add(0, 0, w, 2000, 40);  // ph1 mornings: 2%
  }
  add(1, 0, 0, 2000, 60);   // ph3 morning clear: 3%
  add(1, 0, 1, 2000, 300);  // ph3 morning rain: 15%

  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = 1;
  spec.min_population = 0;

  ASSERT_OK_AND_ASSIGN(
      ComparisonResult within,
      CompareWithinContext(d, {Condition{1, 0}}, spec));  // morning only
  ASSERT_OK_AND_ASSIGN(int weather, schema.IndexOf("Weather"));
  EXPECT_EQ(within.ranked[0].attribute, weather);
  EXPECT_EQ(within.n_d1 + within.n_d2, 8000);  // morning records only
  EXPECT_NE(within.label_b.find("TimeOfCall=morning"), std::string::npos);

  // Context validation.
  EXPECT_FALSE(
      CompareWithinContext(d, {Condition{0, 0}}, spec).ok());  // base attr
  EXPECT_FALSE(
      CompareWithinContext(d, {Condition{3, 0}}, spec).ok());  // class
  EXPECT_FALSE(
      CompareWithinContext(d, {Condition{1, 9}}, spec).ok());  // bad value
  EXPECT_FALSE(CompareWithinContext(
                   d, {Condition{1, 0}, Condition{1, 1}}, spec)
                   .ok());  // duplicate attr (and empty intersection)
}

TEST(CompareWithinContext, EmptyContextMatchesPlainComparison) {
  CallLogConfig config;
  config.num_records = 10000;
  config.num_attributes = 8;
  config.phone_drop_multiplier = {1.0, 2.0};
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 1;
  spec.target_class = kDroppedWhileInProgress;
  spec.min_population = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult plain, CompareFromDataset(d, spec));
  ASSERT_OK_AND_ASSIGN(ComparisonResult ctx,
                       CompareWithinContext(d, {}, spec));
  ASSERT_EQ(plain.ranked.size(), ctx.ranked.size());
  for (size_t i = 0; i < plain.ranked.size(); ++i) {
    EXPECT_EQ(plain.ranked[i].attribute, ctx.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(plain.ranked[i].interestingness,
                     ctx.ranked[i].interestingness);
  }
}

// --- Alternative measures (ablation support). ---

TEST(Alternatives, MeasureNames) {
  EXPECT_STREQ(ComparisonMeasureName(ComparisonMeasure::kPaperM), "paper-M");
  EXPECT_STREQ(ComparisonMeasureName(ComparisonMeasure::kChiSquare),
               "chi-square");
  EXPECT_STREQ(
      ComparisonMeasureName(ComparisonMeasure::kAbsoluteDifference),
      "abs-difference");
  EXPECT_STREQ(ComparisonMeasureName(ComparisonMeasure::kKlDivergence),
               "kl-divergence");
}

TEST(Alternatives, PaperMRescoreMatchesOriginalRanking) {
  CubeStore store = FamilyStore();
  Comparator comparator(&store);
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 2;
  spec.target_class = 1;
  spec.min_population = 0;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.Compare(spec));
  ASSERT_OK_AND_ASSIGN(auto scores,
                       RescoreComparison(r, ComparisonMeasure::kPaperM));
  ASSERT_EQ(scores.size(), r.ranked.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_EQ(scores[i].attribute, r.ranked[i].attribute);
    EXPECT_DOUBLE_EQ(scores[i].score, r.ranked[i].interestingness);
  }
}

TEST(Alternatives, AllMeasuresAgreeOnStrongSignal) {
  // With one attribute carrying all the contrast, every measure ranks it
  // first (they differ on subtler data; see bench/ablation_measures).
  CallLogConfig config;
  config.num_records = 60000;
  config.num_attributes = 12;
  config.phone_drop_multiplier = {1.0, 1.0, 1.8};
  config.effects.push_back(PlantedEffect{
      "TimeOfCall", "morning", 2, kDroppedWhileInProgress, 8.0});
  ASSERT_OK_AND_ASSIGN(CallLogGenerator gen, CallLogGenerator::Make(config));
  Dataset d = gen.Generate();
  ASSERT_OK_AND_ASSIGN(CubeStore store, CubeBuilder::FromDataset(d));
  Comparator comparator(&store);
  ComparisonSpec spec;
  spec.attribute = 0;
  spec.value_a = 0;
  spec.value_b = 2;
  spec.target_class = kDroppedWhileInProgress;
  ASSERT_OK_AND_ASSIGN(ComparisonResult r, comparator.Compare(spec));
  for (ComparisonMeasure m :
       {ComparisonMeasure::kPaperM, ComparisonMeasure::kChiSquare,
        ComparisonMeasure::kAbsoluteDifference,
        ComparisonMeasure::kKlDivergence}) {
    ASSERT_OK_AND_ASSIGN(auto scores, RescoreComparison(r, m));
    EXPECT_EQ(RankIn(scores, gen.GroundTruthAttribute()), 0)
        << "measure " << ComparisonMeasureName(m);
    // Scores are sorted and non-negative.
    for (size_t i = 1; i < scores.size(); ++i) {
      EXPECT_GE(scores[i - 1].score, scores[i].score);
    }
  }
  EXPECT_EQ(RankIn({}, 0), -1);
}

}  // namespace
}  // namespace opmap
