#ifndef OPMAP_COMMON_BENCH_JSON_H_
#define OPMAP_COMMON_BENCH_JSON_H_

#include <string>

#include "opmap/common/status.h"

namespace opmap::bench {

/// One measurement in the benchmark trajectory file (BENCH_parallel.json):
/// which operation ran, at how many threads, and how fast.
struct BenchRecord {
  std::string op;           ///< e.g. "fig10/cubegen/attrs=160"
  int threads = 1;          ///< worker-thread setting (1 = serial)
  double wall_ms = 0.0;     ///< wall-clock time of the operation
  double items_per_s = 0.0; ///< op-specific throughput (records/s, ...)
  /// Host parallelism captured with the measurement; 0 = filled with
  /// std::thread::hardware_concurrency() at append time. check_bench.py
  /// skips thread-scaling guards when this is 1 (speedups are
  /// unobservable on one core).
  int hardware_concurrency = 0;
  /// Detected SIMD level of the recording machine ("none", "avx2",
  /// "neon"); empty = filled with SimdLevelName(CurrentSimdLevel()) at
  /// append time. check_bench.py skips SIMD-vs-blocked guards when this
  /// is "none" (the speedup is unobservable without vector units).
  std::string simd;
  /// Process metrics snapshot embedded as the record's "stats" object
  /// (a FormatMetricsJson string); empty = snapshot at append time. The
  /// actual thread-pool size rides along as the pool.workers gauge.
  std::string stats_json;
};

/// Appends `record` to the JSON array at `path`, creating the file if
/// missing. Read-modify-write keeps the file a well-formed array even
/// though each benchmark binary appends independently; concurrent writers
/// are not supported (run_bench.sh runs them sequentially).
Status AppendBenchRecord(const std::string& path, const BenchRecord& record);

}  // namespace opmap::bench

#endif  // OPMAP_COMMON_BENCH_JSON_H_
