#include "opmap/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "opmap/common/metrics.h"
#include "opmap/common/trace.h"

namespace opmap {

namespace {

// Pool metric handles, resolved once. Tasks are chunk-sized (a parallel
// section submits at most threads*4 of them), so per-task bumps are
// cheap.
Counter* PoolTasksQueued() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("pool.tasks_queued");
  return c;
}
Counter* PoolTasksExecuted() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("pool.tasks_executed");
  return c;
}
Counter* PoolTasksInline() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("pool.tasks_inline");
  return c;
}
Counter* PoolTasksPosted() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("pool.tasks_posted");
  return c;
}
Counter* PoolPostedExceptions() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("pool.posted_exceptions");
  return c;
}

// Set while a thread is executing a pool task; nested parallel sections on
// such a thread run inline instead of re-entering the pool.
thread_local bool tls_in_pool_task = false;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// OPMAP_THREADS, parsed once. Invalid or unset values fall back to the
// hardware concurrency (a library cannot fail here; the CLI validates its
// own --threads flag loudly).
int DefaultThreads() {
  static const int cached = [] {
    const char* env = std::getenv("OPMAP_THREADS");
    if (env != nullptr) {
      Result<int> parsed = ParseThreadCount(env);
      if (parsed.ok() && *parsed > 0) return *parsed;
    }
    return HardwareThreads();
  }();
  return cached;
}

}  // namespace

Result<int> ParseThreadCount(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("thread count must not be empty");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid thread count '" + text +
                                     "' (expected a non-negative integer)");
    }
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || value > 1024) {
    return Status::InvalidArgument("thread count '" + text +
                                   "' out of range (0..1024)");
  }
  return static_cast<int>(value);
}

int EffectiveThreads(const ParallelOptions& options) {
  const int requested =
      options.num_threads > 0 ? options.num_threads : DefaultThreads();
  return std::clamp(requested, 1, kMaxThreads);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

struct ThreadPool::Impl {
  // One parallel section. Tasks are claimed by atomic increment; the last
  // finished task wakes the submitter.
  struct Job {
    Job(const std::function<void(int)>& f, int n) : fn(f), limit(n) {}

    const std::function<void(int)>& fn;  // submitter outlives the job
    const int limit;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::atomic<bool> failed{false};

    std::mutex mu;
    std::condition_variable all_done;
    std::exception_ptr exception;
    int exception_index = std::numeric_limits<int>::max();

    // Claims and runs tasks until none are left. Returns whether all
    // tasks have settled after this thread's contribution.
    bool Work() {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= limit) return done.load(std::memory_order_acquire) == limit;
        if (!failed.load(std::memory_order_relaxed)) {
          PoolTasksExecuted()->Increment();
          try {
            fn(i);
          } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mu);
            if (i < exception_index) {
              exception_index = i;
              exception = std::current_exception();
            }
          }
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == limit) {
          std::lock_guard<std::mutex> lock(mu);
          all_done.notify_all();
          return true;
        }
      }
    }
  };

  std::mutex mu;
  std::condition_variable wake;
  std::deque<std::shared_ptr<Job>> jobs;
  std::deque<std::function<void()>> posted;
  std::vector<std::thread> workers;
  bool stopping = false;

  void WorkerLoop() {
    for (;;) {
      std::shared_ptr<Job> job;
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        wake.wait(lock,
                  [&] { return stopping || !jobs.empty() || !posted.empty(); });
        if (stopping) return;
        if (!jobs.empty()) {
          // Fan-out jobs first: a blocking Run has a thread waiting on it,
          // a posted task does not.
          job = jobs.front();
          if (job->next.load(std::memory_order_relaxed) >= job->limit) {
            // Fully claimed; retire it from the dispatch queue.
            jobs.pop_front();
            continue;
          }
        } else {
          task = std::move(posted.front());
          posted.pop_front();
        }
      }
      tls_in_pool_task = true;
      if (job != nullptr) {
        job->Work();
      } else {
        // Detached tasks have no submitter to rethrow on; count and drop.
        try {
          task();
        } catch (...) {
          PoolPostedExceptions()->Increment();
        }
      }
      tls_in_pool_task = false;
    }
  }

  // Grows the pool to at least `target` workers (capped).
  void EnsureWorkers(int target) {
    target = std::min(target, kMaxThreads - 1);
    std::lock_guard<std::mutex> lock(mu);
    if (static_cast<int>(workers.size()) >= target) return;
    const int64_t start_us = MonotonicMicros();
    while (static_cast<int>(workers.size()) < target) {
      workers.emplace_back([this] { WorkerLoop(); });
    }
    static Histogram* const start_latency =
        MetricsRegistry::Global()->histogram("pool.start_us");
    start_latency->Record(MonotonicMicros() - start_us);
    static Gauge* const size_gauge =
        MetricsRegistry::Global()->gauge("pool.workers");
    size_gauge->SetMax(static_cast<int64_t>(workers.size()));
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mu);
      stopping = true;
    }
    wake.notify_all();
    for (std::thread& t : workers) t.join();
  }
};

ThreadPool* ThreadPool::Shared() {
  static ThreadPool pool;
  return &pool;
}

ThreadPool::Impl* ThreadPool::impl() {
  static std::once_flag once;
  std::call_once(once, [this] { impl_ = new Impl(); });
  return impl_;
}

ThreadPool::~ThreadPool() { delete impl_; }

int ThreadPool::num_workers() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return static_cast<int>(impl_->workers.size());
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& task) {
  if (num_tasks <= 0) return;
  if (num_tasks == 1 || tls_in_pool_task) {
    // Inline: single task, or a nested section on a pool thread (running
    // it inline is what makes nesting deadlock-free).
    PoolTasksInline()->Increment(num_tasks);
    for (int i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  Impl* pool = impl();
  pool->EnsureWorkers(num_tasks - 1);
  PoolTasksQueued()->Increment(num_tasks);

  auto job = std::make_shared<Impl::Job>(task, num_tasks);
  {
    std::lock_guard<std::mutex> lock(pool->mu);
    pool->jobs.push_back(job);
  }
  pool->wake.notify_all();

  // The submitting thread works too; it may finish the whole job itself
  // when the workers are busy elsewhere.
  const bool finished = job->Work();
  if (!finished) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->all_done.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->limit;
    });
  }
  {
    // Retire the job if no worker got around to it.
    std::lock_guard<std::mutex> lock(pool->mu);
    for (auto it = pool->jobs.begin(); it != pool->jobs.end(); ++it) {
      if (*it == job) {
        pool->jobs.erase(it);
        break;
      }
    }
  }
  if (job->exception) std::rethrow_exception(job->exception);
}

void ThreadPool::Post(std::function<void()> task) {
  Impl* pool = impl();
  pool->EnsureWorkers(1);
  PoolTasksPosted()->Increment();
  {
    std::lock_guard<std::mutex> lock(pool->mu);
    pool->posted.push_back(std::move(task));
  }
  pool->wake.notify_one();
}

void ThreadPool::Reserve(int num_workers) {
  if (num_workers <= 0) return;
  impl()->EnsureWorkers(num_workers);
}

// ---------------------------------------------------------------------------
// Loop primitives
// ---------------------------------------------------------------------------

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn,
                 const ParallelOptions& options) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);
  const int threads = EffectiveThreads(options);
  if (threads <= 1 || n <= grain) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Chunk so every thread has a few tasks to steal (dynamic claiming
  // balances skew) but no chunk drops below the grain.
  const int64_t chunk =
      std::max(grain, (n + static_cast<int64_t>(threads) * 4 - 1) /
                          (static_cast<int64_t>(threads) * 4));
  const int num_chunks = static_cast<int>((n + chunk - 1) / chunk);
  ThreadPool::Shared()->Run(num_chunks, [&](int c) {
    const int64_t lo = begin + static_cast<int64_t>(c) * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    for (int64_t i = lo; i < hi; ++i) fn(i);
  });
}

void ParallelForShards(int64_t begin, int64_t end, int num_shards,
                       const std::function<void(int, int64_t, int64_t)>& fn) {
  num_shards = std::max(num_shards, 1);
  const int64_t n = std::max<int64_t>(end - begin, 0);
  if (num_shards == 1) {
    OPMAP_TRACE_SPAN("parallel.shard");
    fn(0, begin, begin + n);
    return;
  }
  const int64_t shards = num_shards;
  ThreadPool::Shared()->Run(num_shards, [&](int s) {
    OPMAP_TRACE_SPAN("parallel.shard");
    const int64_t lo = begin + n * s / shards;
    const int64_t hi = begin + n * (s + 1) / shards;
    fn(s, lo, hi);
  });
}

}  // namespace opmap
