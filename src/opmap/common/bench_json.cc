#include "opmap/common/bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "opmap/common/metrics.h"
#include "opmap/common/simd.h"

namespace opmap::bench {

namespace {

std::string FormatRecord(const BenchRecord& record) {
  // op names and SIMD level names are benchmark-internal identifiers
  // ([a-z0-9_/=] only), so no JSON string escaping is needed; keep the
  // writer dependency-free.
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "\", \"threads\": %d, \"hardware_concurrency\": %d, "
                "\"simd\": \"%s\", "
                "\"wall_ms\": %.3f, \"items_per_s\": %.1f, \"stats\": ",
                record.threads, record.hardware_concurrency,
                record.simd.c_str(), record.wall_ms, record.items_per_s);
  return "  {\"op\": \"" + record.op + buf + record.stats_json + "}";
}

}  // namespace

Status AppendBenchRecord(const std::string& path,
                         const BenchRecord& in) {
  BenchRecord record = in;
  if (record.hardware_concurrency == 0) {
    record.hardware_concurrency =
        static_cast<int>(std::thread::hardware_concurrency());
  }
  if (record.simd.empty()) {
    record.simd = SimdLevelName(CurrentSimdLevel());
  }
  if (record.stats_json.empty()) {
    // Bench records embed many snapshots per file; drop the pre-registered
    // but unexercised histograms instead of repeating all-zero rows.
    MetricsFormatOptions slim;
    slim.skip_zero_histograms = true;
    record.stats_json =
        FormatMetricsJson(MetricsRegistry::Global()->Snapshot(), slim);
  }
  std::string body;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      body = ss.str();
    }
  }
  // Strip trailing whitespace and the closing bracket of an existing
  // array; anything else (missing or empty file) starts a new array.
  while (!body.empty() &&
         (body.back() == '\n' || body.back() == ' ' || body.back() == '\r')) {
    body.pop_back();
  }
  if (!body.empty() && body.back() == ']') {
    body.pop_back();
    while (!body.empty() && (body.back() == '\n' || body.back() == ' ')) {
      body.pop_back();
    }
    if (body.back() != '[') body += ",";
    body += "\n";
  } else {
    body = "[\n";
  }
  body += FormatRecord(record);
  body += "\n]\n";

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open benchmark trajectory file: " + path);
  }
  out << body;
  out.flush();
  if (!out) {
    return Status::IOError("failed writing benchmark trajectory file: " +
                           path);
  }
  return Status::OK();
}

}  // namespace opmap::bench
