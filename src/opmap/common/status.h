#ifndef OPMAP_COMMON_STATUS_H_
#define OPMAP_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace opmap {

/// Error categories used across the library. The numeric values are stable
/// so they can be logged and compared across versions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  kFailedPrecondition = 8,
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Operation outcome used instead of exceptions across the public API.
///
/// A Status is either OK or carries a code plus a message. Functions that
/// produce a value on success return Result<T> instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Mirrors arrow::Result.
///
/// Accessing the value of a non-OK Result is a programming error and is
/// checked with assert in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit so functions can `return Status::...;`. `status` must be
  /// non-OK: an OK status carries no value and would leave the Result empty.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Moves the value out of the Result.
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace opmap

/// Propagates a non-OK Status from an expression, like arrow's ARROW_RETURN_NOT_OK.
#define OPMAP_RETURN_NOT_OK(expr)        \
  do {                                   \
    ::opmap::Status _st = (expr);        \
    if (!_st.ok()) return _st;           \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
///
/// The temporary is named with __COUNTER__ (unique per expansion), not
/// __LINE__, so two expansions can share a line — e.g. when another macro
/// expands to several OPMAP_ASSIGN_OR_RETURNs.
#define OPMAP_ASSIGN_OR_RETURN(lhs, expr) \
  OPMAP_ASSIGN_OR_RETURN_IMPL_(           \
      OPMAP_CONCAT_(opmap_internal_result_, __COUNTER__), lhs, expr)

#define OPMAP_ASSIGN_OR_RETURN_IMPL_(result, lhs, expr) \
  auto result = (expr);                                 \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).MoveValue()

#define OPMAP_CONCAT_IMPL_(a, b) a##b
#define OPMAP_CONCAT_(a, b) OPMAP_CONCAT_IMPL_(a, b)

#endif  // OPMAP_COMMON_STATUS_H_
