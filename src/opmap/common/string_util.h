#ifndef OPMAP_COMMON_STRING_UTIL_H_
#define OPMAP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace opmap {

/// Splits `s` on `delim`. Consecutive delimiters yield empty fields, matching
/// CSV semantics ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats a fraction as a percentage, e.g. 0.1234 -> "12.34%".
std::string FormatPercent(double fraction, int digits = 2);

/// True if `s` parses fully as a floating point number.
bool ParseDouble(std::string_view s, double* out);

/// True if `s` parses fully as a 64-bit signed integer.
bool ParseInt64(std::string_view s, int64_t* out);

}  // namespace opmap

#endif  // OPMAP_COMMON_STRING_UTIL_H_
