#ifndef OPMAP_COMMON_RANDOM_H_
#define OPMAP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opmap {

/// Deterministic, fast pseudo-random generator (xoshiro256**).
///
/// Used instead of <random> engines so synthetic workloads are reproducible
/// byte-for-byte across standard library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Samples an index from the (unnormalized, non-negative) weights.
  /// Returns weights.size() - 1 if numeric drift exhausts the mass.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

/// Precomputed Zipf(s) sampler over {0, ..., n-1}.
///
/// Rank 0 is the most frequent value. s = 0 degenerates to uniform.
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace opmap

#endif  // OPMAP_COMMON_RANDOM_H_
