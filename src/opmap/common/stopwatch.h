#ifndef OPMAP_COMMON_STOPWATCH_H_
#define OPMAP_COMMON_STOPWATCH_H_

#include <chrono>

namespace opmap {

/// Wall-clock stopwatch for benchmark harnesses and progress reporting.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace opmap

#endif  // OPMAP_COMMON_STOPWATCH_H_
