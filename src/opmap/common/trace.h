#ifndef OPMAP_COMMON_TRACE_H_
#define OPMAP_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "opmap/common/status.h"

namespace opmap {

/// Monotonic wall clock, microseconds since an arbitrary process-local
/// epoch. The single time source shared by the tracer, the metrics
/// histograms, and the bench harnesses.
int64_t MonotonicMicros();

/// MonotonicMicros() in seconds, for bench reporting.
double MonotonicSeconds();

/// CPU time consumed by the calling thread, microseconds. Returns 0 when
/// the platform cannot tell.
int64_t ThreadCpuMicros();

/// One completed span. `name` must be a string literal (spans never copy
/// it).
struct TraceEvent {
  const char* name;
  int tid;        // small sequential id per recording thread
  int depth;      // nesting depth at entry (outermost span = 1)
  int64_t ts_us;  // start, relative to tracer start
  int64_t dur_us;
  int64_t cpu_us;  // thread CPU time consumed inside the span
};

/// Process-wide span collector. Disabled by default: a TraceSpan on a
/// disabled tracer costs one relaxed atomic load and a branch. When
/// enabled, completed spans accumulate in per-thread buffers (bounded;
/// overflow counts as dropped) and can be dumped as Chrome trace_event
/// JSON (chrome://tracing, https://ui.perfetto.dev).
class Tracer {
 public:
  static Tracer* Global();

  void Enable();
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// All completed spans so far, merged across threads. Used by tests and
  /// the JSON writer; ordering is per-thread append order.
  std::vector<TraceEvent> SnapshotEvents() const;

  /// Spans discarded because a thread buffer hit its cap.
  int64_t DroppedEvents() const;

  /// Chrome trace_event JSON for the collected spans.
  std::string ToJson() const;

  /// Writes ToJson() to `path` (plain fopen/fwrite; the trace file is a
  /// diagnostic artifact, not durable data).
  Status WriteJson(const std::string& path) const;

  /// Discards collected spans (buffers stay registered).
  void Clear();

  // Internal: called by ~TraceSpan.
  void Record(const char* name, int64_t ts_us, int64_t dur_us, int64_t cpu_us,
              int depth);
  // Internal: per-thread span nesting depth, for TraceSpan bookkeeping.
  static int& ThreadDepth();

 private:
  Tracer();
  struct ThreadBuffer;
  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  int64_t start_us_ = 0;

  mutable std::mutex mu_;
  std::vector<ThreadBuffer*> buffers_;  // never freed; threads are few
  int next_tid_ = 1;
};

/// RAII scoped span. Construct with a string literal name; the span
/// records wall and thread-CPU time from construction to destruction.
/// Only completed spans are recorded, and only when the tracer was
/// enabled at construction. Use via OPMAP_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!Tracer::Global()->enabled()) return;
    name_ = name;
    depth_ = ++Tracer::ThreadDepth();
    start_us_ = MonotonicMicros();
    cpu_start_us_ = ThreadCpuMicros();
  }

  ~TraceSpan() {
    if (name_ == nullptr) return;
    Tracer::Global()->Record(name_, start_us_, MonotonicMicros() - start_us_,
                             ThreadCpuMicros() - cpu_start_us_, depth_);
    --Tracer::ThreadDepth();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int depth_ = 0;
  int64_t start_us_ = 0;
  int64_t cpu_start_us_ = 0;
};

#define OPMAP_TRACE_CONCAT2(a, b) a##b
#define OPMAP_TRACE_CONCAT(a, b) OPMAP_TRACE_CONCAT2(a, b)

/// Opens a scoped trace span named `name` (a string literal, by
/// convention `layer.operation`, e.g. "cube.count_range") covering the
/// rest of the enclosing block.
#define OPMAP_TRACE_SPAN(name) \
  ::opmap::TraceSpan OPMAP_TRACE_CONCAT(opmap_trace_span_, __LINE__)(name)

}  // namespace opmap

#endif  // OPMAP_COMMON_TRACE_H_
