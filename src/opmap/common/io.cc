#include "opmap/common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <thread>

#include "opmap/common/serde.h"

namespace opmap {

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

namespace {

// Reflected CRC32C table, generated once at startup.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  const uint32_t* t = Table().t;
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// POSIX Env
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t n) override {
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write to", path_));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Flush() override {
    // Unbuffered: every Append already reached the OS.
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, std::string* out, bool* eof) override {
    *eof = false;
    const size_t old = out->size();
    out->resize(old + n);
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd_, out->data() + old + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        out->resize(old + got);
        return Status::IOError(ErrnoMessage("read from", path_));
      }
      if (r == 0) {
        *eof = true;
        break;
      }
      got += static_cast<size_t>(r);
    }
    out->resize(old + got);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for writing", path));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(fd, path));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for reading", path));
    }
    return std::unique_ptr<SequentialFile>(
        new PosixSequentialFile(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("cannot rename '" + from + "' to '" + to +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("cannot delete", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  void SleepMicros(int64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out,
                        uint64_t max_bytes) {
  if (env == nullptr) env = Env::Default();
  out->clear();
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                         env->NewSequentialFile(path));
  constexpr size_t kChunk = 1 << 16;
  bool eof = false;
  while (!eof) {
    if (out->size() > max_bytes) {
      return Status::OutOfRange("file '" + path + "' exceeds the " +
                                std::to_string(max_bytes) +
                                "-byte read limit");
    }
    OPMAP_RETURN_NOT_OK(file->Read(kChunk, out, &eof));
  }
  if (out->size() > max_bytes) {
    return Status::OutOfRange("file '" + path + "' exceeds the " +
                              std::to_string(max_bytes) + "-byte read limit");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

// Not in the anonymous namespace: these must match the friend declarations
// in FaultInjectingEnv, which name them at opmap scope.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const char* data, size_t n) override;
  Status Flush() override { return base_->Flush(); }
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

class FaultInjectingSequentialFile : public SequentialFile {
 public:
  FaultInjectingSequentialFile(std::unique_ptr<SequentialFile> base,
                               FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, std::string* out, bool* eof) override;

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectingEnv* env_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectingEnv::FailAt(FaultOp op, int64_t nth, bool fail_forever) {
  armed_op_ = static_cast<int>(op);
  armed_at_ = nth;
  fail_forever_ = fail_forever;
}

void FaultInjectingEnv::Reset() {
  armed_op_ = -1;
  armed_at_ = 0;
  fail_forever_ = false;
  injected_ = 0;
  std::memset(counts_, 0, sizeof(counts_));
}

int64_t FaultInjectingEnv::OpCount(FaultOp op) const {
  return counts_[static_cast<int>(op)];
}

int64_t FaultInjectingEnv::TotalOps() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

Status FaultInjectingEnv::Tick(FaultOp op) {
  const int64_t n = ++counts_[static_cast<int>(op)];
  if (armed_op_ == static_cast<int>(op) &&
      (n == armed_at_ || (fail_forever_ && n >= armed_at_))) {
    ++injected_;
    const char* names[kNumFaultOps] = {"open-write", "open-read", "write",
                                       "read",       "sync",      "rename",
                                       "delete"};
    return Status::IOError(std::string("injected ") +
                           names[static_cast<int>(op)] + " failure #" +
                           std::to_string(n));
  }
  return Status::OK();
}

Status FaultInjectingWritableFile::Append(const char* data, size_t n) {
  OPMAP_RETURN_NOT_OK(env_->Tick(FaultOp::kWrite));
  return base_->Append(data, n);
}

Status FaultInjectingWritableFile::Sync() {
  OPMAP_RETURN_NOT_OK(env_->Tick(FaultOp::kSync));
  return base_->Sync();
}

Status FaultInjectingSequentialFile::Read(size_t n, std::string* out,
                                          bool* eof) {
  OPMAP_RETURN_NOT_OK(env_->Tick(FaultOp::kRead));
  return base_->Read(n, out, eof);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kOpenWrite));
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(std::move(base), this));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectingEnv::NewSequentialFile(
    const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kOpenRead));
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> base,
                         base_->NewSequentialFile(path));
  return std::unique_ptr<SequentialFile>(
      new FaultInjectingSequentialFile(std::move(base), this));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kRename));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kDelete));
  return base_->DeleteFile(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

void FaultInjectingEnv::SleepMicros(int64_t) {
  // Backoff sleeps are elided so fault-injection tests run at full speed.
}

// ---------------------------------------------------------------------------
// Retry + atomic replace
// ---------------------------------------------------------------------------

Status RetryWithBackoff(Env* env, const RetryPolicy& policy,
                        const std::function<Status()>& op) {
  if (env == nullptr) env = Env::Default();
  Status last;
  int64_t backoff = policy.initial_backoff_micros;
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      env->SleepMicros(backoff);
      backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                     policy.backoff_multiplier);
    }
    last = op();
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
  }
  return last;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       const std::string& contents,
                       const RetryPolicy& policy) {
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  return RetryWithBackoff(env, policy, [&]() -> Status {
    Status st = [&]() -> Status {
      OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env->NewWritableFile(tmp));
      OPMAP_RETURN_NOT_OK(file->Append(contents));
      OPMAP_RETURN_NOT_OK(file->Flush());
      OPMAP_RETURN_NOT_OK(file->Sync());
      OPMAP_RETURN_NOT_OK(file->Close());
      return env->RenameFile(tmp, path);
    }();
    if (!st.ok() && env->FileExists(tmp)) {
      // Best effort: never leave a stale temp file behind. The target path
      // still holds the previous snapshot (or nothing) either way.
      env->DeleteFile(tmp);
    }
    return st;
  });
}

// ---------------------------------------------------------------------------
// Checksummed section container
// ---------------------------------------------------------------------------

namespace {

// Byte offset of the header CRC field: magic + version + section count.
constexpr size_t kHeaderCrcOffset = 4 + 4 + 4;

void PutU32At(std::string* s, size_t offset, uint32_t v) {
  std::memcpy(s->data() + offset, &v, sizeof(v));
}

}  // namespace

std::string SerializeContainer(const char magic[4], uint32_t version,
                               const std::vector<Section>& sections) {
  std::ostringstream header;
  header.write(magic, 4);
  BinaryWriter w(&header);
  w.WriteU32(version);
  w.WriteU32(static_cast<uint32_t>(sections.size()));
  w.WriteU32(0);  // header CRC placeholder, patched below
  for (const Section& s : sections) {
    w.WriteString(s.name);
    w.WriteU64(s.payload.size());
    w.WriteU64(s.record_count);
    w.WriteU32(Crc32c(s.payload.data(), s.payload.size()));
  }
  std::string out = header.str();
  PutU32At(&out, kHeaderCrcOffset, Crc32c(out.data(), out.size()));
  for (const Section& s : sections) out += s.payload;
  return out;
}

Result<std::vector<Section>> ParseContainer(const std::string& bytes,
                                            const char magic[4],
                                            uint32_t expected_version) {
  std::istringstream in(bytes);
  BinaryReader r(&in, /*limit=*/bytes.size());
  OPMAP_RETURN_NOT_OK(r.ExpectMagic(magic));
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != expected_version) {
    return Status::IOError("unsupported container version " +
                           std::to_string(version));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > (1u << 10)) {
    return Status::IOError("container header corrupt: implausible section "
                           "count " + std::to_string(count));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t stored_header_crc, r.ReadU32());

  struct Entry {
    std::string name;
    uint64_t size;
    uint64_t record_count;
    uint32_t crc;
  };
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    OPMAP_ASSIGN_OR_RETURN(e.name, r.ReadString());
    OPMAP_ASSIGN_OR_RETURN(e.size, r.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(e.record_count, r.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(e.crc, r.ReadU32());
    entries.push_back(std::move(e));
  }

  // Verify the header before trusting any size it declares.
  const auto header_end = static_cast<size_t>(in.tellg());
  std::string header(bytes, 0, header_end);
  PutU32At(&header, kHeaderCrcOffset, 0);
  if (Crc32c(header.data(), header.size()) != stored_header_crc) {
    return Status::IOError("container header CRC mismatch (the section "
                           "table is corrupt)");
  }

  std::vector<Section> sections;
  sections.reserve(entries.size());
  size_t offset = header_end;
  for (const Entry& e : entries) {
    if (e.size > bytes.size() - offset) {
      return Status::IOError("section '" + e.name + "' truncated: header "
                             "declares " + std::to_string(e.size) +
                             " bytes, " +
                             std::to_string(bytes.size() - offset) +
                             " remain");
    }
    Section s;
    s.name = e.name;
    s.record_count = e.record_count;
    s.payload.assign(bytes, offset, static_cast<size_t>(e.size));
    offset += static_cast<size_t>(e.size);
    if (Crc32c(s.payload.data(), s.payload.size()) != e.crc) {
      return Status::IOError("section '" + e.name + "' CRC mismatch: the "
                             "file is corrupt");
    }
    sections.push_back(std::move(s));
  }
  if (offset != bytes.size()) {
    return Status::IOError("container has " +
                           std::to_string(bytes.size() - offset) +
                           " trailing bytes after the last section");
  }
  return sections;
}

Result<const Section*> FindSection(const std::vector<Section>& sections,
                                   const std::string& name) {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return Status::IOError("container is missing the '" + name + "' section");
}

}  // namespace opmap
