#include "opmap/common/io.h"

#include <fcntl.h>
#include <unistd.h>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <sys/stat.h>
#endif

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <thread>

#include "opmap/common/metrics.h"
#include "opmap/common/serde.h"
#include "opmap/common/trace.h"

namespace opmap {

namespace {

// Hot-path metric handles, resolved once. Byte counters are bumped per
// syscall-sized operation (never per byte), CRC verifications per
// section.
Counter* IoBytesRead() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("io.bytes_read");
  return c;
}
Counter* IoBytesWritten() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("io.bytes_written");
  return c;
}
Counter* IoBytesMapped() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("io.bytes_mapped");
  return c;
}
Counter* IoCrcVerified() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("io.crc_verified");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

namespace {

// Reflected CRC32C table, generated once at startup.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  const uint32_t* t = Table().t;
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

// ---------------------------------------------------------------------------
// POSIX Env
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t n) override {
    IoBytesWritten()->Increment(static_cast<int64_t>(n));
    while (n > 0) {
      const ssize_t w = ::write(fd_, data, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write to", path_));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Flush() override {
    // Unbuffered: every Append already reached the OS.
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IOError(ErrnoMessage("fsync", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IOError(ErrnoMessage("close", path_));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixSequentialFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(size_t n, std::string* out, bool* eof) override {
    *eof = false;
    const size_t old = out->size();
    out->resize(old + n);
    size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fd_, out->data() + old + got, n - got);
      if (r < 0) {
        if (errno == EINTR) continue;
        out->resize(old + got);
        return Status::IOError(ErrnoMessage("read from", path_));
      }
      if (r == 0) {
        *eof = true;
        break;
      }
      got += static_cast<size_t>(r);
    }
    out->resize(old + got);
    IoBytesRead()->Increment(static_cast<int64_t>(got));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

// Read-into-buffer fallback region: the whole file copied into a 64-byte-
// aligned heap buffer. Fully resident by construction.
class HeapMappedRegion : public MappedRegion {
 public:
  explicit HeapMappedRegion(const std::string& bytes) {
    size_ = bytes.size();
    if (size_ > 0) {
      buf_ = static_cast<char*>(::operator new(
          size_, std::align_val_t(kAlignedPayloadAlignment)));
      std::memcpy(buf_, bytes.data(), size_);
    }
    data_ = buf_;
  }

  ~HeapMappedRegion() override {
    if (buf_ != nullptr) {
      ::operator delete(buf_, std::align_val_t(kAlignedPayloadAlignment));
    }
  }

  bool is_mmap() const override { return false; }
  int64_t ResidentBytes() const override {
    return static_cast<int64_t>(size_);
  }

 private:
  char* buf_ = nullptr;
};

#if defined(__unix__) || defined(__APPLE__)
// Real mmap region: pages fault in on first touch, so an unqueried cube's
// payload costs no read I/O and no private memory.
class PosixMappedRegion : public MappedRegion {
 public:
  PosixMappedRegion(void* addr, size_t size) {
    data_ = static_cast<const char*>(addr);
    size_ = size;
  }

  ~PosixMappedRegion() override {
    if (data_ != nullptr) {
      ::munmap(const_cast<char*>(data_), size_);
    }
  }

  bool is_mmap() const override { return true; }

  int64_t ResidentBytes() const override {
#if defined(__linux__)
    if (size_ == 0) return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page <= 0) return -1;
    const size_t pages =
        (size_ + static_cast<size_t>(page) - 1) / static_cast<size_t>(page);
    std::vector<unsigned char> vec(pages);
    if (::mincore(const_cast<char*>(data_), size_, vec.data()) != 0) {
      return -1;
    }
    int64_t resident_pages = 0;
    for (unsigned char v : vec) resident_pages += (v & 1);
    int64_t bytes = resident_pages * page;
    return bytes < static_cast<int64_t>(size_)
               ? bytes
               : static_cast<int64_t>(size_);
#else
    return -1;
#endif
  }
};
#endif  // defined(__unix__) || defined(__APPLE__)

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for writing", path));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(fd, path));
  }

  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for reading", path));
    }
    return std::unique_ptr<SequentialFile>(
        new PosixSequentialFile(fd, path));
  }

  Result<std::unique_ptr<MappedRegion>> MapFile(
      const std::string& path) override {
#if defined(__unix__) || defined(__APPLE__)
    OPMAP_TRACE_SPAN("io.map_file");
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return Status::IOError(ErrnoMessage("cannot open for mapping", path));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const Status err = Status::IOError(ErrnoMessage("cannot stat", path));
      ::close(fd);
      return err;
    }
    const auto size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length mappings; the heap fallback models an
      // empty region fine.
      ::close(fd);
      return Env::MapFile(path);
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      // Filesystem without mmap support: read-into-buffer fallback.
      return Env::MapFile(path);
    }
    IoBytesMapped()->Increment(static_cast<int64_t>(size));
    return std::unique_ptr<MappedRegion>(new PosixMappedRegion(addr, size));
#else
    return Env::MapFile(path);
#endif
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::IOError("cannot rename '" + from + "' to '" + to +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("cannot delete", path));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
#if defined(__unix__) || defined(__APPLE__)
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError(ErrnoMessage("cannot create directory", path));
    }
    return Status::OK();
#else
    return Status::IOError("CreateDir unsupported on this platform");
#endif
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  void SleepMicros(int64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;
  return env;
}

Result<std::unique_ptr<MappedRegion>> Env::MapFile(const std::string& path) {
  // Portable fallback: read the whole file through this Env's sequential
  // reader into an aligned heap buffer. Derived Envs that can map for real
  // (PosixEnv) override this.
  OPMAP_TRACE_SPAN("io.map_file");
  std::string bytes;
  OPMAP_RETURN_NOT_OK(ReadFileToString(this, path, &bytes));
  IoBytesMapped()->Increment(static_cast<int64_t>(bytes.size()));
  return std::unique_ptr<MappedRegion>(new HeapMappedRegion(bytes));
}

Status ReadFileToString(Env* env, const std::string& path, std::string* out,
                        uint64_t max_bytes) {
  OPMAP_TRACE_SPAN("io.read_file");
  if (env == nullptr) env = Env::Default();
  out->clear();
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> file,
                         env->NewSequentialFile(path));
  constexpr size_t kChunk = 1 << 16;
  bool eof = false;
  while (!eof) {
    if (out->size() > max_bytes) {
      return Status::OutOfRange("file '" + path + "' exceeds the " +
                                std::to_string(max_bytes) +
                                "-byte read limit");
    }
    OPMAP_RETURN_NOT_OK(file->Read(kChunk, out, &eof));
  }
  if (out->size() > max_bytes) {
    return Status::OutOfRange("file '" + path + "' exceeds the " +
                              std::to_string(max_bytes) + "-byte read limit");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------------

// Not in the anonymous namespace: these must match the friend declarations
// in FaultInjectingEnv, which name them at opmap scope.
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const char* data, size_t n) override;
  Status Flush() override { return base_->Flush(); }
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingEnv* env_;
};

class FaultInjectingSequentialFile : public SequentialFile {
 public:
  FaultInjectingSequentialFile(std::unique_ptr<SequentialFile> base,
                               FaultInjectingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(size_t n, std::string* out, bool* eof) override;

 private:
  std::unique_ptr<SequentialFile> base_;
  FaultInjectingEnv* env_;
};

namespace {
constexpr const char* kFaultOpNames[kNumFaultOps] = {
    "open-write", "open-read", "write",  "read",      "sync",
    "rename",     "delete",    "map",    "create-dir"};
constexpr const char* kCorruptionModeNames[] = {"none", "torn", "flip"};
}  // namespace

const char* FaultOpName(FaultOp op) {
  return kFaultOpNames[static_cast<int>(op)];
}

Result<FaultOp> ParseFaultOp(const std::string& name) {
  for (int i = 0; i < kNumFaultOps; ++i) {
    if (name == kFaultOpNames[i]) return static_cast<FaultOp>(i);
  }
  return Status::InvalidArgument("unknown fault op '" + name + "'");
}

std::string FaultPlan::ToString() const {
  return std::string("op=") + FaultOpName(op) + " nth=" +
         std::to_string(nth) + " mode=" +
         kCorruptionModeNames[static_cast<int>(mode)] + " seed=" +
         std::to_string(seed) + " cut=" + (power_cut ? "1" : "0");
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string token;
  bool have_op = false, have_nth = false;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault plan token '" + token +
                                     "' is not key=value");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "op") {
      OPMAP_ASSIGN_OR_RETURN(plan.op, ParseFaultOp(value));
      have_op = true;
    } else if (key == "nth") {
      plan.nth = std::strtoll(value.c_str(), nullptr, 10);
      if (plan.nth < 1) {
        return Status::InvalidArgument("fault plan nth must be >= 1, got '" +
                                       value + "'");
      }
      have_nth = true;
    } else if (key == "mode") {
      bool found = false;
      for (int i = 0; i < 3; ++i) {
        if (value == kCorruptionModeNames[i]) {
          plan.mode = static_cast<CorruptionMode>(i);
          found = true;
        }
      }
      if (!found) {
        return Status::InvalidArgument("unknown corruption mode '" + value +
                                       "'");
      }
    } else if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "cut") {
      plan.power_cut = value != "0";
    } else {
      return Status::InvalidArgument("unknown fault plan key '" + key + "'");
    }
  }
  if (!have_op || !have_nth) {
    return Status::InvalidArgument("fault plan '" + text +
                                   "' needs at least op= and nth=");
  }
  return plan;
}

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectingEnv::FailAt(FaultOp op, int64_t nth, bool fail_forever) {
  armed_op_ = static_cast<int>(op);
  armed_at_ = nth;
  fail_forever_ = fail_forever;
}

void FaultInjectingEnv::ArmPlan(const FaultPlan& plan) {
  plan_ = plan;
  plan_armed_ = true;
  power_lost_ = false;
  pending_corruption_ = CorruptionMode::kNone;
}

void FaultInjectingEnv::Reset() {
  armed_op_ = -1;
  armed_at_ = 0;
  fail_forever_ = false;
  injected_ = 0;
  plan_armed_ = false;
  power_lost_ = false;
  pending_corruption_ = CorruptionMode::kNone;
  std::memset(counts_, 0, sizeof(counts_));
}

int64_t FaultInjectingEnv::OpCount(FaultOp op) const {
  return counts_[static_cast<int>(op)];
}

int64_t FaultInjectingEnv::TotalOps() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

Status FaultInjectingEnv::Tick(FaultOp op) {
  const int64_t n = ++counts_[static_cast<int>(op)];
  if (power_lost_) {
    ++injected_;
    return Status::IOError(std::string("injected power loss (") +
                           FaultOpName(op) + " after cut)");
  }
  if (plan_armed_ && plan_.op == op && n == plan_.nth) {
    ++injected_;
    static Counter* const plan_trips =
        MetricsRegistry::Global()->counter("io.fault_injections");
    plan_trips->Increment();
    if (plan_.power_cut) power_lost_ = true;
    if (op == FaultOp::kWrite) pending_corruption_ = plan_.mode;
    return Status::IOError("injected fault [" + plan_.ToString() + "]");
  }
  if (armed_op_ == static_cast<int>(op) &&
      (n == armed_at_ || (fail_forever_ && n >= armed_at_))) {
    ++injected_;
    static Counter* const trips =
        MetricsRegistry::Global()->counter("io.fault_injections");
    trips->Increment();
    return Status::IOError(std::string("injected ") + FaultOpName(op) +
                           " failure #" + std::to_string(n));
  }
  return Status::OK();
}

void FaultInjectingEnv::ApplyTornWrite(WritableFile* file, const char* data,
                                       size_t n) {
  const CorruptionMode mode = pending_corruption_;
  pending_corruption_ = CorruptionMode::kNone;
  if (mode == CorruptionMode::kNone || n == 0) return;
  // A seed-chosen strict prefix reaches the file — the write never
  // completes. Writes go straight to the base file: the simulated power is
  // out, so these bytes must not tick (and fail) like normal operations.
  const size_t prefix = static_cast<size_t>(plan_.seed % n);
  if (prefix == 0) return;
  std::string torn(data, prefix);
  if (mode == CorruptionMode::kBitFlip) {
    const size_t byte = static_cast<size_t>((plan_.seed / 7) % prefix);
    torn[byte] = static_cast<char>(
        torn[byte] ^ static_cast<char>(1u << (plan_.seed % 8)));
  }
  // Best effort; there is nobody left to report an error to.
  if (file->Append(torn.data(), torn.size()).ok()) {
    (void)file->Flush();
  }
}

Status FaultInjectingWritableFile::Append(const char* data, size_t n) {
  Status tick = env_->Tick(FaultOp::kWrite);
  if (!tick.ok()) {
    env_->ApplyTornWrite(base_.get(), data, n);
    return tick;
  }
  return base_->Append(data, n);
}

Status FaultInjectingWritableFile::Sync() {
  OPMAP_RETURN_NOT_OK(env_->Tick(FaultOp::kSync));
  return base_->Sync();
}

Status FaultInjectingSequentialFile::Read(size_t n, std::string* out,
                                          bool* eof) {
  OPMAP_RETURN_NOT_OK(env_->Tick(FaultOp::kRead));
  return base_->Read(n, out, eof);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kOpenWrite));
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                         base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingWritableFile(std::move(base), this));
}

Result<std::unique_ptr<SequentialFile>> FaultInjectingEnv::NewSequentialFile(
    const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kOpenRead));
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<SequentialFile> base,
                         base_->NewSequentialFile(path));
  return std::unique_ptr<SequentialFile>(
      new FaultInjectingSequentialFile(std::move(base), this));
}

Result<std::unique_ptr<MappedRegion>> FaultInjectingEnv::MapFile(
    const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kMap));
  // Deliberately the base-class heap fallback over THIS env (never a real
  // mmap): the bytes then flow through the fault-injecting sequential
  // reader, so armed kOpenRead/kRead faults reach the mapping path too.
  return Env::MapFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kRename));
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::DeleteFile(const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kDelete));
  return base_->DeleteFile(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  OPMAP_RETURN_NOT_OK(Tick(FaultOp::kCreateDir));
  return base_->CreateDir(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

void FaultInjectingEnv::SleepMicros(int64_t) {
  // Backoff sleeps are elided so fault-injection tests run at full speed.
}

// ---------------------------------------------------------------------------
// Retry + atomic replace
// ---------------------------------------------------------------------------

Status RetryWithBackoff(Env* env, const RetryPolicy& policy,
                        const std::function<Status()>& op) {
  if (env == nullptr) env = Env::Default();
  Status last;
  int64_t backoff = policy.initial_backoff_micros;
  const int attempts = policy.max_attempts > 0 ? policy.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      static Counter* const retries =
          MetricsRegistry::Global()->counter("io.retries");
      retries->Increment();
      env->SleepMicros(backoff);
      backoff = static_cast<int64_t>(static_cast<double>(backoff) *
                                     policy.backoff_multiplier);
    }
    last = op();
    if (last.ok() || last.code() != StatusCode::kIOError) return last;
  }
  return last;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       const std::string& contents,
                       const RetryPolicy& policy) {
  OPMAP_TRACE_SPAN("io.atomic_write");
  if (env == nullptr) env = Env::Default();
  const std::string tmp = path + ".tmp";
  return RetryWithBackoff(env, policy, [&]() -> Status {
    Status st = [&]() -> Status {
      OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env->NewWritableFile(tmp));
      OPMAP_RETURN_NOT_OK(file->Append(contents));
      OPMAP_RETURN_NOT_OK(file->Flush());
      OPMAP_RETURN_NOT_OK(file->Sync());
      OPMAP_RETURN_NOT_OK(file->Close());
      return env->RenameFile(tmp, path);
    }();
    if (!st.ok() && env->FileExists(tmp)) {
      // Best effort: never leave a stale temp file behind. The target path
      // still holds the previous snapshot (or nothing) either way.
      env->DeleteFile(tmp);
    }
    return st;
  });
}

// ---------------------------------------------------------------------------
// Checksummed section container
// ---------------------------------------------------------------------------

namespace {

// Byte offset of the header CRC field: magic + version + section count.
constexpr size_t kHeaderCrcOffset = 4 + 4 + 4;

void PutU32At(std::string* s, size_t offset, uint32_t v) {
  std::memcpy(s->data() + offset, &v, sizeof(v));
}

}  // namespace

std::string SerializeContainer(const char magic[4], uint32_t version,
                               const std::vector<Section>& sections) {
  std::ostringstream header;
  header.write(magic, 4);
  BinaryWriter w(&header);
  w.WriteU32(version);
  w.WriteU32(static_cast<uint32_t>(sections.size()));
  w.WriteU32(0);  // header CRC placeholder, patched below
  for (const Section& s : sections) {
    w.WriteString(s.name);
    w.WriteU64(s.payload.size());
    w.WriteU64(s.record_count);
    w.WriteU32(Crc32c(s.payload.data(), s.payload.size()));
  }
  std::string out = header.str();
  PutU32At(&out, kHeaderCrcOffset, Crc32c(out.data(), out.size()));
  for (const Section& s : sections) out += s.payload;
  return out;
}

Result<std::vector<Section>> ParseContainer(const std::string& bytes,
                                            const char magic[4],
                                            uint32_t expected_version) {
  std::istringstream in(bytes);
  BinaryReader r(&in, /*limit=*/bytes.size());
  OPMAP_RETURN_NOT_OK(r.ExpectMagic(magic));
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != expected_version) {
    return Status::IOError("unsupported container version " +
                           std::to_string(version));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (count > (1u << 10)) {
    return Status::IOError("container header corrupt: implausible section "
                           "count " + std::to_string(count));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t stored_header_crc, r.ReadU32());

  struct Entry {
    std::string name;
    uint64_t size;
    uint64_t record_count;
    uint32_t crc;
  };
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    OPMAP_ASSIGN_OR_RETURN(e.name, r.ReadString());
    OPMAP_ASSIGN_OR_RETURN(e.size, r.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(e.record_count, r.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(e.crc, r.ReadU32());
    entries.push_back(std::move(e));
  }

  // Verify the header before trusting any size it declares.
  const auto header_end = static_cast<size_t>(in.tellg());
  std::string header(bytes, 0, header_end);
  PutU32At(&header, kHeaderCrcOffset, 0);
  IoCrcVerified()->Increment();
  if (Crc32c(header.data(), header.size()) != stored_header_crc) {
    return Status::IOError("container header CRC mismatch (the section "
                           "table is corrupt)");
  }

  std::vector<Section> sections;
  sections.reserve(entries.size());
  size_t offset = header_end;
  for (const Entry& e : entries) {
    if (e.size > bytes.size() - offset) {
      return Status::IOError("section '" + e.name + "' truncated: header "
                             "declares " + std::to_string(e.size) +
                             " bytes, " +
                             std::to_string(bytes.size() - offset) +
                             " remain");
    }
    Section s;
    s.name = e.name;
    s.record_count = e.record_count;
    s.payload.assign(bytes, offset, static_cast<size_t>(e.size));
    offset += static_cast<size_t>(e.size);
    IoCrcVerified()->Increment();
    if (Crc32c(s.payload.data(), s.payload.size()) != e.crc) {
      return Status::IOError("section '" + e.name + "' CRC mismatch: the "
                             "file is corrupt");
    }
    sections.push_back(std::move(s));
  }
  if (offset != bytes.size()) {
    return Status::IOError("container has " +
                           std::to_string(bytes.size() - offset) +
                           " trailing bytes after the last section");
  }
  return sections;
}

Result<const Section*> FindSection(const std::vector<Section>& sections,
                                   const std::string& name) {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return Status::IOError("container is missing the '" + name + "' section");
}

// ---------------------------------------------------------------------------
// Aligned section container (v3)
// ---------------------------------------------------------------------------

namespace {

size_t AlignUpToPayload(size_t n) {
  return (n + kAlignedPayloadAlignment - 1) & ~(kAlignedPayloadAlignment - 1);
}

// Bounds-checked little-endian cursor over an in-memory (mapped) header.
// BinaryReader works over istreams; the mapping path must not copy the file
// into one, so this mirrors its encodings over a raw byte range.
class MemCursor {
 public:
  MemCursor(const char* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }

  Status ReadBytes(void* dst, size_t n) {
    if (n > size_ - pos_) {
      return Status::IOError("container header truncated");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
    return v;
  }

  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
    return v;
  }

  Result<std::string> ReadString() {
    OPMAP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (n > size_ - pos_) {
      return Status::IOError("container header truncated");
    }
    std::string s(data_ + pos_, static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeAlignedContainer(const char magic[4], uint32_t version,
                                      const std::vector<Section>& sections) {
  // The table length depends only on the section names, so every payload
  // offset is computable before writing a byte.
  size_t table_size = 4 + 4 + 4 + 4;  // magic, version, count, header CRC
  for (const Section& s : sections) {
    table_size += 8 + s.name.size();  // length-prefixed name
    table_size += 8 + 8 + 4 + 8;      // size, record_count, crc, offset
  }
  std::vector<uint64_t> offsets;
  offsets.reserve(sections.size());
  size_t cursor = AlignUpToPayload(table_size);
  for (const Section& s : sections) {
    offsets.push_back(cursor);
    cursor = AlignUpToPayload(cursor + s.payload.size());
  }

  std::ostringstream header;
  header.write(magic, 4);
  BinaryWriter w(&header);
  w.WriteU32(version);
  w.WriteU32(static_cast<uint32_t>(sections.size()));
  w.WriteU32(0);  // header CRC placeholder, patched below
  for (size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    w.WriteString(s.name);
    w.WriteU64(s.payload.size());
    w.WriteU64(s.record_count);
    w.WriteU32(Crc32c(s.payload.data(), s.payload.size()));
    w.WriteU64(offsets[i]);
  }
  std::string out = header.str();
  PutU32At(&out, kHeaderCrcOffset, Crc32c(out.data(), out.size()));
  for (size_t i = 0; i < sections.size(); ++i) {
    out.resize(static_cast<size_t>(offsets[i]), '\0');  // alignment padding
    out += sections[i].payload;
  }
  return out;
}

Result<std::vector<AlignedSection>> ParseAlignedContainer(
    const char* data, size_t size, const char magic[4],
    uint32_t expected_version, size_t* header_size) {
  MemCursor cur(data, size);
  char got[4];
  OPMAP_RETURN_NOT_OK(cur.ReadBytes(got, 4));
  if (std::memcmp(got, magic, 4) != 0) {
    return Status::IOError("bad magic: not a recognized container file");
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, cur.ReadU32());
  if (version != expected_version) {
    return Status::IOError("unsupported container version " +
                           std::to_string(version));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t count, cur.ReadU32());
  if (count > (1u << 10)) {
    return Status::IOError("container header corrupt: implausible section "
                           "count " + std::to_string(count));
  }
  OPMAP_ASSIGN_OR_RETURN(uint32_t stored_header_crc, cur.ReadU32());

  std::vector<AlignedSection> sections;
  sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    AlignedSection s;
    OPMAP_ASSIGN_OR_RETURN(s.name, cur.ReadString());
    OPMAP_ASSIGN_OR_RETURN(s.size, cur.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(s.record_count, cur.ReadU64());
    OPMAP_ASSIGN_OR_RETURN(s.crc, cur.ReadU32());
    OPMAP_ASSIGN_OR_RETURN(s.offset, cur.ReadU64());
    sections.push_back(std::move(s));
  }

  // Verify the header before trusting any offset it declares.
  const size_t header_end = cur.pos();
  std::string header(data, header_end);
  PutU32At(&header, kHeaderCrcOffset, 0);
  IoCrcVerified()->Increment();
  if (Crc32c(header.data(), header.size()) != stored_header_crc) {
    return Status::IOError("container header CRC mismatch (the section "
                           "table is corrupt)");
  }

  // Range-check every payload against the file, but read none of them:
  // payload CRCs are verified lazily via VerifyAlignedPayload.
  uint64_t end = header_end;
  for (const AlignedSection& s : sections) {
    if (s.offset % kAlignedPayloadAlignment != 0) {
      return Status::IOError("section '" + s.name + "' payload offset " +
                             std::to_string(s.offset) + " is not " +
                             std::to_string(kAlignedPayloadAlignment) +
                             "-byte aligned");
    }
    if (s.offset < header_end || s.size > size || s.offset > size - s.size) {
      return Status::IOError(
          "section '" + s.name + "' truncated: header declares bytes [" +
          std::to_string(s.offset) + ", " +
          std::to_string(s.offset + s.size) + ") in a " +
          std::to_string(size) + "-byte file");
    }
    if (s.offset + s.size > end) end = s.offset + s.size;
  }
  if (end != size) {
    return Status::IOError("container has " + std::to_string(size - end) +
                           " trailing bytes after the last section");
  }
  if (header_size != nullptr) *header_size = header_end;
  return sections;
}

Status VerifyAlignedPayload(const char* data, const AlignedSection& section) {
  IoCrcVerified()->Increment();
  if (Crc32c(data + section.offset, static_cast<size_t>(section.size)) !=
      section.crc) {
    return Status::IOError("section '" + section.name +
                           "' CRC mismatch: the file is corrupt");
  }
  return Status::OK();
}

Result<const AlignedSection*> FindAlignedSection(
    const std::vector<AlignedSection>& sections, const std::string& name) {
  for (const AlignedSection& s : sections) {
    if (s.name == name) return &s;
  }
  return Status::IOError("container is missing the '" + name + "' section");
}

}  // namespace opmap
