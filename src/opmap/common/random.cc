#include "opmap/common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace opmap {

namespace {

// splitmix64, used only to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  // Box-Muller; u1 in (0,1] so log is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace opmap
