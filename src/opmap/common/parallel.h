#ifndef OPMAP_COMMON_PARALLEL_H_
#define OPMAP_COMMON_PARALLEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "opmap/common/status.h"

namespace opmap {

/// Threading configuration plumbed through the public APIs (cube
/// materialization, the comparator, the CAR miner).
///
/// Every parallel section in the library is shard-and-merge with exact
/// integer merge semantics, so results are bit-identical to the serial
/// path for any thread count; `num_threads` is purely a performance knob.
struct ParallelOptions {
  /// Worker count for parallel sections. 0 = auto: the OPMAP_THREADS
  /// environment variable when set to a positive integer, otherwise the
  /// hardware concurrency. 1 = the exact serial code path (no pool, no
  /// sharding). N > 1 = at most N concurrent workers.
  int num_threads = 0;
};

/// Hard cap on workers per parallel section; requests above it are clamped.
inline constexpr int kMaxThreads = 64;

/// Parses a thread-count string ("0", "4"). Shared by the CLI `--threads`
/// flag and the OPMAP_THREADS environment variable. Rejects negatives,
/// empty strings, trailing garbage, and values above 1024 with
/// kInvalidArgument.
Result<int> ParseThreadCount(const std::string& text);

/// The worker count a parallel section would use for `options`: the
/// explicit `num_threads` if positive, else the OPMAP_THREADS default,
/// else the hardware concurrency; always in [1, kMaxThreads].
int EffectiveThreads(const ParallelOptions& options = {});

/// A lazily-started shared worker pool. The first parallel section spins
/// up workers on demand (never more than kMaxThreads - 1: the submitting
/// thread always participates); serial programs never pay for a pool.
///
/// Re-entrant use is safe: a task that itself enters a parallel section
/// runs that section inline on its own thread, so nested parallelism can
/// never deadlock the pool or oversubscribe the machine.
class ThreadPool {
 public:
  /// The process-wide pool. Workers are joined at process exit.
  static ThreadPool* Shared();

  /// Workers currently started (grows on demand).
  int num_workers() const;

  /// Runs task(0), ..., task(num_tasks - 1) across the pool and the
  /// calling thread, blocking until every task finished. Tasks are claimed
  /// dynamically, so callers must not rely on any task-to-thread mapping.
  ///
  /// If tasks throw, the exception from the lowest task index is rethrown
  /// on the calling thread after all tasks settled; once any task has
  /// thrown, tasks not yet started are skipped.
  void Run(int num_tasks, const std::function<void(int)>& task);

  /// Enqueues a detached task and returns immediately; the task runs on a
  /// pool worker as soon as one is free (at least one worker is started if
  /// none exist). Workers prefer fan-out jobs submitted via Run, so posted
  /// tasks never delay a blocking parallel section by more than the task
  /// already running. A posted task that itself enters a parallel section
  /// runs it inline (same nesting rule as Run). Tasks must not throw;
  /// escaped exceptions are swallowed and counted in
  /// `pool.posted_exceptions`. Used by the serving daemon's request
  /// scheduler.
  void Post(std::function<void()> task);

  /// Grows the pool to at least `num_workers` threads (clamped to
  /// kMaxThreads - 1) so a burst of Post calls does not serialize behind a
  /// single lazily-started worker.
  void Reserve(int num_workers);

  ~ThreadPool();

 private:
  ThreadPool() = default;
  struct Impl;
  Impl* impl();

  Impl* impl_ = nullptr;
};

/// Element-wise parallel for: calls fn(i) for every i in [begin, end),
/// chunked so each submitted task covers at least `grain` consecutive
/// indices (grain < 1 is treated as 1). With EffectiveThreads(options)
/// <= 1, or a range not worth splitting, this is a plain serial loop.
/// Exceptions propagate as in ThreadPool::Run; in the serial path the
/// loop stops at the first throw.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t)>& fn,
                 const ParallelOptions& options = {});

/// Splits [begin, end) into exactly `num_shards` contiguous ranges (some
/// possibly empty when the range is short) and runs
/// fn(shard, shard_begin, shard_end) for each. Shard boundaries depend
/// only on the range and the shard count — never on the pool size or
/// scheduling — which is what makes shard-and-merge aggregation
/// reproducible. num_shards < 1 is treated as 1; with one shard fn runs
/// inline on the calling thread.
void ParallelForShards(int64_t begin, int64_t end, int num_shards,
                       const std::function<void(int, int64_t, int64_t)>& fn);

}  // namespace opmap

#endif  // OPMAP_COMMON_PARALLEL_H_
