#ifndef OPMAP_COMMON_IO_H_
#define OPMAP_COMMON_IO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "opmap/common/status.h"

namespace opmap {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected). Used by the v2
/// container format to detect bit rot in persisted cube stores and dataset
/// snapshots. Software table-driven implementation; `crc` chains calls so
/// large payloads can be checksummed incrementally.
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

// ---------------------------------------------------------------------------
// Env seam: every filesystem touch of the persistence layer goes through an
// Env so tests can interpose a FaultInjectingEnv and deterministically fail
// the Nth read/write/rename/fsync. Mirrors leveldb's Env in miniature.
// ---------------------------------------------------------------------------

/// Append-only file handle. Writers must Flush+Sync before Close to get
/// crash durability; Close reports deferred write errors.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const char* data, size_t n) = 0;
  Status Append(const std::string& data) {
    return Append(data.data(), data.size());
  }
  /// Pushes buffered bytes to the OS.
  virtual Status Flush() = 0;
  /// Flush + fsync: bytes survive power loss once this returns OK.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Forward-only reader with bounded reads: Read returns at most `n` bytes
/// (short reads only at end of file), so a corrupt length field can never
/// force an unbounded allocation.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to `n` bytes, appending to `out`. Sets `*eof` when the end
  /// of the file was reached.
  virtual Status Read(size_t n, std::string* out, bool* eof) = 0;
};

/// A read-only byte range backed either by a real memory mapping (zero
/// copies, pages faulted in on first touch) or by an aligned heap buffer
/// (the read-into-buffer fallback). `data()` is 64-byte aligned in both
/// cases, so int64 count arrays laid out on aligned offsets inside the
/// region can be read in place.
class MappedRegion {
 public:
  virtual ~MappedRegion() = default;
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when backed by mmap (pages load lazily); false for the heap
  /// fallback (the whole file was read up front).
  virtual bool is_mmap() const = 0;
  /// Bytes of the region currently resident in physical memory, or -1 when
  /// the platform cannot tell. Heap-backed regions are fully resident.
  virtual int64_t ResidentBytes() const = 0;

 protected:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Abstract filesystem. `Env::Default()` is the real POSIX filesystem; the
/// persistence layer takes an Env* (nullptr = default) everywhere so fault
/// injection and future remote backends need no code changes.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment. Never deleted.
  static Env* Default();

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;
  virtual Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) = 0;
  /// Maps `path` read-only. The base implementation reads the whole file
  /// through NewSequentialFile into a 64-byte-aligned heap buffer (so any
  /// Env works, and FaultInjectingEnv read faults apply); PosixEnv
  /// overrides it with a real mmap and falls back to the heap path when
  /// mmap is unavailable. The region is immutable and independent of this
  /// Env's lifetime.
  virtual Result<std::unique_ptr<MappedRegion>> MapFile(
      const std::string& path);
  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  /// Creates a directory (the parent must exist). Succeeds when the
  /// directory already exists, so callers can open-or-create idempotently.
  virtual Status CreateDir(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  /// Backoff sleeps route through the Env so tests run at full speed.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Reads the whole file into `out` in bounded chunks. Fails with
/// kOutOfRange if the file exceeds `max_bytes` instead of exhausting
/// memory on a corrupt or hostile input.
Status ReadFileToString(Env* env, const std::string& path, std::string* out,
                        uint64_t max_bytes = 1ULL << 32);

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Filesystem operations a FaultInjectingEnv can fail.
enum class FaultOp : int {
  kOpenWrite = 0,
  kOpenRead = 1,
  kWrite = 2,
  kRead = 3,
  kSync = 4,
  kRename = 5,
  kDelete = 6,
  kMap = 7,
  kCreateDir = 8,
};
constexpr int kNumFaultOps = 9;

/// Stable lowercase name of a FaultOp ("write", "open-read", ...), used in
/// injected-error messages and the FaultPlan repro string.
const char* FaultOpName(FaultOp op);

/// Parses a FaultOpName back to the op.
Result<FaultOp> ParseFaultOp(const std::string& name);

/// How an injected write failure mangles the bytes that still reach the
/// file. This is the power-cut model: a write interrupted by power loss
/// leaves an arbitrary prefix on disk, possibly with garbage in it.
enum class CorruptionMode : int {
  /// The failing write leaves nothing behind.
  kNone = 0,
  /// A seed-chosen prefix of the failing write reaches the file.
  kTornWrite = 1,
  /// A prefix reaches the file with one seed-chosen bit flipped.
  kBitFlip = 2,
};

/// One deterministic crash scenario for FaultInjectingEnv::ArmPlan: the
/// `nth` occurrence of `op` fails; if `op` is a write, `mode` decides what
/// the torn write leaves on disk (prefix length and flipped bit derived
/// from `seed`); with `power_cut` every subsequent operation fails too, so
/// nothing runs "after the crash" until the test reopens with a healthy
/// env. Serializes to a one-line repro string so a failing crash-drill
/// case can be replayed exactly:
///
///   op=write nth=7 mode=torn seed=123 cut=1
struct FaultPlan {
  FaultOp op = FaultOp::kWrite;
  int64_t nth = 1;
  CorruptionMode mode = CorruptionMode::kNone;
  /// Chooses the torn-prefix length and the flipped bit deterministically.
  uint64_t seed = 0;
  /// Latch power loss: after the trigger, every op of every kind fails.
  bool power_cut = true;

  /// One-line repro string (the format shown above).
  std::string ToString() const;
  /// Parses a ToString() line back into a plan.
  static Result<FaultPlan> Parse(const std::string& text);
};

/// Wraps a base Env and deterministically fails operations: the Nth
/// occurrence (1-based, counted across the env's lifetime) of the armed
/// FaultOp returns kIOError. With `fail_forever`, every occurrence from the
/// Nth on fails — use this to model a persistently broken disk (retries must
/// eventually surface the error); without it exactly one failure is injected
/// — use this to model a transient error that a retry absorbs.
class FaultInjectingEnv : public Env {
 public:
  /// `base` must outlive this env; nullptr means Env::Default().
  explicit FaultInjectingEnv(Env* base = nullptr);

  /// Arms the env: the `nth` occurrence of `op` fails (n >= 1).
  void FailAt(FaultOp op, int64_t nth, bool fail_forever = false);

  /// Arms a crash scenario (see FaultPlan). Coexists with FailAt: the plan
  /// is checked first. The trigger's injected error message embeds the
  /// plan's repro string.
  void ArmPlan(const FaultPlan& plan);

  /// True once an armed power-cut plan has tripped: the simulated machine
  /// is off, and every further operation fails until Reset().
  bool PowerLost() const { return power_lost_; }

  /// Disarms and resets all counters.
  void Reset();

  /// Operations of `op` attempted so far (failed ones included).
  int64_t OpCount(FaultOp op) const;
  /// Total operations attempted across all kinds.
  int64_t TotalOps() const;
  /// Injected failures delivered so far.
  int64_t InjectedFailures() const { return injected_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::unique_ptr<SequentialFile>> NewSequentialFile(
      const std::string& path) override;
  /// Ticks FaultOp::kMap, then maps through the BASE Env's heap fallback
  /// (never a real mmap), so kRead/kOpenRead faults also reach the mapping
  /// path deterministically.
  Result<std::unique_ptr<MappedRegion>> MapFile(
      const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  void SleepMicros(int64_t micros) override;

 private:
  friend class FaultInjectingWritableFile;
  friend class FaultInjectingSequentialFile;

  /// Bumps the counter for `op`; returns the injected error when armed and
  /// the counter hits (or passed, with fail_forever) the armed index.
  Status Tick(FaultOp op);

  /// Applies the pending torn-write corruption (set by a plan-triggered
  /// write failure) to `file`: writes the seed-chosen prefix of the failed
  /// buffer, possibly with a bit flipped, straight to the base file. Best
  /// effort — the simulated power is already out.
  void ApplyTornWrite(WritableFile* file, const char* data, size_t n);

  Env* base_;
  int64_t counts_[kNumFaultOps] = {};
  int armed_op_ = -1;
  int64_t armed_at_ = 0;
  bool fail_forever_ = false;
  int64_t injected_ = 0;
  FaultPlan plan_;
  bool plan_armed_ = false;
  bool power_lost_ = false;
  CorruptionMode pending_corruption_ = CorruptionMode::kNone;
};

// ---------------------------------------------------------------------------
// Retry + atomic replace
// ---------------------------------------------------------------------------

/// Exponential backoff for transient I/O errors (NFS blips, EINTR-ish
/// conditions). Only kIOError is considered transient; other codes fail
/// immediately.
struct RetryPolicy {
  int max_attempts = 3;
  int64_t initial_backoff_micros = 1000;
  double backoff_multiplier = 4.0;
};

/// Runs `op` until it returns OK, a non-transient code, or attempts are
/// exhausted; sleeps through `env` between attempts.
Status RetryWithBackoff(Env* env, const RetryPolicy& policy,
                        const std::function<Status()>& op);

/// Crash-safe whole-file replace: writes `contents` to `path + ".tmp"`,
/// flushes, fsyncs, closes, then atomically renames over `path`. On any
/// failure the temp file is cleaned up (best effort) and the previous file
/// at `path` — if any — is left untouched, so no failure point leaves a
/// partially written file visible at the target path. The whole sequence is
/// retried per `policy`.
Status AtomicWriteFile(Env* env, const std::string& path,
                       const std::string& contents,
                       const RetryPolicy& policy = RetryPolicy{});

// ---------------------------------------------------------------------------
// Checksummed section container (on-disk format v2)
// ---------------------------------------------------------------------------

/// One named, independently checksummed region of a container file.
struct Section {
  /// Short ASCII name ("schema", "attr_cubes"); named in corruption errors.
  std::string name;
  /// Advisory element count (rows, cubes) surfaced in the header so `info`
  /// style tooling can report sizes without parsing payloads.
  uint64_t record_count = 0;
  std::string payload;
};

/// Serializes a v2 container:
///
///   magic[4] | version u32 | section_count u32 | header_crc u32 |
///   per section: name string, payload_size u64, record_count u64,
///                payload_crc u32 | payloads back to back
///
/// `header_crc` covers magic through the section table (with its own field
/// zeroed), each `payload_crc` covers one payload, so any flipped bit is
/// attributable to a named part of the file.
std::string SerializeContainer(const char magic[4], uint32_t version,
                               const std::vector<Section>& sections);

/// Parses and fully verifies a v2 container. Errors name the corrupt part:
/// "container header CRC mismatch", "section 'schema' CRC mismatch",
/// "section 'attr_cubes' truncated". `expected_version` is the only version
/// accepted (callers dispatch v1 before calling this).
Result<std::vector<Section>> ParseContainer(const std::string& bytes,
                                            const char magic[4],
                                            uint32_t expected_version);

/// Returns the section named `name` or a kNotFound error naming it.
Result<const Section*> FindSection(const std::vector<Section>& sections,
                                   const std::string& name);

// ---------------------------------------------------------------------------
// Aligned section container (on-disk format v3)
// ---------------------------------------------------------------------------

/// Every v3 payload starts on a multiple of this file offset, so a payload
/// holding little-endian int64 counts can be read in place from a mapping.
constexpr size_t kAlignedPayloadAlignment = 64;

/// One section of an aligned container, described by the (verified) header.
/// Unlike `Section` this holds no payload copy — `offset`/`size` locate the
/// bytes inside the mapped file, and `crc` lets callers verify a payload
/// lazily, on first use, via VerifyAlignedPayload.
struct AlignedSection {
  std::string name;
  uint64_t record_count = 0;
  /// Absolute file offset of the payload; multiple of
  /// kAlignedPayloadAlignment.
  uint64_t offset = 0;
  uint64_t size = 0;
  /// CRC32C of the payload bytes.
  uint32_t crc = 0;
};

/// Serializes a v3 aligned container:
///
///   magic[4] | version u32 | section_count u32 | header_crc u32 |
///   per section: name string, payload_size u64, record_count u64,
///                payload_crc u32, payload_offset u64 |
///   zero padding | payloads, each starting at its 64-byte-aligned offset
///
/// Field encodings match the v2 container (little-endian, length-prefixed
/// names); the additions are the explicit per-section `payload_offset` and
/// the alignment padding between the table and the payloads (and between
/// payloads). `header_crc` covers magic through the section table with its
/// own field zeroed, exactly as in v2.
std::string SerializeAlignedContainer(const char magic[4], uint32_t version,
                                      const std::vector<Section>& sections);

/// Parses a v3 aligned container header from an in-memory (typically
/// mapped) file. Verifies the magic, version, header CRC, and that every
/// declared payload range is aligned and inside `size` — but does NOT touch
/// payload bytes: callers verify each payload lazily with
/// VerifyAlignedPayload before first use. `header_size`, when non-null,
/// receives the byte length of the header + section table (eager loaders
/// use it to check that alignment padding is all zeros).
Result<std::vector<AlignedSection>> ParseAlignedContainer(
    const char* data, size_t size, const char magic[4],
    uint32_t expected_version, size_t* header_size = nullptr);

/// CRC-checks one payload of an aligned container against its header entry.
/// `data` is the start of the container (the same pointer handed to
/// ParseAlignedContainer). Errors name the section.
Status VerifyAlignedPayload(const char* data, const AlignedSection& section);

/// Returns the aligned section named `name` or a kIOError naming it.
Result<const AlignedSection*> FindAlignedSection(
    const std::vector<AlignedSection>& sections, const std::string& name);

}  // namespace opmap

#endif  // OPMAP_COMMON_IO_H_
