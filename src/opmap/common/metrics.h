#ifndef OPMAP_COMMON_METRICS_H_
#define OPMAP_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace opmap {

/// Monotonically increasing event count. Increment is a single relaxed
/// atomic add, so counters can live on hot paths as long as they are
/// bumped per pass / per query, never per row.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written instantaneous value (pool size, mapped bytes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  /// Raises the gauge to `value` if it is higher (high-water marks).
  void SetMax(int64_t value) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value &&
           !value_.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log-scale latency histogram. Bucket i holds values whose
/// bit width is i: bucket 0 is exactly {0}, bucket i >= 1 covers
/// [2^(i-1), 2^i - 1]. Values are typically microseconds; negative values
/// clamp to 0. Recording is two relaxed atomic adds — safe under
/// concurrent writers, and percentile extraction tolerates concurrent
/// recording (it reads a relaxed snapshot).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(int64_t value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  /// Estimated value at percentile `p` (0..100): the rank-holding bucket's
  /// range, linearly interpolated by rank position within the bucket. The
  /// estimate always lands in the same log2 bucket as the true value, so
  /// the relative error is bounded by 2x. Returns 0 for an empty
  /// histogram.
  double Percentile(double p) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// Point-in-time copy of every registered metric, for printing, embedding
/// in bench records, or scraping by a future daemon.
struct MetricsSnapshot {
  struct HistogramStats {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t max = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// Process-wide metric namespace. Registration is get-or-create by name
/// and returns a stable pointer, so hot call sites cache it once:
///
///   static Counter* const rows =
///       MetricsRegistry::Global()->counter("cube.rows_counted");
///   rows->Increment(n);
///
/// Names are dot-separated `layer.metric` (see docs/OBSERVABILITY.md for
/// the catalog). Thread-safe; metric objects are never deleted.
class MetricsRegistry {
 public:
  /// The process-wide registry. The per-query-class latency histograms
  /// (query.compare_us, query.gi_us, query.render_us, query.mine_us) are
  /// pre-registered so callers can rely on the handles existing; the
  /// formatters drop the unexercised ones when
  /// MetricsFormatOptions::skip_zero_histograms is set.
  static MetricsRegistry* Global();

  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (objects stay registered, pointers
  /// stay valid). Tests only.
  void ResetForTest();

  MetricsRegistry();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Rendering knobs shared by the table and JSON formatters.
struct MetricsFormatOptions {
  /// Omit histograms whose count is 0. The registry pre-registers the
  /// query.*_us class histograms so they exist even in runs that never
  /// exercise them; with this set, such all-zero rows are dropped instead
  /// of bloating --stats output and every embedded bench "stats" block.
  bool skip_zero_histograms = false;
};

/// Human-readable stats table (the --stats output). Zero-valued counters
/// and gauges are elided; histograms print per `options`.
std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsFormatOptions& options = {});

/// Flat single-line JSON object: counters and gauges by name, histograms
/// as name.count / name.p50 / name.p99. Embedded as the "stats" block in
/// bench records so tools/check_bench.py can assert invariants.
std::string FormatMetricsJson(const MetricsSnapshot& snapshot,
                              const MetricsFormatOptions& options = {});

}  // namespace opmap

#endif  // OPMAP_COMMON_METRICS_H_
