#ifndef OPMAP_COMMON_SIMD_H_
#define OPMAP_COMMON_SIMD_H_

/// The SIMD seam: compile-time feature gates and runtime CPU dispatch for
/// the vectorized counting kernels (opmap/cube/count_kernels_simd.cc).
///
/// Compile-time: OPMAP_SIMD_X86 / OPMAP_SIMD_NEON mark which vector tiers
/// are compiled into this binary. Defining OPMAP_NO_SIMD (the CMake
/// OPMAP_NO_SIMD option) disables both, leaving only the scalar kernels —
/// the CI leg that keeps the scalar fallback from rotting builds this
/// way. On x86-64 the AVX2 tier is compiled behind
/// __attribute__((target("avx2"))) so the binary still runs on pre-AVX2
/// machines; on aarch64 NEON is part of the baseline ISA.
///
/// Runtime: CurrentSimdLevel() probes the executing CPU once (cached) and
/// is what the kernel dispatch actually branches on, so one binary serves
/// any machine: an AVX2 build running on a non-AVX2 x86 falls back to the
/// scalar blocked kernel automatically.

#if !defined(OPMAP_NO_SIMD)
#if defined(__x86_64__) || defined(_M_X64)
#define OPMAP_SIMD_X86 1
#elif defined(__aarch64__) || defined(_M_ARM64)
#define OPMAP_SIMD_NEON 1
#endif
#endif  // !OPMAP_NO_SIMD

namespace opmap {

/// The vector tier the running CPU supports among those compiled in.
enum class SimdLevel {
  kNone,  ///< scalar only (no support compiled in, or CPU lacks it)
  kAvx2,  ///< x86-64 AVX2: 256-bit vectors, 32-byte lanes
  kNeon,  ///< aarch64 NEON: 128-bit vectors, 16-byte lanes
};

/// Runtime-detected level, probed once per process and cached. Honors the
/// compile-time gates: an OPMAP_NO_SIMD build always reports kNone.
SimdLevel CurrentSimdLevel();

/// "none", "avx2", or "neon" — embedded in bench records (the "simd"
/// field of BENCH_simd.json) and printed by --stats surfaces.
const char* SimdLevelName(SimdLevel level);

/// Vector register width in bytes for `level`: 0, 32, or 16.
int SimdLaneBytes(SimdLevel level);

/// True when any vector tier is usable on this machine.
inline bool SimdAvailable() { return CurrentSimdLevel() != SimdLevel::kNone; }

}  // namespace opmap

#endif  // OPMAP_COMMON_SIMD_H_
