#include "opmap/common/simd.h"

namespace opmap {

namespace {

SimdLevel DetectSimdLevel() {
#if defined(OPMAP_SIMD_X86)
  // __builtin_cpu_supports executes CPUID once under the hood (the
  // compiler caches the feature bitmap in a hidden global).
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kNone;
#elif defined(OPMAP_SIMD_NEON)
  // NEON is baseline on aarch64: no runtime probe needed.
  return SimdLevel::kNeon;
#else
  return SimdLevel::kNone;
#endif
}

}  // namespace

SimdLevel CurrentSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    default:
      return "none";
  }
}

int SimdLaneBytes(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return 32;
    case SimdLevel::kNeon:
      return 16;
    default:
      return 0;
  }
}

}  // namespace opmap
