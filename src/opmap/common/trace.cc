#include "opmap/common/trace.h"

#include <time.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace opmap {

namespace {

// Per-thread event buffer cap; overflow increments the dropped counter
// instead of growing without bound.
constexpr size_t kMaxEventsPerThread = 1 << 20;

std::atomic<int64_t> g_dropped_events{0};

}  // namespace

int64_t MonotonicMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               origin)
      .count();
}

double MonotonicSeconds() {
  return static_cast<double>(MonotonicMicros()) * 1e-6;
}

int64_t ThreadCpuMicros() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1000000 + ts.tv_nsec / 1000;
#else
  return 0;
#endif
}

// Owned by exactly one recording thread; the tracer keeps a pointer for
// dumping. The mutex only contends when a snapshot/dump overlaps
// recording.
struct Tracer::ThreadBuffer {
  std::mutex mu;
  int tid = 0;
  std::vector<TraceEvent> events;
};

Tracer::Tracer() { start_us_ = MonotonicMicros(); }

Tracer* Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return tracer;
}

void Tracer::Enable() {
  // Re-anchor so trace timestamps start near zero for this run.
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    start_us_ = MonotonicMicros();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

int& Tracer::ThreadDepth() {
  static thread_local int depth = 0;
  return depth;
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  static thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = new ThreadBuffer();  // kept alive for dumping; never freed
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return buffer;
}

void Tracer::Record(const char* name, int64_t ts_us, int64_t dur_us,
                    int64_t cpu_us, int depth) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= kMaxEventsPerThread) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  TraceEvent event;
  event.name = name;
  event.tid = buffer->tid;
  event.depth = depth;
  event.ts_us = ts_us - start_us_;
  event.dur_us = dur_us;
  event.cpu_us = cpu_us;
  buffer->events.push_back(event);
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (ThreadBuffer* buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(),
                  buffer->events.end());
  }
  return events;
}

int64_t Tracer::DroppedEvents() const {
  return g_dropped_events.load(std::memory_order_relaxed);
}

std::string Tracer::ToJson() const {
  const std::vector<TraceEvent> events = SnapshotEvents();
  std::string out = "{\"traceEvents\": [";
  char buf[256];
  bool first = true;
  for (const TraceEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"cat\": \"opmap\", "
                  "\"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                  "\"ts\": %" PRId64 ", \"dur\": %" PRId64
                  ", \"args\": {\"cpu_us\": %" PRId64 ", \"depth\": %d}}",
                  first ? "" : ",", e.name, e.tid, e.ts_us, e.dur_us,
                  e.cpu_us, e.depth);
    out += buf;
    first = false;
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

Status Tracer::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IOError("short write to trace output file " + path);
  }
  return Status::OK();
}

void Tracer::Clear() {
  std::vector<ThreadBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers = buffers_;
    start_us_ = MonotonicMicros();
  }
  for (ThreadBuffer* buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
  g_dropped_events.store(0, std::memory_order_relaxed);
}

}  // namespace opmap
