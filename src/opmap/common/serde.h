#ifndef OPMAP_COMMON_SERDE_H_
#define OPMAP_COMMON_SERDE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "opmap/common/status.h"

namespace opmap {

/// Little-endian binary writer over a std::ostream. Used by the dataset
/// and cube-store persistence formats (the deployed system generates rule
/// cubes offline and reloads them interactively).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI32(int32_t v) { WriteU32(static_cast<uint32_t>(v)); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteDouble(double v);
  /// Length-prefixed UTF-8 string.
  void WriteString(const std::string& s);
  void WriteI32Vector(const std::vector<int32_t>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  void WriteDoubleVector(const std::vector<double>& v);

  /// True if every write so far succeeded.
  bool ok() const;

 private:
  std::ostream* out_;
};

/// Little-endian binary reader over a std::istream. All methods return an
/// error Status on truncated or malformed input instead of asserting, so
/// corrupt files are reported, not crashed on.
class BinaryReader {
 public:
  /// `limit` caps vector/string lengths to defend against corrupt sizes.
  explicit BinaryReader(std::istream* in, uint64_t limit = (1ULL << 40))
      : in_(in), limit_(limit) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<int32_t>> ReadI32Vector();
  Result<std::vector<int64_t>> ReadI64Vector();
  Result<std::vector<double>> ReadDoubleVector();

  /// Reads 4 bytes and verifies they equal `magic`.
  Status ExpectMagic(const char magic[4]);

 private:
  Status ReadBytes(void* dst, size_t n);

  std::istream* in_;
  uint64_t limit_;
};

}  // namespace opmap

#endif  // OPMAP_COMMON_SERDE_H_
