#include "opmap/common/serde.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace opmap {

namespace {

// The formats are defined little-endian; on a big-endian host these
// helpers would need byte swaps. All current targets are little-endian.
template <typename T>
void PutRaw(std::ostream* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->write(buf, sizeof(T));
}

}  // namespace

void BinaryWriter::WriteU8(uint8_t v) { PutRaw(out_, v); }
void BinaryWriter::WriteU32(uint32_t v) { PutRaw(out_, v); }
void BinaryWriter::WriteU64(uint64_t v) { PutRaw(out_, v); }
void BinaryWriter::WriteDouble(double v) { PutRaw(out_, v); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(int32_t)));
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(int64_t)));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  out_->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool BinaryWriter::ok() const { return out_->good(); }

Status BinaryReader::ReadBytes(void* dst, size_t n) {
  in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::IOError("unexpected end of input");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v;
  OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v;
  OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v;
  OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<int32_t> BinaryReader::ReadI32() {
  OPMAP_ASSIGN_OR_RETURN(uint32_t v, ReadU32());
  return static_cast<int32_t>(v);
}

Result<int64_t> BinaryReader::ReadI64() {
  OPMAP_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::ReadDouble() {
  double v;
  OPMAP_RETURN_NOT_OK(ReadBytes(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > limit_) return Status::IOError("string length exceeds limit");
  std::string s(static_cast<size_t>(n), '\0');
  OPMAP_RETURN_NOT_OK(ReadBytes(s.data(), s.size()));
  return s;
}

Result<std::vector<int32_t>> BinaryReader::ReadI32Vector() {
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > limit_ / sizeof(int32_t)) {
    return Status::IOError("vector length exceeds limit");
  }
  std::vector<int32_t> v(static_cast<size_t>(n));
  OPMAP_RETURN_NOT_OK(ReadBytes(v.data(), v.size() * sizeof(int32_t)));
  return v;
}

Result<std::vector<int64_t>> BinaryReader::ReadI64Vector() {
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > limit_ / sizeof(int64_t)) {
    return Status::IOError("vector length exceeds limit");
  }
  std::vector<int64_t> v(static_cast<size_t>(n));
  OPMAP_RETURN_NOT_OK(ReadBytes(v.data(), v.size() * sizeof(int64_t)));
  return v;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVector() {
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (n > limit_ / sizeof(double)) {
    return Status::IOError("vector length exceeds limit");
  }
  std::vector<double> v(static_cast<size_t>(n));
  OPMAP_RETURN_NOT_OK(ReadBytes(v.data(), v.size() * sizeof(double)));
  return v;
}

Status BinaryReader::ExpectMagic(const char magic[4]) {
  char buf[4];
  OPMAP_RETURN_NOT_OK(ReadBytes(buf, 4));
  if (std::memcmp(buf, magic, 4) != 0) {
    return Status::IOError("bad magic: not an Opportunity Map file of the "
                           "expected kind");
  }
  return Status::OK();
}

}  // namespace opmap
