#include "opmap/common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace opmap {

namespace {

// Bucket index for a value: its bit width (0 for 0, i for [2^(i-1),
// 2^i - 1]).
int BucketIndex(int64_t value) {
  int idx = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v != 0) {
    v >>= 1;
    ++idx;
  }
  return std::min(idx, Histogram::kNumBuckets - 1);
}

// Inclusive value range covered by bucket `i`.
void BucketRange(int i, double* lo, double* hi) {
  if (i == 0) {
    *lo = 0;
    *hi = 0;
    return;
  }
  *lo = std::ldexp(1.0, i - 1);
  *hi = std::ldexp(1.0, i) - 1;
}

}  // namespace

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < value && !max_.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 100.0);
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  // 1-based rank of the percentile element (nearest-rank definition).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 * total)));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] >= rank) {
      double lo, hi;
      BucketRange(i, &lo, &hi);
      // Interpolate by rank position inside the bucket.
      const double frac = counts[i] > 1
                              ? static_cast<double>(rank - seen - 1) /
                                    static_cast<double>(counts[i] - 1)
                              : 0.0;
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  double lo, hi;
  BucketRange(kNumBuckets - 1, &lo, &hi);
  return hi;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  // Per-query-class latency histograms are always present so --stats can
  // show the full set even when a run exercised only one class.
  histogram("query.compare_us");
  histogram("query.gi_us");
  histogram("query.render_us");
  histogram("query.mine_us");
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();
  return registry;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramStats s;
    s.count = h->Count();
    s.sum = h->Sum();
    s.max = h->Max();
    s.p50 = h->Percentile(50);
    s.p90 = h->Percentile(90);
    s.p99 = h->Percentile(99);
    snap.histograms[name] = s;
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string FormatMetricsTable(const MetricsSnapshot& snapshot,
                               const MetricsFormatOptions& options) {
  std::string out;
  char line[256];
  out += "-- counters --\n";
  for (const auto& [name, value] : snapshot.counters) {
    if (value == 0) continue;
    std::snprintf(line, sizeof(line), "%-32s %" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  out += "-- gauges --\n";
  for (const auto& [name, value] : snapshot.gauges) {
    if (value == 0) continue;
    std::snprintf(line, sizeof(line), "%-32s %" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  out += "-- histograms (us) --\n";
  for (const auto& [name, h] : snapshot.histograms) {
    if (options.skip_zero_histograms && h.count == 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-32s count=%-8" PRId64 " p50=%-10.0f p90=%-10.0f "
                  "p99=%-10.0f max=%" PRId64 "\n",
                  name.c_str(), h.count, h.p50, h.p90, h.p99, h.max);
    out += line;
  }
  return out;
}

std::string FormatMetricsJson(const MetricsSnapshot& snapshot,
                              const MetricsFormatOptions& options) {
  std::string out = "{";
  char buf[160];
  bool first = true;
  auto emit = [&](const std::string& key, const char* value_text) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + key + "\": " + value_text;
  };
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    emit(name, buf);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    emit(name, buf);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (options.skip_zero_histograms && h.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "%" PRId64, h.count);
    emit(name + ".count", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", h.p50);
    emit(name + ".p50", buf);
    std::snprintf(buf, sizeof(buf), "%.1f", h.p99);
    emit(name + ".p99", buf);
  }
  out += "}";
  return out;
}

}  // namespace opmap
