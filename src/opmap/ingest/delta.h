#ifndef OPMAP_INGEST_DELTA_H_
#define OPMAP_INGEST_DELTA_H_

#include <cstdint>
#include <utility>

#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset.h"

namespace opmap {

/// Incremental counting layer over CubeBuilder: accumulates row batches
/// into a delta CubeStore that a compaction later folds into the base
/// store with CubeStore::AddCounts.
///
/// This is the apply-delta half of the build-once/apply-delta split:
/// CubeBuilder stays the one-shot batch materializer (and its blocked,
/// sharded kernels count every batch here too); the delta builder makes
/// it restartable over time. Because cube cells are additive,
///
///   batch_build(rows 1..n)  ==  base(rows 1..k) + delta(rows k+1..n)
///
/// bit for bit, for any batching — the crash-drill tests assert exactly
/// this identity.
class DeltaCubeBuilder {
 public:
  /// Validates `options` against `schema` (same rules as CubeBuilder) and
  /// starts with an empty delta.
  static Result<DeltaCubeBuilder> Make(Schema schema,
                                       CubeStoreOptions options);

  DeltaCubeBuilder(DeltaCubeBuilder&&) = default;
  DeltaCubeBuilder& operator=(DeltaCubeBuilder&&) = default;

  /// Counts every row of `batch` into the delta via CubeBuilder's blocked
  /// kernels. The batch must match the schema shape.
  Status AddBatch(const Dataset& batch);

  /// Rows accumulated since the last Drain.
  int64_t rows() const { return rows_; }

  /// The accumulated delta counts (readable at any time, e.g. to merge a
  /// serving snapshot).
  const CubeStore& delta() const { return delta_; }

  /// Moves the accumulated delta out and resets to empty.
  Result<CubeStore> Drain();

  const Schema& schema() const { return schema_; }

 private:
  DeltaCubeBuilder(Schema schema, CubeStoreOptions options, CubeStore empty)
      : schema_(std::move(schema)), options_(std::move(options)),
        delta_(std::move(empty)) {}

  Schema schema_;
  CubeStoreOptions options_;
  CubeStore delta_;
  int64_t rows_ = 0;
};

}  // namespace opmap

#endif  // OPMAP_INGEST_DELTA_H_
