#include "opmap/ingest/delta.h"

#include <utility>

#include "opmap/common/metrics.h"
#include "opmap/common/trace.h"

namespace opmap {

namespace {

// One-shot empty build: allocates the zeroed cube set the delta
// accumulates into. Also how each incoming batch is counted (with the
// blocked kernels) before being added on.
Result<CubeStore> EmptyStore(const Schema& schema,
                             const CubeStoreOptions& options) {
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(schema, options));
  return std::move(builder).Finish();
}

}  // namespace

Result<DeltaCubeBuilder> DeltaCubeBuilder::Make(Schema schema,
                                                CubeStoreOptions options) {
  OPMAP_ASSIGN_OR_RETURN(CubeStore empty, EmptyStore(schema, options));
  return DeltaCubeBuilder(std::move(schema), std::move(options),
                          std::move(empty));
}

Status DeltaCubeBuilder::AddBatch(const Dataset& batch) {
  OPMAP_TRACE_SPAN("ingest.count_batch");
  if (batch.num_rows() == 0) return Status::OK();
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(schema_, options_));
  OPMAP_RETURN_NOT_OK(builder.AddDataset(batch));
  OPMAP_RETURN_NOT_OK(delta_.AddCounts(std::move(builder).Finish()));
  rows_ += batch.num_rows();
  static Counter* const rows =
      MetricsRegistry::Global()->counter("ingest.rows_counted");
  rows->Increment(batch.num_rows());
  return Status::OK();
}

Result<CubeStore> DeltaCubeBuilder::Drain() {
  OPMAP_ASSIGN_OR_RETURN(CubeStore empty, EmptyStore(schema_, options_));
  CubeStore out = std::move(delta_);
  delta_ = std::move(empty);
  rows_ = 0;
  return out;
}

}  // namespace opmap
