#ifndef OPMAP_INGEST_WAL_H_
#define OPMAP_INGEST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "opmap/common/io.h"
#include "opmap/common/status.h"

namespace opmap {

// ---------------------------------------------------------------------------
// Write-ahead log: CRC32C-framed, length-prefixed records in numbered
// segment files (docs/FORMATS.md, docs/DURABILITY.md).
//
// Frame layout (little-endian):
//
//   payload_len u32 | seq u64 | crc u32 | payload[payload_len]
//
// `crc` is CRC32C over the seq field and the payload, so a frame is valid
// only if its length, sequence number and payload all survived intact.
//
// Segment lifecycle: the writer appends frames to `wal-NNNNNN.open`; a
// seal syncs, closes and atomically renames it to `wal-NNNNNN.log`. A
// `.log` file therefore always holds only complete, synced frames —
// corruption there is bit rot and is a hard error. A `.open` file may end
// in a torn frame (power cut mid-append); readers truncate at the last
// valid frame instead of failing.
// ---------------------------------------------------------------------------

/// Byte size of the fixed frame header (len + seq + crc).
constexpr size_t kWalFrameHeaderBytes = 16;

/// Upper bound on a frame payload; a longer length field is corruption.
constexpr uint32_t kWalMaxPayloadBytes = 1u << 30;

/// "wal-NNNNNN.log" — a sealed (complete, immutable) segment.
std::string WalSegmentFileName(uint64_t segment_id);

/// "wal-NNNNNN.open" — the segment currently being appended to.
std::string WalOpenFileName(uint64_t segment_id);

/// Encodes one frame (header + payload) ready to append.
std::string EncodeWalFrame(uint64_t seq, const std::string& payload);

/// Durability policy for WalWriter.
struct WalOptions {
  /// fsync after every append (ack == durable). When false, frames are
  /// fsynced only at segment seals — faster, but an acknowledged record
  /// can be lost to a power cut before the next seal.
  bool sync_every_append = true;
  /// Seal and rotate the segment once it exceeds this many bytes.
  int64_t max_segment_bytes = 4 << 20;
};

/// Appends frames to one `.open` segment at a time, sealing and rotating
/// per WalOptions. Not thread-safe; the ingester serializes appends.
class WalWriter {
 public:
  /// Creates (truncates) `wal-<segment_id>.open` in `dir` and appends from
  /// there. `env` nullptr means Env::Default().
  static Result<WalWriter> Open(Env* env, const std::string& dir,
                                uint64_t segment_id,
                                const WalOptions& options);

  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  /// Appends one record; fsyncs per options. On OK the frame is in the
  /// segment (and durable, with sync_every_append). Rotates to a fresh
  /// segment first when the current one is over the size threshold.
  Status Append(uint64_t seq, const std::string& payload);

  /// Seals the current segment: sync, close, rename `.open` -> `.log`,
  /// then starts `segment_id()+1` as the new open segment.
  Status Roll();

  /// Syncs and closes the open segment WITHOUT sealing it — the `.open`
  /// tail is what recovery replays after a clean shutdown too, so close
  /// and crash converge on the same on-disk state.
  Status Close();

  /// Segment currently being appended to.
  uint64_t segment_id() const { return segment_id_; }

  /// Bytes appended to the current open segment so far.
  int64_t segment_bytes() const { return segment_bytes_; }

  /// Segments sealed by this writer.
  int64_t segments_sealed() const { return segments_sealed_; }

 private:
  WalWriter() = default;

  Status OpenSegment(uint64_t segment_id);
  Status SealSegment();

  Env* env_ = nullptr;
  std::string dir_;
  WalOptions options_;
  std::unique_ptr<WritableFile> file_;
  uint64_t segment_id_ = 0;
  int64_t segment_bytes_ = 0;
  int64_t segments_sealed_ = 0;
};

/// One decoded WAL record.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// Outcome of replaying one segment.
struct WalSegmentStats {
  int64_t records = 0;
  int64_t bytes = 0;
  /// True when a torn tail was detected (and logically truncated).
  bool tail_truncated = false;
  /// Bytes past the last valid frame that were discarded.
  int64_t truncated_bytes = 0;
};

/// Reads every frame of one segment file in order, invoking `fn` per
/// record. With `tolerate_torn_tail` (the `.open` segment), the first
/// invalid frame ends the replay cleanly — everything before it is intact
/// thanks to the per-frame CRC; the stats record the truncation. Without
/// it (sealed segments), any invalid frame is a kIOError naming the file.
Status ReadWalSegment(Env* env, const std::string& path,
                      bool tolerate_torn_tail,
                      const std::function<Status(const WalRecord&)>& fn,
                      WalSegmentStats* stats);

}  // namespace opmap

#endif  // OPMAP_INGEST_WAL_H_
