#ifndef OPMAP_INGEST_INGESTER_H_
#define OPMAP_INGEST_INGESTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "opmap/common/io.h"
#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset.h"
#include "opmap/ingest/delta.h"
#include "opmap/ingest/wal.h"

namespace opmap {

class QueryCache;

/// Streaming-ingestion configuration.
struct IngestOptions {
  /// WAL durability policy (--fsync=always|seal).
  WalOptions wal;
  /// Compact automatically after this many acknowledged batches
  /// (0 = only on explicit Compact()).
  int64_t compact_every_batches = 0;
  /// Cube materialization options (kernel, threads, pair cubes, tiles) —
  /// used for the initial build, every delta batch and every recovery
  /// replay, so all paths count identically.
  CubeStoreOptions cube;
};

/// Point-in-time ingestion counters (see also the process-wide wal.* /
/// ingest.* / compact.* metrics).
struct IngestStats {
  /// Sequence number the next acknowledged batch will get.
  uint64_t next_seq = 0;
  /// Highest sequence number folded into the on-disk cube container.
  uint64_t last_applied_seq = 0;
  /// Current cube container generation (cubes-NNNNNN.opmc).
  uint64_t cube_generation = 0;
  int64_t batches_appended = 0;
  int64_t rows_appended = 0;
  int64_t compactions = 0;
  int64_t segments_sealed = 0;
  /// Records replayed from the WAL by the last Open.
  int64_t replayed_records = 0;
  int64_t replayed_rows = 0;
  /// True when the last Open truncated a torn WAL tail.
  bool tail_truncated = false;
  int64_t truncated_bytes = 0;
  /// Publish-hook invocations that returned non-OK (the compaction itself
  /// still succeeded); last_publish_error keeps the most recent one.
  int64_t publish_failures = 0;
  std::string last_publish_error;
};

/// Crash-safe streaming ingestion into a cube directory:
///
///   DIR/MANIFEST            atomic commit point (cube generation,
///                           last-applied seq, first live WAL segment)
///   DIR/cubes-NNNNNN.opmc   v3 cube container (the compacted base)
///   DIR/wal-NNNNNN.{open,log}  WAL segments holding acknowledged batches
///                              not yet folded into the container
///
/// Every acknowledged AppendBatch is assigned a sequence number, framed
/// into the WAL (fsynced per WalOptions) and only then counted into the
/// in-memory delta — so an OK return means the rows survive a crash.
/// Compact() folds base+delta into a fresh v3 container, commits it by
/// atomically replacing MANIFEST, garbage-collects the folded WAL
/// segments, and bumps the attached QueryCache's epoch so live sessions
/// drop stale results. Open() recovers: it loads the manifest's
/// container, replays live WAL segments (tolerating a torn tail on the
/// open segment), and skips any frame with seq <= last_applied_seq —
/// replay is idempotent, each acknowledged batch is counted exactly once
/// no matter where a crash interrupted a previous compaction.
///
/// Thread-safety: AppendBatch/Compact/Snapshot/GetStats may be called
/// from any thread (internally serialized); Snapshot hands out immutable
/// shared stores that queries use lock-free.
class Ingester {
 public:
  /// Initializes a fresh ingest directory (created if missing): an empty
  /// generation-1 container over `schema` plus an empty WAL. Fails if the
  /// directory already holds a MANIFEST.
  static Result<std::unique_ptr<Ingester>> Create(Env* env,
                                                  const std::string& dir,
                                                  const Schema& schema,
                                                  const IngestOptions& options);

  /// Recovers an existing ingest directory (see class comment).
  static Result<std::unique_ptr<Ingester>> Open(Env* env,
                                                const std::string& dir,
                                                const IngestOptions& options);

  /// Create when no MANIFEST exists, Open otherwise.
  static Result<std::unique_ptr<Ingester>> OpenOrCreate(
      Env* env, const std::string& dir, const Schema& schema,
      const IngestOptions& options);

  /// Appends one batch of rows: WAL first (durable per the fsync policy),
  /// then the in-memory delta. Returns the batch's sequence number on
  /// acknowledgment. `batch` must match the ingest schema. After any I/O
  /// error the ingester latches failed (kFailedPrecondition from then on)
  /// — reopen the directory to recover; nothing acknowledged is lost.
  Result<uint64_t> AppendBatch(const Dataset& batch);

  /// Folds base + delta into a fresh v3 container, commits, GCs folded
  /// WAL segments, bumps the attached cache epoch. No-op-ish when the
  /// delta is empty (still rewrites the container and rolls the WAL).
  Status Compact();

  /// Immutable merged view of everything acknowledged so far
  /// (base + delta). Cached: cheap when nothing changed since the last
  /// call. The returned store stays valid for as long as the caller holds
  /// the pointer, across later appends and compactions.
  Result<std::shared_ptr<const CubeStore>> Snapshot();

  /// Seals nothing, syncs and closes the open WAL segment. The directory
  /// recovers identically after Close() and after a crash — by design.
  Status Close();

  /// Cache whose epoch is bumped when a compaction publishes new data.
  void set_cache(QueryCache* cache) { cache_ = cache; }

  /// Hook invoked after a compaction publishes, with the freshly
  /// compacted store and the path of the container file it was committed
  /// to — enough to point an in-process QueryEngine::SetStore at the data
  /// or to send a RELOAD naming the file to a running opmapd. Called with
  /// the ingester's internal mutex held; keep it cheap and do not call
  /// back in.
  ///
  /// A non-OK return does NOT fail the compaction (the data is already
  /// durable and served); it is recorded in IngestStats (publish_failures
  /// + last_publish_error) and the compact.publish_failures counter so a
  /// silently-broken subscriber is visible instead of lost.
  void set_publish_hook(
      std::function<Status(const CubeStore*, const std::string& cube_path)>
          hook) {
    publish_hook_ = std::move(hook);
  }

  const Schema& schema() const { return schema_; }
  IngestStats GetStats() const;

 private:
  Ingester() = default;

  struct Manifest {
    uint64_t cube_generation = 1;
    uint64_t last_applied_seq = 0;
    uint64_t first_segment_id = 1;
  };

  std::string PathOf(const std::string& name) const {
    return dir_ + "/" + name;
  }
  std::string CubeFileName(uint64_t generation) const;

  Status WriteManifest(const Manifest& manifest);
  static Result<Manifest> ReadManifest(Env* env, const std::string& dir);

  /// Replays live WAL segments into the delta; fills replay stats and
  /// returns the id the writer should open next.
  Result<uint64_t> ReplayWal();

  /// Best-effort removal of files an interrupted compaction left behind:
  /// segments below first_segment_id and containers above cube_generation.
  void CollectGarbage();

  Status CompactLocked();
  Status AppendLocked(const Dataset& batch, uint64_t* seq);

  Env* env_ = nullptr;
  std::string dir_;
  IngestOptions options_;
  Schema schema_;

  mutable std::mutex mu_;
  Manifest manifest_;
  std::shared_ptr<const CubeStore> base_;   // owned counts, mu_ guarded swap
  std::optional<DeltaCubeBuilder> delta_;
  std::optional<WalWriter> wal_;
  uint64_t next_seq_ = 1;
  bool failed_ = false;
  std::shared_ptr<const CubeStore> snapshot_;  // cached base+delta merge
  bool snapshot_dirty_ = true;
  IngestStats stats_;
  QueryCache* cache_ = nullptr;
  std::function<Status(const CubeStore*, const std::string& cube_path)>
      publish_hook_;
};

/// Re-encodes `src` (typically a freshly parsed CSV with its own
/// dictionaries) against `schema`: columns are matched by name, labels by
/// dictionary lookup, nulls pass through. Extra columns in `src` are
/// ignored; a missing column or an unknown label is an error naming it —
/// streaming ingest never grows the stored domains, so rule-space shape
/// stays fixed (discretize/re-create to change it). `src` must be
/// all-categorical.
Result<Dataset> ReencodeForSchema(const Dataset& src, const Schema& schema);

}  // namespace opmap

#endif  // OPMAP_INGEST_INGESTER_H_
