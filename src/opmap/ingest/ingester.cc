#include "opmap/ingest/ingester.h"

#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "opmap/common/metrics.h"
#include "opmap/common/serde.h"
#include "opmap/common/trace.h"
#include "opmap/core/session.h"

namespace opmap {

namespace {

constexpr char kManifestMagic[4] = {'O', 'P', 'M', 'M'};
constexpr uint32_t kManifestVersion = 1;
constexpr char kManifestName[] = "MANIFEST";

Counter* IngestBatches() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("ingest.batches");
  return c;
}
Counter* IngestRows() {
  static Counter* const c = MetricsRegistry::Global()->counter("ingest.rows");
  return c;
}
Counter* IngestRecoveries() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("ingest.recoveries");
  return c;
}
Counter* CompactRuns() {
  static Counter* const c = MetricsRegistry::Global()->counter("compact.runs");
  return c;
}
Counter* CompactPublishFailures() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("compact.publish_failures");
  return c;
}
Histogram* IngestAppendUs() {
  static Histogram* const h =
      MetricsRegistry::Global()->histogram("ingest.append_us");
  return h;
}
Histogram* CompactUs() {
  static Histogram* const h =
      MetricsRegistry::Global()->histogram("compact.us");
  return h;
}

// WAL batch payload: u32 row count, u32 attribute count, then the raw
// codes row-major. The frame CRC covers all of it, so decoding can trust
// the sizes after bounds checks.
std::string EncodeBatch(const Dataset& batch) {
  std::ostringstream out;
  BinaryWriter w(&out);
  const int attrs = batch.num_attributes();
  w.WriteU32(static_cast<uint32_t>(batch.num_rows()));
  w.WriteU32(static_cast<uint32_t>(attrs));
  for (int64_t row = 0; row < batch.num_rows(); ++row) {
    for (int a = 0; a < attrs; ++a) {
      w.WriteI32(batch.code(row, a));
    }
  }
  return out.str();
}

// Decodes a batch payload, validating every code against the schema so a
// replay can never push out-of-range codes into the counting kernels.
Status DecodeBatchInto(const std::string& payload, Dataset* out) {
  std::istringstream in(payload);
  BinaryReader r(&in);
  OPMAP_ASSIGN_OR_RETURN(const uint32_t rows, r.ReadU32());
  OPMAP_ASSIGN_OR_RETURN(const uint32_t attrs, r.ReadU32());
  const Schema& schema = out->schema();
  if (static_cast<int>(attrs) != schema.num_attributes()) {
    return Status::IOError("WAL batch has " + std::to_string(attrs) +
                           " attributes; the ingest schema has " +
                           std::to_string(schema.num_attributes()));
  }
  std::vector<ValueCode> codes(attrs);
  for (uint32_t row = 0; row < rows; ++row) {
    for (uint32_t a = 0; a < attrs; ++a) {
      OPMAP_ASSIGN_OR_RETURN(codes[a], r.ReadI32());
      const int domain = schema.attribute(static_cast<int>(a)).domain();
      if (codes[a] < kNullCode || codes[a] >= domain) {
        return Status::IOError("WAL batch code " + std::to_string(codes[a]) +
                               " is out of range for attribute " +
                               std::to_string(a));
      }
    }
    out->AppendRowUnchecked(codes.data());
  }
  return Status::OK();
}

// The append path validates batches BEFORE framing them into the WAL, so
// every acknowledged frame is replayable by construction.
Status ValidateBatch(const Dataset& batch, const Schema& schema) {
  const Schema& in = batch.schema();
  if (in.num_attributes() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "batch has " + std::to_string(in.num_attributes()) +
        " attributes; the ingest schema has " +
        std::to_string(schema.num_attributes()));
  }
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& want = schema.attribute(a);
    const Attribute& got = in.attribute(a);
    if (!got.is_categorical() || got.name() != want.name() ||
        got.domain() != want.domain()) {
      return Status::InvalidArgument("batch attribute '" + got.name() +
                                     "' does not match ingest attribute '" +
                                     want.name() + "' (use ReencodeForSchema)");
    }
    const std::vector<ValueCode>& col = batch.categorical_column(a);
    for (int64_t row = 0; row < batch.num_rows(); ++row) {
      const ValueCode c = col[static_cast<size_t>(row)];
      if (c < kNullCode || c >= want.domain()) {
        return Status::InvalidArgument("batch code out of range for '" +
                                       want.name() + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string Ingester::CubeFileName(uint64_t generation) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cubes-%06llu.opmc",
                static_cast<unsigned long long>(generation));
  return buf;
}

Status Ingester::WriteManifest(const Manifest& manifest) {
  std::ostringstream payload;
  BinaryWriter w(&payload);
  w.WriteU64(manifest.cube_generation);
  w.WriteU64(manifest.last_applied_seq);
  w.WriteU64(manifest.first_segment_id);
  std::vector<Section> sections(1);
  sections[0].name = "state";
  sections[0].record_count = 1;
  sections[0].payload = payload.str();
  return AtomicWriteFile(
      env_, PathOf(kManifestName),
      SerializeContainer(kManifestMagic, kManifestVersion, sections));
}

Result<Ingester::Manifest> Ingester::ReadManifest(Env* env,
                                                  const std::string& dir) {
  std::string bytes;
  OPMAP_RETURN_NOT_OK(
      ReadFileToString(env, dir + "/" + kManifestName, &bytes));
  OPMAP_ASSIGN_OR_RETURN(
      const std::vector<Section> sections,
      ParseContainer(bytes, kManifestMagic, kManifestVersion));
  OPMAP_ASSIGN_OR_RETURN(const Section* state,
                         FindSection(sections, "state"));
  std::istringstream in(state->payload);
  BinaryReader r(&in);
  Manifest manifest;
  OPMAP_ASSIGN_OR_RETURN(manifest.cube_generation, r.ReadU64());
  OPMAP_ASSIGN_OR_RETURN(manifest.last_applied_seq, r.ReadU64());
  OPMAP_ASSIGN_OR_RETURN(manifest.first_segment_id, r.ReadU64());
  return manifest;
}

Result<std::unique_ptr<Ingester>> Ingester::Create(
    Env* env, const std::string& dir, const Schema& schema,
    const IngestOptions& options) {
  std::unique_ptr<Ingester> ing(new Ingester());
  ing->env_ = env != nullptr ? env : Env::Default();
  ing->dir_ = dir;
  ing->options_ = options;
  ing->schema_ = schema;
  OPMAP_RETURN_NOT_OK(ing->env_->CreateDir(dir));
  if (ing->env_->FileExists(ing->PathOf(kManifestName))) {
    return Status::InvalidArgument("'" + dir +
                                   "' already holds an ingest MANIFEST");
  }
  OPMAP_ASSIGN_OR_RETURN(ing->delta_,
                         DeltaCubeBuilder::Make(schema, options.cube));
  // The generation-1 container is the empty base: created, synced and
  // manifest-committed before the first append can be acknowledged.
  OPMAP_ASSIGN_OR_RETURN(CubeStore empty, ing->delta_->Drain());
  OPMAP_RETURN_NOT_OK(
      empty.SaveToFile(ing->PathOf(ing->CubeFileName(1)), ing->env_));
  ing->base_ = std::make_shared<const CubeStore>(std::move(empty));
  ing->manifest_ = Manifest{};
  OPMAP_RETURN_NOT_OK(ing->WriteManifest(ing->manifest_));
  OPMAP_ASSIGN_OR_RETURN(
      ing->wal_,
      WalWriter::Open(ing->env_, dir, /*segment_id=*/1, options.wal));
  ing->snapshot_ = ing->base_;
  ing->snapshot_dirty_ = false;
  return ing;
}

Result<std::unique_ptr<Ingester>> Ingester::Open(Env* env,
                                                 const std::string& dir,
                                                 const IngestOptions& options) {
  OPMAP_TRACE_SPAN("ingest.recover");
  std::unique_ptr<Ingester> ing(new Ingester());
  ing->env_ = env != nullptr ? env : Env::Default();
  ing->dir_ = dir;
  ing->options_ = options;
  OPMAP_ASSIGN_OR_RETURN(ing->manifest_, ReadManifest(ing->env_, dir));
  OPMAP_ASSIGN_OR_RETURN(
      CubeStore base,
      CubeStore::LoadFromFile(
          ing->PathOf(ing->CubeFileName(ing->manifest_.cube_generation)),
          ing->env_, CubeLoadOptions{/*use_mmap=*/false}));
  ing->schema_ = base.schema();
  ing->base_ = std::make_shared<const CubeStore>(std::move(base));
  OPMAP_ASSIGN_OR_RETURN(ing->delta_,
                         DeltaCubeBuilder::Make(ing->schema_, options.cube));
  ing->CollectGarbage();
  OPMAP_ASSIGN_OR_RETURN(const uint64_t next_segment, ing->ReplayWal());
  OPMAP_ASSIGN_OR_RETURN(
      ing->wal_, WalWriter::Open(ing->env_, dir, next_segment, options.wal));
  ing->snapshot_dirty_ = true;
  IngestRecoveries()->Increment();
  return ing;
}

Result<std::unique_ptr<Ingester>> Ingester::OpenOrCreate(
    Env* env, const std::string& dir, const Schema& schema,
    const IngestOptions& options) {
  Env* e = env != nullptr ? env : Env::Default();
  if (e->FileExists(dir + "/" + kManifestName)) {
    return Open(e, dir, options);
  }
  return Create(e, dir, schema, options);
}

Result<uint64_t> Ingester::ReplayWal() {
  // Live segments run from the manifest's first id upward: sealed `.log`
  // files are complete (any damage is a hard error); `.open` segments
  // tolerate torn frames. The writer resumes on the first id with neither
  // file — recovery never appends to an existing `.open` (its tail may be
  // torn), so repeated crash/reopen cycles accumulate several `.open`
  // segments, each picking up exactly where the previous one's valid
  // prefix ended. All of them replay here, in id order.
  Dataset replayed(schema_);
  uint64_t max_seq = manifest_.last_applied_seq;
  uint64_t id = manifest_.first_segment_id;
  for (;; ++id) {
    std::string path = PathOf(WalSegmentFileName(id));
    bool tolerate = false;
    if (!env_->FileExists(path)) {
      path = PathOf(WalOpenFileName(id));
      tolerate = true;
      if (!env_->FileExists(path)) break;
    }
    WalSegmentStats seg_stats;
    OPMAP_RETURN_NOT_OK(ReadWalSegment(
        env_, path, tolerate,
        [&](const WalRecord& record) -> Status {
          // Exactly-once: frames already folded into the container by a
          // committed compaction are skipped, so a crash between the
          // manifest commit and the WAL GC never double-counts.
          if (record.seq <= manifest_.last_applied_seq) return Status::OK();
          if (record.seq != max_seq + 1) {
            return Status::IOError(
                "WAL sequence gap: expected " + std::to_string(max_seq + 1) +
                ", found " + std::to_string(record.seq));
          }
          OPMAP_RETURN_NOT_OK(DecodeBatchInto(record.payload, &replayed));
          max_seq = record.seq;
          ++stats_.replayed_records;
          return Status::OK();
        },
        &seg_stats));
    if (seg_stats.tail_truncated) {
      stats_.tail_truncated = true;
      stats_.truncated_bytes += seg_stats.truncated_bytes;
    }
  }
  OPMAP_RETURN_NOT_OK(delta_->AddBatch(replayed));
  stats_.replayed_rows = replayed.num_rows();
  next_seq_ = max_seq + 1;
  return id;
}

void Ingester::CollectGarbage() {
  // Files on the wrong side of the manifest are leftovers of an
  // interrupted compaction: containers past the committed generation
  // (written but never committed) and segments before the first live one
  // (folded but not yet deleted). Removal is best effort — a failure here
  // only defers cleanup to the next open.
  for (uint64_t g = manifest_.cube_generation + 1;; ++g) {
    const std::string path = PathOf(CubeFileName(g));
    bool found = false;
    if (env_->FileExists(path)) {
      (void)env_->DeleteFile(path);
      found = true;
    }
    if (env_->FileExists(path + ".tmp")) {
      (void)env_->DeleteFile(path + ".tmp");
      found = true;
    }
    if (!found) break;
  }
  for (uint64_t g = manifest_.cube_generation; g-- > 1;) {
    const std::string path = PathOf(CubeFileName(g));
    if (!env_->FileExists(path)) break;
    (void)env_->DeleteFile(path);
  }
  for (uint64_t id = manifest_.first_segment_id; id-- > 1;) {
    bool found = false;
    if (env_->FileExists(PathOf(WalSegmentFileName(id)))) {
      (void)env_->DeleteFile(PathOf(WalSegmentFileName(id)));
      found = true;
    }
    if (env_->FileExists(PathOf(WalOpenFileName(id)))) {
      (void)env_->DeleteFile(PathOf(WalOpenFileName(id)));
      found = true;
    }
    if (!found) break;
  }
}

Result<uint64_t> Ingester::AppendBatch(const Dataset& batch) {
  OPMAP_TRACE_SPAN("ingest.append");
  const int64_t start_us = MonotonicMicros();
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t seq = 0;
  OPMAP_RETURN_NOT_OK(AppendLocked(batch, &seq));
  IngestAppendUs()->Record(MonotonicMicros() - start_us);
  return seq;
}

Status Ingester::AppendLocked(const Dataset& batch, uint64_t* seq) {
  if (failed_) {
    return Status::FailedPrecondition(
        "ingester latched failed after an I/O error; reopen '" + dir_ +
        "' to recover");
  }
  OPMAP_RETURN_NOT_OK(ValidateBatch(batch, schema_));
  // WAL first: the batch is acknowledged only once the frame is appended
  // (and fsynced, under sync_every_append). The delta is counted after —
  // an in-memory view never gets ahead of the log.
  const uint64_t this_seq = next_seq_;
  Status wrote = wal_->Append(this_seq, EncodeBatch(batch));
  if (!wrote.ok()) {
    failed_ = true;
    return wrote;
  }
  Status counted = delta_->AddBatch(batch);
  if (!counted.ok()) {
    failed_ = true;
    return counted;
  }
  next_seq_ = this_seq + 1;
  *seq = this_seq;
  ++stats_.batches_appended;
  stats_.rows_appended += batch.num_rows();
  snapshot_dirty_ = true;
  IngestBatches()->Increment();
  IngestRows()->Increment(batch.num_rows());
  if (options_.compact_every_batches > 0 &&
      stats_.batches_appended % options_.compact_every_batches == 0) {
    OPMAP_RETURN_NOT_OK(CompactLocked());
  }
  return Status::OK();
}

Status Ingester::Compact() {
  std::lock_guard<std::mutex> lock(mu_);
  return CompactLocked();
}

Status Ingester::CompactLocked() {
  OPMAP_TRACE_SPAN("compact.run");
  const int64_t start_us = MonotonicMicros();
  if (failed_) {
    return Status::FailedPrecondition(
        "ingester latched failed after an I/O error; reopen '" + dir_ +
        "' to recover");
  }
  // Fold base + delta into a fresh container. Everything below can crash
  // at any point: until the manifest rename commits, recovery sees the
  // old generation and replays the old WAL range; after it, the new
  // generation plus the (empty) new segment range. Either way each
  // acknowledged batch is counted exactly once.
  Status status = [&]() -> Status {
    OPMAP_ASSIGN_OR_RETURN(CubeStore merged, base_->Clone());
    OPMAP_RETURN_NOT_OK(merged.AddCounts(delta_->delta()));
    const uint64_t new_gen = manifest_.cube_generation + 1;
    const uint64_t folded_seq = next_seq_ - 1;
    OPMAP_RETURN_NOT_OK(
        merged.SaveToFile(PathOf(CubeFileName(new_gen)), env_));
    // Seal the tail so the folded WAL range is closed, then commit.
    OPMAP_RETURN_NOT_OK(wal_->Roll());
    Manifest next;
    next.cube_generation = new_gen;
    next.last_applied_seq = folded_seq;
    next.first_segment_id = wal_->segment_id();
    OPMAP_RETURN_NOT_OK(WriteManifest(next));
    manifest_ = next;
    // Publish: swap the served base, drop the folded delta, invalidate.
    base_ = std::make_shared<const CubeStore>(std::move(merged));
    OPMAP_ASSIGN_OR_RETURN(CubeStore folded, delta_->Drain());
    (void)folded;
    snapshot_ = base_;
    snapshot_dirty_ = false;
    return Status::OK();
  }();
  if (!status.ok()) {
    failed_ = true;
    return status;
  }
  CollectGarbage();
  ++stats_.compactions;
  CompactRuns()->Increment();
  CompactUs()->Record(MonotonicMicros() - start_us);
  if (cache_ != nullptr) cache_->BumpEpoch();
  if (publish_hook_) {
    // The compaction is durable and served either way; a failing
    // subscriber is an observability event, not a rollback.
    const Status hook_status = publish_hook_(
        base_.get(), PathOf(CubeFileName(manifest_.cube_generation)));
    if (!hook_status.ok()) {
      ++stats_.publish_failures;
      stats_.last_publish_error = hook_status.ToString();
      CompactPublishFailures()->Increment();
    }
  }
  return Status::OK();
}

Result<std::shared_ptr<const CubeStore>> Ingester::Snapshot() {
  OPMAP_TRACE_SPAN("ingest.snapshot");
  std::lock_guard<std::mutex> lock(mu_);
  if (snapshot_dirty_) {
    if (delta_->rows() == 0) {
      snapshot_ = base_;
    } else {
      OPMAP_ASSIGN_OR_RETURN(CubeStore merged, base_->Clone());
      OPMAP_RETURN_NOT_OK(merged.AddCounts(delta_->delta()));
      snapshot_ = std::make_shared<const CubeStore>(std::move(merged));
    }
    snapshot_dirty_ = false;
  }
  return snapshot_;
}

Status Ingester::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wal_.has_value() || failed_) return Status::OK();
  return wal_->Close();
}

IngestStats Ingester::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats stats = stats_;
  stats.next_seq = next_seq_;
  stats.last_applied_seq = manifest_.last_applied_seq;
  stats.cube_generation = manifest_.cube_generation;
  if (wal_.has_value()) stats.segments_sealed = wal_->segments_sealed();
  return stats;
}

Result<Dataset> ReencodeForSchema(const Dataset& src, const Schema& schema) {
  const Schema& in = src.schema();
  // Column correspondence by name; the source (a fresh CSV parse) may
  // hold extra columns but must cover every stored one.
  std::vector<int> src_col(static_cast<size_t>(schema.num_attributes()), -1);
  for (int a = 0; a < schema.num_attributes(); ++a) {
    for (int b = 0; b < in.num_attributes(); ++b) {
      if (in.attribute(b).name() == schema.attribute(a).name()) {
        src_col[static_cast<size_t>(a)] = b;
        break;
      }
    }
    if (src_col[static_cast<size_t>(a)] < 0) {
      return Status::InvalidArgument("ingest column '" +
                                     schema.attribute(a).name() +
                                     "' is missing from the input");
    }
    if (!in.attribute(src_col[static_cast<size_t>(a)]).is_categorical()) {
      return Status::InvalidArgument(
          "ingest column '" + schema.attribute(a).name() +
          "' is not categorical in the input; discretize it first");
    }
  }
  Dataset out(schema);
  out.Reserve(src.num_rows());
  std::vector<ValueCode> codes(static_cast<size_t>(schema.num_attributes()));
  for (int64_t row = 0; row < src.num_rows(); ++row) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      const int b = src_col[static_cast<size_t>(a)];
      const ValueCode c = src.code(row, b);
      if (c == kNullCode) {
        codes[static_cast<size_t>(a)] = kNullCode;
        continue;
      }
      const std::string& label = in.attribute(b).label(c);
      Result<ValueCode> mapped = schema.attribute(a).CodeOf(label);
      if (!mapped.ok()) {
        return Status::InvalidArgument(
            "value '" + label + "' of column '" + schema.attribute(a).name() +
            "' is not in the ingest dictionary (row " + std::to_string(row) +
            "); streaming ingest cannot grow domains");
      }
      codes[static_cast<size_t>(a)] = mapped.MoveValue();
    }
    out.AppendRowUnchecked(codes.data());
  }
  return out;
}

}  // namespace opmap
