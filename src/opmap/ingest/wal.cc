#include "opmap/ingest/wal.h"

#include <cstdio>
#include <cstring>
#include <utility>

#include "opmap/common/metrics.h"
#include "opmap/common/trace.h"

namespace opmap {

namespace {

Counter* WalAppends() {
  static Counter* const c = MetricsRegistry::Global()->counter("wal.appends");
  return c;
}
Counter* WalBytesAppended() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("wal.bytes_appended");
  return c;
}
Counter* WalSyncs() {
  static Counter* const c = MetricsRegistry::Global()->counter("wal.syncs");
  return c;
}
Counter* WalSeals() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("wal.segments_sealed");
  return c;
}
Counter* WalReplayed() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("wal.records_replayed");
  return c;
}
Counter* WalTornTails() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("wal.torn_tails");
  return c;
}

void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

uint64_t GetFixed64(const char* p) {
  return static_cast<uint64_t>(GetFixed32(p)) |
         static_cast<uint64_t>(GetFixed32(p + 4)) << 32;
}

std::string SegmentName(uint64_t id, const char* suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.%s",
                static_cast<unsigned long long>(id), suffix);
  return buf;
}

// CRC32C over the little-endian seq followed by the payload — the frame's
// integrity check.
uint32_t FrameCrc(uint64_t seq, const char* payload, size_t n) {
  std::string seq_le;
  PutFixed64(&seq_le, seq);
  const uint32_t crc = Crc32c(seq_le.data(), seq_le.size());
  return Crc32c(payload, n, crc);
}

}  // namespace

std::string WalSegmentFileName(uint64_t segment_id) {
  return SegmentName(segment_id, "log");
}

std::string WalOpenFileName(uint64_t segment_id) {
  return SegmentName(segment_id, "open");
}

std::string EncodeWalFrame(uint64_t seq, const std::string& payload) {
  std::string frame;
  frame.reserve(kWalFrameHeaderBytes + payload.size());
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  PutFixed64(&frame, seq);
  PutFixed32(&frame, FrameCrc(seq, payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

Result<WalWriter> WalWriter::Open(Env* env, const std::string& dir,
                                  uint64_t segment_id,
                                  const WalOptions& options) {
  WalWriter writer;
  writer.env_ = env != nullptr ? env : Env::Default();
  writer.dir_ = dir;
  writer.options_ = options;
  OPMAP_RETURN_NOT_OK(writer.OpenSegment(segment_id));
  return writer;
}

Status WalWriter::OpenSegment(uint64_t segment_id) {
  OPMAP_ASSIGN_OR_RETURN(
      file_, env_->NewWritableFile(dir_ + "/" + WalOpenFileName(segment_id)));
  segment_id_ = segment_id;
  segment_bytes_ = 0;
  return Status::OK();
}

Status WalWriter::SealSegment() {
  OPMAP_TRACE_SPAN("wal.seal");
  if (file_ == nullptr) {
    return Status::InvalidArgument("WAL writer is closed");
  }
  // A seal promises "every frame of this .log is durable", so the sync
  // happens even under sync_every_append=false.
  OPMAP_RETURN_NOT_OK(file_->Sync());
  OPMAP_RETURN_NOT_OK(file_->Close());
  file_.reset();
  OPMAP_RETURN_NOT_OK(
      env_->RenameFile(dir_ + "/" + WalOpenFileName(segment_id_),
                       dir_ + "/" + WalSegmentFileName(segment_id_)));
  ++segments_sealed_;
  WalSeals()->Increment();
  return Status::OK();
}

Status WalWriter::Append(uint64_t seq, const std::string& payload) {
  OPMAP_TRACE_SPAN("wal.append");
  if (file_ == nullptr) {
    return Status::InvalidArgument("WAL writer is closed");
  }
  if (payload.size() > kWalMaxPayloadBytes) {
    return Status::InvalidArgument("WAL payload exceeds the frame limit");
  }
  if (segment_bytes_ > 0 && segment_bytes_ >= options_.max_segment_bytes) {
    OPMAP_RETURN_NOT_OK(Roll());
  }
  const std::string frame = EncodeWalFrame(seq, payload);
  OPMAP_RETURN_NOT_OK(file_->Append(frame.data(), frame.size()));
  if (options_.sync_every_append) {
    OPMAP_RETURN_NOT_OK(file_->Sync());
    WalSyncs()->Increment();
  }
  segment_bytes_ += static_cast<int64_t>(frame.size());
  WalAppends()->Increment();
  WalBytesAppended()->Increment(static_cast<int64_t>(frame.size()));
  return Status::OK();
}

Status WalWriter::Roll() {
  OPMAP_RETURN_NOT_OK(SealSegment());
  return OpenSegment(segment_id_ + 1);
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  OPMAP_RETURN_NOT_OK(file_->Sync());
  WalSyncs()->Increment();
  Status s = file_->Close();
  file_.reset();
  return s;
}

Status ReadWalSegment(Env* env, const std::string& path,
                      bool tolerate_torn_tail,
                      const std::function<Status(const WalRecord&)>& fn,
                      WalSegmentStats* stats) {
  OPMAP_TRACE_SPAN("wal.replay");
  if (env == nullptr) env = Env::Default();
  if (stats != nullptr) *stats = WalSegmentStats{};
  std::string bytes;
  OPMAP_RETURN_NOT_OK(ReadFileToString(env, path, &bytes));

  size_t offset = 0;
  WalRecord record;
  while (offset < bytes.size()) {
    // Every exit below the header read is either a valid frame or — for
    // the open segment — a torn tail: truncate at the last valid frame.
    std::string why;
    uint32_t len = 0;
    if (bytes.size() - offset < kWalFrameHeaderBytes) {
      why = "truncated frame header";
    } else {
      len = GetFixed32(bytes.data() + offset);
      if (len > kWalMaxPayloadBytes) {
        why = "frame length " + std::to_string(len) + " exceeds the limit";
      } else if (bytes.size() - offset - kWalFrameHeaderBytes < len) {
        why = "truncated frame payload";
      }
    }
    if (why.empty()) {
      const uint64_t seq = GetFixed64(bytes.data() + offset + 4);
      const uint32_t crc = GetFixed32(bytes.data() + offset + 12);
      const char* payload = bytes.data() + offset + kWalFrameHeaderBytes;
      if (FrameCrc(seq, payload, len) != crc) {
        why = "frame CRC mismatch";
      } else {
        record.seq = seq;
        record.payload.assign(payload, len);
        OPMAP_RETURN_NOT_OK(fn(record));
        offset += kWalFrameHeaderBytes + len;
        if (stats != nullptr) {
          ++stats->records;
          stats->bytes =
              static_cast<int64_t>(offset);
        }
        WalReplayed()->Increment();
        continue;
      }
    }
    if (!tolerate_torn_tail) {
      return Status::IOError("WAL segment '" + path + "': " + why +
                             " at offset " + std::to_string(offset));
    }
    if (stats != nullptr) {
      stats->tail_truncated = true;
      stats->truncated_bytes = static_cast<int64_t>(bytes.size() - offset);
    }
    WalTornTails()->Increment();
    break;
  }
  return Status::OK();
}

}  // namespace opmap
