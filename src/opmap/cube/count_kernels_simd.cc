// Vector implementations of the counting primitives behind
// CountKernel::kSimd (see count_kernels_simd.h for the contracts).
//
// One translation unit serves every machine: the AVX2 tier is compiled
// behind __attribute__((target("avx2"))) so the rest of the binary keeps
// the default ISA and pre-AVX2 CPUs simply get a nullptr kernel table at
// runtime; NEON is baseline on aarch64 and needs no per-function gate.
// GetSimdKernels() is the single dispatch point — it consults the cached
// CurrentSimdLevel() CPUID probe (opmap/common/simd.h).
//
// The compaction trick both tiers share: instead of scattering +1s with
// per-lane conflict detection (gathers plus vpconflictd-style repair),
// each vector of fused indices is left-packed through a small permutation
// LUT keyed by the validity mask, null rows vanish, and a scalar
// multi-accumulator histogram consumes the dense index stream. That keeps
// the histogram gather-free and makes the counts bit-identical to the
// scalar kernels (int64 addition commutes; only the visit order changes).

#include "opmap/cube/count_kernels_simd.h"

#include <array>
#include <cstring>

#include "opmap/common/simd.h"

#if defined(OPMAP_SIMD_X86)
#include <immintrin.h>
#endif
#if defined(OPMAP_SIMD_NEON)
#include <arm_neon.h>
#endif

namespace opmap {
namespace internal {
namespace {

#if defined(OPMAP_SIMD_X86) || defined(OPMAP_SIMD_NEON)

enum class FuseMode { kFusedOnly, kFusedAndIdx, kIdxOnly };

// Scalar tail shared by both tiers. Index math runs in uint32 so even a
// sentinel lane cannot trip signed overflow (eligibility checks in
// count_kernels.cc guarantee valid lanes fit int32).
template <typename T, FuseMode M>
inline int64_t FuseScalarTail(const T* col, uint32_t sentinel,
                              const int32_t* base, int32_t mult, int64_t begin,
                              int64_t len, int32_t* fused, int32_t* idx,
                              int64_t cnt) {
  for (int64_t k = begin; k < len; ++k) {
    const uint32_t v = col[k];
    const int32_t b = base[k];
    const bool ok = v != sentinel && b >= 0;
    const int32_t f = static_cast<int32_t>(
        v * static_cast<uint32_t>(mult) + static_cast<uint32_t>(b));
    if constexpr (M != FuseMode::kIdxOnly) fused[k] = ok ? f : -1;
    if constexpr (M != FuseMode::kFusedOnly) {
      if (ok) idx[cnt++] = f;
    }
  }
  return cnt;
}

#endif  // OPMAP_SIMD_X86 || OPMAP_SIMD_NEON

#if defined(OPMAP_SIMD_X86)

// ---------------------------------------------------------------------------
// AVX2 tier: 8 int32 lanes.
// ---------------------------------------------------------------------------

// Left-pack LUT: row `mask` holds the lane permutation that moves the set
// bits of `mask` (the valid lanes) to the front, for vpermd.
struct Compress8Table {
  alignas(32) int32_t perm[256][8];
};

constexpr Compress8Table MakeCompress8Table() {
  Compress8Table t{};
  for (int mask = 0; mask < 256; ++mask) {
    int n = 0;
    for (int lane = 0; lane < 8; ++lane) {
      if (mask & (1 << lane)) t.perm[mask][n++] = lane;
    }
    for (; n < 8; ++n) t.perm[mask][n] = 0;
  }
  return t;
}

constexpr Compress8Table kCompress8 = MakeCompress8Table();

template <typename T>
__attribute__((target("avx2"))) inline __m256i LoadWiden8(const T* p) {
  if constexpr (sizeof(T) == 1) {
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  } else {
    return _mm256_cvtepu16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
}

template <typename T>
__attribute__((target("avx2"))) void WidenAvx2(const T* col, uint32_t sentinel,
                                               int64_t len, int32_t* out) {
  const __m256i vsent = _mm256_set1_epi32(static_cast<int32_t>(sentinel));
  const __m256i vneg1 = _mm256_set1_epi32(-1);
  int64_t k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m256i v = LoadWiden8(col + k);
    const __m256i is_null = _mm256_cmpeq_epi32(v, vsent);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm256_blendv_epi8(v, vneg1, is_null));
  }
  for (; k < len; ++k) {
    out[k] = col[k] == sentinel ? -1 : static_cast<int32_t>(col[k]);
  }
}

template <typename T, FuseMode M>
__attribute__((target("avx2"))) int64_t FuseAvx2(const T* col,
                                                 uint32_t sentinel,
                                                 const int32_t* base,
                                                 int32_t mult, int64_t len,
                                                 int32_t* fused,
                                                 int32_t* idx) {
  const __m256i vsent = _mm256_set1_epi32(static_cast<int32_t>(sentinel));
  const __m256i vneg1 = _mm256_set1_epi32(-1);
  const __m256i vmult = _mm256_set1_epi32(mult);
  int64_t cnt = 0;
  int64_t k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m256i v = LoadWiden8(col + k);
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(base + k));
    const __m256i col_null = _mm256_cmpeq_epi32(v, vsent);
    const __m256i base_ok = _mm256_cmpgt_epi32(b, vneg1);  // base >= 0
    const __m256i valid = _mm256_andnot_si256(col_null, base_ok);
    // Sentinel lanes may wrap; they are masked out below either way.
    const __m256i f = _mm256_add_epi32(_mm256_mullo_epi32(v, vmult), b);
    if constexpr (M != FuseMode::kIdxOnly) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(fused + k),
                          _mm256_blendv_epi8(vneg1, f, valid));
    }
    if constexpr (M != FuseMode::kFusedOnly) {
      const unsigned mask = static_cast<unsigned>(
          _mm256_movemask_ps(_mm256_castsi256_ps(valid)));
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kCompress8.perm[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(idx + cnt),
                          _mm256_permutevar8x32_epi32(f, perm));
      cnt += __builtin_popcount(mask);
    }
  }
  return FuseScalarTail<T, M>(col, sentinel, base, mult, k, len, fused, idx,
                              cnt);
}

__attribute__((target("avx2"))) void CountSmallAvx2(
    const uint8_t* a, uint32_t sent_a, const uint8_t* b, uint32_t sent_b,
    int32_t nc, int32_t cells, int64_t len, int64_t* counts) {
  // Pass 1: materialize the fused byte per row — a*nc + b for valid rows,
  // 0xFF otherwise (cells <= 32, so 0xFF cannot collide with a real
  // cell). The 16-bit blend happens before the pack, so a sentinel
  // product that exceeds 255 never reaches the saturating narrow.
  alignas(32) uint8_t fb[kSimdCountSmallMaxRows];
  const __m256i zero = _mm256_setzero_si256();
  const __m256i vsa = _mm256_set1_epi16(static_cast<short>(sent_a));
  const __m256i vsb = _mm256_set1_epi16(static_cast<short>(sent_b));
  const __m256i vnc = _mm256_set1_epi16(static_cast<short>(nc));
  const __m256i vff = _mm256_set1_epi16(0xFF);
  int64_t k = 0;
  for (; k + 32 <= len; k += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + k));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + k));
    const __m256i alo = _mm256_unpacklo_epi8(va, zero);
    const __m256i ahi = _mm256_unpackhi_epi8(va, zero);
    const __m256i blo = _mm256_unpacklo_epi8(vb, zero);
    const __m256i bhi = _mm256_unpackhi_epi8(vb, zero);
    __m256i flo = _mm256_add_epi16(_mm256_mullo_epi16(alo, vnc), blo);
    __m256i fhi = _mm256_add_epi16(_mm256_mullo_epi16(ahi, vnc), bhi);
    const __m256i badlo = _mm256_or_si256(_mm256_cmpeq_epi16(alo, vsa),
                                          _mm256_cmpeq_epi16(blo, vsb));
    const __m256i badhi = _mm256_or_si256(_mm256_cmpeq_epi16(ahi, vsa),
                                          _mm256_cmpeq_epi16(bhi, vsb));
    flo = _mm256_blendv_epi8(flo, vff, badlo);
    fhi = _mm256_blendv_epi8(fhi, vff, badhi);
    _mm256_store_si256(reinterpret_cast<__m256i*>(fb + k),
                       _mm256_packus_epi16(flo, fhi));
  }
  for (; k < len; ++k) {
    const uint32_t av = a[k];
    const uint32_t bv = b[k];
    fb[k] = (av == sent_a || bv == sent_b)
                ? 0xFF
                : static_cast<uint8_t>(av * static_cast<uint32_t>(nc) + bv);
  }
  // Pass 2: one byte-accumulator sweep per cell over the L1-resident fb
  // buffer. len <= 2048 keeps every lane <= 64 hits, far from the 255
  // byte ceiling, so no mid-sweep flush is needed.
  const int64_t len32 = len & ~int64_t{31};
  for (int32_t c = 0; c < cells; ++c) {
    const __m256i vc = _mm256_set1_epi8(static_cast<char>(c));
    __m256i acc = _mm256_setzero_si256();
    for (int64_t blk = 0; blk < len32; blk += 32) {
      const __m256i fv =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(fb + blk));
      acc = _mm256_sub_epi8(acc, _mm256_cmpeq_epi8(fv, vc));
    }
    const __m256i sad = _mm256_sad_epu8(acc, zero);
    int64_t total = _mm256_extract_epi64(sad, 0) +
                    _mm256_extract_epi64(sad, 1) +
                    _mm256_extract_epi64(sad, 2) + _mm256_extract_epi64(sad, 3);
    for (int64_t t = len32; t < len; ++t) {
      total += fb[t] == static_cast<uint8_t>(c);
    }
    counts[c] += total;
  }
}

constexpr SimdKernels kAvx2Kernels = {
    &WidenAvx2<uint8_t>,
    &WidenAvx2<uint16_t>,
    &FuseAvx2<uint8_t, FuseMode::kFusedOnly>,
    &FuseAvx2<uint16_t, FuseMode::kFusedOnly>,
    &FuseAvx2<uint8_t, FuseMode::kFusedAndIdx>,
    &FuseAvx2<uint16_t, FuseMode::kFusedAndIdx>,
    &FuseAvx2<uint8_t, FuseMode::kIdxOnly>,
    &FuseAvx2<uint16_t, FuseMode::kIdxOnly>,
    &CountSmallAvx2,
};

#endif  // OPMAP_SIMD_X86

#if defined(OPMAP_SIMD_NEON)

// ---------------------------------------------------------------------------
// NEON tier: 4 int32 lanes. Mirrors the AVX2 structure; the left-pack
// permutation runs through vqtbl1q_u8 with a 16-entry byte-shuffle LUT.
// ---------------------------------------------------------------------------

struct Compress4Table {
  alignas(16) uint8_t perm[16][16];
};

constexpr Compress4Table MakeCompress4Table() {
  Compress4Table t{};
  for (int mask = 0; mask < 16; ++mask) {
    int n = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (mask & (1 << lane)) {
        for (int byte = 0; byte < 4; ++byte) {
          t.perm[mask][n * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++n;
      }
    }
    for (; n < 4; ++n) {
      for (int byte = 0; byte < 4; ++byte) {
        t.perm[mask][n * 4 + byte] = 0;
      }
    }
  }
  return t;
}

constexpr Compress4Table kCompress4 = MakeCompress4Table();

template <typename T>
inline int32x4_t LoadWiden4(const T* p) {
  if constexpr (sizeof(T) == 1) {
    uint32_t w;
    std::memcpy(&w, p, 4);
    const uint16x4_t h = vget_low_u16(vmovl_u8(vcreate_u8(w)));
    return vreinterpretq_s32_u32(vmovl_u16(h));
  } else {
    return vreinterpretq_s32_u32(vmovl_u16(vld1_u16(p)));
  }
}

template <typename T>
void WidenNeon(const T* col, uint32_t sentinel, int64_t len, int32_t* out) {
  const int32x4_t vsent = vdupq_n_s32(static_cast<int32_t>(sentinel));
  const int32x4_t vneg1 = vdupq_n_s32(-1);
  int64_t k = 0;
  for (; k + 4 <= len; k += 4) {
    const int32x4_t v = LoadWiden4(col + k);
    const uint32x4_t is_null = vceqq_s32(v, vsent);
    vst1q_s32(out + k, vbslq_s32(is_null, vneg1, v));
  }
  for (; k < len; ++k) {
    out[k] = col[k] == sentinel ? -1 : static_cast<int32_t>(col[k]);
  }
}

template <typename T, FuseMode M>
int64_t FuseNeon(const T* col, uint32_t sentinel, const int32_t* base,
                 int32_t mult, int64_t len, int32_t* fused, int32_t* idx) {
  const int32x4_t vsent = vdupq_n_s32(static_cast<int32_t>(sentinel));
  const int32x4_t vneg1 = vdupq_n_s32(-1);
  const int32x4_t vzero = vdupq_n_s32(0);
  alignas(16) static constexpr uint32_t kLaneBits[4] = {1u, 2u, 4u, 8u};
  const uint32x4_t lane_bits = vld1q_u32(kLaneBits);
  int64_t cnt = 0;
  int64_t k = 0;
  for (; k + 4 <= len; k += 4) {
    const int32x4_t v = LoadWiden4(col + k);
    const int32x4_t b = vld1q_s32(base + k);
    const uint32x4_t col_null = vceqq_s32(v, vsent);
    const uint32x4_t base_ok = vcgeq_s32(b, vzero);
    const uint32x4_t valid = vbicq_u32(base_ok, col_null);
    const int32x4_t f = vmlaq_n_s32(b, v, mult);  // b + v * mult
    if constexpr (M != FuseMode::kIdxOnly) {
      vst1q_s32(fused + k, vbslq_s32(valid, f, vneg1));
    }
    if constexpr (M != FuseMode::kFusedOnly) {
      const uint32_t mask = vaddvq_u32(vandq_u32(valid, lane_bits));
      const uint8x16_t perm = vld1q_u8(kCompress4.perm[mask]);
      const uint8x16_t packed = vqtbl1q_u8(vreinterpretq_u8_s32(f), perm);
      vst1q_s32(idx + cnt, vreinterpretq_s32_u8(packed));
      cnt += __builtin_popcount(mask);
    }
  }
  return FuseScalarTail<T, M>(col, sentinel, base, mult, k, len, fused, idx,
                              cnt);
}

void CountSmallNeon(const uint8_t* a, uint32_t sent_a, const uint8_t* b,
                    uint32_t sent_b, int32_t nc, int32_t cells, int64_t len,
                    int64_t* counts) {
  alignas(16) uint8_t fb[kSimdCountSmallMaxRows];
  const uint16x8_t vsa = vdupq_n_u16(static_cast<uint16_t>(sent_a));
  const uint16x8_t vsb = vdupq_n_u16(static_cast<uint16_t>(sent_b));
  const uint16x8_t vff = vdupq_n_u16(0xFF);
  int64_t k = 0;
  for (; k + 16 <= len; k += 16) {
    const uint8x16_t va = vld1q_u8(a + k);
    const uint8x16_t vb = vld1q_u8(b + k);
    const uint16x8_t alo = vmovl_u8(vget_low_u8(va));
    const uint16x8_t ahi = vmovl_u8(vget_high_u8(va));
    const uint16x8_t blo = vmovl_u8(vget_low_u8(vb));
    const uint16x8_t bhi = vmovl_u8(vget_high_u8(vb));
    uint16x8_t flo = vmlaq_n_u16(blo, alo, static_cast<uint16_t>(nc));
    uint16x8_t fhi = vmlaq_n_u16(bhi, ahi, static_cast<uint16_t>(nc));
    const uint16x8_t badlo =
        vorrq_u16(vceqq_u16(alo, vsa), vceqq_u16(blo, vsb));
    const uint16x8_t badhi =
        vorrq_u16(vceqq_u16(ahi, vsa), vceqq_u16(bhi, vsb));
    flo = vbslq_u16(badlo, vff, flo);
    fhi = vbslq_u16(badhi, vff, fhi);
    vst1q_u8(fb + k, vcombine_u8(vqmovn_u16(flo), vqmovn_u16(fhi)));
  }
  for (; k < len; ++k) {
    const uint32_t av = a[k];
    const uint32_t bv = b[k];
    fb[k] = (av == sent_a || bv == sent_b)
                ? 0xFF
                : static_cast<uint8_t>(av * static_cast<uint32_t>(nc) + bv);
  }
  // len <= 2048 keeps every byte lane <= 128 hits — under the 255
  // ceiling, no mid-sweep flush.
  const int64_t len16 = len & ~int64_t{15};
  for (int32_t c = 0; c < cells; ++c) {
    const uint8x16_t vc = vdupq_n_u8(static_cast<uint8_t>(c));
    uint8x16_t acc = vdupq_n_u8(0);
    for (int64_t blk = 0; blk < len16; blk += 16) {
      acc = vsubq_u8(acc, vceqq_u8(vld1q_u8(fb + blk), vc));
    }
    int64_t total = vaddlvq_u8(acc);
    for (int64_t t = len16; t < len; ++t) {
      total += fb[t] == static_cast<uint8_t>(c);
    }
    counts[c] += total;
  }
}

constexpr SimdKernels kNeonKernels = {
    &WidenNeon<uint8_t>,
    &WidenNeon<uint16_t>,
    &FuseNeon<uint8_t, FuseMode::kFusedOnly>,
    &FuseNeon<uint16_t, FuseMode::kFusedOnly>,
    &FuseNeon<uint8_t, FuseMode::kFusedAndIdx>,
    &FuseNeon<uint16_t, FuseMode::kFusedAndIdx>,
    &FuseNeon<uint8_t, FuseMode::kIdxOnly>,
    &FuseNeon<uint16_t, FuseMode::kIdxOnly>,
    &CountSmallNeon,
};

#endif  // OPMAP_SIMD_NEON

}  // namespace

const SimdKernels* GetSimdKernels() {
#if defined(OPMAP_SIMD_X86)
  if (CurrentSimdLevel() == SimdLevel::kAvx2) return &kAvx2Kernels;
#elif defined(OPMAP_SIMD_NEON)
  if (CurrentSimdLevel() == SimdLevel::kNeon) return &kNeonKernels;
#endif
  return nullptr;
}

}  // namespace internal
}  // namespace opmap
