#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <sstream>

#include "opmap/common/io.h"
#include "opmap/common/metrics.h"
#include "opmap/common/serde.h"
#include "opmap/common/trace.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset_io.h"

namespace opmap {

namespace {

constexpr char kCubeMagic[4] = {'O', 'P', 'M', 'C'};
constexpr uint32_t kCubeVersionV1 = 1;
constexpr uint32_t kCubeVersionV2 = 2;
constexpr uint32_t kCubeVersionV3 = 3;

// Container section names; corruption errors cite these. v2 stores schema,
// meta and the length-prefixed cube payloads; v3 keeps schema/meta and
// replaces the cube sections with a per-cube CRC index plus one blob of
// 64-byte-aligned raw count arrays that can be served straight from a file
// mapping (docs/FORMATS.md).
constexpr char kSectionSchema[] = "schema";
constexpr char kSectionMeta[] = "meta";
constexpr char kSectionAttrCubes[] = "attr_cubes";
constexpr char kSectionPairCubes[] = "pair_cubes";
constexpr char kSectionCubeIndex[] = "cube_index";
constexpr char kSectionCubeData[] = "cube_data";

// Prefixes a load error with the section it came from so operators know
// which part of the snapshot is damaged.
Status InSection(const char* section, Status st) {
  if (st.ok()) return st;
  return Status(st.code(),
                "section '" + std::string(section) + "': " + st.message());
}

// Serializes one cube's count array (v1/v2 encoding). Shape is implied by
// the store's schema plus the cube's attribute list, so only counts are
// stored.
void WriteCubeCounts(const RuleCube& cube, BinaryWriter* w) {
  w->WriteU64(static_cast<uint64_t>(cube.num_cells()));
  for (int64_t i = 0; i < cube.num_cells(); ++i) {
    w->WriteI64(cube.raw_counts()[i]);
  }
}

Status ReadCubeCounts(BinaryReader* r, RuleCube* cube) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t cells, r->ReadU64());
  if (cells != static_cast<uint64_t>(cube->num_cells())) {
    return Status::IOError("cube cell count mismatch (file does not match "
                           "schema)");
  }
  for (uint64_t i = 0; i < cells; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
    if (v < 0) return Status::IOError("negative cube count");
    cube->raw_counts()[i] = v;
  }
  return Status::OK();
}

void AppendAlignmentPadding(std::string* s) {
  const size_t rem = s->size() % kAlignedPayloadAlignment;
  if (rem != 0) s->append(kAlignedPayloadAlignment - rem, '\0');
}

std::string PayloadString(const char* data, const AlignedSection& s) {
  return std::string(data + s.offset, static_cast<size_t>(s.size));
}

}  // namespace

// Lazy v3 serving state: the mapping plus one first-touch verification slot
// per cube. `state` is 0 until the cube's payload CRC has been checked,
// then 1 (ok) or 2 (corrupt) forever; the mutex serializes the check itself
// so concurrent queries CRC each payload at most once.
struct CubeStore::Mapped {
  std::unique_ptr<MappedRegion> region;
  struct Entry {
    uint64_t offset = 0;  // absolute file offset of the count array
    uint64_t size = 0;    // bytes
    uint32_t crc = 0;
    std::atomic<int> state{0};
  };
  std::unique_ptr<Entry[]> entries;
  int64_t num_entries = 0;
  std::mutex mu;
};

CubeStore::CubeStore() = default;
CubeStore::~CubeStore() = default;
CubeStore::CubeStore(CubeStore&&) noexcept = default;
CubeStore& CubeStore::operator=(CubeStore&&) noexcept = default;

// Reads the store body that follows the schema in both versions: the
// attribute list, pair flag, record count, class counts and cube counts.
// v1 lays these fields out back to back after the schema; v2/v3 split them
// into the "meta" and cube sections but keep the field encoding.
Status CubeStore::ReadMeta(BinaryReader* r, Schema schema, CubeStore* out) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t attr_count, r->ReadU64());
  CubeStoreOptions options;
  for (uint64_t i = 0; i < attr_count; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int32_t a, r->ReadI32());
    options.attributes.push_back(a);
  }
  OPMAP_ASSIGN_OR_RETURN(uint8_t has_pairs, r->ReadU8());
  options.build_pair_cubes = has_pairs != 0;

  // Allocate the zeroed store with the same layout, then fill counts.
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(std::move(schema), options));
  *out = std::move(builder).Finish();

  OPMAP_ASSIGN_OR_RETURN(out->num_records_, r->ReadI64());
  if (out->num_records_ < 0) return Status::IOError("negative record count");
  OPMAP_ASSIGN_OR_RETURN(out->class_counts_, r->ReadI64Vector());
  if (out->class_counts_.size() !=
      static_cast<size_t>(out->schema_.num_classes())) {
    return Status::IOError("class count vector does not match schema");
  }
  return Status::OK();
}

Result<CubeStore> CubeStore::LoadV2(const std::string& bytes) {
  OPMAP_ASSIGN_OR_RETURN(std::vector<Section> sections,
                         ParseContainer(bytes, kCubeMagic, kCubeVersionV2));

  OPMAP_ASSIGN_OR_RETURN(const Section* schema_sec,
                         FindSection(sections, kSectionSchema));
  std::istringstream schema_in(schema_sec->payload);
  Result<Schema> schema = ReadSchema(&schema_in);
  if (!schema.ok()) return InSection(kSectionSchema, schema.status());

  OPMAP_ASSIGN_OR_RETURN(const Section* meta_sec,
                         FindSection(sections, kSectionMeta));
  std::istringstream meta_in(meta_sec->payload);
  BinaryReader meta_reader(&meta_in, meta_sec->payload.size());
  CubeStore store;
  OPMAP_RETURN_NOT_OK(InSection(
      kSectionMeta,
      ReadMeta(&meta_reader, std::move(schema).MoveValue(), &store)));

  OPMAP_ASSIGN_OR_RETURN(const Section* attr_sec,
                         FindSection(sections, kSectionAttrCubes));
  if (attr_sec->record_count != store.attr_cubes_.size()) {
    return Status::IOError("section 'attr_cubes' holds " +
                           std::to_string(attr_sec->record_count) +
                           " cubes, schema implies " +
                           std::to_string(store.attr_cubes_.size()));
  }
  std::istringstream attr_in(attr_sec->payload);
  BinaryReader attr_reader(&attr_in, attr_sec->payload.size());
  for (RuleCube& cube : store.attr_cubes_) {
    OPMAP_RETURN_NOT_OK(
        InSection(kSectionAttrCubes, ReadCubeCounts(&attr_reader, &cube)));
  }

  OPMAP_ASSIGN_OR_RETURN(const Section* pair_sec,
                         FindSection(sections, kSectionPairCubes));
  if (pair_sec->record_count != store.pair_cubes_.size()) {
    return Status::IOError("section 'pair_cubes' holds " +
                           std::to_string(pair_sec->record_count) +
                           " cubes, schema implies " +
                           std::to_string(store.pair_cubes_.size()));
  }
  std::istringstream pair_in(pair_sec->payload);
  BinaryReader pair_reader(&pair_in, pair_sec->payload.size());
  for (RuleCube& cube : store.pair_cubes_) {
    OPMAP_RETURN_NOT_OK(
        InSection(kSectionPairCubes, ReadCubeCounts(&pair_reader, &cube)));
  }
  return store;
}

// Seed format: all fields back to back with no checksums. `r` is
// positioned just past the magic and version.
Result<CubeStore> CubeStore::LoadV1(BinaryReader* r, std::istream* in) {
  OPMAP_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  CubeStore store;
  OPMAP_RETURN_NOT_OK(ReadMeta(r, std::move(schema), &store));
  for (RuleCube& cube : store.attr_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(r, &cube));
  }
  for (RuleCube& cube : store.pair_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(r, &cube));
  }
  return store;
}

// Parses the schema, meta and cube_index sections of a v3 container into a
// zeroed store plus one index entry per cube. The caller must have
// CRC-verified those three sections already; cube_data payload bytes are
// not touched. Validates every index entry against the store's shape and
// the cube_data range.
Status CubeStore::ParseV3Skeleton(const char* data,
                                  const std::vector<AlignedSection>& sections,
                                  CubeStore* store,
                                  std::vector<V3CubeEntry>* entries) {
  OPMAP_ASSIGN_OR_RETURN(const AlignedSection* schema_sec,
                         FindAlignedSection(sections, kSectionSchema));
  const std::string schema_payload = PayloadString(data, *schema_sec);
  std::istringstream schema_in(schema_payload);
  Result<Schema> schema = ReadSchema(&schema_in);
  if (!schema.ok()) return InSection(kSectionSchema, schema.status());

  OPMAP_ASSIGN_OR_RETURN(const AlignedSection* meta_sec,
                         FindAlignedSection(sections, kSectionMeta));
  const std::string meta_payload = PayloadString(data, *meta_sec);
  std::istringstream meta_in(meta_payload);
  BinaryReader meta_reader(&meta_in, meta_payload.size());
  OPMAP_RETURN_NOT_OK(InSection(
      kSectionMeta,
      ReadMeta(&meta_reader, std::move(schema).MoveValue(), store)));

  OPMAP_ASSIGN_OR_RETURN(const AlignedSection* index_sec,
                         FindAlignedSection(sections, kSectionCubeIndex));
  OPMAP_ASSIGN_OR_RETURN(const AlignedSection* data_sec,
                         FindAlignedSection(sections, kSectionCubeData));
  const int64_t num_cubes = store->NumCubes();
  if (index_sec->record_count != static_cast<uint64_t>(num_cubes)) {
    return Status::IOError("section 'cube_index' holds " +
                           std::to_string(index_sec->record_count) +
                           " cubes, schema implies " +
                           std::to_string(num_cubes));
  }
  const std::string index_payload = PayloadString(data, *index_sec);
  std::istringstream index_in(index_payload);
  BinaryReader index_reader(&index_in, index_payload.size());

  entries->clear();
  entries->reserve(static_cast<size_t>(num_cubes));
  const int64_t num_attr = static_cast<int64_t>(store->attr_cubes_.size());
  for (int64_t i = 0; i < num_cubes; ++i) {
    const RuleCube& cube =
        i < num_attr
            ? store->attr_cubes_[static_cast<size_t>(i)]
            : store->pair_cubes_[static_cast<size_t>(i - num_attr)];
    V3CubeEntry e;
    uint64_t rel_offset = 0;
    {
      Result<uint64_t> r = index_reader.ReadU64();
      if (!r.ok()) return InSection(kSectionCubeIndex, r.status());
      rel_offset = r.value();
    }
    {
      Result<uint64_t> r = index_reader.ReadU64();
      if (!r.ok()) return InSection(kSectionCubeIndex, r.status());
      e.cells = r.value();
    }
    {
      Result<uint32_t> r = index_reader.ReadU32();
      if (!r.ok()) return InSection(kSectionCubeIndex, r.status());
      e.crc = r.value();
    }
    if (e.cells != static_cast<uint64_t>(cube.num_cells())) {
      return Status::IOError("cube " + std::to_string(i) +
                             ": cell count mismatch (file does not match "
                             "schema)");
    }
    if (rel_offset % kAlignedPayloadAlignment != 0) {
      return Status::IOError("cube " + std::to_string(i) +
                             ": payload offset is not aligned");
    }
    const uint64_t bytes = e.cells * sizeof(int64_t);
    if (bytes > data_sec->size || rel_offset > data_sec->size - bytes) {
      return Status::IOError("cube " + std::to_string(i) +
                             ": payload range exceeds the 'cube_data' "
                             "section");
    }
    e.abs_offset = data_sec->offset + rel_offset;
    entries->push_back(e);
  }
  return Status::OK();
}

// Full eager verification + copy: used by LoadFromBytes on v3 and by
// LoadFromFile with use_mmap=false. Verifies every section payload CRC and
// that all alignment padding is zero, so any single-bit flip anywhere in
// the file is caught (parity with the v2 loader), then copies counts into
// owned cubes.
Result<CubeStore> CubeStore::LoadV3Eager(const std::string& bytes) {
  size_t header_size = 0;
  OPMAP_ASSIGN_OR_RETURN(
      std::vector<AlignedSection> sections,
      ParseAlignedContainer(bytes.data(), bytes.size(), kCubeMagic,
                            kCubeVersionV3, &header_size));
  for (const AlignedSection& s : sections) {
    OPMAP_RETURN_NOT_OK(VerifyAlignedPayload(bytes.data(), s));
  }
  // Padding between the table and the payloads is outside every CRC; it
  // must be all zeros or the file was tampered with.
  {
    std::vector<std::pair<uint64_t, uint64_t>> covered;
    covered.emplace_back(0, header_size);
    for (const AlignedSection& s : sections) {
      covered.emplace_back(s.offset, s.offset + s.size);
    }
    std::sort(covered.begin(), covered.end());
    uint64_t pos = 0;
    for (const auto& [begin, end] : covered) {
      for (uint64_t i = pos; i < begin; ++i) {
        if (bytes[static_cast<size_t>(i)] != '\0') {
          return Status::IOError("container padding byte " +
                                 std::to_string(i) +
                                 " is nonzero: the file is corrupt");
        }
      }
      if (end > pos) pos = end;
    }
  }

  CubeStore store;
  std::vector<V3CubeEntry> entries;
  OPMAP_RETURN_NOT_OK(
      ParseV3Skeleton(bytes.data(), sections, &store, &entries));
  const auto num_attr = static_cast<int64_t>(store.attr_cubes_.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const V3CubeEntry& e = entries[i];
    RuleCube& cube = static_cast<int64_t>(i) < num_attr
                         ? store.attr_cubes_[i]
                         : store.pair_cubes_[i - static_cast<size_t>(num_attr)];
    const char* src = bytes.data() + e.abs_offset;
    const size_t nbytes = static_cast<size_t>(e.cells) * sizeof(int64_t);
    // The cube's own CRC was already covered by the cube_data section CRC;
    // re-check it so an internally inconsistent index fails here like it
    // would on the lazy path.
    if (Crc32c(src, nbytes) != e.crc) {
      return Status::IOError("cube " + std::to_string(i) +
                             " payload CRC mismatch: the file is corrupt");
    }
    std::memcpy(cube.raw_counts(), src, nbytes);
    for (int64_t c = 0; c < cube.num_cells(); ++c) {
      if (cube.raw_counts()[c] < 0) {
        return Status::IOError("negative cube count");
      }
    }
  }
  return store;
}

// Lazy mapped load: O(#cubes) after verifying only the header and the three
// metadata sections. Cube count payloads are never read here — each is
// CRC-verified on its first AttrCube/PairCube access.
Result<CubeStore> CubeStore::LoadV3Mapped(const std::string& path, Env* env) {
  OPMAP_TRACE_SPAN("cube.load_mapped");
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<MappedRegion> region,
                         env->MapFile(path));
  OPMAP_ASSIGN_OR_RETURN(
      std::vector<AlignedSection> sections,
      ParseAlignedContainer(region->data(), region->size(), kCubeMagic,
                            kCubeVersionV3));
  for (const char* name :
       {kSectionSchema, kSectionMeta, kSectionCubeIndex}) {
    OPMAP_ASSIGN_OR_RETURN(const AlignedSection* sec,
                           FindAlignedSection(sections, name));
    OPMAP_RETURN_NOT_OK(VerifyAlignedPayload(region->data(), *sec));
  }

  CubeStore store;
  std::vector<V3CubeEntry> entries;
  OPMAP_RETURN_NOT_OK(
      ParseV3Skeleton(region->data(), sections, &store, &entries));

  // Point every cube at the mapping: replace the zeroed owned cubes from
  // ReadMeta with views of the same shape. No payload byte is touched.
  const auto num_attr = static_cast<int64_t>(store.attr_cubes_.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    RuleCube& cube = static_cast<int64_t>(i) < num_attr
                         ? store.attr_cubes_[i]
                         : store.pair_cubes_[i - static_cast<size_t>(num_attr)];
    std::vector<int> dims;
    dims.reserve(static_cast<size_t>(cube.num_dims()));
    for (int d = 0; d < cube.num_dims(); ++d) {
      dims.push_back(cube.dim_attribute(d));
    }
    const auto* counts = reinterpret_cast<const int64_t*>(
        region->data() + entries[i].abs_offset);
    OPMAP_ASSIGN_OR_RETURN(
        RuleCube view,
        RuleCube::MakeView(store.schema_, std::move(dims), counts,
                           cube.num_cells()));
    cube = std::move(view);
  }

  auto mapped = std::make_unique<Mapped>();
  mapped->num_entries = static_cast<int64_t>(entries.size());
  mapped->entries = std::make_unique<Mapped::Entry[]>(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    mapped->entries[i].offset = entries[i].abs_offset;
    mapped->entries[i].size = entries[i].cells * sizeof(int64_t);
    mapped->entries[i].crc = entries[i].crc;
  }
  mapped->region = std::move(region);
  store.mapped_ = std::move(mapped);
  return store;
}

Status CubeStore::VerifyMappedCube(int64_t index) const {
  if (mapped_ == nullptr) return Status::OK();
  Mapped::Entry& e = mapped_->entries[index];
  int s = e.state.load(std::memory_order_acquire);
  if (s == 0) {
    OPMAP_TRACE_SPAN("cube.verify");
    std::lock_guard<std::mutex> lock(mapped_->mu);
    s = e.state.load(std::memory_order_relaxed);
    if (s == 0) {
      static Counter* const verified =
          MetricsRegistry::Global()->counter("store.cubes_verified");
      verified->Increment();
      const char* p = mapped_->region->data() + e.offset;
      bool ok = Crc32c(p, static_cast<size_t>(e.size)) == e.crc;
      if (ok) {
        const auto* counts = reinterpret_cast<const int64_t*>(p);
        for (uint64_t c = 0; c < e.size / sizeof(int64_t); ++c) {
          if (counts[c] < 0) {
            ok = false;
            break;
          }
        }
      }
      s = ok ? 1 : 2;
      e.state.store(s, std::memory_order_release);
    }
  }
  if (s == 2) {
    const auto num_attr = static_cast<int64_t>(attr_cubes_.size());
    const std::string which =
        index < num_attr
            ? "attr cube " + std::to_string(index)
            : "pair cube " + std::to_string(index - num_attr);
    return Status::IOError(which + " payload CRC mismatch: the mapped cube "
                           "store is corrupt");
  }
  return Status::OK();
}

MappingStats CubeStore::GetMappingStats() const {
  MappingStats stats;
  if (mapped_ == nullptr) return stats;
  stats.mapped = true;
  stats.is_mmap = mapped_->region->is_mmap();
  stats.bytes_mapped = static_cast<int64_t>(mapped_->region->size());
  stats.bytes_resident = mapped_->region->ResidentBytes();
  stats.cubes_total = mapped_->num_entries;
  for (int64_t i = 0; i < mapped_->num_entries; ++i) {
    if (mapped_->entries[i].state.load(std::memory_order_acquire) == 1) {
      ++stats.cubes_verified;
    }
  }
  // Mirror the per-store figures onto the process-wide registry so
  // --stats shows the serving state without a CubeStore handle.
  MetricsRegistry* const metrics = MetricsRegistry::Global();
  metrics->gauge("store.bytes_mapped")->Set(stats.bytes_mapped);
  metrics->gauge("store.bytes_resident")->Set(stats.bytes_resident);
  metrics->gauge("store.cubes_total")->Set(stats.cubes_total);
  return stats;
}

Status CubeStore::Save(std::ostream* out, SaveFormat format) const {
  std::vector<Section> sections;

  {
    std::ostringstream schema_out;
    WriteSchema(schema_, &schema_out);
    sections.push_back(Section{kSectionSchema,
                               static_cast<uint64_t>(attributes_.size()),
                               schema_out.str()});
  }
  {
    std::ostringstream meta_out;
    BinaryWriter w(&meta_out);
    w.WriteU64(attributes_.size());
    for (int a : attributes_) w.WriteI32(a);
    w.WriteU8(has_pair_cubes_ ? 1 : 0);
    w.WriteI64(num_records_);
    w.WriteI64Vector(class_counts_);
    sections.push_back(Section{kSectionMeta,
                               static_cast<uint64_t>(num_records_),
                               meta_out.str()});
  }

  std::string bytes;
  if (format == SaveFormat::kV2) {
    {
      std::ostringstream cubes_out;
      BinaryWriter w(&cubes_out);
      for (const RuleCube& cube : attr_cubes_) WriteCubeCounts(cube, &w);
      sections.push_back(Section{kSectionAttrCubes, attr_cubes_.size(),
                                 cubes_out.str()});
    }
    {
      std::ostringstream cubes_out;
      BinaryWriter w(&cubes_out);
      for (const RuleCube& cube : pair_cubes_) WriteCubeCounts(cube, &w);
      sections.push_back(Section{kSectionPairCubes, pair_cubes_.size(),
                                 cubes_out.str()});
    }
    bytes = SerializeContainer(kCubeMagic, kCubeVersionV2, sections);
  } else {
    // v3: per-cube CRC index + one blob of raw count arrays, each padded
    // to a 64-byte file offset so a mapping can serve them in place.
    std::ostringstream index_out;
    BinaryWriter iw(&index_out);
    std::string data;
    const uint64_t num_cubes = attr_cubes_.size() + pair_cubes_.size();
    auto add_cube = [&](const RuleCube& cube) {
      AppendAlignmentPadding(&data);
      const auto* counts =
          reinterpret_cast<const char*>(cube.raw_counts());
      const size_t nbytes =
          static_cast<size_t>(cube.num_cells()) * sizeof(int64_t);
      iw.WriteU64(data.size());  // offset relative to cube_data start
      iw.WriteU64(static_cast<uint64_t>(cube.num_cells()));
      iw.WriteU32(Crc32c(counts, nbytes));
      data.append(counts, nbytes);
    };
    for (const RuleCube& cube : attr_cubes_) add_cube(cube);
    for (const RuleCube& cube : pair_cubes_) add_cube(cube);
    sections.push_back(
        Section{kSectionCubeIndex, num_cubes, index_out.str()});
    sections.push_back(Section{kSectionCubeData, num_cubes, std::move(data)});
    bytes = SerializeAlignedContainer(kCubeMagic, kCubeVersionV3, sections);
  }

  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out->flush();
  if (!out->good()) {
    return Status::IOError("write failure while saving cubes (disk full or "
                           "stream closed)");
  }
  return Status::OK();
}

Status CubeStore::SaveToFile(const std::string& path, Env* env,
                             SaveFormat format) const {
  OPMAP_TRACE_SPAN("cube.save_store");
  std::ostringstream buf;
  OPMAP_RETURN_NOT_OK(Save(&buf, format));
  return AtomicWriteFile(env, path, buf.str());
}

Result<CubeStore> CubeStore::LoadFromBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  BinaryReader r(&in, bytes.size());
  OPMAP_RETURN_NOT_OK(r.ExpectMagic(kCubeMagic));
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version == kCubeVersionV1) return LoadV1(&r, &in);
  if (version == kCubeVersionV2) return LoadV2(bytes);
  if (version == kCubeVersionV3) return LoadV3Eager(bytes);
  return Status::IOError("unsupported cube store format version " +
                         std::to_string(version));
}

Result<CubeStore> CubeStore::Load(std::istream* in) {
  std::ostringstream buf;
  buf << in->rdbuf();
  if (in->bad()) return Status::IOError("read failure while loading cubes");
  return LoadFromBytes(buf.str());
}

Result<CubeStore> CubeStore::LoadFromFile(const std::string& path, Env* env,
                                          const CubeLoadOptions& options) {
  OPMAP_TRACE_SPAN("cube.load_store");
  if (env == nullptr) env = Env::Default();

  // Peek the magic + version to pick a load path without reading the body.
  // Short or unrecognizable heads fall through to the eager path, which
  // reports the proper magic/truncation error.
  uint32_t version = 0;
  {
    Result<std::unique_ptr<SequentialFile>> file = env->NewSequentialFile(path);
    if (!file.ok()) {
      return Status(file.status().code(),
                    "cube store '" + path + "': " + file.status().message());
    }
    std::string head;
    bool eof = false;
    Status st = file.value()->Read(8, &head, &eof);
    if (!st.ok()) {
      return Status(st.code(), "cube store '" + path + "': " + st.message());
    }
    if (head.size() == 8 && std::memcmp(head.data(), kCubeMagic, 4) == 0) {
      std::memcpy(&version, head.data() + 4, sizeof(version));
    }
  }

  Result<CubeStore> store = [&]() -> Result<CubeStore> {
    if (version == kCubeVersionV3 && options.use_mmap) {
      return LoadV3Mapped(path, env);
    }
    std::string bytes;
    OPMAP_RETURN_NOT_OK(ReadFileToString(env, path, &bytes));
    return LoadFromBytes(bytes);
  }();
  if (!store.ok()) {
    return Status(store.status().code(),
                  "cube store '" + path + "': " + store.status().message());
  }
  return store;
}

}  // namespace opmap
