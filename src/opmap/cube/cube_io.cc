#include <cstring>
#include <fstream>

#include "opmap/common/serde.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset_io.h"

namespace opmap {

namespace {

constexpr char kCubeMagic[4] = {'O', 'P', 'M', 'C'};
constexpr uint32_t kCubeVersion = 1;

// Serializes one cube's count array. Shape is implied by the store's
// schema plus the cube's attribute list, so only counts are stored.
void WriteCubeCounts(const RuleCube& cube, BinaryWriter* w) {
  w->WriteU64(static_cast<uint64_t>(cube.num_cells()));
  for (int64_t i = 0; i < cube.num_cells(); ++i) {
    w->WriteI64(cube.raw_counts()[i]);
  }
}

Status ReadCubeCounts(BinaryReader* r, RuleCube* cube) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t cells, r->ReadU64());
  if (cells != static_cast<uint64_t>(cube->num_cells())) {
    return Status::IOError("cube cell count mismatch (file does not match "
                           "schema)");
  }
  for (uint64_t i = 0; i < cells; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
    if (v < 0) return Status::IOError("negative cube count");
    cube->raw_counts()[i] = v;
  }
  return Status::OK();
}

}  // namespace

Status CubeStore::Save(std::ostream* out) const {
  BinaryWriter w(out);
  out->write(kCubeMagic, 4);
  w.WriteU32(kCubeVersion);
  WriteSchema(schema_, out);
  w.WriteU64(attributes_.size());
  for (int a : attributes_) w.WriteI32(a);
  w.WriteU8(has_pair_cubes_ ? 1 : 0);
  w.WriteI64(num_records_);
  w.WriteI64Vector(class_counts_);
  for (const RuleCube& cube : attr_cubes_) WriteCubeCounts(cube, &w);
  for (const RuleCube& cube : pair_cubes_) WriteCubeCounts(cube, &w);
  if (!w.ok()) return Status::IOError("write failure while saving cubes");
  return Status::OK();
}

Status CubeStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return Save(&out);
}

Result<CubeStore> CubeStore::Load(std::istream* in) {
  BinaryReader r(in);
  OPMAP_RETURN_NOT_OK(r.ExpectMagic(kCubeMagic));
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kCubeVersion) {
    return Status::IOError("unsupported cube store format version " +
                           std::to_string(version));
  }
  OPMAP_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  OPMAP_ASSIGN_OR_RETURN(uint64_t attr_count, r.ReadU64());
  CubeStoreOptions options;
  for (uint64_t i = 0; i < attr_count; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int32_t a, r.ReadI32());
    options.attributes.push_back(a);
  }
  OPMAP_ASSIGN_OR_RETURN(uint8_t has_pairs, r.ReadU8());
  options.build_pair_cubes = has_pairs != 0;

  // Allocate the zeroed store with the same layout, then fill counts.
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(std::move(schema), options));
  CubeStore store = std::move(builder).Finish();

  OPMAP_ASSIGN_OR_RETURN(store.num_records_, r.ReadI64());
  if (store.num_records_ < 0) return Status::IOError("negative record count");
  OPMAP_ASSIGN_OR_RETURN(store.class_counts_, r.ReadI64Vector());
  if (store.class_counts_.size() !=
      static_cast<size_t>(store.schema_.num_classes())) {
    return Status::IOError("class count vector does not match schema");
  }
  for (RuleCube& cube : store.attr_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(&r, &cube));
  }
  for (RuleCube& cube : store.pair_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(&r, &cube));
  }
  return store;
}

Result<CubeStore> CubeStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return Load(&in);
}

}  // namespace opmap
