#include <cstring>
#include <sstream>

#include "opmap/common/io.h"
#include "opmap/common/serde.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset_io.h"

namespace opmap {

namespace {

constexpr char kCubeMagic[4] = {'O', 'P', 'M', 'C'};
constexpr uint32_t kCubeVersionV1 = 1;
constexpr uint32_t kCubeVersionV2 = 2;

// v2 container section names; corruption errors cite these.
constexpr char kSectionSchema[] = "schema";
constexpr char kSectionMeta[] = "meta";
constexpr char kSectionAttrCubes[] = "attr_cubes";
constexpr char kSectionPairCubes[] = "pair_cubes";

// Prefixes a load error with the section it came from so operators know
// which part of the snapshot is damaged.
Status InSection(const char* section, Status st) {
  if (st.ok()) return st;
  return Status(st.code(),
                "section '" + std::string(section) + "': " + st.message());
}

// Serializes one cube's count array. Shape is implied by the store's
// schema plus the cube's attribute list, so only counts are stored.
void WriteCubeCounts(const RuleCube& cube, BinaryWriter* w) {
  w->WriteU64(static_cast<uint64_t>(cube.num_cells()));
  for (int64_t i = 0; i < cube.num_cells(); ++i) {
    w->WriteI64(cube.raw_counts()[i]);
  }
}

Status ReadCubeCounts(BinaryReader* r, RuleCube* cube) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t cells, r->ReadU64());
  if (cells != static_cast<uint64_t>(cube->num_cells())) {
    return Status::IOError("cube cell count mismatch (file does not match "
                           "schema)");
  }
  for (uint64_t i = 0; i < cells; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
    if (v < 0) return Status::IOError("negative cube count");
    cube->raw_counts()[i] = v;
  }
  return Status::OK();
}

}  // namespace

// Reads the store body that follows the schema in both versions: the
// attribute list, pair flag, record count, class counts and cube counts.
// v1 lays these fields out back to back after the schema; v2 splits them
// into the "meta" and cube sections but keeps the field encoding.
Status CubeStore::ReadMeta(BinaryReader* r, Schema schema, CubeStore* out) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t attr_count, r->ReadU64());
  CubeStoreOptions options;
  for (uint64_t i = 0; i < attr_count; ++i) {
    OPMAP_ASSIGN_OR_RETURN(int32_t a, r->ReadI32());
    options.attributes.push_back(a);
  }
  OPMAP_ASSIGN_OR_RETURN(uint8_t has_pairs, r->ReadU8());
  options.build_pair_cubes = has_pairs != 0;

  // Allocate the zeroed store with the same layout, then fill counts.
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(std::move(schema), options));
  *out = std::move(builder).Finish();

  OPMAP_ASSIGN_OR_RETURN(out->num_records_, r->ReadI64());
  if (out->num_records_ < 0) return Status::IOError("negative record count");
  OPMAP_ASSIGN_OR_RETURN(out->class_counts_, r->ReadI64Vector());
  if (out->class_counts_.size() !=
      static_cast<size_t>(out->schema_.num_classes())) {
    return Status::IOError("class count vector does not match schema");
  }
  return Status::OK();
}

Result<CubeStore> CubeStore::LoadV2(const std::string& bytes) {
  OPMAP_ASSIGN_OR_RETURN(std::vector<Section> sections,
                         ParseContainer(bytes, kCubeMagic, kCubeVersionV2));

  OPMAP_ASSIGN_OR_RETURN(const Section* schema_sec,
                         FindSection(sections, kSectionSchema));
  std::istringstream schema_in(schema_sec->payload);
  Result<Schema> schema = ReadSchema(&schema_in);
  if (!schema.ok()) return InSection(kSectionSchema, schema.status());

  OPMAP_ASSIGN_OR_RETURN(const Section* meta_sec,
                         FindSection(sections, kSectionMeta));
  std::istringstream meta_in(meta_sec->payload);
  BinaryReader meta_reader(&meta_in, meta_sec->payload.size());
  CubeStore store;
  OPMAP_RETURN_NOT_OK(InSection(
      kSectionMeta,
      ReadMeta(&meta_reader, std::move(schema).MoveValue(), &store)));

  OPMAP_ASSIGN_OR_RETURN(const Section* attr_sec,
                         FindSection(sections, kSectionAttrCubes));
  if (attr_sec->record_count != store.attr_cubes_.size()) {
    return Status::IOError("section 'attr_cubes' holds " +
                           std::to_string(attr_sec->record_count) +
                           " cubes, schema implies " +
                           std::to_string(store.attr_cubes_.size()));
  }
  std::istringstream attr_in(attr_sec->payload);
  BinaryReader attr_reader(&attr_in, attr_sec->payload.size());
  for (RuleCube& cube : store.attr_cubes_) {
    OPMAP_RETURN_NOT_OK(
        InSection(kSectionAttrCubes, ReadCubeCounts(&attr_reader, &cube)));
  }

  OPMAP_ASSIGN_OR_RETURN(const Section* pair_sec,
                         FindSection(sections, kSectionPairCubes));
  if (pair_sec->record_count != store.pair_cubes_.size()) {
    return Status::IOError("section 'pair_cubes' holds " +
                           std::to_string(pair_sec->record_count) +
                           " cubes, schema implies " +
                           std::to_string(store.pair_cubes_.size()));
  }
  std::istringstream pair_in(pair_sec->payload);
  BinaryReader pair_reader(&pair_in, pair_sec->payload.size());
  for (RuleCube& cube : store.pair_cubes_) {
    OPMAP_RETURN_NOT_OK(
        InSection(kSectionPairCubes, ReadCubeCounts(&pair_reader, &cube)));
  }
  return store;
}

// Seed format: all fields back to back with no checksums. `r` is
// positioned just past the magic and version.
Result<CubeStore> CubeStore::LoadV1(BinaryReader* r, std::istream* in) {
  OPMAP_ASSIGN_OR_RETURN(Schema schema, ReadSchema(in));
  CubeStore store;
  OPMAP_RETURN_NOT_OK(ReadMeta(r, std::move(schema), &store));
  for (RuleCube& cube : store.attr_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(r, &cube));
  }
  for (RuleCube& cube : store.pair_cubes_) {
    OPMAP_RETURN_NOT_OK(ReadCubeCounts(r, &cube));
  }
  return store;
}

Status CubeStore::Save(std::ostream* out) const {
  std::vector<Section> sections;

  {
    std::ostringstream schema_out;
    WriteSchema(schema_, &schema_out);
    sections.push_back(Section{kSectionSchema,
                               static_cast<uint64_t>(attributes_.size()),
                               schema_out.str()});
  }
  {
    std::ostringstream meta_out;
    BinaryWriter w(&meta_out);
    w.WriteU64(attributes_.size());
    for (int a : attributes_) w.WriteI32(a);
    w.WriteU8(has_pair_cubes_ ? 1 : 0);
    w.WriteI64(num_records_);
    w.WriteI64Vector(class_counts_);
    sections.push_back(Section{kSectionMeta,
                               static_cast<uint64_t>(num_records_),
                               meta_out.str()});
  }
  {
    std::ostringstream cubes_out;
    BinaryWriter w(&cubes_out);
    for (const RuleCube& cube : attr_cubes_) WriteCubeCounts(cube, &w);
    sections.push_back(Section{kSectionAttrCubes, attr_cubes_.size(),
                               cubes_out.str()});
  }
  {
    std::ostringstream cubes_out;
    BinaryWriter w(&cubes_out);
    for (const RuleCube& cube : pair_cubes_) WriteCubeCounts(cube, &w);
    sections.push_back(Section{kSectionPairCubes, pair_cubes_.size(),
                               cubes_out.str()});
  }

  const std::string bytes =
      SerializeContainer(kCubeMagic, kCubeVersionV2, sections);
  out->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out->flush();
  if (!out->good()) {
    return Status::IOError("write failure while saving cubes (disk full or "
                           "stream closed)");
  }
  return Status::OK();
}

Status CubeStore::SaveToFile(const std::string& path, Env* env) const {
  std::ostringstream buf;
  OPMAP_RETURN_NOT_OK(Save(&buf));
  return AtomicWriteFile(env, path, buf.str());
}

Result<CubeStore> CubeStore::LoadFromBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  BinaryReader r(&in, bytes.size());
  OPMAP_RETURN_NOT_OK(r.ExpectMagic(kCubeMagic));
  OPMAP_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version == kCubeVersionV1) return LoadV1(&r, &in);
  if (version == kCubeVersionV2) return LoadV2(bytes);
  return Status::IOError("unsupported cube store format version " +
                         std::to_string(version));
}

Result<CubeStore> CubeStore::Load(std::istream* in) {
  std::ostringstream buf;
  buf << in->rdbuf();
  if (in->bad()) return Status::IOError("read failure while loading cubes");
  return LoadFromBytes(buf.str());
}

Result<CubeStore> CubeStore::LoadFromFile(const std::string& path, Env* env) {
  std::string bytes;
  OPMAP_RETURN_NOT_OK(ReadFileToString(env, path, &bytes));
  Result<CubeStore> store = LoadFromBytes(bytes);
  if (!store.ok()) {
    return Status(store.status().code(),
                  "cube store '" + path + "': " + store.status().message());
  }
  return store;
}

}  // namespace opmap
