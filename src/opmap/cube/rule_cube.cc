#include "opmap/cube/rule_cube.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_set>

namespace opmap {

Result<RuleCube> RuleCube::Make(const Schema& schema, std::vector<int> dims) {
  RuleCube cube;
  OPMAP_ASSIGN_OR_RETURN(int64_t cells,
                         BuildShape(schema, std::move(dims), &cube));
  cube.counts_.assign(static_cast<size_t>(cells), 0);
  return cube;
}

Result<RuleCube> RuleCube::MakeView(const Schema& schema,
                                    std::vector<int> dims,
                                    const int64_t* counts,
                                    int64_t num_cells) {
  if (counts == nullptr) {
    return Status::InvalidArgument("cube view needs a count array");
  }
  RuleCube cube;
  OPMAP_ASSIGN_OR_RETURN(int64_t cells,
                         BuildShape(schema, std::move(dims), &cube));
  if (cells != num_cells) {
    return Status::InvalidArgument(
        "cube view holds " + std::to_string(num_cells) +
        " cells, shape implies " + std::to_string(cells));
  }
  cube.extern_counts_ = counts;
  cube.extern_cells_ = num_cells;
  return cube;
}

Result<int64_t> RuleCube::BuildShape(const Schema& schema,
                                     std::vector<int> dims, RuleCube* cube) {
  if (dims.empty()) {
    return Status::InvalidArgument("a rule cube needs at least one dimension");
  }
  std::unordered_set<int> seen;
  for (int a : dims) {
    if (a < 0 || a >= schema.num_attributes()) {
      return Status::OutOfRange("cube dimension attribute out of range");
    }
    if (!schema.attribute(a).is_categorical()) {
      return Status::InvalidArgument("cube dimension '" +
                                     schema.attribute(a).name() +
                                     "' is not categorical");
    }
    if (!seen.insert(a).second) {
      return Status::InvalidArgument("duplicate cube dimension");
    }
  }
  cube->dims_ = std::move(dims);
  int64_t cells = 1;
  for (int a : cube->dims_) {
    const Attribute& attr = schema.attribute(a);
    cube->sizes_.push_back(attr.domain());
    cube->names_.push_back(attr.name());
    cube->labels_.push_back(attr.labels());
    cells *= attr.domain();
  }
  cube->strides_.resize(cube->dims_.size());
  int64_t stride = 1;
  for (int d = cube->num_dims() - 1; d >= 0; --d) {
    cube->strides_[static_cast<size_t>(d)] = stride;
    stride *= cube->sizes_[static_cast<size_t>(d)];
  }
  return cells;
}

int RuleCube::FindDim(int attr) const {
  for (int d = 0; d < num_dims(); ++d) {
    if (dims_[static_cast<size_t>(d)] == attr) return d;
  }
  return -1;
}

size_t RuleCube::LinearIndex(const std::vector<ValueCode>& cell) const {
  assert(cell.size() == dims_.size());
  int64_t idx = 0;
  for (size_t d = 0; d < cell.size(); ++d) {
    assert(cell[d] >= 0 && cell[d] < sizes_[d]);
    idx += strides_[d] * cell[d];
  }
  return static_cast<size_t>(idx);
}

int64_t RuleCube::Total() const {
  const int64_t* p = raw_counts();
  return std::accumulate(p, p + num_cells(), int64_t{0});
}

double RuleCube::Support(const std::vector<ValueCode>& cell) const {
  const int64_t total = Total();
  if (total == 0) return 0.0;
  return static_cast<double>(count(cell)) / static_cast<double>(total);
}

int64_t RuleCube::MarginCount(const std::vector<ValueCode>& cell,
                              int dim) const {
  assert(dim >= 0 && dim < num_dims());
  std::vector<ValueCode> probe = cell;
  int64_t sum = 0;
  for (ValueCode v = 0; v < sizes_[static_cast<size_t>(dim)]; ++v) {
    probe[static_cast<size_t>(dim)] = v;
    sum += count(probe);
  }
  return sum;
}

double RuleCube::Confidence(const std::vector<ValueCode>& cell,
                            int class_dim) const {
  const int64_t body = MarginCount(cell, class_dim);
  if (body == 0) return 0.0;
  return static_cast<double>(count(cell)) / static_cast<double>(body);
}

namespace {

// Iterates all cells of a cube shape, invoking fn(cell).
template <typename Fn>
void ForEachCell(const std::vector<int>& sizes, Fn&& fn) {
  std::vector<ValueCode> cell(sizes.size(), 0);
  if (sizes.empty()) return;
  for (;;) {
    fn(cell);
    int d = static_cast<int>(sizes.size()) - 1;
    while (d >= 0 && cell[static_cast<size_t>(d)] ==
                         sizes[static_cast<size_t>(d)] - 1) {
      cell[static_cast<size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
    ++cell[static_cast<size_t>(d)];
  }
}

}  // namespace

Result<RuleCube> RuleCube::Slice(int dim, ValueCode value) const {
  if (dim < 0 || dim >= num_dims()) {
    return Status::OutOfRange("slice dimension out of range");
  }
  if (value < 0 || value >= sizes_[static_cast<size_t>(dim)]) {
    return Status::OutOfRange("slice value out of domain");
  }
  if (num_dims() == 1) {
    return Status::InvalidArgument("cannot slice a 1-D cube away");
  }
  RuleCube out;
  for (int d = 0; d < num_dims(); ++d) {
    if (d == dim) continue;
    out.dims_.push_back(dims_[static_cast<size_t>(d)]);
    out.sizes_.push_back(sizes_[static_cast<size_t>(d)]);
    out.names_.push_back(names_[static_cast<size_t>(d)]);
    out.labels_.push_back(labels_[static_cast<size_t>(d)]);
  }
  out.strides_.resize(out.dims_.size());
  int64_t stride = 1;
  for (int d = out.num_dims() - 1; d >= 0; --d) {
    out.strides_[static_cast<size_t>(d)] = stride;
    stride *= out.sizes_[static_cast<size_t>(d)];
  }
  out.counts_.assign(static_cast<size_t>(stride), 0);
  ForEachCell(out.sizes_, [&](const std::vector<ValueCode>& cell) {
    std::vector<ValueCode> src(static_cast<size_t>(num_dims()));
    int o = 0;
    for (int d = 0; d < num_dims(); ++d) {
      src[static_cast<size_t>(d)] =
          d == dim ? value : cell[static_cast<size_t>(o++)];
    }
    out.counts_[out.LinearIndex(cell)] = count(src);
  });
  return out;
}

Result<RuleCube> RuleCube::Dice(int dim,
                                const std::vector<ValueCode>& values) const {
  if (dim < 0 || dim >= num_dims()) {
    return Status::OutOfRange("dice dimension out of range");
  }
  if (values.empty()) {
    return Status::InvalidArgument("dice needs at least one value");
  }
  for (ValueCode v : values) {
    if (v < 0 || v >= sizes_[static_cast<size_t>(dim)]) {
      return Status::OutOfRange("dice value out of domain");
    }
  }
  RuleCube out;
  out.dims_ = dims_;
  out.sizes_ = sizes_;
  out.names_ = names_;
  out.labels_ = labels_;
  out.sizes_[static_cast<size_t>(dim)] = static_cast<int>(values.size());
  auto& lbl = out.labels_[static_cast<size_t>(dim)];
  lbl.clear();
  for (ValueCode v : values) {
    lbl.push_back(labels_[static_cast<size_t>(dim)][static_cast<size_t>(v)]);
  }
  out.strides_.resize(out.dims_.size());
  int64_t stride = 1;
  for (int d = out.num_dims() - 1; d >= 0; --d) {
    out.strides_[static_cast<size_t>(d)] = stride;
    stride *= out.sizes_[static_cast<size_t>(d)];
  }
  out.counts_.assign(static_cast<size_t>(stride), 0);
  ForEachCell(out.sizes_, [&](const std::vector<ValueCode>& cell) {
    std::vector<ValueCode> src = cell;
    src[static_cast<size_t>(dim)] =
        values[static_cast<size_t>(cell[static_cast<size_t>(dim)])];
    out.counts_[out.LinearIndex(cell)] = count(src);
  });
  return out;
}

Result<RuleCube> RuleCube::Marginalize(int dim) const {
  if (dim < 0 || dim >= num_dims()) {
    return Status::OutOfRange("roll-up dimension out of range");
  }
  if (num_dims() == 1) {
    return Status::InvalidArgument("cannot roll up a 1-D cube away");
  }
  RuleCube out;
  for (int d = 0; d < num_dims(); ++d) {
    if (d == dim) continue;
    out.dims_.push_back(dims_[static_cast<size_t>(d)]);
    out.sizes_.push_back(sizes_[static_cast<size_t>(d)]);
    out.names_.push_back(names_[static_cast<size_t>(d)]);
    out.labels_.push_back(labels_[static_cast<size_t>(d)]);
  }
  out.strides_.resize(out.dims_.size());
  int64_t stride = 1;
  for (int d = out.num_dims() - 1; d >= 0; --d) {
    out.strides_[static_cast<size_t>(d)] = stride;
    stride *= out.sizes_[static_cast<size_t>(d)];
  }
  out.counts_.assign(static_cast<size_t>(stride), 0);
  ForEachCell(sizes_, [&](const std::vector<ValueCode>& cell) {
    std::vector<ValueCode> dst;
    dst.reserve(cell.size() - 1);
    for (int d = 0; d < num_dims(); ++d) {
      if (d != dim) dst.push_back(cell[static_cast<size_t>(d)]);
    }
    out.counts_[out.LinearIndex(dst)] += count(cell);
  });
  return out;
}

}  // namespace opmap
