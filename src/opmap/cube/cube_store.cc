#include "opmap/cube/cube_store.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace opmap {

Result<const RuleCube*> CubeStore::AttrCube(int attr) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return Status::NotFound("attribute " + std::to_string(attr) +
                            " is not materialized in the cube store");
  }
  return &attr_cubes_[static_cast<size_t>(slot)];
}

Result<const RuleCube*> CubeStore::PairCube(int a, int b) const {
  if (!has_pair_cubes_) {
    return Status::InvalidArgument("pair cubes were not built");
  }
  if (a == b) {
    return Status::InvalidArgument("pair cube needs two distinct attributes");
  }
  const int lo_attr = std::min(a, b);
  const int hi_attr = std::max(a, b);
  const int sa = AttrSlot(lo_attr);
  const int sb = AttrSlot(hi_attr);
  if (sa < 0 || sb < 0) {
    return Status::NotFound("attribute pair is not materialized");
  }
  const int m = static_cast<int>(attributes_.size());
  // Packed upper triangle: pairs (0,1), (0,2), ..., (0,m-1), (1,2), ...
  const int64_t idx = static_cast<int64_t>(sa) * (2 * m - sa - 1) / 2 +
                      (sb - sa - 1);
  return &pair_cubes_[static_cast<size_t>(idx)];
}

int64_t CubeStore::NumCubes() const {
  return static_cast<int64_t>(attr_cubes_.size() + pair_cubes_.size());
}

int64_t CubeStore::MemoryUsageBytes() const {
  int64_t bytes = 0;
  for (const auto& c : attr_cubes_) bytes += c.MemoryUsageBytes();
  for (const auto& c : pair_cubes_) bytes += c.MemoryUsageBytes();
  return bytes;
}

Result<CubeBuilder> CubeBuilder::Make(Schema schema,
                                      CubeStoreOptions options) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("empty schema");
  }
  std::vector<int> attrs = options.attributes;
  if (attrs.empty()) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (!schema.is_class(a) && schema.attribute(a).is_categorical()) {
        attrs.push_back(a);
      }
    }
  } else {
    std::unordered_set<int> seen;
    for (int a : attrs) {
      if (a < 0 || a >= schema.num_attributes()) {
        return Status::OutOfRange("cube store attribute out of range");
      }
      if (schema.is_class(a)) {
        return Status::InvalidArgument(
            "class attribute cannot be a cube store attribute");
      }
      if (!schema.attribute(a).is_categorical()) {
        return Status::InvalidArgument(
            "continuous attribute '" + schema.attribute(a).name() +
            "' cannot be materialized; discretize first");
      }
      if (!seen.insert(a).second) {
        return Status::InvalidArgument("duplicate cube store attribute");
      }
    }
    std::sort(attrs.begin(), attrs.end());
  }

  CubeBuilder builder;
  CubeStore& store = builder.store_;
  store.schema_ = std::move(schema);
  store.attributes_ = std::move(attrs);
  store.attr_slot_.assign(
      static_cast<size_t>(store.schema_.num_attributes()), -1);
  for (size_t i = 0; i < store.attributes_.size(); ++i) {
    store.attr_slot_[static_cast<size_t>(store.attributes_[i])] =
        static_cast<int>(i);
  }
  store.class_counts_.assign(
      static_cast<size_t>(store.schema_.num_classes()), 0);
  store.has_pair_cubes_ = options.build_pair_cubes;

  builder.class_index_ = store.schema_.class_index();
  builder.num_classes_ = store.schema_.num_classes();

  const int m = static_cast<int>(store.attributes_.size());

  // Enforce the memory budget before allocating anything: a wide schema
  // with large domains can demand terabytes of pair cubes, and the server
  // should answer kOutOfRange, not die in the allocator.
  if (options.max_memory_bytes > 0) {
    const int64_t nc = store.schema_.num_classes();
    int64_t projected = 0;
    for (int i = 0; i < m; ++i) {
      const int64_t di =
          store.schema_.attribute(store.attributes_[static_cast<size_t>(i)])
              .domain();
      projected += di * nc * static_cast<int64_t>(sizeof(int64_t));
      if (options.build_pair_cubes) {
        for (int j = i + 1; j < m; ++j) {
          const int64_t dj =
              store.schema_
                  .attribute(store.attributes_[static_cast<size_t>(j)])
                  .domain();
          projected += di * dj * nc * static_cast<int64_t>(sizeof(int64_t));
        }
      }
      if (projected > options.max_memory_bytes) {
        return Status::OutOfRange(
            "cube materialization needs more than the " +
            std::to_string(options.max_memory_bytes) +
            "-byte memory budget (" + std::to_string(projected) +
            "+ bytes projected); raise the budget or materialize fewer "
            "attributes");
      }
    }
  }

  store.attr_cubes_.reserve(static_cast<size_t>(m));
  for (int a : store.attributes_) {
    OPMAP_ASSIGN_OR_RETURN(
        RuleCube cube,
        RuleCube::Make(store.schema_, {a, builder.class_index_}));
    store.attr_cubes_.push_back(std::move(cube));
    builder.sizes_.push_back(store.schema_.attribute(a).domain());
  }
  if (options.build_pair_cubes) {
    store.pair_cubes_.reserve(static_cast<size_t>(m) *
                              static_cast<size_t>(m - 1) / 2);
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        OPMAP_ASSIGN_OR_RETURN(
            RuleCube cube,
            RuleCube::Make(store.schema_,
                           {store.attributes_[static_cast<size_t>(i)],
                            store.attributes_[static_cast<size_t>(j)],
                            builder.class_index_}));
        store.pair_cubes_.push_back(std::move(cube));
      }
    }
  }

  // Raw pointers for the hot loop (stable: vectors are fully built).
  for (auto& c : store.attr_cubes_) builder.attr_raw_.push_back(c.raw_counts());
  for (auto& c : store.pair_cubes_) builder.pair_raw_.push_back(c.raw_counts());
  builder.pair_base_.resize(static_cast<size_t>(m));
  int base = 0;
  for (int i = 0; i < m; ++i) {
    builder.pair_base_[static_cast<size_t>(i)] = base;
    base += m - i - 1;
  }
  return builder;
}

void CubeBuilder::AddRow(const ValueCode* row) {
  const ValueCode y = row[class_index_];
  if (y == kNullCode) return;
  ++store_.num_records_;
  ++store_.class_counts_[static_cast<size_t>(y)];

  const int m = static_cast<int>(store_.attributes_.size());
  const int nc = num_classes_;
  for (int i = 0; i < m; ++i) {
    const ValueCode vi = row[store_.attributes_[static_cast<size_t>(i)]];
    if (vi == kNullCode) continue;
    attr_raw_[static_cast<size_t>(i)][vi * nc + y] += 1;
    if (!store_.has_pair_cubes_) continue;
    const int base = pair_base_[static_cast<size_t>(i)];
    for (int j = i + 1; j < m; ++j) {
      const ValueCode vj = row[store_.attributes_[static_cast<size_t>(j)]];
      if (vj == kNullCode) continue;
      const int sj = sizes_[static_cast<size_t>(j)];
      pair_raw_[static_cast<size_t>(base + j - i - 1)]
               [(static_cast<int64_t>(vi) * sj + vj) * nc + y] += 1;
    }
  }
}

Status CubeBuilder::AddDataset(const Dataset& dataset) {
  const Schema& ds = dataset.schema();
  const Schema& ss = store_.schema_;
  if (ds.num_attributes() != ss.num_attributes() ||
      ds.class_index() != ss.class_index()) {
    return Status::InvalidArgument("dataset schema does not match cube store");
  }
  for (int a : store_.attributes_) {
    if (!ds.attribute(a).is_categorical() ||
        ds.attribute(a).domain() != ss.attribute(a).domain()) {
      return Status::InvalidArgument(
          "dataset attribute '" + ds.attribute(a).name() +
          "' does not match the cube store schema");
    }
  }
  const int n = ss.num_attributes();
  std::vector<const ValueCode*> cols(static_cast<size_t>(n), nullptr);
  for (int a : store_.attributes_) {
    cols[static_cast<size_t>(a)] = dataset.categorical_column(a).data();
  }
  cols[static_cast<size_t>(class_index_)] =
      dataset.categorical_column(class_index_).data();

  std::vector<ValueCode> row(static_cast<size_t>(n), kNullCode);
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (int a : store_.attributes_) {
      row[static_cast<size_t>(a)] = cols[static_cast<size_t>(a)][r];
    }
    row[static_cast<size_t>(class_index_)] =
        cols[static_cast<size_t>(class_index_)][r];
    AddRow(row.data());
  }
  return Status::OK();
}

CubeStore CubeBuilder::Finish() && {
  attr_raw_.clear();
  pair_raw_.clear();
  return std::move(store_);
}

Result<CubeStore> CubeBuilder::FromDataset(const Dataset& dataset,
                                           CubeStoreOptions options) {
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(dataset.schema(), options));
  OPMAP_RETURN_NOT_OK(builder.AddDataset(dataset));
  return std::move(builder).Finish();
}

}  // namespace opmap
