#include "opmap/cube/cube_store.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "opmap/common/metrics.h"
#include "opmap/common/simd.h"
#include "opmap/common/trace.h"

namespace opmap {

Result<const RuleCube*> CubeStore::AttrCube(int attr) const {
  const int slot = AttrSlot(attr);
  if (slot < 0) {
    return Status::NotFound("attribute " + std::to_string(attr) +
                            " is not materialized in the cube store");
  }
  // First touch of a lazily mapped cube CRC-verifies its payload.
  OPMAP_RETURN_NOT_OK(VerifyMappedCube(slot));
  return &attr_cubes_[static_cast<size_t>(slot)];
}

Result<const RuleCube*> CubeStore::PairCube(int a, int b) const {
  if (!has_pair_cubes_) {
    return Status::InvalidArgument("pair cubes were not built");
  }
  if (a == b) {
    return Status::InvalidArgument("pair cube needs two distinct attributes");
  }
  const int lo_attr = std::min(a, b);
  const int hi_attr = std::max(a, b);
  const int sa = AttrSlot(lo_attr);
  const int sb = AttrSlot(hi_attr);
  if (sa < 0 || sb < 0) {
    return Status::NotFound("attribute pair is not materialized");
  }
  const int m = static_cast<int>(attributes_.size());
  // Packed upper triangle: pairs (0,1), (0,2), ..., (0,m-1), (1,2), ...
  const int64_t idx = static_cast<int64_t>(sa) * (2 * m - sa - 1) / 2 +
                      (sb - sa - 1);
  // First touch of a lazily mapped cube CRC-verifies its payload.
  OPMAP_RETURN_NOT_OK(
      VerifyMappedCube(static_cast<int64_t>(attr_cubes_.size()) + idx));
  return &pair_cubes_[static_cast<size_t>(idx)];
}

int64_t CubeStore::NumCubes() const {
  return static_cast<int64_t>(attr_cubes_.size() + pair_cubes_.size());
}

int64_t CubeStore::MemoryUsageBytes() const {
  // Count the store's own bookkeeping alongside the cube buffers so the
  // memory-budget shard clamp works from a base figure that is not
  // understated (the clamp additionally charges packed-column scratch;
  // see CubeBuilder::PlanShards).
  int64_t bytes = 0;
  for (const auto& c : attr_cubes_) bytes += c.MemoryUsageBytes();
  for (const auto& c : pair_cubes_) bytes += c.MemoryUsageBytes();
  bytes += static_cast<int64_t>(class_counts_.capacity() * sizeof(int64_t));
  bytes += static_cast<int64_t>(attributes_.capacity() * sizeof(int));
  bytes += static_cast<int64_t>(attr_slot_.capacity() * sizeof(int));
  return bytes;
}

Result<CubeStore> CubeStore::Clone() const {
  OPMAP_TRACE_SPAN("cube.clone");
  CubeStore out;
  out.schema_ = schema_;
  out.attributes_ = attributes_;
  out.attr_slot_ = attr_slot_;
  out.num_records_ = num_records_;
  out.class_counts_ = class_counts_;
  out.has_pair_cubes_ = has_pair_cubes_;
  const int64_t num_attr_cubes = static_cast<int64_t>(attr_cubes_.size());
  for (int64_t i = 0;
       i < num_attr_cubes + static_cast<int64_t>(pair_cubes_.size()); ++i) {
    // First touch of a lazily mapped cube CRC-verifies its payload, so a
    // clone never materializes silently corrupt counts.
    OPMAP_RETURN_NOT_OK(VerifyMappedCube(i));
    const RuleCube& src =
        i < num_attr_cubes
            ? attr_cubes_[static_cast<size_t>(i)]
            : pair_cubes_[static_cast<size_t>(i - num_attr_cubes)];
    std::vector<int> dims(static_cast<size_t>(src.num_dims()));
    for (int d = 0; d < src.num_dims(); ++d) {
      dims[static_cast<size_t>(d)] = src.dim_attribute(d);
    }
    OPMAP_ASSIGN_OR_RETURN(RuleCube copy,
                           RuleCube::Make(schema_, std::move(dims)));
    std::copy(src.raw_counts(), src.raw_counts() + src.num_cells(),
              copy.raw_counts());
    (i < num_attr_cubes ? out.attr_cubes_ : out.pair_cubes_)
        .push_back(std::move(copy));
  }
  return out;
}

Status CubeStore::AddCounts(const CubeStore& delta) {
  OPMAP_TRACE_SPAN("cube.add_counts");
  if (mapped_ != nullptr) {
    return Status::InvalidArgument(
        "cannot add counts into a mapped store; Clone() it first");
  }
  if (attributes_ != delta.attributes_ ||
      has_pair_cubes_ != delta.has_pair_cubes_ ||
      class_counts_.size() != delta.class_counts_.size() ||
      attr_cubes_.size() != delta.attr_cubes_.size() ||
      pair_cubes_.size() != delta.pair_cubes_.size()) {
    return Status::InvalidArgument(
        "delta store shape does not match the base store");
  }
  const int64_t num_attr_cubes = static_cast<int64_t>(attr_cubes_.size());
  for (int64_t i = 0;
       i < num_attr_cubes + static_cast<int64_t>(pair_cubes_.size()); ++i) {
    OPMAP_RETURN_NOT_OK(delta.VerifyMappedCube(i));
    RuleCube& dst = i < num_attr_cubes
                        ? attr_cubes_[static_cast<size_t>(i)]
                        : pair_cubes_[static_cast<size_t>(i - num_attr_cubes)];
    const RuleCube& src =
        i < num_attr_cubes
            ? delta.attr_cubes_[static_cast<size_t>(i)]
            : delta.pair_cubes_[static_cast<size_t>(i - num_attr_cubes)];
    if (dst.num_cells() != src.num_cells()) {
      return Status::InvalidArgument(
          "delta cube cell count does not match the base store");
    }
    int64_t* out = dst.raw_counts();
    const int64_t* in = src.raw_counts();
    for (int64_t c = 0; c < dst.num_cells(); ++c) out[c] += in[c];
  }
  for (size_t k = 0; k < class_counts_.size(); ++k) {
    class_counts_[k] += delta.class_counts_[k];
  }
  num_records_ += delta.num_records_;
  return Status::OK();
}

Result<CubeBuilder> CubeBuilder::Make(Schema schema,
                                      CubeStoreOptions options) {
  if (schema.num_attributes() == 0) {
    return Status::InvalidArgument("empty schema");
  }
  std::vector<int> attrs = options.attributes;
  if (attrs.empty()) {
    for (int a = 0; a < schema.num_attributes(); ++a) {
      if (!schema.is_class(a) && schema.attribute(a).is_categorical()) {
        attrs.push_back(a);
      }
    }
  } else {
    std::unordered_set<int> seen;
    for (int a : attrs) {
      if (a < 0 || a >= schema.num_attributes()) {
        return Status::OutOfRange("cube store attribute out of range");
      }
      if (schema.is_class(a)) {
        return Status::InvalidArgument(
            "class attribute cannot be a cube store attribute");
      }
      if (!schema.attribute(a).is_categorical()) {
        return Status::InvalidArgument(
            "continuous attribute '" + schema.attribute(a).name() +
            "' cannot be materialized; discretize first");
      }
      if (!seen.insert(a).second) {
        return Status::InvalidArgument("duplicate cube store attribute");
      }
    }
    std::sort(attrs.begin(), attrs.end());
  }

  CubeBuilder builder;
  builder.parallel_ = options.parallel;
  builder.max_memory_bytes_ = options.max_memory_bytes;
  builder.kernel_ = options.kernel;
  builder.block_rows_ = ResolveBlockRows(options.block_rows);
  CubeStore& store = builder.store_;
  store.schema_ = std::move(schema);
  store.attributes_ = std::move(attrs);
  store.attr_slot_.assign(
      static_cast<size_t>(store.schema_.num_attributes()), -1);
  for (size_t i = 0; i < store.attributes_.size(); ++i) {
    store.attr_slot_[static_cast<size_t>(store.attributes_[i])] =
        static_cast<int>(i);
  }
  store.class_counts_.assign(
      static_cast<size_t>(store.schema_.num_classes()), 0);
  store.has_pair_cubes_ = options.build_pair_cubes;

  builder.class_index_ = store.schema_.class_index();
  builder.num_classes_ = store.schema_.num_classes();

  const int m = static_cast<int>(store.attributes_.size());

  // Enforce the memory budget before allocating anything: a wide schema
  // with large domains can demand terabytes of pair cubes, and the server
  // should answer kOutOfRange, not die in the allocator.
  if (options.max_memory_bytes > 0) {
    const int64_t nc = store.schema_.num_classes();
    int64_t projected = 0;
    for (int i = 0; i < m; ++i) {
      const int64_t di =
          store.schema_.attribute(store.attributes_[static_cast<size_t>(i)])
              .domain();
      projected += di * nc * static_cast<int64_t>(sizeof(int64_t));
      if (options.build_pair_cubes) {
        for (int j = i + 1; j < m; ++j) {
          const int64_t dj =
              store.schema_
                  .attribute(store.attributes_[static_cast<size_t>(j)])
                  .domain();
          projected += di * dj * nc * static_cast<int64_t>(sizeof(int64_t));
        }
      }
      if (projected > options.max_memory_bytes) {
        return Status::OutOfRange(
            "cube materialization needs more than the " +
            std::to_string(options.max_memory_bytes) +
            "-byte memory budget (" + std::to_string(projected) +
            "+ bytes projected); raise the budget or materialize fewer "
            "attributes");
      }
    }
  }

  store.attr_cubes_.reserve(static_cast<size_t>(m));
  for (int a : store.attributes_) {
    OPMAP_ASSIGN_OR_RETURN(
        RuleCube cube,
        RuleCube::Make(store.schema_, {a, builder.class_index_}));
    store.attr_cubes_.push_back(std::move(cube));
    builder.sizes_.push_back(store.schema_.attribute(a).domain());
  }
  if (options.build_pair_cubes) {
    store.pair_cubes_.reserve(static_cast<size_t>(m) *
                              static_cast<size_t>(m - 1) / 2);
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) {
        OPMAP_ASSIGN_OR_RETURN(
            RuleCube cube,
            RuleCube::Make(store.schema_,
                           {store.attributes_[static_cast<size_t>(i)],
                            store.attributes_[static_cast<size_t>(j)],
                            builder.class_index_}));
        store.pair_cubes_.push_back(std::move(cube));
      }
    }
  }

  // Raw pointers for the hot loop (stable: vectors are fully built).
  for (auto& c : store.attr_cubes_) {
    builder.attr_raw_.push_back(c.raw_counts());
    builder.attr_cells_.push_back(c.num_cells());
    builder.total_cells_ += c.num_cells();
  }
  for (auto& c : store.pair_cubes_) {
    builder.pair_raw_.push_back(c.raw_counts());
    builder.pair_cells_.push_back(c.num_cells());
    builder.total_cells_ += c.num_cells();
  }
  builder.pair_base_.resize(static_cast<size_t>(m));
  int base = 0;
  for (int i = 0; i < m; ++i) {
    builder.pair_base_[static_cast<size_t>(i)] = base;
    base += m - i - 1;
  }
  return builder;
}

void CubeBuilder::AddRow(const ValueCode* row) {
  const ValueCode y = row[class_index_];
  if (y == kNullCode) return;
  ++store_.num_records_;
  ++store_.class_counts_[static_cast<size_t>(y)];

  const int m = static_cast<int>(store_.attributes_.size());
  const int nc = num_classes_;
  for (int i = 0; i < m; ++i) {
    const ValueCode vi = row[store_.attributes_[static_cast<size_t>(i)]];
    if (vi == kNullCode) continue;
    attr_raw_[static_cast<size_t>(i)][vi * nc + y] += 1;
    if (!store_.has_pair_cubes_) continue;
    const int base = pair_base_[static_cast<size_t>(i)];
    for (int j = i + 1; j < m; ++j) {
      const ValueCode vj = row[store_.attributes_[static_cast<size_t>(j)]];
      if (vj == kNullCode) continue;
      const int sj = sizes_[static_cast<size_t>(j)];
      pair_raw_[static_cast<size_t>(base + j - i - 1)]
               [(static_cast<int64_t>(vi) * sj + vj) * nc + y] += 1;
    }
  }
}

void CubeBuilder::CountRange(const ColumnView& view, int64_t row_begin,
                             int64_t row_end, int64_t* const* attr_ptrs,
                             int64_t* const* pair_ptrs, int64_t* class_counts,
                             int64_t* num_records) const {
  if (view.packed != nullptr) {
    BlockedCountArgs args;
    args.columns = view.packed;
    args.num_classes = num_classes_;
    args.build_pairs = store_.has_pair_cubes_;
    args.sizes = sizes_.data();
    args.block_rows = block_rows_;
    args.use_simd = view.use_simd;
    args.attr_ptrs = attr_ptrs;
    args.pair_ptrs = pair_ptrs;
    args.class_counts = class_counts;
    args.num_records = num_records;
    CountRangeBlocked(args, row_begin, row_end);
    return;
  }
  const int m = static_cast<int>(store_.attributes_.size());
  const int nc = num_classes_;
  const bool pairs = store_.has_pair_cubes_;
  const ValueCode* const class_col = view.class_col;
  for (int64_t r = row_begin; r < row_end; ++r) {
    const ValueCode y = class_col[r];
    if (y == kNullCode) continue;
    ++*num_records;
    ++class_counts[y];
    for (int i = 0; i < m; ++i) {
      const ValueCode vi = view.cols[static_cast<size_t>(i)][r];
      if (vi == kNullCode) continue;
      attr_ptrs[i][vi * nc + y] += 1;
      if (!pairs) continue;
      const int base = pair_base_[static_cast<size_t>(i)];
      for (int j = i + 1; j < m; ++j) {
        const ValueCode vj = view.cols[static_cast<size_t>(j)][r];
        if (vj == kNullCode) continue;
        const int sj = sizes_[static_cast<size_t>(j)];
        pair_ptrs[base + j - i - 1]
                 [(static_cast<int64_t>(vi) * sj + vj) * nc + y] += 1;
      }
    }
  }
}

int64_t CubeBuilder::TileScratchBytes(bool simd) const {
  // One blocked CountRange call widens the class codes and keeps one
  // fused-index row per attribute, all int32, for one tile; the SIMD
  // tier adds one compacted-index row (plus its store slack).
  const int64_t m = static_cast<int64_t>(store_.attributes_.size());
  const int64_t rows = m + 1 + (simd ? 1 : 0);
  return (rows * block_rows_ + (simd ? 8 : 0)) *
         static_cast<int64_t>(sizeof(int32_t));
}

int CubeBuilder::PlanShards(int64_t num_rows, int64_t reserved_bytes,
                            int64_t per_shard_bytes) const {
  int shards = EffectiveThreads(parallel_);
  // Tiny inputs are not worth a fork/join (the result is identical either
  // way; this is purely a fixed-cost cutoff).
  if (num_rows < 2048) shards = 1;
  shards = static_cast<int>(
      std::min<int64_t>(shards, std::max<int64_t>(num_rows, 1)));
  if (shards > 1 && max_memory_bytes_ > 0) {
    // Each extra shard allocates a private copy of all cube buffers plus
    // its own tile scratch; stay within the same budget that gated
    // materialization itself, net of the scratch already reserved for
    // this pass (packed columns and shard 0's tiles).
    const int64_t copy_bytes =
        total_cells_ * static_cast<int64_t>(sizeof(int64_t)) +
        per_shard_bytes;
    const int64_t headroom =
        max_memory_bytes_ - store_.MemoryUsageBytes() - reserved_bytes;
    const int64_t extra_copies =
        copy_bytes > 0 ? std::max<int64_t>(headroom, 0) / copy_bytes : 0;
    shards = static_cast<int>(
        std::min<int64_t>(shards, 1 + extra_copies));
  }
  return std::max(shards, 1);
}

Status CubeBuilder::AddDataset(const Dataset& dataset) {
  OPMAP_TRACE_SPAN("cube.add_dataset");
  const Schema& ds = dataset.schema();
  const Schema& ss = store_.schema_;
  if (ds.num_attributes() != ss.num_attributes() ||
      ds.class_index() != ss.class_index()) {
    return Status::InvalidArgument("dataset schema does not match cube store");
  }
  for (int a : store_.attributes_) {
    if (!ds.attribute(a).is_categorical() ||
        ds.attribute(a).domain() != ss.attribute(a).domain()) {
      return Status::InvalidArgument(
          "dataset attribute '" + ds.attribute(a).name() +
          "' does not match the cube store schema");
    }
  }
  const int64_t n = dataset.num_rows();
  ColumnView view;
  view.class_col = dataset.categorical_column(class_index_).data();
  view.cols.reserve(store_.attributes_.size());
  for (int a : store_.attributes_) {
    view.cols.push_back(dataset.categorical_column(a).data());
  }

  // Resolve the requested kernel for this pass (kAuto consults the
  // OPMAP_KERNEL environment and the CPU's vector support), then apply
  // the fallback ladder: the blocked/SIMD kernels need packed-column
  // scratch for the whole pass plus tile scratch per shard, and when the
  // memory budget cannot absorb that the pass falls back to the
  // reference kernel — the counts are identical, only slower — instead
  // of overshooting the budget. The SIMD tier additionally requires the
  // running CPU to support a compiled-in vector ISA.
  const CountKernel kernel = ResolveCountKernel(kernel_);
  bool simd = kernel == CountKernel::kSimd && SimdAvailable();
  bool blocked = kernel != CountKernel::kReference &&
                 BlockedKernelSupported(ss, store_.attributes_);
  int64_t reserved = 0;
  if (blocked) {
    const int64_t packed_bytes =
        PackedColumnSet::ProjectedBytes(ss, store_.attributes_, n);
    reserved = packed_bytes + TileScratchBytes(simd);  // shard 0's tiles
    if (max_memory_bytes_ > 0 &&
        store_.MemoryUsageBytes() + reserved > max_memory_bytes_) {
      blocked = false;
      reserved = 0;
      static Counter* const fallbacks =
          MetricsRegistry::Global()->counter("cube.budget_fallbacks");
      fallbacks->Increment();
    }
  }
  simd = simd && blocked;
  // Per-pass pass/row/kernel accounting (never per row).
  MetricsRegistry* const metrics = MetricsRegistry::Global();
  metrics->counter("cube.rows_counted")->Increment(n);
  metrics
      ->counter(simd ? "cube.kernel_simd"
                     : blocked ? "cube.kernel_blocked" : "cube.kernel_reference")
      ->Increment();
  if (kernel == CountKernel::kSimd) {
    if (!simd) {
      // The whole pass ran scalar despite the SIMD tier being requested
      // (no CPU support, unsupported shapes, or the budget fallback).
      metrics->counter("kernel.simd_fallbacks")->Increment();
    } else {
      metrics->counter("kernel.simd_selected")->Increment();
      // Count the columns and pairs inside this pass that the vector
      // tier must skip (uint32 codes — domains above 65535 — or pair
      // indices past int32); they run the scalar blocked loops.
      const int64_t nc = num_classes_;
      const int m_cols = static_cast<int>(store_.attributes_.size());
      int64_t scalar_units = 0;
      for (int i = 0; i < m_cols; ++i) {
        const bool col_ok = sizes_[static_cast<size_t>(i)] <= 65535;
        if (!col_ok) ++scalar_units;
        if (!store_.has_pair_cubes_) continue;
        for (int j = i + 1; j < m_cols; ++j) {
          const int64_t stride_j =
              static_cast<int64_t>(sizes_[static_cast<size_t>(j)]) * nc;
          if (!col_ok ||
              !SimdPairEligible(sizes_[static_cast<size_t>(i)], stride_j)) {
            ++scalar_units;
          }
        }
      }
      if (scalar_units > 0) {
        metrics->counter("kernel.simd_fallbacks")->Increment(scalar_units);
      }
    }
  }
  PackedColumnSet packed;
  if (blocked) {
    OPMAP_TRACE_SPAN("cube.pack");
    const int64_t pack_start_us = MonotonicMicros();
    packed = PackedColumnSet::Build(dataset, store_.attributes_);
    view.packed = &packed;
    view.use_simd = simd;
    metrics->histogram("cube.pack_us")
        ->Record(MonotonicMicros() - pack_start_us);
  }

  // A per-tier span (distinct literals; spans never copy their name) so
  // traces show which kernel counted the pass.
  TraceSpan count_span(simd ? "cube.count.simd"
                            : blocked ? "cube.count.blocked"
                                      : "cube.count.reference");
  const int shards =
      PlanShards(n, reserved, blocked ? TileScratchBytes(simd) : 0);
  if (shards <= 1) {
    CountRange(view, 0, n, attr_raw_.data(), pair_raw_.data(),
               store_.class_counts_.data(), &store_.num_records_);
    return Status::OK();
  }

  // Shard-and-merge: shard 0 counts straight into the store's buffers;
  // every other shard counts into a private flat buffer (all cubes
  // concatenated) that is merged below. Integer addition commutes, so the
  // merged counts are bit-identical to a serial pass for any shard count.
  struct ShardState {
    std::vector<int64_t> cells;          // total_cells_ zeros
    std::vector<int64_t> class_counts;
    int64_t num_records = 0;
    std::vector<int64_t*> attr_ptrs;
    std::vector<int64_t*> pair_ptrs;
  };
  std::vector<ShardState> privates(static_cast<size_t>(shards - 1));
  for (ShardState& s : privates) {
    s.cells.assign(static_cast<size_t>(total_cells_), 0);
    s.class_counts.assign(store_.class_counts_.size(), 0);
    int64_t* cursor = s.cells.data();
    s.attr_ptrs.reserve(attr_cells_.size());
    for (int64_t cells : attr_cells_) {
      s.attr_ptrs.push_back(cursor);
      cursor += cells;
    }
    s.pair_ptrs.reserve(pair_cells_.size());
    for (int64_t cells : pair_cells_) {
      s.pair_ptrs.push_back(cursor);
      cursor += cells;
    }
  }

  ParallelForShards(0, n, shards, [&](int shard, int64_t lo, int64_t hi) {
    if (shard == 0) {
      CountRange(view, lo, hi, attr_raw_.data(), pair_raw_.data(),
                 store_.class_counts_.data(), &store_.num_records_);
    } else {
      ShardState& s = privates[static_cast<size_t>(shard - 1)];
      CountRange(view, lo, hi, s.attr_ptrs.data(), s.pair_ptrs.data(),
                 s.class_counts.data(), &s.num_records);
    }
  });

  // Element-wise merge (auto-vectorizes: two dense int64 arrays).
  for (const ShardState& s : privates) {
    store_.num_records_ += s.num_records;
    for (size_t c = 0; c < store_.class_counts_.size(); ++c) {
      store_.class_counts_[c] += s.class_counts[c];
    }
    const int64_t* src = s.cells.data();
    for (size_t i = 0; i < attr_raw_.size(); ++i) {
      int64_t* dst = attr_raw_[i];
      const int64_t cells = attr_cells_[i];
      for (int64_t c = 0; c < cells; ++c) dst[c] += src[c];
      src += cells;
    }
    for (size_t i = 0; i < pair_raw_.size(); ++i) {
      int64_t* dst = pair_raw_[i];
      const int64_t cells = pair_cells_[i];
      for (int64_t c = 0; c < cells; ++c) dst[c] += src[c];
      src += cells;
    }
  }
  return Status::OK();
}

CubeStore CubeBuilder::Finish() && {
  attr_raw_.clear();
  pair_raw_.clear();
  return std::move(store_);
}

Result<CubeStore> CubeBuilder::FromDataset(const Dataset& dataset,
                                           CubeStoreOptions options) {
  OPMAP_ASSIGN_OR_RETURN(CubeBuilder builder,
                         CubeBuilder::Make(dataset.schema(), options));
  OPMAP_RETURN_NOT_OK(builder.AddDataset(dataset));
  return std::move(builder).Finish();
}

}  // namespace opmap
