#ifndef OPMAP_CUBE_CUBE_STORE_H_
#define OPMAP_CUBE_CUBE_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "opmap/common/parallel.h"
#include "opmap/common/status.h"
#include "opmap/cube/count_kernels.h"
#include "opmap/cube/rule_cube.h"
#include "opmap/data/dataset.h"

namespace opmap {

class BinaryReader;
class Env;
struct AlignedSection;

/// Options for cube materialization.
struct CubeStoreOptions {
  /// Attributes to include (schema indices, class excluded). Empty = every
  /// non-class categorical attribute.
  std::vector<int> attributes;
  /// Whether to materialize the 3-D (attribute, attribute, class) cubes.
  /// The 2-D (attribute, class) cubes are always built.
  bool build_pair_cubes = true;
  /// Upper bound on cube memory in bytes; materialization that would exceed
  /// it fails with kOutOfRange before allocating anything. 0 = unlimited.
  /// Parallel materialization allocates one private shard copy of the cube
  /// buffers per extra worker; the shard count is clamped so base + shard
  /// copies stay within this budget (see docs/PERFORMANCE.md).
  int64_t max_memory_bytes = 0;
  /// Worker count for AddDataset. Rows are split into per-worker shards,
  /// each counted into private buffers and merged by element-wise
  /// addition, so the store is bit-identical to a serial build for any
  /// thread count.
  ParallelOptions parallel;
  /// Counting kernel for AddDataset. All kernels count bit-identically;
  /// kReference is the seed row-at-a-time loop, retained for testing.
  /// kAuto resolves via ResolveCountKernel (OPMAP_KERNEL env, else SIMD
  /// when the CPU has it, else blocked). The blocked/SIMD kernels fall
  /// back to the reference kernel when their packed-column scratch would
  /// not fit `max_memory_bytes`, and SIMD falls back per column/pair
  /// when shapes disqualify it (see SimdColumnEligible/SimdPairEligible).
  CountKernel kernel = CountKernel::kAuto;
  /// Rows per tile for the blocked kernel. 0 = the OPMAP_BLOCK_ROWS
  /// environment variable when valid, else 4096 (kDefaultBlockRows).
  int64_t block_rows = 0;
};

/// How CubeStore::LoadFromFile maps v3 files. v1/v2 files always load
/// eagerly regardless of these options.
struct CubeLoadOptions {
  /// Map the file (Env::MapFile) and serve cube counts in place: the load
  /// returns in O(#cubes) after verifying only the header, schema, meta and
  /// cube index; each cube's payload is CRC-verified lazily on its first
  /// AttrCube/PairCube access. When false the whole file is read, verified
  /// and copied into owned cubes up front.
  bool use_mmap = true;
};

/// Serving-path observability: how much of a lazily-loaded store has
/// actually been touched. All zeros/false for eagerly loaded or built
/// stores.
struct MappingStats {
  /// True when the store serves cube counts from a lazy v3 mapping.
  bool mapped = false;
  /// True when the mapping is a real mmap (false: aligned heap fallback).
  bool is_mmap = false;
  /// Size of the mapped file.
  int64_t bytes_mapped = 0;
  /// Bytes of the mapping currently resident in memory, or -1 if unknown.
  int64_t bytes_resident = 0;
  int64_t cubes_total = 0;
  /// Cubes whose payloads have been CRC-verified (touched) so far.
  int64_t cubes_verified = 0;
};

/// The deployed system's cube inventory: one 2-D rule cube per attribute
/// and one 3-D rule cube per attribute pair, all with the class attribute
/// as the last dimension (paper Section III.B: "we store all 3-dimensional
/// rule cubes").
///
/// All post-mining analysis (OLAP exploration, GI mining, the comparator)
/// reads only this store, which is why comparison time is independent of
/// the original data size (paper Section V.C).
class CubeStore {
 public:
  // Out of line: the lazy-mapping state is an incomplete type here.
  ~CubeStore();
  CubeStore(CubeStore&&) noexcept;
  CubeStore& operator=(CubeStore&&) noexcept;

  const Schema& schema() const { return schema_; }

  /// Attributes included in the store (ascending schema indices).
  const std::vector<int>& attributes() const { return attributes_; }

  /// Records represented (rows with a non-null class).
  int64_t num_records() const { return num_records_; }

  /// The 2-D cube (attr, class). `attr` must be included in the store.
  Result<const RuleCube*> AttrCube(int attr) const;

  /// The 3-D cube over {a, b, class} with dimensions ordered
  /// (min(a,b), max(a,b), class). Both attributes must be included and
  /// pair cubes must have been built.
  Result<const RuleCube*> PairCube(int a, int b) const;

  /// Overall class distribution (counts per class code).
  const std::vector<int64_t>& class_counts() const { return class_counts_; }

  /// Number of materialized cubes.
  int64_t NumCubes() const;

  /// Heap bytes held by all cubes. Cube views over a mapped file hold no
  /// heap counts, so a lazily loaded store reports only its bookkeeping —
  /// the count payloads stay in the (shared, evictable) page cache.
  int64_t MemoryUsageBytes() const;

  /// Serving-path observability for lazily loaded stores.
  MappingStats GetMappingStats() const;

  /// Deep copy with owned counts. Mapped (lazily loaded) stores are
  /// materialized: every cube payload is CRC-verified and copied to the
  /// heap, so the clone is independent of the source's file mapping and
  /// mutable (AddCounts). This is the streaming-ingestion layer's bridge
  /// from a zero-copy served base store to a compactable one.
  Result<CubeStore> Clone() const;

  /// Element-wise adds `delta`'s counts into this store (cube cells,
  /// class counts, record total). Because cube cells are additive, this is
  /// exactly the parallel builder's shard merge applied across time: a
  /// base store plus a delta built over later rows equals one batch build
  /// over all rows, bit for bit. Both stores must have the same schema
  /// shape (attributes, domains, pair-cube setting); this store must own
  /// its counts (build or Clone first — mapped views are immutable).
  Status AddCounts(const CubeStore& delta);

  /// On-disk format selector. v2 is the checksummed stream container; v3
  /// adds 64-byte-aligned raw count payloads plus a per-cube CRC index so
  /// files can be mapped and served zero-copy (docs/FORMATS.md).
  enum class SaveFormat { kV2, kV3Aligned };

  /// Binary persistence ("OPMC" format): the deployed system generates
  /// cubes offline (overnight) and reloads them for interactive use.
  /// `Save` defaults to the v2 stream container; `SaveToFile` defaults to
  /// v3 so files are mmap-servable. Readers accept v1 (seed format, no
  /// checksums), v2 and v3. SaveToFile is crash-safe: write-to-temp,
  /// fsync, atomic rename through `env` (nullptr = Env::Default()), so no
  /// failure mid-save corrupts an existing file.
  Status Save(std::ostream* out, SaveFormat format = SaveFormat::kV2) const;
  Status SaveToFile(const std::string& path, Env* env = nullptr,
                    SaveFormat format = SaveFormat::kV3Aligned) const;
  static Result<CubeStore> Load(std::istream* in);
  static Result<CubeStore> LoadFromBytes(const std::string& bytes);
  /// Loads a store. v3 files are mapped and served lazily per `options`;
  /// v1/v2 files are read and verified eagerly.
  static Result<CubeStore> LoadFromFile(const std::string& path,
                                        Env* env = nullptr,
                                        const CubeLoadOptions& options = {});

 private:
  friend class CubeBuilder;

  CubeStore();  // out of line: the lazy-mapping state is incomplete here

  // Version-specific load paths (cube_io.cc). ReadMeta fills everything
  // that is not schema or cube counts.
  static Status ReadMeta(BinaryReader* r, Schema schema, CubeStore* out);
  static Result<CubeStore> LoadV1(BinaryReader* r, std::istream* in);
  static Result<CubeStore> LoadV2(const std::string& bytes);
  static Result<CubeStore> LoadV3Eager(const std::string& bytes);
  static Result<CubeStore> LoadV3Mapped(const std::string& path, Env* env);

  // One parsed v3 cube-index entry, in store order (attribute cubes first,
  // then the packed pair-cube triangle).
  struct V3CubeEntry {
    uint64_t abs_offset = 0;  // absolute file offset of the count array
    uint64_t cells = 0;
    uint32_t crc = 0;
  };
  // Parses the schema/meta/cube_index sections of a v3 container (already
  // CRC-verified by the caller) into a zeroed store plus one index entry
  // per cube; cube_data payload bytes are not touched.
  static Status ParseV3Skeleton(const char* data,
                                const std::vector<AlignedSection>& sections,
                                CubeStore* store,
                                std::vector<V3CubeEntry>* entries);

  // First-touch payload verification for lazily loaded stores: CRC-checks
  // cube `index` (attr cubes first, then pair cubes) once, caching the
  // verdict. No-op for eager stores. Thread-safe.
  Status VerifyMappedCube(int64_t index) const;

  int AttrSlot(int attr) const {
    return attr >= 0 && attr < static_cast<int>(attr_slot_.size())
               ? attr_slot_[static_cast<size_t>(attr)]
               : -1;
  }

  Schema schema_;
  std::vector<int> attributes_;
  std::vector<int> attr_slot_;  // schema attr -> position in attributes_
  int64_t num_records_ = 0;
  std::vector<int64_t> class_counts_;
  std::vector<RuleCube> attr_cubes_;  // one per included attribute
  bool has_pair_cubes_ = false;
  std::vector<RuleCube> pair_cubes_;  // packed upper triangle

  // Lazy v3 serving state (cube_io.cc); null for built/eager stores.
  // Mutable: first-touch verification caches its verdict through const
  // accessors. Makes CubeStore move-only, which every call site already
  // respects.
  struct Mapped;
  mutable std::unique_ptr<Mapped> mapped_;
};

/// Builds a CubeStore in one streaming pass. Rows can come from a
/// materialized Dataset or be pushed one at a time (used for the
/// record-count scale-up benchmark where 8 M rows never exist in memory at
/// once).
class CubeBuilder {
 public:
  /// Validates options against the schema and allocates the cubes.
  static Result<CubeBuilder> Make(Schema schema, CubeStoreOptions options);

  /// Adds one record. `row` holds one code per schema attribute. Rows with
  /// a null class are ignored; null values skip the affected cubes only.
  void AddRow(const ValueCode* row);

  /// Adds every row of `dataset` (must match the builder's schema shape).
  /// Iterates the dataset's columns directly (no per-row copy) and shards
  /// the row range across the thread pool per the builder's
  /// ParallelOptions; counts are merged exactly, so the result does not
  /// depend on the thread count.
  Status AddDataset(const Dataset& dataset);

  /// Finalizes and returns the store. The builder is consumed.
  CubeStore Finish() &&;

  /// Convenience: build a store over `dataset` in one call.
  static Result<CubeStore> FromDataset(const Dataset& dataset,
                                       CubeStoreOptions options = {});

 private:
  CubeBuilder() = default;

  // Columns of the dataset being counted, resolved once per AddDataset.
  // `packed` is set when the blocked kernel runs this pass: the packed
  // re-encoding built once per AddDataset and streamed by every shard.
  struct ColumnView {
    const ValueCode* class_col = nullptr;
    std::vector<const ValueCode*> cols;  // one per included attribute slot
    const PackedColumnSet* packed = nullptr;
    bool use_simd = false;  // vector tier for eligible columns/pairs
  };

  // Counts rows [row_begin, row_end) of `view` into the given buffers.
  // `attr_ptrs`/`pair_ptrs` are per-cube count arrays (the store's own or
  // a shard's private copy); `class_counts` has one slot per class.
  void CountRange(const ColumnView& view, int64_t row_begin, int64_t row_end,
                  int64_t* const* attr_ptrs, int64_t* const* pair_ptrs,
                  int64_t* class_counts, int64_t* num_records) const;

  // Shards AddDataset would use for `num_rows` rows: the configured thread
  // count clamped by the row count and the remaining memory budget.
  // `reserved_bytes` is scratch already charged against the budget this
  // pass (packed columns); each extra shard costs one private copy of the
  // cube buffers plus `per_shard_bytes` of tile scratch.
  int PlanShards(int64_t num_rows, int64_t reserved_bytes,
                 int64_t per_shard_bytes) const;

  // Tile scratch one blocked CountRange call allocates: the widened class
  // codes plus one fused-index row per attribute, plus (SIMD tier) one
  // compacted-index row.
  int64_t TileScratchBytes(bool simd) const;

  CubeStore store_;
  // Hot-path acceleration structures.
  int class_index_ = -1;
  int num_classes_ = 0;
  std::vector<int64_t*> attr_raw_;   // per included attribute
  std::vector<int64_t*> pair_raw_;   // packed upper triangle
  std::vector<int> pair_base_;       // slot a -> first pair index of (a, *)
  std::vector<int> sizes_;           // domain per included attribute
  // Parallel materialization state.
  ParallelOptions parallel_;
  int64_t max_memory_bytes_ = 0;
  CountKernel kernel_ = CountKernel::kBlocked;
  int64_t block_rows_ = kDefaultBlockRows;
  std::vector<int64_t> attr_cells_;  // cells per attribute cube
  std::vector<int64_t> pair_cells_;  // cells per pair cube
  int64_t total_cells_ = 0;          // sum of the two, for shard buffers
};

}  // namespace opmap

#endif  // OPMAP_CUBE_CUBE_STORE_H_
