#include "opmap/cube/count_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "opmap/common/simd.h"
#include "opmap/cube/count_kernels_simd.h"

namespace opmap {

namespace {

constexpr int64_t kMaxBlockRows = 1 << 20;

// Rows per sub-tile of the standalone SIMD attr/pair paths: small enough
// that the int32 scratch lives on the stack and in L1, and within the
// bit-sliced counter's byte-accumulator bound.
constexpr int64_t kSimdSubTile = internal::kSimdCountSmallMaxRows;

// Count arrays up to this many cells get private per-stream accumulators
// in HistogramIdx (below); larger arrays share the output buffer, where
// same-cell collisions are rare anyway.
constexpr int64_t kHistMultiAccCells = 1024;

// Scalar multi-accumulator histogram over a dense (compacted) index
// stream — the back half of every SIMD counting path. Four interleaved
// streams break the load-add-store dependency chain of a single `++`
// loop, and for small count arrays each stream gets a private
// accumulator so two streams hitting the same cell never collide: the
// gather-free answer to vector scatter-with-conflict-detection.
// Bit-identical to a plain loop because int64 addition commutes.
void HistogramIdx(const int32_t* idx, int64_t cnt, int64_t* counts,
                  int64_t cells) {
  const int64_t q = cnt / 4;
  const int32_t* p0 = idx;
  const int32_t* p1 = idx + q;
  const int32_t* p2 = idx + 2 * q;
  const int32_t* p3 = idx + 3 * q;
  if (cells <= kHistMultiAccCells && cnt >= cells * 8) {
    thread_local std::vector<int64_t> scratch;
    scratch.assign(static_cast<size_t>(4 * cells), 0);
    int64_t* a0 = scratch.data();
    int64_t* a1 = a0 + cells;
    int64_t* a2 = a0 + 2 * cells;
    int64_t* a3 = a0 + 3 * cells;
    for (int64_t k = 0; k < q; ++k) {
      ++a0[p0[k]];
      ++a1[p1[k]];
      ++a2[p2[k]];
      ++a3[p3[k]];
    }
    for (int64_t k = 4 * q; k < cnt; ++k) ++a0[idx[k]];
    for (int64_t c = 0; c < cells; ++c) {
      counts[c] += a0[c] + a1[c] + a2[c] + a3[c];
    }
  } else {
    for (int64_t k = 0; k < q; ++k) {
      ++counts[p0[k]];
      ++counts[p1[k]];
      ++counts[p2[k]];
      ++counts[p3[k]];
    }
    for (int64_t k = 4 * q; k < cnt; ++k) ++counts[idx[k]];
  }
}

// Width-dispatch wrappers over the vector kernel table. Callers must
// have checked SimdColumnEligible (width <= 2) first.
void SimdWiden(const internal::SimdKernels& sk, const PackedColumn& col,
               int64_t offset, int64_t len, int32_t* out) {
  if (col.width() == 1) {
    sk.widen_u8(col.u8() + offset, col.sentinel(), len, out);
  } else {
    sk.widen_u16(col.u16() + offset, col.sentinel(), len, out);
  }
}

void SimdFuse(const internal::SimdKernels& sk, const PackedColumn& col,
              int64_t offset, const int32_t* base, int32_t mult, int64_t len,
              int32_t* fused) {
  if (col.width() == 1) {
    sk.fuse_u8(col.u8() + offset, col.sentinel(), base, mult, len, fused,
               nullptr);
  } else {
    sk.fuse_u16(col.u16() + offset, col.sentinel(), base, mult, len, fused,
                nullptr);
  }
}

int64_t SimdFuseStore(const internal::SimdKernels& sk, const PackedColumn& col,
                      int64_t offset, const int32_t* base, int32_t mult,
                      int64_t len, int32_t* fused, int32_t* idx) {
  if (col.width() == 1) {
    return sk.fuse_store_u8(col.u8() + offset, col.sentinel(), base, mult, len,
                            fused, idx);
  }
  return sk.fuse_store_u16(col.u16() + offset, col.sentinel(), base, mult, len,
                           fused, idx);
}

int64_t SimdFuseCompact(const internal::SimdKernels& sk,
                        const PackedColumn& col, int64_t offset,
                        const int32_t* base, int32_t mult, int64_t len,
                        int32_t* idx) {
  if (col.width() == 1) {
    return sk.fuse_compact_u8(col.u8() + offset, col.sentinel(), base, mult,
                              len, nullptr, idx);
  }
  return sk.fuse_compact_u16(col.u16() + offset, col.sentinel(), base, mult,
                             len, nullptr, idx);
}

// Packs one code: kNullCode becomes the sentinel (== domain), everything
// else is already in [0, domain).
inline uint32_t PackCode(ValueCode v, uint32_t sentinel) {
  return v == kNullCode ? sentinel : static_cast<uint32_t>(v);
}

int WidthFor(int domain) {
  // domain + 1 distinct codes: the dictionary plus the null sentinel.
  const int64_t codes = static_cast<int64_t>(domain) + 1;
  if (codes <= 256) return 1;
  if (codes <= 65536) return 2;
  return 4;
}

template <typename T>
void PackInto(const ValueCode* src, const int64_t* rows, int64_t n,
              uint32_t sentinel, uint8_t* dst_bytes) {
  T* dst = reinterpret_cast<T*>(dst_bytes);
  if (rows == nullptr) {
    for (int64_t r = 0; r < n; ++r) {
      dst[r] = static_cast<T>(PackCode(src[r], sentinel));
    }
  } else {
    for (int64_t r = 0; r < n; ++r) {
      dst[r] = static_cast<T>(PackCode(src[rows[r]], sentinel));
    }
  }
}

// Widens the class column of a tile into int32 (-1 for null): every
// attribute's fuse pass reads this buffer instead of re-decoding the
// class column per attribute.
template <typename T>
void WidenClassTile(const T* cls, T sentinel, int64_t len, int32_t* ybuf,
                    int64_t* class_counts, int64_t* num_records) {
  int64_t records = 0;
  for (int64_t k = 0; k < len; ++k) {
    const T y = cls[k];
    if (y == sentinel) {
      ybuf[k] = -1;
    } else {
      ybuf[k] = static_cast<int32_t>(y);
      ++class_counts[y];
      ++records;
    }
  }
  *num_records += records;
}

// Computes the fused `v * nc + y` index of one attribute for a tile
// (-1 when either code is null) and applies the attribute's 2-D cube
// increments on the way: the fused index IS the 2-D cube cell.
template <typename T>
void FuseTile(const T* col, T sentinel, const int32_t* ybuf, int32_t nc,
              int64_t len, int32_t* fused, int64_t* attr_counts) {
  for (int64_t k = 0; k < len; ++k) {
    const T v = col[k];
    const int32_t y = ybuf[k];
    if (v == sentinel || y < 0) {
      fused[k] = -1;
    } else {
      const int32_t f = static_cast<int32_t>(v) * nc + y;
      fused[k] = f;
      ++attr_counts[f];
    }
  }
}

// The pair inner loop: streams attribute i's packed codes and attribute
// j's fused indices, writing one pair buffer. Cell (vi, vj, y) lives at
// vi * (domain_j * nc) + (vj * nc + y) == vi * stride_j + fused_j.
template <typename T>
void PairTile(const T* col_i, T sentinel, const int32_t* fused_j,
              int64_t stride_j, int64_t len, int64_t* buf) {
  for (int64_t k = 0; k < len; ++k) {
    const T v = col_i[k];
    const int32_t f = fused_j[k];
    if (v == sentinel || f < 0) continue;
    ++buf[static_cast<int64_t>(v) * stride_j + f];
  }
}

// Dispatches fn<T>(typed pointer, typed sentinel) on the column's width.
template <typename Fn>
void WithTyped(const PackedColumn& col, int64_t offset, Fn&& fn) {
  switch (col.width()) {
    case 1:
      fn(col.u8() + offset, static_cast<uint8_t>(col.sentinel()));
      break;
    case 2:
      fn(col.u16() + offset, static_cast<uint16_t>(col.sentinel()));
      break;
    default:
      fn(col.u32() + offset, col.sentinel());
      break;
  }
}

}  // namespace

Result<CountKernel> ParseCountKernel(const std::string& text) {
  if (text == "reference") return CountKernel::kReference;
  if (text == "blocked") return CountKernel::kBlocked;
  if (text == "simd") return CountKernel::kSimd;
  return Status::InvalidArgument("kernel value '" + text +
                                 "' is not one of reference|blocked|simd");
}

CountKernel ResolveCountKernel(CountKernel requested) {
  if (requested != CountKernel::kAuto) return requested;
  const char* env = std::getenv("OPMAP_KERNEL");
  if (env != nullptr) {
    Result<CountKernel> parsed = ParseCountKernel(env);
    // Invalid environment values are ignored (the library stays usable;
    // the CLI validates its own flag loudly), like OPMAP_THREADS.
    if (parsed.ok()) return parsed.value();
  }
  return SimdAvailable() ? CountKernel::kSimd : CountKernel::kBlocked;
}

const char* CountKernelName(CountKernel kernel) {
  switch (kernel) {
    case CountKernel::kBlocked:
      return "blocked";
    case CountKernel::kReference:
      return "reference";
    case CountKernel::kSimd:
      return "simd";
    default:
      return "auto";
  }
}

bool SimdColumnEligible(const PackedColumn& col) { return col.width() <= 2; }

bool SimdPairEligible(int64_t domain_i, int64_t stride_j) {
  // (domain_i + 1) * stride_j must fit int32: the +1 keeps even a
  // sentinel lane's wrapped product in range. Division form avoids int64
  // overflow for absurd shapes.
  if (domain_i < 0 || stride_j <= 0) return false;
  return domain_i + 1 <= std::numeric_limits<int32_t>::max() / stride_j;
}

Result<int64_t> ParseBlockRows(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("block-rows value is empty");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("block-rows value '" + text +
                                     "' is not a positive integer");
    }
  }
  if (text.size() > 7) {
    return Status::InvalidArgument("block-rows value '" + text +
                                   "' is out of range [1, 1048576]");
  }
  const int64_t value = std::strtoll(text.c_str(), nullptr, 10);
  if (value < 1 || value > kMaxBlockRows) {
    return Status::InvalidArgument("block-rows value '" + text +
                                   "' is out of range [1, 1048576]");
  }
  return value;
}

int64_t ResolveBlockRows(int64_t requested) {
  if (requested > 0) return std::min<int64_t>(requested, kMaxBlockRows);
  const char* env = std::getenv("OPMAP_BLOCK_ROWS");
  if (env != nullptr) {
    Result<int64_t> parsed = ParseBlockRows(env);
    // Invalid environment values are ignored (the library stays usable;
    // the CLI validates its own flag loudly), like OPMAP_THREADS.
    if (parsed.ok()) return parsed.value();
  }
  return kDefaultBlockRows;
}

PackedColumn PackedColumn::Pack(const ValueCode* src, int64_t n, int domain) {
  return PackGather(src, nullptr, n, domain);
}

PackedColumn PackedColumn::PackGather(const ValueCode* src,
                                      const int64_t* rows, int64_t n,
                                      int domain) {
  PackedColumn col;
  col.num_rows_ = n;
  col.width_ = WidthFor(domain);
  col.sentinel_ = static_cast<uint32_t>(domain);
  col.bytes_.resize(static_cast<size_t>(n) * static_cast<size_t>(col.width_));
  switch (col.width_) {
    case 1:
      PackInto<uint8_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
    case 2:
      PackInto<uint16_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
    default:
      PackInto<uint32_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
  }
  return col;
}

uint32_t PackedColumn::Get(int64_t r) const {
  switch (width_) {
    case 1:
      return u8()[r];
    case 2:
      return u16()[r];
    default:
      return u32()[r];
  }
}

PackedColumnSet PackedColumnSet::Build(const Dataset& dataset,
                                       const std::vector<int>& attrs,
                                       const std::vector<int64_t>* rows) {
  PackedColumnSet set;
  const int64_t n =
      rows != nullptr ? static_cast<int64_t>(rows->size()) : dataset.num_rows();
  const int64_t* row_data = rows != nullptr ? rows->data() : nullptr;
  set.num_rows_ = n;
  set.columns_.reserve(attrs.size());
  for (int a : attrs) {
    set.columns_.push_back(PackedColumn::PackGather(
        dataset.categorical_column(a).data(), row_data, n,
        dataset.schema().attribute(a).domain()));
  }
  const int cls = dataset.schema().class_index();
  set.class_column_ = PackedColumn::PackGather(
      dataset.categorical_column(cls).data(), row_data, n,
      dataset.schema().num_classes());
  return set;
}

int64_t PackedColumnSet::MemoryUsageBytes() const {
  int64_t bytes = class_column_.MemoryUsageBytes();
  for (const PackedColumn& c : columns_) bytes += c.MemoryUsageBytes();
  return bytes;
}

int64_t PackedColumnSet::ProjectedBytes(const Schema& schema,
                                        const std::vector<int>& attrs,
                                        int64_t rows) {
  int64_t bytes = rows * WidthFor(schema.num_classes());
  for (int a : attrs) {
    bytes += rows * WidthFor(schema.attribute(a).domain());
  }
  return bytes;
}

bool BlockedKernelSupported(const Schema& schema,
                            const std::vector<int>& attrs) {
  const int64_t nc = schema.num_classes();
  for (int a : attrs) {
    const int64_t fused_max =
        static_cast<int64_t>(schema.attribute(a).domain()) * nc + nc;
    if (fused_max > std::numeric_limits<int32_t>::max()) return false;
  }
  return true;
}

void CountRangeBlocked(const BlockedCountArgs& args, int64_t row_begin,
                       int64_t row_end) {
  const PackedColumnSet& cols = *args.columns;
  const int m = cols.num_columns();
  const int32_t nc = args.num_classes;
  const int64_t block = std::max<int64_t>(args.block_rows, 1);
  const internal::SimdKernels* sk =
      args.use_simd ? internal::GetSimdKernels() : nullptr;

  // Per-tile scratch: the widened class codes and one fused-index row per
  // attribute, plus (SIMD only) one compacted-index buffer. Sized once;
  // tiles reuse it.
  std::vector<int32_t> ybuf(static_cast<size_t>(block));
  std::vector<int32_t> fused(static_cast<size_t>(m) *
                             static_cast<size_t>(block));
  std::vector<int32_t> idx;
  if (sk != nullptr) {
    idx.resize(static_cast<size_t>(block + internal::kSimdIdxSlack));
  }

  for (int64_t t0 = row_begin; t0 < row_end; t0 += block) {
    const int64_t len = std::min(block, row_end - t0);

    WithTyped(cols.class_column(), t0, [&](auto* cls, auto sentinel) {
      WidenClassTile(cls, sentinel, len, ybuf.data(), args.class_counts,
                     args.num_records);
    });

    for (int i = 0; i < m; ++i) {
      int32_t* fused_i = fused.data() + static_cast<int64_t>(i) * block;
      if (sk != nullptr && SimdColumnEligible(cols.column(i))) {
        const int64_t cnt = SimdFuseStore(*sk, cols.column(i), t0, ybuf.data(),
                                          nc, len, fused_i, idx.data());
        HistogramIdx(idx.data(), cnt, args.attr_ptrs[i],
                     static_cast<int64_t>(args.sizes[i]) * nc);
      } else {
        WithTyped(cols.column(i), t0, [&](auto* col, auto sentinel) {
          FuseTile(col, sentinel, ybuf.data(), nc, len, fused_i,
                   args.attr_ptrs[i]);
        });
      }
    }

    if (!args.build_pairs) continue;
    int pair = 0;
    for (int i = 0; i < m; ++i) {
      const PackedColumn& ci = cols.column(i);
      const bool col_simd = sk != nullptr && SimdColumnEligible(ci);
      for (int j = i + 1; j < m; ++j, ++pair) {
        const int64_t stride_j = static_cast<int64_t>(args.sizes[j]) * nc;
        const int32_t* fused_j =
            fused.data() + static_cast<int64_t>(j) * block;
        if (col_simd && SimdPairEligible(args.sizes[i], stride_j)) {
          const int64_t cnt =
              SimdFuseCompact(*sk, ci, t0, fused_j,
                              static_cast<int32_t>(stride_j), len, idx.data());
          HistogramIdx(idx.data(), cnt, args.pair_ptrs[pair],
                       static_cast<int64_t>(args.sizes[i]) * stride_j);
        } else {
          WithTyped(ci, t0, [&](auto* col_i, auto sentinel_i) {
            PairTile(col_i, sentinel_i, fused_j, stride_j, len,
                     args.pair_ptrs[pair]);
          });
        }
      }
    }
  }
}

void CountAttrBlocked(const PackedColumn& col, const PackedColumn& cls,
                      int num_classes, int64_t row_begin, int64_t row_end,
                      int64_t* counts, bool use_simd) {
  const int64_t nc = num_classes;
  const internal::SimdKernels* sk =
      use_simd ? internal::GetSimdKernels() : nullptr;
  if (sk != nullptr && SimdColumnEligible(col) && SimdColumnEligible(cls) &&
      (static_cast<int64_t>(col.sentinel()) + 1) * nc <=
          std::numeric_limits<int32_t>::max()) {
    const int64_t domain = col.sentinel();
    const int64_t cells = domain * nc;
    if (col.width() == 1 && cls.width() == 1 && domain <= 16 && cells <= 32) {
      // Bit-sliced byte counting: tiny domains collapse to one fused
      // byte per row and per-cell vector popcounts.
      for (int64_t t0 = row_begin; t0 < row_end; t0 += kSimdSubTile) {
        const int64_t len = std::min(kSimdSubTile, row_end - t0);
        sk->count_small_u8(col.u8() + t0, col.sentinel(), cls.u8() + t0,
                           cls.sentinel(), static_cast<int32_t>(nc),
                           static_cast<int32_t>(cells), len, counts);
      }
      return;
    }
    // General path: widen the class sub-tile, fuse-compact the column
    // against it, histogram the dense index stream.
    int32_t ybuf[kSimdSubTile];
    int32_t idx[kSimdSubTile + internal::kSimdIdxSlack];
    for (int64_t t0 = row_begin; t0 < row_end; t0 += kSimdSubTile) {
      const int64_t len = std::min(kSimdSubTile, row_end - t0);
      SimdWiden(*sk, cls, t0, len, ybuf);
      const int64_t cnt = SimdFuseCompact(*sk, col, t0, ybuf,
                                          static_cast<int32_t>(nc), len, idx);
      HistogramIdx(idx, cnt, counts, cells);
    }
    return;
  }
  WithTyped(col, row_begin, [&](auto* v, auto v_sentinel) {
    WithTyped(cls, row_begin, [&](auto* y, auto y_sentinel) {
      const int64_t len = row_end - row_begin;
      for (int64_t k = 0; k < len; ++k) {
        if (v[k] == v_sentinel || y[k] == y_sentinel) continue;
        ++counts[static_cast<int64_t>(v[k]) * nc + y[k]];
      }
    });
  });
}

void CountPairBlocked(const PackedColumn& a, const PackedColumn& b,
                      const PackedColumn& cls, int num_classes,
                      int64_t row_begin, int64_t row_end, int64_t* counts,
                      bool use_simd) {
  const int64_t nc = num_classes;
  const int64_t domain_b = b.sentinel();
  const internal::SimdKernels* sk =
      use_simd ? internal::GetSimdKernels() : nullptr;
  const int64_t stride = domain_b * nc;
  if (sk != nullptr && SimdColumnEligible(a) && SimdColumnEligible(b) &&
      SimdColumnEligible(cls) &&
      (domain_b + 1) * nc <= std::numeric_limits<int32_t>::max() &&
      SimdPairEligible(a.sentinel(), stride)) {
    // Two-stage fusion: tmp = vb * nc + y, then idx = va * stride + tmp
    // == (va * domain_b + vb) * nc + y — the exact scalar cell.
    int32_t ybuf[kSimdSubTile];
    int32_t tmp[kSimdSubTile];
    int32_t idx[kSimdSubTile + internal::kSimdIdxSlack];
    const int64_t cells = static_cast<int64_t>(a.sentinel()) * stride;
    for (int64_t t0 = row_begin; t0 < row_end; t0 += kSimdSubTile) {
      const int64_t len = std::min(kSimdSubTile, row_end - t0);
      SimdWiden(*sk, cls, t0, len, ybuf);
      SimdFuse(*sk, b, t0, ybuf, static_cast<int32_t>(nc), len, tmp);
      const int64_t cnt = SimdFuseCompact(
          *sk, a, t0, tmp, static_cast<int32_t>(stride), len, idx);
      HistogramIdx(idx, cnt, counts, cells);
    }
    return;
  }
  WithTyped(a, row_begin, [&](auto* va, auto a_sentinel) {
    WithTyped(b, row_begin, [&](auto* vb, auto b_sentinel) {
      WithTyped(cls, row_begin, [&](auto* y, auto y_sentinel) {
        const int64_t len = row_end - row_begin;
        for (int64_t k = 0; k < len; ++k) {
          if (va[k] == a_sentinel || vb[k] == b_sentinel ||
              y[k] == y_sentinel) {
            continue;
          }
          ++counts[(static_cast<int64_t>(va[k]) * domain_b + vb[k]) * nc +
                   y[k]];
        }
      });
    });
  });
}

}  // namespace opmap
