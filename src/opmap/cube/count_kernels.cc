#include "opmap/cube/count_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace opmap {

namespace {

constexpr int64_t kMaxBlockRows = 1 << 20;

// Packs one code: kNullCode becomes the sentinel (== domain), everything
// else is already in [0, domain).
inline uint32_t PackCode(ValueCode v, uint32_t sentinel) {
  return v == kNullCode ? sentinel : static_cast<uint32_t>(v);
}

int WidthFor(int domain) {
  // domain + 1 distinct codes: the dictionary plus the null sentinel.
  const int64_t codes = static_cast<int64_t>(domain) + 1;
  if (codes <= 256) return 1;
  if (codes <= 65536) return 2;
  return 4;
}

template <typename T>
void PackInto(const ValueCode* src, const int64_t* rows, int64_t n,
              uint32_t sentinel, uint8_t* dst_bytes) {
  T* dst = reinterpret_cast<T*>(dst_bytes);
  if (rows == nullptr) {
    for (int64_t r = 0; r < n; ++r) {
      dst[r] = static_cast<T>(PackCode(src[r], sentinel));
    }
  } else {
    for (int64_t r = 0; r < n; ++r) {
      dst[r] = static_cast<T>(PackCode(src[rows[r]], sentinel));
    }
  }
}

// Widens the class column of a tile into int32 (-1 for null): every
// attribute's fuse pass reads this buffer instead of re-decoding the
// class column per attribute.
template <typename T>
void WidenClassTile(const T* cls, T sentinel, int64_t len, int32_t* ybuf,
                    int64_t* class_counts, int64_t* num_records) {
  int64_t records = 0;
  for (int64_t k = 0; k < len; ++k) {
    const T y = cls[k];
    if (y == sentinel) {
      ybuf[k] = -1;
    } else {
      ybuf[k] = static_cast<int32_t>(y);
      ++class_counts[y];
      ++records;
    }
  }
  *num_records += records;
}

// Computes the fused `v * nc + y` index of one attribute for a tile
// (-1 when either code is null) and applies the attribute's 2-D cube
// increments on the way: the fused index IS the 2-D cube cell.
template <typename T>
void FuseTile(const T* col, T sentinel, const int32_t* ybuf, int32_t nc,
              int64_t len, int32_t* fused, int64_t* attr_counts) {
  for (int64_t k = 0; k < len; ++k) {
    const T v = col[k];
    const int32_t y = ybuf[k];
    if (v == sentinel || y < 0) {
      fused[k] = -1;
    } else {
      const int32_t f = static_cast<int32_t>(v) * nc + y;
      fused[k] = f;
      ++attr_counts[f];
    }
  }
}

// The pair inner loop: streams attribute i's packed codes and attribute
// j's fused indices, writing one pair buffer. Cell (vi, vj, y) lives at
// vi * (domain_j * nc) + (vj * nc + y) == vi * stride_j + fused_j.
template <typename T>
void PairTile(const T* col_i, T sentinel, const int32_t* fused_j,
              int64_t stride_j, int64_t len, int64_t* buf) {
  for (int64_t k = 0; k < len; ++k) {
    const T v = col_i[k];
    const int32_t f = fused_j[k];
    if (v == sentinel || f < 0) continue;
    ++buf[static_cast<int64_t>(v) * stride_j + f];
  }
}

// Dispatches fn<T>(typed pointer, typed sentinel) on the column's width.
template <typename Fn>
void WithTyped(const PackedColumn& col, int64_t offset, Fn&& fn) {
  switch (col.width()) {
    case 1:
      fn(col.u8() + offset, static_cast<uint8_t>(col.sentinel()));
      break;
    case 2:
      fn(col.u16() + offset, static_cast<uint16_t>(col.sentinel()));
      break;
    default:
      fn(col.u32() + offset, col.sentinel());
      break;
  }
}

}  // namespace

Result<int64_t> ParseBlockRows(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("block-rows value is empty");
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("block-rows value '" + text +
                                     "' is not a positive integer");
    }
  }
  if (text.size() > 7) {
    return Status::InvalidArgument("block-rows value '" + text +
                                   "' is out of range [1, 1048576]");
  }
  const int64_t value = std::strtoll(text.c_str(), nullptr, 10);
  if (value < 1 || value > kMaxBlockRows) {
    return Status::InvalidArgument("block-rows value '" + text +
                                   "' is out of range [1, 1048576]");
  }
  return value;
}

int64_t ResolveBlockRows(int64_t requested) {
  if (requested > 0) return std::min<int64_t>(requested, kMaxBlockRows);
  const char* env = std::getenv("OPMAP_BLOCK_ROWS");
  if (env != nullptr) {
    Result<int64_t> parsed = ParseBlockRows(env);
    // Invalid environment values are ignored (the library stays usable;
    // the CLI validates its own flag loudly), like OPMAP_THREADS.
    if (parsed.ok()) return parsed.value();
  }
  return kDefaultBlockRows;
}

PackedColumn PackedColumn::Pack(const ValueCode* src, int64_t n, int domain) {
  return PackGather(src, nullptr, n, domain);
}

PackedColumn PackedColumn::PackGather(const ValueCode* src,
                                      const int64_t* rows, int64_t n,
                                      int domain) {
  PackedColumn col;
  col.num_rows_ = n;
  col.width_ = WidthFor(domain);
  col.sentinel_ = static_cast<uint32_t>(domain);
  col.bytes_.resize(static_cast<size_t>(n) * static_cast<size_t>(col.width_));
  switch (col.width_) {
    case 1:
      PackInto<uint8_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
    case 2:
      PackInto<uint16_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
    default:
      PackInto<uint32_t>(src, rows, n, col.sentinel_, col.bytes_.data());
      break;
  }
  return col;
}

uint32_t PackedColumn::Get(int64_t r) const {
  switch (width_) {
    case 1:
      return u8()[r];
    case 2:
      return u16()[r];
    default:
      return u32()[r];
  }
}

PackedColumnSet PackedColumnSet::Build(const Dataset& dataset,
                                       const std::vector<int>& attrs,
                                       const std::vector<int64_t>* rows) {
  PackedColumnSet set;
  const int64_t n =
      rows != nullptr ? static_cast<int64_t>(rows->size()) : dataset.num_rows();
  const int64_t* row_data = rows != nullptr ? rows->data() : nullptr;
  set.num_rows_ = n;
  set.columns_.reserve(attrs.size());
  for (int a : attrs) {
    set.columns_.push_back(PackedColumn::PackGather(
        dataset.categorical_column(a).data(), row_data, n,
        dataset.schema().attribute(a).domain()));
  }
  const int cls = dataset.schema().class_index();
  set.class_column_ = PackedColumn::PackGather(
      dataset.categorical_column(cls).data(), row_data, n,
      dataset.schema().num_classes());
  return set;
}

int64_t PackedColumnSet::MemoryUsageBytes() const {
  int64_t bytes = class_column_.MemoryUsageBytes();
  for (const PackedColumn& c : columns_) bytes += c.MemoryUsageBytes();
  return bytes;
}

int64_t PackedColumnSet::ProjectedBytes(const Schema& schema,
                                        const std::vector<int>& attrs,
                                        int64_t rows) {
  int64_t bytes = rows * WidthFor(schema.num_classes());
  for (int a : attrs) {
    bytes += rows * WidthFor(schema.attribute(a).domain());
  }
  return bytes;
}

bool BlockedKernelSupported(const Schema& schema,
                            const std::vector<int>& attrs) {
  const int64_t nc = schema.num_classes();
  for (int a : attrs) {
    const int64_t fused_max =
        static_cast<int64_t>(schema.attribute(a).domain()) * nc + nc;
    if (fused_max > std::numeric_limits<int32_t>::max()) return false;
  }
  return true;
}

void CountRangeBlocked(const BlockedCountArgs& args, int64_t row_begin,
                       int64_t row_end) {
  const PackedColumnSet& cols = *args.columns;
  const int m = cols.num_columns();
  const int32_t nc = args.num_classes;
  const int64_t block = std::max<int64_t>(args.block_rows, 1);

  // Per-tile scratch: the widened class codes and one fused-index row per
  // attribute. Sized once; tiles reuse it.
  std::vector<int32_t> ybuf(static_cast<size_t>(block));
  std::vector<int32_t> fused(static_cast<size_t>(m) *
                             static_cast<size_t>(block));

  for (int64_t t0 = row_begin; t0 < row_end; t0 += block) {
    const int64_t len = std::min(block, row_end - t0);

    WithTyped(cols.class_column(), t0, [&](auto* cls, auto sentinel) {
      WidenClassTile(cls, sentinel, len, ybuf.data(), args.class_counts,
                     args.num_records);
    });

    for (int i = 0; i < m; ++i) {
      int32_t* fused_i = fused.data() + static_cast<int64_t>(i) * block;
      WithTyped(cols.column(i), t0, [&](auto* col, auto sentinel) {
        FuseTile(col, sentinel, ybuf.data(), nc, len, fused_i,
                 args.attr_ptrs[i]);
      });
    }

    if (!args.build_pairs) continue;
    int pair = 0;
    for (int i = 0; i < m; ++i) {
      WithTyped(cols.column(i), t0, [&](auto* col_i, auto sentinel_i) {
        for (int j = i + 1; j < m; ++j, ++pair) {
          const int64_t stride_j = static_cast<int64_t>(args.sizes[j]) * nc;
          PairTile(col_i, sentinel_i,
                   fused.data() + static_cast<int64_t>(j) * block, stride_j,
                   len, args.pair_ptrs[pair]);
        }
      });
    }
  }
}

void CountAttrBlocked(const PackedColumn& col, const PackedColumn& cls,
                      int num_classes, int64_t row_begin, int64_t row_end,
                      int64_t* counts) {
  const int64_t nc = num_classes;
  WithTyped(col, row_begin, [&](auto* v, auto v_sentinel) {
    WithTyped(cls, row_begin, [&](auto* y, auto y_sentinel) {
      const int64_t len = row_end - row_begin;
      for (int64_t k = 0; k < len; ++k) {
        if (v[k] == v_sentinel || y[k] == y_sentinel) continue;
        ++counts[static_cast<int64_t>(v[k]) * nc + y[k]];
      }
    });
  });
}

void CountPairBlocked(const PackedColumn& a, const PackedColumn& b,
                      const PackedColumn& cls, int num_classes,
                      int64_t row_begin, int64_t row_end, int64_t* counts) {
  const int64_t nc = num_classes;
  const int64_t domain_b = b.sentinel();
  WithTyped(a, row_begin, [&](auto* va, auto a_sentinel) {
    WithTyped(b, row_begin, [&](auto* vb, auto b_sentinel) {
      WithTyped(cls, row_begin, [&](auto* y, auto y_sentinel) {
        const int64_t len = row_end - row_begin;
        for (int64_t k = 0; k < len; ++k) {
          if (va[k] == a_sentinel || vb[k] == b_sentinel ||
              y[k] == y_sentinel) {
            continue;
          }
          ++counts[(static_cast<int64_t>(va[k]) * domain_b + vb[k]) * nc +
                   y[k]];
        }
      });
    });
  });
}

}  // namespace opmap
