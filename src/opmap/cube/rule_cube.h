#ifndef OPMAP_CUBE_RULE_CUBE_H_
#define OPMAP_CUBE_RULE_CUBE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/data/schema.h"

namespace opmap {

/// A rule cube (paper Section III.B): a dense count tensor over a subset of
/// attributes. Each cell holds the support count of one rule body+class
/// combination; supports and confidences of all rules over the cube's
/// attributes are derived from cell counts.
///
/// Unlike OLAP data cubes there are no attribute hierarchies: every
/// dimension is a flat attribute domain. By convention the class attribute,
/// when present, is the last dimension (the store always builds cubes this
/// way), but the type supports any dimension list so that OLAP operations
/// stay closed.
class RuleCube {
 public:
  /// Creates a zeroed cube over the given schema attribute indices.
  /// `dims` must be non-empty, distinct, and categorical.
  static Result<RuleCube> Make(const Schema& schema, std::vector<int> dims);

  /// Creates a read-only view over an external count array (typically a
  /// mapped cube-store file): no counts are copied or allocated. `counts`
  /// must hold exactly the cube's cell count in row-major order and must
  /// outlive the view and every copy of it. Views answer every read-side
  /// query identically to an owning cube; mutating them (Add, mutable
  /// raw_counts) is invalid.
  static Result<RuleCube> MakeView(const Schema& schema,
                                   std::vector<int> dims,
                                   const int64_t* counts, int64_t num_cells);

  /// True when the counts live in external storage (MakeView).
  bool is_view() const { return extern_counts_ != nullptr; }

  /// Number of dimensions.
  int num_dims() const { return static_cast<int>(dims_.size()); }

  /// Schema attribute index of dimension `d`.
  int dim_attribute(int d) const { return dims_[static_cast<size_t>(d)]; }

  /// Domain size of dimension `d`.
  int dim_size(int d) const { return sizes_[static_cast<size_t>(d)]; }

  /// Position of schema attribute `attr` among the dims, or -1.
  int FindDim(int attr) const;

  /// Total number of cells.
  int64_t num_cells() const {
    return is_view() ? extern_cells_ : static_cast<int64_t>(counts_.size());
  }

  /// Sum of all cell counts (number of records represented).
  int64_t Total() const;

  /// Count at a cell; `cell` has one code per dimension, each in range.
  int64_t count(const std::vector<ValueCode>& cell) const {
    return raw_counts()[LinearIndex(cell)];
  }

  /// Adds `delta` to a cell. Owning cubes only.
  void Add(const std::vector<ValueCode>& cell, int64_t delta = 1) {
    counts_[LinearIndex(cell)] += delta;
  }

  /// Rule support of a cell: count / total records in the cube.
  double Support(const std::vector<ValueCode>& cell) const;

  /// Rule confidence of a cell (paper formula (1)): the cell count divided
  /// by the sum over all values of dimension `class_dim` with the other
  /// coordinates fixed. `class_dim` is usually the class dimension.
  double Confidence(const std::vector<ValueCode>& cell, int class_dim) const;

  /// Sum over all values of dimension `dim` with other coordinates fixed
  /// (the rule-body count when `dim` is the class dimension).
  int64_t MarginCount(const std::vector<ValueCode>& cell, int dim) const;

  /// OLAP slice: fixes dimension `dim` to `value` and removes it. The
  /// result has num_dims()-1 dimensions. Slicing the last dimension of a
  /// 1-D cube is invalid.
  Result<RuleCube> Slice(int dim, ValueCode value) const;

  /// OLAP dice: restricts dimension `dim` to `values` (codes into the
  /// original domain). The dimension keeps its position; its domain is
  /// re-coded to 0..values.size()-1 in the given order, and the labels are
  /// carried over.
  Result<RuleCube> Dice(int dim, const std::vector<ValueCode>& values) const;

  /// OLAP roll-up: removes dimension `dim` by summing it out.
  Result<RuleCube> Marginalize(int dim) const;

  /// Value label of `code` in dimension `d`.
  const std::string& label(int d, ValueCode code) const {
    return labels_[static_cast<size_t>(d)][static_cast<size_t>(code)];
  }

  /// Attribute name of dimension `d`.
  const std::string& dim_name(int d) const {
    return names_[static_cast<size_t>(d)];
  }

  /// Heap bytes held by the count array. Views hold none — their counts
  /// stay in the file mapping.
  int64_t MemoryUsageBytes() const {
    return static_cast<int64_t>(counts_.capacity() * sizeof(int64_t));
  }

  /// Row-major stride of dimension `d` in cells (the last dimension has
  /// stride 1): cell codes dot strides = linear index. Exposed for the
  /// comparator's allocation-free fill loops, which walk pair-cube counts
  /// directly instead of materializing slices.
  int64_t dim_stride(int d) const { return strides_[static_cast<size_t>(d)]; }

  /// Raw mutable count storage, row-major with the last dimension fastest.
  /// Exposed for the bulk builder's hot loop; cell (i, j, k) of a 3-D cube
  /// lives at (i * dim_size(1) + j) * dim_size(2) + k. Owning cubes only.
  int64_t* raw_counts() { return counts_.data(); }
  const int64_t* raw_counts() const {
    return is_view() ? extern_counts_ : counts_.data();
  }

 private:
  RuleCube() = default;

  // Shared shape construction for Make/MakeView: validates `dims` and
  // fills everything except count storage. Returns the total cell count.
  static Result<int64_t> BuildShape(const Schema& schema,
                                    std::vector<int> dims, RuleCube* cube);

  size_t LinearIndex(const std::vector<ValueCode>& cell) const;

  std::vector<int> dims_;     // schema attribute indices
  std::vector<int> sizes_;    // domain size per dim
  std::vector<int64_t> strides_;
  std::vector<std::string> names_;                // attribute name per dim
  std::vector<std::vector<std::string>> labels_;  // value labels per dim
  std::vector<int64_t> counts_;                   // empty in view mode
  const int64_t* extern_counts_ = nullptr;        // view mode storage
  int64_t extern_cells_ = 0;
};

}  // namespace opmap

#endif  // OPMAP_CUBE_RULE_CUBE_H_
