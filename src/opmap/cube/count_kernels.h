#ifndef OPMAP_CUBE_COUNT_KERNELS_H_
#define OPMAP_CUBE_COUNT_KERNELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/data/dataset.h"

namespace opmap {

/// Which counting kernel the bulk paths (CubeBuilder::AddDataset, the CAR
/// miner's level-1/2 passes) run. All kernels produce bit-identical
/// counts for every input and thread count; the choice is purely a
/// performance knob, and the reference kernel is retained so tests can
/// pin the faster tiers against the seed implementation.
enum class CountKernel {
  /// Cache-blocked kernel over packed value codes: rows are processed in
  /// tiles, and inside a tile each attribute pair streams exactly two
  /// packed columns into one pair buffer.
  kBlocked,
  /// The seed row-at-a-time scatter loop.
  kReference,
  /// The blocked kernel with vectorized inner loops (AVX2 on x86-64,
  /// NEON on aarch64; see opmap/common/simd.h). Columns or pairs the
  /// vector tier cannot handle (width, index range) fall back to the
  /// scalar blocked loops per column, and the whole pass falls back to
  /// kBlocked when the running CPU lacks the compiled-in vector ISA.
  kSimd,
  /// Resolve at run time: the OPMAP_KERNEL environment variable when it
  /// parses, else kSimd when the CPU supports it, else kBlocked. The
  /// default of CubeStoreOptions::kernel and CarMinerOptions::kernel.
  kAuto,
};

/// Parses a kernel name for the CLI `--kernel` flag and the OPMAP_KERNEL
/// environment variable: "reference", "blocked", or "simd" (kAuto is the
/// absence of a value, never spelled). Anything else is kInvalidArgument
/// with a message naming the bad value.
Result<CountKernel> ParseCountKernel(const std::string& text);

/// The kernel a counting pass should run: `requested` when not kAuto,
/// else the OPMAP_KERNEL environment variable when it parses (invalid
/// values are ignored, like OPMAP_THREADS), else kSimd when
/// SimdAvailable(), else kBlocked.
CountKernel ResolveCountKernel(CountKernel requested);

/// "blocked", "reference", "simd", or "auto".
const char* CountKernelName(CountKernel kernel);

/// Rows per tile when nothing overrides it (see ResolveBlockRows).
inline constexpr int64_t kDefaultBlockRows = 4096;

/// Parses a tile-size string for the CLI `--block-rows` flag and the
/// OPMAP_BLOCK_ROWS environment variable. Accepts integers in
/// [1, 1048576]; rejects zero, negatives, empty strings, trailing
/// garbage, and out-of-range values with kInvalidArgument.
Result<int64_t> ParseBlockRows(const std::string& text);

/// The tile size a blocked kernel should use: `requested` when positive,
/// else the OPMAP_BLOCK_ROWS environment variable when it parses (invalid
/// values are ignored, like OPMAP_THREADS), else kDefaultBlockRows.
int64_t ResolveBlockRows(int64_t requested);

/// One categorical column re-encoded to the narrowest unsigned integer
/// type that holds `domain + 1` codes: uint8_t up to domain 255, uint16_t
/// up to 65535, uint32_t beyond. kNullCode is remapped to the reserved
/// sentinel `domain`, so kernels test one unsigned compare instead of a
/// signed null check and the working set shrinks up to 4x.
class PackedColumn {
 public:
  /// An empty column (no rows); real columns come from Pack/PackGather.
  PackedColumn() = default;

  /// Packs `src[0..n)` (codes in [0, domain) or kNullCode).
  static PackedColumn Pack(const ValueCode* src, int64_t n, int domain);

  /// Packs `src[rows[0]], ..., src[rows[n-1])` — the gather form used by
  /// restricted mining, where only a row subset is scanned.
  static PackedColumn PackGather(const ValueCode* src, const int64_t* rows,
                                 int64_t n, int domain);

  int64_t num_rows() const { return num_rows_; }
  int width() const { return width_; }          ///< bytes per code: 1, 2, 4
  uint32_t sentinel() const { return sentinel_; }  ///< null code == domain

  const uint8_t* u8() const { return bytes_.data(); }
  const uint16_t* u16() const {
    return reinterpret_cast<const uint16_t*>(bytes_.data());
  }
  const uint32_t* u32() const {
    return reinterpret_cast<const uint32_t*>(bytes_.data());
  }

  /// Code at `r` widened back to uint32_t (sentinel() for null).
  uint32_t Get(int64_t r) const;

  /// Heap bytes held by the packed code array.
  int64_t MemoryUsageBytes() const {
    return static_cast<int64_t>(bytes_.capacity());
  }

 private:
  std::vector<uint8_t> bytes_;
  int64_t num_rows_ = 0;
  int width_ = 1;
  uint32_t sentinel_ = 0;
};

/// The packed re-encoding of a set of categorical columns plus the class
/// column, built once per AddDataset / mining pass and then streamed by
/// every tile of the blocked kernels.
class PackedColumnSet {
 public:
  /// An empty set (no columns); real sets come from Build.
  PackedColumnSet() = default;

  /// Packs `attrs` (schema indices of categorical attributes) and the
  /// class column of `dataset`. With `rows` non-null, only that row
  /// subset is packed, in order (restricted mining); otherwise all rows.
  static PackedColumnSet Build(const Dataset& dataset,
                               const std::vector<int>& attrs,
                               const std::vector<int64_t>* rows = nullptr);

  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  const PackedColumn& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  const PackedColumn& class_column() const { return class_column_; }

  /// Heap bytes of all packed columns — the scratch the memory-budget
  /// shard clamp must account for (see CubeBuilder::PlanShards).
  int64_t MemoryUsageBytes() const;

  /// Bytes Build() would allocate for `attrs` + class over `rows` rows,
  /// without building anything. Used to pre-check memory budgets.
  static int64_t ProjectedBytes(const Schema& schema,
                                const std::vector<int>& attrs, int64_t rows);

 private:
  std::vector<PackedColumn> columns_;
  PackedColumn class_column_;
  int64_t num_rows_ = 0;
};

/// Inputs of one blocked cube-counting pass over a row range. All
/// pointers are borrowed; `attr_ptrs[i]` is the (domain_i x num_classes)
/// count array of attribute slot i and `pair_ptrs` the packed upper
/// triangle of (domain_i x domain_j x num_classes) pair arrays, exactly
/// as CubeBuilder lays them out.
struct BlockedCountArgs {
  const PackedColumnSet* columns = nullptr;
  int num_classes = 0;
  bool build_pairs = true;
  const int* sizes = nullptr;  ///< domain per attribute slot
  int64_t block_rows = kDefaultBlockRows;
  int64_t* const* attr_ptrs = nullptr;
  int64_t* const* pair_ptrs = nullptr;
  int64_t* class_counts = nullptr;
  int64_t* num_records = nullptr;
  /// Run the vector tier where columns/pairs are eligible (CountKernel::
  /// kSimd). Ignored when the CPU lacks the compiled-in vector ISA.
  bool use_simd = false;
};

/// The cache-blocked cube-counting kernel: counts rows
/// [row_begin, row_end) of `args.columns` into the given buffers,
/// bit-identically to the reference row loop. Rows are processed in
/// tiles of `args.block_rows`; inside a tile, the fused `v * nc + y`
/// index of every attribute is computed once (updating the 2-D cube on
/// the way), then each pair (i, j) streams attribute i's packed codes and
/// attribute j's fused indices into the single (i, j) pair buffer.
void CountRangeBlocked(const BlockedCountArgs& args, int64_t row_begin,
                       int64_t row_end);

/// True when the blocked kernels can run for these shapes: every fused
/// index `domain * num_classes + class` must fit an int32_t. Callers fall
/// back to the reference kernel otherwise (results are identical either
/// way).
bool BlockedKernelSupported(const Schema& schema,
                            const std::vector<int>& attrs);

/// True when the vector tier can count this packed column: only uint8 and
/// uint16 codes have vector widening paths (uint32 columns — domains
/// above 65535 — run the scalar blocked loop, counted as a
/// kernel.simd_fallbacks event by callers).
bool SimdColumnEligible(const PackedColumn& col);

/// True when the vector tier can count the pair (i, j): the fused pair
/// index is computed in int32 lanes, so even the largest
/// `(domain_i + 1) * stride_j` intermediate must fit (the scalar pair
/// loop widens to int64 and has no such limit).
bool SimdPairEligible(int64_t domain_i, int64_t stride_j);

/// Counts one packed column against the class column over rows
/// [row_begin, row_end): counts[v * num_classes + y] += 1 for every row
/// where neither code is the null sentinel. The CAR miner's level-1 pass.
/// With `use_simd`, eligible columns run the vector tier (bit-sliced byte
/// counting when domain * num_classes <= 32 and both columns are uint8,
/// fuse-compact-histogram otherwise); results are bit-identical.
void CountAttrBlocked(const PackedColumn& col, const PackedColumn& cls,
                      int num_classes, int64_t row_begin, int64_t row_end,
                      int64_t* counts, bool use_simd = false);

/// Dense (value_a, value_b, class) counting of one attribute pair over
/// rows [row_begin, row_end): counts[(va * domain_b + vb) * num_classes
/// + y] += 1 for every row where no code is null. `counts` must hold
/// domain_a x domain_b x num_classes zero-initialized cells. The CAR
/// miner's level-2 pass reads candidate cells out of this buffer. With
/// `use_simd`, eligible pairs run the vector tier; results are
/// bit-identical.
void CountPairBlocked(const PackedColumn& a, const PackedColumn& b,
                      const PackedColumn& cls, int num_classes,
                      int64_t row_begin, int64_t row_end, int64_t* counts,
                      bool use_simd = false);

}  // namespace opmap

#endif  // OPMAP_CUBE_COUNT_KERNELS_H_
