#ifndef OPMAP_CUBE_COUNT_KERNELS_SIMD_H_
#define OPMAP_CUBE_COUNT_KERNELS_SIMD_H_

#include <cstdint>

namespace opmap {
namespace internal {

/// Extra int32 slots callers must reserve past the end of every `idx`
/// output buffer: the vector compaction stores one full vector at the
/// write cursor and advances it by the number of valid lanes, so the
/// final store can spill up to one vector minus one lane of garbage.
inline constexpr int64_t kSimdIdxSlack = 8;

/// Row cap per count_small_u8 call: the bit-sliced counter accumulates
/// hits in unsigned bytes (one lane holds at most rows / lane-width
/// hits), so 2048 rows keeps every lane <= 128 on both AVX2 (32-byte
/// vectors) and NEON (16-byte vectors), well under the 255 ceiling.
inline constexpr int64_t kSimdCountSmallMaxRows = 2048;

/// The per-tile vector primitives behind CountKernel::kSimd. The shared
/// contract of the fuse family:
///
///   - `col` is a packed code array, `sentinel` its null code;
///   - `base[k]` is an int32 partial index, negative meaning "row k
///     invalid" (a null seen earlier in the fusion chain);
///   - the fused index of row k is col[k] * mult + base[k], valid only
///     when col[k] != sentinel and base[k] >= 0;
///   - `fused` (when the variant writes it) receives the fused index per
///     row, -1 for invalid rows;
///   - `idx` (when the variant writes it) receives only the valid fused
///     indices, left-packed; the return value is how many were written.
///     The buffer needs room for len + kSimdIdxSlack entries.
///
/// Counting through these primitives is bit-identical to the scalar
/// loops: compaction only reorders which rows contribute +1 first, and
/// int64 addition commutes.
struct SimdKernels {
  using FuseFnU8 = int64_t (*)(const uint8_t* col, uint32_t sentinel,
                               const int32_t* base, int32_t mult, int64_t len,
                               int32_t* fused, int32_t* idx);
  using FuseFnU16 = int64_t (*)(const uint16_t* col, uint32_t sentinel,
                                const int32_t* base, int32_t mult, int64_t len,
                                int32_t* fused, int32_t* idx);

  /// col -> int32, -1 for sentinel. Vector widening of the class column.
  void (*widen_u8)(const uint8_t* col, uint32_t sentinel, int64_t len,
                   int32_t* out);
  void (*widen_u16)(const uint16_t* col, uint32_t sentinel, int64_t len,
                    int32_t* out);

  /// Writes `fused` only; `idx` is ignored (pass nullptr). Returns 0.
  FuseFnU8 fuse_u8;
  FuseFnU16 fuse_u16;
  /// Writes `fused` and `idx`; returns the idx count. The cube builder's
  /// attribute pass: the 2-D cube histogram input and the pair-pass base
  /// in one sweep.
  FuseFnU8 fuse_store_u8;
  FuseFnU16 fuse_store_u16;
  /// Writes `idx` only; `fused` is ignored (pass nullptr). Returns the
  /// idx count. Pair passes and the miner's general level-1 path.
  FuseFnU8 fuse_compact_u8;
  FuseFnU16 fuse_compact_u16;

  /// Bit-sliced byte counting for tiny domains: counts[a*nc + b] += 1
  /// for every row where a[k] != sent_a and b[k] != sent_b. Requires
  /// cells = domain_a * nc <= 32 (so the fused byte and the 0xFF invalid
  /// marker cannot collide) and len <= kSimdCountSmallMaxRows.
  void (*count_small_u8)(const uint8_t* a, uint32_t sent_a, const uint8_t* b,
                         uint32_t sent_b, int32_t nc, int32_t cells,
                         int64_t len, int64_t* counts);
};

/// The vector kernel table for the running CPU, or nullptr when this
/// binary has no tier the CPU supports (always nullptr in OPMAP_NO_SIMD
/// builds). The pointer is stable for the process lifetime.
const SimdKernels* GetSimdKernels();

}  // namespace internal
}  // namespace opmap

#endif  // OPMAP_CUBE_COUNT_KERNELS_SIMD_H_
