#ifndef OPMAP_STATS_CONFIDENCE_INTERVAL_H_
#define OPMAP_STATS_CONFIDENCE_INTERVAL_H_

#include <cstdint>
#include <string>

#include "opmap/common/status.h"

namespace opmap {

/// Statistical confidence levels supported by the paper's Table I.
enum class ConfidenceLevel {
  k90,
  k95,
  k99,
};

/// z value for a confidence level (paper Table I: 1.645, 1.96, 2.576).
double ZValue(ConfidenceLevel level);

/// Parses "0.90"/"0.95"/"0.99" (or "90"/"95"/"99") into a level.
Result<ConfidenceLevel> ParseConfidenceLevel(const std::string& s);

/// Two-sided interval for a population proportion.
struct ProportionInterval {
  double proportion = 0.0;  ///< point estimate p
  double margin = 0.0;      ///< e = z * sqrt(p (1-p) / n)
  double low = 0.0;         ///< max(0, p - e)
  double high = 0.0;        ///< min(1, p + e)
};

/// Wald interval for a proportion with `successes` out of `n` trials, as
/// used by the paper (Section IV.B): e = z * sqrt(p (1-p) / n). With n == 0
/// (or p in {0, 1}) the margin degenerates to 0, matching the paper's
/// behaviour where attribute values absent from one sub-population rank
/// very high and are handled by the property-attribute detector instead of
/// the interval.
ProportionInterval WaldInterval(int64_t successes, int64_t n,
                                ConfidenceLevel level);

/// Same, but from an already-computed proportion.
ProportionInterval WaldIntervalFromProportion(double p, int64_t n,
                                              ConfidenceLevel level);

/// Wilson score interval — a more robust alternative for small counts,
/// provided for ablation against the paper's Wald interval.
ProportionInterval WilsonInterval(int64_t successes, int64_t n,
                                  ConfidenceLevel level);

}  // namespace opmap

#endif  // OPMAP_STATS_CONFIDENCE_INTERVAL_H_
