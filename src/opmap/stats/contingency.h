#ifndef OPMAP_STATS_CONTINGENCY_H_
#define OPMAP_STATS_CONTINGENCY_H_

#include <cstdint>
#include <vector>

#include "opmap/common/status.h"

namespace opmap {

/// Dense r x c contingency table of counts.
class ContingencyTable {
 public:
  ContingencyTable(int rows, int cols)
      : rows_(rows), cols_(cols),
        counts_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  int64_t at(int r, int c) const { return counts_[Index(r, c)]; }
  void set(int r, int c, int64_t v) { counts_[Index(r, c)] = v; }
  void add(int r, int c, int64_t v = 1) { counts_[Index(r, c)] += v; }

  /// Re-shapes to rows x cols and zeroes every cell, reusing the existing
  /// allocation when it is large enough. Lets hot loops keep one table as
  /// per-thread scratch instead of constructing a fresh one per call.
  void Reset(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    counts_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0);
  }

  int64_t RowTotal(int r) const;
  int64_t ColTotal(int c) const;
  int64_t Total() const;

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * static_cast<size_t>(cols_) +
           static_cast<size_t>(c);
  }

  int rows_;
  int cols_;
  std::vector<int64_t> counts_;
};

/// Pearson chi-square statistic of independence for the table. Cells whose
/// expected count is zero contribute nothing.
double ChiSquareStatistic(const ContingencyTable& table);

/// Upper-tail p-value for a chi-square statistic with `df` degrees of
/// freedom, via the regularized upper incomplete gamma function.
double ChiSquarePValue(double statistic, int df);

/// Cramer's V effect size in [0, 1] for the table.
double CramersV(const ContingencyTable& table);

/// Shannon entropy (bits) of a count vector.
double EntropyBits(const std::vector<int64_t>& counts);

/// Information gain (bits) of splitting class counts by the table rows:
/// H(class) - sum_r (n_r / n) H(class | row r). Columns are classes.
double InformationGainBits(const ContingencyTable& table);

}  // namespace opmap

#endif  // OPMAP_STATS_CONTINGENCY_H_
