#include "opmap/stats/measures.h"

#include <cmath>
#include <limits>

#include "opmap/stats/contingency.h"

namespace opmap {

const char* RuleMeasureName(RuleMeasure m) {
  switch (m) {
    case RuleMeasure::kConfidence:
      return "confidence";
    case RuleMeasure::kSupport:
      return "support";
    case RuleMeasure::kLift:
      return "lift";
    case RuleMeasure::kLeverage:
      return "leverage";
    case RuleMeasure::kConviction:
      return "conviction";
    case RuleMeasure::kChiSquare:
      return "chi-square";
  }
  return "unknown";
}

Result<RuleMeasure> ParseRuleMeasure(const std::string& name) {
  for (RuleMeasure m :
       {RuleMeasure::kConfidence, RuleMeasure::kSupport, RuleMeasure::kLift,
        RuleMeasure::kLeverage, RuleMeasure::kConviction,
        RuleMeasure::kChiSquare}) {
    if (name == RuleMeasureName(m)) return m;
  }
  return Status::InvalidArgument("unknown rule measure '" + name + "'");
}

double EvaluateRuleMeasure(RuleMeasure m, const RuleCounts& c) {
  const double n = static_cast<double>(c.n);
  if (n <= 0) return 0.0;
  const double px = static_cast<double>(c.n_x) / n;
  const double py = static_cast<double>(c.n_y) / n;
  const double pxy = static_cast<double>(c.n_xy) / n;
  const double conf = c.n_x > 0
                          ? static_cast<double>(c.n_xy) /
                                static_cast<double>(c.n_x)
                          : 0.0;
  switch (m) {
    case RuleMeasure::kConfidence:
      return conf;
    case RuleMeasure::kSupport:
      return pxy;
    case RuleMeasure::kLift:
      return (px > 0 && py > 0) ? pxy / (px * py) : 0.0;
    case RuleMeasure::kLeverage:
      return pxy - px * py;
    case RuleMeasure::kConviction: {
      if (c.n_x == 0) return 0.0;
      const double p_not_y = 1.0 - py;
      const double p_x_not_y = px - pxy;
      if (p_x_not_y <= 0) return std::numeric_limits<double>::infinity();
      return px * p_not_y / p_x_not_y;
    }
    case RuleMeasure::kChiSquare: {
      ContingencyTable t(2, 2);
      t.set(0, 0, c.n_xy);
      t.set(0, 1, c.n_x - c.n_xy);
      t.set(1, 0, c.n_y - c.n_xy);
      t.set(1, 1, c.n - c.n_x - c.n_y + c.n_xy);
      return ChiSquareStatistic(t);
    }
  }
  return 0.0;
}

}  // namespace opmap
