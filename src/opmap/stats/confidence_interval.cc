#include "opmap/stats/confidence_interval.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace opmap {

double ZValue(ConfidenceLevel level) {
  // Paper Table I.
  switch (level) {
    case ConfidenceLevel::k90:
      return 1.645;
    case ConfidenceLevel::k95:
      return 1.96;
    case ConfidenceLevel::k99:
      return 2.576;
  }
  return 1.96;
}

Result<ConfidenceLevel> ParseConfidenceLevel(const std::string& s) {
  if (s == "0.90" || s == "0.9" || s == "90") return ConfidenceLevel::k90;
  if (s == "0.95" || s == "95") return ConfidenceLevel::k95;
  if (s == "0.99" || s == "99") return ConfidenceLevel::k99;
  return Status::InvalidArgument("unknown confidence level '" + s +
                                 "' (expected 0.90, 0.95 or 0.99)");
}

ProportionInterval WaldIntervalFromProportion(double p, int64_t n,
                                              ConfidenceLevel level) {
  ProportionInterval out;
  out.proportion = p;
  if (n <= 0) {
    out.margin = 0.0;
  } else {
    const double z = ZValue(level);
    out.margin = z * std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  }
  out.low = std::max(0.0, p - out.margin);
  out.high = std::min(1.0, p + out.margin);
  return out;
}

ProportionInterval WaldInterval(int64_t successes, int64_t n,
                                ConfidenceLevel level) {
  const double p =
      n > 0 ? static_cast<double>(successes) / static_cast<double>(n) : 0.0;
  return WaldIntervalFromProportion(p, n, level);
}

ProportionInterval WilsonInterval(int64_t successes, int64_t n,
                                  ConfidenceLevel level) {
  ProportionInterval out;
  if (n <= 0) {
    out.proportion = 0.0;
    out.margin = 1.0;
    out.low = 0.0;
    out.high = 1.0;
    return out;
  }
  const double z = ZValue(level);
  const double nn = static_cast<double>(n);
  const double p = static_cast<double>(successes) / nn;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / nn;
  const double center = (p + z2 / (2.0 * nn)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
  out.proportion = p;
  out.margin = half;
  out.low = std::max(0.0, center - half);
  out.high = std::min(1.0, center + half);
  return out;
}

}  // namespace opmap
