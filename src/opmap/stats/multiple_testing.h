#ifndef OPMAP_STATS_MULTIPLE_TESTING_H_
#define OPMAP_STATS_MULTIPLE_TESTING_H_

#include <cstddef>
#include <vector>

namespace opmap {

/// Multiple-testing corrections for exception mining: scanning thousands
/// of cube cells at the 0.95 level produces false "exceptions" by volume;
/// these utilities control for that.

/// Two-sided normal-tail p-value for a deviation of `margin_multiples`
/// Wald margins at the given z (i.e. the p-value of an observation
/// z * margin_multiples standard errors from expectation).
double PValueFromMarginMultiples(double margin_multiples, double z);

/// Bonferroni: adjusted p = min(1, p * m).
std::vector<double> BonferroniAdjust(const std::vector<double>& p_values);

/// Benjamini-Hochberg step-up adjusted p-values (monotone FDR q-values).
/// The input need not be sorted; the output is aligned to the input.
std::vector<double> BenjaminiHochbergAdjust(
    const std::vector<double>& p_values);

/// Indices whose BH-adjusted p-value is <= `fdr`, in input order.
std::vector<std::size_t> BenjaminiHochbergSelect(
    const std::vector<double>& p_values, double fdr);

}  // namespace opmap

#endif  // OPMAP_STATS_MULTIPLE_TESTING_H_
