#include "opmap/stats/multiple_testing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace opmap {

double PValueFromMarginMultiples(double margin_multiples, double z) {
  // The deviation in standard errors.
  const double se = std::fabs(margin_multiples) * z;
  // Two-sided normal tail via erfc.
  return std::clamp(std::erfc(se / std::sqrt(2.0)), 0.0, 1.0);
}

std::vector<double> BonferroniAdjust(const std::vector<double>& p_values) {
  const double m = static_cast<double>(p_values.size());
  std::vector<double> out(p_values.size());
  for (size_t i = 0; i < p_values.size(); ++i) {
    out[i] = std::min(1.0, p_values[i] * m);
  }
  return out;
}

std::vector<double> BenjaminiHochbergAdjust(
    const std::vector<double>& p_values) {
  const size_t m = p_values.size();
  std::vector<double> adjusted(m, 1.0);
  if (m == 0) return adjusted;
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return p_values[a] < p_values[b];
  });
  // Step-up: q_(i) = min over j >= i of p_(j) * m / j.
  double running_min = 1.0;
  for (size_t i = m; i-- > 0;) {
    const double q = p_values[order[i]] * static_cast<double>(m) /
                     static_cast<double>(i + 1);
    running_min = std::min(running_min, q);
    adjusted[order[i]] = std::min(1.0, running_min);
  }
  return adjusted;
}

std::vector<std::size_t> BenjaminiHochbergSelect(
    const std::vector<double>& p_values, double fdr) {
  const std::vector<double> adjusted = BenjaminiHochbergAdjust(p_values);
  std::vector<std::size_t> selected;
  for (size_t i = 0; i < adjusted.size(); ++i) {
    if (adjusted[i] <= fdr) selected.push_back(i);
  }
  return selected;
}

}  // namespace opmap
