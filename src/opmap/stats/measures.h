#ifndef OPMAP_STATS_MEASURES_H_
#define OPMAP_STATS_MEASURES_H_

#include <cstdint>
#include <string>

#include "opmap/common/status.h"

namespace opmap {

/// Sufficient statistics of a rule X -> y for objective interestingness
/// measures: n = |D|, n_x = sup(X), n_y = sup(y), n_xy = sup(X, y).
struct RuleCounts {
  int64_t n = 0;
  int64_t n_x = 0;
  int64_t n_y = 0;
  int64_t n_xy = 0;
};

/// Classic objective rule-interestingness measures, used by the
/// rule-ranking baseline the paper argues against (Section II): top-ranked
/// rules tend to be data artifacts.
enum class RuleMeasure {
  kConfidence,
  kSupport,
  kLift,
  kLeverage,    // P(x,y) - P(x)P(y)
  kConviction,  // P(x)P(!y) / P(x,!y)
  kChiSquare,
};

/// Human-readable name ("lift", "conviction", ...).
const char* RuleMeasureName(RuleMeasure m);

/// Parses a measure by its name.
Result<RuleMeasure> ParseRuleMeasure(const std::string& name);

/// Value of `m` for a rule with the given counts. Degenerate cases (zero
/// denominators) return 0 except conviction, which returns +inf for
/// confidence-1 rules as is conventional.
double EvaluateRuleMeasure(RuleMeasure m, const RuleCounts& counts);

}  // namespace opmap

#endif  // OPMAP_STATS_MEASURES_H_
