#include "opmap/stats/contingency.h"

#include <algorithm>
#include <cmath>

namespace opmap {

int64_t ContingencyTable::RowTotal(int r) const {
  int64_t t = 0;
  for (int c = 0; c < cols_; ++c) t += at(r, c);
  return t;
}

int64_t ContingencyTable::ColTotal(int c) const {
  int64_t t = 0;
  for (int r = 0; r < rows_; ++r) t += at(r, c);
  return t;
}

int64_t ContingencyTable::Total() const {
  int64_t t = 0;
  for (int r = 0; r < rows_; ++r) t += RowTotal(r);
  return t;
}

double ChiSquareStatistic(const ContingencyTable& table) {
  const double n = static_cast<double>(table.Total());
  if (n <= 0) return 0.0;
  std::vector<double> row_totals(static_cast<size_t>(table.rows()));
  std::vector<double> col_totals(static_cast<size_t>(table.cols()));
  for (int r = 0; r < table.rows(); ++r) {
    row_totals[static_cast<size_t>(r)] =
        static_cast<double>(table.RowTotal(r));
  }
  for (int c = 0; c < table.cols(); ++c) {
    col_totals[static_cast<size_t>(c)] =
        static_cast<double>(table.ColTotal(c));
  }
  double stat = 0;
  for (int r = 0; r < table.rows(); ++r) {
    for (int c = 0; c < table.cols(); ++c) {
      const double expected = row_totals[static_cast<size_t>(r)] *
                              col_totals[static_cast<size_t>(c)] / n;
      if (expected <= 0) continue;
      const double diff = static_cast<double>(table.at(r, c)) - expected;
      stat += diff * diff / expected;
    }
  }
  return stat;
}

namespace {

// Regularized upper incomplete gamma Q(a, x) via series / continued
// fraction (Numerical Recipes style). Accurate enough for p-values.
double GammaQ(double a, double x) {
  if (x < 0 || a <= 0) return 1.0;
  if (x == 0) return 1.0;
  const double gln = std::lgamma(a);
  if (x < a + 1.0) {
    // Series for P(a,x), return 1 - P.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-14) break;
    }
    const double p = sum * std::exp(-x + a * std::log(x) - gln);
    return std::clamp(1.0 - p, 0.0, 1.0);
  }
  // Continued fraction for Q(a,x).
  const double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - gln) * h;
  return std::clamp(q, 0.0, 1.0);
}

}  // namespace

double ChiSquarePValue(double statistic, int df) {
  if (df <= 0) return 1.0;
  return GammaQ(static_cast<double>(df) / 2.0, statistic / 2.0);
}

double CramersV(const ContingencyTable& table) {
  const double n = static_cast<double>(table.Total());
  if (n <= 0) return 0.0;
  const int k = std::min(table.rows(), table.cols());
  if (k < 2) return 0.0;
  const double chi2 = ChiSquareStatistic(table);
  return std::sqrt(chi2 / (n * static_cast<double>(k - 1)));
}

double EntropyBits(const std::vector<int64_t>& counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  if (total <= 0) return 0.0;
  double h = 0;
  for (int64_t c : counts) {
    if (c <= 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double InformationGainBits(const ContingencyTable& table) {
  const int64_t n = table.Total();
  if (n <= 0) return 0.0;
  std::vector<int64_t> class_counts(static_cast<size_t>(table.cols()));
  for (int c = 0; c < table.cols(); ++c) {
    class_counts[static_cast<size_t>(c)] = table.ColTotal(c);
  }
  double h = EntropyBits(class_counts);
  for (int r = 0; r < table.rows(); ++r) {
    const int64_t nr = table.RowTotal(r);
    if (nr <= 0) continue;
    std::vector<int64_t> row(static_cast<size_t>(table.cols()));
    for (int c = 0; c < table.cols(); ++c) {
      row[static_cast<size_t>(c)] = table.at(r, c);
    }
    h -= static_cast<double>(nr) / static_cast<double>(n) * EntropyBits(row);
  }
  return std::max(0.0, h);
}

}  // namespace opmap
