#include "opmap/discretize/methods.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "opmap/stats/contingency.h"

namespace opmap {

Result<std::vector<double>> EqualWidthDiscretizer::ComputeCuts(
    const std::vector<double>& values, const std::vector<ValueCode>&,
    int) const {
  if (bins_ < 1) return Status::InvalidArgument("bins must be >= 1");
  if (values.empty()) return std::vector<double>{};
  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it;
  const double hi = *hi_it;
  if (lo == hi || bins_ == 1) return std::vector<double>{};
  std::vector<double> cuts;
  cuts.reserve(static_cast<size_t>(bins_ - 1));
  const double width = (hi - lo) / static_cast<double>(bins_);
  for (int i = 1; i < bins_; ++i) {
    cuts.push_back(lo + width * static_cast<double>(i));
  }
  return cuts;
}

Result<std::vector<double>> EqualFrequencyDiscretizer::ComputeCuts(
    const std::vector<double>& values, const std::vector<ValueCode>&,
    int) const {
  if (bins_ < 1) return Status::InvalidArgument("bins must be >= 1");
  if (values.empty() || bins_ == 1) return std::vector<double>{};
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> cuts;
  const size_t n = sorted.size();
  for (int b = 1; b < bins_; ++b) {
    size_t idx = n * static_cast<size_t>(b) / static_cast<size_t>(bins_);
    if (idx == 0 || idx >= n) continue;
    // Place the cut between distinct values so ties stay together.
    const double cut = sorted[idx - 1];
    if (sorted[idx] == cut) {
      // Advance to the end of the tie run; skip the cut if it would be the
      // global maximum.
      size_t j = idx;
      while (j < n && sorted[j] == cut) ++j;
      if (j >= n) continue;
      cuts.push_back((cut + sorted[j]) / 2.0);
    } else {
      cuts.push_back((cut + sorted[idx]) / 2.0);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

namespace {

struct LabeledValue {
  double value;
  ValueCode cls;
};

// Class-count entropy over [begin, end) of sorted labeled values.
double RangeEntropy(const std::vector<LabeledValue>& v, size_t begin,
                    size_t end, int num_classes,
                    std::vector<int64_t>* scratch) {
  scratch->assign(static_cast<size_t>(num_classes), 0);
  for (size_t i = begin; i < end; ++i) {
    ++(*scratch)[static_cast<size_t>(v[i].cls)];
  }
  return EntropyBits(*scratch);
}

int DistinctClasses(const std::vector<LabeledValue>& v, size_t begin,
                    size_t end, int num_classes,
                    std::vector<int64_t>* scratch) {
  scratch->assign(static_cast<size_t>(num_classes), 0);
  int distinct = 0;
  for (size_t i = begin; i < end; ++i) {
    if ((*scratch)[static_cast<size_t>(v[i].cls)]++ == 0) ++distinct;
  }
  return distinct;
}

// Recursive Fayyad-Irani split of [begin, end). Appends accepted cut
// values to `cuts`.
void MdlSplit(const std::vector<LabeledValue>& v, size_t begin, size_t end,
              int num_classes, int max_cuts, std::vector<double>* cuts) {
  if (end - begin < 2) return;
  if (max_cuts > 0 && static_cast<int>(cuts->size()) >= max_cuts) return;

  std::vector<int64_t> scratch;
  const double total_entropy =
      RangeEntropy(v, begin, end, num_classes, &scratch);
  const double n = static_cast<double>(end - begin);

  // Scan boundary points (value changes) for the minimum-entropy split.
  std::vector<int64_t> left_counts(static_cast<size_t>(num_classes), 0);
  std::vector<int64_t> right_counts(static_cast<size_t>(num_classes), 0);
  for (size_t i = begin; i < end; ++i) {
    ++right_counts[static_cast<size_t>(v[i].cls)];
  }
  double best_weighted = total_entropy;
  size_t best_split = 0;  // first index of the right part; 0 = none
  double best_left_entropy = 0;
  double best_right_entropy = 0;
  for (size_t i = begin; i + 1 < end; ++i) {
    const size_t ci = static_cast<size_t>(v[i].cls);
    ++left_counts[ci];
    --right_counts[ci];
    if (v[i].value == v[i + 1].value) continue;  // not a boundary
    const double nl = static_cast<double>(i - begin + 1);
    const double nr = n - nl;
    const double hl = EntropyBits(left_counts);
    const double hr = EntropyBits(right_counts);
    const double weighted = (nl * hl + nr * hr) / n;
    if (weighted < best_weighted) {
      best_weighted = weighted;
      best_split = i + 1;
      best_left_entropy = hl;
      best_right_entropy = hr;
    }
  }
  if (best_split == 0) return;

  // MDL acceptance criterion (Fayyad & Irani 1993).
  const double gain = total_entropy - best_weighted;
  const int k = DistinctClasses(v, begin, end, num_classes, &scratch);
  const int k1 = DistinctClasses(v, begin, best_split, num_classes, &scratch);
  const int k2 = DistinctClasses(v, best_split, end, num_classes, &scratch);
  const double left_h =
      RangeEntropy(v, begin, best_split, num_classes, &scratch);
  (void)left_h;  // identical to best_left_entropy; kept for clarity in debug
  const double delta =
      std::log2(std::pow(3.0, k) - 2.0) -
      (static_cast<double>(k) * total_entropy -
       static_cast<double>(k1) * best_left_entropy -
       static_cast<double>(k2) * best_right_entropy);
  const double threshold = (std::log2(n - 1.0) + delta) / n;
  if (gain <= threshold) return;

  cuts->push_back((v[best_split - 1].value + v[best_split].value) / 2.0);
  MdlSplit(v, begin, best_split, num_classes, max_cuts, cuts);
  MdlSplit(v, best_split, end, num_classes, max_cuts, cuts);
}

}  // namespace

Result<std::vector<double>> EntropyMdlDiscretizer::ComputeCuts(
    const std::vector<double>& values,
    const std::vector<ValueCode>& class_codes, int num_classes) const {
  if (values.size() != class_codes.size()) {
    return Status::InvalidArgument(
        "entropy-MDL discretization needs class labels aligned with values");
  }
  if (num_classes < 1) {
    return Status::InvalidArgument("num_classes must be >= 1");
  }
  std::vector<LabeledValue> v;
  v.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (class_codes[i] == kNullCode) continue;
    v.push_back(LabeledValue{values[i], class_codes[i]});
  }
  std::sort(v.begin(), v.end(), [](const LabeledValue& a,
                                   const LabeledValue& b) {
    return a.value < b.value;
  });
  std::vector<double> cuts;
  MdlSplit(v, 0, v.size(), num_classes, max_cuts_, &cuts);
  std::sort(cuts.begin(), cuts.end());
  return cuts;
}

Result<std::vector<double>> ChiMergeDiscretizer::ComputeCuts(
    const std::vector<double>& values,
    const std::vector<ValueCode>& class_codes, int num_classes) const {
  if (values.size() != class_codes.size()) {
    return Status::InvalidArgument(
        "ChiMerge needs class labels aligned with values");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("ChiMerge needs at least two classes");
  }
  if (threshold_ < 0) {
    return Status::InvalidArgument("significance threshold must be >= 0");
  }

  // Start with one interval per distinct value, holding class counts.
  struct Interval {
    double upper;  // largest value in the interval
    std::vector<int64_t> counts;
  };
  std::vector<LabeledValue> v;
  v.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (class_codes[i] == kNullCode) continue;
    v.push_back(LabeledValue{values[i], class_codes[i]});
  }
  if (v.empty()) return std::vector<double>{};
  std::sort(v.begin(), v.end(),
            [](const LabeledValue& a, const LabeledValue& b) {
              return a.value < b.value;
            });
  std::vector<Interval> intervals;
  for (const LabeledValue& lv : v) {
    if (intervals.empty() || intervals.back().upper != lv.value) {
      intervals.push_back(Interval{
          lv.value,
          std::vector<int64_t>(static_cast<size_t>(num_classes), 0)});
    }
    ++intervals.back().counts[static_cast<size_t>(lv.cls)];
  }

  // Chi-square of two adjacent intervals' class-count rows.
  auto chi2 = [&](const Interval& a, const Interval& b) {
    double stat = 0;
    int64_t na = 0, nb = 0;
    for (int c = 0; c < num_classes; ++c) {
      na += a.counts[static_cast<size_t>(c)];
      nb += b.counts[static_cast<size_t>(c)];
    }
    const double n = static_cast<double>(na + nb);
    if (n == 0) return 0.0;
    for (int c = 0; c < num_classes; ++c) {
      const double col = static_cast<double>(
          a.counts[static_cast<size_t>(c)] +
          b.counts[static_cast<size_t>(c)]);
      const double ea = static_cast<double>(na) * col / n;
      const double eb = static_cast<double>(nb) * col / n;
      if (ea > 0) {
        const double da =
            static_cast<double>(a.counts[static_cast<size_t>(c)]) - ea;
        stat += da * da / ea;
      }
      if (eb > 0) {
        const double db =
            static_cast<double>(b.counts[static_cast<size_t>(c)]) - eb;
        stat += db * db / eb;
      }
    }
    return stat;
  };

  // Repeatedly merge the weakest adjacent pair.
  while (intervals.size() > 1) {
    double min_stat = std::numeric_limits<double>::infinity();
    size_t min_at = 0;
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
      const double stat = chi2(intervals[i], intervals[i + 1]);
      if (stat < min_stat) {
        min_stat = stat;
        min_at = i;
      }
    }
    const bool over_budget =
        max_intervals_ > 0 &&
        static_cast<int>(intervals.size()) > max_intervals_;
    if (min_stat >= threshold_ && !over_budget) break;
    // Merge min_at and min_at+1.
    for (int c = 0; c < num_classes; ++c) {
      intervals[min_at].counts[static_cast<size_t>(c)] +=
          intervals[min_at + 1].counts[static_cast<size_t>(c)];
    }
    intervals[min_at].upper = intervals[min_at + 1].upper;
    intervals.erase(intervals.begin() + static_cast<int64_t>(min_at) + 1);
  }

  std::vector<double> cuts;
  for (size_t i = 0; i + 1 < intervals.size(); ++i) {
    cuts.push_back(intervals[i].upper);
  }
  return cuts;
}

Result<std::vector<double>> ManualDiscretizer::ComputeCuts(
    const std::vector<double>&, const std::vector<ValueCode>&, int) const {
  return cuts_;
}

}  // namespace opmap
