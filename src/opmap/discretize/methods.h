#ifndef OPMAP_DISCRETIZE_METHODS_H_
#define OPMAP_DISCRETIZE_METHODS_H_

#include <string>
#include <vector>

#include "opmap/discretize/discretizer.h"

namespace opmap {

/// Splits the observed [min, max] range into `bins` equal-width intervals.
class EqualWidthDiscretizer : public Discretizer {
 public:
  explicit EqualWidthDiscretizer(int bins) : bins_(bins) {}

  Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes,
      int num_classes) const override;

  std::string name() const override { return "equal-width"; }

 private:
  int bins_;
};

/// Places cuts at empirical quantiles so each interval holds roughly the
/// same number of records. Ties never straddle a cut.
class EqualFrequencyDiscretizer : public Discretizer {
 public:
  explicit EqualFrequencyDiscretizer(int bins) : bins_(bins) {}

  Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes,
      int num_classes) const override;

  std::string name() const override { return "equal-frequency"; }

 private:
  int bins_;
};

/// Fayyad & Irani (1993) supervised entropy discretization with the MDL
/// stopping criterion — the standard choice for class association rule
/// mining preprocessing.
class EntropyMdlDiscretizer : public Discretizer {
 public:
  /// `max_cuts` caps recursion (0 = unlimited, MDL criterion decides).
  explicit EntropyMdlDiscretizer(int max_cuts = 0) : max_cuts_(max_cuts) {}

  Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes,
      int num_classes) const override;

  std::string name() const override { return "entropy-mdl"; }

 private:
  int max_cuts_;
};

/// Kerber's ChiMerge (1992): bottom-up supervised discretization that
/// repeatedly merges the pair of adjacent intervals with the lowest
/// chi-square statistic until every adjacent pair is significant at the
/// configured level (or the interval budget is reached).
class ChiMergeDiscretizer : public Discretizer {
 public:
  /// `significance_threshold` is the chi-square value below which adjacent
  /// intervals are merged (e.g. 4.61 = 90% with 2 degrees of freedom);
  /// `max_intervals` additionally forces merging down to a budget
  /// (0 = no budget).
  explicit ChiMergeDiscretizer(double significance_threshold = 4.61,
                               int max_intervals = 0)
      : threshold_(significance_threshold), max_intervals_(max_intervals) {}

  Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes,
      int num_classes) const override;

  std::string name() const override { return "chi-merge"; }

 private:
  double threshold_;
  int max_intervals_;
};

/// Returns fixed user-supplied cut points for every column; the library's
/// "manual discretization option".
class ManualDiscretizer : public Discretizer {
 public:
  explicit ManualDiscretizer(std::vector<double> cuts)
      : cuts_(std::move(cuts)) {}

  Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes,
      int num_classes) const override;

  std::string name() const override { return "manual"; }

 private:
  std::vector<double> cuts_;
};

}  // namespace opmap

#endif  // OPMAP_DISCRETIZE_METHODS_H_
