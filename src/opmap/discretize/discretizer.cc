#include "opmap/discretize/discretizer.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "opmap/common/string_util.h"

namespace opmap {

ValueCode IntervalOf(double value, const std::vector<double>& cuts) {
  // Intervals are (c_{i-1}, c_i]; upper_bound gives the first cut > value,
  // i.e. the index of the interval whose upper bound is the first cut >= it.
  auto it = std::lower_bound(cuts.begin(), cuts.end(), value);
  // lower_bound: first cut >= value -> value <= cut, so value falls in the
  // interval ending at that cut.
  return static_cast<ValueCode>(it - cuts.begin());
}

std::vector<std::string> IntervalLabels(const std::vector<double>& cuts) {
  std::vector<std::string> labels;
  if (cuts.empty()) {
    labels.push_back("(-inf,+inf)");
    return labels;
  }
  labels.reserve(cuts.size() + 1);
  labels.push_back("(-inf," + FormatDouble(cuts.front(), 6) + "]");
  for (size_t i = 1; i < cuts.size(); ++i) {
    labels.push_back("(" + FormatDouble(cuts[i - 1], 6) + "," +
                     FormatDouble(cuts[i], 6) + "]");
  }
  labels.push_back("(" + FormatDouble(cuts.back(), 6) + ",+inf)");
  return labels;
}

namespace {

Status CheckNoNaN(const std::vector<double>& values,
                  const std::string& attr_name) {
  for (double v : values) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("attribute '" + attr_name +
                                     "' contains missing numeric values");
    }
  }
  return Status::OK();
}

// Replaces continuous column `attr` using the given cuts.
Status ApplyCuts(const Dataset& in, int attr, const std::vector<double>& cuts,
                 Schema* schema, std::vector<std::vector<ValueCode>>* cols) {
  const Attribute& old = in.schema().attribute(attr);
  Attribute interval_attr = Attribute::Categorical(
      old.name(), IntervalLabels(cuts), /*ordered=*/true);
  OPMAP_RETURN_NOT_OK(schema->ReplaceAttribute(attr, std::move(interval_attr)));
  auto& col = (*cols)[static_cast<size_t>(attr)];
  col.resize(static_cast<size_t>(in.num_rows()));
  const std::vector<double>& values = in.numeric_column(attr);
  for (int64_t r = 0; r < in.num_rows(); ++r) {
    col[static_cast<size_t>(r)] = IntervalOf(values[static_cast<size_t>(r)],
                                             cuts);
  }
  return Status::OK();
}

Result<Dataset> DiscretizeImpl(
    const Dataset& dataset,
    const std::function<Result<std::vector<double>>(int attr)>& cuts_for) {
  Schema schema = dataset.schema();
  const int n = schema.num_attributes();
  std::vector<std::vector<ValueCode>> new_cols(static_cast<size_t>(n));
  for (int a = 0; a < n; ++a) {
    if (dataset.schema().attribute(a).is_categorical()) continue;
    OPMAP_RETURN_NOT_OK(
        CheckNoNaN(dataset.numeric_column(a), schema.attribute(a).name()));
    OPMAP_ASSIGN_OR_RETURN(std::vector<double> cuts, cuts_for(a));
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    OPMAP_RETURN_NOT_OK(ApplyCuts(dataset, a, cuts, &schema, &new_cols));
  }
  Dataset out(schema);
  out.Reserve(dataset.num_rows());
  std::vector<Cell> row(static_cast<size_t>(n));
  for (int64_t r = 0; r < dataset.num_rows(); ++r) {
    for (int a = 0; a < n; ++a) {
      if (dataset.schema().attribute(a).is_categorical()) {
        row[static_cast<size_t>(a)] = Cell::Categorical(dataset.code(r, a));
      } else {
        row[static_cast<size_t>(a)] =
            Cell::Categorical(new_cols[static_cast<size_t>(a)][
                static_cast<size_t>(r)]);
      }
    }
    OPMAP_RETURN_NOT_OK(out.AppendRow(row));
  }
  return out;
}

}  // namespace

Result<Dataset> DiscretizeDataset(const Dataset& dataset,
                                  const Discretizer& discretizer) {
  const int class_attr = dataset.schema().class_index();
  const int num_classes = dataset.schema().num_classes();
  return DiscretizeImpl(dataset, [&](int attr) {
    return discretizer.ComputeCuts(dataset.numeric_column(attr),
                                   dataset.categorical_column(class_attr),
                                   num_classes);
  });
}

Result<Dataset> DiscretizeDatasetWithOverrides(
    const Dataset& dataset,
    const std::vector<std::pair<std::string, std::vector<double>>>& overrides,
    const Discretizer* fallback) {
  const int class_attr = dataset.schema().class_index();
  const int num_classes = dataset.schema().num_classes();
  return DiscretizeImpl(
      dataset, [&](int attr) -> Result<std::vector<double>> {
        const std::string& name = dataset.schema().attribute(attr).name();
        for (const auto& [override_name, cuts] : overrides) {
          if (override_name == name) return cuts;
        }
        if (fallback == nullptr) {
          return Status::InvalidArgument(
              "no manual cuts for continuous attribute '" + name +
              "' and no fallback discretizer");
        }
        return fallback->ComputeCuts(dataset.numeric_column(attr),
                                     dataset.categorical_column(class_attr),
                                     num_classes);
      });
}

}  // namespace opmap
