#ifndef OPMAP_DISCRETIZE_DISCRETIZER_H_
#define OPMAP_DISCRETIZE_DISCRETIZER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/data/dataset.h"

namespace opmap {

/// Strategy interface: computes interval cut points for one continuous
/// column. Implementations: equal-width, equal-frequency, entropy-MDL,
/// manual.
///
/// A result of k cut points c_1 < ... < c_k partitions the line into k+1
/// intervals (-inf, c_1], (c_1, c_2], ..., (c_k, +inf). Returning no cut
/// points collapses the column to a single interval.
class Discretizer {
 public:
  virtual ~Discretizer() = default;

  /// Computes cut points for `values`. `class_codes` is aligned to `values`
  /// and may be used by supervised methods; unsupervised methods ignore it.
  /// NaN values are rejected.
  virtual Result<std::vector<double>> ComputeCuts(
      const std::vector<double>& values,
      const std::vector<ValueCode>& class_codes, int num_classes) const = 0;

  /// Short name used in interval labels and logs.
  virtual std::string name() const = 0;
};

/// Interval code for `value` under the given sorted cut points.
ValueCode IntervalOf(double value, const std::vector<double>& cuts);

/// Builds human-readable interval labels, e.g. "(-inf,3.5]", "(3.5,7]",
/// "(7,+inf)". With no cuts the single label is "(-inf,+inf)".
std::vector<std::string> IntervalLabels(const std::vector<double>& cuts);

/// Applies `discretizer` to every continuous attribute of `dataset`,
/// returning an all-categorical dataset whose interval attributes are
/// marked ordered. Columns containing NaN produce an error.
Result<Dataset> DiscretizeDataset(const Dataset& dataset,
                                  const Discretizer& discretizer);

/// Applies per-attribute cut points (by attribute name) and `fallback` for
/// continuous attributes not listed. This is the system's "manual
/// discretization option". A null fallback rejects unlisted continuous
/// attributes.
Result<Dataset> DiscretizeDatasetWithOverrides(
    const Dataset& dataset,
    const std::vector<std::pair<std::string, std::vector<double>>>& overrides,
    const Discretizer* fallback);

}  // namespace opmap

#endif  // OPMAP_DISCRETIZE_DISCRETIZER_H_
