#include "opmap/viz/views.h"

#include <algorithm>
#include <cmath>

#include "opmap/common/string_util.h"
#include "opmap/gi/trend.h"
#include "opmap/viz/bars.h"

namespace opmap {

namespace {

// Confidences of `class_value` across the values of a 2-D (attr, class)
// cube.
std::vector<double> ClassConfidences(const RuleCube& cube,
                                     ValueCode class_value) {
  std::vector<double> out(static_cast<size_t>(cube.dim_size(0)), 0.0);
  for (ValueCode v = 0; v < cube.dim_size(0); ++v) {
    const int64_t body = cube.MarginCount({v, 0}, 1);
    if (body > 0) {
      out[static_cast<size_t>(v)] =
          static_cast<double>(cube.count({v, class_value})) /
          static_cast<double>(body);
    }
  }
  return out;
}

// Value distribution (body counts) of a 2-D cube as fractions.
std::vector<double> ValueDistribution(const RuleCube& cube) {
  std::vector<double> out(static_cast<size_t>(cube.dim_size(0)), 0.0);
  const int64_t total = cube.Total();
  if (total == 0) return out;
  for (ValueCode v = 0; v < cube.dim_size(0); ++v) {
    out[static_cast<size_t>(v)] =
        static_cast<double>(cube.MarginCount({v, 0}, 1)) /
        static_cast<double>(total);
  }
  return out;
}

}  // namespace

Result<std::string> RenderOverview(const CubeStore& store,
                                   const OverviewOptions& options) {
  const Schema& schema = store.schema();
  const auto& attrs = store.attributes();
  std::string out;
  out += "=== Overall visualization: all 2-D rule cubes (" +
         std::to_string(attrs.size()) + " attributes x " +
         std::to_string(schema.num_classes()) + " classes, " +
         std::to_string(store.num_records()) + " records) ===\n";

  // Class distribution strip (the bar left of the Y axis in Fig 5).
  const auto& class_counts = store.class_counts();
  out += "class distribution:\n";
  for (ValueCode c = 0; c < schema.num_classes(); ++c) {
    const double frac =
        store.num_records() > 0
            ? static_cast<double>(class_counts[static_cast<size_t>(c)]) /
                  static_cast<double>(store.num_records())
            : 0.0;
    out += "  " + PadTo(schema.class_attribute().label(c), 26) + " " +
           HorizontalBar(frac, 20) + " " + FormatPercent(frac, 2) + "\n";
  }
  out += "\n";

  const int label_width = 28;
  for (size_t begin = 0; begin < attrs.size();
       begin += static_cast<size_t>(options.attributes_per_block)) {
    const size_t end =
        std::min(attrs.size(),
                 begin + static_cast<size_t>(options.attributes_per_block));
    // Column width: wide enough for the grid and for every attribute name
    // in this block (the flag '*' marks attributes whose domain exceeds
    // the grid, Fig 5's light blue).
    std::vector<std::string> names;
    int col_width = options.grid_width + 2;
    for (size_t i = begin; i < end; ++i) {
      std::string name = schema.attribute(attrs[i]).name();
      if (schema.attribute(attrs[i]).domain() > options.grid_width) {
        name += "*";
      }
      col_width = std::max(col_width, static_cast<int>(name.size()) + 2);
      names.push_back(std::move(name));
    }
    // Header row: attribute names.
    out += PadTo("", label_width);
    for (const std::string& name : names) {
      out += PadTo(name, col_width);
    }
    out += "\n";
    // Distribution row.
    out += PadTo("value distribution", label_width);
    for (size_t i = begin; i < end; ++i) {
      OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(attrs[i]));
      std::vector<double> dist = ValueDistribution(*cube);
      dist.resize(std::min<size_t>(
          dist.size(), static_cast<size_t>(options.grid_width)));
      out += Sparkline(dist);
      out += std::string(
          static_cast<size_t>(col_width - static_cast<int>(dist.size())),
          ' ');
    }
    out += "\n";
    // One row per class: confidence thumbnails (one-conditional rules).
    for (ValueCode c = 0; c < schema.num_classes(); ++c) {
      out += PadTo(schema.class_attribute().label(c), label_width);
      // Per-class scaling: find the row's max confidence in this block
      // (or globally 1.0 when scaling is off).
      double row_max = options.scale_per_class ? 0.0 : 1.0;
      std::vector<std::vector<double>> cf(end - begin);
      for (size_t i = begin; i < end; ++i) {
        OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube,
                               store.AttrCube(attrs[i]));
        cf[i - begin] = ClassConfidences(*cube, c);
        if (options.scale_per_class) {
          for (double v : cf[i - begin]) row_max = std::max(row_max, v);
        }
      }
      for (size_t i = begin; i < end; ++i) {
        std::vector<double> vals = cf[i - begin];
        vals.resize(std::min<size_t>(
            vals.size(), static_cast<size_t>(options.grid_width)));
        out += Sparkline(vals, row_max);
        std::string suffix = " ";
        if (options.show_trends &&
            schema.attribute(attrs[i]).ordered()) {
          OPMAP_ASSIGN_OR_RETURN(
              Trend t, DetectTrend(store, attrs[i], c, TrendOptions{}));
          AnsiColor arrow_color = AnsiColor::kDefault;
          switch (t.direction) {
            case TrendDirection::kIncreasing:
              arrow_color = AnsiColor::kGreen;
              break;
            case TrendDirection::kDecreasing:
              arrow_color = AnsiColor::kRed;
              break;
            case TrendDirection::kStable:
              arrow_color = AnsiColor::kGray;
              break;
            case TrendDirection::kNone:
              break;
          }
          suffix = Colorize(TrendArrow(t.direction), arrow_color,
                            options.color);
        }
        out += suffix;
        out += std::string(
            static_cast<size_t>(col_width - 1 -
                                static_cast<int>(vals.size())),
            ' ');
      }
      out += "\n";
    }
    out += "\n";
  }
  return out;
}

Result<std::string> RenderDetail(const CubeStore& store, int attribute,
                                 const DetailOptions& options) {
  const Schema& schema = store.schema();
  OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(attribute));
  const Attribute& attr = schema.attribute(attribute);

  std::string out;
  out += "=== Detailed visualization: " + attr.name() + " x " +
         schema.class_attribute().name() + " (2-D rule cube) ===\n";
  const int64_t total = cube->Total();
  for (ValueCode c = 0; c < schema.num_classes(); ++c) {
    out += "class " + schema.class_attribute().label(c) + ":\n";
    // Scale this class's bars to its maximum confidence for visibility.
    double max_cf = 0.0;
    for (ValueCode v = 0; v < attr.domain(); ++v) {
      const int64_t body = cube->MarginCount({v, 0}, 1);
      if (body > 0) {
        max_cf = std::max(max_cf,
                          static_cast<double>(cube->count({v, c})) /
                              static_cast<double>(body));
      }
    }
    if (max_cf <= 0) max_cf = 1.0;
    for (ValueCode v = 0; v < attr.domain(); ++v) {
      const int64_t body = cube->MarginCount({v, 0}, 1);
      const int64_t hits = cube->count({v, c});
      const double cf =
          body > 0 ? static_cast<double>(hits) / static_cast<double>(body)
                   : 0.0;
      out += "  " + PadTo(attr.label(v), 20) + " |" +
             Colorize(HorizontalBar(cf / max_cf, options.bar_width),
                      AnsiColor::kBlue, options.color) +
             "| " + FormatPercent(cf, 2);
      if (options.show_counts) {
        out += "  (" + std::to_string(hits) + "/" + std::to_string(body) +
               ", sup=" +
               FormatPercent(total > 0 ? static_cast<double>(hits) /
                                             static_cast<double>(total)
                                       : 0.0,
                             3) +
               ")";
      }
      out += "\n";
    }
  }
  return out;
}

Result<std::string> RenderComparisonView(const ComparisonResult& result,
                                         const Schema& schema, int attribute,
                                         const CompareViewOptions& options) {
  const AttributeComparison* cmp = nullptr;
  for (const auto& c : result.ranked) {
    if (c.attribute == attribute) cmp = &c;
  }
  for (const auto& c : result.properties) {
    if (c.attribute == attribute) cmp = &c;
  }
  if (cmp == nullptr) {
    return Status::NotFound("attribute was not part of the comparison");
  }
  const Attribute& attr = schema.attribute(attribute);
  const Attribute& base = schema.attribute(result.spec.attribute);

  double scale = options.max_confidence;
  (void)base;
  if (scale <= 0) {
    for (const ValueComparison& v : cmp->values) {
      scale = std::max({scale, v.cf1 + v.e1, v.cf2 + v.e2});
    }
    if (scale <= 0) scale = 1.0;
  }

  std::string out;
  out += "=== Comparison view: " + attr.name() + "  (" + base.name() + "=" +
         result.label_a + " vs " + result.label_b + ", class " +
         schema.class_attribute().label(result.spec.target_class) + ") ===\n";
  out += "M = " + FormatDouble(cmp->interestingness, 2) + "  normalized = " +
         FormatDouble(cmp->normalized, 4);
  if (cmp->is_property) {
    out += "  " + Colorize(
                      "[PROPERTY ATTRIBUTE: values do not co-occur across "
                      "the two sub-populations]",
                      AnsiColor::kYellow, options.color);
  }
  out += "\n('#' = drop rate, '~' = extent of the " +
         std::string("confidence interval)\n");
  const std::string& good = result.label_a;
  const std::string& bad = result.label_b;
  for (const ValueComparison& v : cmp->values) {
    out += PadTo(attr.label(v.value), 20) + "\n";
    out += "  " + PadTo(good, 6) + " |" +
           Colorize(BarWithWhisker(v.cf1 / scale, (v.cf1 + v.e1) / scale,
                                   options.bar_width),
                    AnsiColor::kGreen, options.color) +
           "| " + FormatPercent(v.cf1, 2) + " ±" + FormatPercent(v.e1, 2) +
           "  (n=" + std::to_string(v.n1) + ")\n";
    out += "  " + PadTo(bad, 6) + " |" +
           Colorize(BarWithWhisker(v.cf2 / scale, (v.cf2 + v.e2) / scale,
                                   options.bar_width),
                    AnsiColor::kRed, options.color) +
           "| " + FormatPercent(v.cf2, 2) + " ±" + FormatPercent(v.e2, 2) +
           "  (n=" + std::to_string(v.n2) + ")";
    if (v.w > 0) {
      out += "   W=" + FormatDouble(v.w, 1);
    }
    out += "\n";
  }
  return out;
}

}  // namespace opmap
