#ifndef OPMAP_VIZ_COLOR_H_
#define OPMAP_VIZ_COLOR_H_

#include <string>

namespace opmap {

/// ANSI terminal colors used by the views. The deployed GUI used color
/// semantically: green/red/gray trend arrows, blue rule bars, light blue
/// "too many values" flags (paper Section V.B); the text views mirror
/// that.
enum class AnsiColor {
  kDefault,
  kRed,
  kGreen,
  kYellow,
  kBlue,
  kCyan,
  kGray,
};

/// Whether views emit ANSI escape sequences.
enum class ColorMode {
  kNever,
  kAlways,
};

/// Wraps `text` in the escape sequence for `color` when `mode` is
/// kAlways; returns `text` unchanged otherwise.
std::string Colorize(const std::string& text, AnsiColor color,
                     ColorMode mode);

}  // namespace opmap

#endif  // OPMAP_VIZ_COLOR_H_
