#ifndef OPMAP_VIZ_BARS_H_
#define OPMAP_VIZ_BARS_H_

#include <string>
#include <vector>

#include "opmap/gi/trend.h"

namespace opmap {

/// Low-level text drawing helpers shared by the view renderers. All output
/// is plain UTF-8 text so views render in any terminal and diff cleanly in
/// tests.

/// Horizontal bar of `width` cells filled proportionally to `fraction`
/// (clamped to [0, 1]), e.g. "#####.....".
std::string HorizontalBar(double fraction, int width, char fill = '#',
                          char empty = '.');

/// Horizontal bar with a confidence-interval whisker: the bar shows the
/// point estimate, '~' cells extend to the upper interval bound (the grey
/// region of paper Fig 7). `fraction` and `upper` are relative to the
/// full width.
std::string BarWithWhisker(double fraction, double upper, int width);

/// One-row sparkline of `values` scaled to `max` (values.size() cells)
/// using the Unicode eighth-block ramp. `max` <= 0 autoscales to the
/// largest value.
std::string Sparkline(const std::vector<double>& values, double max = 0.0);

/// Unicode arrow for a trend: increasing "↑" (green in the GUI),
/// decreasing "↓" (red), stable "→" (gray), none " ".
std::string TrendArrow(TrendDirection direction);

/// Pads or truncates `s` to exactly `width` display columns (ASCII only;
/// callers keep labels ASCII).
std::string PadTo(const std::string& s, int width);

}  // namespace opmap

#endif  // OPMAP_VIZ_BARS_H_
