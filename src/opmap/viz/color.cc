#include "opmap/viz/color.h"

namespace opmap {

std::string Colorize(const std::string& text, AnsiColor color,
                     ColorMode mode) {
  if (mode == ColorMode::kNever || color == AnsiColor::kDefault) {
    return text;
  }
  const char* code = "";
  switch (color) {
    case AnsiColor::kRed:
      code = "\x1b[31m";
      break;
    case AnsiColor::kGreen:
      code = "\x1b[32m";
      break;
    case AnsiColor::kYellow:
      code = "\x1b[33m";
      break;
    case AnsiColor::kBlue:
      code = "\x1b[34m";
      break;
    case AnsiColor::kCyan:
      code = "\x1b[36m";
      break;
    case AnsiColor::kGray:
      code = "\x1b[90m";
      break;
    case AnsiColor::kDefault:
      break;
  }
  return std::string(code) + text + "\x1b[0m";
}

}  // namespace opmap
