#ifndef OPMAP_VIZ_HTML_REPORT_H_
#define OPMAP_VIZ_HTML_REPORT_H_

#include <string>

#include "opmap/common/status.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/gi/impressions.h"

namespace opmap {

/// Options for HTML report generation.
struct HtmlReportOptions {
  std::string title = "Opportunity Map report";
  /// How many top-ranked attributes get a full per-value chart.
  int top_attributes = 5;
  /// Include the property-attribute section.
  bool include_properties = true;
  /// Optional GI section (pass results from MineGeneralImpressions).
  const GeneralImpressions* impressions = nullptr;
};

/// Renders a comparison result as a single self-contained HTML document:
/// the two rules, the ranked attribute table, and per-value side-by-side
/// bar charts with confidence-interval whiskers drawn as inline SVG — a
/// shareable equivalent of the GUI screens in paper Figs 6-8. No external
/// assets or scripts.
std::string RenderHtmlReport(const ComparisonResult& result,
                             const Schema& schema,
                             const HtmlReportOptions& options = {});

/// Writes RenderHtmlReport output to `path`.
Status WriteHtmlReport(const ComparisonResult& result, const Schema& schema,
                       const std::string& path,
                       const HtmlReportOptions& options = {});

}  // namespace opmap

#endif  // OPMAP_VIZ_HTML_REPORT_H_
