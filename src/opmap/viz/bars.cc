#include "opmap/viz/bars.h"

#include <algorithm>
#include <cmath>

namespace opmap {

std::string HorizontalBar(double fraction, int width, char fill, char empty) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int filled = static_cast<int>(std::lround(fraction * width));
  std::string out(static_cast<size_t>(width), empty);
  std::fill(out.begin(), out.begin() + filled, fill);
  return out;
}

std::string BarWithWhisker(double fraction, double upper, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  upper = std::clamp(upper, fraction, 1.0);
  const int filled = static_cast<int>(std::lround(fraction * width));
  const int whisker = static_cast<int>(std::lround(upper * width));
  std::string out(static_cast<size_t>(width), '.');
  std::fill(out.begin(), out.begin() + filled, '#');
  std::fill(out.begin() + filled, out.begin() + whisker, '~');
  return out;
}

std::string Sparkline(const std::vector<double>& values, double max) {
  static const char* const kRamp[] = {" ", "▁", "▂", "▃",
                                      "▄", "▅", "▆",
                                      "▇", "█"};
  if (max <= 0.0) {
    for (double v : values) max = std::max(max, v);
  }
  std::string out;
  for (double v : values) {
    int level = 0;
    if (max > 0 && v > 0) {
      level = 1 + static_cast<int>(std::floor(v / max * 7.999));
      level = std::clamp(level, 1, 8);
    }
    out += kRamp[level];
  }
  return out;
}

std::string TrendArrow(TrendDirection direction) {
  switch (direction) {
    case TrendDirection::kIncreasing:
      return "↑";
    case TrendDirection::kDecreasing:
      return "↓";
    case TrendDirection::kStable:
      return "→";
    case TrendDirection::kNone:
      return " ";
  }
  return " ";
}

std::string PadTo(const std::string& s, int width) {
  if (static_cast<int>(s.size()) >= width) {
    return s.substr(0, static_cast<size_t>(width));
  }
  return s + std::string(static_cast<size_t>(width) - s.size(), ' ');
}

}  // namespace opmap
