#ifndef OPMAP_VIZ_EXPORT_H_
#define OPMAP_VIZ_EXPORT_H_

#include <string>

#include "opmap/compare/comparator.h"
#include "opmap/cube/rule_cube.h"

namespace opmap {

/// CSV export of a rule cube: one row per cell with labels, count, support
/// and (when `class_dim` >= 0) confidence. Columns:
/// <dim names...>,count,support[,confidence].
std::string CubeToCsv(const RuleCube& cube, int class_dim = -1);

/// JSON export of a rule cube: {"dims": [...], "cells": [...]}; cells with
/// zero count are omitted to keep exports of sparse cubes compact.
std::string CubeToJson(const RuleCube& cube);

/// JSON export of a comparison result, including the full per-value
/// breakdown of every ranked and property attribute. Intended for external
/// plotting of Fig 7-style charts.
std::string ComparisonToJson(const ComparisonResult& result,
                             const Schema& schema);

}  // namespace opmap

#endif  // OPMAP_VIZ_EXPORT_H_
