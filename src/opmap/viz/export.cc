#include "opmap/viz/export.h"

#include <vector>

#include "opmap/common/string_util.h"

namespace opmap {

namespace {

// Iterates every cell coordinate of `cube`.
template <typename Fn>
void ForEachCell(const RuleCube& cube, Fn&& fn) {
  std::vector<ValueCode> cell(static_cast<size_t>(cube.num_dims()), 0);
  for (;;) {
    fn(cell);
    int d = cube.num_dims() - 1;
    while (d >= 0 &&
           cell[static_cast<size_t>(d)] == cube.dim_size(d) - 1) {
      cell[static_cast<size_t>(d)] = 0;
      --d;
    }
    if (d < 0) break;
    ++cell[static_cast<size_t>(d)];
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string CubeToCsv(const RuleCube& cube, int class_dim) {
  std::string out;
  for (int d = 0; d < cube.num_dims(); ++d) {
    if (d > 0) out += ",";
    out += cube.dim_name(d);
  }
  out += ",count,support";
  if (class_dim >= 0) out += ",confidence";
  out += "\n";
  const int64_t total = cube.Total();
  ForEachCell(cube, [&](const std::vector<ValueCode>& cell) {
    for (int d = 0; d < cube.num_dims(); ++d) {
      if (d > 0) out += ",";
      out += cube.label(d, cell[static_cast<size_t>(d)]);
    }
    const int64_t count = cube.count(cell);
    out += "," + std::to_string(count);
    out += "," + FormatDouble(total > 0 ? static_cast<double>(count) /
                                              static_cast<double>(total)
                                        : 0.0,
                              6);
    if (class_dim >= 0) {
      out += "," + FormatDouble(cube.Confidence(cell, class_dim), 6);
    }
    out += "\n";
  });
  return out;
}

std::string CubeToJson(const RuleCube& cube) {
  std::string out = "{\"dims\":[";
  for (int d = 0; d < cube.num_dims(); ++d) {
    if (d > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(cube.dim_name(d)) + "\",\"values\":[";
    for (ValueCode v = 0; v < cube.dim_size(d); ++v) {
      if (v > 0) out += ",";
      out += "\"" + JsonEscape(cube.label(d, v)) + "\"";
    }
    out += "]}";
  }
  out += "],\"cells\":[";
  bool first = true;
  ForEachCell(cube, [&](const std::vector<ValueCode>& cell) {
    const int64_t count = cube.count(cell);
    if (count == 0) return;
    if (!first) out += ",";
    first = false;
    out += "{\"cell\":[";
    for (size_t d = 0; d < cell.size(); ++d) {
      if (d > 0) out += ",";
      out += std::to_string(cell[d]);
    }
    out += "],\"count\":" + std::to_string(count) + "}";
  });
  out += "]}";
  return out;
}

namespace {

void AppendAttributeJson(const AttributeComparison& cmp, const Schema& schema,
                         std::string* out) {
  const Attribute& attr = schema.attribute(cmp.attribute);
  *out += "{\"attribute\":\"" + JsonEscape(attr.name()) + "\"";
  *out += ",\"interestingness\":" + FormatDouble(cmp.interestingness, 6);
  *out += ",\"normalized\":" + FormatDouble(cmp.normalized, 6);
  *out += ",\"is_property\":" + std::string(cmp.is_property ? "true" : "false");
  *out += ",\"property_ratio\":" + FormatDouble(cmp.property_ratio, 6);
  *out += ",\"values\":[";
  for (size_t k = 0; k < cmp.values.size(); ++k) {
    const ValueComparison& v = cmp.values[k];
    if (k > 0) *out += ",";
    *out += "{\"value\":\"" + JsonEscape(attr.label(v.value)) + "\"";
    *out += ",\"n1\":" + std::to_string(v.n1);
    *out += ",\"n2\":" + std::to_string(v.n2);
    *out += ",\"cf1\":" + FormatDouble(v.cf1, 6);
    *out += ",\"cf2\":" + FormatDouble(v.cf2, 6);
    *out += ",\"e1\":" + FormatDouble(v.e1, 6);
    *out += ",\"e2\":" + FormatDouble(v.e2, 6);
    *out += ",\"f\":" + FormatDouble(v.f, 6);
    *out += ",\"w\":" + FormatDouble(v.w, 6) + "}";
  }
  *out += "]}";
}

}  // namespace

std::string ComparisonToJson(const ComparisonResult& result,
                             const Schema& schema) {
  const Attribute& base = schema.attribute(result.spec.attribute);
  std::string out = "{";
  out += "\"attribute\":\"" + JsonEscape(base.name()) + "\"";
  out += ",\"value_a\":\"" + JsonEscape(result.label_a) + "\"";
  out += ",\"value_b\":\"" + JsonEscape(result.label_b) + "\"";
  out += ",\"target_class\":\"" +
         JsonEscape(
             schema.class_attribute().label(result.spec.target_class)) +
         "\"";
  out += ",\"cf1\":" + FormatDouble(result.cf1, 6);
  out += ",\"cf2\":" + FormatDouble(result.cf2, 6);
  out += ",\"n_d1\":" + std::to_string(result.n_d1);
  out += ",\"n_d2\":" + std::to_string(result.n_d2);
  out += ",\"ranked\":[";
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    if (i > 0) out += ",";
    AppendAttributeJson(result.ranked[i], schema, &out);
  }
  out += "],\"properties\":[";
  for (size_t i = 0; i < result.properties.size(); ++i) {
    if (i > 0) out += ",";
    AppendAttributeJson(result.properties[i], schema, &out);
  }
  out += "]}";
  return out;
}

}  // namespace opmap
