#ifndef OPMAP_VIZ_VIEWS_H_
#define OPMAP_VIZ_VIEWS_H_

#include <string>

#include "opmap/common/status.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/viz/color.h"

namespace opmap {

/// Options shared by the overall-mode view (paper Fig 5).
struct OverviewOptions {
  /// Attributes per block row; the overall screen is chunked to fit a
  /// terminal.
  int attributes_per_block = 6;
  /// Width of one attribute grid in characters; attributes with more
  /// values than this are flagged (the GUI's "light blue" marker).
  int grid_width = 12;
  /// Scale each class row to its own maximum confidence (the GUI's
  /// automatic scaling that makes minority classes visible).
  bool scale_per_class = true;
  /// Annotate grids with trend arrows for ordered attributes.
  bool show_trends = true;
  /// Emit ANSI colors (green/red/gray arrows, as in the GUI).
  ColorMode color = ColorMode::kNever;
};

/// Overall visualization mode: every 2-D rule cube as a thumbnail grid —
/// one column per attribute, one row per class, plus a value-distribution
/// row. Text equivalent of paper Fig 5.
Result<std::string> RenderOverview(const CubeStore& store,
                                   const OverviewOptions& options = {});

/// Options for the detailed 2-D view (paper Fig 6).
struct DetailOptions {
  int bar_width = 40;
  /// Show exact counts and percentages (the detail mode adds what the
  /// overview omits).
  bool show_counts = true;
  ColorMode color = ColorMode::kNever;
};

/// Detailed visualization of one attribute's 2-D rule cube: per class, a
/// bar per value with exact counts, confidences and supports.
Result<std::string> RenderDetail(const CubeStore& store, int attribute,
                                 const DetailOptions& options = {});

/// Options for the comparison view (paper Figs 7 and 8).
struct CompareViewOptions {
  int bar_width = 40;
  /// Scale bars to this confidence; 0 autoscales to the largest upper
  /// interval bound in the view.
  double max_confidence = 0.0;
  /// Emit ANSI colors (good population green, bad red, property flags
  /// yellow).
  ColorMode color = ColorMode::kNever;
};

/// Side-by-side view of one compared attribute: for every value, the good
/// and bad sub-population's target-class confidence as bars with '~'
/// whiskers marking the confidence interval — the text form of Fig 7 (and
/// Fig 8 when the attribute is a property attribute).
Result<std::string> RenderComparisonView(const ComparisonResult& result,
                                         const Schema& schema, int attribute,
                                         const CompareViewOptions& options =
                                             {});

}  // namespace opmap

#endif  // OPMAP_VIZ_VIEWS_H_
