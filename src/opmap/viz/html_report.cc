#include "opmap/viz/html_report.h"

#include <algorithm>
#include <fstream>

#include "opmap/common/string_util.h"

namespace opmap {

namespace {

std::string HtmlEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// One horizontal SVG bar pair (good/bad) with CI whiskers for a value.
// `scale` maps confidence 1.0 to the full bar width.
void AppendValueChart(const ValueComparison& v, const std::string& label,
                      const std::string& good, const std::string& bad,
                      double scale, std::string* out) {
  const int width = 420;
  const int bar_h = 14;
  const int row_h = 2 * bar_h + 14;
  auto bar = [&](double cf, double e, int y, const char* fill,
                 const std::string& name, int64_t n) {
    const double w = std::min(1.0, cf / scale) * width;
    const double whisker_lo = std::max(0.0, cf - e) / scale * width;
    const double whisker_hi = std::min(1.0, (cf + e) / scale) * width;
    std::string s;
    s += "<rect x='120' y='" + std::to_string(y) + "' width='" +
         FormatDouble(w, 1) + "' height='" + std::to_string(bar_h) +
         "' fill='" + fill + "'/>";
    // CI whisker: a thin line spanning [cf-e, cf+e].
    s += "<line x1='" + FormatDouble(120 + whisker_lo, 1) + "' y1='" +
         std::to_string(y + bar_h / 2) + "' x2='" +
         FormatDouble(120 + whisker_hi, 1) + "' y2='" +
         std::to_string(y + bar_h / 2) +
         "' stroke='#333' stroke-width='1.5'/>";
    s += "<text x='0' y='" + std::to_string(y + bar_h - 3) +
         "' font-size='11'>" + HtmlEscape(name) + "</text>";
    s += "<text x='" + FormatDouble(124 + whisker_hi, 1) + "' y='" +
         std::to_string(y + bar_h - 3) + "' font-size='11'>" +
         FormatPercent(cf, 2) + " &#177;" + FormatPercent(e, 2) + " (n=" +
         std::to_string(n) + ")</text>";
    *out += s;
  };
  *out += "<div class='value'><div class='vlabel'>" + HtmlEscape(label);
  if (v.w > 0) {
    *out += " <span class='w'>W=" + FormatDouble(v.w, 1) + "</span>";
  }
  *out += "</div><svg width='680' height='" + std::to_string(row_h) + "'>";
  bar(v.cf1, v.e1, 2, "#2a9d4e", good, v.n1);
  bar(v.cf2, v.e2, 2 + bar_h + 4, "#d04a3a", bad, v.n2);
  *out += "</svg></div>\n";
}

void AppendAttributeSection(const AttributeComparison& cmp,
                            const Schema& schema,
                            const ComparisonResult& result, int rank,
                            std::string* out) {
  const Attribute& attr = schema.attribute(cmp.attribute);
  *out += "<section><h3>";
  if (rank >= 0) *out += "#" + std::to_string(rank + 1) + " ";
  *out += HtmlEscape(attr.name()) + " &mdash; M = " +
          FormatDouble(cmp.interestingness, 2) + " (normalized " +
          FormatDouble(cmp.normalized, 4) + ")";
  if (cmp.is_property) {
    *out += " <span class='property'>property attribute</span>";
  }
  *out += "</h3>\n";
  double scale = 0;
  for (const ValueComparison& v : cmp.values) {
    scale = std::max({scale, v.cf1 + v.e1, v.cf2 + v.e2});
  }
  if (scale <= 0) scale = 1.0;
  for (const ValueComparison& v : cmp.values) {
    AppendValueChart(v, attr.label(v.value), result.label_a, result.label_b,
                     scale, out);
  }
  *out += "</section>\n";
}

}  // namespace

std::string RenderHtmlReport(const ComparisonResult& result,
                             const Schema& schema,
                             const HtmlReportOptions& options) {
  const Attribute& base = schema.attribute(result.spec.attribute);
  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>\n<title>" +
         HtmlEscape(options.title) + "</title>\n<style>\n"
         "body{font-family:sans-serif;max-width:860px;margin:2em auto;}\n"
         "table{border-collapse:collapse;}td,th{border:1px solid #bbb;"
         "padding:4px 10px;text-align:left;}\n"
         ".property{background:#ffe9a8;padding:2px 6px;border-radius:4px;"
         "font-size:0.7em;}\n"
         ".vlabel{font-weight:bold;margin-top:6px;}\n"
         ".w{color:#d04a3a;font-weight:normal;font-size:0.85em;}\n"
         "</style></head><body>\n";
  out += "<h1>" + HtmlEscape(options.title) + "</h1>\n";

  out += "<h2>Compared rules</h2>\n<table>\n"
         "<tr><th></th><th>rule</th><th>confidence</th><th>population"
         "</th></tr>\n";
  const std::string target =
      schema.class_attribute().label(result.spec.target_class);
  out += "<tr><td>good</td><td>" + HtmlEscape(base.name()) + " = " +
         HtmlEscape(result.label_a) + " &rarr; " + HtmlEscape(target) +
         "</td><td>" + FormatPercent(result.cf1, 3) + "</td><td>" +
         std::to_string(result.n_d1) + "</td></tr>\n";
  out += "<tr><td>bad</td><td>" + HtmlEscape(base.name()) + " = " +
         HtmlEscape(result.label_b) + " &rarr; " + HtmlEscape(target) +
         "</td><td>" + FormatPercent(result.cf2, 3) + "</td><td>" +
         std::to_string(result.n_d2) + "</td></tr>\n</table>\n";
  for (const std::string& w : result.warnings) {
    out += "<p><em>warning: " + HtmlEscape(w) + "</em></p>\n";
  }

  out += "<h2>Ranked distinguishing attributes</h2>\n<table>\n"
         "<tr><th>rank</th><th>attribute</th><th>M</th><th>normalized"
         "</th></tr>\n";
  for (size_t i = 0; i < result.ranked.size(); ++i) {
    const AttributeComparison& cmp = result.ranked[i];
    out += "<tr><td>" + std::to_string(i + 1) + "</td><td>" +
           HtmlEscape(schema.attribute(cmp.attribute).name()) + "</td><td>" +
           FormatDouble(cmp.interestingness, 2) + "</td><td>" +
           FormatDouble(cmp.normalized, 4) + "</td></tr>\n";
  }
  out += "</table>\n";

  const int detail = std::min<int>(options.top_attributes,
                                   static_cast<int>(result.ranked.size()));
  for (int i = 0; i < detail; ++i) {
    AppendAttributeSection(result.ranked[static_cast<size_t>(i)], schema,
                           result, i, &out);
  }

  if (options.include_properties && !result.properties.empty()) {
    out += "<h2>Property attributes (data artifacts)</h2>\n";
    for (const AttributeComparison& cmp : result.properties) {
      AppendAttributeSection(cmp, schema, result, -1, &out);
    }
  }

  if (options.impressions != nullptr) {
    out += "<h2>General impressions</h2>\n<pre>" +
           HtmlEscape(
               FormatGeneralImpressions(*options.impressions, schema)) +
           "</pre>\n";
  }

  out += "</body></html>\n";
  return out;
}

Status WriteHtmlReport(const ComparisonResult& result, const Schema& schema,
                       const std::string& path,
                       const HtmlReportOptions& options) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << RenderHtmlReport(result, schema, options);
  if (!out) return Status::IOError("write failure");
  return Status::OK();
}

}  // namespace opmap
