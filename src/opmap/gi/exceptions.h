#ifndef OPMAP_GI_EXCEPTIONS_H_
#define OPMAP_GI_EXCEPTIONS_H_

#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/stats/confidence_interval.h"

namespace opmap {

/// An exception cell: a rule whose confidence deviates significantly from
/// its expected value (part of the general-impressions mining of the
/// authors' earlier system, paper Section III.B / [20]).
struct ExceptionCell {
  int attribute = -1;            ///< first (or only) condition attribute
  ValueCode value = kNullCode;
  int attribute2 = -1;           ///< second condition attribute, -1 for 1-cond
  ValueCode value2 = kNullCode;
  ValueCode class_value = kNullCode;
  int64_t body_count = 0;
  double confidence = 0.0;
  double expected = 0.0;   ///< expected confidence under the baseline model
  double deviation = 0.0;  ///< confidence - expected
  /// |deviation| in units of the Wald margin; > 1 means outside the
  /// interval.
  double significance = 0.0;
};

struct ExceptionOptions {
  ConfidenceLevel confidence_level = ConfidenceLevel::k95;
  /// Minimum significance (margin multiples) to report.
  double min_significance = 1.0;
  /// Minimum body count for a cell to be considered at all.
  int64_t min_body_count = 30;
  /// Cap on reported exceptions (0 = unlimited), strongest first.
  int max_results = 0;
  /// If > 0, apply Benjamini-Hochberg false-discovery-rate control at this
  /// level instead of the raw min_significance threshold — scanning
  /// thousands of cells at a fixed confidence level otherwise produces
  /// "exceptions" by sheer volume.
  double fdr = 0.0;
};

/// One-condition exceptions: for each attribute value, the expected
/// confidence of each class is the overall class rate; cells outside their
/// interval are exceptions.
Result<std::vector<ExceptionCell>> MineAttributeExceptions(
    const CubeStore& store, const ExceptionOptions& options);

/// Two-condition exceptions over one 3-D cube: the expected confidence of
/// cell (v1, v2) follows the multiplicative model
///   E[cf(v1, v2)] = cf(v1) * cf(v2) / cf_overall,
/// i.e. the two conditions act independently on the class odds; deviations
/// beyond the interval are exceptions (in the spirit of Sarawagi's
/// discovery-driven exploration, but on rule cubes without hierarchies).
Result<std::vector<ExceptionCell>> MinePairExceptions(
    const CubeStore& store, int attr_a, int attr_b,
    const ExceptionOptions& options);

}  // namespace opmap

#endif  // OPMAP_GI_EXCEPTIONS_H_
