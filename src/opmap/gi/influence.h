#ifndef OPMAP_GI_INFLUENCE_H_
#define OPMAP_GI_INFLUENCE_H_

#include <vector>

#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"

namespace opmap {

/// How strongly one attribute is associated with the class overall — the
/// "influential attributes" part of general-impression mining.
struct AttributeInfluence {
  int attribute = -1;
  double chi_square = 0.0;
  double p_value = 1.0;
  double cramers_v = 0.0;
  double information_gain_bits = 0.0;
};

/// Ranks every materialized attribute by association with the class (by
/// descending Cramer's V, which normalizes for domain size). Computed
/// entirely from the 2-D rule cubes.
Result<std::vector<AttributeInfluence>> RankInfluentialAttributes(
    const CubeStore& store);

}  // namespace opmap

#endif  // OPMAP_GI_INFLUENCE_H_
