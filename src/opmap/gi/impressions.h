#ifndef OPMAP_GI_IMPRESSIONS_H_
#define OPMAP_GI_IMPRESSIONS_H_

#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/gi/exceptions.h"
#include "opmap/gi/influence.h"
#include "opmap/gi/trend.h"

namespace opmap {

/// Combined output of the GI miner (the "general impressions" of the
/// authors' earlier system [20], invoked from the overview screen): which
/// attributes matter, which class rates trend across ordered values, and
/// which cells deviate from expectation.
struct GeneralImpressions {
  std::vector<AttributeInfluence> influence;
  std::vector<Trend> trends;
  std::vector<ExceptionCell> exceptions;
  /// Strongest two-condition interactions across all pair cubes.
  std::vector<ExceptionCell> interactions;
};

struct GiOptions {
  TrendOptions trends;
  ExceptionOptions exceptions;
  /// Cap on influence entries kept (0 = all).
  int top_influence = 0;
  /// Mine two-condition interactions across all pair cubes. Quadratic in
  /// the attribute count; off by default for wide stores.
  bool mine_interactions = false;
  /// Cap on interactions kept (strongest first).
  int top_interactions = 20;
};

/// Runs the full GI pass over the store.
Result<GeneralImpressions> MineGeneralImpressions(const CubeStore& store,
                                                  const GiOptions& options =
                                                      {});

/// Strongest pair-cube exceptions across every materialized attribute
/// pair, sorted by significance.
Result<std::vector<ExceptionCell>> MineInteractions(
    const CubeStore& store, const ExceptionOptions& options,
    int max_results);

/// Human-readable multi-section report of a GI pass.
std::string FormatGeneralImpressions(const GeneralImpressions& gi,
                                     const Schema& schema);

}  // namespace opmap

#endif  // OPMAP_GI_IMPRESSIONS_H_
