#ifndef OPMAP_GI_TREND_H_
#define OPMAP_GI_TREND_H_

#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/stats/confidence_interval.h"

namespace opmap {

/// Direction of a unit trend over an ordered attribute (paper Fig 5: green
/// increasing, red decreasing, gray stable arrows).
enum class TrendDirection {
  kNone,        ///< no consistent pattern
  kIncreasing,
  kDecreasing,
  kStable,
};

const char* TrendDirectionName(TrendDirection d);

/// A detected trend of one class's confidence across an attribute's
/// ordered values.
struct Trend {
  int attribute = -1;
  ValueCode class_value = kNullCode;
  TrendDirection direction = TrendDirection::kNone;
  /// Confidence of the class per attribute value, in value order.
  std::vector<double> confidences;
  /// Kendall-style agreement in [-1, 1]: fraction of concordant steps minus
  /// discordant steps over all value pairs.
  double agreement = 0.0;
};

/// Options for trend mining.
struct TrendOptions {
  ConfidenceLevel confidence_level = ConfidenceLevel::k95;
  /// Minimum |agreement| to call a trend increasing/decreasing.
  double min_agreement = 0.8;
  /// Maximum relative spread (max-min)/mean to call a trend stable.
  double stable_spread = 0.15;
  /// Only consider attributes marked ordered in the schema.
  bool ordered_attributes_only = true;
};

/// Detects the unit trend of `class_value` across the values of `attr`
/// using the 2-D rule cube (attr, class). Pairs of values whose Wald
/// intervals overlap count as ties.
Result<Trend> DetectTrend(const CubeStore& store, int attr,
                          ValueCode class_value, const TrendOptions& options);

/// Trends for every (attribute, class) combination that qualifies.
Result<std::vector<Trend>> MineTrends(const CubeStore& store,
                                      const TrendOptions& options);

}  // namespace opmap

#endif  // OPMAP_GI_TREND_H_
