#include "opmap/gi/influence.h"

#include <algorithm>

#include "opmap/stats/contingency.h"

namespace opmap {

Result<std::vector<AttributeInfluence>> RankInfluentialAttributes(
    const CubeStore& store) {
  std::vector<AttributeInfluence> out;
  const Schema& schema = store.schema();
  for (int attr : store.attributes()) {
    OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(attr));
    const int m = cube->dim_size(0);
    const int nc = schema.num_classes();
    ContingencyTable table(m, nc);
    for (ValueCode v = 0; v < m; ++v) {
      for (ValueCode c = 0; c < nc; ++c) {
        table.set(v, c, cube->count({v, c}));
      }
    }
    AttributeInfluence inf;
    inf.attribute = attr;
    inf.chi_square = ChiSquareStatistic(table);
    inf.p_value = ChiSquarePValue(inf.chi_square, (m - 1) * (nc - 1));
    inf.cramers_v = CramersV(table);
    inf.information_gain_bits = InformationGainBits(table);
    out.push_back(inf);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const AttributeInfluence& a,
                      const AttributeInfluence& b) {
                     return a.cramers_v > b.cramers_v;
                   });
  return out;
}

}  // namespace opmap
