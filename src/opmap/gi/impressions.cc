#include "opmap/gi/impressions.h"

#include <algorithm>

#include "opmap/common/string_util.h"

namespace opmap {

Result<std::vector<ExceptionCell>> MineInteractions(
    const CubeStore& store, const ExceptionOptions& options,
    int max_results) {
  std::vector<ExceptionCell> out;
  const auto& attrs = store.attributes();
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      OPMAP_ASSIGN_OR_RETURN(
          std::vector<ExceptionCell> cells,
          MinePairExceptions(store, attrs[i], attrs[j], options));
      out.insert(out.end(), cells.begin(), cells.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ExceptionCell& a, const ExceptionCell& b) {
                     return a.significance > b.significance;
                   });
  if (max_results > 0 && static_cast<int>(out.size()) > max_results) {
    out.resize(static_cast<size_t>(max_results));
  }
  return out;
}

Result<GeneralImpressions> MineGeneralImpressions(const CubeStore& store,
                                                  const GiOptions& options) {
  GeneralImpressions gi;
  OPMAP_ASSIGN_OR_RETURN(gi.influence, RankInfluentialAttributes(store));
  if (options.top_influence > 0 &&
      static_cast<int>(gi.influence.size()) > options.top_influence) {
    gi.influence.resize(static_cast<size_t>(options.top_influence));
  }
  OPMAP_ASSIGN_OR_RETURN(gi.trends, MineTrends(store, options.trends));
  OPMAP_ASSIGN_OR_RETURN(gi.exceptions,
                         MineAttributeExceptions(store, options.exceptions));
  if (options.mine_interactions) {
    OPMAP_ASSIGN_OR_RETURN(
        gi.interactions,
        MineInteractions(store, options.exceptions,
                         options.top_interactions));
  }
  return gi;
}

std::string FormatGeneralImpressions(const GeneralImpressions& gi,
                                     const Schema& schema) {
  std::string out = "=== General impressions ===\n";
  out += "Influential attributes (Cramer's V):\n";
  for (size_t i = 0; i < gi.influence.size(); ++i) {
    const AttributeInfluence& inf = gi.influence[i];
    out += "  " + std::to_string(i + 1) + ". " +
           schema.attribute(inf.attribute).name() + "  V=" +
           FormatDouble(inf.cramers_v, 3) + "  p=" +
           FormatDouble(inf.p_value, 4) + "\n";
  }

  out += "\nTrends:\n";
  for (const Trend& t : gi.trends) {
    out += "  " + schema.attribute(t.attribute).name() + " / " +
           schema.class_attribute().label(t.class_value) + ": " +
           TrendDirectionName(t.direction) + " (agreement " +
           FormatDouble(t.agreement, 2) + ")\n";
  }
  if (gi.trends.empty()) out += "  (none)\n";

  auto append_cells = [&](const std::vector<ExceptionCell>& cells) {
    for (const ExceptionCell& e : cells) {
      const Attribute& a = schema.attribute(e.attribute);
      out += "  " + a.name() + "=" + a.label(e.value);
      if (e.attribute2 >= 0) {
        const Attribute& b = schema.attribute(e.attribute2);
        out += ", " + b.name() + "=" + b.label(e.value2);
      }
      out += " -> " + schema.class_attribute().label(e.class_value) + ": " +
             FormatPercent(e.confidence, 2) + " vs expected " +
             FormatPercent(e.expected, 2) + " (" +
             FormatDouble(e.significance, 1) + "x margin)\n";
    }
    if (cells.empty()) out += "  (none)\n";
  };

  out += "\nExceptions (one condition):\n";
  append_cells(gi.exceptions);
  if (!gi.interactions.empty()) {
    out += "\nInteractions (two conditions):\n";
    append_cells(gi.interactions);
  }
  return out;
}

}  // namespace opmap
