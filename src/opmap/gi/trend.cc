#include "opmap/gi/trend.h"

#include <algorithm>
#include <cmath>

namespace opmap {

const char* TrendDirectionName(TrendDirection d) {
  switch (d) {
    case TrendDirection::kNone:
      return "none";
    case TrendDirection::kIncreasing:
      return "increasing";
    case TrendDirection::kDecreasing:
      return "decreasing";
    case TrendDirection::kStable:
      return "stable";
  }
  return "none";
}

Result<Trend> DetectTrend(const CubeStore& store, int attr,
                          ValueCode class_value,
                          const TrendOptions& options) {
  const Schema& schema = store.schema();
  if (class_value < 0 || class_value >= schema.num_classes()) {
    return Status::OutOfRange("class value out of range");
  }
  OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(attr));

  Trend trend;
  trend.attribute = attr;
  trend.class_value = class_value;

  const int m = cube->dim_size(0);
  std::vector<ProportionInterval> intervals(static_cast<size_t>(m));
  trend.confidences.resize(static_cast<size_t>(m));
  for (ValueCode v = 0; v < m; ++v) {
    const int64_t body = cube->MarginCount({v, 0}, 1);
    const int64_t hits = cube->count({v, class_value});
    intervals[static_cast<size_t>(v)] =
        WaldInterval(hits, body, options.confidence_level);
    trend.confidences[static_cast<size_t>(v)] =
        intervals[static_cast<size_t>(v)].proportion;
  }
  if (m < 2) {
    trend.direction = TrendDirection::kNone;
    return trend;
  }

  // Kendall-style agreement over all value pairs; pairs with overlapping
  // intervals are ties.
  int64_t concordant = 0;
  int64_t discordant = 0;
  int64_t pairs = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      ++pairs;
      const auto& a = intervals[static_cast<size_t>(i)];
      const auto& b = intervals[static_cast<size_t>(j)];
      if (a.high < b.low) {
        ++concordant;
      } else if (b.high < a.low) {
        ++discordant;
      }
    }
  }
  trend.agreement = pairs > 0 ? static_cast<double>(concordant - discordant) /
                                    static_cast<double>(pairs)
                              : 0.0;

  const auto [lo, hi] =
      std::minmax_element(trend.confidences.begin(), trend.confidences.end());
  double mean = 0;
  for (double c : trend.confidences) mean += c;
  mean /= static_cast<double>(m);
  const double spread = mean > 0 ? (*hi - *lo) / mean : 0.0;

  if (trend.agreement >= options.min_agreement) {
    trend.direction = TrendDirection::kIncreasing;
  } else if (-trend.agreement >= options.min_agreement) {
    trend.direction = TrendDirection::kDecreasing;
  } else if (spread <= options.stable_spread) {
    trend.direction = TrendDirection::kStable;
  } else {
    trend.direction = TrendDirection::kNone;
  }
  return trend;
}

Result<std::vector<Trend>> MineTrends(const CubeStore& store,
                                      const TrendOptions& options) {
  std::vector<Trend> out;
  const Schema& schema = store.schema();
  for (int attr : store.attributes()) {
    if (options.ordered_attributes_only && !schema.attribute(attr).ordered()) {
      continue;
    }
    for (ValueCode c = 0; c < schema.num_classes(); ++c) {
      OPMAP_ASSIGN_OR_RETURN(Trend t, DetectTrend(store, attr, c, options));
      if (t.direction != TrendDirection::kNone) out.push_back(std::move(t));
    }
  }
  return out;
}

}  // namespace opmap
