#include "opmap/gi/exceptions.h"

#include <algorithm>
#include <cmath>

#include "opmap/stats/multiple_testing.h"

namespace opmap {

namespace {

// Applies the configured selection rule: either the raw significance
// threshold or BH FDR control over the candidate cells.
void SelectCells(std::vector<ExceptionCell>* cells,
                 const ExceptionOptions& options) {
  if (options.fdr > 0) {
    std::vector<double> p_values;
    p_values.reserve(cells->size());
    const double z = ZValue(options.confidence_level);
    for (const ExceptionCell& c : *cells) {
      p_values.push_back(PValueFromMarginMultiples(c.significance, z));
    }
    const std::vector<size_t> keep =
        BenjaminiHochbergSelect(p_values, options.fdr);
    std::vector<ExceptionCell> selected;
    selected.reserve(keep.size());
    for (size_t i : keep) selected.push_back((*cells)[i]);
    *cells = std::move(selected);
    return;
  }
  cells->erase(std::remove_if(cells->begin(), cells->end(),
                              [&](const ExceptionCell& c) {
                                return c.significance <
                                       options.min_significance;
                              }),
               cells->end());
}

void SortAndTrim(std::vector<ExceptionCell>* cells, int max_results) {
  std::stable_sort(cells->begin(), cells->end(),
                   [](const ExceptionCell& a, const ExceptionCell& b) {
                     return a.significance > b.significance;
                   });
  if (max_results > 0 &&
      static_cast<int>(cells->size()) > max_results) {
    cells->resize(static_cast<size_t>(max_results));
  }
}

}  // namespace

Result<std::vector<ExceptionCell>> MineAttributeExceptions(
    const CubeStore& store, const ExceptionOptions& options) {
  std::vector<ExceptionCell> out;
  const Schema& schema = store.schema();
  const int64_t total = store.num_records();
  if (total == 0) return out;
  const auto& class_counts = store.class_counts();

  for (int attr : store.attributes()) {
    OPMAP_ASSIGN_OR_RETURN(const RuleCube* cube, store.AttrCube(attr));
    const int m = cube->dim_size(0);
    for (ValueCode v = 0; v < m; ++v) {
      const int64_t body = cube->MarginCount({v, 0}, 1);
      if (body < options.min_body_count) continue;
      for (ValueCode c = 0; c < schema.num_classes(); ++c) {
        const int64_t hits = cube->count({v, c});
        const double cf =
            static_cast<double>(hits) / static_cast<double>(body);
        const double expected =
            static_cast<double>(class_counts[static_cast<size_t>(c)]) /
            static_cast<double>(total);
        const double margin =
            WaldIntervalFromProportion(cf, body, options.confidence_level)
                .margin;
        const double deviation = cf - expected;
        const double significance =
            margin > 0 ? std::fabs(deviation) / margin
                       : (deviation == 0 ? 0.0 : 1e9);
        ExceptionCell cell;
        cell.attribute = attr;
        cell.value = v;
        cell.class_value = c;
        cell.body_count = body;
        cell.confidence = cf;
        cell.expected = expected;
        cell.deviation = deviation;
        cell.significance = significance;
        out.push_back(cell);
      }
    }
  }
  SelectCells(&out, options);
  SortAndTrim(&out, options.max_results);
  return out;
}

Result<std::vector<ExceptionCell>> MinePairExceptions(
    const CubeStore& store, int attr_a, int attr_b,
    const ExceptionOptions& options) {
  std::vector<ExceptionCell> out;
  const Schema& schema = store.schema();
  const int64_t total = store.num_records();
  if (total == 0) return out;
  const auto& class_counts = store.class_counts();

  OPMAP_ASSIGN_OR_RETURN(const RuleCube* pair, store.PairCube(attr_a, attr_b));
  OPMAP_ASSIGN_OR_RETURN(const RuleCube* ca, store.AttrCube(attr_a));
  OPMAP_ASSIGN_OR_RETURN(const RuleCube* cb, store.AttrCube(attr_b));
  const int da = pair->FindDim(attr_a);
  const int db = pair->FindDim(attr_b);
  const int ma = pair->dim_size(da);
  const int mb = pair->dim_size(db);

  std::vector<ValueCode> cell(3, 0);
  for (ValueCode va = 0; va < ma; ++va) {
    for (ValueCode vb = 0; vb < mb; ++vb) {
      cell[static_cast<size_t>(da)] = va;
      cell[static_cast<size_t>(db)] = vb;
      cell[2] = 0;
      const int64_t body = pair->MarginCount(cell, 2);
      if (body < options.min_body_count) continue;
      for (ValueCode c = 0; c < schema.num_classes(); ++c) {
        cell[2] = c;
        const int64_t hits = pair->count(cell);
        const double cf =
            static_cast<double>(hits) / static_cast<double>(body);
        const double overall =
            static_cast<double>(class_counts[static_cast<size_t>(c)]) /
            static_cast<double>(total);
        const int64_t body_a = ca->MarginCount({va, 0}, 1);
        const int64_t body_b = cb->MarginCount({vb, 0}, 1);
        const double cf_a =
            body_a > 0 ? static_cast<double>(ca->count({va, c})) /
                             static_cast<double>(body_a)
                       : 0.0;
        const double cf_b =
            body_b > 0 ? static_cast<double>(cb->count({vb, c})) /
                             static_cast<double>(body_b)
                       : 0.0;
        const double expected =
            overall > 0 ? std::min(1.0, cf_a * cf_b / overall) : 0.0;
        const double margin =
            WaldIntervalFromProportion(cf, body, options.confidence_level)
                .margin;
        const double deviation = cf - expected;
        const double significance =
            margin > 0 ? std::fabs(deviation) / margin
                       : (deviation == 0 ? 0.0 : 1e9);
        ExceptionCell e;
        e.attribute = attr_a;
        e.value = va;
        e.attribute2 = attr_b;
        e.value2 = vb;
        e.class_value = c;
        e.body_count = body;
        e.confidence = cf;
        e.expected = expected;
        e.deviation = deviation;
        e.significance = significance;
        out.push_back(e);
      }
    }
  }
  SelectCells(&out, options);
  SortAndTrim(&out, options.max_results);
  return out;
}

}  // namespace opmap
