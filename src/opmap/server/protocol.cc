#include "opmap/server/protocol.h"

#include <cstring>
#include <sstream>

#include "opmap/common/io.h"
#include "opmap/common/serde.h"
#include "opmap/ingest/wal.h"

namespace opmap::server {

namespace {

// Body decoders share one guard: every decoder must consume its body from
// a reader whose limit is the body size, so corrupt length fields can
// never allocate more than the bytes actually received.
BinaryReader MakeReader(std::istringstream* in, const std::string& body) {
  return BinaryReader(in, body.size());
}

Result<std::vector<std::string>> ReadStringVector(BinaryReader* r,
                                                  size_t max_items) {
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, r->ReadU64());
  if (n > max_items) {
    return Status::IOError("string vector length exceeds limit");
  }
  std::vector<std::string> items;
  items.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    OPMAP_ASSIGN_OR_RETURN(std::string s, r->ReadString());
    items.push_back(std::move(s));
  }
  return items;
}

void WriteStringVector(BinaryWriter* w, const std::vector<std::string>& v) {
  w->WriteU64(v.size());
  for (const std::string& s : v) w->WriteString(s);
}

// Requires the whole body to have been consumed: trailing bytes after a
// well-formed prefix are a malformed request, not padding.
Status ExpectFullyConsumed(std::istringstream* in) {
  if (in->peek() != std::char_traits<char>::eof()) {
    return Status::InvalidArgument("trailing bytes after request body");
  }
  return Status::OK();
}

void WriteValueComparison(BinaryWriter* w, const ValueComparison& v) {
  w->WriteI32(v.value);
  w->WriteI64(v.n1);
  w->WriteI64(v.n2);
  w->WriteI64(v.n1_target);
  w->WriteI64(v.n2_target);
  w->WriteDouble(v.cf1);
  w->WriteDouble(v.cf2);
  w->WriteDouble(v.e1);
  w->WriteDouble(v.e2);
  w->WriteDouble(v.rcf1);
  w->WriteDouble(v.rcf2);
  w->WriteDouble(v.f);
  w->WriteDouble(v.w);
}

void WriteAttributeComparison(BinaryWriter* w, const AttributeComparison& a) {
  w->WriteI32(a.attribute);
  w->WriteDouble(a.interestingness);
  w->WriteDouble(a.normalized);
  w->WriteU8(a.is_property ? 1 : 0);
  w->WriteDouble(a.property_ratio);
  w->WriteU64(a.values.size());
  for (const ValueComparison& v : a.values) WriteValueComparison(w, v);
}

void WriteExceptionCell(BinaryWriter* w, const ExceptionCell& e) {
  w->WriteI32(e.attribute);
  w->WriteI32(e.value);
  w->WriteI32(e.attribute2);
  w->WriteI32(e.value2);
  w->WriteI32(e.class_value);
  w->WriteI64(e.body_count);
  w->WriteDouble(e.confidence);
  w->WriteDouble(e.expected);
  w->WriteDouble(e.deviation);
  w->WriteDouble(e.significance);
}

}  // namespace

const char* OpName(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kSchema:
      return "schema";
    case Op::kCompare:
      return "compare";
    case Op::kAllPairs:
      return "pairs";
    case Op::kGi:
      return "gi";
    case Op::kSession:
      return "session";
    case Op::kRender:
      return "render";
    case Op::kStats:
      return "stats";
    case Op::kReload:
      return "reload";
  }
  return "unknown";
}

bool IsKnownOp(uint8_t op) { return op <= static_cast<uint8_t>(Op::kReload); }

const char* RespStatusName(RespStatus status) {
  switch (status) {
    case RespStatus::kOk:
      return "OK";
    case RespStatus::kRetryLater:
      return "RETRY_LATER";
    case RespStatus::kBadRequest:
      return "BAD_REQUEST";
    case RespStatus::kError:
      return "ERROR";
    case RespStatus::kShuttingDown:
      return "SHUTTING_DOWN";
  }
  return "INVALID";
}

std::string EncodeFrame(uint64_t request_id, const std::string& payload) {
  static_assert(kFrameHeaderBytes == kWalFrameHeaderBytes,
                "server frames reuse the WAL layout");
  return EncodeWalFrame(request_id, payload);
}

FrameDecode DecodeFrame(const char* data, size_t size, uint32_t max_payload,
                        uint64_t* id, std::string* payload, size_t* consumed,
                        std::string* error) {
  *id = 0;
  if (size < sizeof(uint32_t)) return FrameDecode::kNeedMore;
  uint32_t len;
  std::memcpy(&len, data, sizeof(len));
  if (size >= kFrameHeaderBytes) {
    // Best-effort id echo even when the length below is rejected.
    std::memcpy(id, data + sizeof(uint32_t), sizeof(*id));
  }
  if (len > max_payload) {
    *error = "frame length " + std::to_string(len) + " exceeds limit " +
             std::to_string(max_payload);
    return FrameDecode::kCorrupt;
  }
  if (size < kFrameHeaderBytes) return FrameDecode::kNeedMore;
  if (size < kFrameHeaderBytes + len) return FrameDecode::kNeedMore;
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data + sizeof(uint32_t) + sizeof(uint64_t),
              sizeof(stored_crc));
  uint32_t crc = Crc32c(data + sizeof(uint32_t), sizeof(uint64_t));
  crc = Crc32c(data + kFrameHeaderBytes, len, crc);
  if (crc != stored_crc) {
    *error = "frame CRC mismatch";
    return FrameDecode::kCorrupt;
  }
  payload->assign(data + kFrameHeaderBytes, len);
  *consumed = kFrameHeaderBytes + len;
  return FrameDecode::kFrame;
}

// --------------------------- request bodies --------------------------------

std::string EncodeRequest(Op op, const std::string& body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(op));
  payload += body;
  return payload;
}

std::string EncodeCompareRequest(const CompareRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI32(req.attribute);
  w.WriteI32(req.value_a);
  w.WriteI32(req.value_b);
  w.WriteI32(req.target_class);
  w.WriteI64(req.min_population);
  return out.str();
}

Result<CompareRequest> DecodeCompareRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  CompareRequest req;
  OPMAP_ASSIGN_OR_RETURN(req.attribute, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.value_a, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.value_b, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.target_class, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.min_population, r.ReadI64());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

std::string EncodeAllPairsRequest(const AllPairsRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI32(req.attribute);
  w.WriteI32(req.target_class);
  w.WriteI64(req.min_population);
  return out.str();
}

Result<AllPairsRequest> DecodeAllPairsRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  AllPairsRequest req;
  OPMAP_ASSIGN_OR_RETURN(req.attribute, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.target_class, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.min_population, r.ReadI64());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

std::string EncodeGiRequest(const GiRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI32(req.top_influence);
  w.WriteU8(req.mine_interactions ? 1 : 0);
  w.WriteI32(req.top_interactions);
  return out.str();
}

Result<GiRequest> DecodeGiRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  GiRequest req;
  OPMAP_ASSIGN_OR_RETURN(req.top_influence, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(uint8_t mine, r.ReadU8());
  req.mine_interactions = mine != 0;
  OPMAP_ASSIGN_OR_RETURN(req.top_interactions, r.ReadI32());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

std::string EncodeSessionRequest(const SessionRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(req.verb));
  w.WriteString(req.attribute);
  WriteStringVector(&w, req.values);
  return out.str();
}

Result<SessionRequest> DecodeSessionRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  SessionRequest req;
  OPMAP_ASSIGN_OR_RETURN(uint8_t verb, r.ReadU8());
  if (verb > static_cast<uint8_t>(SessionVerb::kReset)) {
    return Status::InvalidArgument("unknown session verb " +
                                   std::to_string(verb));
  }
  req.verb = static_cast<SessionVerb>(verb);
  OPMAP_ASSIGN_OR_RETURN(req.attribute, r.ReadString());
  OPMAP_ASSIGN_OR_RETURN(req.values, ReadStringVector(&r, body.size()));
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

std::string EncodeRenderRequest(const RenderRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI32(req.max_rows);
  w.WriteI32(req.bar_width);
  return out.str();
}

Result<RenderRequest> DecodeRenderRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  RenderRequest req;
  OPMAP_ASSIGN_OR_RETURN(req.max_rows, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(req.bar_width, r.ReadI32());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

std::string EncodeReloadRequest(const ReloadRequest& req) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteString(req.path);
  return out.str();
}

Result<ReloadRequest> DecodeReloadRequest(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  ReloadRequest req;
  OPMAP_ASSIGN_OR_RETURN(req.path, r.ReadString());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return req;
}

// --------------------------- response bodies -------------------------------

std::string EncodeResponse(RespStatus status, const std::string& body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(status));
  payload += body;
  return payload;
}

std::string EncodeErrorBody(StatusCode code, const std::string& message) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU8(static_cast<uint8_t>(code));
  w.WriteString(message);
  return out.str();
}

Result<DecodedResponse> DecodeResponse(const std::string& payload) {
  if (payload.empty()) {
    return Status::IOError("empty response payload");
  }
  const uint8_t status = static_cast<uint8_t>(payload[0]);
  if (status > static_cast<uint8_t>(RespStatus::kShuttingDown)) {
    return Status::IOError("unknown response status byte " +
                           std::to_string(status));
  }
  DecodedResponse resp;
  resp.status = static_cast<RespStatus>(status);
  resp.body = payload.substr(1);
  return resp;
}

Status DecodeErrorBody(const std::string& body, Status* decoded) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  OPMAP_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  OPMAP_ASSIGN_OR_RETURN(std::string message, r.ReadString());
  if (code > static_cast<uint8_t>(StatusCode::kFailedPrecondition)) {
    return Status::IOError("unknown status code in error body");
  }
  *decoded = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

std::string EncodeComparisonResult(const ComparisonResult& result) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI32(result.spec.attribute);
  w.WriteI32(result.spec.value_a);
  w.WriteI32(result.spec.value_b);
  w.WriteI32(result.spec.target_class);
  w.WriteString(result.label_a);
  w.WriteString(result.label_b);
  w.WriteU8(result.swapped ? 1 : 0);
  w.WriteI64(result.n_d1);
  w.WriteI64(result.n_d2);
  w.WriteDouble(result.cf1);
  w.WriteDouble(result.cf2);
  w.WriteU64(result.ranked.size());
  for (const AttributeComparison& a : result.ranked) {
    WriteAttributeComparison(&w, a);
  }
  w.WriteU64(result.properties.size());
  for (const AttributeComparison& a : result.properties) {
    WriteAttributeComparison(&w, a);
  }
  WriteStringVector(&w, result.warnings);
  return out.str();
}

std::string EncodePairSummaries(const std::vector<PairSummary>& pairs) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(pairs.size());
  for (const PairSummary& p : pairs) {
    w.WriteI32(p.value_a);
    w.WriteI32(p.value_b);
    w.WriteDouble(p.cf_a);
    w.WriteDouble(p.cf_b);
    w.WriteI32(p.top_attribute);
    w.WriteDouble(p.top_interestingness);
    w.WriteDouble(p.top_normalized);
    w.WriteU8(p.skipped ? 1 : 0);
  }
  return out.str();
}

std::string EncodeGeneralImpressions(const GeneralImpressions& gi) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(gi.influence.size());
  for (const AttributeInfluence& a : gi.influence) {
    w.WriteI32(a.attribute);
    w.WriteDouble(a.chi_square);
    w.WriteDouble(a.p_value);
    w.WriteDouble(a.cramers_v);
    w.WriteDouble(a.information_gain_bits);
  }
  w.WriteU64(gi.trends.size());
  for (const Trend& t : gi.trends) {
    w.WriteI32(t.attribute);
    w.WriteI32(t.class_value);
    w.WriteU8(static_cast<uint8_t>(t.direction));
    w.WriteDoubleVector(t.confidences);
    w.WriteDouble(t.agreement);
  }
  w.WriteU64(gi.exceptions.size());
  for (const ExceptionCell& e : gi.exceptions) WriteExceptionCell(&w, e);
  w.WriteU64(gi.interactions.size());
  for (const ExceptionCell& e : gi.interactions) WriteExceptionCell(&w, e);
  return out.str();
}

std::string EncodeSchemaInfo(const CubeStore& store, uint64_t generation) {
  const Schema& schema = store.schema();
  std::vector<bool> materialized(schema.num_attributes(), false);
  for (int attr : store.attributes()) {
    materialized[static_cast<size_t>(attr)] = true;
  }
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteI64(store.num_records());
  w.WriteI32(schema.class_index());
  w.WriteU64(generation);
  w.WriteU64(static_cast<uint64_t>(schema.num_attributes()));
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const Attribute& attr = schema.attribute(i);
    w.WriteString(attr.name());
    w.WriteU8(attr.is_categorical() ? 1 : 0);
    w.WriteU8(materialized[static_cast<size_t>(i)] ? 1 : 0);
    WriteStringVector(&w, attr.labels());
  }
  return out.str();
}

Result<SchemaInfo> DecodeSchemaInfo(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  SchemaInfo info;
  OPMAP_ASSIGN_OR_RETURN(info.num_records, r.ReadI64());
  OPMAP_ASSIGN_OR_RETURN(info.class_index, r.ReadI32());
  OPMAP_ASSIGN_OR_RETURN(info.store_generation, r.ReadU64());
  OPMAP_ASSIGN_OR_RETURN(uint64_t n, r.ReadU64());
  if (n > body.size()) {
    return Status::IOError("attribute count exceeds body size");
  }
  for (uint64_t i = 0; i < n; ++i) {
    SchemaInfo::AttrInfo attr;
    OPMAP_ASSIGN_OR_RETURN(attr.name, r.ReadString());
    OPMAP_ASSIGN_OR_RETURN(uint8_t cat, r.ReadU8());
    attr.is_categorical = cat != 0;
    OPMAP_ASSIGN_OR_RETURN(uint8_t mat, r.ReadU8());
    attr.materialized = mat != 0;
    OPMAP_ASSIGN_OR_RETURN(attr.labels, ReadStringVector(&r, body.size()));
    info.attributes.push_back(std::move(attr));
  }
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return info;
}

std::string EncodeReloadInfo(const ReloadInfo& info) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU64(info.store_generation);
  w.WriteI64(info.num_records);
  return out.str();
}

Result<ReloadInfo> DecodeReloadInfo(const std::string& body) {
  std::istringstream in(body);
  BinaryReader r = MakeReader(&in, body);
  ReloadInfo info;
  OPMAP_ASSIGN_OR_RETURN(info.store_generation, r.ReadU64());
  OPMAP_ASSIGN_OR_RETURN(info.num_records, r.ReadI64());
  OPMAP_RETURN_NOT_OK(ExpectFullyConsumed(&in));
  return info;
}

}  // namespace opmap::server
