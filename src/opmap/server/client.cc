#include "opmap/server/client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "opmap/server/net.h"

namespace opmap::server {

std::string Reply::ErrorText() const {
  Status decoded;
  if (DecodeErrorBody(body, &decoded).ok()) return decoded.ToString();
  return std::string(RespStatusName(status));
}

Status Reply::ToStatus() const {
  if (ok()) return Status::OK();
  Status decoded;
  if (DecodeErrorBody(body, &decoded).ok()) return decoded;
  return Status::Internal(std::string("server replied ") +
                          RespStatusName(status));
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& address,
                                                int timeout_ms) {
  OPMAP_ASSIGN_OR_RETURN(Address addr, ParseAddress(address));
  OPMAP_ASSIGN_OR_RETURN(int fd, ConnectTo(addr));
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendRaw(const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Result<Reply> Client::ReadReply() {
  for (;;) {
    uint64_t request_id = 0;
    std::string payload;
    size_t consumed = 0;
    std::string error;
    const FrameDecode rc =
        DecodeFrame(in_.data(), in_.size(), kMaxResponseBytes, &request_id,
                    &payload, &consumed, &error);
    if (rc == FrameDecode::kCorrupt) {
      return Status::IOError("corrupt response frame: " + error);
    }
    if (rc == FrameDecode::kFrame) {
      in_.erase(0, consumed);
      OPMAP_ASSIGN_OR_RETURN(DecodedResponse resp, DecodeResponse(payload));
      Reply reply;
      reply.request_id = request_id;
      reply.status = resp.status;
      reply.body = std::move(resp.body);
      return reply;
    }
    char buf[64 << 10];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("timed out waiting for response");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Result<Reply> Client::Call(Op op, const std::string& body) {
  const uint64_t id = next_request_id_++;
  OPMAP_RETURN_NOT_OK(SendRaw(EncodeFrame(id, EncodeRequest(op, body))));
  OPMAP_ASSIGN_OR_RETURN(Reply reply, ReadReply());
  if (reply.request_id != id) {
    return Status::Internal("response id " + std::to_string(reply.request_id) +
                            " does not match request id " +
                            std::to_string(id));
  }
  return reply;
}

}  // namespace opmap::server
