#ifndef OPMAP_SERVER_CLIENT_H_
#define OPMAP_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "opmap/common/status.h"
#include "opmap/server/protocol.h"

namespace opmap::server {

/// One decoded response from the daemon.
struct Reply {
  uint64_t request_id = 0;
  RespStatus status = RespStatus::kError;
  std::string body;

  bool ok() const { return status == RespStatus::kOk; }
  /// For non-OK replies carrying an error body: "<code>: <message>".
  std::string ErrorText() const;
  /// Lifts a non-OK reply into a Status (OK replies map to Status::OK).
  Status ToStatus() const;
};

/// A blocking opmapd client: one connection, synchronous request/response.
/// Used by `opmap loadgen` (one Client per worker thread; a Client itself
/// is not thread-safe) and by the protocol tests, which also use SendRaw
/// to inject malformed bytes.
class Client {
 public:
  /// Connects to an address in listen-option syntax ("unix:<path>",
  /// "<host>:<port>"). `timeout_ms` bounds each send/receive syscall
  /// (0 = no timeout).
  static Result<std::unique_ptr<Client>> Connect(const std::string& address,
                                                 int timeout_ms = 10000);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends `op` with an already-encoded request body and waits for the
  /// matching reply. Fails if the echoed request id does not match.
  Result<Reply> Call(Op op, const std::string& body = "");

  // Typed conveniences (encode + Call).
  Result<Reply> Ping() { return Call(Op::kPing); }
  Result<Reply> Compare(const CompareRequest& req) {
    return Call(Op::kCompare, EncodeCompareRequest(req));
  }
  Result<Reply> AllPairs(const AllPairsRequest& req) {
    return Call(Op::kAllPairs, EncodeAllPairsRequest(req));
  }
  Result<Reply> Gi(const GiRequest& req) {
    return Call(Op::kGi, EncodeGiRequest(req));
  }
  Result<Reply> Session(const SessionRequest& req) {
    return Call(Op::kSession, EncodeSessionRequest(req));
  }
  Result<Reply> Render(const RenderRequest& req) {
    return Call(Op::kRender, EncodeRenderRequest(req));
  }
  Result<Reply> Stats() { return Call(Op::kStats); }
  Result<Reply> Reload(const ReloadRequest& req) {
    return Call(Op::kReload, EncodeReloadRequest(req));
  }

  /// Writes raw bytes to the socket without framing — protocol-robustness
  /// tests use this to deliver truncated and corrupted frames.
  Status SendRaw(const std::string& bytes);

  /// Reads the next response frame regardless of what was sent (pairs with
  /// SendRaw). Returns IOError on timeout/EOF.
  Result<Reply> ReadReply();

 private:
  Client() = default;

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string in_;  // buffered unparsed response bytes
};

}  // namespace opmap::server

#endif  // OPMAP_SERVER_CLIENT_H_
