#include "opmap/server/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace opmap::server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<int> NewSocket(int domain) {
  const int fd = ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  return fd;
}

// Binds/parses only numeric IPv4 literals: the serving tier is reached by
// loopback or explicit address, never by resolving names (keeps the net
// layer free of getaddrinfo and its blocking lookups).
Result<in_addr> ParseIPv4(const std::string& host) {
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address '" + host +
                                   "' (numeric addresses only)");
  }
  return addr;
}

}  // namespace

Result<Address> ParseAddress(const std::string& text) {
  Address addr;
  if (text.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.path = text.substr(5);
    if (addr.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in '" + text +
                                     "'");
    }
    sockaddr_un probe{};
    if (addr.path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("unix socket path too long (" +
                                     std::to_string(addr.path.size()) +
                                     " bytes): " + addr.path);
    }
    return addr;
  }
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "invalid address '" + text +
        "' (expected unix:<path>, <host>:<port> or :<port>)");
  }
  if (colon > 0) addr.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (port_text.empty()) {
    return Status::InvalidArgument("missing port in address '" + text + "'");
  }
  for (char c : port_text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid port '" + port_text + "'");
    }
  }
  const long port = std::strtol(port_text.c_str(), nullptr, 10);
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " + port_text);
  }
  addr.port = static_cast<int>(port);
  OPMAP_RETURN_NOT_OK(ParseIPv4(addr.host).status());
  return addr;
}

Result<int> ListenOn(const Address& address, std::string* bound,
                     bool reuse_port) {
  int fd = -1;
  if (address.is_unix) {
    if (reuse_port) {
      return Status::FailedPrecondition(
          "SO_REUSEPORT sharding applies to TCP listeners only");
    }
    OPMAP_ASSIGN_OR_RETURN(fd, NewSocket(AF_UNIX));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    // A previous daemon's socket file would make bind fail; it is dead
    // weight by definition (connect to a live one fails loudly instead).
    ::unlink(address.path.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      Status st = Errno("bind " + address.path);
      ::close(fd);
      return st;
    }
    *bound = "unix:" + address.path;
  } else {
    OPMAP_ASSIGN_OR_RETURN(fd, NewSocket(AF_INET));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (reuse_port) {
#ifdef SO_REUSEPORT
      if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
          0) {
        Status st = Errno("setsockopt SO_REUSEPORT");
        ::close(fd);
        return st;
      }
#else
      ::close(fd);
      return Status::FailedPrecondition(
          "SO_REUSEPORT is not available on this platform");
#endif
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(address.port));
    OPMAP_ASSIGN_OR_RETURN(sa.sin_addr, ParseIPv4(address.host));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      Status st = Errno("bind " + address.host + ":" +
                        std::to_string(address.port));
      ::close(fd);
      return st;
    }
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
      Status st = Errno("getsockname");
      ::close(fd);
      return st;
    }
    *bound = address.host + ":" + std::to_string(ntohs(actual.sin_port));
  }
  if (::listen(fd, 128) != 0) {
    Status st = Errno("listen");
    ::close(fd);
    return st;
  }
  OPMAP_RETURN_NOT_OK(SetNonBlocking(fd, true));
  return fd;
}

Result<int> ConnectTo(const Address& address) {
  int fd = -1;
  if (address.is_unix) {
    OPMAP_ASSIGN_OR_RETURN(fd, NewSocket(AF_UNIX));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, address.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      Status st = Errno("connect " + address.path);
      ::close(fd);
      return st;
    }
  } else {
    OPMAP_ASSIGN_OR_RETURN(fd, NewSocket(AF_INET));
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(static_cast<uint16_t>(address.port));
    OPMAP_ASSIGN_OR_RETURN(sa.sin_addr, ParseIPv4(address.host));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      Status st = Errno("connect " + address.host + ":" +
                        std::to_string(address.port));
      ::close(fd);
      return st;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

Result<uint32_t> PeerUid(int fd) {
#if defined(__linux__)
  ucred cred{};
  socklen_t len = sizeof(cred);
  if (::getsockopt(fd, SOL_SOCKET, SO_PEERCRED, &cred, &len) != 0) {
    return Errno("getsockopt SO_PEERCRED");
  }
  return static_cast<uint32_t>(cred.uid);
#elif defined(__APPLE__) || defined(__FreeBSD__) || defined(__OpenBSD__) || \
    defined(__NetBSD__)
  uid_t uid = 0;
  gid_t gid = 0;
  if (::getpeereid(fd, &uid, &gid) != 0) return Errno("getpeereid");
  return static_cast<uint32_t>(uid);
#else
  (void)fd;
  return Status::FailedPrecondition(
      "peer credentials are not available on this platform");
#endif
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl F_GETFL");
  const int want = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) return Errno("fcntl F_SETFL");
  return Status::OK();
}

}  // namespace opmap::server
