#ifndef OPMAP_SERVER_LOADGEN_H_
#define OPMAP_SERVER_LOADGEN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "opmap/common/status.h"

namespace opmap::server {

/// Configuration of one `opmap loadgen` run.
struct LoadgenOptions {
  /// Daemon address in listen-option syntax ("unix:<path>", "host:port").
  std::string connect;
  /// Concurrent connections, each driven by its own thread and Client.
  int clients = 4;
  /// Wall-clock budget; the run stops at the deadline or after
  /// max_requests, whichever comes first.
  double duration_s = 5.0;
  /// Total request budget across all clients; 0 = duration only.
  int64_t max_requests = 0;
  /// Weighted op mix, "<op>:<weight>[,...]" over ops
  /// ping|compare|pairs|gi|render|stats|schema.
  std::string mix = "compare:8,pairs:1,gi:1,render:2";
  /// Seed for the deterministic per-thread schedules.
  uint64_t seed = 42;
  /// Open-loop mode: offered load in requests/second across all clients,
  /// issued at Poisson arrival times drawn from the deterministic
  /// generator (each thread runs an independent process at rate/clients;
  /// their superposition is Poisson at the full rate). Latency is
  /// measured from the *scheduled* arrival, so client-side queueing that
  /// builds when the daemon falls behind is charged to the response —
  /// the correction for coordinated omission. 0 = closed loop (each
  /// client issues its next request when the previous response arrives).
  double arrival_qps = 0.0;
  /// Samples scheduled (open loop) or started (closed loop) within this
  /// window after the run starts are excluded from recorded latencies and
  /// from achieved-QPS accounting: cold mmap faults and pool spin-up
  /// otherwise pollute p999.
  int warmup_ms = 500;
  /// Per-call socket timeout.
  int timeout_ms = 30000;
  /// Cube file for the in-process baseline (compare + encode on this
  /// process's CPU, no socket): the denominator of the wire-overhead
  /// ratio in docs/SERVING.md. Empty skips the baseline.
  std::string cubes_path;
  bool use_mmap = true;
  /// Iterations of the in-process baseline measurement.
  int local_iters = 200;
  bool verbose = false;
};

/// Results of a run. Latencies are microseconds, sorted ascending per op.
struct LoadgenReport {
  int64_t total_ok = 0;
  int64_t total_error = 0;
  int64_t retry_later = 0;
  double wall_s = 0.0;
  double qps = 0.0;  ///< OK responses per second across all clients
  /// The offered load of an open-loop run (LoadgenOptions.arrival_qps).
  double offered_qps = 0.0;
  /// OK responses per second within the post-warm-up measurement window —
  /// the throughput the daemon sustained at the offered load.
  double achieved_qps = 0.0;
  int64_t measured_ok = 0;    ///< OK responses inside the window
  int64_t measured_shed = 0;  ///< RETRY_LATER responses inside the window
  double measured_window_s = 0.0;
  std::map<std::string, std::vector<int64_t>> latencies_us;
  /// In-process warm compare p50 (us); < 0 when not measured.
  double local_compare_p50_us = -1.0;
  /// The daemon's own metrics snapshot (kStats), fetched after the run.
  std::string server_stats_json;
};

/// Nearest-rank percentile of an ascending-sorted sample; q in [0,1].
int64_t PercentileUs(const std::vector<int64_t>& sorted_us, double q);

/// Runs the load against a live daemon. Fails fast if the first
/// connection or the schema probe fails; per-request errors are counted,
/// not fatal.
Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options);

/// Human-readable per-op table (QPS, p50/p99/p999) for the CLI.
std::string FormatLoadgenReport(const LoadgenOptions& options,
                                const LoadgenReport& report);

/// Appends the run to `path` as bench records (docs/SERVING.md):
///   server/qps                 items_per_s = OK responses per second
///   server/<op>_p50|_p99|_p999 wall_ms = that percentile, per mixed op
///   server/local_compare_p50   the in-process baseline (when measured)
///   server/retry_later         items_per_s = sheds per second
/// The server/qps record embeds the daemon's stats snapshot.
Status WriteLoadgenBench(const std::string& path,
                         const LoadgenOptions& options,
                         const LoadgenReport& report);

/// Appends one open-loop sweep point to `path` (docs/SERVING.md):
///   server/sweep/<rate>_p50|_p99|_p999   wall_ms = percentile over all ops
///   server/sweep/<rate>_achieved_qps    items_per_s = sustained OK rate
///   server/sweep/<rate>_retry_later     items_per_s = shed rate
/// where <rate> is the offered load. Percentiles and rates cover only the
/// post-warm-up window. Sweep points deliberately do NOT write server/qps:
/// that record is the peak-throughput measurement check_bench.py compares
/// across --loops configurations.
Status WriteSweepBench(const std::string& path,
                       const LoadgenOptions& options,
                       const LoadgenReport& report);

}  // namespace opmap::server

#endif  // OPMAP_SERVER_LOADGEN_H_
