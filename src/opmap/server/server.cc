#include "opmap/server/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "opmap/common/metrics.h"
#include "opmap/common/trace.h"
#include "opmap/server/net.h"

namespace opmap::server {

namespace {

// server.* metric handles, resolved once (docs/OBSERVABILITY.md).
Counter* RequestsCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.requests");
  return c;
}
Counter* ResponsesOk() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.responses_ok");
  return c;
}
Counter* ResponsesError() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.responses_error");
  return c;
}
Counter* ShedCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.shed_retry_later");
  return c;
}
Counter* ProtocolErrors() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.protocol_errors");
  return c;
}
Counter* ConnectionsAccepted() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.connections_accepted");
  return c;
}
Counter* ConnectionsClosed() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.connections_closed");
  return c;
}
Counter* AuthRejected() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.auth_rejected");
  return c;
}
Counter* BytesRead() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.bytes_read");
  return c;
}
Counter* BytesWritten() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.bytes_written");
  return c;
}
Counter* ReloadsCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.reloads");
  return c;
}
Counter* ReloadFailures() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.reload_failures");
  return c;
}
Gauge* ConnectionsGauge() {
  static Gauge* const g =
      MetricsRegistry::Global()->gauge("server.connections");
  return g;
}
Gauge* InflightGauge() {
  static Gauge* const g = MetricsRegistry::Global()->gauge("server.inflight");
  return g;
}
Gauge* LoopsGauge() {
  static Gauge* const g = MetricsRegistry::Global()->gauge("server.loops");
  return g;
}
Histogram* RequestHistogram() {
  static Histogram* const h =
      MetricsRegistry::Global()->histogram("server.request_us");
  return h;
}
// Per-op latency histogram. Resolved lazily from worker threads, hence the
// atomic slots (registration is idempotent and returns a stable pointer,
// so losing the publication race is harmless).
Histogram* OpHistogram(Op op) {
  static std::atomic<Histogram*> cache[9] = {};
  const auto idx = static_cast<size_t>(op);
  Histogram* h = cache[idx].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = MetricsRegistry::Global()->histogram(
        std::string("server.request_us.") + OpName(op));
    cache[idx].store(h, std::memory_order_release);
  }
  return h;
}

RespStatus RespStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return RespStatus::kBadRequest;
    default:
      return RespStatus::kError;
  }
}

std::string ErrorResponse(const Status& status) {
  return EncodeResponse(RespStatusForError(status),
                        EncodeErrorBody(status.code(), status.message()));
}

// A request body that fails to decode is the client's fault no matter what
// code the decoder used internally — always BAD_REQUEST.
std::string BadRequestResponse(const Status& status) {
  return EncodeResponse(RespStatus::kBadRequest,
                        EncodeErrorBody(StatusCode::kInvalidArgument,
                                        status.message()));
}

std::string ShuttingDownBody() {
  return EncodeErrorBody(StatusCode::kFailedPrecondition,
                         "server is shutting down");
}

// The default loop count clamps hardware_concurrency to a modest ceiling
// (a daemon sharing the host with its own pool workers); explicit values
// may go higher for dedicated machines.
int EffectiveLoops(const ServerOptions& options) {
  if (options.loops > 0) return std::clamp(options.loops, 1, 64);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, 8);
}

// The signal-handler target. A plain atomic pointer: handlers may only
// call Server::Shutdown(), which is async-signal-safe by construction
// (one lock-free atomic store plus a write(2) per loop).
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void OpmapdSignalHandler(int /*signo*/) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->Shutdown();
}

}  // namespace

// One accepted socket, owned by exactly one EventLoop for its whole life.
// The loop thread owns every field except `session`, which the pool
// worker of the currently-executing session-bound op owns while
// `session_executing` is true — session ops execute one at a time with
// the connection otherwise quiesced, so the session needs no lock.
//
// Pipelining: every parsed frame is assigned a per-connection sequence
// number. Stateless ops execute concurrently (up to the pipelining
// depth); their responses land in `reorder` and are emitted strictly in
// sequence order, so the wire never reveals the concurrency.
class Connection {
 public:
  uint64_t id = 0;
  int fd = -1;
  std::string in;    // unparsed request bytes
  std::string out;   // encoded, unflushed response bytes
  size_t out_off = 0;
  struct PendingFrame {
    uint64_t seq = 0;
    uint64_t request_id = 0;
    std::string payload;
  };
  std::deque<PendingFrame> pending;  // parsed, not yet dispatched
  int executing = 0;                 // dispatched, completion outstanding
  bool session_executing = false;    // one of them is session-bound
  uint64_t next_seq = 1;             // assigned to frames as they parse
  uint64_t next_emit = 1;            // next response seq to put on the wire
  std::map<uint64_t, std::string> reorder;  // seq -> encoded response frame
  bool closing = false;  // close once everything queued is emitted+flushed
  bool dead = false;     // read/write failed; close at the next sweep
  std::unique_ptr<ExplorationSession> session;
  uint64_t session_generation = 0;

  bool FinishedFlushing() const { return out_off >= out.size(); }
};

// One poll(2) event loop: its own listener (SO_REUSEPORT mode) or a
// hand-off queue fed by loop 0, its own wake pipe, connections, zombies
// and completion queue. Loops share the Server's engine, admission
// counter and reload barrier; they never touch each other's connections.
class EventLoop {
 public:
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    bool ok = false;  // response status was OK (counted on the loop thread)
    bool is_session = false;
    std::string frame;  // fully encoded response frame
  };

  EventLoop(Server* server, int index) : server_(server), index_(index) {}

  ~EventLoop() {
    for (auto& [id, conn] : conns_) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    for (int fd : handoff_fds_) ::close(fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
    const int wfd = wake_write_fd_.exchange(-1, std::memory_order_acq_rel);
    if (wfd >= 0) ::close(wfd);
  }

  Status Init(int listen_fd) {
    listen_fd_ = listen_fd;
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::IOError(std::string("pipe: ") + std::strerror(errno));
    }
    OPMAP_RETURN_NOT_OK(SetNonBlocking(pipe_fds[0], true));
    OPMAP_RETURN_NOT_OK(SetNonBlocking(pipe_fds[1], true));
    wake_read_fd_ = pipe_fds[0];
    wake_write_fd_.store(pipe_fds[1], std::memory_order_release);
    return Status::OK();
  }

  int index() const { return index_; }
  const ServerStats& stats() const { return stats_; }
  const Status& status() const { return status_; }

  // Async-signal-safe: one atomic load plus a write(2). EAGAIN means the
  // pipe already has unread bytes — the loop will wake.
  void Wake() {
    const int fd = wake_write_fd_.load(std::memory_order_acquire);
    if (fd >= 0) {
      const char byte = 'w';
      [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
    }
  }

  // Called by loop 0 in hand-off mode; the fd's connection-count
  // reservation transfers with it.
  void PushHandoff(int fd) {
    {
      std::lock_guard<std::mutex> lock(handoff_mu_);
      handoff_fds_.push_back(fd);
    }
    Wake();
  }

  // Called by pool workers when a request finishes.
  void PostCompletion(Completion done) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(std::move(done));
    }
    Wake();
  }

  void Run();

  // Emits a response to a connection of this loop by id (reload replies
  // and drain cancellations route through here).
  void RespondToConn(uint64_t conn_id, uint64_t seq, uint64_t request_id,
                     RespStatus status, const std::string& body) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    EmitStatus(it->second.get(), seq, request_id, status, body);
    FlushConnection(it->second.get());
  }

  // The reload barrier this loop parked behind has dropped: re-run every
  // connection's dispatch queue.
  void ResumeAfterReload() {
    parked_for_reload_ = false;
    PumpAllConnections();
  }

 private:
  void AdoptFd(int fd);
  void AcceptConnections();
  void DrainHandoff(bool adopt);
  bool PeerAllowed(int fd);
  void ReadConnection(Connection* conn);
  void FlushConnection(Connection* conn);
  void SweepClosedConnections();
  void CloseConnection(uint64_t conn_id, const char* reason);
  void HandleFrame(Connection* conn, uint64_t request_id,
                   std::string payload);
  void PumpConnection(Connection* conn);
  void PumpAllConnections();
  void DrainCompletions();
  void Emit(Connection* conn, uint64_t seq, std::string frame);
  void EmitStatus(Connection* conn, uint64_t seq, uint64_t request_id,
                  RespStatus status, const std::string& body);
  void ShedFrame(Connection* conn, uint64_t seq, uint64_t request_id,
                 const char* why);
  void CountResponse(bool ok);
  void BeginDrain();

  Server* server_;
  const int index_;
  int listen_fd_ = -1;  // -1: this loop accepts via hand-off only
  int wake_read_fd_ = -1;
  std::atomic<int> wake_write_fd_{-1};

  std::mutex handoff_mu_;
  std::vector<int> handoff_fds_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  // Connections that closed while requests were executing: workers still
  // reference the Connection, so it is parked here and destroyed when its
  // last completion arrives.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> zombies_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  // Requests this loop dispatched and not yet completed (the loop's share
  // of Server::inflight_); the loop exits a drain only at zero.
  int local_outstanding_ = 0;
  int next_handoff_ = 0;  // round-robin target (loop 0, hand-off mode)
  bool draining_ = false;
  bool parked_for_reload_ = false;

  ServerStats stats_;
  Status status_;

  friend class Server;
};

// --------------------------- Server lifecycle ------------------------------

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server());
  server->options_ = options;
  if (options.cubes_path.empty()) {
    return Status::InvalidArgument("ServerOptions.cubes_path is required");
  }

  CubeLoadOptions load;
  load.use_mmap = options.use_mmap;
  OPMAP_ASSIGN_OR_RETURN(
      CubeStore store,
      CubeStore::LoadFromFile(options.cubes_path, nullptr, load));
  server->store_ = std::make_unique<CubeStore>(std::move(store));
  server->engine_ = std::make_unique<QueryEngine>(
      server->store_.get(), options.cache_bytes, options.parallel);
  server->current_cubes_path_ = options.cubes_path;

  OPMAP_ASSIGN_OR_RETURN(Address addr, ParseAddress(options.listen));
  if (!options.allow_uids.empty() && !addr.is_unix) {
    return Status::InvalidArgument(
        "--allow-uid requires a unix listen address (TCP carries no peer "
        "credentials)");
  }

  const int num_loops = EffectiveLoops(options);

  // TCP with >1 loop: try one SO_REUSEPORT listener per loop so the
  // kernel shards accepts. Any failure (platform without REUSEPORT)
  // falls back to the single listener + hand-off mode below.
  std::vector<int> listen_fds;
  if (!addr.is_unix && num_loops > 1) {
    std::string bound;
    Result<int> first = ListenOn(addr, &bound, /*reuse_port=*/true);
    if (first.ok()) {
      listen_fds.push_back(*first);
      // Re-parse the resolved address so listeners 2..N bind the port the
      // OS actually assigned when the option said port 0.
      Result<Address> resolved = ParseAddress(bound);
      bool all_ok = resolved.ok();
      for (int i = 1; all_ok && i < num_loops; ++i) {
        std::string ignored;
        Result<int> fd = ListenOn(*resolved, &ignored, /*reuse_port=*/true);
        if (fd.ok()) {
          listen_fds.push_back(*fd);
        } else {
          all_ok = false;
        }
      }
      if (all_ok) {
        server->address_ = bound;
        server->sharded_listeners_ = true;
      } else {
        for (int fd : listen_fds) ::close(fd);
        listen_fds.clear();
      }
    }
  }
  if (listen_fds.empty()) {
    OPMAP_ASSIGN_OR_RETURN(int fd, ListenOn(addr, &server->address_));
    listen_fds.push_back(fd);
  }
  if (addr.is_unix) server->unix_path_ = addr.path;

  for (int i = 0; i < num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(server.get(), i);
    const int listen_fd = server->sharded_listeners_
                              ? listen_fds[static_cast<size_t>(i)]
                              : (i == 0 ? listen_fds[0] : -1);
    const Status st = loop->Init(listen_fd);
    if (!st.ok()) {
      // Fds not yet owned by a loop must not leak.
      if (server->sharded_listeners_) {
        for (int j = i; j < num_loops; ++j) {
          ::close(listen_fds[static_cast<size_t>(j)]);
        }
      } else if (i == 0) {
        ::close(listen_fds[0]);
      }
      return st;
    }
    server->loops_.push_back(std::move(loop));
  }
  LoopsGauge()->Set(num_loops);

  const int workers = options.workers > 0
                          ? options.workers
                          : EffectiveThreads(options.parallel);
  ThreadPool::Shared()->Reserve(workers);
  return server;
}

Server::~Server() {
  loops_.clear();  // closes every socket and pipe
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Server::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->Wake();
}

void Server::WakeAllLoops() {
  for (auto& loop : loops_) loop->Wake();
}

void Server::WakeReloadOwner() {
  int owner = -1;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    owner = reload_loop_;
  }
  if (owner >= 0 && owner < static_cast<int>(loops_.size())) {
    loops_[static_cast<size_t>(owner)]->Wake();
  }
}

void Server::InstallSignalHandlers(Server* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = server != nullptr ? &OpmapdSignalHandler : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

ServerStats Server::stats() const {
  ServerStats total;
  for (const auto& loop : loops_) {
    const ServerStats& s = loop->stats();
    total.connections_accepted += s.connections_accepted;
    total.requests += s.requests;
    total.responses_ok += s.responses_ok;
    total.responses_error += s.responses_error;
    total.shed_retry_later += s.shed_retry_later;
    total.protocol_errors += s.protocol_errors;
    total.reloads += s.reloads;
    total.reload_failures += s.reload_failures;
    total.auth_rejected += s.auth_rejected;
  }
  return total;
}

Status Server::Serve() {
  if (options_.verbose) {
    std::fprintf(stderr, "opmapd: serving %s on %s (%zu loops, %s)\n",
                 options_.cubes_path.c_str(), address_.c_str(),
                 loops_.size(),
                 sharded_listeners_ ? "SO_REUSEPORT sharded"
                                    : "single listener");
  }
  {
    std::vector<std::thread> threads;
    threads.reserve(loops_.size() - 1);
    for (size_t i = 1; i < loops_.size(); ++i) {
      threads.emplace_back([loop = loops_[i].get()] { loop->Run(); });
    }
    loops_[0]->Run();
    for (std::thread& t : threads) t.join();
  }
  if (options_.verbose) {
    const ServerStats total = stats();
    std::fprintf(stderr,
                 "opmapd: drained (%lld requests, %lld shed, %lld protocol "
                 "errors)\n",
                 static_cast<long long>(total.requests),
                 static_cast<long long>(total.shed_retry_later),
                 static_cast<long long>(total.protocol_errors));
  }
  for (auto& loop : loops_) OPMAP_RETURN_NOT_OK(loop->status());
  return Status::OK();
}

// ------------------------- reload coordination -----------------------------

bool Server::TryClaimReload(int loop_index, uint64_t conn_id, uint64_t seq,
                            uint64_t request_id, std::string body) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  if (reload_pending_.load(std::memory_order_seq_cst)) return false;
  reload_loop_ = loop_index;
  reload_conn_id_ = conn_id;
  reload_seq_ = seq;
  reload_request_id_ = request_id;
  reload_body_ = std::move(body);
  // seq_cst pairs with the dispatch-side increment-then-recheck: a
  // dispatcher either observes this flag and backs out, or its inflight
  // increment is visible to the owner, whose completion will wake it.
  reload_pending_.store(true, std::memory_order_seq_cst);
  return true;
}

void Server::ReleaseInflight() {
  if (inflight_.fetch_sub(1, std::memory_order_seq_cst) == 1 &&
      reload_pending_.load(std::memory_order_seq_cst)) {
    WakeReloadOwner();
  }
}

void Server::CancelReloadForDrain(int loop_index) {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  uint64_t request_id = 0;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    if (!reload_pending_.load(std::memory_order_seq_cst) ||
        reload_loop_ != loop_index) {
      return;
    }
    conn_id = reload_conn_id_;
    seq = reload_seq_;
    request_id = reload_request_id_;
    reload_loop_ = -1;
    reload_body_.clear();
    reload_pending_.store(false, std::memory_order_seq_cst);
  }
  loops_[static_cast<size_t>(loop_index)]->RespondToConn(
      conn_id, seq, request_id, RespStatus::kShuttingDown,
      ShuttingDownBody());
  WakeAllLoops();
}

void Server::PerformReload(EventLoop* owner) {
  OPMAP_TRACE_SPAN("server.reload");
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  uint64_t request_id = 0;
  std::string body;
  std::string default_path;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    conn_id = reload_conn_id_;
    seq = reload_seq_;
    request_id = reload_request_id_;
    body = std::move(reload_body_);
    reload_body_.clear();
    default_path = current_cubes_path_;
  }
  auto respond = [&](RespStatus status, const std::string& resp_body) {
    owner->RespondToConn(conn_id, seq, request_id, status, resp_body);
  };
  // Drops the barrier and restarts dispatch everywhere: parked loops wake
  // and re-pump their connections.
  auto finish = [&] {
    {
      std::lock_guard<std::mutex> lock(reload_mu_);
      reload_loop_ = -1;
      reload_pending_.store(false, std::memory_order_seq_cst);
    }
    WakeAllLoops();
    owner->ResumeAfterReload();
  };

  Result<ReloadRequest> req = DecodeReloadRequest(body);
  if (!req.ok()) {
    respond(RespStatusForError(req.status()),
            EncodeErrorBody(req.status().code(), req.status().message()));
    finish();
    return;
  }
  const std::string path = req->path.empty() ? default_path : req->path;
  CubeLoadOptions load;
  load.use_mmap = options_.use_mmap;
  Result<CubeStore> loaded = CubeStore::LoadFromFile(path, nullptr, load);
  if (!loaded.ok()) {
    ReloadFailures()->Increment();
    owner->stats_.reload_failures++;
    if (options_.verbose) {
      std::fprintf(stderr, "opmapd: reload of %s failed: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
    }
    respond(RespStatusForError(loaded.status()),
            EncodeErrorBody(loaded.status().code(),
                            loaded.status().message()));
    finish();
    return;
  }
  // Global inflight is 0 here: no worker holds the store, a session view,
  // or a half-built result. Sessions created against the old store are
  // invalidated lazily — EnsureSession compares its generation stamp
  // before any worker touches one again — so no loop has to reach into
  // another loop's connections. SetStore bumps the shared cache's epoch,
  // invalidating every cached cmp|/gi|/view| entry at once.
  auto fresh = std::make_unique<CubeStore>(std::move(loaded).MoveValue());
  engine_->SetStore(fresh.get());
  store_ = std::move(fresh);  // the old store is destroyed after the swap
  const uint64_t generation =
      store_generation_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    std::lock_guard<std::mutex> lock(reload_mu_);
    current_cubes_path_ = path;
  }
  ReloadsCounter()->Increment();
  owner->stats_.reloads++;
  if (options_.verbose) {
    std::fprintf(stderr,
                 "opmapd: reloaded %s (generation %llu, %lld records)\n",
                 path.c_str(), static_cast<unsigned long long>(generation),
                 static_cast<long long>(store_->num_records()));
  }
  ReloadInfo info;
  info.store_generation = generation;
  info.num_records = store_->num_records();
  respond(RespStatus::kOk, EncodeReloadInfo(info));
  finish();
}

// ----------------------------- event loop ----------------------------------

void EventLoop::Run() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  for (;;) {
    if (server_->shutdown_requested_.load(std::memory_order_acquire) &&
        !draining_) {
      BeginDrain();
    }
    DrainHandoff(/*adopt=*/!draining_);
    DrainCompletions();
    {
      bool owns_reload = false;
      {
        std::lock_guard<std::mutex> lock(server_->reload_mu_);
        owns_reload =
            server_->reload_pending_.load(std::memory_order_seq_cst) &&
            server_->reload_loop_ == index_;
      }
      if (owns_reload &&
          server_->inflight_.load(std::memory_order_seq_cst) == 0) {
        server_->PerformReload(this);
      }
    }
    if (parked_for_reload_ &&
        !server_->reload_pending_.load(std::memory_order_seq_cst)) {
      ResumeAfterReload();
    }
    SweepClosedConnections();
    if (draining_ && local_outstanding_ == 0) {
      bool quiesced = true;
      {
        std::lock_guard<std::mutex> lock(server_->reload_mu_);
        if (server_->reload_pending_.load(std::memory_order_seq_cst) &&
            server_->reload_loop_ == index_) {
          quiesced = false;  // answer the parked reload first
        }
      }
      for (auto& [id, conn] : conns_) {
        if (!conn->FinishedFlushing() || !conn->reorder.empty()) {
          quiesced = false;
          break;
        }
      }
      if (quiesced) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    const bool accepting =
        !draining_ && listen_fd_ >= 0 &&
        server_->total_connections_.load(std::memory_order_relaxed) <
            server_->options_.max_connections;
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn->closing && !conn->dead && !draining_) events |= POLLIN;
      if (!conn->dead && !conn->FinishedFlushing()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), 500);
    if (ready < 0 && errno != EINTR) {
      status_ =
          Status::IOError(std::string("poll: ") + std::strerror(errno));
      // Never exit with workers still referencing this loop's connections.
      while (local_outstanding_ > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        DrainCompletions();
      }
      server_->Shutdown();  // take the sibling loops down too
      break;
    }
    if (ready <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (accepting && (fds[1].revents & POLLIN) != 0) AcceptConnections();
    for (size_t i = 0; i < fds.size(); ++i) {
      const uint64_t id = fd_conn[i];
      if (id == 0 || fds[i].revents == 0) continue;
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        conn->dead = true;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) FlushConnection(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) ReadConnection(conn);
    }
  }

  // Drained: hand-off fds never adopted are closed, then every remaining
  // connection (none executing).
  DrainHandoff(/*adopt=*/false);
  SweepClosedConnections();
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id, "server drained");
}

void EventLoop::DrainHandoff(bool adopt) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(handoff_mu_);
    incoming.swap(handoff_fds_);
  }
  for (int fd : incoming) {
    if (adopt) {
      AdoptFd(fd);
    } else {
      ::close(fd);
      server_->total_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void EventLoop::AdoptFd(int fd) {
  if (!SetNonBlocking(fd, true).ok()) {
    ::close(fd);
    server_->total_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  auto conn = std::make_unique<Connection>();
  conn->id = server_->next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->fd = fd;
  ConnectionsAccepted()->Increment();
  stats_.connections_accepted++;
  ConnectionsGauge()->Set(static_cast<int64_t>(
      server_->total_connections_.load(std::memory_order_relaxed)));
  conns_[conn->id] = std::move(conn);
}

bool EventLoop::PeerAllowed(int fd) {
  Result<uint32_t> uid = PeerUid(fd);
  if (uid.ok()) {
    for (uint32_t allowed : server_->options_.allow_uids) {
      if (*uid == allowed) return true;
    }
  }
  // Fail closed, and tell the peer why before hanging up: one
  // best-effort frame (request id 0 — no request was read) so the
  // client sees a status instead of a bare disconnect.
  AuthRejected()->Increment();
  stats_.auth_rejected++;
  const std::string reason =
      uid.ok() ? "peer uid " + std::to_string(*uid) + " is not allowed"
               : "peer credentials unavailable: " + uid.status().message();
  const std::string frame = EncodeFrame(
      0, EncodeResponse(
             RespStatus::kBadRequest,
             EncodeErrorBody(StatusCode::kFailedPrecondition, reason)));
  [[maybe_unused]] ssize_t n =
      ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
  if (server_->options_.verbose) {
    std::fprintf(stderr, "opmapd: loop %d rejected connection (%s)\n",
                 index_, reason.c_str());
  }
  return false;
}

void EventLoop::AcceptConnections() {
  const ServerOptions& options = server_->options_;
  for (;;) {
    // Reserve a connection slot before accepting so N loops racing on
    // SO_REUSEPORT listeners cannot exceed max_connections together.
    const int reserved =
        server_->total_connections_.fetch_add(1, std::memory_order_relaxed);
    if (reserved >= options.max_connections) {
      server_->total_connections_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {  // EAGAIN (or transient error): next poll round
      server_->total_connections_.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    // Peer-credential auth happens on the accepting loop, before the fd
    // is handed anywhere (unix sockets only; Start() rejects TCP).
    if (!options.allow_uids.empty() && !PeerAllowed(fd)) {
      ::close(fd);
      server_->total_connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (server_->sharded_listeners_ ||
        static_cast<int>(server_->loops_.size()) == 1) {
      AdoptFd(fd);
      continue;
    }
    // Hand-off mode: loop 0 owns the only listener and deals sockets
    // round-robin so every loop carries load.
    const int target =
        next_handoff_++ % static_cast<int>(server_->loops_.size());
    if (target == index_) {
      AdoptFd(fd);
    } else {
      server_->loops_[static_cast<size_t>(target)]->PushHandoff(fd);
    }
  }
}

void EventLoop::ReadConnection(Connection* conn) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      BytesRead()->Increment(n);
      conn->in.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      conn->dead = true;  // peer closed; swept after this round
      conn->closing = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->dead = true;
    break;
  }

  size_t off = 0;
  while (off < conn->in.size() && !conn->closing && !conn->dead) {
    uint64_t request_id = 0;
    std::string payload;
    size_t consumed = 0;
    std::string error;
    const FrameDecode rc =
        DecodeFrame(conn->in.data() + off, conn->in.size() - off,
                    server_->options_.max_request_bytes, &request_id,
                    &payload, &consumed, &error);
    if (rc == FrameDecode::kNeedMore) break;
    if (rc == FrameDecode::kCorrupt) {
      // The stream position is untrusted from here on: answer with a
      // best-effort error frame (echoing the id when the header was
      // readable) and close once everything queued has flushed.
      ProtocolErrors()->Increment();
      stats_.protocol_errors++;
      if (server_->options_.verbose) {
        std::fprintf(stderr, "opmapd: conn %llu protocol error: %s\n",
                     static_cast<unsigned long long>(conn->id),
                     error.c_str());
      }
      EmitStatus(conn, conn->next_seq++, request_id, RespStatus::kBadRequest,
                 EncodeErrorBody(StatusCode::kInvalidArgument,
                                 "corrupt frame: " + error));
      conn->closing = true;
      off = conn->in.size();  // discard the poisoned buffer
      break;
    }
    off += consumed;
    HandleFrame(conn, request_id, std::move(payload));
  }
  conn->in.erase(0, off);
  FlushConnection(conn);
}

void EventLoop::HandleFrame(Connection* conn, uint64_t request_id,
                            std::string payload) {
  RequestsCounter()->Increment();
  stats_.requests++;
  const uint64_t seq = conn->next_seq++;
  if (draining_) {
    EmitStatus(conn, seq, request_id, RespStatus::kShuttingDown,
               ShuttingDownBody());
    return;
  }
  if (static_cast<int>(conn->pending.size()) >=
      server_->options_.max_pending_per_connection) {
    ShedFrame(conn, seq, request_id, "connection pipeline depth exceeded");
    return;
  }
  conn->pending.push_back({seq, request_id, std::move(payload)});
  // Dispatch eagerly: the frame may start executing while later frames of
  // the same read batch are still being parsed.
  PumpConnection(conn);
}

void EventLoop::PumpConnection(Connection* conn) {
  if (conn->dead) return;
  const ServerOptions& options = server_->options_;
  while (!conn->pending.empty()) {
    Connection::PendingFrame& front = conn->pending.front();
    if (front.payload.empty() ||
        !IsKnownOp(static_cast<uint8_t>(front.payload[0]))) {
      const std::string message =
          front.payload.empty()
              ? "empty request payload (missing op byte)"
              : "unknown op byte " +
                    std::to_string(static_cast<uint8_t>(front.payload[0]));
      EmitStatus(conn, front.seq, front.request_id, RespStatus::kBadRequest,
                 EncodeErrorBody(StatusCode::kInvalidArgument, message));
      conn->pending.pop_front();
      continue;
    }
    const Op op = static_cast<Op>(front.payload[0]);
    if (op == Op::kReload) {
      if (!server_->TryClaimReload(index_, conn->id, front.seq,
                                   front.request_id,
                                   front.payload.substr(1))) {
        ShedFrame(conn, front.seq, front.request_id,
                  "another reload is already pending");
        conn->pending.pop_front();
        continue;
      }
      conn->pending.pop_front();
      // The barrier is up; later frames of every connection park until
      // the owning loop (us) swaps the store at global inflight 0.
      parked_for_reload_ = true;
      break;
    }
    if (server_->reload_pending_.load(std::memory_order_seq_cst)) {
      parked_for_reload_ = true;
      break;
    }
    const bool is_session = op == Op::kSession || op == Op::kRender;
    if (is_session) {
      // Session ops need the connection quiesced: they own the session
      // without a lock and their response must not overtake earlier ones.
      if (conn->executing > 0) break;
    } else {
      if (conn->session_executing) break;
      if (conn->executing >= options.max_pending_per_connection) break;
    }
    const int prior =
        server_->inflight_.fetch_add(1, std::memory_order_seq_cst);
    if (prior >= options.max_inflight) {
      server_->ReleaseInflight();
      ShedFrame(conn, front.seq, front.request_id,
                "server at max in-flight requests");
      conn->pending.pop_front();
      continue;
    }
    if (server_->reload_pending_.load(std::memory_order_seq_cst)) {
      // A reload claimed the barrier between the head-of-loop check and
      // our admission increment; back out so it cannot be starved.
      server_->ReleaseInflight();
      parked_for_reload_ = true;
      break;
    }
    InflightGauge()->SetMax(prior + 1);
    local_outstanding_++;
    conn->executing++;
    if (is_session) conn->session_executing = true;
    Connection::PendingFrame frame = std::move(conn->pending.front());
    conn->pending.pop_front();
    ThreadPool::Shared()->Post(
        [server = server_, loop = this, conn, is_session,
         frame = std::move(frame)]() mutable {
          server->ExecuteRequest(loop, conn, frame.seq, is_session,
                                 frame.request_id, std::move(frame.payload));
        });
  }
}

void EventLoop::PumpAllConnections() {
  for (auto& [id, conn] : conns_) {
    PumpConnection(conn.get());
    FlushConnection(conn.get());
  }
}

void EventLoop::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    server_->ReleaseInflight();
    local_outstanding_--;
    CountResponse(c.ok);
    auto zombie = zombies_.find(c.conn_id);
    if (zombie != zombies_.end()) {
      // The peer went away while we were computing; drop the response and
      // destroy the parked Connection with its last completion.
      Connection* z = zombie->second.get();
      z->executing--;
      if (c.is_session) z->session_executing = false;
      if (z->executing == 0) zombies_.erase(zombie);
      continue;
    }
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;
    Connection* conn = it->second.get();
    conn->executing--;
    if (c.is_session) conn->session_executing = false;
    Emit(conn, c.seq, std::move(c.frame));
    FlushConnection(conn);
    PumpConnection(conn);
  }
}

void EventLoop::Emit(Connection* conn, uint64_t seq, std::string frame) {
  // Responses go on the wire strictly in request order, whatever order
  // execution finished in: out-of-order frames wait in the (bounded, by
  // the pipelining depth) reorder buffer.
  conn->reorder.emplace(seq, std::move(frame));
  auto it = conn->reorder.find(conn->next_emit);
  while (it != conn->reorder.end()) {
    conn->out += it->second;
    conn->reorder.erase(it);
    conn->next_emit++;
    it = conn->reorder.find(conn->next_emit);
  }
}

void EventLoop::EmitStatus(Connection* conn, uint64_t seq,
                           uint64_t request_id, RespStatus status,
                           const std::string& body) {
  CountResponse(status == RespStatus::kOk);
  Emit(conn, seq, EncodeFrame(request_id, EncodeResponse(status, body)));
}

void EventLoop::ShedFrame(Connection* conn, uint64_t seq,
                          uint64_t request_id, const char* why) {
  ShedCounter()->Increment();
  stats_.shed_retry_later++;
  EmitStatus(conn, seq, request_id, RespStatus::kRetryLater,
             EncodeErrorBody(StatusCode::kFailedPrecondition, why));
}

void EventLoop::CountResponse(bool ok) {
  if (ok) {
    ResponsesOk()->Increment();
    stats_.responses_ok++;
  } else {
    ResponsesError()->Increment();
    stats_.responses_error++;
  }
}

void EventLoop::FlushConnection(Connection* conn) {
  if (conn->dead) {
    conn->out.clear();
    conn->out_off = 0;
    return;
  }
  while (!conn->FinishedFlushing()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      BytesWritten()->Increment(n);
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn->dead = true;  // swept at the next loop pass
    conn->out.clear();
    conn->out_off = 0;
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
}

void EventLoop::SweepClosedConnections() {
  std::vector<uint64_t> doomed;
  for (auto& [id, conn] : conns_) {
    if (conn->dead ||
        (conn->closing && conn->pending.empty() && conn->executing == 0 &&
         conn->reorder.empty() && conn->FinishedFlushing())) {
      doomed.push_back(id);
    }
  }
  for (uint64_t id : doomed) CloseConnection(id, "swept");
}

void EventLoop::CloseConnection(uint64_t conn_id, const char* reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::unique_ptr<Connection> conn = std::move(it->second);
  conns_.erase(it);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  ConnectionsClosed()->Increment();
  const int remaining =
      server_->total_connections_.fetch_sub(1, std::memory_order_relaxed) -
      1;
  ConnectionsGauge()->Set(static_cast<int64_t>(remaining));
  if (server_->options_.verbose) {
    std::fprintf(stderr, "opmapd: conn %llu closed on loop %d (%s)\n",
                 static_cast<unsigned long long>(conn_id), index_, reason);
  }
  if (conn->executing > 0) {
    // Pool workers still reference this Connection (its session); park it
    // until the last completion arrives. zombies_ is always empty once
    // local_outstanding_ reaches 0, which is what drain waits for.
    zombies_[conn_id] = std::move(conn);
  }
}

void EventLoop::BeginDrain() {
  draining_ = true;
  if (server_->options_.verbose) {
    std::fprintf(stderr, "opmapd: loop %d drain requested (%d in flight)\n",
                 index_, local_outstanding_);
  }
  // Undispatched frames get explicit SHUTTING_DOWN responses (in request
  // order — Emit sequences them); in-flight requests finish and flush
  // normally.
  for (auto& [id, conn] : conns_) {
    while (!conn->pending.empty()) {
      Connection::PendingFrame frame = std::move(conn->pending.front());
      conn->pending.pop_front();
      EmitStatus(conn.get(), frame.seq, frame.request_id,
                 RespStatus::kShuttingDown, ShuttingDownBody());
    }
    FlushConnection(conn.get());
  }
  // A reload this loop claimed and has not performed yet is answered
  // SHUTTING_DOWN; other loops' claims are theirs to settle.
  server_->CancelReloadForDrain(index_);
}

// ------------------------- pool-worker execution ---------------------------

void Server::ExecuteRequest(EventLoop* loop, Connection* conn, uint64_t seq,
                            bool is_session, uint64_t request_id,
                            std::string payload) {
  const int64_t start_us = MonotonicMicros();
  std::string response;
  {
    OPMAP_TRACE_SPAN("server.request");
    response = HandleRequestPayload(conn, payload);
  }
  const int64_t elapsed = MonotonicMicros() - start_us;
  RequestHistogram()->Record(elapsed);
  if (!payload.empty() && IsKnownOp(static_cast<uint8_t>(payload[0]))) {
    OpHistogram(static_cast<Op>(payload[0]))->Record(elapsed);
  }
  EventLoop::Completion done;
  done.conn_id = conn->id;
  done.seq = seq;
  done.is_session = is_session;
  done.ok = !response.empty() &&
            response[0] == static_cast<char>(RespStatus::kOk);
  done.frame = EncodeFrame(request_id, response);
  loop->PostCompletion(std::move(done));
}

void Server::EnsureSession(Connection* conn) {
  const uint64_t generation =
      store_generation_.load(std::memory_order_acquire);
  if (conn->session == nullptr || conn->session_generation != generation) {
    conn->session = std::make_unique<ExplorationSession>(engine_->store());
    conn->session->set_cache(engine_->cache());
    conn->session_generation = generation;
  }
}

std::string Server::HandleRequestPayload(Connection* conn,
                                         const std::string& payload) {
  const Op op = static_cast<Op>(payload[0]);
  const std::string body = payload.substr(1);
  switch (op) {
    case Op::kPing:
      return EncodeResponse(RespStatus::kOk, "");
    case Op::kSchema:
      return EncodeResponse(
          RespStatus::kOk,
          EncodeSchemaInfo(*engine_->store(),
                           store_generation_.load(
                               std::memory_order_acquire)));
    case Op::kCompare: {
      Result<CompareRequest> req = DecodeCompareRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      ComparisonSpec spec;
      spec.attribute = req->attribute;
      spec.value_a = req->value_a;
      spec.value_b = req->value_b;
      spec.target_class = req->target_class;
      spec.min_population = req->min_population;
      auto result = engine_->Compare(spec);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk,
                            EncodeComparisonResult(**result));
    }
    case Op::kAllPairs: {
      Result<AllPairsRequest> req = DecodeAllPairsRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      auto result = engine_->CompareAllPairs(
          req->attribute, req->target_class, req->min_population);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk, EncodePairSummaries(*result));
    }
    case Op::kGi: {
      Result<GiRequest> req = DecodeGiRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      GiOptions gi;
      gi.top_influence = req->top_influence;
      gi.mine_interactions = req->mine_interactions;
      gi.top_interactions = req->top_interactions;
      auto result = engine_->Gi(gi);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk,
                            EncodeGeneralImpressions(**result));
    }
    case Op::kSession: {
      Result<SessionRequest> req = DecodeSessionRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      EnsureSession(conn);
      ExplorationSession* session = conn->session.get();
      Status st;
      switch (req->verb) {
        case SessionVerb::kOpen:
          st = session->OpenAttribute(req->attribute);
          break;
        case SessionVerb::kDrill:
          st = session->DrillDown(req->attribute);
          break;
        case SessionVerb::kSlice:
          st = req->values.empty()
                   ? Status::InvalidArgument("slice needs a value")
                   : session->Slice(req->attribute, req->values[0]);
          break;
        case SessionVerb::kDice:
          st = session->Dice(req->attribute, req->values);
          break;
        case SessionVerb::kRollUp:
          st = session->RollUp(req->attribute);
          break;
        case SessionVerb::kBack:
          st = session->Back();
          break;
        case SessionVerb::kReset:
          session->Reset();
          break;
      }
      if (!st.ok()) return ErrorResponse(st);
      return EncodeResponse(RespStatus::kOk, session->PathString());
    }
    case Op::kRender: {
      Result<RenderRequest> req = DecodeRenderRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      EnsureSession(conn);
      if (!conn->session->has_view()) {
        return ErrorResponse(Status::FailedPrecondition(
            "no current view (open an attribute first)"));
      }
      SessionRenderOptions opts;
      opts.max_rows = req->max_rows;
      opts.bar_width = req->bar_width;
      auto rendered = conn->session->Render(opts);
      if (!rendered.ok()) return ErrorResponse(rendered.status());
      return EncodeResponse(RespStatus::kOk, *rendered);
    }
    case Op::kStats: {
      MetricsFormatOptions slim;
      slim.skip_zero_histograms = true;
      return EncodeResponse(
          RespStatus::kOk,
          FormatMetricsJson(MetricsRegistry::Global()->Snapshot(), slim));
    }
    case Op::kReload:
      // Handled exclusively on the loop thread; a worker never sees it.
      break;
  }
  return ErrorResponse(
      Status::Internal("unreachable op in HandleRequestPayload"));
}

}  // namespace opmap::server
