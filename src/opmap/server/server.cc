#include "opmap/server/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "opmap/common/metrics.h"
#include "opmap/common/trace.h"
#include "opmap/server/net.h"

namespace opmap::server {

namespace {

// server.* metric handles, resolved once (docs/OBSERVABILITY.md).
Counter* RequestsCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.requests");
  return c;
}
Counter* ResponsesOk() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.responses_ok");
  return c;
}
Counter* ResponsesError() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.responses_error");
  return c;
}
Counter* ShedCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.shed_retry_later");
  return c;
}
Counter* ProtocolErrors() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.protocol_errors");
  return c;
}
Counter* ConnectionsAccepted() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.connections_accepted");
  return c;
}
Counter* ConnectionsClosed() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.connections_closed");
  return c;
}
Counter* BytesRead() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.bytes_read");
  return c;
}
Counter* BytesWritten() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.bytes_written");
  return c;
}
Counter* ReloadsCounter() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.reloads");
  return c;
}
Counter* ReloadFailures() {
  static Counter* const c =
      MetricsRegistry::Global()->counter("server.reload_failures");
  return c;
}
Gauge* ConnectionsGauge() {
  static Gauge* const g =
      MetricsRegistry::Global()->gauge("server.connections");
  return g;
}
Gauge* InflightGauge() {
  static Gauge* const g = MetricsRegistry::Global()->gauge("server.inflight");
  return g;
}
Histogram* RequestHistogram() {
  static Histogram* const h =
      MetricsRegistry::Global()->histogram("server.request_us");
  return h;
}
// Per-op latency histogram. Resolved lazily from worker threads, hence the
// atomic slots (registration is idempotent and returns a stable pointer,
// so losing the publication race is harmless).
Histogram* OpHistogram(Op op) {
  static std::atomic<Histogram*> cache[9] = {};
  const auto idx = static_cast<size_t>(op);
  Histogram* h = cache[idx].load(std::memory_order_acquire);
  if (h == nullptr) {
    h = MetricsRegistry::Global()->histogram(
        std::string("server.request_us.") + OpName(op));
    cache[idx].store(h, std::memory_order_release);
  }
  return h;
}

RespStatus RespStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return RespStatus::kBadRequest;
    default:
      return RespStatus::kError;
  }
}

std::string ErrorResponse(const Status& status) {
  return EncodeResponse(RespStatusForError(status),
                        EncodeErrorBody(status.code(), status.message()));
}

// A request body that fails to decode is the client's fault no matter what
// code the decoder used internally — always BAD_REQUEST.
std::string BadRequestResponse(const Status& status) {
  return EncodeResponse(RespStatus::kBadRequest,
                        EncodeErrorBody(StatusCode::kInvalidArgument,
                                        status.message()));
}

std::string ShuttingDownBody() {
  return EncodeErrorBody(StatusCode::kFailedPrecondition,
                         "server is shutting down");
}

// The signal-handler target. A plain atomic pointer: handlers may only
// call Server::Shutdown(), which is async-signal-safe by construction
// (one lock-free atomic store plus a write(2)).
std::atomic<Server*> g_signal_server{nullptr};

extern "C" void OpmapdSignalHandler(int /*signo*/) {
  Server* server = g_signal_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->Shutdown();
}

}  // namespace

// One accepted socket. The Serve() thread owns every field except
// `session`, which the (single) in-flight pool worker for this connection
// owns while `executing` is true — one request per connection executes at
// a time, so the session needs no lock and responses stay in order.
class Connection {
 public:
  uint64_t id = 0;
  int fd = -1;
  std::string in;    // unparsed request bytes
  std::string out;   // encoded, unflushed response bytes
  size_t out_off = 0;
  struct PendingFrame {
    uint64_t request_id = 0;
    std::string payload;
  };
  std::deque<PendingFrame> pending;
  bool executing = false;
  bool closing = false;  // close once `out` is flushed
  bool dead = false;     // write failed; close at the next sweep
  std::unique_ptr<ExplorationSession> session;
  uint64_t session_generation = 0;

  bool FinishedFlushing() const { return out_off >= out.size(); }
};

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server());
  server->options_ = options;
  if (options.cubes_path.empty()) {
    return Status::InvalidArgument("ServerOptions.cubes_path is required");
  }

  CubeLoadOptions load;
  load.use_mmap = options.use_mmap;
  OPMAP_ASSIGN_OR_RETURN(
      CubeStore store,
      CubeStore::LoadFromFile(options.cubes_path, nullptr, load));
  server->store_ = std::make_unique<CubeStore>(std::move(store));
  server->engine_ = std::make_unique<QueryEngine>(
      server->store_.get(), options.cache_bytes, options.parallel);

  OPMAP_ASSIGN_OR_RETURN(Address addr, ParseAddress(options.listen));
  OPMAP_ASSIGN_OR_RETURN(server->listen_fd_,
                         ListenOn(addr, &server->address_));
  if (addr.is_unix) server->unix_path_ = addr.path;

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  OPMAP_RETURN_NOT_OK(SetNonBlocking(pipe_fds[0], true));
  OPMAP_RETURN_NOT_OK(SetNonBlocking(pipe_fds[1], true));
  server->wake_read_fd_ = pipe_fds[0];
  server->wake_write_fd_.store(pipe_fds[1], std::memory_order_release);

  const int workers = options.workers > 0
                          ? options.workers
                          : EffectiveThreads(options.parallel);
  ThreadPool::Shared()->Reserve(workers);
  return server;
}

Server::~Server() {
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  const int wfd = wake_write_fd_.exchange(-1, std::memory_order_acq_rel);
  if (wfd >= 0) ::close(wfd);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void Server::Shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  const int fd = wake_write_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 'q';
    // EAGAIN means the pipe already has unread bytes — the loop will wake.
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::InstallSignalHandlers(Server* server) {
  g_signal_server.store(server, std::memory_order_relaxed);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = server != nullptr ? &OpmapdSignalHandler : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

Status Server::Serve() {
  if (options_.verbose) {
    std::fprintf(stderr, "opmapd: serving %s on %s\n",
                 options_.cubes_path.c_str(), address_.c_str());
  }
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  for (;;) {
    if (shutdown_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }
    DrainCompletions();
    if (reload_pending_ && inflight_ == 0) PerformReload();
    SweepClosedConnections();
    if (draining_ && inflight_ == 0 && !reload_pending_) {
      bool flushed = true;
      for (auto& [id, conn] : conns_) {
        if (!conn->FinishedFlushing()) {
          flushed = false;
          break;
        }
      }
      if (flushed) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conn.push_back(0);
    const bool accepting =
        !draining_ &&
        static_cast<int>(conns_.size()) < options_.max_connections;
    if (accepting) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (!conn->closing && !conn->dead && !draining_) events |= POLLIN;
      if (!conn->dead && !conn->FinishedFlushing()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    const int ready = ::poll(fds.data(), fds.size(), 500);
    if (ready < 0 && errno != EINTR) {
      const Status st =
          Status::IOError(std::string("poll: ") + std::strerror(errno));
      // Never return with workers still referencing connections.
      while (inflight_ > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        DrainCompletions();
      }
      return st;
    }
    if (ready <= 0) continue;

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
      }
    }
    if (accepting && (fds[1].revents & POLLIN) != 0) AcceptConnections();
    for (size_t i = 0; i < fds.size(); ++i) {
      const uint64_t id = fd_conn[i];
      if (id == 0 || fds[i].revents == 0) continue;
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Connection* conn = it->second.get();
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        conn->dead = true;
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) FlushConnection(conn);
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) ReadConnection(conn);
    }
  }

  // Drained: close every remaining connection (none executing).
  SweepClosedConnections();
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id, "server drained");
  if (options_.verbose) {
    std::fprintf(stderr,
                 "opmapd: drained (%lld requests, %lld shed, %lld protocol "
                 "errors)\n",
                 static_cast<long long>(stats_.requests),
                 static_cast<long long>(stats_.shed_retry_later),
                 static_cast<long long>(stats_.protocol_errors));
  }
  return Status::OK();
}

void Server::AcceptConnections() {
  for (;;) {
    if (static_cast<int>(conns_.size()) >= options_.max_connections) return;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (or transient error): next poll round
    if (!SetNonBlocking(fd, true).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    ConnectionsAccepted()->Increment();
    stats_.connections_accepted++;
    conns_[conn->id] = std::move(conn);
    ConnectionsGauge()->Set(static_cast<int64_t>(conns_.size()));
  }
}

void Server::ReadConnection(Connection* conn) {
  char buf[64 << 10];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      BytesRead()->Increment(n);
      conn->in.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      conn->dead = true;  // peer closed; swept after this round
      conn->closing = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    conn->dead = true;
    break;
  }

  size_t off = 0;
  while (off < conn->in.size() && !conn->closing && !conn->dead) {
    uint64_t request_id = 0;
    std::string payload;
    size_t consumed = 0;
    std::string error;
    const FrameDecode rc =
        DecodeFrame(conn->in.data() + off, conn->in.size() - off,
                    options_.max_request_bytes, &request_id, &payload,
                    &consumed, &error);
    if (rc == FrameDecode::kNeedMore) break;
    if (rc == FrameDecode::kCorrupt) {
      // The stream position is untrusted from here on: answer with a
      // best-effort error frame (echoing the id when the header was
      // readable) and close once it flushed.
      ProtocolErrors()->Increment();
      stats_.protocol_errors++;
      if (options_.verbose) {
        std::fprintf(stderr, "opmapd: conn %llu protocol error: %s\n",
                     static_cast<unsigned long long>(conn->id),
                     error.c_str());
      }
      RespondNow(conn, request_id, RespStatus::kBadRequest,
                 EncodeErrorBody(StatusCode::kInvalidArgument,
                                 "corrupt frame: " + error));
      conn->closing = true;
      off = conn->in.size();  // discard the poisoned buffer
      break;
    }
    off += consumed;
    HandleFrame(conn, request_id, std::move(payload));
  }
  conn->in.erase(0, off);
}

void Server::HandleFrame(Connection* conn, uint64_t request_id,
                         std::string payload) {
  RequestsCounter()->Increment();
  stats_.requests++;
  if (draining_) {
    RespondNow(conn, request_id, RespStatus::kShuttingDown,
               ShuttingDownBody());
    return;
  }
  if (conn->executing || reload_pending_) {
    if (static_cast<int>(conn->pending.size()) >=
        options_.max_pending_per_connection) {
      ShedCounter()->Increment();
      stats_.shed_retry_later++;
      RespondNow(conn, request_id, RespStatus::kRetryLater,
                 EncodeErrorBody(StatusCode::kFailedPrecondition,
                                 "connection pipeline depth exceeded"));
      return;
    }
    conn->pending.push_back({request_id, std::move(payload)});
    return;
  }
  DispatchOrShed(conn, request_id, std::move(payload));
}

void Server::DispatchOrShed(Connection* conn, uint64_t request_id,
                            std::string payload) {
  if (payload.empty()) {
    RespondNow(conn, request_id, RespStatus::kBadRequest,
               EncodeErrorBody(StatusCode::kInvalidArgument,
                               "empty request payload (missing op byte)"));
    return;
  }
  const uint8_t op_byte = static_cast<uint8_t>(payload[0]);
  if (!IsKnownOp(op_byte)) {
    RespondNow(conn, request_id, RespStatus::kBadRequest,
               EncodeErrorBody(StatusCode::kInvalidArgument,
                               "unknown op byte " + std::to_string(op_byte)));
    return;
  }
  if (static_cast<Op>(op_byte) == Op::kReload) {
    if (reload_pending_) {
      RespondNow(conn, request_id, RespStatus::kRetryLater,
                 EncodeErrorBody(StatusCode::kFailedPrecondition,
                                 "another reload is already pending"));
      return;
    }
    // Reload swaps the store under the engine, which must not race query
    // execution: it parks here until inflight_ drains to zero. Frames
    // arriving meanwhile queue per connection (reload_pending_ blocks
    // dispatch), so the reload cannot be starved.
    reload_pending_ = true;
    reload_conn_id_ = conn->id;
    reload_request_id_ = request_id;
    reload_body_ = payload.substr(1);
    return;
  }
  if (inflight_ >= options_.max_inflight) {
    ShedCounter()->Increment();
    stats_.shed_retry_later++;
    RespondNow(conn, request_id, RespStatus::kRetryLater,
               EncodeErrorBody(StatusCode::kFailedPrecondition,
                               "server at max in-flight requests"));
    return;
  }
  inflight_++;
  InflightGauge()->SetMax(inflight_);
  conn->executing = true;
  ThreadPool::Shared()->Post(
      [this, conn, request_id, payload = std::move(payload)]() mutable {
        ExecuteRequest(conn, request_id, std::move(payload));
      });
}

void Server::PumpConnection(Connection* conn) {
  while (!conn->executing && !conn->pending.empty() && !reload_pending_) {
    auto frame = std::move(conn->pending.front());
    conn->pending.pop_front();
    if (draining_) {
      RespondNow(conn, frame.request_id, RespStatus::kShuttingDown,
                 ShuttingDownBody());
      continue;
    }
    DispatchOrShed(conn, frame.request_id, std::move(frame.payload));
  }
}

void Server::PumpAllConnections() {
  for (auto& [id, conn] : conns_) PumpConnection(conn.get());
}

void Server::DrainCompletions() {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    inflight_--;
    if (c.ok) {
      ResponsesOk()->Increment();
      stats_.responses_ok++;
    } else {
      ResponsesError()->Increment();
      stats_.responses_error++;
    }
    auto zombie = zombies_.find(c.conn_id);
    if (zombie != zombies_.end()) {
      // The peer went away while we were computing; drop the response.
      zombies_.erase(zombie);
      continue;
    }
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;
    Connection* conn = it->second.get();
    conn->executing = false;
    conn->out += c.frame;
    FlushConnection(conn);
    PumpConnection(conn);
  }
}

void Server::RespondNow(Connection* conn, uint64_t request_id,
                        RespStatus status, const std::string& body) {
  if (status == RespStatus::kOk) {
    ResponsesOk()->Increment();
    stats_.responses_ok++;
  } else {
    ResponsesError()->Increment();
    stats_.responses_error++;
  }
  conn->out += EncodeFrame(request_id, EncodeResponse(status, body));
  FlushConnection(conn);
}

void Server::FlushConnection(Connection* conn) {
  if (conn->dead) {
    conn->out.clear();
    conn->out_off = 0;
    return;
  }
  while (!conn->FinishedFlushing()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_off,
               conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      BytesWritten()->Increment(n);
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn->dead = true;  // swept at the next loop pass
    conn->out.clear();
    conn->out_off = 0;
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
}

void Server::SweepClosedConnections() {
  std::vector<uint64_t> doomed;
  for (auto& [id, conn] : conns_) {
    if (conn->dead || (conn->closing && conn->FinishedFlushing())) {
      doomed.push_back(id);
    }
  }
  for (uint64_t id : doomed) CloseConnection(id, "swept");
}

void Server::CloseConnection(uint64_t conn_id, const char* reason) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::unique_ptr<Connection> conn = std::move(it->second);
  conns_.erase(it);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  ConnectionsClosed()->Increment();
  ConnectionsGauge()->Set(static_cast<int64_t>(conns_.size()));
  if (options_.verbose) {
    std::fprintf(stderr, "opmapd: conn %llu closed (%s)\n",
                 static_cast<unsigned long long>(conn_id), reason);
  }
  if (conn->executing) {
    // A pool worker still references this Connection (its session); park
    // it until the completion arrives. zombies_ is always empty once
    // inflight_ reaches 0, which is what reload and drain wait for.
    zombies_[conn_id] = std::move(conn);
  }
}

void Server::BeginDrain() {
  draining_ = true;
  if (options_.verbose) {
    std::fprintf(stderr, "opmapd: drain requested (%d in flight)\n",
                 inflight_);
  }
  // Undispatched frames get explicit SHUTTING_DOWN responses; in-flight
  // requests finish and flush normally.
  for (auto& [id, conn] : conns_) {
    while (!conn->pending.empty()) {
      auto frame = std::move(conn->pending.front());
      conn->pending.pop_front();
      RespondNow(conn.get(), frame.request_id, RespStatus::kShuttingDown,
                 ShuttingDownBody());
    }
  }
  if (reload_pending_) {
    reload_pending_ = false;
    auto it = conns_.find(reload_conn_id_);
    if (it != conns_.end()) {
      RespondNow(it->second.get(), reload_request_id_,
                 RespStatus::kShuttingDown, ShuttingDownBody());
    }
  }
}

void Server::PerformReload() {
  OPMAP_TRACE_SPAN("server.reload");
  reload_pending_ = false;
  Result<ReloadRequest> req = DecodeReloadRequest(reload_body_);
  reload_body_.clear();
  auto respond = [this](RespStatus status, const std::string& body) {
    auto it = conns_.find(reload_conn_id_);
    if (it != conns_.end()) {
      RespondNow(it->second.get(), reload_request_id_, status, body);
    }
  };
  if (!req.ok()) {
    respond(RespStatusForError(req.status()),
            EncodeErrorBody(req.status().code(), req.status().message()));
    PumpAllConnections();
    return;
  }
  const std::string path =
      req->path.empty() ? options_.cubes_path : req->path;
  CubeLoadOptions load;
  load.use_mmap = options_.use_mmap;
  Result<CubeStore> loaded = CubeStore::LoadFromFile(path, nullptr, load);
  if (!loaded.ok()) {
    ReloadFailures()->Increment();
    stats_.reload_failures++;
    if (options_.verbose) {
      std::fprintf(stderr, "opmapd: reload of %s failed: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
    }
    respond(RespStatusForError(loaded.status()),
            EncodeErrorBody(loaded.status().code(),
                            loaded.status().message()));
    PumpAllConnections();
    return;
  }
  // inflight_ == 0 here: no worker holds the store, a session view, or a
  // half-built result. Sessions are dropped (their cubes may be views
  // into the old mapping); SetStore bumps the shared cache's epoch, which
  // invalidates every cmp|/gi|/view| entry at once.
  for (auto& [id, conn] : conns_) conn->session.reset();
  auto fresh = std::make_unique<CubeStore>(std::move(loaded).MoveValue());
  engine_->SetStore(fresh.get());
  store_ = std::move(fresh);  // the old store is destroyed after the swap
  store_generation_++;
  options_.cubes_path = path;
  ReloadsCounter()->Increment();
  stats_.reloads++;
  if (options_.verbose) {
    std::fprintf(stderr,
                 "opmapd: reloaded %s (generation %llu, %lld records)\n",
                 path.c_str(),
                 static_cast<unsigned long long>(store_generation_),
                 static_cast<long long>(store_->num_records()));
  }
  ReloadInfo info;
  info.store_generation = store_generation_;
  info.num_records = store_->num_records();
  respond(RespStatus::kOk, EncodeReloadInfo(info));
  PumpAllConnections();
}

// ------------------------- pool-worker execution ---------------------------

void Server::ExecuteRequest(Connection* conn, uint64_t request_id,
                            std::string payload) {
  const int64_t start_us = MonotonicMicros();
  std::string response;
  {
    OPMAP_TRACE_SPAN("server.request");
    response = HandleRequestPayload(conn, payload);
  }
  const int64_t elapsed = MonotonicMicros() - start_us;
  RequestHistogram()->Record(elapsed);
  if (!payload.empty() && IsKnownOp(static_cast<uint8_t>(payload[0]))) {
    OpHistogram(static_cast<Op>(payload[0]))->Record(elapsed);
  }
  Completion done;
  done.conn_id = conn->id;
  done.ok = !response.empty() &&
            response[0] == static_cast<char>(RespStatus::kOk);
  done.frame = EncodeFrame(request_id, response);
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(done));
  }
  const int fd = wake_write_fd_.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 'c';
    [[maybe_unused]] ssize_t n = ::write(fd, &byte, 1);
  }
}

void Server::EnsureSession(Connection* conn) {
  if (conn->session == nullptr ||
      conn->session_generation != store_generation_) {
    conn->session = std::make_unique<ExplorationSession>(engine_->store());
    conn->session->set_cache(engine_->cache());
    conn->session_generation = store_generation_;
  }
}

std::string Server::HandleRequestPayload(Connection* conn,
                                         const std::string& payload) {
  const Op op = static_cast<Op>(payload[0]);
  const std::string body = payload.substr(1);
  switch (op) {
    case Op::kPing:
      return EncodeResponse(RespStatus::kOk, "");
    case Op::kSchema:
      return EncodeResponse(
          RespStatus::kOk,
          EncodeSchemaInfo(*engine_->store(), store_generation_));
    case Op::kCompare: {
      Result<CompareRequest> req = DecodeCompareRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      ComparisonSpec spec;
      spec.attribute = req->attribute;
      spec.value_a = req->value_a;
      spec.value_b = req->value_b;
      spec.target_class = req->target_class;
      spec.min_population = req->min_population;
      auto result = engine_->Compare(spec);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk,
                            EncodeComparisonResult(**result));
    }
    case Op::kAllPairs: {
      Result<AllPairsRequest> req = DecodeAllPairsRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      auto result = engine_->CompareAllPairs(
          req->attribute, req->target_class, req->min_population);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk, EncodePairSummaries(*result));
    }
    case Op::kGi: {
      Result<GiRequest> req = DecodeGiRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      GiOptions gi;
      gi.top_influence = req->top_influence;
      gi.mine_interactions = req->mine_interactions;
      gi.top_interactions = req->top_interactions;
      auto result = engine_->Gi(gi);
      if (!result.ok()) return ErrorResponse(result.status());
      return EncodeResponse(RespStatus::kOk,
                            EncodeGeneralImpressions(**result));
    }
    case Op::kSession: {
      Result<SessionRequest> req = DecodeSessionRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      EnsureSession(conn);
      ExplorationSession* session = conn->session.get();
      Status st;
      switch (req->verb) {
        case SessionVerb::kOpen:
          st = session->OpenAttribute(req->attribute);
          break;
        case SessionVerb::kDrill:
          st = session->DrillDown(req->attribute);
          break;
        case SessionVerb::kSlice:
          st = req->values.empty()
                   ? Status::InvalidArgument("slice needs a value")
                   : session->Slice(req->attribute, req->values[0]);
          break;
        case SessionVerb::kDice:
          st = session->Dice(req->attribute, req->values);
          break;
        case SessionVerb::kRollUp:
          st = session->RollUp(req->attribute);
          break;
        case SessionVerb::kBack:
          st = session->Back();
          break;
        case SessionVerb::kReset:
          session->Reset();
          break;
      }
      if (!st.ok()) return ErrorResponse(st);
      return EncodeResponse(RespStatus::kOk, session->PathString());
    }
    case Op::kRender: {
      Result<RenderRequest> req = DecodeRenderRequest(body);
      if (!req.ok()) return BadRequestResponse(req.status());
      EnsureSession(conn);
      if (!conn->session->has_view()) {
        return ErrorResponse(Status::FailedPrecondition(
            "no current view (open an attribute first)"));
      }
      SessionRenderOptions opts;
      opts.max_rows = req->max_rows;
      opts.bar_width = req->bar_width;
      auto rendered = conn->session->Render(opts);
      if (!rendered.ok()) return ErrorResponse(rendered.status());
      return EncodeResponse(RespStatus::kOk, *rendered);
    }
    case Op::kStats: {
      MetricsFormatOptions slim;
      slim.skip_zero_histograms = true;
      return EncodeResponse(
          RespStatus::kOk,
          FormatMetricsJson(MetricsRegistry::Global()->Snapshot(), slim));
    }
    case Op::kReload:
      // Handled exclusively on the loop thread; a worker never sees it.
      break;
  }
  return ErrorResponse(
      Status::Internal("unreachable op in HandleRequestPayload"));
}

}  // namespace opmap::server
