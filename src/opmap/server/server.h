#ifndef OPMAP_SERVER_SERVER_H_
#define OPMAP_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "opmap/common/parallel.h"
#include "opmap/common/status.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/server/protocol.h"

namespace opmap::server {

/// Configuration of one opmapd instance.
struct ServerOptions {
  /// Listen address: "unix:<path>" for an AF_UNIX socket, "<host>:<port>"
  /// or ":<port>" for TCP (host defaults to 127.0.0.1; port 0 binds an
  /// OS-assigned port, reported by Server::address()).
  std::string listen = "unix:opmapd.sock";
  /// The cube container file to serve (and the default Reload target).
  std::string cubes_path;
  /// Map v3 containers instead of loading eagerly (see docs/SERVING.md:
  /// N daemons or sessions share one physical copy of the cubes).
  bool use_mmap = true;
  /// Shared result-cache budget; 0 disables caching.
  int64_t cache_bytes = QueryCache::kDefaultMaxBytes;
  /// Threading for query execution inside one request.
  ParallelOptions parallel;
  /// Thread-pool workers reserved for request execution; 0 = the
  /// effective thread count of `parallel`.
  int workers = 0;
  /// Event loops (acceptor + poll threads). 0 = hardware_concurrency
  /// clamped to [1, 8]; explicit values are clamped to [1, 64]. On TCP
  /// every loop owns its own SO_REUSEPORT listener so the kernel spreads
  /// accepted connections across loops; unix sockets (and platforms
  /// without SO_REUSEPORT) fall back to loop 0 accepting and handing
  /// sockets to the other loops round-robin. Connections stay loop-affine
  /// for their whole life either way.
  int loops = 0;
  /// Unix-socket peer-credential allow list (SO_PEERCRED / getpeereid):
  /// when non-empty, a connection whose peer uid is not listed is
  /// answered with one BAD_REQUEST frame and closed (counted in the
  /// server.auth_rejected metric). Start() rejects the combination with a
  /// TCP listen address — TCP carries no peer credentials.
  std::vector<uint32_t> allow_uids;
  /// Admission control: requests executing or queued for execution beyond
  /// this bound (across all loops) are shed with RETRY_LATER instead of
  /// queued unboundedly.
  int max_inflight = 64;
  /// Per-connection pipelining depth: bounds both the stateless requests
  /// of one connection executing concurrently and its
  /// parsed-but-undispatched frame queue (a client pipelining past the
  /// sum of the two gets RETRY_LATER).
  int max_pending_per_connection = 32;
  int max_connections = 256;
  /// Request frames with a longer declared payload are treated as corrupt.
  uint32_t max_request_bytes = kMaxRequestBytes;
  /// Print per-event progress to stderr.
  bool verbose = false;
};

/// Counters of one server's lifetime, readable after Serve() returns
/// (tests) — the live view is the server.* metrics in the global registry.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;
  int64_t responses_ok = 0;
  int64_t responses_error = 0;
  int64_t shed_retry_later = 0;
  int64_t protocol_errors = 0;
  int64_t reloads = 0;
  int64_t reload_failures = 0;
  int64_t auth_rejected = 0;
};

class EventLoop;    // defined in server.cc
class Connection;   // defined in server.cc

/// The opmapd daemon: N poll(2) event loops, each owning a disjoint set
/// of sockets, with request execution dispatched onto the shared
/// ThreadPool. Stateless ops (compare/all-pairs/gi/schema/ping/stats) of
/// one connection pipeline: up to max_pending_per_connection of them
/// execute concurrently, and a per-connection reordering buffer emits the
/// responses in request order. Session-bound ops (session/render) keep
/// the serialized one-at-a-time discipline so each connection's
/// ExplorationSession needs no lock.
///
/// Thread model: Serve() runs loop 0 on the calling thread and spawns the
/// remaining loops. Shutdown() may be called from any thread or from a
/// signal handler; it makes every loop stop accepting, answer
/// undispatched frames with SHUTTING_DOWN, finish in-flight requests,
/// flush, and return. Destroy the Server only after Serve() returned.
class Server {
 public:
  /// Loads the store, binds the listen socket(s) and reserves pool
  /// workers. The server is not serving until Serve() is called.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();

  /// The bound address in listen-option syntax ("unix:/tmp/x.sock",
  /// "127.0.0.1:45123") — connectable even when the option said port 0.
  const std::string& address() const { return address_; }

  /// The number of event loops actually running (after clamping).
  int loops() const { return static_cast<int>(loops_.size()); }

  /// Whether every loop owns its own SO_REUSEPORT listener (TCP) rather
  /// than loop 0 accepting and handing off. Informational (tests, logs).
  bool sharded_listeners() const { return sharded_listeners_; }

  /// Runs the event loops until Shutdown(); drains before returning.
  Status Serve();

  /// Requests a graceful drain. Async-signal-safe (an atomic store plus a
  /// write(2) to each loop's wake pipe).
  void Shutdown();

  /// Routes SIGINT/SIGTERM to server->Shutdown() for the lifetime of the
  /// process (the CLI's `opmap serve` calls this; tests use Shutdown()
  /// directly). Pass nullptr to detach.
  static void InstallSignalHandlers(Server* server);

  /// Lifetime counters summed over all loops; read after Serve() returned.
  ServerStats stats() const;

 private:
  friend class EventLoop;

  Server() = default;

  // Called by the loop that dequeued a RELOAD frame. Returns false when
  // another reload is already pending (the caller sheds with RETRY_LATER);
  // on success the global dispatch barrier is up until PerformReload.
  bool TryClaimReload(int loop_index, uint64_t conn_id, uint64_t seq,
                      uint64_t request_id, std::string body);
  // Drops a claimed reload during drain (owner loop only).
  void CancelReloadForDrain(int loop_index);
  // Swaps the store; runs on the owning loop once global inflight is 0.
  void PerformReload(EventLoop* owner);
  // Decrements the global inflight count; wakes the reload owner when the
  // count hits zero with a reload pending.
  void ReleaseInflight();
  void WakeAllLoops();
  void WakeReloadOwner();

  // Pool-worker side: executes one request and posts the encoded response
  // frame to the owning loop's completion queue.
  void ExecuteRequest(EventLoop* loop, Connection* conn, uint64_t seq,
                      bool is_session, uint64_t request_id,
                      std::string payload);
  void EnsureSession(Connection* conn);
  std::string HandleRequestPayload(Connection* conn,
                                   const std::string& payload);

  ServerOptions options_;
  std::string address_;
  std::string unix_path_;  // non-empty: unlink on exit
  std::vector<std::unique_ptr<EventLoop>> loops_;
  bool sharded_listeners_ = false;
  std::atomic<bool> shutdown_requested_{false};

  std::unique_ptr<CubeStore> store_;
  std::unique_ptr<QueryEngine> engine_;
  // Bumped on every successful reload; sessions created against an older
  // generation are lazily replaced by EnsureSession (their backing store
  // is gone). Read from pool workers, written by the reloading loop.
  std::atomic<uint64_t> store_generation_{1};

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<int> total_connections_{0};

  // Requests dispatched to the pool and not yet completed, across all
  // loops. Admission control bounds it by options_.max_inflight; reload
  // waits for it to reach zero.
  std::atomic<int> inflight_{0};

  // The cross-loop reload barrier. reload_pending_ is the fast-path flag
  // every dispatch re-checks after incrementing inflight_ (both seq_cst:
  // either the dispatcher sees the flag and backs out, or the reloading
  // loop sees a nonzero inflight and waits for the completion to wake
  // it). The claim details live behind the mutex.
  std::atomic<bool> reload_pending_{false};
  mutable std::mutex reload_mu_;
  int reload_loop_ = -1;
  uint64_t reload_conn_id_ = 0;
  uint64_t reload_seq_ = 0;
  uint64_t reload_request_id_ = 0;
  std::string reload_body_;
  // The file currently served (reload targets it when the request names
  // no path). Guarded by reload_mu_: reloads on different loops would
  // otherwise race on it.
  std::string current_cubes_path_;
};

}  // namespace opmap::server

#endif  // OPMAP_SERVER_SERVER_H_
