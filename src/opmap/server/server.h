#ifndef OPMAP_SERVER_SERVER_H_
#define OPMAP_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "opmap/common/parallel.h"
#include "opmap/common/status.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/server/protocol.h"

namespace opmap::server {

/// Configuration of one opmapd instance.
struct ServerOptions {
  /// Listen address: "unix:<path>" for an AF_UNIX socket, "<host>:<port>"
  /// or ":<port>" for TCP (host defaults to 127.0.0.1; port 0 binds an
  /// OS-assigned port, reported by Server::address()).
  std::string listen = "unix:opmapd.sock";
  /// The cube container file to serve (and the default Reload target).
  std::string cubes_path;
  /// Map v3 containers instead of loading eagerly (see docs/SERVING.md:
  /// N daemons or sessions share one physical copy of the cubes).
  bool use_mmap = true;
  /// Shared result-cache budget; 0 disables caching.
  int64_t cache_bytes = QueryCache::kDefaultMaxBytes;
  /// Threading for query execution inside one request.
  ParallelOptions parallel;
  /// Thread-pool workers reserved for request execution; 0 = the
  /// effective thread count of `parallel`.
  int workers = 0;
  /// Admission control: requests executing or queued for execution beyond
  /// this bound are shed with RETRY_LATER instead of queued unboundedly.
  int max_inflight = 64;
  /// Per-connection cap on parsed-but-undispatched frames (a pipelining
  /// client past this depth gets RETRY_LATER).
  int max_pending_per_connection = 32;
  int max_connections = 256;
  /// Request frames with a longer declared payload are treated as corrupt.
  uint32_t max_request_bytes = kMaxRequestBytes;
  /// Print per-event progress to stderr.
  bool verbose = false;
};

/// Counters of one server's lifetime, readable after Serve() returns
/// (tests) — the live view is the server.* metrics in the global registry.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t requests = 0;
  int64_t responses_ok = 0;
  int64_t responses_error = 0;
  int64_t shed_retry_later = 0;
  int64_t protocol_errors = 0;
  int64_t reloads = 0;
  int64_t reload_failures = 0;
};

class Connection;  // defined in server.cc

/// The opmapd daemon: one poll(2) event loop owning every socket, with
/// request execution dispatched onto the shared ThreadPool. One request
/// executes per connection at a time (responses stay in request order and
/// each connection's ExplorationSession needs no locking); concurrency
/// comes from serving many connections.
///
/// Thread model: Serve() runs the loop on the calling thread. Shutdown()
/// may be called from any thread or from a signal handler; it makes
/// Serve() stop accepting, answer undispatched frames with SHUTTING_DOWN,
/// finish in-flight requests, flush, and return. Destroy the Server only
/// after Serve() returned.
class Server {
 public:
  /// Loads the store, binds the listen socket and reserves pool workers.
  /// The server is not serving until Serve() is called.
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);

  ~Server();

  /// The bound address in listen-option syntax ("unix:/tmp/x.sock",
  /// "127.0.0.1:45123") — connectable even when the option said port 0.
  const std::string& address() const { return address_; }

  /// Runs the event loop until Shutdown(); drains before returning.
  Status Serve();

  /// Requests a graceful drain. Async-signal-safe (an atomic store plus a
  /// write(2) to the loop's wake pipe).
  void Shutdown();

  /// Routes SIGINT/SIGTERM to server->Shutdown() for the lifetime of the
  /// process (the CLI's `opmap serve` calls this; tests use Shutdown()
  /// directly). Pass nullptr to detach.
  static void InstallSignalHandlers(Server* server);

  /// Lifetime counters; read after Serve() returned.
  const ServerStats& stats() const { return stats_; }

 private:
  Server() = default;

  // Event-loop steps (all on the Serve() thread).
  void AcceptConnections();
  void ReadConnection(Connection* conn);
  void FlushConnection(Connection* conn);
  void SweepClosedConnections();
  void CloseConnection(uint64_t conn_id, const char* reason);
  void HandleFrame(Connection* conn, uint64_t request_id,
                   std::string payload);
  void DispatchOrShed(Connection* conn, uint64_t request_id,
                      std::string payload);
  void PumpConnection(Connection* conn);
  void PumpAllConnections();
  void DrainCompletions();
  void RespondNow(Connection* conn, uint64_t request_id, RespStatus status,
                  const std::string& body);
  void BeginDrain();
  void PerformReload();

  // Request execution (on a pool worker).
  void ExecuteRequest(Connection* conn, uint64_t request_id,
                      std::string payload);
  std::string HandleRequestPayload(Connection* conn,
                                   const std::string& payload);
  void EnsureSession(Connection* conn);

  ServerOptions options_;
  std::string address_;
  std::string unix_path_;  // non-empty: unlink on exit
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  std::atomic<int> wake_write_fd_{-1};
  std::atomic<bool> shutdown_requested_{false};

  std::unique_ptr<CubeStore> store_;
  std::unique_ptr<QueryEngine> engine_;
  uint64_t store_generation_ = 1;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  // Connections that closed while a request was executing: the worker
  // still references the Connection, so it is parked here and destroyed
  // when its completion arrives.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> zombies_;

  // Requests dispatched to the pool and not yet completed. Bounded by
  // options_.max_inflight via admission control.
  int inflight_ = 0;

  // Pool workers deliver finished responses here; the loop drains it
  // after every wake.
  std::mutex completions_mu_;
  struct Completion {
    uint64_t conn_id = 0;
    bool ok = false;    // response status was OK (counted on the loop thread)
    std::string frame;  // fully encoded response frame
  };
  std::vector<Completion> completions_;

  bool draining_ = false;
  // A reload frame waiting for inflight_ == 0 (reload swaps the store and
  // must be exclusive with query execution).
  bool reload_pending_ = false;
  uint64_t reload_conn_id_ = 0;
  uint64_t reload_request_id_ = 0;
  std::string reload_body_;

  ServerStats stats_;
};

}  // namespace opmap::server

#endif  // OPMAP_SERVER_SERVER_H_
