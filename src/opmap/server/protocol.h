#ifndef OPMAP_SERVER_PROTOCOL_H_
#define OPMAP_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "opmap/common/status.h"
#include "opmap/compare/comparator.h"
#include "opmap/cube/cube_store.h"
#include "opmap/gi/impressions.h"

namespace opmap::server {

// ---------------------------------------------------------------------------
// opmapd wire protocol (docs/SERVING.md).
//
// Both directions carry WAL-style frames (the exact layout of
// src/opmap/ingest/wal.h, reused so there is one CRC-framing discipline in
// the codebase):
//
//   payload_len u32 | request_id u64 | crc u32 | payload[payload_len]
//
// `crc` is CRC32C over the request_id field and the payload. The client
// picks request_id (monotonic per connection); the response echoes it.
//
// Request payload:   op u8     | op-specific body
// Response payload:  status u8 | body (op-specific on kOk, error body
//                    `code u8 | message string` otherwise)
//
// All body integers are little-endian via BinaryWriter/BinaryReader.
// A frame that fails length or CRC validation cannot be resynchronized
// (the stream position is untrusted), so the server answers with a
// kBadRequest error frame and closes the connection.
//
// Scheduling: clients may pipeline. The server answers every frame in
// the order it was received, but stateless ops (ping/schema/compare/
// all-pairs/gi/stats) of one connection may *execute* concurrently, up
// to the daemon's per-connection depth — the response stream never
// reveals the reordering. Session-bound ops (session/render) execute
// one at a time with the connection otherwise quiesced, and kReload is
// a global barrier. Blocking clients that wait for each response before
// sending the next are unaffected.
// ---------------------------------------------------------------------------

/// Frame header size; identical to kWalFrameHeaderBytes by construction.
inline constexpr size_t kFrameHeaderBytes = 16;

/// Default cap on a single request payload; longer length fields are
/// treated as corruption. Responses (rendered views, stats JSON) may be
/// larger; the client-side cap is kMaxResponseBytes.
inline constexpr uint32_t kMaxRequestBytes = 1u << 20;
inline constexpr uint32_t kMaxResponseBytes = 64u << 20;

enum class Op : uint8_t {
  kPing = 0,
  kSchema = 1,
  kCompare = 2,
  kAllPairs = 3,
  kGi = 4,
  kSession = 5,
  kRender = 6,
  kStats = 7,
  kReload = 8,
};

/// Short lowercase op name ("compare"), used in metric names and loadgen
/// reports; "unknown" for out-of-range bytes.
const char* OpName(Op op);
bool IsKnownOp(uint8_t op);

enum class RespStatus : uint8_t {
  kOk = 0,
  /// Shed by admission control; the request was not executed and can be
  /// retried after backoff.
  kRetryLater = 1,
  /// The request (frame, op, body, or arguments) was invalid; retrying
  /// the same bytes will fail again.
  kBadRequest = 2,
  /// The server failed executing a well-formed request (I/O, internal).
  kError = 3,
  /// The server is draining; the request was not executed.
  kShuttingDown = 4,
};

const char* RespStatusName(RespStatus status);

/// Encodes one frame ready to write (delegates to EncodeWalFrame).
std::string EncodeFrame(uint64_t request_id, const std::string& payload);

enum class FrameDecode {
  kFrame,     ///< one complete valid frame decoded
  kNeedMore,  ///< prefix of a plausible frame; read more bytes
  kCorrupt,   ///< length or CRC violation; the stream cannot be resynced
};

/// Decodes the first frame in `data`. On kFrame, fills id/payload and sets
/// `consumed` to the frame's byte size. On kCorrupt, `error` describes the
/// violation and `id` holds the (untrusted) id field when at least the
/// header was present, so a best-effort error response can echo it.
FrameDecode DecodeFrame(const char* data, size_t size, uint32_t max_payload,
                        uint64_t* id, std::string* payload, size_t* consumed,
                        std::string* error);

// --------------------------- request bodies --------------------------------

struct CompareRequest {
  int32_t attribute = -1;
  int32_t value_a = -1;
  int32_t value_b = -1;
  int32_t target_class = -1;
  int64_t min_population = 30;
};

struct AllPairsRequest {
  int32_t attribute = -1;
  int32_t target_class = -1;
  int64_t min_population = 30;
};

struct GiRequest {
  int32_t top_influence = 0;
  bool mine_interactions = false;
  int32_t top_interactions = 20;
};

enum class SessionVerb : uint8_t {
  kOpen = 0,
  kDrill = 1,
  kSlice = 2,
  kDice = 3,
  kRollUp = 4,
  kBack = 5,
  kReset = 6,
};

struct SessionRequest {
  SessionVerb verb = SessionVerb::kOpen;
  std::string attribute;               ///< unused by kBack/kReset
  std::vector<std::string> values;     ///< kSlice uses [0], kDice all
};

struct RenderRequest {
  int32_t max_rows = 30;
  int32_t bar_width = 30;
};

struct ReloadRequest {
  std::string path;  ///< empty = re-read the currently served file
};

/// Request payload = op byte + encoded body.
std::string EncodeRequest(Op op, const std::string& body);
std::string EncodeCompareRequest(const CompareRequest& req);
std::string EncodeAllPairsRequest(const AllPairsRequest& req);
std::string EncodeGiRequest(const GiRequest& req);
std::string EncodeSessionRequest(const SessionRequest& req);
std::string EncodeRenderRequest(const RenderRequest& req);
std::string EncodeReloadRequest(const ReloadRequest& req);

Result<CompareRequest> DecodeCompareRequest(const std::string& body);
Result<AllPairsRequest> DecodeAllPairsRequest(const std::string& body);
Result<GiRequest> DecodeGiRequest(const std::string& body);
Result<SessionRequest> DecodeSessionRequest(const std::string& body);
Result<RenderRequest> DecodeRenderRequest(const std::string& body);
Result<ReloadRequest> DecodeReloadRequest(const std::string& body);

// --------------------------- response bodies -------------------------------

/// Response payload = status byte + body.
std::string EncodeResponse(RespStatus status, const std::string& body);

/// Error body carried by non-OK responses.
std::string EncodeErrorBody(StatusCode code, const std::string& message);

/// Splits a response payload into status byte + body; fails on empty
/// payloads or unknown status bytes.
struct DecodedResponse {
  RespStatus status = RespStatus::kError;
  std::string body;
};
Result<DecodedResponse> DecodeResponse(const std::string& payload);

/// Reconstructs a Status from an error body (for client-side reporting).
/// Returns non-OK when `body` is not a well-formed error body; the
/// reconstructed server-side Status comes back through `decoded`.
Status DecodeErrorBody(const std::string& body, Status* decoded);

/// Deterministic binary serialization of query results. Field order is
/// fixed and every result-bearing field is included, so two byte-equal
/// encodings imply equal results — the server's responses are compared
/// byte-for-byte against direct QueryEngine calls in tests.
std::string EncodeComparisonResult(const ComparisonResult& result);
std::string EncodePairSummaries(const std::vector<PairSummary>& pairs);
std::string EncodeGeneralImpressions(const GeneralImpressions& gi);

/// Store/schema snapshot for clients (loadgen uses it to build its query
/// mix without sharing code with the server process).
struct SchemaInfo {
  int64_t num_records = 0;
  int32_t class_index = -1;
  uint64_t store_generation = 0;
  struct AttrInfo {
    std::string name;
    bool is_categorical = false;
    /// Whether the store materialized cubes for this attribute.
    bool materialized = false;
    std::vector<std::string> labels;
  };
  std::vector<AttrInfo> attributes;
};

std::string EncodeSchemaInfo(const CubeStore& store, uint64_t generation);
Result<SchemaInfo> DecodeSchemaInfo(const std::string& body);

/// Reload OK body: the new generation and record count.
struct ReloadInfo {
  uint64_t store_generation = 0;
  int64_t num_records = 0;
};
std::string EncodeReloadInfo(const ReloadInfo& info);
Result<ReloadInfo> DecodeReloadInfo(const std::string& body);

}  // namespace opmap::server

#endif  // OPMAP_SERVER_PROTOCOL_H_
