#include "opmap/server/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <utility>

#include "opmap/common/bench_json.h"
#include "opmap/common/trace.h"
#include "opmap/core/session.h"
#include "opmap/cube/cube_store.h"
#include "opmap/server/client.h"

namespace opmap::server {

namespace {

// Deterministic per-thread PRNG (xorshift64*): the schedule depends only
// on (seed, thread index), so two runs against the same store issue the
// same requests in the same per-thread order.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed == 0 ? 0x9e3779b97f4a7c15ull : seed) {}
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
  size_t Below(size_t n) { return n == 0 ? 0 : Next() % n; }
  // Uniform in [0, 1) with 53 significant bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
  // Exponential with mean 1 (the inter-arrival shape of a Poisson
  // process); scaled by the caller to 1/rate.
  double NextExp() { return -std::log(1.0 - NextDouble()); }
};

struct MixEntry {
  std::string op;
  int weight = 0;
};

Result<std::vector<std::string>> ParseMix(const std::string& mix) {
  static const char* kOps[] = {"ping",   "compare", "pairs", "gi",
                               "render", "stats",   "schema"};
  std::vector<MixEntry> entries;
  size_t pos = 0;
  while (pos < mix.size()) {
    size_t comma = mix.find(',', pos);
    if (comma == std::string::npos) comma = mix.size();
    const std::string item = mix.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t colon = item.find(':');
    MixEntry entry;
    entry.op = colon == std::string::npos ? item : item.substr(0, colon);
    entry.weight = 1;
    if (colon != std::string::npos) {
      try {
        entry.weight = std::stoi(item.substr(colon + 1));
      } catch (...) {
        return Status::InvalidArgument("invalid mix weight in '" + item +
                                       "'");
      }
    }
    bool known = false;
    for (const char* op : kOps) known = known || entry.op == op;
    if (!known) {
      return Status::InvalidArgument(
          "unknown mix op '" + entry.op +
          "' (expected ping|compare|pairs|gi|render|stats|schema)");
    }
    if (entry.weight < 0) {
      return Status::InvalidArgument("negative mix weight in '" + item + "'");
    }
    entries.push_back(std::move(entry));
  }
  // Expand weights into a schedule slice that each thread walks cyclically
  // from its own offset.
  std::vector<std::string> schedule;
  for (const MixEntry& entry : entries) {
    for (int i = 0; i < entry.weight; ++i) schedule.push_back(entry.op);
  }
  if (schedule.empty()) {
    return Status::InvalidArgument("empty op mix '" + mix + "'");
  }
  return schedule;
}

// The request pools, derived once from the daemon's schema so every
// thread issues valid arguments without sharing code with the server.
struct Workload {
  std::vector<CompareRequest> compares;
  std::vector<AllPairsRequest> all_pairs;
  std::vector<std::string> render_attrs;  // attribute names for kOpen
};

Result<Workload> BuildWorkload(const SchemaInfo& schema) {
  Workload w;
  for (size_t i = 0; i < schema.attributes.size(); ++i) {
    const SchemaInfo::AttrInfo& attr = schema.attributes[i];
    if (static_cast<int32_t>(i) == schema.class_index) continue;
    if (!attr.materialized || attr.labels.size() < 2) continue;
    AllPairsRequest pairs;
    pairs.attribute = static_cast<int32_t>(i);
    pairs.target_class = 0;
    w.all_pairs.push_back(pairs);
    w.render_attrs.push_back(attr.name);
    for (size_t v = 0; v + 1 < attr.labels.size(); ++v) {
      CompareRequest cmp;
      cmp.attribute = static_cast<int32_t>(i);
      cmp.value_a = static_cast<int32_t>(v);
      cmp.value_b = static_cast<int32_t>(v + 1);
      cmp.target_class = 0;
      w.compares.push_back(cmp);
    }
  }
  if (w.compares.empty()) {
    return Status::FailedPrecondition(
        "served store has no materialized attribute with >= 2 values to "
        "compare");
  }
  return w;
}

struct ThreadResult {
  std::map<std::string, std::vector<int64_t>> lat;
  int64_t ok = 0;
  int64_t error = 0;
  int64_t shed = 0;
  int64_t measured_ok = 0;    // OK responses issued after the warm-up window
  int64_t measured_shed = 0;  // sheds issued after the warm-up window
  Status status;
};

void RunClientThread(const LoadgenOptions& options, const Workload& work,
                     const std::vector<std::string>& schedule,
                     int thread_index,
                     std::chrono::steady_clock::time_point run_start,
                     std::chrono::steady_clock::time_point deadline,
                     std::atomic<int64_t>* issued, ThreadResult* out) {
  auto client_or = Client::Connect(options.connect, options.timeout_ms);
  if (!client_or.ok()) {
    out->status = client_or.status();
    return;
  }
  std::unique_ptr<Client> client = std::move(client_or).MoveValue();
  Rng rng(options.seed * 1315423911ull + static_cast<uint64_t>(thread_index));
  size_t slot = static_cast<size_t>(thread_index) % schedule.size();
  bool view_open = false;

  // Open-loop mode: this thread is one of `clients` independent Poisson
  // processes at rate/clients each — their superposition offers
  // arrival_qps. Arrival times are scheduled up front from the
  // deterministic generator; when the daemon (or this blocking client)
  // falls behind, requests queue here and the delay is charged to the
  // response via the scheduled-start latency below.
  const bool open_loop = options.arrival_qps > 0;
  const double thread_rate =
      open_loop ? options.arrival_qps / options.clients : 0.0;
  int64_t next_arrival_us = 0;  // relative to run_start
  const auto warmup_end =
      run_start + std::chrono::milliseconds(options.warmup_ms);

  for (;;) {
    auto scheduled = std::chrono::steady_clock::now();
    if (open_loop) {
      next_arrival_us +=
          static_cast<int64_t>(rng.NextExp() * 1e6 / thread_rate);
      scheduled = run_start + std::chrono::microseconds(next_arrival_us);
      if (scheduled >= deadline) break;
      std::this_thread::sleep_until(scheduled);
    } else if (scheduled >= deadline) {
      break;
    }
    if (options.max_requests > 0 &&
        issued->fetch_add(1, std::memory_order_relaxed) >=
            options.max_requests) {
      break;
    }
    const bool measured = scheduled >= warmup_end;
    const std::string& op = schedule[slot];
    slot = (slot + 1) % schedule.size();

    // The render op needs a current view; open one (untimed as "render")
    // on first use or after the server invalidated the session.
    if (op == "render" && !view_open) {
      SessionRequest open;
      open.verb = SessionVerb::kOpen;
      open.attribute = work.render_attrs[rng.Below(work.render_attrs.size())];
      auto open_reply = client->Session(open);
      if (!open_reply.ok()) {
        out->status = open_reply.status();
        return;
      }
      if (open_reply->status == RespStatus::kRetryLater) {
        out->shed++;
        if (measured) out->measured_shed++;
        if (!open_loop) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        continue;
      }
      if (!open_reply->ok()) {
        out->error++;
        continue;
      }
      out->ok++;
      if (measured) out->measured_ok++;
      view_open = true;
    }

    // Closed loop times the call itself; open loop times from the
    // scheduled arrival so client-side queueing is not omitted.
    const auto start = open_loop ? scheduled : std::chrono::steady_clock::now();
    Result<Reply> reply = Status::Internal("no op issued");
    if (op == "ping") {
      reply = client->Ping();
    } else if (op == "compare") {
      reply = client->Compare(work.compares[rng.Below(work.compares.size())]);
    } else if (op == "pairs") {
      reply =
          client->AllPairs(work.all_pairs[rng.Below(work.all_pairs.size())]);
    } else if (op == "gi") {
      GiRequest gi;
      gi.top_influence = 5;
      reply = client->Gi(gi);
    } else if (op == "render") {
      reply = client->Render(RenderRequest{});
    } else if (op == "stats") {
      reply = client->Stats();
    } else {  // schema
      reply = client->Call(Op::kSchema);
    }
    const int64_t elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count();

    if (!reply.ok()) {
      out->status = reply.status();
      return;
    }
    const Reply& r = *reply;
    if (r.status == RespStatus::kRetryLater) {
      out->shed++;
      if (measured) out->measured_shed++;
      // Closed loop backs off; open loop keeps its schedule — backing off
      // would silently lower the offered load the sweep claims to apply.
      if (!open_loop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      continue;
    }
    if (r.status == RespStatus::kShuttingDown) break;
    if (!r.ok()) {
      out->error++;
      if (op == "render") view_open = false;  // view may have been dropped
      continue;
    }
    out->ok++;
    if (measured) {
      out->measured_ok++;
      out->lat[op].push_back(elapsed_us);
    }
  }
}

// In-process baseline: the daemon's per-request CPU work (cached compare
// plus result encoding) without any socket. The wire-overhead guard in
// check_bench.py compares the served compare p50 against this number.
Result<double> MeasureLocalCompareP50(const LoadgenOptions& options,
                                      const Workload& work) {
  CubeLoadOptions load;
  load.use_mmap = options.use_mmap;
  OPMAP_ASSIGN_OR_RETURN(
      CubeStore store,
      CubeStore::LoadFromFile(options.cubes_path, nullptr, load));
  QueryEngine engine(&store);
  auto run_one = [&](const CompareRequest& req) -> Status {
    ComparisonSpec spec;
    spec.attribute = req.attribute;
    spec.value_a = req.value_a;
    spec.value_b = req.value_b;
    spec.target_class = req.target_class;
    spec.min_population = req.min_population;
    auto result = engine.Compare(spec);
    OPMAP_RETURN_NOT_OK(result.status());
    const std::string encoded = EncodeComparisonResult(**result);
    if (encoded.empty()) {
      return Status::Internal("empty encoded comparison");
    }
    return Status::OK();
  };
  // Warm the cache first — the daemon-side measurement is warm too.
  for (const CompareRequest& req : work.compares) {
    OPMAP_RETURN_NOT_OK(run_one(req));
  }
  std::vector<int64_t> lat;
  lat.reserve(static_cast<size_t>(options.local_iters));
  Rng rng(options.seed);
  for (int i = 0; i < options.local_iters; ++i) {
    const CompareRequest& req =
        work.compares[rng.Below(work.compares.size())];
    const int64_t start_us = MonotonicMicros();
    OPMAP_RETURN_NOT_OK(run_one(req));
    lat.push_back(MonotonicMicros() - start_us);
  }
  std::sort(lat.begin(), lat.end());
  return static_cast<double>(PercentileUs(lat, 0.50));
}

}  // namespace

int64_t PercentileUs(const std::vector<int64_t>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  if (q <= 0) return sorted_us.front();
  if (q >= 1) return sorted_us.back();
  // Nearest-rank: the smallest value with at least q of the mass below it.
  const size_t rank = static_cast<size_t>(
      q * static_cast<double>(sorted_us.size()) + 0.999999);
  return sorted_us[std::min(rank, sorted_us.size()) - 1];
}

Result<LoadgenReport> RunLoadgen(const LoadgenOptions& options) {
  if (options.clients < 1) {
    return Status::InvalidArgument("loadgen needs at least one client");
  }
  OPMAP_ASSIGN_OR_RETURN(std::vector<std::string> schedule,
                         ParseMix(options.mix));

  // Probe: fetch the schema once and derive valid request pools.
  OPMAP_ASSIGN_OR_RETURN(std::unique_ptr<Client> probe,
                         Client::Connect(options.connect, options.timeout_ms));
  OPMAP_ASSIGN_OR_RETURN(Reply schema_reply, probe->Call(Op::kSchema));
  OPMAP_RETURN_NOT_OK(schema_reply.ToStatus());
  OPMAP_ASSIGN_OR_RETURN(SchemaInfo schema,
                         DecodeSchemaInfo(schema_reply.body));
  OPMAP_ASSIGN_OR_RETURN(Workload work, BuildWorkload(schema));
  if (options.verbose) {
    std::fprintf(stderr,
                 "loadgen: %d clients, %.1fs, mix=%s (%zu compare specs, "
                 "%zu attrs)\n",
                 options.clients, options.duration_s, options.mix.c_str(),
                 work.compares.size(), work.render_attrs.size());
  }

  std::vector<ThreadResult> results(static_cast<size_t>(options.clients));
  std::atomic<int64_t> issued{0};
  const auto run_start = std::chrono::steady_clock::now();
  const auto deadline =
      run_start + std::chrono::microseconds(
                      static_cast<int64_t>(options.duration_s * 1e6));
  const int64_t run_start_us = MonotonicMicros();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(options.clients));
    for (int i = 0; i < options.clients; ++i) {
      threads.emplace_back(RunClientThread, std::cref(options),
                           std::cref(work), std::cref(schedule), i, run_start,
                           deadline, &issued, &results[static_cast<size_t>(i)]);
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_s =
      static_cast<double>(MonotonicMicros() - run_start_us) / 1e6;

  LoadgenReport report;
  report.wall_s = wall_s;
  report.offered_qps = options.arrival_qps;
  for (ThreadResult& r : results) {
    OPMAP_RETURN_NOT_OK(r.status);
    report.total_ok += r.ok;
    report.total_error += r.error;
    report.retry_later += r.shed;
    report.measured_ok += r.measured_ok;
    report.measured_shed += r.measured_shed;
    for (auto& [op, lat] : r.lat) {
      auto& merged = report.latencies_us[op];
      merged.insert(merged.end(), lat.begin(), lat.end());
    }
  }
  for (auto& [op, lat] : report.latencies_us) {
    std::sort(lat.begin(), lat.end());
  }
  report.qps = wall_s > 0 ? static_cast<double>(report.total_ok) / wall_s
                          : 0.0;
  report.measured_window_s =
      std::max(0.0, wall_s - static_cast<double>(options.warmup_ms) / 1e3);
  report.achieved_qps =
      report.measured_window_s > 0
          ? static_cast<double>(report.measured_ok) / report.measured_window_s
          : 0.0;

  // Fetch the daemon's own stats after the run (embedded in the bench
  // record so check_bench.py can cross-check the measurement).
  if (auto stats_reply = probe->Stats();
      stats_reply.ok() && stats_reply->ok()) {
    report.server_stats_json = stats_reply->body;
  }

  if (!options.cubes_path.empty()) {
    OPMAP_ASSIGN_OR_RETURN(report.local_compare_p50_us,
                           MeasureLocalCompareP50(options, work));
  }
  return report;
}

std::string FormatLoadgenReport(const LoadgenOptions& options,
                                const LoadgenReport& report) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "loadgen: %lld ok, %lld error, %lld shed in %.2fs "
                "(%d clients) -> %.1f qps\n",
                static_cast<long long>(report.total_ok),
                static_cast<long long>(report.total_error),
                static_cast<long long>(report.retry_later), report.wall_s,
                options.clients, report.qps);
  out += line;
  if (report.offered_qps > 0) {
    std::snprintf(line, sizeof(line),
                  "open-loop: offered %.1f qps, achieved %.1f qps over "
                  "%.2fs measured window (%d ms warm-up excluded)\n",
                  report.offered_qps, report.achieved_qps,
                  report.measured_window_s, options.warmup_ms);
    out += line;
  } else if (options.warmup_ms > 0) {
    std::snprintf(line, sizeof(line),
                  "warm-up: first %d ms excluded from percentiles "
                  "(%lld measured ok)\n",
                  options.warmup_ms,
                  static_cast<long long>(report.measured_ok));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-10s %8s %10s %10s %10s\n", "op", "n",
                "p50_us", "p99_us", "p999_us");
  out += line;
  for (const auto& [op, lat] : report.latencies_us) {
    std::snprintf(line, sizeof(line), "%-10s %8zu %10lld %10lld %10lld\n",
                  op.c_str(), lat.size(),
                  static_cast<long long>(PercentileUs(lat, 0.50)),
                  static_cast<long long>(PercentileUs(lat, 0.99)),
                  static_cast<long long>(PercentileUs(lat, 0.999)));
    out += line;
  }
  if (report.local_compare_p50_us >= 0) {
    std::snprintf(line, sizeof(line),
                  "local compare baseline p50: %.0f us (wire overhead: "
                  "%.2fx)\n",
                  report.local_compare_p50_us,
                  report.local_compare_p50_us > 0 &&
                          report.latencies_us.count("compare") != 0
                      ? static_cast<double>(PercentileUs(
                            report.latencies_us.at("compare"), 0.50)) /
                            report.local_compare_p50_us
                      : 0.0);
    out += line;
  }
  return out;
}

Status WriteLoadgenBench(const std::string& path,
                         const LoadgenOptions& options,
                         const LoadgenReport& report) {
  bench::BenchRecord qps;
  qps.op = "server/qps";
  qps.threads = options.clients;
  qps.wall_ms = report.wall_s * 1e3;
  qps.items_per_s = report.qps;
  qps.stats_json = report.server_stats_json;  // the daemon's, not ours
  OPMAP_RETURN_NOT_OK(bench::AppendBenchRecord(path, qps));

  for (const auto& [op, lat] : report.latencies_us) {
    if (lat.empty()) continue;
    const struct {
      const char* suffix;
      double q;
    } kQuantiles[] = {{"_p50", 0.50}, {"_p99", 0.99}, {"_p999", 0.999}};
    for (const auto& quantile : kQuantiles) {
      bench::BenchRecord rec;
      rec.op = "server/" + op + quantile.suffix;
      rec.threads = options.clients;
      rec.wall_ms =
          static_cast<double>(PercentileUs(lat, quantile.q)) / 1e3;
      rec.items_per_s =
          report.wall_s > 0
              ? static_cast<double>(lat.size()) / report.wall_s
              : 0.0;
      OPMAP_RETURN_NOT_OK(bench::AppendBenchRecord(path, rec));
    }
  }

  if (report.local_compare_p50_us >= 0) {
    bench::BenchRecord local;
    local.op = "server/local_compare_p50";
    local.threads = 1;
    local.wall_ms = report.local_compare_p50_us / 1e3;
    local.items_per_s = report.local_compare_p50_us > 0
                            ? 1e6 / report.local_compare_p50_us
                            : 0.0;
    OPMAP_RETURN_NOT_OK(bench::AppendBenchRecord(path, local));
  }

  bench::BenchRecord shed;
  shed.op = "server/retry_later";
  shed.threads = options.clients;
  shed.wall_ms = report.wall_s * 1e3;
  shed.items_per_s =
      report.wall_s > 0
          ? static_cast<double>(report.retry_later) / report.wall_s
          : 0.0;
  return bench::AppendBenchRecord(path, shed);
}

Status WriteSweepBench(const std::string& path,
                       const LoadgenOptions& options,
                       const LoadgenReport& report) {
  if (options.arrival_qps <= 0) {
    return Status::InvalidArgument(
        "WriteSweepBench needs an open-loop run (arrival_qps > 0)");
  }
  // Whole rates label as integers ("200"), fractional ones as %g, so
  // record names are stable and greppable.
  char rate_label[32];
  if (options.arrival_qps == std::floor(options.arrival_qps)) {
    std::snprintf(rate_label, sizeof(rate_label), "%lld",
                  static_cast<long long>(options.arrival_qps));
  } else {
    std::snprintf(rate_label, sizeof(rate_label), "%g", options.arrival_qps);
  }
  const std::string prefix = std::string("server/sweep/") + rate_label;

  // The sweep tracks end-to-end tail latency of the whole mix, not per-op
  // splits: merge every measured sample.
  std::vector<int64_t> all;
  for (const auto& [op, lat] : report.latencies_us) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());

  const struct {
    const char* suffix;
    double q;
  } kQuantiles[] = {{"_p50", 0.50}, {"_p99", 0.99}, {"_p999", 0.999}};
  for (const auto& quantile : kQuantiles) {
    bench::BenchRecord rec;
    rec.op = prefix + quantile.suffix;
    rec.threads = options.clients;
    rec.wall_ms = static_cast<double>(PercentileUs(all, quantile.q)) / 1e3;
    rec.items_per_s = report.achieved_qps;
    OPMAP_RETURN_NOT_OK(bench::AppendBenchRecord(path, rec));
  }

  bench::BenchRecord achieved;
  achieved.op = prefix + "_achieved_qps";
  achieved.threads = options.clients;
  achieved.wall_ms = report.measured_window_s * 1e3;
  achieved.items_per_s = report.achieved_qps;
  achieved.stats_json = report.server_stats_json;
  OPMAP_RETURN_NOT_OK(bench::AppendBenchRecord(path, achieved));

  bench::BenchRecord shed;
  shed.op = prefix + "_retry_later";
  shed.threads = options.clients;
  shed.wall_ms = report.measured_window_s * 1e3;
  shed.items_per_s =
      report.measured_window_s > 0
          ? static_cast<double>(report.measured_shed) /
                report.measured_window_s
          : 0.0;
  return bench::AppendBenchRecord(path, shed);
}

}  // namespace opmap::server
