#ifndef OPMAP_SERVER_NET_H_
#define OPMAP_SERVER_NET_H_

#include <cstdint>
#include <string>

#include "opmap/common/status.h"

namespace opmap::server {

/// A parsed listen/connect address: either an AF_UNIX path ("unix:<path>")
/// or TCP ("<host>:<port>", ":<port>"; host defaults to 127.0.0.1 — the
/// daemon is a local serving tier, not an internet-facing endpoint).
struct Address {
  bool is_unix = false;
  std::string path;           // unix
  std::string host = "127.0.0.1";  // tcp
  int port = 0;               // tcp; 0 = OS-assigned on listen
};

Result<Address> ParseAddress(const std::string& text);

/// Binds and listens on `address`; returns the fd (non-blocking,
/// close-on-exec). `bound` receives the actual address in listen-option
/// syntax (resolving port 0). Unix sockets unlink a stale path first.
///
/// With `reuse_port`, the TCP socket is bound with SO_REUSEPORT so N
/// listeners can share one port and the kernel spreads accepts across
/// them (the sharded-event-loop mode of docs/SERVING.md). Fails with
/// FailedPrecondition when the platform lacks SO_REUSEPORT and on unix
/// sockets (whose REUSEPORT semantics are not load-balancing), so the
/// caller can fall back to a single listener.
Result<int> ListenOn(const Address& address, std::string* bound,
                     bool reuse_port = false);

/// The uid of the peer of a connected AF_UNIX socket, via SO_PEERCRED
/// (Linux) or getpeereid (BSDs). Basis of the daemon's --allow-uid check.
Result<uint32_t> PeerUid(int fd);

/// Connects a blocking socket to `address` (TCP_NODELAY for TCP).
Result<int> ConnectTo(const Address& address);

/// Sets/clears O_NONBLOCK.
Status SetNonBlocking(int fd, bool non_blocking);

}  // namespace opmap::server

#endif  // OPMAP_SERVER_NET_H_
