#ifndef OPMAP_COMPARE_COMPARATOR_H_
#define OPMAP_COMPARE_COMPARATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "opmap/car/rule.h"
#include "opmap/common/parallel.h"
#include "opmap/common/status.h"
#include "opmap/cube/cube_store.h"
#include "opmap/data/dataset.h"
#include "opmap/stats/confidence_interval.h"

namespace opmap {

/// Input of the automated comparison (paper Section III.C): two
/// one-condition rules over the same attribute and a class of interest,
///   Rule 1: attribute = value_a -> target_class  (cf1)
///   Rule 2: attribute = value_b -> target_class  (cf2)
/// The comparator ranks every other attribute by how well it distinguishes
/// the two sub-populations D1 = {attribute = value_a} and
/// D2 = {attribute = value_b} with respect to target_class.
struct ComparisonSpec {
  int attribute = -1;
  ValueCode value_a = kNullCode;
  ValueCode value_b = kNullCode;
  ValueCode target_class = kNullCode;

  /// Statistical confidence level for the revised confidences
  /// (Section IV.B). Ignored when use_confidence_intervals is false.
  ConfidenceLevel confidence_level = ConfidenceLevel::k95;
  bool use_confidence_intervals = true;

  /// Property-attribute threshold tau (Section IV.C); the deployed system
  /// uses 0.9.
  double property_threshold = 0.9;

  /// Detect and segregate property attributes. Disabling this (ablation)
  /// leaves them in the main ranking.
  bool detect_property_attributes = true;

  /// Minimum sub-population size for a meaningful analysis. The paper
  /// leaves sufficiency to the user; sizes below this produce a warning,
  /// not an error.
  int64_t min_population = 30;

  /// Candidate attributes are scored across the shared thread pool and
  /// collected in deterministic attribute order, so rankings (including
  /// tie order) are identical for any thread count. num_threads == 0
  /// inherits the Comparator's default.
  ParallelOptions parallel;
};

/// Per-value detail of one attribute comparison: everything needed to
/// reproduce the side-by-side bars with confidence-interval whiskers of
/// paper Fig 7.
struct ValueComparison {
  ValueCode value = kNullCode;
  int64_t n1 = 0;         ///< records with this value in D1
  int64_t n2 = 0;         ///< records with this value in D2 (the paper's N2k)
  int64_t n1_target = 0;  ///< ... of target_class in D1
  int64_t n2_target = 0;  ///< ... of target_class in D2
  double cf1 = 0.0;       ///< confidence in D1 (cf1k)
  double cf2 = 0.0;       ///< confidence in D2 (cf2k)
  double e1 = 0.0;        ///< CI margin in D1 (e1k)
  double e2 = 0.0;        ///< CI margin in D2 (e2k)
  double rcf1 = 0.0;      ///< revised cf1k + e1k
  double rcf2 = 0.0;      ///< revised cf2k - e2k (floored at 0)
  double f = 0.0;         ///< F_k = rcf2 - rcf1 * (cf2/cf1)
  double w = 0.0;         ///< W_k = max(F_k, 0) * N2k
};

/// One candidate attribute's comparison outcome.
struct AttributeComparison {
  int attribute = -1;
  /// The paper's interestingness M_i (formula (3)), in units of records.
  double interestingness = 0.0;
  /// M_i / (cf2 * |D2|), in [0, 1]: 0 = fully expected, 1 = the theoretical
  /// maximum of Section IV.A (all excess concentrated in one value at 100%
  /// confidence).
  double normalized = 0.0;
  bool is_property = false;
  /// P / (P + T) of Section IV.C.
  double property_ratio = 0.0;
  std::vector<ValueComparison> values;
};

/// Full result of one automated comparison.
struct ComparisonResult {
  /// The spec actually used. If the user's rules had cf1 >= cf2 the two
  /// values are swapped so that value_b is always the "bad" one. For
  /// group/vs-rest comparisons value_a/value_b hold representative codes;
  /// label_a/label_b are the authoritative display names.
  ComparisonSpec spec;
  /// Display label of the good (lower-confidence) sub-population.
  std::string label_a;
  /// Display label of the bad sub-population.
  std::string label_b;
  bool swapped = false;
  int64_t n_d1 = 0;
  int64_t n_d2 = 0;
  double cf1 = 0.0;  ///< overall confidence of rule 1 (good side)
  double cf2 = 0.0;  ///< overall confidence of rule 2 (bad side)
  /// Non-property attributes, ranked by descending interestingness.
  std::vector<AttributeComparison> ranked;
  /// Property attributes (separate list, Section IV.C), same order.
  std::vector<AttributeComparison> properties;
  std::vector<std::string> warnings;

  /// Attribute -> rank position in `ranked` (-1 = absent). Populated by
  /// the comparator via RebuildRankIndex so RankOf is O(1); viz/report
  /// callers look ranks up repeatedly.
  std::vector<int> rank_index;

  /// Rank position (0-based) of `attribute` in `ranked`, or -1. O(1) when
  /// the rank index is populated; falls back to a linear scan on
  /// hand-assembled results.
  int RankOf(int attribute) const;

  /// Rebuilds `rank_index` from `ranked`. Call after mutating `ranked`
  /// by hand; comparator entry points do this for every result.
  void RebuildRankIndex();
};

/// A sub-population defined by a set of values of one attribute, or the
/// complement of that set. Generalizes the paper's single-value
/// sub-populations to families (e.g. a product line) and "everything
/// else".
struct ValueGroup {
  std::vector<ValueCode> values;
  bool complement = false;

  static ValueGroup Of(ValueCode v) { return ValueGroup{{v}, false}; }
  static ValueGroup AllBut(ValueCode v) { return ValueGroup{{v}, true}; }

  /// "ph1", "ph1|ph2" or "not ph1".
  std::string Label(const Attribute& attribute) const;
};

/// Comparison of two value groups of the same attribute. The group pair
/// must be disjoint (after resolving complements).
struct GroupComparisonSpec {
  int attribute = -1;
  ValueGroup group_a;
  ValueGroup group_b;
  ValueCode target_class = kNullCode;
  ConfidenceLevel confidence_level = ConfidenceLevel::k95;
  bool use_confidence_intervals = true;
  double property_threshold = 0.9;
  bool detect_property_attributes = true;
  int64_t min_population = 30;
  /// See ComparisonSpec::parallel.
  ParallelOptions parallel;
};

/// One row of an all-pairs comparison sweep (the paper notes that "many
/// pairs of phones need to be compared").
struct PairSummary {
  ValueCode value_a = kNullCode;  ///< good side (lower confidence)
  ValueCode value_b = kNullCode;  ///< bad side
  double cf_a = 0.0;
  double cf_b = 0.0;
  int top_attribute = -1;         ///< best distinguishing attribute
  double top_interestingness = 0.0;
  double top_normalized = 0.0;
  bool skipped = false;           ///< true if the pair was not comparable
};

/// Cache of finished comparison results, shared across queries (and, via
/// CompareAllPairs' fan-out, across pool threads — implementations must be
/// thread-safe). The concrete LRU lives in opmap/core (QueryCache); the
/// interface is declared here so the comparator can consult a cache
/// without a compare -> core dependency cycle.
class ComparisonCache {
 public:
  virtual ~ComparisonCache() = default;

  /// Returns the cached result for `key`, or null on a miss.
  virtual std::shared_ptr<const ComparisonResult> Lookup(
      const std::string& key) = 0;

  /// Stores `result` under `key`.
  virtual void Insert(const std::string& key,
                      std::shared_ptr<const ComparisonResult> result) = 0;
};

/// Canonical cache key of a comparison spec: every result-affecting field
/// in a fixed order. Deliberately excludes `parallel` (results are
/// bit-identical at any thread count) and deliberately preserves the
/// value_a/value_b input order — Compare(a, b) and Compare(b, a) differ in
/// `swapped` and label orientation, so they must not share an entry.
std::string ComparisonCacheKey(const ComparisonSpec& spec);

/// Approximate heap bytes held by a result, for cache size accounting.
int64_t ApproxResultBytes(const ComparisonResult& result);

/// The automated comparison engine. Reads only rule cubes, so its cost is
/// independent of the original data set size (paper Section V.C).
class Comparator {
 public:
  /// `store` must outlive the comparator and contain pair cubes.
  /// `parallel` is the default threading for every comparison run through
  /// this instance; a spec whose own parallel.num_threads is non-zero
  /// overrides it per call.
  explicit Comparator(const CubeStore* store, ParallelOptions parallel = {})
      : store_(store), parallel_(parallel) {}

  /// Attaches a shared result cache consulted by CompareCached (and by
  /// CompareAllPairs' per-pair comparisons). `cache` must outlive the
  /// comparator; null detaches. The owner is responsible for invalidating
  /// the cache when the store changes (see QueryCache::BumpEpoch).
  void set_cache(ComparisonCache* cache) { cache_ = cache; }
  ComparisonCache* cache() const { return cache_; }

  /// Runs the comparison of Fig 3: computes M_i for every attribute other
  /// than spec.attribute and returns them ranked.
  Result<ComparisonResult> Compare(const ComparisonSpec& spec) const;

  /// Compare() through the attached cache: returns the cached result when
  /// the canonical key hits, otherwise computes, caches and returns it.
  /// Without a cache this is Compare() wrapped in a shared_ptr. The
  /// returned result stays valid after eviction or invalidation.
  Result<std::shared_ptr<const ComparisonResult>> CompareCached(
      const ComparisonSpec& spec) const;

  /// Name/label-based convenience wrapper.
  Result<ComparisonResult> CompareByName(const std::string& attribute,
                                         const std::string& value_a,
                                         const std::string& value_b,
                                         const std::string& target_class,
                                         ComparisonSpec spec = {}) const;

  /// Compares two value groups of the same attribute (e.g. one product
  /// family vs another, or a value vs everything else).
  Result<ComparisonResult> CompareGroups(const GroupComparisonSpec& spec)
      const;

  /// Convenience: compares `value` against all other values of
  /// `attribute` ("what makes this value special?").
  Result<ComparisonResult> CompareVsRest(int attribute, ValueCode value,
                                         ValueCode target_class) const;

  /// Sweeps every ordered value pair (a, b) of `attribute` with both
  /// sub-populations at least `min_population` records, returning one
  /// summary per pair sorted by descending top interestingness. Pairs
  /// where the comparison is undefined (zero confidence on both sides)
  /// are marked skipped.
  Result<std::vector<PairSummary>> CompareAllPairs(
      int attribute, ValueCode target_class,
      int64_t min_population = 30) const;

  /// Runs the comparison once per class value (the analyst usually cares
  /// about every failure class, e.g. dropped AND failed-during-setup).
  /// Classes for which the comparison is undefined (zero confidence on
  /// both sides) are omitted. The result vector is indexed by class code
  /// order of the returned pairs.
  Result<std::vector<std::pair<ValueCode, ComparisonResult>>>
  CompareAllClasses(int attribute, ValueCode value_a, ValueCode value_b)
      const;

 private:
  // Comparator-level default applied to specs that leave parallel at auto.
  ParallelOptions ResolveParallel(const ParallelOptions& spec_parallel) const {
    return spec_parallel.num_threads != 0 ? spec_parallel : parallel_;
  }

  const CubeStore* store_;
  ParallelOptions parallel_;
  ComparisonCache* cache_ = nullptr;
};

/// Formats an all-pairs sweep as a table ("good vs bad: top attribute").
std::string FormatPairSummaries(const std::vector<PairSummary>& pairs,
                                const Schema& schema, int attribute,
                                int max_rows = 0);

/// Reference implementation computing the same result with direct dataset
/// scans instead of rule cubes. Used by tests to cross-check the cube path
/// and by benchmarks to demonstrate why the system stores cubes.
Result<ComparisonResult> CompareFromDataset(const Dataset& dataset,
                                            const ComparisonSpec& spec);

/// Contextual comparison: runs the comparison restricted to records
/// satisfying every condition in `context` — the natural follow-up query
/// once a first comparison isolates a condition ("ph3 is bad in the
/// morning; *within the morning*, what else distinguishes the phones?").
///
/// Contexts condition on a third attribute, which exceeds what the stored
/// 3-D cubes can answer, so this drills back into the data (the same
/// pattern as the paper's restricted rule mining). Context attributes and
/// the comparison attribute must be distinct.
Result<ComparisonResult> CompareWithinContext(
    const Dataset& dataset, const std::vector<Condition>& context,
    const ComparisonSpec& spec);

}  // namespace opmap

#endif  // OPMAP_COMPARE_COMPARATOR_H_
