#ifndef OPMAP_COMPARE_REPORT_H_
#define OPMAP_COMPARE_REPORT_H_

#include <string>

#include "opmap/compare/comparator.h"
#include "opmap/data/schema.h"

namespace opmap {

/// Options for textual comparison reports.
struct ReportOptions {
  /// How many top-ranked attributes to print in full detail.
  int top_attributes = 3;
  /// How many further attributes to list with scores only.
  int summary_attributes = 10;
  /// Include the property-attribute list.
  bool include_properties = true;
};

/// Renders a ComparisonResult as a human-readable multi-line report:
/// the two rules, the ranked attribute list with interestingness values,
/// and per-value breakdowns (the textual equivalent of paper Fig 7).
std::string FormatComparisonReport(const ComparisonResult& result,
                                   const Schema& schema,
                                   const ReportOptions& options = {});

/// One-line summary of an attribute comparison:
/// "TimeOfCall  M=123.4  (normalized 0.42)".
std::string FormatAttributeLine(const AttributeComparison& cmp,
                                const Schema& schema);

/// CSV export of the ranked list (attribute, M, normalized, is_property,
/// property_ratio) for plotting outside the library.
std::string ComparisonToCsv(const ComparisonResult& result,
                            const Schema& schema);

}  // namespace opmap

#endif  // OPMAP_COMPARE_REPORT_H_
