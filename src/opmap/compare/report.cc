#include "opmap/compare/report.h"

#include <algorithm>

#include "opmap/common/string_util.h"

namespace opmap {

std::string FormatAttributeLine(const AttributeComparison& cmp,
                                const Schema& schema) {
  std::string out = schema.attribute(cmp.attribute).name();
  out += "  M=" + FormatDouble(cmp.interestingness, 2);
  out += "  (normalized " + FormatDouble(cmp.normalized, 4) + ")";
  if (cmp.is_property) {
    out += "  [property, ratio " + FormatDouble(cmp.property_ratio, 2) + "]";
  }
  return out;
}

namespace {

std::string FormatRule(const Schema& schema, const ComparisonSpec& spec,
                       const std::string& label, double cf, int64_t n) {
  const Attribute& attr = schema.attribute(spec.attribute);
  return attr.name() + "=" + label + " -> " +
         schema.class_attribute().name() + "=" +
         schema.class_attribute().label(spec.target_class) + "  cf=" +
         FormatPercent(cf, 3) + "  (|D|=" + std::to_string(n) + ")";
}

void AppendValueTable(const AttributeComparison& cmp, const Schema& schema,
                      std::string* out) {
  const Attribute& attr = schema.attribute(cmp.attribute);
  *out += "    value              cf1      cf2      rcf1     rcf2     F"
          "        W\n";
  for (const ValueComparison& v : cmp.values) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    %-18s %-8s %-8s %-8s %-8s %-8s %.1f\n",
                  attr.label(v.value).c_str(),
                  FormatPercent(v.cf1, 2).c_str(),
                  FormatPercent(v.cf2, 2).c_str(),
                  FormatPercent(v.rcf1, 2).c_str(),
                  FormatPercent(v.rcf2, 2).c_str(),
                  FormatDouble(v.f, 4).c_str(), v.w);
    *out += line;
  }
}

}  // namespace

std::string FormatComparisonReport(const ComparisonResult& result,
                                   const Schema& schema,
                                   const ReportOptions& options) {
  std::string out;
  out += "=== Automated comparison ===\n";
  out += "Rule 1 (good): " + FormatRule(schema, result.spec, result.label_a,
                                        result.cf1, result.n_d1) +
         "\n";
  out += "Rule 2 (bad):  " + FormatRule(schema, result.spec, result.label_b,
                                        result.cf2, result.n_d2) +
         "\n";
  if (result.swapped) {
    out += "(rules were swapped so that cf1 < cf2)\n";
  }
  for (const std::string& w : result.warnings) {
    out += "warning: " + w + "\n";
  }
  out += "\nRanked distinguishing attributes:\n";
  const int detail =
      std::min<int>(options.top_attributes,
                    static_cast<int>(result.ranked.size()));
  for (int i = 0; i < detail; ++i) {
    const AttributeComparison& cmp = result.ranked[static_cast<size_t>(i)];
    out += "  #" + std::to_string(i + 1) + "  " +
           FormatAttributeLine(cmp, schema) + "\n";
    AppendValueTable(cmp, schema, &out);
  }
  const int more = std::min<int>(
      detail + options.summary_attributes,
      static_cast<int>(result.ranked.size()));
  for (int i = detail; i < more; ++i) {
    out += "  #" + std::to_string(i + 1) + "  " +
           FormatAttributeLine(result.ranked[static_cast<size_t>(i)], schema) +
           "\n";
  }
  if (static_cast<int>(result.ranked.size()) > more) {
    out += "  ... " +
           std::to_string(result.ranked.size() - static_cast<size_t>(more)) +
           " more attributes\n";
  }
  if (options.include_properties && !result.properties.empty()) {
    out += "\nProperty attributes (data artifacts, not ranked):\n";
    for (const AttributeComparison& cmp : result.properties) {
      out += "  " + FormatAttributeLine(cmp, schema) + "\n";
    }
  }
  return out;
}

std::string ComparisonToCsv(const ComparisonResult& result,
                            const Schema& schema) {
  std::string out =
      "rank,attribute,interestingness,normalized,is_property,property_ratio\n";
  int rank = 1;
  for (const AttributeComparison& cmp : result.ranked) {
    out += std::to_string(rank++) + "," +
           schema.attribute(cmp.attribute).name() + "," +
           FormatDouble(cmp.interestingness, 4) + "," +
           FormatDouble(cmp.normalized, 6) + ",0," +
           FormatDouble(cmp.property_ratio, 4) + "\n";
  }
  for (const AttributeComparison& cmp : result.properties) {
    out += "," + schema.attribute(cmp.attribute).name() + "," +
           FormatDouble(cmp.interestingness, 4) + "," +
           FormatDouble(cmp.normalized, 6) + ",1," +
           FormatDouble(cmp.property_ratio, 4) + "\n";
  }
  return out;
}

}  // namespace opmap
