#include "opmap/compare/alternatives.h"

#include <algorithm>
#include <cmath>

#include "opmap/stats/contingency.h"

namespace opmap {

const char* ComparisonMeasureName(ComparisonMeasure m) {
  switch (m) {
    case ComparisonMeasure::kPaperM:
      return "paper-M";
    case ComparisonMeasure::kChiSquare:
      return "chi-square";
    case ComparisonMeasure::kAbsoluteDifference:
      return "abs-difference";
    case ComparisonMeasure::kKlDivergence:
      return "kl-divergence";
  }
  return "unknown";
}

namespace {

// Per-thread contingency scratch reused across attributes: rescoring a
// whole ranking allocates nothing once the widest domain has been seen.
ContingencyTable& LocalContingency(int rows, int cols) {
  thread_local ContingencyTable table(0, 0);
  table.Reset(rows, cols);
  return table;
}

double ScoreAttribute(const AttributeComparison& cmp, double cf1, double cf2,
                      ComparisonMeasure measure) {
  switch (measure) {
    case ComparisonMeasure::kPaperM:
      return cmp.interestingness;
    case ComparisonMeasure::kChiSquare: {
      // Homogeneity of the target-class counts across values: rows are the
      // two sub-populations, columns the attribute values.
      ContingencyTable& t =
          LocalContingency(2, static_cast<int>(cmp.values.size()));
      for (size_t k = 0; k < cmp.values.size(); ++k) {
        t.set(0, static_cast<int>(k), cmp.values[k].n1_target);
        t.set(1, static_cast<int>(k), cmp.values[k].n2_target);
      }
      return ChiSquareStatistic(t);
    }
    case ComparisonMeasure::kAbsoluteDifference: {
      const double ratio = cf2 / cf1;
      double score = 0;
      for (const ValueComparison& v : cmp.values) {
        score += std::fabs(v.rcf2 - v.rcf1 * ratio) *
                 static_cast<double>(v.n2);
      }
      return score;
    }
    case ComparisonMeasure::kKlDivergence: {
      int64_t total1 = 0, total2 = 0;
      for (const ValueComparison& v : cmp.values) {
        total1 += v.n1_target;
        total2 += v.n2_target;
      }
      const double m = static_cast<double>(cmp.values.size());
      double kl = 0;
      for (const ValueComparison& v : cmp.values) {
        const double p = (static_cast<double>(v.n2_target) + 1.0) /
                         (static_cast<double>(total2) + m);
        const double q = (static_cast<double>(v.n1_target) + 1.0) /
                         (static_cast<double>(total1) + m);
        kl += p * std::log2(p / q);
      }
      return std::max(0.0, kl);
    }
  }
  return 0.0;
}

}  // namespace

Result<std::vector<MeasureScore>> RescoreComparison(
    const ComparisonResult& result, ComparisonMeasure measure) {
  if (result.cf1 <= 0) {
    return Status::InvalidArgument(
        "comparison has zero good-side confidence");
  }
  std::vector<MeasureScore> out;
  out.reserve(result.ranked.size());
  for (const AttributeComparison& cmp : result.ranked) {
    out.push_back(MeasureScore{
        cmp.attribute, ScoreAttribute(cmp, result.cf1, result.cf2, measure)});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const MeasureScore& a, const MeasureScore& b) {
                     return a.score > b.score;
                   });
  return out;
}

int RankIn(const std::vector<MeasureScore>& scores, int attribute) {
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].attribute == attribute) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace opmap
